#!/usr/bin/env python3
"""Docs link checker: every markdown cross-reference must resolve.

Scans README.md and docs/*.md for inline markdown links `[text](target)`.
For every relative target it checks that the referenced file exists, and --
when the target carries a `#anchor` -- that the anchor matches a heading of
the target file (GitHub slug rules: lowercase, punctuation stripped, spaces
to hyphens).  Absolute URLs (http/https/mailto) are skipped.  Exits
non-zero listing every dangling link, so CI fails on documentation rot.
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def github_slug(heading: str) -> str:
    heading = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    heading = heading.lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    text = path.read_text(encoding="utf-8")
    return {github_slug(m.group(1)) for m in HEADING_RE.finditer(text)}


def check_file(md: Path, repo: Path) -> list[str]:
    errors = []
    text = md.read_text(encoding="utf-8")
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        if path_part:
            resolved = (md.parent / path_part).resolve()
            if not resolved.exists():
                errors.append(f"{md.relative_to(repo)}: dangling link "
                              f"'{target}' (no such file {path_part})")
                continue
        else:
            resolved = md.resolve()
        if anchor:
            if resolved.suffix != ".md":
                continue  # anchors into source files are line references
            if anchor not in anchors_of(resolved):
                errors.append(f"{md.relative_to(repo)}: dangling anchor "
                              f"'{target}' (no heading '#{anchor}' in "
                              f"{resolved.name})")
    return errors


def main() -> int:
    repo = Path(__file__).resolve().parent.parent
    files = [repo / "README.md"] + sorted((repo / "docs").glob("*.md"))
    errors = []
    checked = 0
    for md in files:
        if not md.exists():
            errors.append(f"missing expected file: {md}")
            continue
        checked += 1
        errors.extend(check_file(md, repo))
    if errors:
        print(f"docs link check FAILED ({len(errors)} problems):")
        for e in errors:
            print(f"  {e}")
        return 1
    print(f"docs link check OK ({checked} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Pins the CLI argv contract of every bench/tool binary.

Each binary must reject an unknown flag up front -- non-zero exit and a
usage line -- instead of silently ignoring it and burning minutes of bench
time (the historical failure mode: `bench_expander --jsn out.json` ran the
whole suite and wrote nothing).  bench_kernel is exempt: google-benchmark
owns its flag parsing.

Usage: check_argv.py BUILD_DIR
"""

import os
import subprocess
import sys

# Binaries under the strict-argv contract.  Missing ones are skipped (the
# bench/example groups can be configured off) but at least one must exist.
BINARIES = [
    "edges_to_binary",
    "bench_expander",
    "bench_triangle",
    "bench_routing",
    "bench_serve",
    "bench_ldd",
    "bench_mixing",
    "bench_nibble",
    "bench_sparse_cut",
]

BAD_FLAG = "--definitely-not-a-flag"


def probe(path, args):
    proc = subprocess.run(
        [path] + args,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        timeout=60,
    )
    return proc.returncode, proc.stdout.decode(errors="replace")


def main():
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} BUILD_DIR", file=sys.stderr)
        return 2
    build_dir = sys.argv[1]
    checked = 0
    failures = []
    for name in BINARIES:
        path = os.path.join(build_dir, name)
        if not os.path.exists(path):
            print(f"skip {name}: not built")
            continue
        checked += 1
        code, out = probe(path, [BAD_FLAG])
        if code == 0:
            failures.append(f"{name}: accepted {BAD_FLAG} (exit 0)")
        elif "usage" not in out.lower():
            failures.append(f"{name}: rejected {BAD_FLAG} without a usage line")
        else:
            print(f"ok   {name}: rejects unknown flags (exit {code})")
    # The converter also needs its operands: no args is an error, not a hang.
    conv = os.path.join(build_dir, "edges_to_binary")
    if os.path.exists(conv):
        code, out = probe(conv, [])
        if code == 0 or "usage" not in out.lower():
            failures.append("edges_to_binary: missing operands not rejected")
        else:
            print(f"ok   edges_to_binary: requires operands (exit {code})")
    if checked == 0:
        failures.append(f"no checked binaries found in {build_dir}")
    for f in failures:
        print(f"FAIL {f}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

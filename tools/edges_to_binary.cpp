// Converts a text edge list ("n m" header, then one "u v" pair per line)
// into the XDG1 binary format that read_binary_edge_list_file loads at
// bench scale (docs/io.md).  Usage:
//
//   edges_to_binary IN.txt OUT.xdg
//
// The converter parses with the text reader (so malformed inputs fail with
// the same diagnostics as the library) and writes every edge verbatim --
// dedup and loop policy are the *loader's* job, keeping the binary file a
// faithful transcription of the text one.

#include <exception>
#include <iostream>
#include <string>

#include "graph/io.hpp"

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--help") {
      std::cout << "usage: " << argv[0] << " IN.txt OUT.xdg\n";
      return 0;
    }
    // A flag-looking operand is a typo, not a file name: fail up front
    // rather than erroring on a nonexistent "--reorder" input file.
    if (argv[i][0] == '-') {
      std::cerr << "usage: " << argv[0] << " IN.txt OUT.xdg (no flags)\n";
      return 2;
    }
  }
  if (argc != 3) {
    std::cerr << "usage: " << argv[0] << " IN.txt OUT.xdg\n";
    return 2;
  }
  const std::string in = argv[1];
  const std::string out = argv[2];
  try {
    const xd::Graph g = xd::read_edge_list_file(in);
    xd::write_binary_edge_list_file(g, out);
    std::cout << "wrote " << out << ": n=" << g.num_vertices()
              << " m=" << g.num_edges() << " (" << g.num_loops()
              << " loops)\n";
  } catch (const std::exception& e) {
    std::cerr << argv[0] << ": " << e.what() << "\n";
    return 1;
  }
  return 0;
}

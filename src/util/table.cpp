#include "util/table.hpp"

#include <iomanip>
#include <iostream>
#include <sstream>

namespace xd {

Table::Table(std::string title, std::vector<std::string> header)
    : title_(std::move(title)), header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::cell(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::cell(std::uint64_t v) { return std::to_string(v); }
std::string Table::cell(std::int64_t v) { return std::to_string(v); }
std::string Table::cell(int v) { return std::to_string(v); }

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << "\n";
  };
  emit_row(header_);
  std::size_t total = header_.size() * 2;
  for (auto w : widths) total += w;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::print() const { std::cout << render() << std::flush; }

}  // namespace xd

#pragma once

/// \file crc32c.hpp
/// Software CRC-32C (Castagnoli), table-driven, header-only.
///
/// Integrity checksums for the binary planes that cross a trust boundary:
/// the XDSB v2 shard-exchange frames (congest/shard_plane.hpp) and the XDA1
/// prepared-artifact header (serve/artifact.hpp).  CRC-32C is the
/// reflected polynomial 0x1EDC6F41 -- the same checksum iSCSI and ext4 use
/// -- chosen over plain CRC-32 for its better error-detection profile on
/// short frames.  The implementation is the portable one-byte-per-step
/// table walk: integrity checks here guard fault-injection and load paths,
/// not per-message hot loops, so no SSE4.2 dispatch is warranted.

#include <array>
#include <cstddef>
#include <cstdint>

namespace xd {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32cTable =
    make_crc32c_table();

}  // namespace detail

/// Streaming update: feed chunks in order, passing the previous return
/// value as `crc` (start from 0).  The xor-in/xor-out conventions cancel
/// across calls, so update(update(0, a), b) == crc32c of a||b.
[[nodiscard]] inline std::uint32_t crc32c_update(std::uint32_t crc,
                                                 const void* data,
                                                 std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    c = detail::kCrc32cTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

/// One-shot checksum of a contiguous buffer.
[[nodiscard]] inline std::uint32_t crc32c(const void* data, std::size_t len) {
  return crc32c_update(0, data, len);
}

}  // namespace xd

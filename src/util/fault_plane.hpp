#pragma once

/// \file fault_plane.hpp
/// Seeded, deterministic fault injection (docs/robustness.md).
///
/// Every robustness path in the tree -- the shard-exchange recovery loop,
/// the scheduler's worker fault handling, the binary loaders' corruption
/// rejection, the query service's retry/degrade ladder -- is driven from
/// one registry of named *fault sites*.  A site is armed with a *rule*
/// (probability and/or count triggers); code at the site asks
/// `should_fire(site, key)` and injects the fault when it returns true.
/// Decisions are a pure function of (seed, site, key, per-site hit count),
/// so a fault schedule replays exactly: same seed, same faults, at every
/// thread and shard count.  Callers at parallel sites pass a
/// schedule-independent key (worker index, frame coordinates) so the
/// decision cannot depend on thread interleaving.
///
/// Sites are grouped into categories with one relaxed atomic armed mask:
/// disarmed runs pay a single load per guarded block, nothing else.
///
/// Spec grammar (the XD_FAULTS environment variable, applied at first use;
/// see docs/robustness.md for the site catalog):
///
///   spec    := clause ("," clause)*
///   clause  := "seed=" u64 | site ":" trigger ("/" trigger)*
///   trigger := "p=" prob | "every=" u64 | "at=" u64 | "max=" u64
///
/// e.g.  XD_FAULTS="seed=42,shard.drop:p=0.01,io.bitflip:every=2/max=5"
///
/// Commas separate clauses (not semicolons: CTest ENVIRONMENT properties
/// split on ';').  `p` fires with that probability per hit, `every=N`
/// fires on every Nth hit, `at=K` fires on exactly the Kth hit, and
/// `max=M` caps the total fires of the site.  Malformed specs and unknown
/// sites throw CheckError -- a typo'd fault plan must never silently run
/// clean.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace xd {

/// Site categories, one armed bit each (the prefix before the '.').
enum class FaultCategory : int {
  kShard = 0,  ///< shard.* -- XDSB wire-frame faults
  kSched = 1,  ///< sched.* -- worker spawn/stall/throw faults
  kIo = 2,     ///< io.*    -- FileBytes torn reads and bit flips
  kServe = 3,  ///< serve.* -- query-service flush failures
};

/// Process-wide fault injector.  All members are thread-safe; the
/// fast-path `armed()` check is one relaxed atomic load.
class FaultPlane {
 public:
  /// The singleton.  First call applies the XD_FAULTS environment spec
  /// (throwing CheckError on a malformed value).
  static FaultPlane& instance();

  /// Parses `spec` (grammar above) and merges its rules into the registry;
  /// later clauses for the same site replace earlier ones.  Throws
  /// CheckError on unknown sites, unknown triggers, or unparsable numbers.
  void configure(const std::string& spec);

  /// Reseeds the probability decisions (hit ledgers are kept).
  void set_seed(std::uint64_t seed);

  /// Clears all rules, hit ledgers, counters, and hooks; restores the
  /// default seed.  Tests call this between cases.
  void reset();

  /// Is any site (or hook) of `cat` armed?  Guard every injection block
  /// with this -- the disarmed cost is one relaxed load.
  [[nodiscard]] bool armed(FaultCategory cat) const {
    return (armed_mask_.load(std::memory_order_relaxed) &
            (1u << static_cast<int>(cat))) != 0;
  }

  /// One fault decision at `site`.  Records a hit, evaluates the site's
  /// triggers, and returns true when the fault fires (recording the fire).
  /// `key` feeds the probability decision: pass coordinates that identify
  /// the attempt (frame indices, worker id, retry number) so the outcome
  /// is independent of scheduling.  Unarmed sites return false.
  bool should_fire(std::string_view site, std::uint64_t key = 0);

  /// The raw 64-bit decision hash of (seed, site, key) -- for sites that
  /// need a deterministic *value* (a corruption offset, a truncation
  /// point), not just a yes/no.
  [[nodiscard]] std::uint64_t decision_mix(std::string_view site,
                                           std::uint64_t key) const;

  /// Per-site hit ledger: decisions taken / faults fired at `site`.
  [[nodiscard]] std::uint64_t hits(std::string_view site) const;
  [[nodiscard]] std::uint64_t fires(std::string_view site) const;

  /// Named global counters (e.g. "shard.retransmits"), bumped by recovery
  /// paths and snapshotted into health reports.
  void count(std::string_view name, std::uint64_t n = 1);
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;

  /// Test hook at `site`: called synchronously wherever the site's layer
  /// invokes call_hook (the scheduler's spawn loop).  Pass {} to clear.
  /// Setting a hook arms the site's category; thread-safe, unlike the bare
  /// global it replaced.
  void set_hook(std::string_view site, std::function<void(int)> hook);

  /// Invokes the hook at `site` (outside the registry lock), if set.
  void call_hook(std::string_view site, int arg);

 private:
  struct Site {
    double p = -1.0;  ///< fire probability per hit; < 0 = no p trigger
    std::uint64_t every = 0;     ///< fire on every Nth hit; 0 = off
    std::uint64_t at = 0;        ///< fire on exactly the Kth hit; 0 = off
    std::uint64_t max_fires = ~std::uint64_t{0};  ///< total fire cap
    std::uint64_t hits = 0;
    std::uint64_t fired = 0;
  };

  FaultPlane() = default;
  void recompute_armed_locked();

  mutable std::mutex mu_;
  std::uint64_t seed_ = 0x5EEDFA17u;
  std::map<std::string, Site, std::less<>> sites_;
  std::map<std::string, std::function<void(int)>, std::less<>> hooks_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::atomic<unsigned> armed_mask_{0};
};

}  // namespace xd

#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace xd {

void Summary::add(double x) {
  values_.push_back(x);
  sorted_ = false;
}

double Summary::mean() const {
  XD_CHECK(!values_.empty());
  double s = 0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double Summary::sum() const {
  double s = 0;
  for (double v : values_) s += v;
  return s;
}

double Summary::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double Summary::min() const {
  XD_CHECK(!values_.empty());
  return *std::min_element(values_.begin(), values_.end());
}

double Summary::max() const {
  XD_CHECK(!values_.empty());
  return *std::max_element(values_.begin(), values_.end());
}

double Summary::quantile(double q) const {
  XD_CHECK(!values_.empty());
  XD_CHECK(q >= 0.0 && q <= 1.0);
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  const double pos = q * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

void LogLogFit::add(double x, double y) {
  XD_CHECK(x > 0 && y > 0);
  xs_.push_back(std::log(x));
  ys_.push_back(std::log(y));
}

double LogLogFit::slope() const {
  XD_CHECK(xs_.size() >= 2);
  const auto n = static_cast<double>(xs_.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    sx += xs_[i];
    sy += ys_[i];
    sxx += xs_[i] * xs_[i];
    sxy += xs_[i] * ys_[i];
  }
  const double denom = n * sxx - sx * sx;
  XD_CHECK(std::abs(denom) > 1e-12);
  return (n * sxy - sx * sy) / denom;
}

double LogLogFit::intercept() const {
  XD_CHECK(xs_.size() >= 2);
  const auto n = static_cast<double>(xs_.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    sx += xs_[i];
    sy += ys_[i];
  }
  return (sy - slope() * sx) / n;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  XD_CHECK(hi > lo);
  XD_CHECK(buckets > 0);
}

void Histogram::add(double x) {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / w);
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + w * static_cast<double>(i);
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        static_cast<std::size_t>(counts_[i] * width / peak);
    os << "[" << bucket_lo(i) << ", " << bucket_lo(i + 1) << ") "
       << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return os.str();
}

}  // namespace xd

#pragma once

/// \file table.hpp
/// ASCII table rendering.  Every experiment bench prints the rows/series the
/// paper's theorems predict through this formatter so successive bench runs
/// stay visually comparable.

#include <cstdint>
#include <string>
#include <vector>

namespace xd {

/// Column-aligned ASCII table with a title and header row.
class Table {
 public:
  explicit Table(std::string title, std::vector<std::string> header);

  /// Appends a row; pads or truncates to the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic cells with sensible precision.
  static std::string cell(double v, int precision = 3);
  static std::string cell(std::uint64_t v);
  static std::string cell(std::int64_t v);
  static std::string cell(int v);

  [[nodiscard]] std::string render() const;
  /// render() + std::cout flush.
  void print() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace xd

#include "util/fault_plane.hpp"

#include <array>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "util/check.hpp"

namespace xd {

namespace {

/// The site catalog.  configure() and set_hook() reject anything else, so
/// a typo'd fault plan fails loudly instead of silently running clean.
constexpr std::array<std::string_view, 11> kKnownSites = {
    "shard.drop",  "shard.corrupt", "shard.dup",     "shard.reorder",
    "sched.spawn", "sched.stall",   "sched.throw",   "io.truncate",
    "io.bitflip",  "io.short_read", "serve.flush",
};

bool known_site(std::string_view site) {
  for (const std::string_view s : kKnownSites) {
    if (s == site) return true;
  }
  return false;
}

FaultCategory category_of(std::string_view site) {
  if (site.starts_with("shard.")) return FaultCategory::kShard;
  if (site.starts_with("sched.")) return FaultCategory::kSched;
  if (site.starts_with("io.")) return FaultCategory::kIo;
  XD_CHECK_MSG(site.starts_with("serve."),
               "fault site '" << site << "' has no category prefix");
  return FaultCategory::kServe;
}

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

std::uint64_t parse_u64(std::string_view text, std::string_view clause) {
  const std::string s(text);
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  XD_CHECK_MSG(!s.empty() && end == s.c_str() + s.size() && errno != ERANGE &&
                   s[0] != '-',
               "XD_FAULTS: '" << text << "' in clause '" << clause
                              << "' is not an unsigned integer");
  return v;
}

double parse_prob(std::string_view text, std::string_view clause) {
  const std::string s(text);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  XD_CHECK_MSG(!s.empty() && end == s.c_str() + s.size() && errno != ERANGE &&
                   v >= 0.0 && v <= 1.0,
               "XD_FAULTS: '" << text << "' in clause '" << clause
                              << "' is not a probability in [0, 1]");
  return v;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

FaultPlane& FaultPlane::instance() {
  // Leaked singleton: fault sites are probed from worker threads that may
  // outlive static destruction order.
  static FaultPlane* plane = [] {
    auto* p = new FaultPlane();
    if (const char* env = std::getenv("XD_FAULTS")) p->configure(env);
    return p;
  }();
  return *plane;
}

void FaultPlane::configure(const std::string& spec) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view clause =
        trim(comma == std::string_view::npos ? rest : rest.substr(0, comma));
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (clause.empty()) continue;
    if (clause.starts_with("seed=")) {
      seed_ = parse_u64(clause.substr(5), clause);
      continue;
    }
    const std::size_t colon = clause.find(':');
    XD_CHECK_MSG(colon != std::string_view::npos,
                 "XD_FAULTS: clause '" << clause
                                       << "' wants site:trigger[/trigger...]");
    const std::string_view site = trim(clause.substr(0, colon));
    XD_CHECK_MSG(known_site(site),
                 "XD_FAULTS: unknown fault site '" << site << "'");
    Site rule;
    std::string_view triggers = clause.substr(colon + 1);
    bool any = false;
    while (!triggers.empty()) {
      const std::size_t slash = triggers.find('/');
      const std::string_view t = trim(
          slash == std::string_view::npos ? triggers
                                          : triggers.substr(0, slash));
      triggers = slash == std::string_view::npos ? std::string_view{}
                                                 : triggers.substr(slash + 1);
      XD_CHECK_MSG(!t.empty(),
                   "XD_FAULTS: empty trigger in clause '" << clause << "'");
      if (t.starts_with("p=")) {
        rule.p = parse_prob(t.substr(2), clause);
      } else if (t.starts_with("every=")) {
        rule.every = parse_u64(t.substr(6), clause);
        XD_CHECK_MSG(rule.every > 0,
                     "XD_FAULTS: every=0 in clause '" << clause << "'");
      } else if (t.starts_with("at=")) {
        rule.at = parse_u64(t.substr(3), clause);
        XD_CHECK_MSG(rule.at > 0,
                     "XD_FAULTS: at=0 in clause '" << clause << "'");
      } else if (t.starts_with("max=")) {
        rule.max_fires = parse_u64(t.substr(4), clause);
      } else {
        XD_CHECK_MSG(false, "XD_FAULTS: unknown trigger '"
                                << t << "' in clause '" << clause << "'");
      }
      any = true;
    }
    XD_CHECK_MSG(any, "XD_FAULTS: clause '" << clause << "' has no trigger");
    sites_[std::string(site)] = rule;
  }
  recompute_armed_locked();
}

void FaultPlane::set_seed(std::uint64_t seed) {
  const std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
}

void FaultPlane::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  hooks_.clear();
  counters_.clear();
  seed_ = 0x5EEDFA17u;
  recompute_armed_locked();
}

void FaultPlane::recompute_armed_locked() {
  unsigned mask = 0;
  for (const auto& [site, rule] : sites_) {
    mask |= 1u << static_cast<int>(category_of(site));
  }
  for (const auto& [site, hook] : hooks_) {
    if (hook) mask |= 1u << static_cast<int>(category_of(site));
  }
  armed_mask_.store(mask, std::memory_order_relaxed);
}

bool FaultPlane::should_fire(std::string_view site, std::uint64_t key) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = sites_.find(site);
  if (it == sites_.end()) return false;
  Site& s = it->second;
  ++s.hits;
  if (s.fired >= s.max_fires) return false;
  bool fire = false;
  if (s.every > 0 && s.hits % s.every == 0) fire = true;
  if (s.at > 0 && s.hits == s.at) fire = true;
  if (!fire && s.p > 0.0) {
    const std::uint64_t h =
        mix64(seed_ ^ fnv1a64(site) ^ (key * 0x9E3779B97F4A7C15ull));
    // Top 53 bits -> uniform double in [0, 1).
    fire = static_cast<double>(h >> 11) * 0x1.0p-53 < s.p;
  }
  if (!fire) return false;
  ++s.fired;
  return true;
}

std::uint64_t FaultPlane::decision_mix(std::string_view site,
                                       std::uint64_t key) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return mix64(seed_ ^ fnv1a64(site) ^ (key * 0x9E3779B97F4A7C15ull) ^
               0xD15EA5Eull);
}

std::uint64_t FaultPlane::hits(std::string_view site) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

std::uint64_t FaultPlane::fires(std::string_view site) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fired;
}

void FaultPlane::count(std::string_view name, std::uint64_t n) {
  const std::lock_guard<std::mutex> lock(mu_);
  counters_[std::string(name)] += n;
}

std::uint64_t FaultPlane::counter(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void FaultPlane::set_hook(std::string_view site,
                          std::function<void(int)> hook) {
  const std::lock_guard<std::mutex> lock(mu_);
  XD_CHECK_MSG(known_site(site), "unknown fault site '" << site << "'");
  if (hook) {
    hooks_[std::string(site)] = std::move(hook);
  } else {
    hooks_.erase(std::string(site));
  }
  recompute_armed_locked();
}

void FaultPlane::call_hook(std::string_view site, int arg) {
  std::function<void(int)> hook;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = hooks_.find(site);
    if (it == hooks_.end()) return;
    hook = it->second;  // copy: the hook runs outside the registry lock
  }
  hook(arg);
}

}  // namespace xd

#pragma once

/// \file scratch.hpp
/// Epoch-stamped scratch arenas: O(1) logical clears via version stamps.
///
/// Per-component recursions (the triangle data plane, the decomposition
/// driver) want a handful of ambient-sized maps per work item -- membership
/// flags, ambient->local renumberings -- but allocating or zeroing O(n)
/// storage per cluster turns a linear data plane into a quadratic driver.
/// A StampedMap keeps one backing slab alive across work items and "clears"
/// it by bumping a 64-bit epoch: a key is present iff its stamp equals the
/// current epoch, so begin_epoch() is O(1) whenever the domain fits the
/// retained capacity.  Growth -- the only O(n) event -- is counted, so
/// regression tests can pin the steady state to zero per-item allocations.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace xd::util {

/// Growth/reuse accounting for a scratch structure (regression-test hook).
struct ScratchStats {
  std::uint64_t grown = 0;   ///< epochs that had to (re)allocate the slab
  std::uint64_t reused = 0;  ///< epochs served from retained storage
};

/// Dense-keyed map over [0, n) with O(1) logical clear.  The 64-bit epoch
/// cannot wrap in practice, so stale stamps never read as current.
template <typename T>
class StampedMap {
 public:
  /// Starts a new epoch over key domain [0, n): every key reads as absent.
  /// O(1) unless the domain outgrew the retained slab (then O(n), once per
  /// high-water mark).
  void begin_epoch(std::size_t n) {
    ++epoch_;
    if (n > values_.size()) {
      values_.resize(n);
      stamps_.assign(n, 0);  // epoch_ >= 1, so stamp 0 is never current
      ++stats_.grown;
    } else {
      ++stats_.reused;
    }
  }

  [[nodiscard]] bool contains(std::size_t i) const {
    return stamps_[i] == epoch_;
  }

  void put(std::size_t i, const T& v) {
    values_[i] = v;
    stamps_[i] = epoch_;
  }

  /// Value at a key the caller knows is present this epoch.
  [[nodiscard]] const T& at(std::size_t i) const { return values_[i]; }

  /// Mutable value at key i, inserting a value-initialized T first if the
  /// key is absent this epoch.  This is what lets cursor-like state (queue
  /// head/tail offsets, counters) live in a stamped slab: mutate in place,
  /// O(1) logical clear at the next begin_epoch.
  [[nodiscard]] T& ref(std::size_t i) {
    if (stamps_[i] != epoch_) {
      values_[i] = T{};
      stamps_[i] = epoch_;
    }
    return values_[i];
  }

  [[nodiscard]] const ScratchStats& stats() const { return stats_; }

 private:
  std::vector<T> values_;
  std::vector<std::uint64_t> stamps_;
  std::uint64_t epoch_ = 0;
  ScratchStats stats_;
};

}  // namespace xd::util

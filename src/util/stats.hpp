#pragma once

/// \file stats.hpp
/// Small statistics helpers used by the benchmark harnesses and the
/// property tests (tail bounds, summaries over repeated trials).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace xd {

/// One-pass summary of a sample: count / mean / stddev / min / max plus
/// retained values for exact quantiles.
class Summary {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] double mean() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 points.
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Exact empirical quantile, q in [0,1]; linear interpolation between
  /// order statistics. Requires a non-empty sample.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double sum() const;

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
};

/// Least-squares fit of log(y) = a + s * log(x); `slope()` estimates the
/// polynomial exponent s.  This is how the benches verify round-complexity
/// shapes (e.g. triangle enumeration rounds growing like n^{1/3}).
class LogLogFit {
 public:
  void add(double x, double y);
  [[nodiscard]] double slope() const;
  [[nodiscard]] double intercept() const;
  [[nodiscard]] std::size_t count() const { return xs_.size(); }

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

/// Histogram with fixed-width buckets over [lo, hi); out-of-range samples
/// clamp to the edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double bucket_lo(std::size_t i) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// Multi-line ASCII rendering (for bench output).
  [[nodiscard]] std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace xd

#pragma once

/// \file rng.hpp
/// Deterministic, seedable random number generation.
///
/// CONGEST gives every vertex its own private randomness and no global
/// randomness.  We model that with one SplitMix64-seeded xoshiro256** stream
/// per logical entity: Rng::fork(id) derives an independent stream for vertex
/// `id` so distributed algorithms are reproducible from a single run seed.

#include <cstdint>
#include <vector>

namespace xd {

/// xoshiro256** generator seeded via SplitMix64.  Satisfies
/// UniformRandomBitGenerator so it plugs into <random> distributions,
/// although the library provides its own small set of samplers to keep
/// cross-platform determinism (libstdc++ vs libc++ distributions differ).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  /// Next raw 64 random bits.
  std::uint64_t operator()();

  /// Derive an independent stream for sub-entity `id` (e.g. a vertex).
  /// Deterministic in (this stream's seed, id); does not advance *this.
  [[nodiscard]] Rng fork(std::uint64_t id) const;

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool next_bool(double p);

  /// Exponential(beta): density beta * exp(-beta x).  Mean 1/beta.
  /// Used by MPX Clustering(beta) -- each vertex samples its shift locally.
  double next_exponential(double beta);

  /// Geometric-style sample of b in [1, ell] with Pr[b = i] proportional to
  /// 2^{-i} (the RandomNibble size parameter distribution).
  int next_nibble_scale(int ell);

  /// Uniform random permutation of {0, ..., n-1} (Fisher-Yates).
  std::vector<std::uint32_t> permutation(std::size_t n);

  /// Sample an index in [0, weights.size()) with probability proportional to
  /// weights[i].  Requires a strictly positive total weight.  Linear scan:
  /// intended for setup-time sampling, not inner loops.
  std::size_t next_weighted(const std::vector<std::uint64_t>& weights);

 private:
  std::uint64_t s_[4];
};

/// SplitMix64 step; exposed because seeding schemes elsewhere (per-vertex
/// stream derivation) want the raw mixing function.
std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace xd

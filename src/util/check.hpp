#pragma once

/// \file check.hpp
/// Throwing precondition / invariant checks (always on, including release
/// builds). Used to enforce model constraints -- e.g. the CONGEST message
/// size cap -- where silent violation would invalidate every measured round
/// count downstream.

#include <sstream>
#include <stdexcept>
#include <string>

namespace xd {

/// Error thrown when an internal invariant or a caller precondition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " -- " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace xd

/// Always-on invariant check; throws xd::CheckError with context on failure.
#define XD_CHECK(expr)                                              \
  do {                                                              \
    if (!(expr)) ::xd::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

/// Always-on invariant check with a formatted message streamed after the
/// condition, e.g. XD_CHECK_MSG(a < b, "a=" << a << " b=" << b).
#define XD_CHECK_MSG(expr, stream_expr)                             \
  do {                                                              \
    if (!(expr)) {                                                  \
      std::ostringstream xd_check_os_;                              \
      xd_check_os_ << stream_expr;                                  \
      ::xd::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                 xd_check_os_.str());               \
    }                                                               \
  } while (false)

#include "util/rng.hpp"

#include <cmath>

#include "util/check.hpp"

namespace xd {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::fork(std::uint64_t id) const {
  // Mix the current state words with the id through SplitMix64 so forked
  // streams are decorrelated even for adjacent ids.
  std::uint64_t sm = s_[0] ^ rotl(s_[3], 13) ^ (id * 0xD1342543DE82EF95ULL);
  return Rng(splitmix64(sm));
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  XD_CHECK(bound > 0);
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (-bound) % bound;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  XD_CHECK(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 top bits -> [0, 1) with full double resolution.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::next_exponential(double beta) {
  XD_CHECK(beta > 0.0);
  // Inverse CDF; 1 - u in (0, 1] avoids log(0).
  const double u = next_double();
  return -std::log1p(-u) / beta;
}

int Rng::next_nibble_scale(int ell) {
  XD_CHECK(ell >= 1);
  // Pr[b = i] = 2^{-i} / (1 - 2^{-ell}) for i in [1, ell].
  const double z = 1.0 - std::ldexp(1.0, -ell);
  double u = next_double() * z;
  double acc = 0.0;
  for (int i = 1; i < ell; ++i) {
    acc += std::ldexp(1.0, -i);
    if (u < acc) return i;
  }
  return ell;
}

std::vector<std::uint32_t> Rng::permutation(std::size_t n) {
  std::vector<std::uint32_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = static_cast<std::uint32_t>(i);
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = next_below(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

std::size_t Rng::next_weighted(const std::vector<std::uint64_t>& weights) {
  std::uint64_t total = 0;
  for (auto w : weights) total += w;
  XD_CHECK(total > 0);
  std::uint64_t r = next_below(total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (r < weights[i]) return i;
    r -= weights[i];
  }
  return weights.size() - 1;  // unreachable; defensive
}

}  // namespace xd

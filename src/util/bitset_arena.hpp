#pragma once

/// \file bitset_arena.hpp
/// Epoch-stamped bitmap arena: O(1) logical clears for dense bit sets.
///
/// The bitmap intersection kernel (triangle/intersect.hpp) builds a bitmap
/// of a high-degree adjacency range once per hub vertex and probes it many
/// times.  Zeroing the slab per hub would cost O(universe/64) and allocate
/// under growth, so the arena follows the StampedMap discipline
/// (scratch.hpp) at word granularity: a 64-bit word is valid iff its stamp
/// equals the current epoch, and begin_epoch() is O(1) whenever the domain
/// fits the retained capacity.  A stale word is lazily zeroed on first
/// write; reads treat it as all-zero via the stamp check.
///
/// Each word and its stamp share one 16-byte slot.  Sparse probes hit
/// random words of a slab that outgrows L1 at million-vertex universes;
/// with split stamp/word arrays every probe paid two cache misses, with
/// the interleaved slot it pays one (the aligned pair never straddles a
/// line).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/scratch.hpp"

namespace xd::util {

/// One bitmap word plus its epoch stamp; the word is valid iff
/// stamp == the slab's current epoch.  16-byte alignment keeps the pair
/// within a single cache line.
struct alignas(16) StampedSlot {
  std::uint64_t stamp;
  std::uint64_t word;
};

/// Bit set over [0, universe) with O(1) logical clear.  The 64-bit epoch
/// cannot wrap in practice, so stale stamps never read as current.
class StampedBitset {
 public:
  /// Starts a new epoch over [0, universe): every bit reads as clear.
  /// O(1) unless the domain outgrew the retained slab (then O(words), once
  /// per high-water mark).
  void begin_epoch(std::size_t universe) {
    ++epoch_;
    const std::size_t words = (universe + 63) / 64;
    if (words > slots_.size()) {
      // epoch_ >= 1, so stamp 0 is never current.
      slots_.assign(words, StampedSlot{0, 0});
      ++stats_.grown;
    } else {
      ++stats_.reused;
    }
  }

  void set(std::uint32_t i) {
    StampedSlot& s = slots_[i >> 6];
    if (s.stamp != epoch_) {
      s.word = 0;
      s.stamp = epoch_;
    }
    s.word |= std::uint64_t{1} << (i & 63);
  }

  [[nodiscard]] bool test(std::uint32_t i) const {
    const StampedSlot& s = slots_[i >> 6];
    return s.stamp == epoch_ && ((s.word >> (i & 63)) & std::uint64_t{1}) != 0;
  }

  /// Word w masked by its stamp: all-zero unless written this epoch.  The
  /// word-AND intersection path streams these.
  [[nodiscard]] std::uint64_t word(std::size_t w) const {
    return slots_[w].stamp == epoch_ ? slots_[w].word : 0;
  }

  /// Prefetches word i's slot (sparse probe loops run a short prefetch
  /// distance ahead to hide the random-access miss).
  void prefetch(std::uint32_t i) const {
    __builtin_prefetch(&slots_[i >> 6], 0, 1);
  }

  /// Raw slab access for vectorized word-AND kernels: the caller masks each
  /// slot's word by (stamp == epoch()) itself, 2 slots per 256-bit lane.
  [[nodiscard]] const StampedSlot* slots_data() const { return slots_.data(); }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] std::size_t word_capacity() const { return slots_.size(); }

  [[nodiscard]] const ScratchStats& stats() const { return stats_; }

 private:
  std::vector<StampedSlot> slots_;
  std::uint64_t epoch_ = 0;
  ScratchStats stats_;
};

}  // namespace xd::util

#include "ldd/ldd.hpp"

#include <algorithm>

#include "graph/graph_view.hpp"
#include "graph/metrics.hpp"
#include "graph/subgraph.hpp"
#include "graph/vertex_set.hpp"
#include "util/check.hpp"

namespace xd::ldd {

LddResult low_diameter_decomposition(congest::Network& net,
                                     const LddParams& prm, Rng& rng) {
  const Graph& g = net.graph();
  const std::size_t n = g.num_vertices();
  LddResult out;
  const std::uint64_t rounds_before = net.ledger().rounds();

  // Theorem 4 proof: run Lemma 13's pipeline at β' = β/3 so its 3β' bound
  // lands at the advertised β.
  const double beta_run = prm.beta / 3.0;

  if (prm.use_guard) {
    out.guard = build_vd_vs(g, beta_run, prm.K, prm.sampled_classifier, rng,
                            net.ledger());
  } else {
    out.guard.in_vd.assign(n, 0);
  }

  out.clustering = mpx_clustering(net, beta_run, "LDD/mpx");

  // Cut rule: inter-cluster edges with an endpoint in V_S.
  out.cut_edge.assign(g.num_edges(), 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.edge(e);
    if (u == v) continue;
    if (out.clustering.center[u] == out.clustering.center[v]) continue;
    if (out.guard.in_vd[u] && out.guard.in_vd[v]) continue;
    out.cut_edge[e] = 1;
    ++out.num_cut_edges;
  }

  // Final components: connectivity after removing the cut edges -- on a
  // zero-copy overlay where cut edges read as loops, instead of rebuilding
  // the remainder CSR.
  auto [comp, count] = connected_components(GraphView(
      g, &out.cut_edge, VertexSet::all(n)));
  out.component = std::move(comp);
  out.num_components = count;
  out.rounds = net.ledger().rounds() - rounds_before;
  return out;
}

std::uint32_t max_component_diameter(const Graph& g, const LddResult& result) {
  // Components must be measured with the cut edges gone; per-component
  // overlay views (cut edges masked to loops, BFS ignores loops) replace
  // the remainder rebuild + per-component induced subgraphs.
  std::vector<std::vector<VertexId>> members(result.num_components);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    members[result.component[v]].push_back(v);
  }
  std::uint32_t worst = 0;
  for (auto& ids : members) {
    if (ids.size() < 2) continue;
    const GraphView view(g, &result.cut_edge, VertexSet(std::move(ids)));
    worst = std::max(worst, diameter_double_sweep(view));
  }
  return worst;
}

}  // namespace xd::ldd

#pragma once

/// \file vdvs.hpp
/// The V_D / V_S partition (paper, Appendix B.1, Lemmas 17-20): the
/// machinery that upgrades MPX's *expected* cut bound to a w.h.p. bound.
///
/// V_D covers the "dense-ball" vertices -- those whose radius-a ball already
/// contains a 1/2b fraction of their 100ab-ball's edges -- grown so that
/// distinct components of V_D are more than `a` apart and each component has
/// diameter O(ab).  Every vertex left in V_S has a sparse ball
/// (|E(N^a(v))| <= |E|/b), which caps the dependence between "edge is cut"
/// events and lets a bounded-dependence Chernoff bound (Pemmaraju) apply.

#include <cstdint>
#include <vector>

#include "congest/ledger.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace xd::ldd {

/// Result of the V_D/V_S construction.
struct VdVsPartition {
  std::vector<char> in_vd;             ///< per vertex
  std::uint32_t a = 0;                 ///< ⌈5 ln n / β⌉
  std::uint32_t b = 0;                 ///< ⌈K ln n / β⌉
  std::uint32_t merge_iterations = 0;  ///< W_i expansion rounds executed
  /// Vertices classified dense before growth (the auxiliary V'_D).
  std::uint64_t seed_vertices = 0;
};

/// Builds the partition.
///
/// \param sampled_classifier  true: classify via the Lemma 15/16 sampled
///        estimators (the paper's distributed path; costs more); false:
///        classify via exact capped ball counts against |E|/b thresholds
///        (same decisions w.h.p., cheaper -- the default at bench scale).
VdVsPartition build_vd_vs(const Graph& g, double beta, double K,
                          bool sampled_classifier, Rng& rng,
                          congest::RoundLedger& ledger);

}  // namespace xd::ldd

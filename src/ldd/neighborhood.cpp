#include "ldd/neighborhood.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "util/check.hpp"

namespace xd::ldd {

namespace {

/// Per-vertex capped BFS counting marked edges inside the radius-d ball.
/// Counts an edge when both endpoints are within distance d of the source.
/// Early exit once the count passes `cap`.
std::uint64_t capped_ball_count(const Graph& g, VertexId source,
                                std::uint32_t radius,
                                const std::vector<char>* in_estar,
                                std::uint64_t cap,
                                std::vector<std::uint32_t>& dist_scratch,
                                std::vector<VertexId>& touched_scratch) {
  constexpr auto kInf = std::numeric_limits<std::uint32_t>::max();
  auto& dist = dist_scratch;
  auto& touched = touched_scratch;
  touched.clear();

  std::deque<VertexId> queue;
  dist[source] = 0;
  touched.push_back(source);
  queue.push_back(source);
  std::uint64_t count = 0;

  // An edge {x, y} (x <= y in discovery order) is inside the ball iff both
  // ends are at distance <= radius.  Count when we settle the *second*
  // endpoint: when popping x, for each neighbor y already settled (dist
  // known and <= radius) count the edge once.  Loops count when their
  // vertex settles.
  while (!queue.empty() && count <= cap) {
    const VertexId x = queue.front();
    queue.pop_front();
    // Count loops at x.
    const std::uint32_t loops = g.loops_at(x);
    if (in_estar == nullptr) {
      count += loops;
    } else if (loops > 0) {
      for (std::size_t i = 0; i < g.degree(x); ++i) {
        if (g.neighbors(x)[i] == x && (*in_estar)[g.incident_edges(x)[i]]) {
          ++count;
        }
      }
    }
    auto nbrs = g.neighbors(x);
    auto eids = g.incident_edges(x);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId y = nbrs[i];
      if (y == x) continue;
      if (dist[y] != kInf) {
        // Both endpoints are in the ball; count the edge exactly once:
        // at the strictly deeper endpoint, or at the larger id on ties.
        if (dist[y] < dist[x] || (dist[y] == dist[x] && y < x)) {
          if (in_estar == nullptr || (*in_estar)[eids[i]]) ++count;
        }
        continue;
      }
      if (dist[x] < radius) {
        dist[y] = dist[x] + 1;
        touched.push_back(y);
        queue.push_back(y);
      }
    }
  }

  for (VertexId v : touched) dist[v] = kInf;
  return std::min(count, cap + 1);
}

int ceil_log2_plus(std::uint64_t x) {
  int l = 1;
  std::uint64_t v = 2;
  while (v < x + 2) {
    v <<= 1;
    ++l;
  }
  return l;
}

}  // namespace

std::uint64_t ball_edge_count(const Graph& g, VertexId v, std::uint32_t radius,
                              std::uint64_t cap) {
  std::vector<std::uint32_t> dist(g.num_vertices(),
                                  std::numeric_limits<std::uint32_t>::max());
  std::vector<VertexId> touched;
  return capped_ball_count(g, v, radius, nullptr, cap, dist, touched);
}

std::vector<std::uint64_t> bounded_ball_count(const Graph& g,
                                              const std::vector<char>& in_estar,
                                              std::uint32_t d, std::uint64_t tau,
                                              congest::RoundLedger& ledger) {
  XD_CHECK(in_estar.size() == g.num_edges());
  const std::size_t n = g.num_vertices();
  std::vector<std::uint64_t> out(n, 0);
  std::vector<std::uint32_t> dist(n, std::numeric_limits<std::uint32_t>::max());
  std::vector<VertexId> touched;
  for (VertexId v = 0; v < n; ++v) {
    out[v] = capped_ball_count(g, v, d, &in_estar, tau, dist, touched);
  }
  // Lemma 14: d-1 phases, each O(τ) rounds.
  ledger.charge(std::max<std::uint64_t>(1, tau) *
                    std::max<std::uint32_t>(d, 1),
                "LDD/Lemma14-gather");
  return out;
}

std::vector<char> ball_threshold_test(const Graph& g, std::uint32_t d, double z,
                                      double f, double K, Rng& rng,
                                      congest::RoundLedger& ledger) {
  XD_CHECK(z >= 1 && f > 0 && f < 1 && K > 0);
  const std::size_t n = g.num_vertices();
  const double logn = std::log(std::max<double>(n, 2));

  std::vector<char> out(n, 0);
  if (K * logn >= f * f * z) {
    // Dense-threshold regime: exact counting with cap (1+f)z, E* = E.
    const auto tau = static_cast<std::uint64_t>(std::ceil((1.0 + f) * z));
    std::vector<char> all(g.num_edges(), 1);
    const auto counts = bounded_ball_count(g, all, d, tau, ledger);
    for (VertexId v = 0; v < n; ++v) out[v] = counts[v] <= tau ? 1 : 0;
    return out;
  }

  // Sampled regime: each edge joins E* with probability K log n / (f² z);
  // test the sampled count against τ = (1 + f/2) K log n / f².
  const double q = K * logn / (f * f * z);
  std::vector<char> estar(g.num_edges(), 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) estar[e] = rng.next_bool(q);
  const auto tau =
      static_cast<std::uint64_t>(std::ceil((1.0 + f / 2.0) * K * logn / (f * f)));
  const auto counts = bounded_ball_count(g, estar, d, tau, ledger);
  for (VertexId v = 0; v < n; ++v) out[v] = counts[v] <= tau ? 1 : 0;
  return out;
}

std::vector<double> ball_edge_estimate(const Graph& g, std::uint32_t d, double f,
                                       double K, Rng& rng,
                                       congest::RoundLedger& ledger) {
  const std::size_t n = g.num_vertices();
  const double max_m = static_cast<double>(g.num_edges());

  // Geometric ladder s_i = (1+f)^i up to |E|.  The per-vertex outputs are
  // monotone in z w.h.p. (0...0 1...1); the estimate is the smallest rung
  // whose threshold test accepts, giving |E(N^d(v))| ∈
  // [m_v/(1+f), (1+f) m_v] w.h.p.
  std::vector<double> ladder;
  for (double s = 1.0; s <= max_m * (1.0 + f); s *= (1.0 + f)) {
    ladder.push_back(s);
  }
  std::vector<double> out(n, ladder.empty() ? 0.0 : ladder.back());
  std::vector<char> done(n, 0);
  for (const double z : ladder) {
    const auto bit = ball_threshold_test(g, d, z, f, K, rng, ledger);
    bool all_done = true;
    for (VertexId v = 0; v < n; ++v) {
      if (!done[v] && bit[v]) {
        out[v] = z;
        done[v] = 1;
      }
      all_done = all_done && done[v];
    }
    if (all_done) break;
  }
  (void)ceil_log2_plus;
  return out;
}

}  // namespace xd::ldd

#pragma once

/// \file ldd.hpp
/// LowDiamDecomposition(β) -- Theorem 4.
///
/// Pipeline: build the V_D/V_S guard partition, run MPX Clustering(β)
/// through the kernel, then cut exactly the inter-cluster edges with at
/// least one endpoint in V_S.  The output components have diameter
/// O(log²n/β²) and at most 3β|E| edges are cut **with high probability**
/// (not just in expectation -- the guard is what the paper adds over MPX).

#include <cstdint>
#include <vector>

#include "congest/network.hpp"
#include "graph/graph.hpp"
#include "ldd/mpx.hpp"
#include "ldd/vdvs.hpp"
#include "util/rng.hpp"

namespace xd::ldd {

/// Tunables for LowDiamDecomposition.
struct LddParams {
  /// Theorem 4 target: at most beta * |E| cut edges w.h.p., component
  /// diameter O(log²n / beta²).  Internally re-parameterized to beta/3
  /// (the proof of Theorem 4 composes Lemma 13's 3β' bound with β' = β/3).
  double beta = 0.2;
  double K = 2.0;      ///< the paper's "large constant" in b = K ln n / β
  /// Ablation switch: false = plain MPX (cut every inter-cluster edge, only
  /// an in-expectation bound); true = full Theorem 4 pipeline.
  bool use_guard = true;
  /// Classifier for V'_D/V'_S: see build_vd_vs.
  bool sampled_classifier = false;
};

/// Output of LowDiamDecomposition.
struct LddResult {
  /// Dense component id per vertex (the final decomposition V = V_1 ∪ ...).
  std::vector<std::uint32_t> component;
  std::size_t num_components = 0;
  /// Per edge: cut by the decomposition?  (Self-loops never are.)
  std::vector<char> cut_edge;
  std::uint64_t num_cut_edges = 0;
  /// Diagnostics.
  VdVsPartition guard;
  Clustering clustering;
  std::uint64_t rounds = 0;  ///< total simulated rounds for this call
};

/// Runs the full decomposition on net's graph, charging net's ledger.
LddResult low_diameter_decomposition(congest::Network& net,
                                     const LddParams& prm, Rng& rng);

/// Largest double-sweep diameter over the decomposition's components
/// (diagnostic used by tests and benches against the O(log²n/β²) bound).
std::uint32_t max_component_diameter(const Graph& g, const LddResult& result);

}  // namespace xd::ldd

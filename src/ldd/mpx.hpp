#pragma once

/// \file mpx.hpp
/// Miller–Peng–Xu exponential-shift clustering, Clustering(β) (paper,
/// Appendix B), executed as genuine message passing.
///
/// Every vertex samples δ_v ~ Exponential(β) from its private randomness
/// and wakes at epoch start_v = max(1, ⌈2 ln n / β⌉ - ⌊δ_v⌋).  At each
/// epoch an awake unclustered vertex becomes its own cluster center; an
/// unclustered vertex adjacent to a vertex clustered in an earlier epoch
/// joins that cluster (ties by smallest center id, then smallest sender
/// id).  One kernel exchange per epoch: O(log n / β) rounds, cluster radius
/// <= 2 ln n / β, and each edge is cut with probability <= 2β (Lemma 12).

#include <cstdint>
#include <string_view>
#include <vector>

#include "congest/network.hpp"
#include "graph/graph.hpp"

namespace xd::ldd {

/// Output of Clustering(β).
struct Clustering {
  /// Per vertex: its cluster's center (cluster id == center's vertex id).
  std::vector<VertexId> center;
  /// Per vertex: epoch at which it became clustered (1-based).
  std::vector<std::uint32_t> joined_epoch;
  /// Total epochs executed, ⌈2 ln n / β⌉.
  std::uint32_t epochs = 0;

  /// Number of edges with endpoints in different clusters (loops never
  /// count).
  [[nodiscard]] std::uint64_t inter_cluster_edges(const Graph& g) const;
};

/// Runs Clustering(β) on the network's graph.  Requires beta in (0, 1).
Clustering mpx_clustering(congest::Network& net, double beta,
                          std::string_view reason);

}  // namespace xd::ldd

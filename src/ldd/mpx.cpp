#include "ldd/mpx.hpp"

#include <algorithm>
#include <cmath>

#include "congest/engine.hpp"
#include "util/check.hpp"

namespace xd::ldd {

using congest::Envelope;
using congest::Message;
using congest::Network;
using congest::Outbox;

namespace {

constexpr std::uint32_t kAnnounceTag = 0xC1;
constexpr VertexId kNone = static_cast<VertexId>(-1);

}  // namespace

std::uint64_t Clustering::inter_cluster_edges(const Graph& g) const {
  std::uint64_t cut = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.edge(e);
    if (u != v && center[u] != center[v]) ++cut;
  }
  return cut;
}

Clustering mpx_clustering(Network& net, double beta, std::string_view reason) {
  XD_CHECK_MSG(beta > 0.0 && beta < 1.0, "beta must be in (0,1)");
  const Graph& g = net.graph();
  const std::size_t n = g.num_vertices();
  XD_CHECK(n >= 1);

  const auto epochs = static_cast<std::uint32_t>(
      std::max(1.0, std::ceil(2.0 * std::log(std::max<double>(n, 2)) / beta)));

  Clustering out;
  out.center.assign(n, kNone);
  out.joined_epoch.assign(n, 0);
  out.epochs = epochs;

  // Private exponential shifts -> wake-up epochs.
  std::vector<std::uint32_t> start(n);
  for (VertexId v = 0; v < n; ++v) {
    const double delta = net.rng(v).next_exponential(beta);
    const double s = static_cast<double>(epochs) - std::floor(delta);
    start[v] = static_cast<std::uint32_t>(std::max(1.0, s));
  }

  // One engine superstep per epoch: vertices clustered last epoch announce
  // their center; unclustered vertices adopt the smallest announced center,
  // or self-center at their wake-up epoch.
  std::vector<char> newly(n, 0);
  std::uint32_t t = 0;       // current epoch (set before each round)
  bool in_flush = false;     // flush rounds have no wake-ups
  auto program = congest::make_program(
      [&](VertexId v, Outbox& ob) {
        if (!newly[v]) return;
        auto nbrs = g.neighbors(v);
        for (std::uint32_t slot = 0; slot < nbrs.size(); ++slot) {
          const VertexId u = nbrs[slot];
          if (u != v && out.center[u] == kNone) {
            ob.send(slot, Message{kAnnounceTag, out.center[v]});
          }
        }
      },
      [&](VertexId v, std::span<const Envelope> inbox) {
        if (out.center[v] != kNone) {
          newly[v] = 0;
          return;
        }
        // Join rule: adopt the smallest announced center (before own
        // wake-up only if start_v > t; a vertex waking exactly now centers
        // itself).
        VertexId best_center = kNone;
        for (const auto& env : inbox) {
          if (env.msg.tag != kAnnounceTag) continue;
          best_center =
              std::min(best_center, static_cast<VertexId>(env.msg.words[0]));
        }
        if (!in_flush && start[v] == t) {
          out.center[v] = v;
          out.joined_epoch[v] = t;
          newly[v] = 1;
        } else if (best_center != kNone) {
          out.center[v] = best_center;
          out.joined_epoch[v] = in_flush ? epochs + 1 : t;
          newly[v] = 1;
        }
      });

  for (t = 1; t <= epochs; ++t) {
    net.run_round(program, reason);
  }

  // Defensive flush: every vertex self-centers at its own wake-up epoch at
  // the latest, so this loop should never find pending vertices; the guard
  // bounds it in case of a protocol bug.
  in_flush = true;
  std::uint32_t flush_guard = 0;
  while (std::find(out.center.begin(), out.center.end(), kNone) !=
         out.center.end()) {
    XD_CHECK_MSG(++flush_guard <= n + 1, "MPX failed to cluster all vertices");
    net.run_round(program, reason);
  }
  return out;
}

}  // namespace xd::ldd

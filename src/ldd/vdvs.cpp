#include "ldd/vdvs.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "graph/subgraph.hpp"
#include "ldd/neighborhood.hpp"
#include "util/check.hpp"

namespace xd::ldd {

namespace {

constexpr auto kInf = std::numeric_limits<std::uint32_t>::max();

/// Multi-source BFS distances capped at `depth`.
std::vector<std::uint32_t> multi_source_bfs(const Graph& g,
                                            const std::vector<VertexId>& sources,
                                            std::uint32_t depth) {
  std::vector<std::uint32_t> dist(g.num_vertices(), kInf);
  std::deque<VertexId> queue;
  for (VertexId s : sources) {
    if (dist[s] == kInf) {
      dist[s] = 0;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop_front();
    if (dist[v] >= depth) continue;
    for (VertexId u : g.neighbors(v)) {
      if (u != v && dist[u] == kInf) {
        dist[u] = dist[v] + 1;
        queue.push_back(u);
      }
    }
  }
  return dist;
}

/// Components of the vertex-induced subgraph G[W] (over full-graph ids).
std::vector<std::uint32_t> components_of_mask(const Graph& g,
                                              const std::vector<char>& in_w,
                                              std::uint32_t& count_out) {
  std::vector<std::uint32_t> comp(g.num_vertices(), kInf);
  std::uint32_t count = 0;
  std::vector<VertexId> stack;
  for (VertexId root = 0; root < g.num_vertices(); ++root) {
    if (!in_w[root] || comp[root] != kInf) continue;
    comp[root] = count;
    stack.push_back(root);
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (VertexId u : g.neighbors(v)) {
        if (u != v && in_w[u] && comp[u] == kInf) {
          comp[u] = count;
          stack.push_back(u);
        }
      }
    }
    ++count;
  }
  count_out = count;
  return comp;
}

}  // namespace

VdVsPartition build_vd_vs(const Graph& g, double beta, double K,
                          bool sampled_classifier, Rng& rng,
                          congest::RoundLedger& ledger) {
  XD_CHECK(beta > 0 && beta < 1 && K > 0);
  const std::size_t n = g.num_vertices();
  const double logn = std::log(std::max<double>(n, 2));

  VdVsPartition out;
  out.a = static_cast<std::uint32_t>(std::ceil(5.0 * logn / beta));
  out.b = static_cast<std::uint32_t>(std::ceil(K * logn / beta));
  out.in_vd.assign(n, 0);
  if (n == 0 || g.num_edges() == 0) return out;

  // --- Auxiliary classification V = V'_D ∪ V'_S. ---
  // V'_D: |E(N^a(v))| >= |E(N^{100ab}(v))| / 2b;
  // V'_S: |E(N^a(v))| <= |E(N^{100ab}(v))| / b.
  // At our scales 100ab exceeds any graph diameter, so the big ball is the
  // whole component; we split the gap at 1.5b, which lands every vertex in
  // a side whose defining inequality it satisfies.
  std::vector<char> seed(n, 0);
  auto [comp_all, comp_count] = connected_components(g);
  std::vector<std::uint64_t> comp_edges(comp_count, 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    comp_edges[comp_all[g.edge(e).first]] += 1;
  }

  if (sampled_classifier) {
    // Faithful Lemma 16 path: (1+f)-estimates of |E(N^a(v))| with f chosen
    // well inside the 2x gap between the V'_D and V'_S thresholds.
    const double f = 0.25;
    const auto est = ball_edge_estimate(g, out.a, f, K, rng, ledger);
    for (VertexId v = 0; v < n; ++v) {
      const double threshold =
          static_cast<double>(comp_edges[comp_all[v]]) / (1.5 * out.b);
      seed[v] = est[v] > threshold ? 1 : 0;
    }
  } else {
    for (VertexId v = 0; v < n; ++v) {
      const double threshold =
          static_cast<double>(comp_edges[comp_all[v]]) / (1.5 * out.b);
      const auto cap = static_cast<std::uint64_t>(std::ceil(threshold)) + 1;
      const std::uint64_t count = ball_edge_count(g, v, out.a, cap);
      seed[v] = static_cast<double>(count) > threshold ? 1 : 0;
    }
    // Charged as the paper's auxiliary-partition cost O(ab log² n).
    ledger.charge(static_cast<std::uint64_t>(out.a) * out.b *
                      static_cast<std::uint64_t>(std::ceil(logn * logn)),
                  "LDD/classify");
  }
  for (VertexId v = 0; v < n; ++v) out.seed_vertices += seed[v];

  // --- W_0 = {u : dist(u, V'_D) <= a}. ---
  std::vector<VertexId> seeds;
  for (VertexId v = 0; v < n; ++v) {
    if (seed[v]) seeds.push_back(v);
  }
  if (seeds.empty()) return out;  // V_D empty; everything is V_S

  std::vector<char> in_w(n, 0);
  {
    const auto dist = multi_source_bfs(g, seeds, out.a);
    for (VertexId v = 0; v < n; ++v) in_w[v] = dist[v] != kInf;
  }

  // --- Merge-and-grow loop (terminates within 2b iterations, Lemma 20). ---
  for (std::uint32_t iter = 0;; ++iter) {
    XD_CHECK_MSG(iter <= 2 * out.b + 2, "V_D merge loop exceeded 2b bound");
    std::uint32_t comp_count_w = 0;
    const auto comp = components_of_mask(g, in_w, comp_count_w);
    if (comp_count_w <= 1) {
      out.merge_iterations = iter;
      break;
    }

    // Voronoi BFS to depth a from all W-components at once; an edge whose
    // endpoints carry different labels with d(x)+d(y)+1 <= a witnesses two
    // components at distance <= a.
    std::vector<std::uint32_t> dist(n, kInf);
    std::vector<std::uint32_t> label(n, kInf);
    std::deque<VertexId> queue;
    for (VertexId v = 0; v < n; ++v) {
      if (in_w[v]) {
        dist[v] = 0;
        label[v] = comp[v];
        queue.push_back(v);
      }
    }
    while (!queue.empty()) {
      const VertexId v = queue.front();
      queue.pop_front();
      if (dist[v] >= out.a) continue;
      for (VertexId u : g.neighbors(v)) {
        if (u != v && dist[u] == kInf) {
          dist[u] = dist[v] + 1;
          label[u] = label[v];
          queue.push_back(u);
        }
      }
    }

    std::vector<char> marked(comp_count_w, 0);
    bool any_marked = false;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto [x, y] = g.edge(e);
      if (x == y) continue;
      if (label[x] == kInf || label[y] == kInf || label[x] == label[y]) continue;
      if (dist[x] + dist[y] + 1 <= out.a) {
        marked[label[x]] = 1;
        marked[label[y]] = 1;
        any_marked = true;
      }
    }
    // Paper: each iteration costs O(ab) rounds (component id agreement +
    // a-ball growth), and there are at most 2b iterations.
    ledger.charge(static_cast<std::uint64_t>(out.a) * out.b, "LDD/merge");
    if (!any_marked) {
      out.merge_iterations = iter;
      break;
    }

    // Grow every marked component by its a-ball.
    std::vector<VertexId> grow_sources;
    for (VertexId v = 0; v < n; ++v) {
      if (in_w[v] && marked[comp[v]]) grow_sources.push_back(v);
    }
    const auto grow = multi_source_bfs(g, grow_sources, out.a);
    for (VertexId v = 0; v < n; ++v) {
      if (grow[v] != kInf) in_w[v] = 1;
    }
  }

  out.in_vd = std::move(in_w);
  return out;
}

}  // namespace xd::ldd

#pragma once

/// \file neighborhood.hpp
/// Neighborhood edge counting (paper, Lemmas 14-16).
///
/// Lemma 14: with d-1 phases of O(τ) rounds each, every vertex learns
/// E(N^d(v)) ∩ E* up to a cap τ (or learns that the cap is exceeded).
/// Lemma 15: sampling E* at rate K log n/(f² z) turns that into a w.h.p.
/// threshold test "is |E(N^d(v))| below z or above (1+f)z?" in
/// O(d log n/f²) rounds.  Lemma 16 runs a geometric ladder of Lemma 15
/// tests to get a (1+f)-approximation of |E(N^d(v))| for every v in
/// O(d log²n/f³) rounds.
///
/// The data computation here is centralized (per-vertex capped BFS --
/// exactly the information the distributed phases accumulate) and the
/// stated round costs are charged to the ledger; see docs/rounds.md for
/// the charging rules such orchestrated cost models follow.

#include <cstdint>
#include <vector>

#include "congest/ledger.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace xd::ldd {

/// Exact |E(N^d(v))| with early exit: returns min(count, cap).  E(S) counts
/// edges (including loops) with both endpoints in S.  O(ball volume).
std::uint64_t ball_edge_count(const Graph& g, VertexId v, std::uint32_t radius,
                              std::uint64_t cap);

/// Lemma 14 as data: per-vertex count of E* edges in the radius-d ball,
/// capped at tau+1 (a result > tau means "cap exceeded").  Charges
/// O(tau * d) rounds.
std::vector<std::uint64_t> bounded_ball_count(const Graph& g,
                                              const std::vector<char>& in_estar,
                                              std::uint32_t d, std::uint64_t tau,
                                              congest::RoundLedger& ledger);

/// Lemma 15: per-vertex bit; 1 w.h.p. when |E(N^d(v))| <= z, 0 w.h.p. when
/// >= (1+f)z (either answer allowed in between).  Charges O(d log n / f²).
std::vector<char> ball_threshold_test(const Graph& g, std::uint32_t d, double z,
                                      double f, double K, Rng& rng,
                                      congest::RoundLedger& ledger);

/// Lemma 16: per-vertex estimate m_v with m_v/(1+f) <= |E(N^d(v))| <=
/// (1+f) m_v w.h.p.  Charges O(d log²n / f³).
std::vector<double> ball_edge_estimate(const Graph& g, std::uint32_t d, double f,
                                       double K, Rng& rng,
                                       congest::RoundLedger& ledger);

}  // namespace xd::ldd

#pragma once

/// \file xd.hpp
/// Umbrella header -- the library's public API surface.
///
/// xd ("expander decomposition") reproduces Chang & Saranurak, "Improved
/// Distributed Expander Decomposition and Nearly Optimal Triangle
/// Enumeration" (PODC 2019), as a round-accounted CONGEST simulation.
///
/// The three headline entry points:
///
///   * xd::expander::expander_decomposition  -- Theorem 1: the (ε, φ)
///     decomposition (Phase 1 LDD + sparse cut recursion, Phase 2 level
///     schedule), with xd::expander::verify_decomposition as the checker.
///
///   * xd::sparsecut::nearly_most_balanced_sparse_cut -- Theorem 3: the
///     Spielman–Teng Nibble stack (Nibble -> ApproximateNibble ->
///     RandomNibble -> ParallelNibble -> Partition) with the nearly-most-
///     balanced guarantee.
///
///   * xd::triangle::enumerate_congest -- Theorem 2: Õ(n^{1/3}) triangle
///     enumeration (decomposition + GKS routing + clustered DLP joins +
///     E* recursion), with enumerate_clique_dlp and
///     enumerate_local_baseline as the baselines.
///
/// Substrates (usable on their own): the CONGEST kernel
/// (xd::congest::Network, RoundLedger with fork/join round accounting, the
/// EpochScheduler component pool), graph generators (xd::gen), exact
/// metrics, spectral tools (lazy walks, sweep cuts, mixing times), the MPX
/// low-diameter decomposition (Theorem 4: xd::ldd::low_diameter_
/// decomposition), expander routers (xd::routing), and the build-once
/// serving layer (xd::serve::prepare_artifact + QueryService,
/// docs/serving.md).

#include "congest/clique.hpp"
#include "congest/engine.hpp"
#include "congest/ledger.hpp"
#include "congest/message.hpp"
#include "congest/network.hpp"
#include "congest/scheduler.hpp"
#include "expander/cross_check.hpp"
#include "expander/decomposition.hpp"
#include "expander/params.hpp"
#include "expander/simple_parallel.hpp"
#include "expander/verify.hpp"
#include "graph/access.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/graph_view.hpp"
#include "graph/io.hpp"
#include "graph/metrics.hpp"
#include "graph/subgraph.hpp"
#include "graph/vertex_set.hpp"
#include "ldd/ldd.hpp"
#include "ldd/mpx.hpp"
#include "ldd/neighborhood.hpp"
#include "ldd/vdvs.hpp"
#include "primitives/aggregate.hpp"
#include "primitives/forest.hpp"
#include "primitives/sampling.hpp"
#include "routing/hierarchical_router.hpp"
#include "routing/queue_arena.hpp"
#include "routing/router.hpp"
#include "routing/simulated_router.hpp"
#include "routing/tree_router.hpp"
#include "serve/artifact.hpp"
#include "serve/service.hpp"
#include "sparsecut/distributed_nibble.hpp"
#include "sparsecut/nibble.hpp"
#include "sparsecut/nibble_params.hpp"
#include "sparsecut/parallel_nibble.hpp"
#include "sparsecut/partition.hpp"
#include "sparsecut/random_nibble.hpp"
#include "spectral/fiedler.hpp"
#include "spectral/lazy_walk.hpp"
#include "spectral/mixing.hpp"
#include "spectral/sweep.hpp"
#include "triangle/baseline_local.hpp"
#include "triangle/bucket_join.hpp"
#include "triangle/clique_dlp.hpp"
#include "triangle/cluster_enum.hpp"
#include "triangle/detect.hpp"
#include "triangle/enumerate.hpp"
#include "triangle/intersect.hpp"
#include "triangle/triple_rank.hpp"
#include "util/bitset_arena.hpp"
#include "util/rng.hpp"
#include "util/scratch.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

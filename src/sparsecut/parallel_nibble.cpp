#include "sparsecut/parallel_nibble.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "graph/graph_view.hpp"
#include "graph/metrics.hpp"
#include "util/check.hpp"

namespace xd::sparsecut {

namespace {

int ceil_log2_plus(std::uint64_t x) {
  int l = 1;
  std::uint64_t v = 2;
  while (v < x + 2) {
    v <<= 1;
    ++l;
  }
  return l;
}

/// Per-instance simulated cost.  The support subgraph of a t-step walk has
/// diameter <= 2t (the paper's own bound: "the subgraph induced by P* is
/// connected and has diameter O(t₀)").
///
/// Paper preset: diffusion steps plus one Lemma 9 binary search
/// (height x log(support)) per examined (t, j) candidate -- the literal
/// accounting of the paper.
///
/// Practical preset: diffusion steps plus one pipelined segmented
/// prefix-scan over the support tree per walk step (O(height + log) rounds
/// evaluates every candidate of that step at once); Lemma 9's per-candidate
/// search exists because the paper optimizes for asymptotic cleanliness,
/// not constants.
std::uint64_t instance_rounds(const NibbleResult& r, Preset preset) {
  const auto steps = static_cast<std::uint64_t>(std::max(r.steps_run, 1));
  const std::uint64_t height = 2 * steps + 1;
  const auto log_support =
      static_cast<std::uint64_t>(ceil_log2_plus(r.touched.size()));
  if (preset == Preset::kPaper) {
    return steps + r.sweep_candidates * height * log_support;
  }
  return steps + steps * (height + log_support);
}

}  // namespace

template <GraphAccess G>
ParallelNibbleResult parallel_nibble(const G& g, const NibbleParams& prm,
                                     Rng& rng, congest::RoundLedger& ledger,
                                     std::optional<std::uint32_t> diameter_hint) {
  ParallelNibbleResult out;
  const std::uint64_t rounds_before = ledger.rounds();
  const std::uint64_t total_volume = g.volume();
  XD_CHECK(total_volume > 0);

  const std::uint32_t diameter =
      diameter_hint ? *diameter_hint : diameter_double_sweep(g);

  // --- Instance generation (Lemma 10): O(D + ℓ) rounds. ---
  const std::uint64_t k = prm.k_instances;
  ledger.charge(diameter + static_cast<std::uint64_t>(prm.ell) + 1,
                "ParallelNibble/generate");

  std::vector<RandomNibbleResult> runs;
  runs.reserve(k);
  for (std::uint64_t i = 0; i < k; ++i) {
    runs.push_back(random_nibble(g, prm, rng));
  }
  out.instances = k;

  // --- Overlap guard: count per-edge participation across instances.  An
  // edge participates in an instance iff it is incident to a vertex that
  // ever carried truncated mass (Definition 2). ---
  std::unordered_map<EdgeId, int> participation;
  int max_overlap = 0;
  for (const auto& run : runs) {
    std::unordered_set<EdgeId> mine;
    for (VertexId v : run.inner.touched) {
      g.for_each_live_incident(v, [&](EdgeId e, VertexId) { mine.insert(e); });
    }
    for (EdgeId e : mine) {
      max_overlap = std::max(max_overlap, ++participation[e]);
    }
  }
  out.max_overlap = max_overlap;

  // --- Multiplexed execution cost: slowest instance x observed overlap. ---
  std::uint64_t max_instance = 1;
  std::uint64_t messages = 0;
  for (const auto& run : runs) {
    max_instance =
        std::max(max_instance, instance_rounds(run.inner, prm.preset));
    messages += run.inner.work_volume;
  }
  ledger.count_messages(messages);
  ledger.charge(max_instance * static_cast<std::uint64_t>(
                                   std::max(1, std::min(max_overlap,
                                                        prm.overlap_cap))),
                "ParallelNibble/nibbles");

  if (max_overlap > prm.overlap_cap) {
    // Endpoints broadcast the abort token: O(D).
    ledger.charge(diameter + 1, "ParallelNibble/select");
    out.overlap_aborted = true;
    out.rounds = ledger.rounds() - rounds_before;
    return out;
  }

  // --- Select i*: largest prefix (in instance-id order) whose union stays
  // under z = (23/24) Vol(V).  Charged as a random binary search over the
  // k random instance ids: O(D log k). ---
  ledger.charge(static_cast<std::uint64_t>(diameter + 1) *
                    static_cast<std::uint64_t>(ceil_log2_plus(k)),
                "ParallelNibble/select");

  const double z = (23.0 / 24.0) * static_cast<double>(total_volume);
  std::vector<char> member(g.num_vertices(), 0);
  std::uint64_t union_volume = 0;
  std::uint64_t used = 0;
  for (const auto& run : runs) {
    if (!run.inner.found()) {
      ++used;  // an empty C_i contributes nothing but keeps the prefix going
      continue;
    }
    // Tentatively add C_i; i* is the largest prefix with Vol <= z, so stop
    // *before* the first instance that would overflow.
    std::uint64_t added = 0;
    for (VertexId v : run.inner.cut) {
      if (!member[v]) added += g.degree(v);
    }
    if (static_cast<double>(union_volume + added) > z) break;
    for (VertexId v : run.inner.cut) member[v] = 1;
    union_volume += added;
    ++used;
  }
  out.instances_used = used;
  out.cut = VertexSet::from_bitmap(member);
  out.rounds = ledger.rounds() - rounds_before;
  return out;
}

template ParallelNibbleResult parallel_nibble(const Graph&, const NibbleParams&,
                                              Rng&, congest::RoundLedger&,
                                              std::optional<std::uint32_t>);
template ParallelNibbleResult parallel_nibble(const GraphView&,
                                              const NibbleParams&, Rng&,
                                              congest::RoundLedger&,
                                              std::optional<std::uint32_t>);

}  // namespace xd::sparsecut

#include "sparsecut/nibble_params.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace xd::sparsecut {

namespace {

double ln_me2(std::size_t m) { return std::log(static_cast<double>(m)) + 2.0; }
double ln_me4(std::size_t m) { return std::log(static_cast<double>(m)) + 4.0; }

int ceil_log2(std::size_t m) {
  int l = 0;
  std::size_t v = 1;
  while (v < m) {
    v <<= 1;
    ++l;
  }
  return std::max(l, 1);
}

}  // namespace

double NibbleParams::eps_b(int b) const {
  XD_CHECK(b >= 1 && b <= ell);
  return eps_base / std::ldexp(1.0, b);
}

NibbleParams NibbleParams::rescaled(std::size_t m, std::uint64_t vol) const {
  return preset == Preset::kPaper ? paper(phi, m, vol) : practical(phi, m, vol);
}

NibbleParams NibbleParams::with_phi(double new_phi) const {
  return preset == Preset::kPaper ? paper(new_phi, num_edges, volume)
                                  : practical(new_phi, num_edges, volume);
}

NibbleParams NibbleParams::paper(double phi, std::size_t m, std::uint64_t vol,
                                 double p) {
  XD_CHECK(phi > 0 && phi <= 1.0 && m >= 1 && vol >= 1);
  NibbleParams prm;
  prm.preset = Preset::kPaper;
  prm.phi = phi;
  prm.num_edges = m;
  prm.volume = vol;
  prm.ell = ceil_log2(m);
  prm.t0 = static_cast<int>(std::ceil(49.0 * ln_me2(m) / (phi * phi)));
  prm.f_phi = phi * phi * phi / (144.0 * ln_me4(m) * ln_me4(m));
  prm.gamma = 5.0 * phi / (7.0 * 7.0 * 8.0 * ln_me4(m));
  prm.eps_base = phi / (7.0 * 8.0 * ln_me4(m) * prm.t0);

  const double denom =
      56.0 * prm.ell * (prm.t0 + 1.0) * prm.t0 * ln_me4(m) / phi;
  prm.k_instances = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(static_cast<double>(vol) / denom)));
  prm.overlap_cap =
      10 * static_cast<int>(std::ceil(std::log(static_cast<double>(vol))));
  const double g = std::ceil(10.0 * prm.overlap_cap * denom);
  prm.max_iterations = static_cast<std::uint64_t>(
      4.0 * g * std::ceil(std::log(1.0 / p) / std::log(7.0 / 4.0)));
  prm.empty_streak_quit = 0;
  return prm;
}

NibbleParams NibbleParams::practical(double phi, std::size_t m,
                                     std::uint64_t vol) {
  XD_CHECK(phi > 0 && phi <= 1.0 && m >= 1 && vol >= 1);
  NibbleParams prm;
  prm.preset = Preset::kPractical;
  prm.phi = phi;
  prm.num_edges = m;
  prm.volume = vol;
  prm.ell = ceil_log2(m);
  // Same shapes, leading constants ~50-100x smaller, with floors/caps so
  // tiny graphs still walk a little and dense graphs stay tractable.
  prm.t0 = std::clamp(
      static_cast<int>(std::ceil(0.75 * ln_me2(m) / (phi * phi))), 8, 600);
  prm.f_phi = phi / 3.0;  // precondition: practical runs feed φ' ≈ φ cuts
  prm.gamma = phi / (8.0 * ln_me4(m));
  prm.eps_base = phi / (4.0 * ln_me4(m) * prm.t0);

  const double denom = 4.0 * prm.ell * prm.t0 * ln_me4(m) / phi;
  prm.k_instances = static_cast<std::uint64_t>(std::clamp(
      std::ceil(static_cast<double>(vol) / denom), 1.0, 64.0));
  prm.overlap_cap = std::max(
      3, static_cast<int>(std::ceil(std::log(static_cast<double>(vol)))));
  prm.max_iterations = static_cast<std::uint64_t>(std::clamp(
      std::ceil(4.0 * std::log(static_cast<double>(vol))), 8.0, 96.0));
  prm.empty_streak_quit = 3;
  prm.stall_tolerance = 1e-3;
  prm.stall_patience = 3;
  prm.star_relax = 1.0;
  return prm;
}

}  // namespace xd::sparsecut

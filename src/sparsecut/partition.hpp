#pragma once

/// \file partition.hpp
/// Partition(G, φ, p) (paper, Appendix A.4, Lemma 8) and the Theorem 3
/// wrapper: the first distributed *nearly most balanced* sparse cut.
///
/// Partition repeatedly calls ParallelNibble on the remaining graph
/// G{W_{i-1}}, removing each returned cut, until either the removed volume
/// passes Vol(V)/48 (condition 3a), the iteration budget s runs out, or --
/// practical preset only -- several consecutive calls return nothing.
///
/// Guarantees being reproduced (Lemma 8): Vol(C) <= (47/48) Vol(V);
/// Φ(C) = O(φ log n) when C non-empty; and for any target cut S with
/// Vol(S) <= Vol(V)/2 and Φ(S) <= f(φ), w.p. >= 1-p either
/// Vol(C) >= Vol(V)/48 or Vol(S ∩ C) >= Vol(S)/2.

#include <cstdint>
#include <limits>
#include <optional>

#include "congest/ledger.hpp"
#include "graph/access.hpp"
#include "graph/graph.hpp"
#include "graph/vertex_set.hpp"
#include "sparsecut/nibble_params.hpp"
#include "util/rng.hpp"

namespace xd::sparsecut {

/// Output of Partition / the Theorem 3 wrapper.
struct PartitionResult {
  /// The union cut C (ids in the input graph); possibly empty.
  VertexSet cut;
  /// Conductance of C in the input graph (infinity when empty).
  double conductance = std::numeric_limits<double>::infinity();
  /// bal(C) in the input graph.
  double balance = 0.0;
  /// ParallelNibble iterations executed.
  std::uint64_t iterations = 0;
  /// True if the loop ended by hitting the iteration budget s.
  bool hit_iteration_cap = false;
  /// ParallelNibble calls that tripped the overlap guard.
  std::uint64_t overlap_aborts = 0;
  /// Simulated rounds charged across the whole call.
  std::uint64_t rounds = 0;

  [[nodiscard]] bool found() const { return !cut.empty(); }
};

/// Lemma 8's Partition.  Charges rounds to `ledger`; `diameter_hint`
/// bounds the O(D) terms when the caller knows one (e.g. from the LDD).
/// Generic over GraphAccess, and the restarts are zero-copy either way:
/// each iteration's G{W_{i-1}} is a GraphView overlay (restrict_view), not
/// a materialized subgraph, so no CSR is built anywhere in the loop.
template <GraphAccess G>
PartitionResult partition(const G& g, const NibbleParams& prm, Rng& rng,
                          congest::RoundLedger& ledger,
                          std::optional<std::uint32_t> diameter_hint =
                              std::nullopt);

/// Persistence knob for nearly_most_balanced_sparse_cut: `thorough` mode
/// multiplies the iteration budget and disables the practical early exit,
/// approximating the paper's s = Θ(g(φ, Vol) log(1/p)) persistence.  Tiny-
/// balance target cuts are hit with probability proportional to their
/// volume, so only a persistent run finds them reliably -- the cost the
/// paper pays by design and the practical preset trades away by default.

/// The φ -> φ_run re-parameterization of Theorem 3.
///
/// Paper preset: the largest Nibble conductance whose precondition f(φ_run)
/// still admits target cuts of conductance φ: f(x) = x³/(144 ln²(|E|e⁴)),
/// so φ_run = (144 φ ln²(|E|e⁴))^{1/3}, clamped to 1/12.
///
/// Practical preset: φ_run = φ/12, so the Nibble acceptance threshold
/// (C.1*) of 12 φ_run equals φ exactly -- "find cuts of conductance <= φ"
/// means what it says at bench scale.
double theorem3_phi_run(double phi, std::size_t m, Preset preset);

/// Theorem 3's contract on the returned cut: Φ(C) <= this bound (the
/// paper's h(φ) = O(φ^{1/3} log^{5/3} n)).  Paper preset composes the
/// explicit chain Φ(C) <= 276 w φ_run; practical preset is the measured
/// union slack 4φ.  nearly_most_balanced_sparse_cut *enforces* the bound in
/// practical mode: a union whose measured conductance exceeds it is
/// discarded (allowed -- Theorem 3 may return ∅).
double theorem3_conductance_bound(double phi, std::size_t m, std::uint64_t vol,
                                  Preset preset);

/// Theorem 3: nearly most balanced sparse cut with conductance target φ.
/// Runs Partition at φ_run = theorem3_phi_run(φ, ...).  The returned cut,
/// when non-empty, has measured conductance recorded in the result; the
/// theorem's guarantee is conductance O(φ^{1/3} log^{5/3} n) and balance
/// >= min{b/2, 1/48} whenever Φ(G) <= φ.  The decomposition driver calls
/// this with GraphView work items; cut ids come back in the caller's id
/// space (ambient ids for a view -- no provenance mapping needed).
template <GraphAccess G>
PartitionResult nearly_most_balanced_sparse_cut(
    const G& g, double phi, Preset preset, Rng& rng,
    congest::RoundLedger& ledger,
    std::optional<std::uint32_t> diameter_hint = std::nullopt,
    bool thorough = false);

}  // namespace xd::sparsecut

#include "sparsecut/partition.hpp"

#include <algorithm>
#include <cmath>

#include "graph/graph_view.hpp"
#include "graph/metrics.hpp"
#include "sparsecut/parallel_nibble.hpp"
#include "util/check.hpp"

namespace xd::sparsecut {

template <GraphAccess G>
PartitionResult partition(const G& g, const NibbleParams& prm, Rng& rng,
                          congest::RoundLedger& ledger,
                          std::optional<std::uint32_t> diameter_hint) {
  PartitionResult out;
  const std::uint64_t rounds_before = ledger.rounds();
  const std::uint64_t total_volume = g.volume();
  XD_CHECK(total_volume > 0);

  std::vector<char> in_w(g.num_vertices(), 0);
  for (const VertexId v : g.vertices()) in_w[v] = 1;
  std::vector<char> in_c(g.num_vertices(), 0);
  std::uint64_t removed_volume = 0;
  int empty_streak = 0;

  for (std::uint64_t i = 1; i <= prm.max_iterations; ++i) {
    out.iterations = i;

    // G{W_{i-1}} as a zero-copy overlay: same degrees, |E|, and volume a
    // materialized induced_with_loops would report, no CSR rebuilt per
    // restart.  Cut ids come back in g's own id space.
    const GraphView sub = restrict_view(g, VertexSet::from_bitmap(in_w));
    if (sub.volume() == 0) break;
    const NibbleParams sub_prm =
        prm.rescaled(std::max<std::size_t>(sub.num_edges(), 1), sub.volume());

    ParallelNibbleResult pn =
        parallel_nibble(sub, sub_prm, rng, ledger, diameter_hint);
    if (pn.overlap_aborted) ++out.overlap_aborts;

    if (!pn.cut.empty() && prm.preset == Preset::kPractical) {
      // Per-iteration contract check: the union of φ-sparse prefixes should
      // stay within 2x of the Theorem 3 contract (6 φ); a union that does
      // not is treated as an empty round (Lemma 7 gives this structurally
      // under paper constants).
      if (conductance(sub, pn.cut) > 12.0 * sub_prm.phi) {
        pn.cut = VertexSet{};
      }
    }

    if (pn.cut.empty()) {
      ++empty_streak;
      if (prm.empty_streak_quit > 0 && empty_streak >= prm.empty_streak_quit) {
        break;
      }
      if (i == prm.max_iterations) out.hit_iteration_cap = true;
      continue;
    }
    empty_streak = 0;

    for (VertexId pv : pn.cut) {
      XD_CHECK(in_w[pv]);
      in_w[pv] = 0;
      in_c[pv] = 1;
      removed_volume += g.degree(pv);
    }

    // Stop when the remaining volume dropped below (47/48) Vol(V).
    if (static_cast<double>(total_volume - removed_volume) <=
        (47.0 / 48.0) * static_cast<double>(total_volume)) {
      break;
    }
    if (i == prm.max_iterations) out.hit_iteration_cap = true;
  }

  out.cut = VertexSet::from_bitmap(in_c);
  if (!out.cut.empty()) {
    out.conductance = conductance(g, out.cut);
    out.balance = balance(g, out.cut);
  }
  out.rounds = ledger.rounds() - rounds_before;
  return out;
}

template PartitionResult partition(const Graph&, const NibbleParams&, Rng&,
                                   congest::RoundLedger&,
                                   std::optional<std::uint32_t>);
template PartitionResult partition(const GraphView&, const NibbleParams&, Rng&,
                                   congest::RoundLedger&,
                                   std::optional<std::uint32_t>);

double theorem3_phi_run(double phi, std::size_t m, Preset preset) {
  XD_CHECK(phi > 0 && m >= 1);
  if (preset == Preset::kPaper) {
    const double ln4 = std::log(static_cast<double>(m)) + 4.0;
    return std::min(std::cbrt(144.0 * phi * ln4 * ln4), 1.0 / 12.0);
  }
  // Practical: φ_run = φ -- with star_relax = 1 every accepted prefix is
  // φ-sparse, so the target needs no re-scaling.
  return std::min(phi, 0.25);
}

double theorem3_conductance_bound(double phi, std::size_t m, std::uint64_t vol,
                                  Preset preset) {
  XD_CHECK(phi > 0 && m >= 1);
  if (preset == Preset::kPaper) {
    const double w =
        10.0 * std::ceil(std::log(static_cast<double>(std::max<std::uint64_t>(vol, 2))));
    return 276.0 * w * theorem3_phi_run(phi, m, Preset::kPaper);
  }
  return 6.0 * phi;
}

template <GraphAccess G>
PartitionResult nearly_most_balanced_sparse_cut(
    const G& g, double phi, Preset preset, Rng& rng,
    congest::RoundLedger& ledger, std::optional<std::uint32_t> diameter_hint,
    bool thorough) {
  const std::size_t m = std::max<std::size_t>(g.num_edges(), 1);
  const double phi_run = theorem3_phi_run(phi, m, preset);
  NibbleParams prm = preset == Preset::kPaper
                         ? NibbleParams::paper(phi_run, m, g.volume())
                         : NibbleParams::practical(phi_run, m, g.volume());
  if (thorough) {
    prm.max_iterations *= 8;
    prm.empty_streak_quit = 0;
  }
  PartitionResult res = partition(g, prm, rng, ledger, diameter_hint);
  if (res.found() && preset == Preset::kPractical) {
    // Enforce the Theorem 3 contract by measurement (paper mode has it
    // structurally from Lemma 7/8).
    const double bound = theorem3_conductance_bound(phi, m, g.volume(), preset);
    if (res.conductance > bound + 1e-12) {
      res.cut = VertexSet{};
      res.conductance = std::numeric_limits<double>::infinity();
      res.balance = 0.0;
    }
  }
  return res;
}

template PartitionResult nearly_most_balanced_sparse_cut(
    const Graph&, double, Preset, Rng&, congest::RoundLedger&,
    std::optional<std::uint32_t>, bool);
template PartitionResult nearly_most_balanced_sparse_cut(
    const GraphView&, double, Preset, Rng&, congest::RoundLedger&,
    std::optional<std::uint32_t>, bool);

}  // namespace xd::sparsecut

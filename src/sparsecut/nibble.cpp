#include "sparsecut/nibble.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "graph/graph_view.hpp"
#include "spectral/lazy_walk.hpp"
#include "util/check.hpp"

namespace xd::sparsecut {

namespace {

using spectral::SparseDist;

/// Sweep arrays over the support of a sparse distribution, ordered by
/// ρ̃ descending with ties by id (paper: "breaking ties arbitrarily, e.g.
/// by comparing IDs").
struct SupportSweep {
  std::vector<VertexId> order;
  std::vector<double> rho;              // per position
  std::vector<std::uint64_t> vol;       // prefix volume
  std::vector<std::uint64_t> cut;       // prefix |∂|

  [[nodiscard]] std::size_t size() const { return order.size(); }

  [[nodiscard]] double conductance(std::size_t j, std::uint64_t total_volume) const {
    const std::uint64_t v = vol[j - 1];
    const std::uint64_t rest = total_volume - v;
    const std::uint64_t denom = std::min(v, rest);
    if (denom == 0) return std::numeric_limits<double>::infinity();
    return static_cast<double>(cut[j - 1]) / static_cast<double>(denom);
  }
};

template <GraphAccess G>
SupportSweep build_sweep(const G& g, const SparseDist& dist) {
  SupportSweep s;
  const std::size_t k = dist.size();
  std::vector<std::size_t> idx(k);
  for (std::size_t i = 0; i < k; ++i) idx[i] = i;
  std::vector<double> rho(k);
  for (std::size_t i = 0; i < k; ++i) {
    rho[i] = dist.mass[i] / g.degree(dist.support[i]);
  }
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    if (rho[a] != rho[b]) return rho[a] > rho[b];
    return dist.support[a] < dist.support[b];
  });

  s.order.resize(k);
  s.rho.resize(k);
  s.vol.resize(k);
  s.cut.resize(k);
  std::unordered_set<VertexId> in_prefix;
  in_prefix.reserve(k * 2);
  std::uint64_t vol = 0;
  std::int64_t cut = 0;
  for (std::size_t j = 0; j < k; ++j) {
    const VertexId v = dist.support[idx[j]];
    s.order[j] = v;
    s.rho[j] = rho[idx[j]];
    vol += g.degree(v);
    std::int64_t nonloop = 0;
    std::int64_t inside = 0;
    for (VertexId u : g.neighbors(v)) {
      if (u == v) continue;
      ++nonloop;
      if (in_prefix.count(u)) ++inside;
    }
    cut += nonloop - 2 * inside;
    XD_CHECK(cut >= 0);
    in_prefix.insert(v);
    s.vol[j] = vol;
    s.cut[j] = static_cast<std::uint64_t>(cut);
  }
  return s;
}

/// The geometric candidate sequence (j_x) of ApproximateNibble: j_1 = 1 and
/// j_i = max(j_{i-1}+1, largest j with Vol(1..j) <= (1+φ) Vol(1..j_{i-1})).
std::vector<std::size_t> candidate_sequence(const SupportSweep& sweep,
                                            double phi) {
  std::vector<std::size_t> js;
  const std::size_t jmax = sweep.size();
  if (jmax == 0) return js;
  js.push_back(1);
  while (js.back() != jmax) {
    const std::size_t prev = js.back();
    const double limit = (1.0 + phi) * static_cast<double>(sweep.vol[prev - 1]);
    // Largest j with vol <= limit (prefix volumes are increasing).
    auto it = std::upper_bound(sweep.vol.begin(), sweep.vol.end(), limit,
                               [](double lim, std::uint64_t v) {
                                 return lim < static_cast<double>(v);
                               });
    const auto by_volume = static_cast<std::size_t>(it - sweep.vol.begin());
    js.push_back(std::max(prev + 1, by_volume));
  }
  return js;
}

struct Conditions {
  bool c1 = false;
  bool c2 = false;
  bool c3 = false;
  [[nodiscard]] bool all() const { return c1 && c2 && c3; }
};

/// Exact (C.1)-(C.3) at prefix j.
Conditions exact_conditions(const SupportSweep& sweep, std::size_t j,
                            const NibbleParams& prm, std::uint64_t total_volume,
                            int b) {
  Conditions c;
  c.c1 = sweep.conductance(j, total_volume) <= prm.phi;
  c.c2 = sweep.rho[j - 1] >=
         prm.gamma / static_cast<double>(sweep.vol[j - 1]);
  const double vol = static_cast<double>(sweep.vol[j - 1]);
  c.c3 = vol <= (5.0 / 6.0) * static_cast<double>(total_volume) &&
         vol >= (5.0 / 7.0) * std::ldexp(1.0, b - 1);
  return c;
}

/// Relaxed (C.1*)-(C.3*) at candidate j_x with predecessor j_{x-1}.
Conditions starred_conditions(const SupportSweep& sweep, std::size_t jx,
                              std::size_t jprev, const NibbleParams& prm,
                              std::uint64_t total_volume, int b) {
  Conditions c;
  c.c1 = sweep.conductance(jx, total_volume) <= prm.star_relax * prm.phi;
  c.c2 = sweep.rho[jprev - 1] >=
         prm.gamma / static_cast<double>(sweep.vol[jx - 1]);
  const double vol = static_cast<double>(sweep.vol[jx - 1]);
  c.c3 = vol <= (11.0 / 12.0) * static_cast<double>(total_volume) &&
         vol >= (5.0 / 7.0) * std::ldexp(1.0, b - 1);
  return c;
}

VertexSet sweep_prefix_to_set(const SupportSweep& sweep, std::size_t j) {
  return VertexSet(std::vector<VertexId>(
      sweep.order.begin(), sweep.order.begin() + static_cast<std::ptrdiff_t>(j)));
}

/// Relative L1 movement between consecutive truncated distributions, by a
/// deterministic two-pointer merge over the ascending supports.  The
/// accumulation order is the vertex order, so a GraphView run (ambient ids)
/// and a materialized run (local ids) sum in the same sequence -- a hash-map
/// iteration here would tie the float sum to the id *values* and break the
/// view/materialized bit-identity.
std::pair<double, double> stall_movement(const SparseDist& prev,
                                         const SparseDist& dist) {
  double moved = 0.0;
  double total = 0.0;
  std::size_t a = 0;
  std::size_t b = 0;
  while (a < prev.size() || b < dist.size()) {
    if (b == dist.size() ||
        (a < prev.size() && prev.support[a] < dist.support[b])) {
      moved += prev.mass[a];
      ++a;
    } else if (a == prev.size() || dist.support[b] < prev.support[a]) {
      moved += dist.mass[b];
      total += dist.mass[b];
      ++b;
    } else {
      moved += std::abs(dist.mass[b] - prev.mass[a]);
      total += dist.mass[b];
      ++a;
      ++b;
    }
  }
  return {moved, total};
}

template <GraphAccess G>
NibbleResult run_nibble(const G& g, VertexId v, const NibbleParams& prm,
                        int b, bool approximate) {
  XD_CHECK_MSG(b >= 1 && b <= prm.ell, "scale b=" << b << " outside [1, ℓ]");
  XD_CHECK_MSG(g.degree(v) > 0, "start vertex " << v << " is isolated");

  const double eps = prm.eps_b(b);
  const std::uint64_t total_volume = g.volume();

  NibbleResult result;
  std::unordered_set<VertexId> touched;
  SparseDist dist = SparseDist::point(v);
  touched.insert(v);
  int stall_run = 0;

  for (int t = 1; t <= prm.t0; ++t) {
    result.work_volume += [&] {
      std::uint64_t w = 0;
      for (VertexId u : dist.support) w += g.degree(u);
      return w;
    }();
    SparseDist prev = dist;
    dist = spectral::truncated_step(g, dist, eps);
    result.steps_run = t;
    if (dist.size() == 0) break;  // all mass truncated away
    for (VertexId u : dist.support) touched.insert(u);

    if (prm.stall_tolerance > 0.0) {
      const auto [moved, total] = stall_movement(prev, dist);
      stall_run = (total > 0 && moved / total < prm.stall_tolerance)
                      ? stall_run + 1
                      : 0;
    }

    const SupportSweep sweep = build_sweep(g, dist);
    if (approximate) {
      const auto js = candidate_sequence(sweep, prm.phi);
      for (std::size_t x = 0; x < js.size(); ++x) {
        const std::size_t jx = js[x];
        ++result.sweep_candidates;
        const bool boundary = x == 0 || jx == js[x - 1] + 1;
        const Conditions c =
            boundary ? exact_conditions(sweep, jx, prm, total_volume, b)
                     : starred_conditions(sweep, jx, js[x - 1], prm,
                                          total_volume, b);
        if (c.all()) {
          result.cut = sweep_prefix_to_set(sweep, jx);
          result.t_used = t;
          result.j_used = jx;
          result.cut_conductance = sweep.conductance(jx, total_volume);
          result.cut_volume = sweep.vol[jx - 1];
          break;
        }
      }
    } else {
      for (std::size_t j = 1; j <= sweep.size(); ++j) {
        ++result.sweep_candidates;
        if (exact_conditions(sweep, j, prm, total_volume, b).all()) {
          result.cut = sweep_prefix_to_set(sweep, j);
          result.t_used = t;
          result.j_used = j;
          result.cut_conductance = sweep.conductance(j, total_volume);
          result.cut_volume = sweep.vol[j - 1];
          break;
        }
      }
    }
    if (result.found()) break;
    if (prm.stall_tolerance > 0.0 && stall_run >= prm.stall_patience) break;
  }

  result.touched.assign(touched.begin(), touched.end());
  std::sort(result.touched.begin(), result.touched.end());
  return result;
}

}  // namespace

template <GraphAccess G>
NibbleResult nibble(const G& g, VertexId v, const NibbleParams& prm, int b) {
  return run_nibble(g, v, prm, b, /*approximate=*/false);
}

template <GraphAccess G>
NibbleResult approximate_nibble(const G& g, VertexId v,
                                const NibbleParams& prm, int b) {
  return run_nibble(g, v, prm, b, /*approximate=*/true);
}

template NibbleResult nibble(const Graph&, VertexId, const NibbleParams&, int);
template NibbleResult nibble(const GraphView&, VertexId, const NibbleParams&,
                             int);
template NibbleResult approximate_nibble(const Graph&, VertexId,
                                         const NibbleParams&, int);
template NibbleResult approximate_nibble(const GraphView&, VertexId,
                                         const NibbleParams&, int);

}  // namespace xd::sparsecut

#include "sparsecut/distributed_nibble.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_map>

#include "congest/engine.hpp"
#include "primitives/aggregate.hpp"
#include "primitives/forest.hpp"
#include "primitives/tree_search.hpp"
#include "util/check.hpp"

namespace xd::sparsecut {

using congest::Envelope;
using congest::Message;
using congest::Network;
using congest::Outbox;
using spectral::SparseDist;

namespace {

constexpr std::uint32_t kMassTag = 0x91;
constexpr std::uint32_t kKeyTag = 0x92;

}  // namespace

std::vector<SparseDist> distributed_truncated_walk(Network& net,
                                                   VertexId start, int steps,
                                                   double epsilon,
                                                   std::string_view reason) {
  const Graph& g = net.graph();
  const std::size_t n = g.num_vertices();
  XD_CHECK(start < n);
  XD_CHECK_MSG(g.degree(start) > 0, "start vertex is isolated");

  std::vector<double> mass(n, 0.0);
  mass[start] = 1.0;

  std::vector<SparseDist> evolution;
  evolution.push_back(SparseDist::point(start));

  // One engine superstep per walk step: the send phase pushes half of each
  // support vertex's mass in equal per-slot shares; the receive phase folds
  // in ascending sender order, then retention, then truncation -- the same
  // order as spectral::truncated_step so the two agree exactly.
  std::vector<double> next(n, 0.0);
  auto program = congest::make_program(
      [&](VertexId v, Outbox& out) {
        if (mass[v] <= 0.0) return;
        const double share = mass[v] / (2.0 * g.degree(v));
        auto nbrs = g.neighbors(v);
        for (std::uint32_t slot = 0; slot < nbrs.size(); ++slot) {
          if (nbrs[slot] == v) continue;
          Message m{kMassTag, 0, 0};
          m.set_double(0, share);
          out.send(slot, m);
        }
      },
      [&](VertexId u, std::span<const Envelope> inbox) {
        next[u] = 0.0;
        if (inbox.empty() && mass[u] <= 0.0) return;
        double m = 0.0;
        for (const auto& env : inbox) {
          // The flat inboxes are canonically sender-ascending, the fold
          // order the truncated-step contract requires.
          if (env.msg.tag == kMassTag) m += env.msg.get_double(0);
        }
        if (mass[u] > 0.0) {
          m += mass[u] / 2.0 + static_cast<double>(g.loops_at(u)) * mass[u] /
                                   (2.0 * g.degree(u));
        }
        if (m >= 2.0 * epsilon * g.degree(u)) next[u] = m;
      });

  for (int t = 1; t <= steps; ++t) {
    bool any = false;
    for (VertexId v = 0; v < n; ++v) any = any || mass[v] > 0.0;
    if (!any) break;
    net.run_round(program, reason);
    mass = next;

    SparseDist dist;
    for (VertexId v = 0; v < n; ++v) {
      if (mass[v] > 0.0) {
        dist.support.push_back(v);
        dist.mass.push_back(mass[v]);
      }
    }
    if (dist.size() == 0) break;
    evolution.push_back(std::move(dist));
  }
  return evolution;
}


namespace {

/// Σ over prefix members (OrderKey <= pivot) of their neighbor count
/// *outside* the prefix == |∂(prefix)|.  Each vertex decides membership of
/// itself and its neighbors locally from the keys exchanged this step.
std::uint64_t distributed_prefix_cut(
    Network& net, const prim::Forest& forest, VertexId root,
    const std::vector<double>& keys,
    const std::vector<std::vector<std::pair<VertexId, double>>>& nbr_keys,
    const prim::OrderKey& pivot, std::string_view reason) {
  const Graph& g = net.graph();
  const std::size_t n = g.num_vertices();

  // Pivot broadcast: two words (key bits, id) down the tree.
  std::uint64_t key_bits;
  std::memcpy(&key_bits, &pivot.key, sizeof(key_bits));
  std::vector<std::uint64_t> root_val(n, 0);
  root_val[root] = key_bits;
  (void)prim::broadcast_from_roots(net, forest, root_val, reason);
  root_val[root] = pivot.id;
  (void)prim::broadcast_from_roots(net, forest, root_val, reason);

  std::vector<std::uint64_t> outside_count(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    if (!forest.is_active(v) || forest.root[v] != root) continue;
    if (!(prim::OrderKey{keys[v], v}.precedes_eq(pivot))) continue;
    std::uint64_t outside = 0;
    std::unordered_map<VertexId, double> known;
    for (const auto& [w, kw] : nbr_keys[v]) known[w] = kw;
    for (const VertexId w : g.neighbors(v)) {
      if (w == v) continue;
      const auto it = known.find(w);
      const double kw = it == known.end() ? 0.0 : it->second;
      if (!(prim::OrderKey{kw, w}.precedes_eq(pivot))) ++outside;
    }
    outside_count[v] = outside;
  }
  const auto sums = prim::convergecast_sum(net, forest, outside_count, reason);
  return sums[root];
}

}  // namespace

DistributedNibbleResult distributed_approximate_nibble(Network& net,
                                                       VertexId start,
                                                       const NibbleParams& prm,
                                                       int b,
                                                       std::string_view reason) {
  const Graph& g = net.graph();
  const std::size_t n = g.num_vertices();
  XD_CHECK(b >= 1 && b <= prm.ell);
  XD_CHECK_MSG(g.degree(start) > 0, "start vertex is isolated");
  const std::uint64_t rounds_before = net.ledger().rounds();
  const double eps = prm.eps_b(b);
  const std::uint64_t total_volume = g.volume();

  DistributedNibbleResult out;

  // The full truncated evolution, kernel-executed (one round per step).
  const auto evolution =
      distributed_truncated_walk(net, start, prm.t0, eps, reason);

  // P* grows monotonically; its induced subgraph is connected (paper).
  std::vector<char> touched(n, 0);
  touched[start] = 1;
  std::vector<std::uint64_t> weights(n);
  for (VertexId v = 0; v < n; ++v) weights[v] = g.degree(v);

  for (std::size_t t = 1; t < evolution.size() && !out.found(); ++t) {
    const SparseDist& dist = evolution[t];
    if (dist.size() == 0) break;
    for (const VertexId v : dist.support) touched[v] = 1;

    // Tree over P*-so-far, rooted at the start vertex.
    const prim::Forest forest =
        prim::build_forest_from_roots(net, touched, {start}, reason);

    // Per-step keys: rho for support vertices, 0 elsewhere.
    std::vector<double> keys(n, 0.0);
    for (std::size_t i = 0; i < dist.size(); ++i) {
      keys[dist.support[i]] = dist.mass[i] / g.degree(dist.support[i]);
    }

    // One superstep: every support vertex tells neighbors its key (the
    // local data for prefix-cut evaluation).
    std::vector<std::vector<std::pair<VertexId, double>>> nbr_keys(n);
    auto key_program = congest::make_program(
        [&](VertexId v, Outbox& out) {
          if (keys[v] <= 0.0) return;
          auto nbrs = g.neighbors(v);
          for (std::uint32_t slot = 0; slot < nbrs.size(); ++slot) {
            if (nbrs[slot] == v) continue;
            Message m{kKeyTag, 0, 0};
            m.set_double(0, keys[v]);
            out.send(slot, m);
          }
        },
        [&](VertexId v, std::span<const Envelope> inbox) {
          for (const auto& env : inbox) {
            if (env.msg.tag == kKeyTag) {
              nbr_keys[v].emplace_back(env.from, env.msg.get_double(0));
            }
          }
        });
    net.run_round(key_program, reason);

    const std::uint64_t jmax = dist.size();

    // Candidate walk (j_x), all statistics via Lemma 9 queries.
    std::uint64_t j = 1;
    std::uint64_t j_prev = 0;
    double rho_prev = 0.0;
    std::uint64_t vol_prev = 0;
    while (true) {
      const auto sel =
          prim::rank_select(net, forest, start, keys, weights, j, reason);
      ++out.rank_selects;
      XD_CHECK(sel.has_value());
      const std::uint64_t vol_j = sel->prefix_weight;
      const std::uint64_t cut_j = distributed_prefix_cut(
          net, forest, start, keys, nbr_keys,
          prim::OrderKey{sel->key, sel->vertex}, reason);

      // Conditions, mirroring the orchestrated implementation exactly.
      const bool boundary = j_prev == 0 || j == j_prev + 1;
      const std::uint64_t denom = std::min(vol_j, total_volume - vol_j);
      const double phi_j = denom == 0 ? std::numeric_limits<double>::infinity()
                                      : static_cast<double>(cut_j) /
                                            static_cast<double>(denom);
      bool c1, c2, c3;
      const double vold = static_cast<double>(vol_j);
      if (boundary) {
        c1 = phi_j <= prm.phi;
        c2 = sel->key >= prm.gamma / vold;
        c3 = vold <= (5.0 / 6.0) * static_cast<double>(total_volume) &&
             vold >= (5.0 / 7.0) * std::ldexp(1.0, b - 1);
      } else {
        c1 = phi_j <= prm.star_relax * prm.phi;
        c2 = rho_prev >= prm.gamma / vold;
        c3 = vold <= (11.0 / 12.0) * static_cast<double>(total_volume) &&
             vold >= (5.0 / 7.0) * std::ldexp(1.0, b - 1);
      }
      if (c1 && c2 && c3) {
        // Assemble the prefix: members are exactly the vertices whose
        // OrderKey precedes the pivot (each knows locally; gathered here).
        std::vector<VertexId> prefix;
        for (VertexId v = 0; v < n; ++v) {
          if (keys[v] > 0.0 &&
              prim::OrderKey{keys[v], v}.precedes_eq(
                  prim::OrderKey{sel->key, sel->vertex})) {
            prefix.push_back(v);
          }
        }
        out.cut = VertexSet(std::move(prefix));
        out.t_used = static_cast<int>(t);
        out.j_used = j;
        break;
      }
      if (j == jmax) break;

      // Next candidate: max(j+1, largest j' with vol <= (1+phi) vol_j),
      // by binary search over ranks (each probe is one rank_select).
      const double limit = (1.0 + prm.phi) * static_cast<double>(vol_j);
      std::uint64_t lo = j + 1;
      std::uint64_t hi = jmax;
      std::uint64_t best = j;
      while (lo <= hi) {
        const std::uint64_t mid = lo + (hi - lo) / 2;
        const auto probe =
            prim::rank_select(net, forest, start, keys, weights, mid, reason);
        ++out.rank_selects;
        XD_CHECK(probe.has_value());
        if (static_cast<double>(probe->prefix_weight) <= limit) {
          best = mid;
          lo = mid + 1;
        } else {
          hi = mid - 1;
        }
      }
      j_prev = j;
      rho_prev = sel->key;
      vol_prev = vol_j;
      (void)vol_prev;
      j = std::max(j + 1, best);
    }
  }

  out.rounds = net.ledger().rounds() - rounds_before;
  return out;
}

}  // namespace xd::sparsecut

#pragma once

/// \file nibble.hpp
/// Nibble and ApproximateNibble (paper, Appendix A.1-A.2).
///
/// Nibble(G, v, φ, b) runs the ε_b-truncated lazy walk from v for t₀ steps
/// and, at each step, sweeps the support by ρ̃ = p̃/deg looking for a prefix
/// π̃_t(1..j) satisfying
///   (C.1) Φ(π̃_t(1..j)) <= φ
///   (C.2) ρ̃_t(π̃_t(j)) >= γ / Vol(π̃_t(1..j))
///   (C.3) (5/6) Vol(V) >= Vol(π̃_t(1..j)) >= (5/7) 2^{b-1}.
///
/// ApproximateNibble only inspects the O(φ⁻¹ log Vol) geometric candidate
/// sequence (j_x), testing the relaxed (C.1*)-(C.3*) at interior candidates
/// -- the price of distributed implementability (Lemma 9) is a 12x
/// conductance slack.

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/access.hpp"
#include "graph/graph.hpp"
#include "graph/vertex_set.hpp"
#include "sparsecut/nibble_params.hpp"

namespace xd::sparsecut {

/// Output of one Nibble-family run, plus the cost observables the round
/// ledger charges from (docs/rounds.md).
struct NibbleResult {
  /// The cut C = π̃_t(1..j); empty when no (t, j) passed.
  VertexSet cut;
  /// Walk step at which the cut was found (0 = none).
  int t_used = 0;
  /// 1-based sweep prefix length (0 = none).
  std::size_t j_used = 0;
  /// Conductance of the returned prefix in the run graph.
  double cut_conductance = std::numeric_limits<double>::infinity();
  /// Vol of the returned prefix.
  std::uint64_t cut_volume = 0;

  /// Every vertex that ever carried positive truncated mass; P* (Def. 2) is
  /// exactly the set of edges incident to these.
  std::vector<VertexId> touched;
  /// Diffusion steps actually executed (<= t₀; stops early on success or
  /// when the support dies).
  int steps_run = 0;
  /// Number of (t, candidate-j) condition evaluations (each costs one
  /// O(height · log) distributed binary search per Lemma 9).
  std::uint64_t sweep_candidates = 0;
  /// Σ_t Vol(support at t): the kernel message count of the diffusion.
  std::uint64_t work_volume = 0;

  [[nodiscard]] bool found() const { return !cut.empty(); }
};

/// Exact Nibble (checks every prefix).  Requires 1 <= b <= prm.ell and
/// deg(v) > 0.  Generic over GraphAccess: run on a GraphView it walks G{S}
/// in place (masked slots deposit mass back), bit-identical to a run on the
/// materialized graph modulo the id renumbering.
template <GraphAccess G>
NibbleResult nibble(const G& g, VertexId v, const NibbleParams& prm, int b);

/// ApproximateNibble (checks the geometric candidate sequence only).
template <GraphAccess G>
NibbleResult approximate_nibble(const G& g, VertexId v,
                                const NibbleParams& prm, int b);

}  // namespace xd::sparsecut

#include "sparsecut/random_nibble.hpp"

#include "graph/graph_view.hpp"
#include "util/check.hpp"

namespace xd::sparsecut {

template <GraphAccess G>
VertexId sample_by_degree(const G& g, Rng& rng) {
  const std::uint64_t vol = g.volume();
  XD_CHECK_MSG(vol > 0, "cannot sample from a zero-volume graph");
  std::uint64_t r = rng.next_below(vol);
  for (const VertexId v : g.vertices()) {
    const std::uint64_t d = g.degree(v);
    if (r < d) return v;
    r -= d;
  }
  XD_CHECK(false);  // unreachable: degrees sum to vol
  return 0;
}

template <GraphAccess G>
RandomNibbleResult random_nibble(const G& g, const NibbleParams& prm,
                                 Rng& rng) {
  RandomNibbleResult out;
  out.start = sample_by_degree(g, rng);
  out.scale = rng.next_nibble_scale(prm.ell);
  out.inner = approximate_nibble(g, out.start, prm, out.scale);
  return out;
}

template VertexId sample_by_degree(const Graph&, Rng&);
template VertexId sample_by_degree(const GraphView&, Rng&);
template RandomNibbleResult random_nibble(const Graph&, const NibbleParams&,
                                          Rng&);
template RandomNibbleResult random_nibble(const GraphView&, const NibbleParams&,
                                          Rng&);

}  // namespace xd::sparsecut

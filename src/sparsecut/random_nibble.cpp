#include "sparsecut/random_nibble.hpp"

#include "util/check.hpp"

namespace xd::sparsecut {

VertexId sample_by_degree(const Graph& g, Rng& rng) {
  const std::uint64_t vol = g.volume();
  XD_CHECK_MSG(vol > 0, "cannot sample from a zero-volume graph");
  std::uint64_t r = rng.next_below(vol);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const std::uint64_t d = g.degree(v);
    if (r < d) return v;
    r -= d;
  }
  XD_CHECK(false);  // unreachable: degrees sum to vol
  return 0;
}

RandomNibbleResult random_nibble(const Graph& g, const NibbleParams& prm,
                                 Rng& rng) {
  RandomNibbleResult out;
  out.start = sample_by_degree(g, rng);
  out.scale = rng.next_nibble_scale(prm.ell);
  out.inner = approximate_nibble(g, out.start, prm, out.scale);
  return out;
}

}  // namespace xd::sparsecut

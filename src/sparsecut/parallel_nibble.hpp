#pragma once

/// \file parallel_nibble.hpp
/// ParallelNibble(G, φ) (paper, Appendix A.4): run k RandomNibbles
/// simultaneously; abort with C = ∅ if any edge participates in more than
/// w = O(log Vol) of them (the congestion guard that makes simultaneous
/// execution affordable in CONGEST); otherwise return the largest prefix
/// union U_{i*} with Vol(U_{i*}) <= (23/24) Vol(V).
///
/// Round accounting (charged to the supplied ledger; labels below):
///   "ParallelNibble/generate"  Lemma 10 instance generation: O(D + ℓ)
///   "ParallelNibble/nibbles"   multiplexed diffusion + Lemma 9 sweeps:
///                              max-instance cost x observed overlap
///   "ParallelNibble/select"    random binary search for i*: O(D log k)

#include <cstdint>
#include <optional>
#include <vector>

#include "congest/ledger.hpp"
#include "graph/access.hpp"
#include "graph/graph.hpp"
#include "graph/vertex_set.hpp"
#include "sparsecut/nibble_params.hpp"
#include "sparsecut/random_nibble.hpp"
#include "util/rng.hpp"

namespace xd::sparsecut {

/// Output of one ParallelNibble call.
struct ParallelNibbleResult {
  /// U_{i*}, or empty (no instance found a cut, or the overlap guard fired).
  VertexSet cut;
  /// True iff some edge exceeded the participation cap w.
  bool overlap_aborted = false;
  /// Number of RandomNibble instances executed (the paper's k).
  std::uint64_t instances = 0;
  /// Instances whose cut made it into U_{i*}.
  std::uint64_t instances_used = 0;
  /// Max per-edge participation observed (<= w unless aborted).
  int max_overlap = 0;
  /// Simulated rounds charged for this call.
  std::uint64_t rounds = 0;
};

/// Runs ParallelNibble.  `diameter_hint`, when provided, is used for the
/// O(D) terms of the charging rules (the expander-decomposition driver
/// passes the LDD diameter bound); otherwise a double-sweep BFS estimate of
/// the current graph is used.  Generic over GraphAccess; on a GraphView the
/// overlap guard keys participation by ambient EdgeId (masked slots are
/// loops and never participate), charging the same rounds as a materialized
/// run.
template <GraphAccess G>
ParallelNibbleResult parallel_nibble(const G& g, const NibbleParams& prm,
                                     Rng& rng, congest::RoundLedger& ledger,
                                     std::optional<std::uint32_t> diameter_hint =
                                         std::nullopt);

}  // namespace xd::sparsecut

#pragma once

/// \file nibble_params.hpp
/// The parameter schedule of the Nibble stack (paper, Appendix A):
///
///   ℓ    = ⌈log₂ |E|⌉
///   t₀   = 49 ln(|E| e²) / φ²
///   f(φ) = φ³ / (144 ln²(|E| e⁴))
///   γ    = 5 φ / (7·7·8 ln(|E| e⁴))
///   ε_b  = φ / (7·8 ln(|E| e⁴) t₀ 2^b)
///
/// plus the ParallelNibble / Partition quantities
///
///   k = ⌈Vol(V) / (56 ℓ (t₀+1) t₀ ln(|E| e⁴) φ⁻¹)⌉        (instances)
///   w = 10 ⌈ln Vol(V)⌉                                     (overlap cap)
///   g(φ, Vol) = ⌈10 w · 56 ℓ (t₀+1) t₀ ln(|E| e⁴) φ⁻¹⌉
///   s = 4 g(φ, Vol) ⌈log_{7/4}(1/p)⌉                        (iterations)
///
/// Two presets (docs/rounds.md): `paper()` -- the literal constants, used
/// to unit-test the formulas and for strict-mode runs on tiny inputs; and
/// `practical()` -- the same functional shapes with small leading constants
/// so the stack runs at bench scale.  The paper itself stresses that its
/// polylog factors are enormous; practical mode is how every experiment
/// executes, and the bench tables report shapes, not absolute constants.

#include <cstdint>

namespace xd::sparsecut {

/// Which constant regime generated a NibbleParams (so derived calls, e.g.
/// Partition on shrinking subgraphs, can re-derive consistently).
enum class Preset {
  kPaper,
  kPractical,
};

/// Fully-resolved parameters for one conductance target φ on a graph with
/// m edges and the given total volume.
struct NibbleParams {
  Preset preset = Preset::kPractical;
  double phi = 0.1;          ///< conductance target
  std::size_t num_edges = 0; ///< |E| of the ambient graph
  std::uint64_t volume = 0;  ///< Vol(V) of the ambient graph

  int ell = 1;               ///< ⌈log₂ |E|⌉, the largest scale b
  int t0 = 1;                ///< walk length
  double f_phi = 0;          ///< precondition conductance f(φ)
  double gamma = 0;          ///< sweep mass threshold γ
  double eps_base = 0;       ///< ε_b = eps_base / 2^b
  /// (C.1*) threshold multiplier: paper = 12 (needed by the candidate-
  /// sparsification proof); practical = 1, so every accepted prefix is
  /// genuinely φ-sparse -- at bench scale 12φ is often >= 1 and would make
  /// the condition vacuous.
  double star_relax = 12.0;

  // ParallelNibble / Partition knobs.
  std::uint64_t k_instances = 1;   ///< parallel RandomNibble count
  int overlap_cap = 2;             ///< w
  std::uint64_t max_iterations = 1;///< s (Partition loop bound)
  /// Practical early exit: quit Partition after this many consecutive
  /// empty ParallelNibble results (0 = never, paper mode).
  int empty_streak_quit = 0;

  /// Practical diffusion stall cutoff: stop a Nibble walk once the relative
  /// L1 change per step stays below `stall_tolerance` for `stall_patience`
  /// consecutive steps (the distribution is stationary on its support, so
  /// later sweeps are frozen).  stall_tolerance = 0 disables (paper mode).
  double stall_tolerance = 0.0;
  int stall_patience = 3;

  [[nodiscard]] double eps_b(int b) const;

  /// Literal paper constants; p is the Partition failure parameter.
  static NibbleParams paper(double phi, std::size_t m, std::uint64_t vol,
                            double p = 1e-9);

  /// Bench-scale constants with the same functional shapes.
  static NibbleParams practical(double phi, std::size_t m, std::uint64_t vol);

  /// Same preset and φ, re-derived for a different graph size (Partition
  /// recomputes per current subgraph, matching the paper's f(φ, Vol(W))
  /// notation in the Lemma 8 proof).
  [[nodiscard]] NibbleParams rescaled(std::size_t m, std::uint64_t vol) const;

  /// Same preset and graph size, different conductance target (the
  /// expander decomposition walks the φ_i schedule this way).
  [[nodiscard]] NibbleParams with_phi(double new_phi) const;
};

}  // namespace xd::sparsecut

#pragma once

/// \file distributed_nibble.hpp
/// Kernel-executed truncated diffusion: the communication core of
/// ApproximateNibble run as genuine CONGEST message passing (paper,
/// Lemma 9 -- "the calculation of p̃(u) and ρ̃(u) ... can be done in t₀
/// rounds").
///
/// Each step, every vertex holding truncated mass sends mass/(2 deg) along
/// each non-loop adjacency slot as one bounded message; receivers fold their
/// inbox in ascending sender order, add their lazy/loop retention, and apply
/// the ε-truncation locally.  The result matches spectral::truncated_walk
/// bit-for-bit (same summation order), which is the library's evidence that
/// the orchestrated Nibble stack charges rounds for exactly the traffic a
/// real network would carry.

#include <string_view>
#include <vector>

#include "congest/network.hpp"
#include "graph/vertex_set.hpp"
#include "sparsecut/nibble_params.hpp"
#include "spectral/lazy_walk.hpp"

namespace xd::sparsecut {

/// Runs `steps` truncated lazy-walk steps from `start` through the kernel.
/// Returns the distribution after every step (index t, t = 0 is χ_start).
/// Stops early (returning fewer entries) once all mass is truncated away.
std::vector<spectral::SparseDist> distributed_truncated_walk(
    congest::Network& net, VertexId start, int steps, double epsilon,
    std::string_view reason);

/// Result of the end-to-end distributed ApproximateNibble.
struct DistributedNibbleResult {
  VertexSet cut;      ///< empty when no (t, j) passed
  int t_used = 0;     ///< walk step of success (0 = none)
  std::size_t j_used = 0;
  std::uint64_t rank_selects = 0;  ///< Lemma 9 queries issued
  std::uint64_t rounds = 0;        ///< total kernel rounds for this call

  [[nodiscard]] bool found() const { return !cut.empty(); }
};

/// ApproximateNibble(G, v, φ, b) executed entirely through the kernel:
/// the diffusion runs as per-edge messages; each step builds/extends a BFS
/// tree over P* (the touched set -- connected, per the paper) and evaluates
/// the candidate sequence (j_x) with Lemma 9 rank selections (random
/// binary search, O(height log n) rounds each), prefix-cut convergecasts,
/// and pivot broadcasts.  No vertex ever uses non-local information.
///
/// Produces the *same* cut as the orchestrated approximate_nibble (with
/// stall cutoff disabled), which the tests assert -- this is the library's
/// end-to-end witness that the charged Nibble stack equals real message
/// passing.
DistributedNibbleResult distributed_approximate_nibble(congest::Network& net,
                                                       VertexId start,
                                                       const NibbleParams& prm,
                                                       int b,
                                                       std::string_view reason);

}  // namespace xd::sparsecut

#pragma once

/// \file random_nibble.hpp
/// RandomNibble(G, φ) (paper, Appendix A.3): sample a start vertex from the
/// degree distribution ψ_V and a scale b in [1, ℓ] with Pr[b=i] ∝ 2^{-i},
/// then run ApproximateNibble(G, v, φ, b).

#include "graph/access.hpp"
#include "graph/graph.hpp"
#include "sparsecut/nibble.hpp"
#include "sparsecut/nibble_params.hpp"
#include "util/rng.hpp"

namespace xd::sparsecut {

/// A RandomNibble run: the sampled inputs plus the inner result.
struct RandomNibbleResult {
  VertexId start = 0;
  int scale = 1;
  NibbleResult inner;
};

/// Runs one RandomNibble.  Requires g.volume() > 0.
template <GraphAccess G>
RandomNibbleResult random_nibble(const G& g, const NibbleParams& prm,
                                 Rng& rng);

/// Degree-distribution vertex sample (ψ_V): Pr[x = v] = deg(v)/Vol(V).
/// Exposed for tests; Lemma 10's distributed token descent computes the
/// same distribution over a BFS tree.  Iterates vertices() in ascending
/// order, so a view samples the same vertex as its materialized twin for
/// the same draw.
template <GraphAccess G>
VertexId sample_by_degree(const G& g, Rng& rng);

}  // namespace xd::sparsecut

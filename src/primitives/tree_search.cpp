#include "primitives/tree_search.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "primitives/aggregate.hpp"
#include "util/check.hpp"

namespace xd::prim {

using congest::Network;

namespace {

/// Interval of the sweep order: vertices v with L.precedes_eq(v) and
/// v.precedes_eq(R).  Unbounded ends use ±infinity keys.
struct Interval {
  OrderKey lo{std::numeric_limits<double>::infinity(), 0};   // order-first
  OrderKey hi{-std::numeric_limits<double>::infinity(),
              static_cast<VertexId>(-1)};                     // order-last

  [[nodiscard]] bool contains(const OrderKey& x) const {
    return lo.precedes_eq(x) && x.precedes_eq(hi);
  }
};

/// Uniform random member of the interval within root's tree: weighted
/// top-down descent by candidate counts (each vertex weights itself 1 if
/// in the interval).  Counts come from one convergecast; the descent is a
/// depth-bounded sequence of single-child messages, charged as `height`
/// rounds via tick (the data path is deterministic given the counts).
std::optional<OrderKey> sample_in_interval(
    Network& net, const Forest& forest, VertexId root,
    const std::vector<double>& keys, const Interval& iv,
    std::string_view reason) {
  const std::size_t n = net.num_vertices();
  std::vector<std::uint64_t> indicator(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    if (forest.is_active(v) && forest.root[v] == root &&
        iv.contains(OrderKey{keys[v], v})) {
      indicator[v] = 1;
    }
  }
  const auto counts = convergecast_sum(net, forest, indicator, reason);
  if (counts[root] == 0) return std::nullopt;

  // Top-down descent: at v, stop with probability own/count(v), else move
  // to a child with probability counts[child]/rest.
  VertexId v = root;
  auto& rng = net.rng(root);
  std::uint64_t descended = 0;
  for (;;) {
    const std::uint64_t total = counts[v];
    XD_CHECK(total > 0);
    std::uint64_t r = rng.next_below(total);
    if (r < indicator[v]) break;
    r -= indicator[v];
    VertexId next = kNoVertex;
    for (const VertexId c : forest.children[v]) {
      if (r < counts[c]) {
        next = c;
        break;
      }
      r -= counts[c];
    }
    XD_CHECK_MSG(next != kNoVertex, "descent counts inconsistent at " << v);
    v = next;
    ++descended;
  }
  // One message per level of the descent path.
  net.tick(std::max<std::uint64_t>(descended, 1), reason);
  return OrderKey{keys[v], v};
}

}  // namespace

std::pair<std::uint64_t, std::uint64_t> count_prefix(
    Network& net, const Forest& forest, VertexId root,
    const std::vector<double>& keys, const std::vector<std::uint64_t>& weights,
    const OrderKey& pivot, std::string_view reason) {
  const std::size_t n = net.num_vertices();
  std::vector<std::uint64_t> count_ind(n, 0);
  std::vector<std::uint64_t> weight_ind(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    if (forest.is_active(v) && forest.root[v] == root &&
        OrderKey{keys[v], v}.precedes_eq(pivot)) {
      count_ind[v] = 1;
      weight_ind[v] = weights[v];
    }
  }
  const auto counts = convergecast_sum(net, forest, count_ind, reason);
  const auto wsums = convergecast_sum(net, forest, weight_ind, reason);
  return {counts[root], wsums[root]};
}

std::optional<RankSelect> rank_select(Network& net, const Forest& forest,
                                      VertexId root,
                                      const std::vector<double>& keys,
                                      const std::vector<std::uint64_t>& weights,
                                      std::uint64_t j, std::string_view reason) {
  const std::size_t n = net.num_vertices();
  XD_CHECK(keys.size() == n && weights.size() == n);
  XD_CHECK(j >= 1);

  Interval iv;
  RankSelect out;
  // Expected O(log n) pivots; the hard cap only guards against degenerate
  // RNG streaks.
  for (int iter = 0; iter < 200; ++iter) {
    const auto pivot = sample_in_interval(net, forest, root, keys, iv, reason);
    if (!pivot) return std::nullopt;  // interval empty: j out of range
    const auto [rank, weight] =
        count_prefix(net, forest, root, keys, weights, *pivot, reason);
    ++out.pivots;
    if (rank == j) {
      out.vertex = pivot->id;
      out.key = pivot->key;
      out.prefix_weight = weight;
      return out;
    }
    if (rank > j) {
      // Pivot is after the target: shrink from above, excluding pivot.
      iv.hi = *pivot;
      // Exclude the pivot itself: the next candidates must strictly
      // precede it.  Represent by nudging the id (ids are strictly
      // ordered within equal keys).
      if (iv.hi.id == 0) {
        iv.hi.key = std::nextafter(iv.hi.key, std::numeric_limits<double>::infinity());
        iv.hi.id = static_cast<VertexId>(-1);
      } else {
        --iv.hi.id;
      }
    } else {
      // Pivot precedes the target: everything up to and including it is
      // out.
      iv.lo = *pivot;
      if (iv.lo.id == static_cast<VertexId>(-1)) {
        iv.lo.key = std::nextafter(iv.lo.key, -std::numeric_limits<double>::infinity());
        iv.lo.id = 0;
      } else {
        ++iv.lo.id;
      }
    }
  }
  XD_CHECK_MSG(false, "rank_select failed to converge");
  return std::nullopt;
}

}  // namespace xd::prim

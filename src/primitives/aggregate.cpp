#include "primitives/aggregate.hpp"

#include <algorithm>
#include <limits>

#include "congest/engine.hpp"
#include "util/check.hpp"

namespace xd::prim {

using congest::Envelope;
using congest::Message;
using congest::Network;
using congest::Outbox;

namespace {

enum Tag : std::uint32_t {
  kUp = 0xA0,
  kDown = 0xA1,
};

using Combine = std::uint64_t (*)(std::uint64_t, std::uint64_t);

std::vector<std::uint64_t> convergecast(Network& net, const Forest& forest,
                                        const std::vector<std::uint64_t>& value,
                                        std::uint64_t identity, Combine combine,
                                        std::string_view reason) {
  const std::size_t n = net.num_vertices();
  XD_CHECK(value.size() == n);
  XD_CHECK(forest.root.size() == n);

  std::vector<std::uint64_t> acc(n, identity);
  for (VertexId v = 0; v < n; ++v) {
    if (forest.is_active(v)) acc[v] = value[v];
  }
  if (forest.height == 0) return acc;

  // Depth levels from deepest to 1; level d vertices push into parents.
  for (std::uint32_t level = forest.height; level >= 1; --level) {
    auto program = congest::make_program(
        [&](VertexId v, Outbox& out) {
          if (forest.is_active(v) && forest.depth[v] == level) {
            out.send_to(forest.parent[v], Message{Tag::kUp, acc[v]});
          }
        },
        [&](VertexId v, std::span<const Envelope> inbox) {
          if (!forest.is_active(v)) return;
          for (const auto& env : inbox) {
            if (env.msg.tag == Tag::kUp) {
              acc[v] = combine(acc[v], env.msg.words[0]);
            }
          }
        });
    net.run_round(program, reason);
  }
  return acc;
}

}  // namespace

std::vector<std::uint64_t> convergecast_sum(Network& net, const Forest& forest,
                                            const std::vector<std::uint64_t>& value,
                                            std::string_view reason) {
  return convergecast(
      net, forest, value, 0,
      [](std::uint64_t a, std::uint64_t b) { return a + b; }, reason);
}

std::vector<std::uint64_t> convergecast_min(Network& net, const Forest& forest,
                                            const std::vector<std::uint64_t>& value,
                                            std::string_view reason) {
  return convergecast(
      net, forest, value, std::numeric_limits<std::uint64_t>::max(),
      [](std::uint64_t a, std::uint64_t b) { return std::min(a, b); }, reason);
}

std::vector<std::uint64_t> convergecast_max(Network& net, const Forest& forest,
                                            const std::vector<std::uint64_t>& value,
                                            std::string_view reason) {
  return convergecast(
      net, forest, value, 0,
      [](std::uint64_t a, std::uint64_t b) { return std::max(a, b); }, reason);
}

std::vector<std::uint64_t> broadcast_from_roots(Network& net, const Forest& forest,
                                                const std::vector<std::uint64_t>& root_value,
                                                std::string_view reason) {
  const std::size_t n = net.num_vertices();
  XD_CHECK(root_value.size() == n);

  std::vector<std::uint64_t> out(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    if (forest.is_active(v) && forest.parent[v] == v) out[v] = root_value[v];
  }
  for (std::uint32_t level = 0; level < forest.height; ++level) {
    auto program = congest::make_program(
        [&](VertexId v, Outbox& ob) {
          if (!forest.is_active(v) || forest.depth[v] != level) return;
          for (VertexId c : forest.children[v]) {
            ob.send_to(c, Message{Tag::kDown, out[v]});
          }
        },
        [&](VertexId v, std::span<const Envelope> inbox) {
          if (!forest.is_active(v) || forest.depth[v] != level + 1) return;
          for (const auto& env : inbox) {
            if (env.msg.tag == Tag::kDown && env.from == forest.parent[v]) {
              out[v] = env.msg.words[0];
            }
          }
        });
    net.run_round(program, reason);
  }
  return out;
}

}  // namespace xd::prim

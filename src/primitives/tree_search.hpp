#pragma once

/// \file tree_search.hpp
/// The distributed "random binary search" of Lemma 9.
///
/// ApproximateNibble's sweep needs, for a given walk step, the j-th vertex
/// in ρ̃-descending order and the volume of the sweep prefix π̃(1..j) --
/// without any vertex knowing its rank.  The paper's recipe: keep an
/// interval [L, R] of the order, sample a uniformly random candidate
/// inside it by a weighted top-down tree descent, count (by convergecast)
/// how many vertices precede it, and shrink.  Expected O(log n) pivots,
/// each costing O(height) kernel exchanges: O(t₀ log n) rounds per (t, j)
/// query, which is exactly Lemma 9's bill.
///
/// Everything here is genuine message passing over a prim::Forest.

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "congest/network.hpp"
#include "primitives/forest.hpp"

namespace xd::prim {

/// A position in the sweep order: ranked by key descending, then id
/// ascending (the paper's "break ties by comparing IDs").
struct OrderKey {
  double key = 0.0;
  VertexId id = 0;

  /// True if *this precedes (or equals) other in sweep order.
  [[nodiscard]] bool precedes_eq(const OrderKey& other) const {
    if (key != other.key) return key > other.key;
    return id <= other.id;
  }
};

/// Result of a rank selection.
struct RankSelect {
  VertexId vertex = kNoVertex;   ///< the rank-j vertex
  double key = 0.0;              ///< its key
  std::uint64_t prefix_weight = 0;  ///< Σ weight over ranks 1..j
  std::uint64_t pivots = 0;      ///< binary-search iterations used
};

/// Selects the rank-`j` (1-based) vertex among the active vertices of the
/// single tree rooted at `root`, ordered by (key desc, id asc), and returns
/// the weight of the rank-prefix.  Requires 1 <= j <= #active-with-tree.
/// Runs O(log) convergecast/descend passes through the kernel, charged
/// under `reason`.
std::optional<RankSelect> rank_select(congest::Network& net,
                                      const Forest& forest, VertexId root,
                                      const std::vector<double>& keys,
                                      const std::vector<std::uint64_t>& weights,
                                      std::uint64_t j, std::string_view reason);

/// Convergecast helper: number of active tree members (of `root`'s tree)
/// whose OrderKey precedes-or-equals `pivot`; also returns their total
/// weight.  One bottom-up pass (height exchanges).
std::pair<std::uint64_t, std::uint64_t> count_prefix(
    congest::Network& net, const Forest& forest, VertexId root,
    const std::vector<double>& keys, const std::vector<std::uint64_t>& weights,
    const OrderKey& pivot, std::string_view reason);

}  // namespace xd::prim

#pragma once

/// \file aggregate.hpp
/// Tree convergecast and broadcast over a Forest.  One 64-bit value per tree
/// edge per direction -- a single Message -- so a full pass costs
/// height(F) + 1 exchanges, the textbook CONGEST bound.

#include <cstdint>
#include <string_view>
#include <vector>

#include "congest/network.hpp"
#include "primitives/forest.hpp"

namespace xd::prim {

/// Bottom-up sum: returns per-vertex subtree aggregate (the root entry holds
/// the whole tree's sum).  Inactive vertices contribute nothing and read 0.
std::vector<std::uint64_t> convergecast_sum(congest::Network& net,
                                            const Forest& forest,
                                            const std::vector<std::uint64_t>& value,
                                            std::string_view reason);

/// Bottom-up min; inactive vertices read UINT64_MAX.
std::vector<std::uint64_t> convergecast_min(congest::Network& net,
                                            const Forest& forest,
                                            const std::vector<std::uint64_t>& value,
                                            std::string_view reason);

/// Bottom-up max; inactive vertices read 0.
std::vector<std::uint64_t> convergecast_max(congest::Network& net,
                                            const Forest& forest,
                                            const std::vector<std::uint64_t>& value,
                                            std::string_view reason);

/// Top-down: every active vertex learns the value stored at its root.
/// root_value is indexed by vertex id; only entries at roots are read.
std::vector<std::uint64_t> broadcast_from_roots(congest::Network& net,
                                                const Forest& forest,
                                                const std::vector<std::uint64_t>& root_value,
                                                std::string_view reason);

}  // namespace xd::prim

#include "primitives/sampling.hpp"

#include <map>

#include "congest/engine.hpp"
#include "primitives/aggregate.hpp"
#include "util/check.hpp"

namespace xd::prim {

using congest::Envelope;
using congest::Message;
using congest::Network;
using congest::Outbox;

namespace {

constexpr std::uint32_t kTokenTag = 0x70;

}  // namespace

std::vector<ScaledSample> sample_by_weight(
    Network& net, const Forest& forest,
    const std::vector<std::uint64_t>& weight,
    const std::vector<std::vector<std::pair<int, std::uint64_t>>>& tokens_at_root,
    std::string_view reason) {
  const std::size_t n = net.num_vertices();
  XD_CHECK(weight.size() == n);
  XD_CHECK(tokens_at_root.size() == n);

  // Subtree weights via a genuine convergecast (height exchanges).
  const auto subtree = convergecast_sum(net, forest, weight, reason);

  std::vector<ScaledSample> samples;
  // tokens[v]: scale -> count currently held at v.
  std::vector<std::map<int, std::uint64_t>> tokens(n);
  // Per-vertex sample buffers, drained level by level so the output order
  // is (level, vertex)-major regardless of the executor's thread count.
  std::vector<std::vector<ScaledSample>> sampled_at(n);
  for (VertexId v = 0; v < n; ++v) {
    if (!forest.is_active(v) || forest.parent[v] != v) continue;
    for (const auto& [scale, count] : tokens_at_root[v]) {
      if (count > 0) tokens[v][scale] += count;
    }
  }

  std::uint32_t level = 0;
  // Token step at v: each token either dies here (recorded as a sample) or
  // descends to a child, weighted by subtree sums.  Runs in the send phase
  // (it consumes v's private randomness and stages the forwards).
  const auto process_tokens = [&](VertexId v, Outbox* out) {
    if (!forest.is_active(v) || forest.depth[v] != level) return;
    if (tokens[v].empty()) return;
    auto& rng = net.rng(v);
    const std::uint64_t s_v = subtree[v];
    const std::uint64_t w_v = weight[v];
    // Per-child outgoing counts, keyed (child, scale).
    std::map<std::pair<VertexId, int>, std::uint64_t> forward;
    for (const auto& [scale, count] : tokens[v]) {
      for (std::uint64_t t = 0; t < count; ++t) {
        XD_CHECK_MSG(s_v > 0, "token reached a zero-weight subtree");
        // Die here with probability w(v)/s(v).
        if (rng.next_below(s_v) < w_v) {
          sampled_at[v].push_back(ScaledSample{v, scale});
          continue;
        }
        // Otherwise descend: child u with probability s(u)/(s(v)-w(v)).
        const std::uint64_t rest = s_v - w_v;
        XD_CHECK(rest > 0);
        std::uint64_t r = rng.next_below(rest);
        VertexId chosen = kNoVertex;
        for (VertexId c : forest.children[v]) {
          if (r < subtree[c]) {
            chosen = c;
            break;
          }
          r -= subtree[c];
        }
        XD_CHECK_MSG(chosen != kNoVertex,
                     "subtree weights inconsistent at vertex " << v);
        ++forward[{chosen, scale}];
      }
    }
    tokens[v].clear();
    for (const auto& [key, count] : forward) {
      const auto& [child, scale] = key;
      XD_CHECK_MSG(out != nullptr, "leaf level must not forward tokens");
      out->send_to(child, Message{kTokenTag,
                                  static_cast<std::uint64_t>(scale), count});
    }
  };

  auto program = congest::make_program(
      [&](VertexId v, Outbox& out) { process_tokens(v, &out); },
      [&](VertexId v, std::span<const Envelope> inbox) {
        if (!forest.is_active(v)) return;
        for (const auto& env : inbox) {
          if (env.msg.tag == kTokenTag) {
            tokens[v][static_cast<int>(env.msg.words[0])] += env.msg.words[1];
          }
        }
      });

  const auto drain_level = [&] {
    for (VertexId v = 0; v < n; ++v) {
      if (sampled_at[v].empty()) continue;
      samples.insert(samples.end(), sampled_at[v].begin(), sampled_at[v].end());
      sampled_at[v].clear();
    }
  };

  for (level = 0; level < forest.height; ++level) {
    net.run_round(program, reason);
    drain_level();
  }
  // Deepest level: tokens can only die locally, no exchange needed.
  for (VertexId v = 0; v < n; ++v) process_tokens(v, nullptr);
  drain_level();

  return samples;
}

}  // namespace xd::prim

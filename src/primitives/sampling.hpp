#pragma once

/// \file sampling.hpp
/// Degree-distribution start-vertex sampling (paper, Lemma 10).
///
/// To run k instances of ApproximateNibble with start vertices drawn from
/// the degree distribution ψ_V, the root of a BFS tree samples all k scale
/// parameters locally, then releases "i-tokens" down the tree: a token at v
/// dies at v with probability w(v)/s(v) (s = subtree weight) -- v becomes a
/// start vertex -- otherwise it descends to child u with probability
/// s(u)/(s(v)-w(v)).  Only token *counts* travel over edges, one bounded
/// message per (edge, scale), exactly as the paper observes ("the only
/// information v needs to let u know is the number of i-tokens").

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "congest/network.hpp"
#include "primitives/forest.hpp"

namespace xd::prim {

/// One sampled Nibble instance: its start vertex and scale parameter b.
struct ScaledSample {
  VertexId vertex;
  int scale;

  friend bool operator==(const ScaledSample&, const ScaledSample&) = default;
};

/// Runs the Lemma 10 token descent.
///
/// \param weight          per-vertex sampling weight (deg(v) for ψ_V)
/// \param tokens_at_root  indexed by vertex id; read only at forest roots;
///                        each entry lists (scale, token count) to release
/// \return all samples, in no particular order
std::vector<ScaledSample> sample_by_weight(
    congest::Network& net, const Forest& forest,
    const std::vector<std::uint64_t>& weight,
    const std::vector<std::vector<std::pair<int, std::uint64_t>>>& tokens_at_root,
    std::string_view reason);

}  // namespace xd::prim

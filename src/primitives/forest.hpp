#pragma once

/// \file forest.hpp
/// Distributed spanning-forest construction: leader election by min-ID
/// flooding, then a synchronized BFS wave from every leader.  Each connected
/// region of the `active` vertex mask gets one tree.  These trees are the
/// communication backbone for every convergecast / broadcast / sampling
/// primitive in the library (the paper uses them in Lemma 9 -- "we build a
/// spanning tree T of the edge set P* rooted at v" -- and Lemma 10).
///
/// All functions run as genuine message passing on the Network kernel; the
/// rounds they cost are whatever the kernel charges (one per exchange, more
/// under multiplexing).

#include <cstdint>
#include <string_view>
#include <vector>

#include "congest/network.hpp"
#include "graph/graph.hpp"

namespace xd::prim {

/// Sentinel for "vertex not in any tree" (inactive).
inline constexpr VertexId kNoVertex = static_cast<VertexId>(-1);

/// A rooted spanning forest over the active subgraph.
struct Forest {
  /// Per vertex: the root (leader) of its tree, kNoVertex if inactive.
  std::vector<VertexId> root;
  /// Per vertex: BFS parent; roots point to themselves.
  std::vector<VertexId> parent;
  /// Per vertex: hop depth below its root (root = 0); undefined if inactive.
  std::vector<std::uint32_t> depth;
  /// Per vertex: children lists (centralized convenience view; the
  /// distributed execution discovered these via ACCEPT messages).
  std::vector<std::vector<VertexId>> children;
  /// Maximum depth over all trees.
  std::uint32_t height = 0;

  [[nodiscard]] bool is_active(VertexId v) const { return root[v] != kNoVertex; }
  /// Distinct roots, sorted.
  [[nodiscard]] std::vector<VertexId> roots() const;
};

/// Min-ID flooding leader election restricted to active vertices and edges
/// between them.  Returns per-vertex leader id (kNoVertex for inactive).
/// Rounds: eccentricity of the worst region + 1 confirmation exchange.
std::vector<VertexId> elect_leaders(congest::Network& net,
                                    const std::vector<char>& active,
                                    std::string_view reason);

/// Leader election + BFS wave.  One tree per connected active region.
Forest build_forest(congest::Network& net, const std::vector<char>& active,
                    std::string_view reason);

/// BFS wave from the given roots only (they must be active); active vertices
/// not reached from any root end up inactive in the result.  Used when the
/// caller already knows the roots (e.g. Nibble's start vertex).
Forest build_forest_from_roots(congest::Network& net,
                               const std::vector<char>& active,
                               const std::vector<VertexId>& roots,
                               std::string_view reason);

}  // namespace xd::prim

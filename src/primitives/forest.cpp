#include "primitives/forest.hpp"

#include <algorithm>

#include "congest/engine.hpp"
#include "util/check.hpp"

namespace xd::prim {

using congest::Envelope;
using congest::Message;
using congest::Network;
using congest::Outbox;

namespace {

/// Message tags used by the forest protocols.
enum Tag : std::uint32_t {
  kLeaderProbe = 0xF0,  ///< words[0] = candidate leader id
  kJoin = 0xF1,         ///< words[0] = root id, sender offers adoption
  kAccept = 0xF2,       ///< child -> parent
};

}  // namespace

std::vector<VertexId> Forest::roots() const {
  std::vector<VertexId> out;
  for (std::size_t v = 0; v < root.size(); ++v) {
    if (root[v] == static_cast<VertexId>(v)) out.push_back(root[v]);
  }
  return out;
}

std::vector<VertexId> elect_leaders(Network& net,
                                    const std::vector<char>& active,
                                    std::string_view reason) {
  const Graph& g = net.graph();
  const std::size_t n = g.num_vertices();
  XD_CHECK(active.size() == n);

  std::vector<VertexId> best(n, kNoVertex);
  for (VertexId v = 0; v < n; ++v) {
    if (active[v]) best[v] = v;
  }

  // Flood the minimum id. A vertex re-broadcasts only when its value
  // improved last round; the loop ends after one round in which no value
  // improved anywhere (that round is the confirmation exchange).
  std::vector<char> dirty(active.begin(), active.end());
  auto program = congest::make_program(
      [&](VertexId v, Outbox& out) {
        if (!active[v] || !dirty[v]) return;
        auto nbrs = g.neighbors(v);
        for (std::uint32_t slot = 0; slot < nbrs.size(); ++slot) {
          const VertexId u = nbrs[slot];
          if (u != v && active[u]) {
            out.send(slot, Message{kLeaderProbe, best[v]});
          }
        }
      },
      [&](VertexId v, std::span<const Envelope> inbox) {
        dirty[v] = 0;
        if (!active[v]) return;
        for (const auto& env : inbox) {
          if (env.msg.tag != kLeaderProbe) continue;
          const auto candidate = static_cast<VertexId>(env.msg.words[0]);
          if (candidate < best[v]) {
            best[v] = candidate;
            dirty[v] = 1;
          }
        }
      });
  bool any_dirty = true;
  while (any_dirty) {
    net.run_round(program, reason);
    any_dirty = std::find(dirty.begin(), dirty.end(), 1) != dirty.end();
  }
  return best;
}

namespace {

Forest bfs_wave(Network& net, const std::vector<char>& active,
                const std::vector<char>& is_root, std::string_view reason) {
  const Graph& g = net.graph();
  const std::size_t n = g.num_vertices();

  Forest f;
  f.root.assign(n, kNoVertex);
  f.parent.assign(n, kNoVertex);
  f.depth.assign(n, 0);
  f.children.assign(n, {});

  // in_frontier: joined last round, offers adoption this round.
  // pending_accept: parent this vertex must ACK in this round's send phase.
  std::vector<char> in_frontier(n, 0);
  std::vector<char> next_frontier(n, 0);
  std::vector<VertexId> pending_accept(n, kNoVertex);
  bool any_frontier = false;
  for (VertexId v = 0; v < n; ++v) {
    if (active[v] && is_root[v]) {
      f.root[v] = v;
      f.parent[v] = v;
      in_frontier[v] = 1;
      any_frontier = true;
    }
  }

  std::uint32_t level = 0;
  bool any_pending = false;
  auto program = congest::make_program(
      [&](VertexId v, Outbox& out) {
        if (in_frontier[v]) {
          auto nbrs = g.neighbors(v);
          for (std::uint32_t slot = 0; slot < nbrs.size(); ++slot) {
            const VertexId u = nbrs[slot];
            if (u != v && active[u] && f.root[u] == kNoVertex) {
              out.send(slot, Message{Tag::kJoin, f.root[v]});
            }
          }
        }
        if (pending_accept[v] != kNoVertex) {
          out.send_to(pending_accept[v], Message{Tag::kAccept, 0});
        }
      },
      [&](VertexId v, std::span<const Envelope> inbox) {
        pending_accept[v] = kNoVertex;
        next_frontier[v] = 0;
        if (!active[v]) return;
        if (f.root[v] == kNoVertex) {
          // Adopt the JOIN with the smallest sender id (deterministic).
          VertexId parent = kNoVertex;
          VertexId root = kNoVertex;
          for (const auto& env : inbox) {
            if (env.msg.tag == Tag::kJoin && env.from < parent) {
              parent = env.from;
              root = static_cast<VertexId>(env.msg.words[0]);
            }
          }
          if (parent != kNoVertex) {
            f.root[v] = root;
            f.parent[v] = parent;
            f.depth[v] = level + 1;
            next_frontier[v] = 1;
            pending_accept[v] = parent;
          }
        } else {
          for (const auto& env : inbox) {
            if (env.msg.tag == Tag::kAccept) f.children[v].push_back(env.from);
          }
        }
      });

  while (any_frontier || any_pending) {
    net.run_round(program, reason);
    ++level;
    in_frontier.swap(next_frontier);
    any_frontier = false;
    any_pending = false;
    for (VertexId v = 0; v < n; ++v) {
      any_frontier = any_frontier || in_frontier[v];
      any_pending = any_pending || pending_accept[v] != kNoVertex;
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    if (f.root[v] != kNoVertex) f.height = std::max(f.height, f.depth[v]);
  }
  return f;
}

}  // namespace

Forest build_forest(Network& net, const std::vector<char>& active,
                    std::string_view reason) {
  const auto leaders = elect_leaders(net, active, reason);
  std::vector<char> is_root(active.size(), 0);
  for (std::size_t v = 0; v < active.size(); ++v) {
    if (active[v] && leaders[v] == static_cast<VertexId>(v)) is_root[v] = 1;
  }
  return bfs_wave(net, active, is_root, reason);
}

Forest build_forest_from_roots(Network& net, const std::vector<char>& active,
                               const std::vector<VertexId>& roots,
                               std::string_view reason) {
  std::vector<char> is_root(active.size(), 0);
  for (VertexId r : roots) {
    XD_CHECK_MSG(active[r], "forest root " << r << " must be active");
    is_root[r] = 1;
  }
  return bfs_wave(net, active, is_root, reason);
}

}  // namespace xd::prim

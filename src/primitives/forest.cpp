#include "primitives/forest.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace xd::prim {

using congest::Message;
using congest::Network;

namespace {

/// Message tags used by the forest protocols.
enum Tag : std::uint32_t {
  kLeaderProbe = 0xF0,  ///< words[0] = candidate leader id
  kJoin = 0xF1,         ///< words[0] = root id, sender offers adoption
  kAccept = 0xF2,       ///< child -> parent
};

}  // namespace

std::vector<VertexId> Forest::roots() const {
  std::vector<VertexId> out;
  for (std::size_t v = 0; v < root.size(); ++v) {
    if (root[v] == static_cast<VertexId>(v)) out.push_back(root[v]);
  }
  return out;
}

std::vector<VertexId> elect_leaders(Network& net,
                                    const std::vector<char>& active,
                                    std::string_view reason) {
  const Graph& g = net.graph();
  const std::size_t n = g.num_vertices();
  XD_CHECK(active.size() == n);

  std::vector<VertexId> best(n, kNoVertex);
  for (VertexId v = 0; v < n; ++v) {
    if (active[v]) best[v] = v;
  }

  // Flood the minimum id. A vertex re-broadcasts only when its value
  // improved last exchange; the loop ends after one exchange in which no
  // value improved anywhere (that exchange is the confirmation round).
  std::vector<char> dirty(active.begin(), active.end());
  bool any_dirty = true;
  while (any_dirty) {
    for (VertexId v = 0; v < n; ++v) {
      if (!active[v] || !dirty[v]) continue;
      auto nbrs = g.neighbors(v);
      for (std::uint32_t slot = 0; slot < nbrs.size(); ++slot) {
        const VertexId u = nbrs[slot];
        if (u != v && active[u]) {
          net.send(v, slot, Message{kLeaderProbe, best[v]});
        }
      }
    }
    net.exchange(reason);
    any_dirty = false;
    std::fill(dirty.begin(), dirty.end(), 0);
    for (VertexId v = 0; v < n; ++v) {
      if (!active[v]) continue;
      for (const auto& env : net.inbox(v)) {
        if (env.msg.tag != kLeaderProbe) continue;
        const auto candidate = static_cast<VertexId>(env.msg.words[0]);
        if (candidate < best[v]) {
          best[v] = candidate;
          dirty[v] = 1;
          any_dirty = true;
        }
      }
    }
  }
  return best;
}

namespace {

Forest bfs_wave(Network& net, const std::vector<char>& active,
                const std::vector<char>& is_root, std::string_view reason) {
  const Graph& g = net.graph();
  const std::size_t n = g.num_vertices();

  Forest f;
  f.root.assign(n, kNoVertex);
  f.parent.assign(n, kNoVertex);
  f.depth.assign(n, 0);
  f.children.assign(n, {});

  std::vector<VertexId> frontier;
  for (VertexId v = 0; v < n; ++v) {
    if (active[v] && is_root[v]) {
      f.root[v] = v;
      f.parent[v] = v;
      frontier.push_back(v);
    }
  }

  std::uint32_t level = 0;
  // `pending_accept[v]` holds the parent v must ACK in the next exchange.
  std::vector<std::pair<VertexId, VertexId>> pending_accepts;
  while (!frontier.empty() || !pending_accepts.empty()) {
    for (VertexId v : frontier) {
      auto nbrs = g.neighbors(v);
      for (std::uint32_t slot = 0; slot < nbrs.size(); ++slot) {
        const VertexId u = nbrs[slot];
        if (u != v && active[u] && f.root[u] == kNoVertex) {
          net.send(v, slot, Message{Tag::kJoin, f.root[v]});
        }
      }
    }
    for (const auto& [child, parent] : pending_accepts) {
      net.send_to(child, parent, Message{Tag::kAccept, 0});
    }
    pending_accepts.clear();
    net.exchange(reason);
    ++level;

    std::vector<VertexId> next;
    for (VertexId v = 0; v < n; ++v) {
      if (!active[v]) continue;
      if (f.root[v] == kNoVertex) {
        // Adopt the JOIN with the smallest sender id (deterministic).
        VertexId parent = kNoVertex;
        VertexId root = kNoVertex;
        for (const auto& env : net.inbox(v)) {
          if (env.msg.tag == Tag::kJoin && env.from < parent) {
            parent = env.from;
            root = static_cast<VertexId>(env.msg.words[0]);
          }
        }
        if (parent != kNoVertex) {
          f.root[v] = root;
          f.parent[v] = parent;
          f.depth[v] = level;
          f.height = std::max(f.height, level);
          next.push_back(v);
          pending_accepts.emplace_back(v, parent);
        }
      } else {
        for (const auto& env : net.inbox(v)) {
          if (env.msg.tag == Tag::kAccept) f.children[v].push_back(env.from);
        }
      }
    }
    frontier = std::move(next);
  }
  // One final drain so the last level's ACCEPTs are recorded -- handled
  // above because the loop continues while pending_accepts is non-empty.
  return f;
}

}  // namespace

Forest build_forest(Network& net, const std::vector<char>& active,
                    std::string_view reason) {
  const auto leaders = elect_leaders(net, active, reason);
  std::vector<char> is_root(active.size(), 0);
  for (std::size_t v = 0; v < active.size(); ++v) {
    if (active[v] && leaders[v] == static_cast<VertexId>(v)) is_root[v] = 1;
  }
  return bfs_wave(net, active, is_root, reason);
}

Forest build_forest_from_roots(Network& net, const std::vector<char>& active,
                               const std::vector<VertexId>& roots,
                               std::string_view reason) {
  std::vector<char> is_root(active.size(), 0);
  for (VertexId r : roots) {
    XD_CHECK_MSG(active[r], "forest root " << r << " must be active");
    is_root[r] = 1;
  }
  return bfs_wave(net, active, is_root, reason);
}

}  // namespace xd::prim

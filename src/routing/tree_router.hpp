#pragma once

/// \file tree_router.hpp
/// Fully simulated store-and-forward router over O(log n) random-root BFS
/// trees.
///
/// Preprocessing builds the trees through the kernel (real BFS waves).
/// route() assigns each message a uniformly random tree, walks it along the
/// unique src -> root -> dst tree path (shortcut at the meeting vertex), and
/// simulates synchronous store-and-forward with one message per directed
/// edge per round, FIFO queues.  The queues live in the flat QueueArena
/// (queue_arena.hpp) -- bit-identical schedule to the seed's map-of-deques,
/// one contiguous ring-slot vector instead of node churn.  The returned
/// makespan is a *measured* round count -- no modeling -- which on a
/// φ-expander stays polylogarithmic per deg-bounded query (cross-check for
/// the GKS cost model, E5; docs/routing.md).

#include <memory>

#include "congest/network.hpp"
#include "primitives/forest.hpp"
#include "routing/queue_arena.hpp"
#include "routing/router.hpp"

namespace xd::routing {

/// Appends the unique tree path src -> dst of forest `f` (climb both
/// endpoints to the root, cut at the lowest common vertex) to the arena's
/// current path.  Shared by TreeRouter and SimulatedHierarchicalRouter.
void append_tree_path(const prim::Forest& f, VertexId src, VertexId dst,
                      QueueArena& arena);

/// Multi-tree store-and-forward backend.
class TreeRouter : public Router {
 public:
  /// \param net    network over the (connected) cluster graph
  /// \param trees  number of random-root BFS trees (default ⌈log₂ n⌉ + 1)
  TreeRouter(congest::Network& net, int trees = 0);

  std::uint64_t preprocess() override;
  std::uint64_t route(const std::vector<Demand>& demands) override;
  [[nodiscard]] std::uint64_t queries() const override { return queries_; }

  /// Tree count actually used.
  [[nodiscard]] int tree_count() const {
    return static_cast<int>(forests_.size());
  }

 private:
  congest::Network* net_;
  int requested_trees_;
  std::vector<prim::Forest> forests_;
  std::unique_ptr<QueueArena> arena_;
  std::uint64_t queries_ = 0;
};

}  // namespace xd::routing

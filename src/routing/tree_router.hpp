#pragma once

/// \file tree_router.hpp
/// Fully simulated store-and-forward router over O(log n) random-root BFS
/// trees.
///
/// Preprocessing builds the trees through the kernel (real BFS waves).
/// route() assigns each message a uniformly random tree, walks it along the
/// unique src -> root -> dst tree path (shortcut at the meeting vertex), and
/// simulates synchronous store-and-forward with one message per directed
/// edge per round, FIFO queues.  The returned makespan is a *measured*
/// round count -- no modeling -- which on a φ-expander stays polylogarithmic
/// per deg-bounded query (cross-check for the GKS cost model, E5).

#include <memory>

#include "congest/network.hpp"
#include "primitives/forest.hpp"
#include "routing/router.hpp"

namespace xd::routing {

/// Multi-tree store-and-forward backend.
class TreeRouter : public Router {
 public:
  /// \param net    network over the (connected) cluster graph
  /// \param trees  number of random-root BFS trees (default ⌈log₂ n⌉ + 1)
  TreeRouter(congest::Network& net, int trees = 0);

  std::uint64_t preprocess() override;
  std::uint64_t route(const std::vector<Demand>& demands) override;
  [[nodiscard]] std::uint64_t queries() const override { return queries_; }

  /// Tree count actually used.
  [[nodiscard]] int tree_count() const { return static_cast<int>(forests_.size()); }

 private:
  congest::Network* net_;
  int requested_trees_;
  std::vector<prim::Forest> forests_;
  std::uint64_t queries_ = 0;

  /// Tree path src -> dst in forest f (sequence of vertices).
  [[nodiscard]] std::vector<VertexId> tree_path(const prim::Forest& f,
                                                VertexId src, VertexId dst) const;
};

}  // namespace xd::routing

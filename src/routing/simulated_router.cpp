#include "routing/simulated_router.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <unordered_map>

#include "congest/engine.hpp"
#include "routing/tree_router.hpp"
#include "spectral/mixing.hpp"
#include "util/check.hpp"

namespace xd::routing {

namespace {

constexpr std::uint32_t kLabelTag = 0x5A;  ///< (cluster, min-id) flood
constexpr std::uint32_t kTokenTag = 0x5B;  ///< portal walk token (cluster)

/// Union-find over dense local indices (path halving).
class Dsu {
 public:
  explicit Dsu(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) {
      parent_[i] = static_cast<std::uint32_t>(i);
    }
  }
  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::uint32_t a, std::uint32_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::uint32_t> parent_;
};

/// Key for the (vertex, group) copies a GKS edge partition creates: a
/// vertex joins one child cluster per group it has edges in.
struct PairHash {
  std::size_t operator()(const std::pair<VertexId, std::uint32_t>& p) const {
    return (static_cast<std::size_t>(p.first) << 32) ^ p.second;
  }
};

}  // namespace

SimulatedHierarchicalRouter::SimulatedHierarchicalRouter(
    congest::Network& net, SimulatedHierarchicalParams prm)
    : net_(&net), prm_(prm) {
  XD_CHECK(prm_.depth >= 1);
  XD_CHECK(prm_.walk_scale > 0);
  const std::size_t n = net.num_vertices();
  int log_n = 1;
  for (std::size_t v = 1; v < n; v <<= 1) ++log_n;
  if (prm_.relay_trees <= 0) prm_.relay_trees = log_n;
}

std::size_t SimulatedHierarchicalRouter::num_clusters() const {
  std::size_t total = 0;
  for (const Level& lv : levels_) total += lv.clusters.size();
  return total;
}

std::size_t SimulatedHierarchicalRouter::num_portals() const {
  std::size_t total = 0;
  for (const Level& lv : levels_) {
    for (const Cluster& c : lv.clusters) total += c.portals.size();
  }
  return total;
}

void SimulatedHierarchicalRouter::split_cluster(
    std::uint32_t parent_index, std::uint64_t parent_volume,
    const std::vector<EdgeId>& edges, std::uint64_t beta, Level& level,
    Rng& rng) {
  const Graph& g = net_->graph();
  level.max_parent_volume = std::max(level.max_parent_volume, parent_volume);

  // β-way random edge partition (GKS Lemma 3.2's split).  Every edge lands
  // in exactly one group; the connected components of each group's edge
  // set become the child clusters, so a vertex joins one child per group
  // it has edges in.
  std::vector<std::uint32_t> group(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    group[i] = static_cast<std::uint32_t>(rng.next_below(beta));
  }
  // Dense local ids for the (vertex, group) copies.
  std::unordered_map<std::pair<VertexId, std::uint32_t>, std::uint32_t,
                     PairHash>
      local;
  std::vector<VertexId> copy_vertex;
  const auto local_of = [&](VertexId x, std::uint32_t grp) {
    const auto [it, fresh] = local.try_emplace(
        {x, grp}, static_cast<std::uint32_t>(copy_vertex.size()));
    if (fresh) copy_vertex.push_back(x);
    return it->second;
  };
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ends(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const auto [u, v] = g.edge(edges[i]);
    ends[i] = {local_of(u, group[i]), local_of(v, group[i])};
  }
  Dsu dsu(copy_vertex.size());
  for (const auto& [lu, lv] : ends) dsu.unite(lu, lv);

  // Components become clusters, in first-seen edge order (deterministic).
  std::unordered_map<std::uint32_t, std::uint32_t> comp_cluster;
  const auto first_new = static_cast<std::uint32_t>(level.clusters.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const std::uint32_t root = dsu.find(ends[i].first);
    const auto [it, fresh] = comp_cluster.try_emplace(
        root, static_cast<std::uint32_t>(level.clusters.size()));
    if (fresh) {
      Cluster c;
      c.parent = parent_index;
      level.clusters.push_back(std::move(c));
    }
    level.clusters[it->second].edges.push_back(edges[i]);
    level.edge_cluster[edges[i]] = it->second;
  }
  for (std::uint32_t li = 0; li < copy_vertex.size(); ++li) {
    level.clusters[comp_cluster.at(dsu.find(li))].members.push_back(
        copy_vertex[li]);
  }
  for (std::uint32_t ci = first_new; ci < level.clusters.size(); ++ci) {
    Cluster& c = level.clusters[ci];
    std::sort(c.members.begin(), c.members.end());
    c.members.erase(std::unique(c.members.begin(), c.members.end()),
                    c.members.end());
    c.leader = c.members.front();
  }
}

void SimulatedHierarchicalRouter::confirm_level(const Level& level) {
  // Min-id flood over each cluster's own edges, all clusters of the level
  // at once (the level's edges partition into the clusters, so congestion
  // is one message per directed edge per round).  Converges in the maximum
  // cluster diameter + 1 rounds -- all charged -- and afterwards every
  // member must have heard its leader, which validates the host-side
  // component computation against the real topology.
  const Graph& g = net_->graph();
  const std::size_t n = g.num_vertices();
  // Per (vertex, cluster) labels, looked up by binary search in a sorted
  // per-vertex (cluster, label) vector.
  std::vector<std::vector<std::pair<std::uint32_t, VertexId>>> labels(n);
  for (std::uint32_t ci = 0; ci < level.clusters.size(); ++ci) {
    for (const VertexId v : level.clusters[ci].members) {
      labels[v].push_back({ci, v});
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    std::sort(labels[v].begin(), labels[v].end());
  }
  const auto label_slot = [&](VertexId v, std::uint32_t ci)
      -> std::pair<std::uint32_t, VertexId>* {
    auto& vec = labels[v];
    const auto it = std::lower_bound(
        vec.begin(), vec.end(),
        std::pair<std::uint32_t, VertexId>{ci, 0},
        [](const auto& a, const auto& b) { return a.first < b.first; });
    if (it == vec.end() || it->first != ci) return nullptr;
    return &*it;
  };
  std::atomic<bool> changed{false};
  auto program = congest::make_program(
      [&](VertexId v, congest::Outbox& out) {
        if (labels[v].empty()) return;
        const auto nbrs = g.neighbors(v);
        const auto eids = g.incident_edges(v);
        for (std::uint32_t s = 0; s < nbrs.size(); ++s) {
          if (nbrs[s] == v) continue;
          const std::uint32_t ci = level.edge_cluster[eids[s]];
          if (ci == kNoCluster) continue;
          const auto* slot = label_slot(v, ci);
          XD_CHECK(slot != nullptr);
          out.send(s, congest::Message{kLabelTag, ci, slot->second});
        }
      },
      [&](VertexId v, std::span<const congest::Envelope> inbox) {
        for (const auto& env : inbox) {
          if (env.msg.tag != kLabelTag) continue;
          auto* slot =
              label_slot(v, static_cast<std::uint32_t>(env.msg.words[0]));
          XD_CHECK(slot != nullptr);
          const auto cand = static_cast<VertexId>(env.msg.words[1]);
          if (cand < slot->second) {
            slot->second = cand;
            changed.store(true, std::memory_order_relaxed);
          }
        }
      });
  std::size_t iterations = 0;
  do {
    changed.store(false, std::memory_order_relaxed);
    net_->run_round(program, "SimHierRouter/hierarchy");
    XD_CHECK(++iterations <= n + 2);
  } while (changed.load(std::memory_order_relaxed));
  for (std::uint32_t ci = 0; ci < level.clusters.size(); ++ci) {
    for (const VertexId v : level.clusters[ci].members) {
      XD_CHECK_MSG(label_slot(v, ci)->second == level.clusters[ci].leader,
                   "cluster " << ci << " is not connected");
    }
  }
}

void SimulatedHierarchicalRouter::embed_portals(std::size_t index) {
  Level& level = levels_[index];
  if (level.clusters.empty()) return;
  const Graph& g = net_->graph();
  const std::size_t n = g.num_vertices();

  // Walk budget: the measured τ_mix at the root, scaled down by the
  // parent's volume (smaller parents mix sooner), as in the charged
  // model's τ_mix-dominated Lemma 3.3 cost.
  const auto log2sq = [](std::uint64_t vol) {
    const double l = std::log2(static_cast<double>(vol + 4));
    return l * l;
  };
  const double ratio = log2sq(level.max_parent_volume) / log2sq(g.volume());
  const int tau = std::max(
      1, std::min(256, static_cast<int>(std::ceil(
                           prm_.walk_scale * static_cast<double>(tau_mix_) *
                           ratio))));

  // Token release: one token per sibling (Σ over parents of children²
  // total -- the Lemma 3.3 β² term), capped by portal_cap when set,
  // spread round-robin over the cluster's members.
  std::vector<std::size_t> children_of_parent;
  for (const Cluster& c : level.clusters) {
    if (c.parent >= children_of_parent.size()) {
      children_of_parent.resize(c.parent + 1, 0);
    }
    ++children_of_parent[c.parent];
  }
  std::vector<std::vector<std::uint32_t>> held(n);
  std::vector<std::vector<std::uint32_t>> held_next(n);
  for (std::uint32_t ci = 0; ci < level.clusters.size(); ++ci) {
    const Cluster& c = level.clusters[ci];
    std::size_t t = std::max<std::size_t>(children_of_parent[c.parent] - 1, 1);
    if (prm_.portal_cap > 0) {
      t = std::min(t, static_cast<std::size_t>(prm_.portal_cap));
    }
    for (std::size_t j = 0; j < t; ++j) {
      held[c.members[j % c.members.size()]].push_back(ci);
    }
  }

  // The parent cluster a token is allowed to roam: at level 1 the whole
  // graph, deeper the parent's edge set.
  const auto in_parent = [&](EdgeId e, std::uint32_t ci) {
    if (index == 0) return true;
    return levels_[index - 1].edge_cluster[e] ==
           levels_[index].clusters[ci].parent;
  };

  // One lazy-walk superstep (spectral/lazy_walk.hpp semantics): stay with
  // probability 1/2; otherwise pick a uniform adjacency slot, and deposit
  // back if it is a loop or leaves the parent's edge set (the masked-slot
  // convention that makes this the G{parent} walk).
  auto program = congest::make_program(
      [&](VertexId v, congest::Outbox& out) {
        if (held[v].empty()) return;
        const auto nbrs = g.neighbors(v);
        const auto eids = g.incident_edges(v);
        for (const std::uint32_t ci : held[v]) {
          Rng& r = out.rng();
          if (r.next_bool(0.5)) {
            held_next[v].push_back(ci);
            continue;
          }
          const auto slot =
              static_cast<std::uint32_t>(r.next_below(nbrs.size()));
          if (nbrs[slot] == v || !in_parent(eids[slot], ci)) {
            held_next[v].push_back(ci);
            continue;
          }
          out.send(slot, congest::Message{kTokenTag, ci, 0});
        }
        held[v].clear();
      },
      [&](VertexId v, std::span<const congest::Envelope> inbox) {
        for (const auto& env : inbox) {
          if (env.msg.tag == kTokenTag) {
            held_next[v].push_back(
                static_cast<std::uint32_t>(env.msg.words[0]));
          }
        }
      });
  for (int step = 0; step < tau; ++step) {
    net_->run_round(program, "SimHierRouter/portals");
    for (VertexId v = 0; v < n; ++v) {
      held[v].swap(held_next[v]);
      held_next[v].clear();
    }
  }

  // Landing sites become the portals.
  for (VertexId v = 0; v < n; ++v) {
    for (const std::uint32_t ci : held[v]) {
      level.clusters[ci].portals.push_back(v);
    }
  }
  for (Cluster& c : level.clusters) {
    std::sort(c.portals.begin(), c.portals.end());
    c.portals.erase(std::unique(c.portals.begin(), c.portals.end()),
                    c.portals.end());
    XD_CHECK(!c.portals.empty());
  }
}

std::uint64_t SimulatedHierarchicalRouter::preprocess() {
  XD_CHECK_MSG(!preprocessed_, "preprocess() must run once");
  const Graph& g = net_->graph();
  const std::size_t n = g.num_vertices();
  const std::size_t m = g.num_nonloop_edges();
  const std::uint64_t before = net_->ledger().rounds();
  Rng& rng = net_->rng(0);

  // Same spectral estimate the charged model uses -- the cross-check anchor.
  tau_mix_ = std::max(spectral::mixing_time_estimate(g), 1u);

  // Recursive β-way edge partition, k levels (or until every cluster is a
  // single edge).
  if (m >= 2) {
    const auto beta = std::max<std::uint64_t>(
        2, static_cast<std::uint64_t>(
               std::ceil(std::pow(static_cast<double>(m),
                                  1.0 / static_cast<double>(prm_.depth)))));
    for (int lvl = 1; lvl <= prm_.depth; ++lvl) {
      Level level;
      level.edge_cluster.assign(g.num_edges(), kNoCluster);
      level.home.assign(n, kNoCluster);
      bool any_split = false;
      if (lvl == 1) {
        std::vector<EdgeId> all;
        all.reserve(m);
        for (EdgeId e = 0; e < g.num_edges(); ++e) {
          if (!g.is_loop(e)) all.push_back(e);
        }
        split_cluster(0, g.volume(), all, beta, level, rng);
        any_split = true;
      } else {
        const Level& prev = levels_.back();
        for (std::uint32_t pi = 0; pi < prev.clusters.size(); ++pi) {
          const Cluster& p = prev.clusters[pi];
          if (p.edges.size() < 2) continue;  // chain bottoms out
          split_cluster(pi, 2 * p.edges.size(), p.edges, beta, level, rng);
          any_split = true;
        }
      }
      if (!any_split) break;
      // Canonical nested homes: the child (of the previous home) holding
      // the vertex's minimum incident edge at this level.
      const Level* prev = levels_.empty() ? nullptr : &levels_.back();
      for (VertexId v = 0; v < n; ++v) {
        if (prev != nullptr && prev->home[v] == kNoCluster) continue;
        EdgeId best = static_cast<EdgeId>(-1);
        for (const EdgeId e : g.incident_edges(v)) {
          if (level.edge_cluster[e] == kNoCluster || e >= best) continue;
          if (prev == nullptr ||
              level.clusters[level.edge_cluster[e]].parent == prev->home[v]) {
            best = e;
          }
        }
        if (best != static_cast<EdgeId>(-1)) {
          level.home[v] = level.edge_cluster[best];
        }
      }
      levels_.push_back(std::move(level));
      confirm_level(levels_.back());
      embed_portals(levels_.size() - 1);
    }
  }

  // Relay BFS trees for realizing portal hops (real BFS waves).
  const std::vector<char> active(n, 1);
  for (int t = 0; t < prm_.relay_trees; ++t) {
    const auto root = static_cast<VertexId>(rng.next_below(n));
    forests_.push_back(prim::build_forest_from_roots(
        *net_, active, {root}, "SimHierRouter/forest"));
    XD_CHECK_MSG(forests_.back().is_active(root), "router graph disconnected");
  }

  preprocessed_ = true;
  preprocess_rounds_ = net_->ledger().rounds() - before;
  return preprocess_rounds_;
}

int SimulatedHierarchicalRouter::chain_depth(VertexId v) const {
  int depth = 0;
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (levels_[i].home[v] == kNoCluster) break;
    depth = static_cast<int>(i) + 1;
  }
  return depth;
}

std::uint64_t SimulatedHierarchicalRouter::route(
    const std::vector<Demand>& demands) {
  XD_CHECK_MSG(preprocessed_, "preprocess() must run first");
  const Graph& g = net_->graph();
  Rng& rng = net_->rng(0);
  queries_ += queries_needed(g, demands);
  last_delivered_.assign(demands.size(), 0);

  if (!arena_) arena_ = std::make_unique<QueueArena>(g);
  arena_->begin_batch();
  std::vector<std::uint32_t> msg_demand;
  std::vector<VertexId> waypoints;
  const auto pick_portal = [&](int lvl, VertexId v) {
    const Level& level = levels_[static_cast<std::size_t>(lvl) - 1];
    const Cluster& c = level.clusters[level.home[v]];
    return c.portals[rng.next_below(c.portals.size())];
  };
  for (std::size_t di = 0; di < demands.size(); ++di) {
    const Demand& d = demands[di];
    for (std::uint32_t cnt = 0; cnt < d.count; ++cnt) {
      if (d.src == d.dst) {
        ++last_delivered_[di];  // local state, no channel use
        continue;
      }
      // Portal chain: climb the source's home clusters to the lowest
      // common level, cross, descend the destination's (GKS Lemma 3.4's
      // query walk).  Every hop is realized as a relay-tree path.
      const int ls = chain_depth(d.src);
      const int ld = chain_depth(d.dst);
      int common = 0;
      for (int lvl = std::min(ls, ld); lvl >= 1; --lvl) {
        if (levels_[static_cast<std::size_t>(lvl) - 1].home[d.src] ==
            levels_[static_cast<std::size_t>(lvl) - 1].home[d.dst]) {
          common = lvl;
          break;
        }
      }
      waypoints.clear();
      waypoints.push_back(d.src);
      for (int lvl = ls; lvl > common; --lvl) {
        waypoints.push_back(pick_portal(lvl, d.src));
      }
      for (int lvl = common + 1; lvl <= ld; ++lvl) {
        waypoints.push_back(pick_portal(lvl, d.dst));
      }
      waypoints.push_back(d.dst);

      arena_->begin_path();
      for (std::size_t w = 0; w + 1 < waypoints.size(); ++w) {
        if (waypoints[w] == waypoints[w + 1]) continue;
        const auto& f = forests_[rng.next_below(forests_.size())];
        append_tree_path(f, waypoints[w], waypoints[w + 1], *arena_);
      }
      arena_->end_path();
      // Audit half 1: the staged path must terminate at the demand's
      // destination (a broken portal chain would fail here, not deliver
      // to the wrong vertex).
      XD_CHECK(arena_->path_terminal(arena_->batch_size() - 1) == d.dst);
      msg_demand.push_back(static_cast<std::uint32_t>(di));
    }
  }

  const auto r = arena_->drain();
  // Audit half 2: drain() only returns once every staged message reached
  // the end of its path -- which half 1 pinned to the destination.
  for (const std::uint32_t di : msg_demand) ++last_delivered_[di];
  net_->ledger().count_messages(r.messages_sent);
  const auto rounds = std::max<std::uint64_t>(r.rounds, 1);
  net_->ledger().charge(rounds, "SimHierRouter/route");
  return rounds;
}

}  // namespace xd::routing

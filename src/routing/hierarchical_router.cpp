#include "routing/hierarchical_router.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace xd::routing {

HierarchicalRouter::HierarchicalRouter(const Graph& g,
                                       congest::RoundLedger& ledger,
                                       HierarchicalParams prm)
    : g_(&g), ledger_(&ledger), prm_(prm) {
  XD_CHECK(prm_.depth >= 1);
}

namespace {

double log_power(std::size_t n, int k, double scale) {
  const double ln = std::max(std::log2(static_cast<double>(std::max<std::size_t>(n, 2))), 1.0);
  return std::pow(ln, scale * static_cast<double>(k));
}

}  // namespace

std::uint64_t HierarchicalRouter::preprocessing_cost() const {
  const std::size_t n = g_->num_vertices();
  const auto m = static_cast<double>(std::max<std::size_t>(g_->num_edges(), 2));
  const double beta = std::pow(m, 1.0 / static_cast<double>(prm_.depth));
  // GKS Lemma 3.2 (hierarchy) + Lemma 3.3 (portals).
  const double hierarchy = static_cast<double>(prm_.depth) * beta *
                           log_power(n, prm_.depth, prm_.log_exp_scale) *
                           static_cast<double>(tau_);
  const double portals = static_cast<double>(prm_.depth) * beta * beta *
                         std::log2(static_cast<double>(std::max<std::size_t>(n, 2))) *
                         static_cast<double>(tau_);
  return static_cast<std::uint64_t>(std::ceil(hierarchy + portals));
}

std::uint64_t HierarchicalRouter::query_cost() const {
  // GKS Lemma 3.4.
  return static_cast<std::uint64_t>(
      std::ceil(log_power(g_->num_vertices(), prm_.depth, prm_.log_exp_scale) *
                static_cast<double>(tau_)));
}

std::uint64_t HierarchicalRouter::preprocess() {
  tau_ = prm_.tau_mix > 0 ? prm_.tau_mix
                          : std::max(spectral::mixing_time_estimate(*g_), 1u);
  const std::uint64_t cost = preprocessing_cost();
  ledger_->charge(cost, "HierarchicalRouter/preprocess");
  preprocessed_ = true;
  return cost;
}

std::uint64_t HierarchicalRouter::route(const std::vector<Demand>& demands) {
  XD_CHECK_MSG(preprocessed_, "preprocess() must run first");
  const std::uint64_t batches = queries_needed(*g_, demands);
  queries_ += batches;
  std::uint64_t messages = 0;
  for (const Demand& d : demands) messages += d.count;
  ledger_->count_messages(messages);
  const std::uint64_t cost = batches * query_cost();
  ledger_->charge(cost, "HierarchicalRouter/query");
  return cost;
}

}  // namespace xd::routing

#pragma once

/// \file hierarchical_router.hpp
/// GKS hierarchical routing data structure, as the cost model of §3.
///
/// The paper's Theorem 2 improvement hinges on reading the GKS router as a
/// distributed data structure: for any constant depth k, preprocessing
/// costs O(kβ)(log n)^{O(k)}·τ_mix + O(kβ² log n)·τ_mix (β = m^{1/k}) and
/// each subsequent deg-bounded routing query costs only (log n)^{O(k)}·τ_mix
/// rounds.  Choosing k constant makes preprocessing o(n^{1/3}) while queries
/// stay polylog, which is exactly what the triangle algorithm needs.
///
/// This backend charges those formulas with a measured τ_mix and validates /
/// delivers the demands logically.  It is the E5 oracle: the fully
/// simulated backends -- TreeRouter and SimulatedHierarchicalRouter (the
/// GKS structure actually built on the round engine,
/// simulated_router.hpp) -- cross-check the model, and the tests pin their
/// measured rounds below these charged bounds (see docs/routing.md on
/// charged vs simulated cost derivation).

#include "congest/ledger.hpp"
#include "routing/router.hpp"
#include "spectral/mixing.hpp"

namespace xd::routing {

/// Cost-model parameters (the (log n)^{O(k)} exponent constants).
struct HierarchicalParams {
  int depth = 2;          ///< the GKS parameter k (>= 1)
  double log_exp_scale = 1.0;  ///< multiplier c in (log n)^{c·k}
  /// Mixing time override; 0 = estimate from the graph spectrally.
  std::uint32_t tau_mix = 0;
};

/// GKS-model backend.
class HierarchicalRouter : public Router {
 public:
  HierarchicalRouter(const Graph& g, congest::RoundLedger& ledger,
                     HierarchicalParams prm);

  std::uint64_t preprocess() override;
  std::uint64_t route(const std::vector<Demand>& demands) override;
  [[nodiscard]] std::uint64_t queries() const override { return queries_; }

  /// Cost model exposed for the E5 bench table.
  [[nodiscard]] std::uint64_t preprocessing_cost() const;
  [[nodiscard]] std::uint64_t query_cost() const;
  [[nodiscard]] std::uint32_t tau_mix() const { return tau_; }

 private:
  const Graph* g_;
  congest::RoundLedger* ledger_;
  HierarchicalParams prm_;
  std::uint32_t tau_ = 1;
  bool preprocessed_ = false;
  std::uint64_t queries_ = 0;
};

}  // namespace xd::routing

#pragma once

/// \file queue_arena.hpp
/// Flat store-and-forward simulation over directed edges.
///
/// Both fully simulated routers (TreeRouter, SimulatedHierarchicalRouter)
/// end the same way: a batch of messages, each with a precomputed vertex
/// path, drained synchronously at one message per directed edge per round
/// with per-edge FIFO queues.  The seed implementation kept a
/// `std::map<packed(u,v), std::deque>` per route() call -- the last
/// node-based hot loop in the library.  This arena replaces it with flat
/// storage:
///
///   * a per-graph CSR index over *unique directed non-loop edges*,
///     ordered (u ascending, v ascending) -- exactly the iteration order of
///     the seed's packed-key map, so the drain schedule is bit-identical;
///   * one contiguous ring-slot vector holding every queued message id:
///     each edge owns a pre-counted span of it (counts come from a single
///     pass over the staged paths), and per-edge head/tail offsets walk
///     that span FIFO;
///   * per-edge state lives in epoch-stamped maps (util/scratch.hpp), so a
///     drain touching q edges costs O(q), not O(E), to reset.
///
/// Paths are staged flat too (one concatenated vertex vector + offsets),
/// with each hop's edge id resolved once at staging time.
///
/// The seed semantics are retained as drain_reference() -- an ordered map
/// of FIFO deques -- as the differential-testing oracle and the
/// bench_routing flat-vs-map baseline.  The seed's 32-bit key packing is
/// gone: keys are now `u * n + v` in 64 bits (identical ordering, no
/// silent truncation if VertexId ever widens), and every staged hop is
/// checked to be a real directed edge of the graph.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/scratch.hpp"

namespace xd::routing {

/// Drains batches of vertex-path messages through per-directed-edge FIFO
/// queues.  Reusable across batches: all scratch is retained and
/// epoch-stamped, so steady-state staging and draining allocate nothing.
class QueueArena {
 public:
  /// Builds the directed-edge index for `g` (must outlive the arena).
  explicit QueueArena(const Graph& g);

  /// Number of unique directed non-loop edges indexed.
  [[nodiscard]] std::size_t num_directed_edges() const {
    return edge_target_.size();
  }

  // ------------------------------------------------------------- staging

  /// Starts a new message batch, discarding the previous one.
  void begin_batch();

  /// Starts staging one message's path.
  void begin_path();

  /// Appends the next vertex of the current path.  Consecutive duplicates
  /// are collapsed (a hop from a vertex to itself moves nothing).
  void push_vertex(VertexId v);

  /// Finishes the current path.  Paths with fewer than two vertices are
  /// kept in the batch (they deliver instantly, arrival round 0) but never
  /// enqueue.
  void end_path();

  /// Messages staged in the current batch.
  [[nodiscard]] std::size_t batch_size() const {
    return path_offsets_.size() - 1;
  }

  /// Final vertex of staged message i's path (where the drain will leave
  /// it).  Requires a non-empty path.  Routers use this to audit that
  /// every staged message really terminates at its demand's destination.
  [[nodiscard]] VertexId path_terminal(std::size_t i) const {
    return path_data_[path_offsets_[i + 1] - 1];
  }

  // -------------------------------------------------------------- drains

  struct DrainResult {
    std::uint64_t rounds = 0;         ///< synchronous rounds until empty
    std::uint64_t messages_sent = 0;  ///< total hop transmissions
    /// Arrival round per staged message (batch order); 0 = no hops needed.
    std::vector<std::uint64_t> arrivals;
  };

  /// Flat drain of the staged batch: per round, every nonempty edge queue
  /// (ascending (u, v) order) forwards its front message.  The batch stays
  /// staged, so drain_reference() can replay the same messages.
  [[nodiscard]] DrainResult drain();

  /// The seed's map-of-deques implementation of the same schedule --
  /// differential oracle (tests pin drain() bit-identical to this) and the
  /// flat-vs-map baseline for bench_routing E5d.
  [[nodiscard]] DrainResult drain_reference() const;

  /// Per-edge scratch growth/reuse counters (regression hook: the steady
  /// state must stop growing).
  [[nodiscard]] const util::ScratchStats& scratch_stats() const {
    return queue_state_.stats();
  }

 private:
  struct QueueState {
    std::uint32_t base = 0;  ///< first slot of this edge's span
    std::uint32_t head = 0;  ///< next pop position (absolute)
    std::uint32_t tail = 0;  ///< next push position (absolute)
  };

  /// Index of directed edge (u, v), or aborts if {u, v} is not an edge.
  [[nodiscard]] std::uint32_t edge_index(VertexId u, VertexId v) const;

  const Graph* graph_;
  /// CSR over unique directed non-loop edges: for u, targets ascending in
  /// edge_target_[edge_offsets_[u] .. edge_offsets_[u + 1]).
  std::vector<std::uint32_t> edge_offsets_;
  std::vector<VertexId> edge_target_;

  /// Staged batch: concatenated paths + per-message offsets, and the edge
  /// id of every hop (hop_edges_[i] is the hop *entering* position i, i.e.
  /// the edge path_data_[i-1] -> path_data_[i]; the first position of each
  /// path holds a placeholder).
  std::vector<VertexId> path_data_;
  std::vector<std::uint32_t> path_offsets_;
  std::vector<std::uint32_t> hop_edges_;

  // Drain scratch, all retained across batches.
  util::StampedMap<std::uint32_t> hop_counts_;
  util::StampedMap<QueueState> queue_state_;
  std::vector<std::uint32_t> touched_edges_;
  std::vector<std::uint32_t> ring_slots_;
  std::vector<std::uint32_t> msg_at_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> moves_;
};

}  // namespace xd::routing

#pragma once

/// \file router.hpp
/// Routing on expanders (paper, §3; Ghaffari–Kuhn–Su).
///
/// The triangle algorithm needs to solve, Õ(n^{1/3}) times per cluster, the
/// problem: given demands where each vertex v is the source or destination
/// of at most O(deg(v)) bounded messages, deliver all of them.  GKS build a
/// hierarchical structure over a graph with mixing time τ_mix exposing a
/// trade-off between preprocessing and per-query cost, controlled by a
/// depth parameter k:
///
///   preprocessing:  O(kβ)(log n)^{O(k)} · τ_mix  +  O(kβ² log n) · τ_mix
///                   (hierarchy + portals; GKS Lemmas 3.2, 3.3), β = m^{1/k}
///   per query:      (log n)^{O(k)} · τ_mix        (GKS Lemma 3.4)
///
/// Three backends (docs/routing.md documents the charged-model-vs-simulated
/// substitution):
///   * HierarchicalRouter -- charges those formulas with measured τ_mix and
///     validates/delivers demands logically: reproduces the exact trade-off
///     curve of the paper (experiment E5a);
///   * TreeRouter -- O(log n) random-root BFS trees, store-and-forward with
///     per-edge FIFO queues, fully simulated: a real router whose measured
///     makespan cross-checks the τ_mix-dominated cost claims (E5b);
///   * SimulatedHierarchicalRouter -- the GKS hierarchy actually built on
///     the round engine (β-way edge-partition levels, lazy-walk portal
///     embedding, portal-relay delivery): measured preprocessing/query
///     rounds overlaid on the charged curve (E5c).
/// Both simulated backends drain through the flat QueueArena
/// (queue_arena.hpp).

#include <cstdint>
#include <vector>

#include "congest/ledger.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace xd::routing {

/// One routing demand: `count` bounded messages from src to dst.
struct Demand {
  VertexId src = 0;
  VertexId dst = 0;
  std::uint32_t count = 1;
};

/// Backend-independent interface.
class Router {
 public:
  virtual ~Router() = default;

  /// Builds the structure; returns (and charges) preprocessing rounds.
  virtual std::uint64_t preprocess() = 0;

  /// Delivers one batch of demands where each vertex sends/receives at most
  /// O(deg(v)) messages; returns (and charges) the rounds used.  Batches
  /// exceeding the per-vertex budget are split internally into the minimal
  /// number of queries (the Õ(n^{1/3}) repetition of the paper).
  virtual std::uint64_t route(const std::vector<Demand>& demands) = 0;

  /// Queries executed so far (diagnostics for the E5 trade-off table).
  [[nodiscard]] virtual std::uint64_t queries() const = 0;
};

/// Splits a demand batch into queries: within each query every vertex
/// sends at most `slack`*deg(v) and receives at most `slack`*deg(v)
/// messages.  Returns the number of queries needed (>= 1).  Shared by both
/// backends.
std::uint64_t queries_needed(const Graph& g, const std::vector<Demand>& demands,
                             double slack = 1.0);

}  // namespace xd::routing

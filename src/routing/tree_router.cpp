#include "routing/tree_router.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace xd::routing {

TreeRouter::TreeRouter(congest::Network& net, int trees)
    : net_(&net), requested_trees_(trees) {}

std::uint64_t TreeRouter::preprocess() {
  const Graph& g = net_->graph();
  const std::size_t n = g.num_vertices();
  XD_CHECK(n >= 1);
  int trees = requested_trees_;
  if (trees <= 0) {
    trees = 1;
    for (std::size_t v = 1; v < n; v <<= 1) ++trees;
  }
  const std::uint64_t before = net_->ledger().rounds();
  const std::vector<char> active(n, 1);
  Rng& rng = net_->rng(0);
  for (int t = 0; t < trees; ++t) {
    const auto root = static_cast<VertexId>(rng.next_below(n));
    forests_.push_back(
        prim::build_forest_from_roots(*net_, active, {root}, "TreeRouter/build"));
    XD_CHECK_MSG(forests_.back().is_active(root), "router graph disconnected");
  }
  return net_->ledger().rounds() - before;
}

void append_tree_path(const prim::Forest& f, VertexId src, VertexId dst,
                      QueueArena& arena) {
  XD_CHECK(src < f.root.size() && dst < f.root.size());
  XD_CHECK(f.is_active(src) && f.is_active(dst));
  // Climb both to the root, then cut at the lowest common vertex.
  thread_local std::vector<VertexId> up_src;
  thread_local std::vector<VertexId> up_dst;
  up_src.assign(1, src);
  while (up_src.back() != f.parent[up_src.back()]) {
    up_src.push_back(f.parent[up_src.back()]);
  }
  up_dst.assign(1, dst);
  while (up_dst.back() != f.parent[up_dst.back()]) {
    up_dst.push_back(f.parent[up_dst.back()]);
  }
  // Trim the common suffix, keeping the meeting vertex once.
  while (up_src.size() >= 2 && up_dst.size() >= 2 &&
         up_src[up_src.size() - 2] == up_dst[up_dst.size() - 2]) {
    up_src.pop_back();
    up_dst.pop_back();
  }
  for (const VertexId v : up_src) arena.push_vertex(v);
  for (auto it = up_dst.rbegin() + 1; it != up_dst.rend(); ++it) {
    arena.push_vertex(*it);
  }
}

std::uint64_t TreeRouter::route(const std::vector<Demand>& demands) {
  XD_CHECK_MSG(!forests_.empty(), "preprocess() must run first");
  const Graph& g = net_->graph();
  Rng& rng = net_->rng(0);
  queries_ += queries_needed(g, demands);

  // Expand demands into messages, each with a random tree and its path
  // staged flat in the arena.
  if (!arena_) arena_ = std::make_unique<QueueArena>(g);
  arena_->begin_batch();
  for (const Demand& d : demands) {
    for (std::uint32_t c = 0; c < d.count; ++c) {
      if (d.src == d.dst) continue;
      const auto& f = forests_[rng.next_below(forests_.size())];
      arena_->begin_path();
      append_tree_path(f, d.src, d.dst, *arena_);
      arena_->end_path();
    }
  }

  // Synchronous store-and-forward: per directed edge (u, v), one message
  // per round, FIFO by arrival -- drained on the flat queue arena, whose
  // schedule is pinned bit-identical to the seed std::map drain.
  const auto r = arena_->drain();
  net_->ledger().count_messages(r.messages_sent);
  net_->ledger().charge(std::max<std::uint64_t>(r.rounds, 1),
                        "TreeRouter/route");
  return std::max<std::uint64_t>(r.rounds, 1);
}

}  // namespace xd::routing

#include "routing/tree_router.hpp"

#include <algorithm>
#include <deque>
#include <map>

#include "util/check.hpp"

namespace xd::routing {

TreeRouter::TreeRouter(congest::Network& net, int trees)
    : net_(&net), requested_trees_(trees) {}

std::uint64_t TreeRouter::preprocess() {
  const Graph& g = net_->graph();
  const std::size_t n = g.num_vertices();
  XD_CHECK(n >= 1);
  int trees = requested_trees_;
  if (trees <= 0) {
    trees = 1;
    for (std::size_t v = 1; v < n; v <<= 1) ++trees;
  }
  const std::uint64_t before = net_->ledger().rounds();
  const std::vector<char> active(n, 1);
  Rng& rng = net_->rng(0);
  for (int t = 0; t < trees; ++t) {
    const auto root = static_cast<VertexId>(rng.next_below(n));
    forests_.push_back(
        prim::build_forest_from_roots(*net_, active, {root}, "TreeRouter/build"));
    XD_CHECK_MSG(forests_.back().is_active(root), "router graph disconnected");
  }
  return net_->ledger().rounds() - before;
}

std::vector<VertexId> TreeRouter::tree_path(const prim::Forest& f, VertexId src,
                                            VertexId dst) const {
  XD_CHECK(f.is_active(src) && f.is_active(dst));
  // Climb both to the root, then cut at the lowest common vertex.
  std::vector<VertexId> up_src{src};
  while (up_src.back() != f.parent[up_src.back()]) {
    up_src.push_back(f.parent[up_src.back()]);
  }
  std::vector<VertexId> up_dst{dst};
  while (up_dst.back() != f.parent[up_dst.back()]) {
    up_dst.push_back(f.parent[up_dst.back()]);
  }
  // Trim the common suffix, keeping the meeting vertex once.
  while (up_src.size() >= 2 && up_dst.size() >= 2 &&
         up_src[up_src.size() - 2] == up_dst[up_dst.size() - 2]) {
    up_src.pop_back();
    up_dst.pop_back();
  }
  std::vector<VertexId> path = std::move(up_src);
  for (auto it = up_dst.rbegin() + 1; it != up_dst.rend(); ++it) {
    path.push_back(*it);
  }
  return path;
}

std::uint64_t TreeRouter::route(const std::vector<Demand>& demands) {
  XD_CHECK_MSG(!forests_.empty(), "preprocess() must run first");
  const Graph& g = net_->graph();
  Rng& rng = net_->rng(0);
  queries_ += queries_needed(g, demands);

  // Expand demands into messages with a random tree and path each.
  struct Msg {
    std::vector<VertexId> path;
    std::size_t at = 0;  // index into path
  };
  std::vector<Msg> msgs;
  for (const Demand& d : demands) {
    for (std::uint32_t c = 0; c < d.count; ++c) {
      if (d.src == d.dst) continue;
      const auto& f = forests_[rng.next_below(forests_.size())];
      msgs.push_back(Msg{tree_path(f, d.src, d.dst), 0});
    }
  }

  // Synchronous store-and-forward: per directed edge (u, v), one message
  // per round, FIFO by arrival.  Simulated exactly.  Queues are keyed by
  // the packed directed pair (same iteration order as the (u, v) pair, one
  // flat word per key).
  const auto edge_key = [](VertexId u, VertexId v) {
    return (static_cast<std::uint64_t>(u) << 32) | v;
  };
  std::map<std::uint64_t, std::deque<std::size_t>> queues;
  std::size_t undelivered = 0;
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    if (msgs[i].at + 1 < msgs[i].path.size()) {
      queues[edge_key(msgs[i].path[0], msgs[i].path[1])].push_back(i);
      ++undelivered;
    }
  }

  std::uint64_t rounds = 0;
  std::uint64_t messages_sent = 0;
  std::vector<std::pair<std::uint64_t, std::size_t>> moves;
  while (undelivered > 0) {
    ++rounds;
    XD_CHECK_MSG(rounds < 100 * msgs.size() + 1000,
                 "store-and-forward failed to drain");
    moves.clear();
    for (auto& [edge, q] : queues) {
      if (!q.empty()) {
        moves.push_back({edge, q.front()});
        q.pop_front();
      }
    }
    for (const auto& [edge, mi] : moves) {
      ++messages_sent;
      Msg& m = msgs[mi];
      ++m.at;
      XD_CHECK(m.path[m.at] == static_cast<VertexId>(edge & 0xffffffffu));
      if (m.at + 1 < m.path.size()) {
        queues[edge_key(m.path[m.at], m.path[m.at + 1])].push_back(mi);
      } else {
        --undelivered;
      }
    }
  }
  net_->ledger().count_messages(messages_sent);
  net_->ledger().charge(std::max<std::uint64_t>(rounds, 1), "TreeRouter/route");
  return std::max<std::uint64_t>(rounds, 1);
}

}  // namespace xd::routing

#include "routing/queue_arena.hpp"

#include <algorithm>
#include <deque>
#include <map>

#include "util/check.hpp"

namespace xd::routing {

QueueArena::QueueArena(const Graph& g) : graph_(&g) {
  const std::size_t n = g.num_vertices();
  edge_offsets_.assign(n + 1, 0);
  edge_target_.reserve(g.volume());
  std::vector<VertexId> nbrs;
  for (VertexId u = 0; u < n; ++u) {
    nbrs.clear();
    for (const VertexId v : g.neighbors(u)) {
      if (v != u) nbrs.push_back(v);
    }
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    edge_target_.insert(edge_target_.end(), nbrs.begin(), nbrs.end());
    edge_offsets_[u + 1] = static_cast<std::uint32_t>(edge_target_.size());
  }
  path_offsets_.assign(1, 0);
}

std::uint32_t QueueArena::edge_index(VertexId u, VertexId v) const {
  XD_CHECK(u < graph_->num_vertices() && v < graph_->num_vertices());
  const auto* begin = edge_target_.data() + edge_offsets_[u];
  const auto* end = edge_target_.data() + edge_offsets_[u + 1];
  const auto* it = std::lower_bound(begin, end, v);
  XD_CHECK_MSG(it != end && *it == v,
               "path hop " << u << " -> " << v << " is not a graph edge");
  return static_cast<std::uint32_t>(edge_offsets_[u] + (it - begin));
}

void QueueArena::begin_batch() {
  path_data_.clear();
  path_offsets_.assign(1, 0);
  hop_edges_.clear();
}

void QueueArena::begin_path() {
  XD_CHECK(path_offsets_.back() == path_data_.size());
}

void QueueArena::push_vertex(VertexId v) {
  if (path_data_.size() > path_offsets_.back() && path_data_.back() == v) {
    return;  // collapse a self-hop
  }
  if (path_data_.size() > path_offsets_.back()) {
    hop_edges_.push_back(edge_index(path_data_.back(), v));
  } else {
    hop_edges_.push_back(0);  // keep hop_edges_ parallel to path_data_
  }
  path_data_.push_back(v);
}

void QueueArena::end_path() {
  // Offsets and ring cursors are 32-bit; a batch whose concatenated paths
  // overflow them must fail loudly, not wrap into a garbage schedule.
  XD_CHECK_MSG(path_data_.size() < (std::uint64_t{1} << 32),
               "staged batch exceeds 2^32 path vertices");
  path_offsets_.push_back(static_cast<std::uint32_t>(path_data_.size()));
}

QueueArena::DrainResult QueueArena::drain() {
  const std::size_t msgs = batch_size();
  DrainResult out;
  out.arrivals.assign(msgs, 0);

  // Pass 1: per-edge traversal counts over the whole batch (every hop of a
  // path enqueues exactly once), plus the set of edges ever used.  The
  // counts size each edge's span of the contiguous ring-slot vector.
  hop_counts_.begin_epoch(num_directed_edges());
  touched_edges_.clear();
  std::size_t total_hops = 0;
  std::size_t undelivered = 0;
  for (std::size_t i = 0; i < msgs; ++i) {
    const std::uint32_t b = path_offsets_[i];
    const std::uint32_t e = path_offsets_[i + 1];
    if (e - b < 2) continue;
    ++undelivered;
    total_hops += e - b - 1;
    for (std::uint32_t j = b + 1; j < e; ++j) {
      const std::uint32_t edge = hop_edges_[j];
      auto& c = hop_counts_.ref(edge);
      if (c == 0) touched_edges_.push_back(edge);
      ++c;
    }
  }
  std::sort(touched_edges_.begin(), touched_edges_.end());

  // Carve the ring-slot vector into per-edge spans (prefix sums of the
  // counts, in edge order) and seed each message onto its first edge.
  ring_slots_.resize(total_hops);
  queue_state_.begin_epoch(num_directed_edges());
  std::uint32_t base = 0;
  for (const std::uint32_t edge : touched_edges_) {
    queue_state_.ref(edge) = QueueState{base, base, base};
    base += hop_counts_.at(edge);
  }
  msg_at_.assign(msgs, 0);
  for (std::size_t i = 0; i < msgs; ++i) {
    const std::uint32_t b = path_offsets_[i];
    if (path_offsets_[i + 1] - b < 2) continue;
    auto& q = queue_state_.ref(hop_edges_[b + 1]);
    ring_slots_[q.tail++] = static_cast<std::uint32_t>(i);
  }

  // Synchronous drain: per round, each nonempty edge queue (ascending
  // (u, v) order -- the edge-id order) forwards its front message; the
  // forwarded messages then enqueue their next hop in the same order.
  // This is exactly the seed map's schedule (drain_reference below).
  while (undelivered > 0) {
    ++out.rounds;
    XD_CHECK_MSG(out.rounds < 100 * msgs + 1000,
                 "store-and-forward failed to drain");
    moves_.clear();
    for (const std::uint32_t edge : touched_edges_) {
      auto& q = queue_state_.ref(edge);
      if (q.head < q.tail) moves_.push_back({edge, ring_slots_[q.head++]});
    }
    for (const auto& [edge, mi] : moves_) {
      ++out.messages_sent;
      const std::uint32_t pos = path_offsets_[mi] + ++msg_at_[mi];
      XD_CHECK(path_data_[pos] == edge_target_[edge]);
      if (pos + 1 < path_offsets_[mi + 1]) {
        auto& q = queue_state_.ref(hop_edges_[pos + 1]);
        ring_slots_[q.tail++] = mi;
      } else {
        out.arrivals[mi] = out.rounds;
        --undelivered;
      }
    }
  }
  return out;
}

QueueArena::DrainResult QueueArena::drain_reference() const {
  const std::size_t msgs = batch_size();
  const std::uint64_t stride = graph_->num_vertices();
  // Seed bugfix, applied here too: the original packed the pair as
  // (u << 32) | v, silently truncating a wider VertexId.  u * n + v in 64
  // bits has the identical (u, v)-lexicographic ordering with no overflow
  // for any n that fits a Graph (checked).
  XD_CHECK(stride <= (std::uint64_t{1} << 32));
  const auto edge_key = [stride](VertexId u, VertexId v) {
    XD_CHECK(u < stride && v < stride);
    return static_cast<std::uint64_t>(u) * stride + v;
  };

  DrainResult out;
  out.arrivals.assign(msgs, 0);
  std::vector<std::uint32_t> at(msgs, 0);
  std::map<std::uint64_t, std::deque<std::size_t>> queues;
  std::size_t undelivered = 0;
  for (std::size_t i = 0; i < msgs; ++i) {
    const std::uint32_t b = path_offsets_[i];
    if (path_offsets_[i + 1] - b >= 2) {
      queues[edge_key(path_data_[b], path_data_[b + 1])].push_back(i);
      ++undelivered;
    }
  }

  std::vector<std::pair<std::uint64_t, std::size_t>> moves;
  while (undelivered > 0) {
    ++out.rounds;
    XD_CHECK_MSG(out.rounds < 100 * msgs + 1000,
                 "store-and-forward failed to drain");
    moves.clear();
    for (auto& [edge, q] : queues) {
      if (!q.empty()) {
        moves.push_back({edge, q.front()});
        q.pop_front();
      }
    }
    for (const auto& [edge, mi] : moves) {
      ++out.messages_sent;
      const std::uint32_t pos = path_offsets_[mi] + ++at[mi];
      XD_CHECK(path_data_[pos] ==
               static_cast<VertexId>(edge % stride));
      if (pos + 1 < path_offsets_[mi + 1]) {
        queues[edge_key(path_data_[pos], path_data_[pos + 1])].push_back(mi);
      } else {
        out.arrivals[mi] = out.rounds;
        --undelivered;
      }
    }
  }
  return out;
}

}  // namespace xd::routing

#include "routing/router.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace xd::routing {

std::uint64_t queries_needed(const Graph& g, const std::vector<Demand>& demands,
                             double slack) {
  XD_CHECK(slack > 0);
  std::vector<std::uint64_t> out_load(g.num_vertices(), 0);
  std::vector<std::uint64_t> in_load(g.num_vertices(), 0);
  for (const Demand& d : demands) {
    XD_CHECK(d.src < g.num_vertices() && d.dst < g.num_vertices());
    out_load[d.src] += d.count;
    in_load[d.dst] += d.count;
  }
  std::uint64_t queries = 1;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const double budget = slack * std::max<double>(g.degree(v), 1.0);
    const auto need_out =
        static_cast<std::uint64_t>(std::ceil(out_load[v] / budget));
    const auto need_in =
        static_cast<std::uint64_t>(std::ceil(in_load[v] / budget));
    queries = std::max({queries, need_out, need_in});
  }
  return queries;
}

}  // namespace xd::routing

#pragma once

/// \file simulated_router.hpp
/// Fully simulated GKS hierarchical routing plane (paper §3;
/// Ghaffari–Kuhn–Su, and the deterministic construction of
/// arXiv:2007.14898).
///
/// Where HierarchicalRouter *charges* the GKS cost formulas, this backend
/// *builds* the structure on the round engine and measures what it costs:
///
///   * hierarchy -- k recursive levels; each level partitions every parent
///     cluster's edge set into β = ⌈m^{1/k}⌉ random groups, and the
///     connected components of each group become the child clusters (GKS
///     Lemma 3.2's recursive split; every parent edge lands in exactly one
///     child, vertices join one child per group they have edges in).  Each
///     level's clusters confirm themselves by a min-id flood over their own
///     edges, run as a VertexProgram (real rounds: one per cluster-diameter
///     step);
///   * portals -- every child cluster embeds itself into its parent by
///     releasing one walk token per sibling cluster (the pairwise portal
///     linking whose Σ children² ~ β² token volume is exactly the
///     O(β²·log n)·τ_mix term of GKS Lemma 3.3, and what makes small k
///     expensive in E5c).  Tokens do the lazy walk of
///     spectral/lazy_walk.hpp (stay with probability 1/2; slots leaving
///     the parent's edge set deposit back -- the G{parent} walk) through
///     two-phase engine supersteps, and the vertices where they land after
///     ~τ_mix-scaled budgets become the cluster's portals;
///   * queries -- route() climbs each message through its source chain's
///     portals, crosses at the lowest common cluster, descends the
///     destination chain, realizes every portal hop as a relay-tree path,
///     and drains the whole batch through the flat QueueArena (one message
///     per directed edge per round) for a *measured* makespan.
///
/// The charged HierarchicalRouter is kept as the E5a oracle: bench_routing
/// E5c overlays this backend's measured preprocessing/query rounds on the
/// charged curve across k (same trade-off shape, constant-factor gap;
/// docs/routing.md documents the comparison).

#include <cstdint>
#include <memory>
#include <vector>

#include "congest/network.hpp"
#include "primitives/forest.hpp"
#include "routing/queue_arena.hpp"
#include "routing/router.hpp"

namespace xd::routing {

/// Construction knobs for the simulated hierarchy.
struct SimulatedHierarchicalParams {
  /// The GKS depth parameter k (>= 1): number of recursive edge-partition
  /// levels; β = ⌈m^{1/k}⌉ groups per split.
  int depth = 2;
  /// Cap on walk tokens (hence portals) per cluster.  0 = uncapped: one
  /// token per sibling, the Lemma 3.3 pairwise linking that E5c charts.
  int portal_cap = 0;
  /// Relay BFS trees for portal-hop paths; 0 = ⌈log₂ n⌉ + 1.
  int relay_trees = 0;
  /// Multiplier on the per-level portal-walk budget
  /// τ_ℓ = τ_mix · (log² vol_ℓ / log² vol) (capped at 256 steps).
  double walk_scale = 1.0;
};

/// Simulated GKS backend.  Requires a connected graph (same contract as
/// TreeRouter).
class SimulatedHierarchicalRouter : public Router {
 public:
  SimulatedHierarchicalRouter(congest::Network& net,
                              SimulatedHierarchicalParams prm);

  /// Builds hierarchy + portals + relay trees on the engine; returns the
  /// measured preprocessing rounds (also charged to the network's ledger).
  std::uint64_t preprocess() override;

  /// Delivers the batch through portal relays; returns (and charges) the
  /// measured store-and-forward makespan.
  std::uint64_t route(const std::vector<Demand>& demands) override;

  [[nodiscard]] std::uint64_t queries() const override { return queries_; }

  // ---------------------------------------------------------- diagnostics

  /// Partition levels actually built (<= depth; splits stop when every
  /// cluster is down to one edge).
  [[nodiscard]] int levels() const { return static_cast<int>(levels_.size()); }
  /// Clusters across all levels.
  [[nodiscard]] std::size_t num_clusters() const;
  /// Portal vertices across all clusters (with multiplicity per cluster).
  [[nodiscard]] std::size_t num_portals() const;
  /// Measured preprocessing rounds of the last preprocess().
  [[nodiscard]] std::uint64_t preprocess_rounds() const {
    return preprocess_rounds_;
  }
  /// Messages delivered per demand by the last route() call (every unit of
  /// Demand::count is delivered exactly once; the delivery audit the tests
  /// assert).
  [[nodiscard]] const std::vector<std::uint64_t>& last_delivered() const {
    return last_delivered_;
  }

 private:
  static constexpr std::uint32_t kNoCluster = static_cast<std::uint32_t>(-1);

  struct Cluster {
    std::uint32_t parent = 0;  ///< index into the previous level's clusters
    VertexId leader = 0;       ///< minimum member id
    std::vector<VertexId> members;  ///< sorted, distinct endpoints
    std::vector<EdgeId> edges;
    std::vector<VertexId> portals;  ///< sorted, unique; in the parent
  };
  struct Level {
    /// Per graph edge: its cluster at this level (kNoCluster if the edge's
    /// chain already bottomed out).  Edges of one parent partition exactly
    /// into its children.
    std::vector<std::uint32_t> edge_cluster;
    /// Per vertex: the canonical home cluster -- the child of the previous
    /// level's home that contains the vertex's minimum incident edge.
    /// Homes are nested across levels, which is what route()'s portal
    /// climb relies on.
    std::vector<std::uint32_t> home;
    std::vector<Cluster> clusters;
    std::uint64_t max_parent_volume = 0;  ///< max 2·|E_P| over parents split
  };

  /// Splits one parent's edge list into child clusters of `level`
  /// (host-side structure; the engine charges come from confirm_level /
  /// embed_portals).
  void split_cluster(std::uint32_t parent_index, std::uint64_t parent_volume,
                     const std::vector<EdgeId>& edges, std::uint64_t beta,
                     Level& level, Rng& rng);

  /// Min-id flood over every cluster of `level` at once, each over its own
  /// edges (VertexProgram); validates the components and charges their
  /// diameters.
  void confirm_level(const Level& level);

  /// Lazy-walk token embedding for every cluster of levels_[index]
  /// (VertexProgram supersteps); fills portals.
  void embed_portals(std::size_t index);

  /// Deepest level (1-based) at which v has a home cluster, 0 if none.
  [[nodiscard]] int chain_depth(VertexId v) const;

  congest::Network* net_;
  SimulatedHierarchicalParams prm_;
  std::vector<Level> levels_;
  std::vector<prim::Forest> forests_;
  std::unique_ptr<QueueArena> arena_;
  std::uint32_t tau_mix_ = 1;
  bool preprocessed_ = false;
  std::uint64_t preprocess_rounds_ = 0;
  std::uint64_t queries_ = 0;
  std::vector<std::uint64_t> last_delivered_;
};

}  // namespace xd::routing

#include "triangle/baseline_local.hpp"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "util/check.hpp"

namespace xd::triangle {

EnumerationResult enumerate_local_baseline(const Graph& g,
                                           congest::RoundLedger& ledger) {
  EnumerationResult out;
  const std::size_t n = g.num_vertices();
  if (n < 3) return out;
  const std::uint64_t before = ledger.rounds();

  // Cost: vertex v pushes deg(v) ids over each incident edge; the most
  // loaded edge carries max(deg(u), deg(v)) messages each way, so the
  // exchange completes in max-degree rounds (one bounded message per edge
  // per round).
  std::uint64_t rounds = 1;
  std::uint64_t messages = 0;
  for (VertexId v = 0; v < n; ++v) {
    const std::uint64_t d = g.degree(v);
    rounds = std::max(rounds, d);
    messages += d * d;
  }
  ledger.charge(rounds, "LocalBaseline/exchange");
  ledger.count_messages(messages);

  // Detection: v knows N(v) and N(u) for each neighbor u; triangle
  // {v, u, w} is visible at v whenever w ∈ N(v) ∩ N(u).
  std::set<Triangle> found;
  std::vector<std::unordered_set<VertexId>> adj(n);
  for (VertexId v = 0; v < n; ++v) {
    for (const VertexId u : g.neighbors(v)) {
      if (u != v) adj[v].insert(u);
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    for (const VertexId u : adj[v]) {
      if (u <= v) continue;
      for (const VertexId w : adj[u]) {
        if (w <= u) continue;
        if (adj[v].count(w)) found.insert(Triangle{v, u, w});
      }
    }
  }
  out.triangles.assign(found.begin(), found.end());
  out.rounds = ledger.rounds() - before;
  return out;
}

}  // namespace xd::triangle

#include "triangle/baseline_local.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace xd::triangle {

EnumerationResult enumerate_local_baseline(const Graph& g,
                                           congest::RoundLedger& ledger) {
  EnumerationResult out;
  const std::size_t n = g.num_vertices();
  if (n < 3) return out;
  const std::uint64_t before = ledger.rounds();

  // Cost: vertex v pushes deg(v) ids over each incident edge; the most
  // loaded edge carries max(deg(u), deg(v)) messages each way, so the
  // exchange completes in max-degree rounds (one bounded message per edge
  // per round).
  std::uint64_t rounds = 1;
  std::uint64_t messages = 0;
  for (VertexId v = 0; v < n; ++v) {
    const std::uint64_t d = g.degree(v);
    rounds = std::max(rounds, d);
    messages += d * d;
  }
  ledger.charge(rounds, "LocalBaseline/exchange");
  ledger.count_messages(messages);

  // Detection: v knows N(v) and N(u) for each neighbor u; triangle
  // {v, u, w} is visible at v whenever w ∈ N(v) ∩ N(u).  Flat plane: one
  // CSR of sorted, deduplicated neighbor lists (loops dropped), then a
  // two-pointer merge intersection per oriented edge v < u.
  std::vector<std::uint32_t> offsets(n + 1, 0);
  std::vector<VertexId> adj;
  adj.reserve(g.volume());
  std::vector<VertexId> tmp;
  for (VertexId v = 0; v < n; ++v) {
    tmp.clear();
    for (const VertexId u : g.neighbors(v)) {
      if (u != v) tmp.push_back(u);
    }
    std::sort(tmp.begin(), tmp.end());
    tmp.erase(std::unique(tmp.begin(), tmp.end()), tmp.end());
    adj.insert(adj.end(), tmp.begin(), tmp.end());
    offsets[v + 1] = static_cast<std::uint32_t>(adj.size());
  }

  // v ascending, u ascending within N(v), w ascending within the
  // intersection: triples are emitted in sorted order, and each triangle
  // v < u < w is found exactly once (via its smallest edge (v, u)), so the
  // output needs no dedup pass.
  std::vector<Triangle> found;
  for (VertexId v = 0; v < n; ++v) {
    const VertexId* av_end = adj.data() + offsets[v + 1];
    for (const VertexId* pu = adj.data() + offsets[v]; pu != av_end; ++pu) {
      const VertexId u = *pu;
      if (u <= v) continue;
      const VertexId* x = pu + 1;  // N(v) entries > u
      const VertexId* y = adj.data() + offsets[u];
      const VertexId* y_end = adj.data() + offsets[u + 1];
      y = std::upper_bound(y, y_end, u);
      while (x != av_end && y != y_end) {
        if (*x < *y) {
          ++x;
        } else if (*y < *x) {
          ++y;
        } else {
          found.push_back(Triangle{v, u, *x});
          ++x;
          ++y;
        }
      }
    }
  }
  out.triangles = std::move(found);
  out.rounds = ledger.rounds() - before;
  return out;
}

}  // namespace xd::triangle

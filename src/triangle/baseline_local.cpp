#include "triangle/baseline_local.hpp"

#include <algorithm>

#include "triangle/intersect.hpp"
#include "util/check.hpp"

namespace xd::triangle {

void csr_triangle_join(const std::uint32_t* offsets, const VertexId* adj,
                       std::size_t n, std::vector<Triangle>& out) {
  auto& bm = intersect::BitmapIntersect::for_thread();
  std::vector<std::uint32_t> matches;
  for (VertexId v = 0; v < n; ++v) {
    const VertexId* av = adj + offsets[v];
    const std::size_t dv = offsets[v + 1] - offsets[v];
    const VertexId* av_end = av + dv;
    if (matches.size() < dv + intersect::kOutSlack) {
      matches.resize(dv + intersect::kOutSlack);
    }
    // Hub vertices build one bitmap of N(v) and probe every neighbor list
    // against it; every probed w is > u, so the match set equals the tail
    // intersection N(v) ∩ N(u) ∩ (u, ∞) exactly.
    const bool hub = intersect::use_bitmap(dv);
    if (hub) bm.build(av, dv);
    for (const VertexId* pu = av; pu != av_end; ++pu) {
      const VertexId u = *pu;
      if (u <= v) continue;
      const VertexId* bu = adj + offsets[u];
      const VertexId* bu_end = adj + offsets[u + 1];
      const VertexId* b0 = std::upper_bound(bu, bu_end, u);
      const std::size_t nb = static_cast<std::size_t>(bu_end - b0);
      if (matches.size() < nb + intersect::kOutSlack) {
        matches.resize(nb + intersect::kOutSlack);
      }
      std::size_t cnt;
      if (hub) {
        cnt = bm.probe(b0, nb, matches.data());
      } else {
        cnt = intersect::intersect_sorted(
            pu + 1, static_cast<std::size_t>(av_end - (pu + 1)), b0, nb,
            matches.data());
      }
      for (std::size_t t = 0; t < cnt; ++t) {
        out.push_back(Triangle{v, u, matches[t]});
      }
    }
  }
}

void csr_triangle_join_reference(const std::uint32_t* offsets,
                                 const VertexId* adj, std::size_t n,
                                 std::vector<Triangle>& out) {
  for (VertexId v = 0; v < n; ++v) {
    const VertexId* av_end = adj + offsets[v + 1];
    for (const VertexId* pu = adj + offsets[v]; pu != av_end; ++pu) {
      const VertexId u = *pu;
      if (u <= v) continue;
      const VertexId* x = pu + 1;  // N(v) entries > u
      const VertexId* y = adj + offsets[u];
      const VertexId* y_end = adj + offsets[u + 1];
      y = std::upper_bound(y, y_end, u);
      while (x != av_end && y != y_end) {
        if (*x < *y) {
          ++x;
        } else if (*y < *x) {
          ++y;
        } else {
          out.push_back(Triangle{v, u, *x});
          ++x;
          ++y;
        }
      }
    }
  }
}

EnumerationResult enumerate_local_baseline(const Graph& g,
                                           congest::RoundLedger& ledger) {
  EnumerationResult out;
  const std::size_t n = g.num_vertices();
  if (n < 3) return out;
  const std::uint64_t before = ledger.rounds();

  // Cost: vertex v pushes deg(v) ids over each incident edge; the most
  // loaded edge carries max(deg(u), deg(v)) messages each way, so the
  // exchange completes in max-degree rounds (one bounded message per edge
  // per round).
  std::uint64_t rounds = 1;
  std::uint64_t messages = 0;
  for (VertexId v = 0; v < n; ++v) {
    const std::uint64_t d = g.degree(v);
    rounds = std::max(rounds, d);
    messages += d * d;
  }
  ledger.charge(rounds, "LocalBaseline/exchange");
  ledger.count_messages(messages);

  // Detection: v knows N(v) and N(u) for each neighbor u; triangle
  // {v, u, w} is visible at v whenever w ∈ N(v) ∩ N(u).  Flat plane: one
  // CSR of sorted, deduplicated neighbor lists (loops dropped), joined by
  // the hybrid intersection kernels (csr_triangle_join).
  std::vector<std::uint32_t> offsets(n + 1, 0);
  std::vector<VertexId> adj;
  adj.reserve(g.volume());
  std::vector<VertexId> tmp;
  for (VertexId v = 0; v < n; ++v) {
    tmp.clear();
    for (const VertexId u : g.neighbors(v)) {
      if (u != v) tmp.push_back(u);
    }
    std::sort(tmp.begin(), tmp.end());
    tmp.erase(std::unique(tmp.begin(), tmp.end()), tmp.end());
    adj.insert(adj.end(), tmp.begin(), tmp.end());
    offsets[v + 1] = static_cast<std::uint32_t>(adj.size());
  }

  // v ascending, u ascending within N(v), w ascending within the
  // intersection: triples are emitted in sorted order, and each triangle
  // v < u < w is found exactly once (via its smallest edge (v, u)), so the
  // output needs no dedup pass.
  std::vector<Triangle> found;
  csr_triangle_join(offsets.data(), adj.data(), n, found);
  out.triangles = std::move(found);
  out.rounds = ledger.rounds() - before;
  return out;
}

}  // namespace xd::triangle

#pragma once

/// \file triple_rank.hpp
/// O(1) combinatorial ranking of sorted group triples.
///
/// The DLP proxy assignment enumerates the sorted triples {a <= b <= c}
/// over [0, p) in lexicographic order and deals proxy hosts round-robin in
/// that order, so the rank of a triple in the enumeration IS its proxy
/// identity: rank(a, b, c) = #{sorted triples lexicographically smaller}.
/// Closed form, with tet(x) = C(x+2, 3) and tri(x) = C(x+1, 2):
///
///   rank(a, b, c) = tet(p) - tet(p-a)      triples whose min is < a
///                 + tri(p-a) - tri(p-b)    min = a, middle in [a, b)
///                 + (c - b)                min = a, middle = b, last < c
///
/// This replaces the seed's (a*p + b)*p + c hash key plus its O(p^3)
/// unordered host table: host lookup becomes index arithmetic
/// (cluster_vertices[rank % |V_i|]), and sorting flat (rank, u, v) tuples
/// reproduces the seed's std::map bucket order exactly, because rank is
/// monotone in the old key (both walk the same lexicographic order).

#include <algorithm>
#include <cstdint>

namespace xd::triangle {

/// Ranks sorted triples over the group domain [0, p).
class TripleRanker {
 public:
  explicit TripleRanker(std::uint32_t p) : p_(p) {}

  /// Number of sorted triples: C(p+2, 3).
  [[nodiscard]] std::uint64_t count() const { return tet(p_); }

  /// Rank of the sorted triple (a <= b <= c) in lexicographic order.
  [[nodiscard]] std::uint64_t rank_sorted(std::uint32_t a, std::uint32_t b,
                                          std::uint32_t c) const {
    return tet(p_) - tet(p_ - a) + tri(p_ - a) - tri(p_ - b) +
           (static_cast<std::uint64_t>(c) - b);
  }

  /// Rank of an arbitrary triple (sorted internally, three compares).
  [[nodiscard]] std::uint64_t rank(std::uint32_t a, std::uint32_t b,
                                   std::uint32_t c) const {
    if (a > b) std::swap(a, b);
    if (b > c) std::swap(b, c);
    if (a > b) std::swap(a, b);
    return rank_sorted(a, b, c);
  }

 private:
  static std::uint64_t tri(std::uint64_t x) { return x * (x + 1) / 2; }
  static std::uint64_t tet(std::uint64_t x) { return x * (x + 1) * (x + 2) / 6; }

  std::uint32_t p_;
};

}  // namespace xd::triangle

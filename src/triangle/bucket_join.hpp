#pragma once

/// \file bucket_join.hpp
/// The flat proxy-bucket join shared by the clustered (cluster_enum) and
/// CONGESTED-CLIQUE (clique_dlp) triangle data planes.
///
/// Every edge copy shipped to a proxy is one (rank, u, v) tuple; one pass
/// groups the whole plane into buckets ordered by (rank, u, v) --
/// ascending rank reproduces the seed's std::map iteration order (see
/// triple_rank.hpp) and the in-bucket (u, v) order is the seed's
/// per-bucket sort.  Dense planes take an O(N + R) counting scatter over
/// the R = C(p+2,3) rank domain plus tiny per-bucket sorts; sparse planes
/// (small clusters) skip the O(R) counter clear and comparison-sort
/// directly -- both orders are identical.
///
/// Each bucket then joins with zero per-bucket setup: bucket edges sharing
/// their smaller endpoint x sit consecutively (a *run*), every pair (x,y),
/// (x,z) with y < z is a wedge, and the closing edges live in the run of y
/// further down the same sorted span.  Each triangle is found exactly
/// once, at its smallest vertex.  The default join routes the closing-edge
/// search through the hybrid intersection kernels (intersect.hpp): per
/// wedge source y, the x-run's tail is intersected with y's run -- merge
/// kernel for mid-size runs, an epoch-stamped bitmap of the x-run for
/// high-degree runs -- while join_proxy_buckets_probe retains the PR 4
/// per-candidate binary-search loop as the differential oracle and the
/// bench baseline (bench_triangle E4d's join-phase comparison).

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "triangle/clique_dlp.hpp"
#include "triangle/triple_rank.hpp"

namespace xd::triangle {

/// One shipped edge copy: proxy rank plus sorted endpoints (u < v).
struct ProxyTuple {
  std::uint64_t rank;
  VertexId u, v;

  friend bool operator<(const ProxyTuple& a, const ProxyTuple& b) {
    if (a.rank != b.rank) return a.rank < b.rank;
    if (a.u != b.u) return a.u < b.u;
    return a.v < b.v;
  }
  friend bool operator==(const ProxyTuple& a, const ProxyTuple& b) {
    return a.rank == b.rank && a.u == b.u && a.v == b.v;
  }
};

/// Reusable storage for the counting scatter.  Capacities persist across
/// buckets, clusters, and levels; nothing here is sized by the ambient
/// vertex count (the rank domain is O(p^3) = O(n) but is touched only on
/// the dense path, where the tuple plane itself is at least as large).
struct JoinScratch {
  std::vector<std::uint32_t> counts;  ///< per-rank counters / end offsets
  std::vector<ProxyTuple> scatter;    ///< counting-sort target buffer
  // Kernelized join scratch, bucket-local (capacities persist):
  std::vector<std::uint32_t> vals;       ///< the span's larger endpoints
  std::vector<std::uint32_t> run_u;      ///< distinct smaller endpoints
  std::vector<std::uint32_t> run_begin;  ///< run extents into vals,
  std::vector<std::uint32_t> run_end;    ///<   parallel to run_u
  std::vector<std::uint32_t> matches;    ///< kernel output buffer
};

/// Groups `tuples` by (rank, u, v), dedups, joins each bucket, and appends
/// every triangle x < y < z whose group triple ranks to its bucket (the
/// ownership rule that keeps reports duplicate-free across proxies).
/// `groups[v]` is the group of ambient vertex v.  Closing-edge searches run
/// on the hybrid intersection kernels; output (content and order) is
/// bit-identical to join_proxy_buckets_probe under every kernel/ISA.
void join_proxy_buckets(std::vector<ProxyTuple>& tuples,
                        const TripleRanker& ranker,
                        const std::uint32_t* groups, JoinScratch& scratch,
                        std::vector<Triangle>& out);

/// The PR 4 join (per-candidate binary search over the bucket span),
/// retained as the kernel differential oracle and the E4d join-phase
/// baseline.  Identical output to join_proxy_buckets.
void join_proxy_buckets_probe(std::vector<ProxyTuple>& tuples,
                              const TripleRanker& ranker,
                              const std::uint32_t* groups,
                              JoinScratch& scratch,
                              std::vector<Triangle>& out);

}  // namespace xd::triangle

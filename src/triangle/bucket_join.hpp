#pragma once

/// \file bucket_join.hpp
/// The flat proxy-bucket join shared by the clustered (cluster_enum) and
/// CONGESTED-CLIQUE (clique_dlp) triangle data planes.
///
/// Every edge copy shipped to a proxy is one (rank, u, v) tuple; one pass
/// groups the whole plane into buckets ordered by (rank, u, v) --
/// ascending rank reproduces the seed's std::map iteration order (see
/// triple_rank.hpp) and the in-bucket (u, v) order is the seed's
/// per-bucket sort.  Dense planes take an O(N + R) counting scatter over
/// the R = C(p+2,3) rank domain plus tiny per-bucket sorts; sparse planes
/// (small clusters) skip the O(R) counter clear and comparison-sort
/// directly -- both orders are identical.
///
/// Each bucket then joins with zero per-bucket setup: bucket edges sharing
/// their smaller endpoint x sit consecutively, every pair (x,y), (x,z)
/// with y < z is a wedge, and the closing edge (y, z) is a binary search
/// in the same sorted span.  Each triangle is found exactly once, at its
/// smallest vertex, replacing the seed's per-bucket hash-map walk plus
/// hash-set probe per candidate.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "triangle/clique_dlp.hpp"
#include "triangle/triple_rank.hpp"

namespace xd::triangle {

/// One shipped edge copy: proxy rank plus sorted endpoints (u < v).
struct ProxyTuple {
  std::uint64_t rank;
  VertexId u, v;

  friend bool operator<(const ProxyTuple& a, const ProxyTuple& b) {
    if (a.rank != b.rank) return a.rank < b.rank;
    if (a.u != b.u) return a.u < b.u;
    return a.v < b.v;
  }
  friend bool operator==(const ProxyTuple& a, const ProxyTuple& b) {
    return a.rank == b.rank && a.u == b.u && a.v == b.v;
  }
};

/// Reusable storage for the counting scatter.  Capacities persist across
/// buckets, clusters, and levels; nothing here is sized by the ambient
/// vertex count (the rank domain is O(p^3) = O(n) but is touched only on
/// the dense path, where the tuple plane itself is at least as large).
struct JoinScratch {
  std::vector<std::uint32_t> counts;  ///< per-rank counters / end offsets
  std::vector<ProxyTuple> scatter;    ///< counting-sort target buffer
};

/// Groups `tuples` by (rank, u, v), dedups, joins each bucket, and appends
/// every triangle x < y < z whose group triple ranks to its bucket (the
/// ownership rule that keeps reports duplicate-free across proxies).
/// `groups[v]` is the group of ambient vertex v.
void join_proxy_buckets(std::vector<ProxyTuple>& tuples,
                        const TripleRanker& ranker,
                        const std::uint32_t* groups, JoinScratch& scratch,
                        std::vector<Triangle>& out);

}  // namespace xd::triangle

#include "triangle/intersect.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>

#if defined(__x86_64__) || defined(_M_X64)
#include <emmintrin.h>
#endif

namespace xd::triangle::intersect {

namespace {

std::atomic<bool> g_timing{false};

/// -1 = not yet read from the environment; 0/1 = resolved.
std::atomic<int> g_force_scalar{-1};

inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Scalar intersection: two-pointer merge, or -- under heavy size skew --
/// a galloping binary search of the small side through the large side (the
/// PR 4 probe idiom).  Both branches emit the identical ascending matches.
std::size_t scalar_raw(const std::uint32_t* a, std::size_t na,
                       const std::uint32_t* b, std::size_t nb,
                       std::uint32_t* out) {
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  if (na == 0) return 0;
  std::size_t k = 0;
  if (nb / na >= 32) {
    const std::uint32_t* lo = b;
    const std::uint32_t* const end = b + nb;
    for (std::size_t i = 0; i < na; ++i) {
      lo = std::lower_bound(lo, end, a[i]);
      if (lo == end) break;
      if (*lo == a[i]) out[k++] = a[i];
    }
    return k;
  }
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out[k++] = a[i];
      ++i;
      ++j;
    }
  }
  return k;
}

#if defined(__x86_64__) || defined(_M_X64)
/// 4-wide SSE2 compare-shuffle merge: all-pairs lane compare of two sorted
/// blocks (three 32-bit rotations of the b block), scalar mask extraction,
/// then advance the block with the smaller maximum.  x86-64 baseline ISA,
/// so this needs no per-TU flags.
std::size_t merge_sse2_raw(const std::uint32_t* a, std::size_t na,
                           const std::uint32_t* b, std::size_t nb,
                           std::uint32_t* out) {
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t k = 0;
  while (i + 4 <= na && j + 4 <= nb) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    __m128i eq = _mm_cmpeq_epi32(va, vb);
    eq = _mm_or_si128(
        eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1))));
    eq = _mm_or_si128(
        eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2))));
    eq = _mm_or_si128(
        eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3))));
    int mask = _mm_movemask_ps(_mm_castsi128_ps(eq));
    while (mask != 0) {
      const int r = __builtin_ctz(static_cast<unsigned>(mask));
      out[k++] = a[i + static_cast<std::size_t>(r)];
      mask &= mask - 1;
    }
    const std::uint32_t a_max = a[i + 3];
    const std::uint32_t b_max = b[j + 3];
    if (a_max <= b_max) i += 4;
    if (b_max <= a_max) j += 4;
  }
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out[k++] = a[i];
      ++i;
      ++j;
    }
  }
  return k;
}
#endif  // x86-64

Isa detect_isa() {
#if defined(__x86_64__) || defined(_M_X64)
  if (detail::avx2_compiled() && __builtin_cpu_supports("avx2")) {
    return Isa::kAvx2;
  }
  return Isa::kSse2;
#else
  return Isa::kScalarOnly;
#endif
}

std::size_t merge_raw(const std::uint32_t* a, std::size_t na,
                      const std::uint32_t* b, std::size_t nb,
                      std::uint32_t* out) {
  switch (active_isa()) {
#if defined(__x86_64__) || defined(_M_X64)
    case Isa::kAvx2:
      return detail::intersect_merge_avx2(a, na, b, nb, out);
    case Isa::kSse2:
      return merge_sse2_raw(a, na, b, nb, out);
#endif
    default:
      return scalar_raw(a, na, b, nb, out);
  }
}

/// Accumulates one call into the thread's counters for `kernel`; ns only
/// while timing is enabled (benches), so the steady state stays cheap adds.
class Record {
 public:
  Record(Kernel kernel, std::size_t elements)
      : c_(stats_for_thread().k[static_cast<std::size_t>(kernel)]),
        t0_(g_timing.load(std::memory_order_relaxed) ? now_ns() : 0) {
    ++c_.calls;
    c_.elements += elements;
  }
  ~Record() {
    c_.matches += matches_;
    if (t0_ != 0) c_.ns += now_ns() - t0_;
  }
  std::size_t done(std::size_t matches) {
    matches_ = matches;
    return matches;
  }

 private:
  KernelCounters& c_;
  std::uint64_t t0_;
  std::size_t matches_ = 0;
};

}  // namespace

const char* kernel_name(Kernel k) {
  static constexpr const char* kNames[kKernelCount] = {"scalar", "merge",
                                                       "bitmap"};
  return kNames[static_cast<std::size_t>(k)];
}

const char* isa_name(Isa isa) {
  static constexpr const char* kNames[3] = {"scalar", "sse2", "avx2"};
  return kNames[static_cast<std::size_t>(isa)];
}

bool force_scalar() {
  int v = g_force_scalar.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* e = std::getenv("XD_FORCE_SCALAR");
    v = (e != nullptr && e[0] != '\0' && !(e[0] == '0' && e[1] == '\0')) ? 1
                                                                         : 0;
    g_force_scalar.store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

void set_force_scalar(bool on) {
  g_force_scalar.store(on ? 1 : 0, std::memory_order_relaxed);
}

Isa active_isa() {
  if (force_scalar()) return Isa::kScalarOnly;
  static const Isa isa = detect_isa();
  return isa;
}

bool use_bitmap(std::size_t reused_degree) {
  return reused_degree >= kBitmapMinDegree && !force_scalar();
}

KernelStats& stats_for_thread() {
  thread_local KernelStats stats;
  return stats;
}

void reset_thread_stats() { stats_for_thread() = KernelStats{}; }

void set_timing_enabled(bool on) {
  g_timing.store(on, std::memory_order_relaxed);
}

bool timing_enabled() { return g_timing.load(std::memory_order_relaxed); }

std::size_t intersect_scalar(const std::uint32_t* a, std::size_t na,
                             const std::uint32_t* b, std::size_t nb,
                             std::uint32_t* out) {
  Record rec(Kernel::kScalar, na + nb);
  return rec.done(scalar_raw(a, na, b, nb, out));
}

std::size_t intersect_merge(const std::uint32_t* a, std::size_t na,
                            const std::uint32_t* b, std::size_t nb,
                            std::uint32_t* out) {
  Record rec(Kernel::kMerge, na + nb);
  return rec.done(merge_raw(a, na, b, nb, out));
}

std::size_t intersect_sorted(const std::uint32_t* a, std::size_t na,
                             const std::uint32_t* b, std::size_t nb,
                             std::uint32_t* out) {
  if (std::min(na, nb) < kMergeMinSize || active_isa() == Isa::kScalarOnly) {
    return intersect_scalar(a, na, b, nb, out);
  }
  return intersect_merge(a, na, b, nb, out);
}

void BitmapIntersect::build(const std::uint32_t* r, std::size_t nr) {
  const std::uint64_t t0 =
      g_timing.load(std::memory_order_relaxed) ? now_ns() : 0;
  auto& c = stats_for_thread().k[static_cast<std::size_t>(Kernel::kBitmap)];
  c.elements += nr;  // build cost charged to the bitmap class, no call
  nr_ = nr;
  if (nr == 0) return;
  r_min_ = r[0];
  r_max_ = r[nr - 1];
  r_bits_.begin_epoch(static_cast<std::size_t>(r_max_) + 1);
  for (std::size_t i = 0; i < nr; ++i) r_bits_.set(r[i]);
  if (t0 != 0) c.ns += now_ns() - t0;
}

std::size_t BitmapIntersect::probe(const std::uint32_t* q, std::size_t nq,
                                   std::uint32_t* out) {
  Record rec(Kernel::kBitmap, nq);
  if (nr_ == 0 || nq == 0) return rec.done(0);
  // Only the overlap with R's value span can match.
  const std::uint32_t* q_lo = std::lower_bound(q, q + nq, r_min_);
  const std::uint32_t* q_hi = std::upper_bound(q_lo, q + nq, r_max_);
  if (q_lo == q_hi) return rec.done(0);
  const std::size_t m = static_cast<std::size_t>(q_hi - q_lo);
  const std::size_t w_lo = *q_lo >> 6;
  const std::size_t w_hi = (*(q_hi - 1) >> 6) + 1;
  std::size_t k = 0;
  if (m >= 2 * (w_hi - w_lo)) {
    // Dense query: materialize Q's bitmap and extract from word ANDs.
    q_bits_.begin_epoch(static_cast<std::size_t>(*(q_hi - 1)) + 1);
    for (const std::uint32_t* p = q_lo; p != q_hi; ++p) q_bits_.set(*p);
    if (active_isa() == Isa::kAvx2) {
      k = detail::bitmap_and_extract_avx2(r_bits_.slots_data(),
                                          r_bits_.epoch(),
                                          q_bits_.slots_data(),
                                          q_bits_.epoch(), w_lo, w_hi, out);
    } else {
      for (std::size_t w = w_lo; w < w_hi; ++w) {
        std::uint64_t bits = r_bits_.word(w) & q_bits_.word(w);
        while (bits != 0) {
          out[k++] = static_cast<std::uint32_t>(
              (w << 6) + static_cast<std::size_t>(__builtin_ctzll(bits)));
          bits &= bits - 1;
        }
      }
    }
  } else {
    // Sparse query: stamped bit tests, each one random slot access into a
    // slab that may live in L2+; run a short prefetch distance ahead.
    constexpr std::size_t kPrefetch = 8;
    for (const std::uint32_t* p = q_lo; p != q_hi; ++p) {
      if (p + kPrefetch < q_hi) r_bits_.prefetch(p[kPrefetch]);
      if (r_bits_.test(*p)) out[k++] = *p;
    }
  }
  return rec.done(k);
}

BitmapIntersect& BitmapIntersect::for_thread() {
  thread_local BitmapIntersect arena;
  return arena;
}

}  // namespace xd::triangle::intersect

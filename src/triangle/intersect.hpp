#pragma once

/// \file intersect.hpp
/// Hybrid sorted-range intersection kernels for the triangle planes.
///
/// Every consumer of adjacency intersection in the repo -- the proxy-bucket
/// wedge join (bucket_join.hpp, serving the clustered and CONGESTED-CLIQUE
/// planes) and the local baseline's CSR merge join (baseline_local.hpp) --
/// funnels through this interface.  Three kernel classes cover the degree
/// spectrum (docs/triangle.md, "Intersection kernels"):
///
///  * **scalar** -- two-pointer merge, switching to per-element binary
///    search under heavy size skew.  The portable fallback and the
///    differential oracle: `XD_FORCE_SCALAR=1` (or set_force_scalar) pins
///    every call here, and all kernels produce the identical ascending
///    match sequence, so forced-scalar and dispatched runs are
///    bit-identical end to end.
///  * **merge** -- vectorized two-pointer over sorted ranges: 8-wide AVX2
///    compare-shuffle blocks (all-pairs lane compare, mask-compress store)
///    with a 4-wide SSE2 variant and a scalar tail.  Selected for
///    mid-degree ranges when both sides clear kMergeMinSize.
///  * **bitmap** -- an epoch-stamped bitmap (util/bitset_arena.hpp) of a
///    high-degree "hub" range, built once and probed per query range; when
///    the query itself is dense over the hub's span the probe collapses to
///    64-bit word AND + bit extraction (AVX2 where available).  Selected by
///    the consumer when the reused side's degree clears kBitmapMinDegree.
///
/// The ISA is picked once at startup (runtime CPU detection over kernels
/// compiled in a per-TU -mavx2 translation unit) and every call records
/// per-kernel-class counters (calls, elements, matches, and -- when timing
/// is enabled by a bench -- nanoseconds), so speedups are attributable per
/// kernel rather than anecdotal (bench_triangle E4d).

#include <cstddef>
#include <cstdint>

#include "util/bitset_arena.hpp"

namespace xd::triangle::intersect {

// ------------------------------------------------------------- kernels --

enum class Kernel : std::uint8_t { kScalar = 0, kMerge = 1, kBitmap = 2 };
inline constexpr std::size_t kKernelCount = 3;

/// Stable lowercase name for JSON/bench output ("scalar"/"merge"/"bitmap").
const char* kernel_name(Kernel k);

/// Vectorized kernels may store one full SIMD lane past the last match;
/// output buffers need this much slack beyond min(na, nb).
inline constexpr std::size_t kOutSlack = 8;

/// Below this size on either side the merge kernel falls back to scalar
/// (SIMD setup does not amortize).
inline constexpr std::size_t kMergeMinSize = 16;

/// Consumers switch the *reused* side of an intersection (hub vertex
/// adjacency, bucket run) to the bitmap kernel at this degree.
inline constexpr std::size_t kBitmapMinDegree = 64;

/// Intersects the strictly-ascending ranges [a, a+na) and [b, b+nb),
/// writing the common values (ascending) to `out` and returning the count.
/// `out` must hold min(na, nb) + kOutSlack entries.  Dispatches to the
/// active merge kernel, falling back to scalar for tiny or forced-scalar
/// calls.  All variants produce the identical output sequence.
std::size_t intersect_sorted(const std::uint32_t* a, std::size_t na,
                             const std::uint32_t* b, std::size_t nb,
                             std::uint32_t* out);

/// The scalar kernel, callable directly (differential oracle).
std::size_t intersect_scalar(const std::uint32_t* a, std::size_t na,
                             const std::uint32_t* b, std::size_t nb,
                             std::uint32_t* out);

/// The vectorized merge kernel for the active ISA (scalar tail included);
/// equals intersect_scalar's output on every input.
std::size_t intersect_merge(const std::uint32_t* a, std::size_t na,
                            const std::uint32_t* b, std::size_t nb,
                            std::uint32_t* out);

/// Amortized bitmap kernel: build(range R) once per hub, then probe each
/// query range Q for Q ∩ R.  Probing walks Q with stamped bit tests, or --
/// when Q is dense over R's span -- builds Q's bitmap too and extracts
/// matches from 64-bit word ANDs.  Matches come back ascending, identical
/// to the other kernels on the same (R, Q).
class BitmapIntersect {
 public:
  /// Stamps a fresh epoch and sets the bits of the strictly-ascending
  /// range [r, r+nr).  O(nr).
  void build(const std::uint32_t* r, std::size_t nr);

  /// Writes the ascending values of [q, q+nq) ∩ R to `out` (capacity
  /// nq + kOutSlack) and returns the count.
  std::size_t probe(const std::uint32_t* q, std::size_t nq,
                    std::uint32_t* out);

  /// The calling thread's arena (hub bitmaps are built and drained within
  /// one consumer loop; scheduler work items are thread-disjoint).
  static BitmapIntersect& for_thread();

  [[nodiscard]] const util::StampedBitset& bits() const { return r_bits_; }

 private:
  util::StampedBitset r_bits_;  ///< the reused (hub) side
  util::StampedBitset q_bits_;  ///< scratch for the dense word-AND path
  std::uint32_t r_min_ = 0;
  std::uint32_t r_max_ = 0;
  std::size_t nr_ = 0;
};

/// True when the consumer should route a reused range of this degree
/// through BitmapIntersect (false under forced scalar).
bool use_bitmap(std::size_t reused_degree);

// ------------------------------------------------------------ dispatch --

enum class Isa : std::uint8_t { kScalarOnly = 0, kSse2 = 1, kAvx2 = 2 };

/// The merge-kernel ISA in effect (CPU detection ∧ compiled-in kernels ∧
/// not forced scalar).
Isa active_isa();

/// Stable name for JSON/bench output ("scalar"/"sse2"/"avx2").
const char* isa_name(Isa isa);

/// Forces every call through the scalar kernel class.  Initialized from
/// the XD_FORCE_SCALAR environment variable (non-empty, not "0"); this
/// setter is the test/bench override.
void set_force_scalar(bool on);
bool force_scalar();

// --------------------------------------------------------------- stats --

struct KernelCounters {
  std::uint64_t calls = 0;
  std::uint64_t elements = 0;  ///< input elements consumed (na + nb)
  std::uint64_t matches = 0;
  std::uint64_t ns = 0;  ///< accumulated only while timing is enabled
};

struct KernelStats {
  KernelCounters k[kKernelCount];

  [[nodiscard]] const KernelCounters& of(Kernel kernel) const {
    return k[static_cast<std::size_t>(kernel)];
  }
};

/// The calling thread's accumulated counters (kernels run on scheduler
/// worker threads accumulate into their own slots).
KernelStats& stats_for_thread();
void reset_thread_stats();

/// Per-call steady_clock timing for the ns counters; benches flip this on
/// around the measured region (global, off by default -- the counters stay
/// cheap adds on the hot path).
void set_timing_enabled(bool on);
bool timing_enabled();

// ------------------------------------------- AVX2 TU internal surface --

namespace detail {
/// True iff the dedicated translation unit was compiled with AVX2 support
/// (per-TU -mavx2); dispatch requires this AND runtime CPU support.
bool avx2_compiled();

/// 8-wide compare-shuffle merge; only called when avx2_compiled() and the
/// CPU supports AVX2.
std::size_t intersect_merge_avx2(const std::uint32_t* a, std::size_t na,
                                 const std::uint32_t* b, std::size_t nb,
                                 std::uint32_t* out);

/// Word-AND + extract over interleaved stamped slabs for words
/// [w_lo, w_hi); a slot's word participates only if its stamp matches its
/// slab's epoch.
std::size_t bitmap_and_extract_avx2(const util::StampedSlot* r,
                                    std::uint64_t r_epoch,
                                    const util::StampedSlot* q,
                                    std::uint64_t q_epoch, std::size_t w_lo,
                                    std::size_t w_hi, std::uint32_t* out);
}  // namespace detail

}  // namespace xd::triangle::intersect

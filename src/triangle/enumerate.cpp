#include "triangle/enumerate.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "congest/network.hpp"
#include "congest/scheduler.hpp"
#include "expander/decomposition.hpp"
#include "graph/graph_view.hpp"
#include "graph/metrics.hpp"
#include "graph/subgraph.hpp"
#include "routing/hierarchical_router.hpp"
#include "routing/simulated_router.hpp"
#include "routing/tree_router.hpp"
#include "triangle/cluster_enum.hpp"
#include "util/check.hpp"

namespace xd::triangle {

namespace {

/// Builds the subgraph induced by an edge subset (vertices = endpoints).
struct EdgeSubgraph {
  Graph graph;
  std::vector<VertexId> to_parent;
  std::vector<VertexId> from_parent;
  std::vector<EdgeId> edge_to_parent;
};

EdgeSubgraph subgraph_of_edges(const Graph& g, const std::vector<EdgeId>& edges) {
  EdgeSubgraph out;
  out.from_parent.assign(g.num_vertices(), static_cast<VertexId>(-1));
  out.to_parent.reserve(std::min<std::size_t>(2 * edges.size(), g.num_vertices()));
  out.edge_to_parent.reserve(edges.size());
  // One pass over the edge list: assign local ids at first sight and record
  // each edge's local endpoints for the builder.
  std::vector<std::pair<VertexId, VertexId>> local_edges;
  local_edges.reserve(edges.size());
  for (const EdgeId e : edges) {
    const auto [u, v] = g.edge(e);
    for (const VertexId x : {u, v}) {
      if (out.from_parent[x] == static_cast<VertexId>(-1)) {
        out.from_parent[x] = static_cast<VertexId>(out.to_parent.size());
        out.to_parent.push_back(x);
      }
    }
    local_edges.emplace_back(out.from_parent[u], out.from_parent[v]);
    out.edge_to_parent.push_back(e);
  }
  GraphBuilder b(out.to_parent.size(), /*allow_parallel=*/true);
  for (const auto& [lu, lv] : local_edges) b.add_edge(lu, lv);
  out.graph = b.build();
  return out;
}

/// Merges a level's (unsorted concatenation of per-cluster sorted) batch
/// into the running sorted, deduplicated triangle list -- the flat
/// replacement for the seed's global std::set.
void merge_triangles(std::vector<Triangle>& found, std::vector<Triangle>& batch) {
  std::sort(batch.begin(), batch.end());
  const auto mid = static_cast<std::ptrdiff_t>(found.size());
  found.insert(found.end(), batch.begin(), batch.end());
  std::inplace_merge(found.begin(), found.begin() + mid, found.end());
  found.erase(std::unique(found.begin(), found.end()), found.end());
}

}  // namespace

CongestEnumResult enumerate_congest(const Graph& g, const EnumParams& prm,
                                    Rng& rng, congest::RoundLedger& ledger) {
  XD_CHECK(prm.epsilon > 0 && prm.epsilon <= 1.0 / 6.0 + 1e-12);
  CongestEnumResult out;
  const std::uint64_t before = ledger.rounds();

  const auto p_global = static_cast<std::uint32_t>(std::max(
      1.0, std::ceil(std::cbrt(static_cast<double>(g.num_vertices())))));

  std::vector<Triangle> found;  // sorted + deduplicated between levels
  std::vector<EdgeId> current;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!g.is_loop(e)) current.push_back(e);
  }

  for (int level = 0; level < prm.max_levels && current.size() >= 3; ++level) {
    out.levels = level + 1;
    const EdgeSubgraph sub = subgraph_of_edges(g, current);

    // --- 1. Expander decomposition of the surviving subgraph. ---
    expander::DecompositionParams dprm;
    dprm.epsilon = prm.epsilon;
    dprm.k = prm.k;
    dprm.phi0_override = prm.phi0_override;
    dprm.scheduler_threads = prm.scheduler_threads;
    const auto decomp = expander_decomposition(sub.graph, dprm, rng, ledger);

    // Per-level random group assignment over ambient vertex ids.
    std::vector<std::uint32_t> groups(g.num_vertices(), 0);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      groups[v] = static_cast<std::uint32_t>(rng.next_below(p_global));
    }

    // --- 2+3. Per-cluster routing structure and enumeration. ---
    std::vector<std::vector<VertexId>> members(decomp.num_components);
    for (VertexId lv = 0; lv < sub.graph.num_vertices(); ++lv) {
      members[decomp.component[lv]].push_back(lv);
    }
    // Cluster id per ambient vertex (kNone when not in this level's
    // subgraph).
    std::vector<std::uint32_t> cluster_of(g.num_vertices(),
                                          static_cast<std::uint32_t>(-1));
    for (VertexId lv = 0; lv < sub.graph.num_vertices(); ++lv) {
      cluster_of[sub.to_parent[lv]] = decomp.component[lv];
    }

    // E_i lists (ambient edge ids) per cluster; an edge with endpoints in
    // two clusters joins both lists.
    std::vector<std::vector<EdgeId>> cluster_edges(decomp.num_components);
    std::vector<EdgeId> estar;
    for (const EdgeId e : current) {
      const auto [u, v] = g.edge(e);
      const std::uint32_t cu = cluster_of[u];
      const std::uint32_t cv = cluster_of[v];
      if (cu == cv) {
        cluster_edges[cu].push_back(e);
      } else {
        cluster_edges[cu].push_back(e);
        cluster_edges[cv].push_back(e);
        estar.push_back(e);
      }
    }

    // Collect the level's non-trivial clusters into one scheduler epoch.
    // Every item reads only level-shared immutable state (sub, decomp,
    // groups, cluster_edges) plus its own pre-split Rng, so results are
    // bit-identical whether the epoch runs sequentially or on any number
    // of host threads; outputs merge in cluster order below.
    std::vector<std::uint32_t> todo;
    for (std::uint32_t c = 0; c < decomp.num_components; ++c) {
      if (!cluster_edges[c].empty() && !members[c].empty()) todo.push_back(c);
    }
    struct ClusterOut {
      std::vector<Triangle> tris;
      std::uint64_t queries = 0;
    };
    std::vector<Rng> item_rngs;
    item_rngs.reserve(todo.size());
    for (const std::uint32_t c : todo) item_rngs.push_back(rng.fork(c));

    const auto run_cluster = [&](std::uint32_t c, Rng& crng,
                                 congest::RoundLedger& lg) {
      ClusterOut res;

      // Cluster slice as a zero-copy view over the level subgraph.  Every
      // branch below hands the cluster to a router, and routers are the
      // materialization boundary (they renumber densely), so the CSR is
      // still built exactly once per cluster via materialize_induced();
      // the view contributes the edge counts that pick the branch.
      std::vector<VertexId> ambient_members;
      ambient_members.reserve(members[c].size());
      for (const VertexId lv : members[c]) {
        ambient_members.push_back(sub.to_parent[lv]);
      }
      const GraphView cluster_view(sub.graph, nullptr, VertexSet(members[c]));
      const LiveSubgraph cluster_sub = cluster_view.materialize_induced();

      // Membership and ambient->local ids live in the worker thread's
      // stamped arena: an O(1) epoch bump replaces the seed's two O(n)
      // vectors per cluster.
      auto& scratch = TriangleScratch::for_thread();
      scratch.to_local.begin_epoch(g.num_vertices());
      for (std::size_t i = 0; i < ambient_members.size(); ++i) {
        scratch.to_local.put(ambient_members[i], static_cast<VertexId>(i));
      }

      if (cluster_view.num_nonloop_edges() == 0 ||
          ambient_members.size() == 1) {
        // Single vertex or edgeless cluster: its E_i edges all touch one
        // vertex, which can join them locally (deg(v) messages over its
        // own edges -- absorbed into one query charge).
        lg.charge(1, "Triangle/tiny-cluster");
        std::unique_ptr<routing::Router> no_router;
        // Local join without routing.
        routing::HierarchicalParams hp;
        hp.depth = prm.router_depth;
        hp.tau_mix = 1;
        routing::HierarchicalRouter local(cluster_sub.graph, lg, hp);
        local.preprocess();
        res.tris = enumerate_cluster(g, cluster_edges[c], groups, p_global,
                                     local, ambient_members, scratch);
        res.queries = local.queries();
      } else if (prm.backend == RouterBackend::kCharged) {
        routing::HierarchicalParams hp;
        hp.depth = prm.router_depth;
        routing::HierarchicalRouter router(cluster_sub.graph, lg, hp);
        router.preprocess();
        res.tris = enumerate_cluster(g, cluster_edges[c], groups, p_global,
                                     router, ambient_members, scratch);
        res.queries = router.queries();
      } else if (prm.backend == RouterBackend::kTree) {
        congest::Network cluster_net(cluster_sub.graph, lg, crng());
        routing::TreeRouter router(cluster_net);
        router.preprocess();
        res.tris = enumerate_cluster(g, cluster_edges[c], groups, p_global,
                                     router, ambient_members, scratch);
        res.queries = router.queries();
      } else {
        congest::Network cluster_net(cluster_sub.graph, lg, crng());
        routing::SimulatedHierarchicalParams sp;
        sp.depth = prm.router_depth;
        routing::SimulatedHierarchicalRouter router(cluster_net, sp);
        router.preprocess();
        res.tris = enumerate_cluster(g, cluster_edges[c], groups, p_global,
                                     router, ambient_members, scratch);
        res.queries = router.queries();
      }
      return res;
    };

    std::vector<ClusterOut> cluster_out(todo.size());
    if (prm.scheduler_threads >= 1) {
      // Concurrent clusters share the clock: forked branches join by max.
      const congest::EpochScheduler pool(prm.scheduler_threads);
      pool.run_forked(ledger, todo.size(),
                      [&](std::size_t i, congest::RoundLedger& lg) {
                        cluster_out[i] = run_cluster(todo[i], item_rngs[i], lg);
                      });
    } else {
      for (std::size_t i = 0; i < todo.size(); ++i) {
        cluster_out[i] = run_cluster(todo[i], item_rngs[i], ledger);
      }
    }
    // Each cluster's output is already sorted; one merge per level folds
    // them into the running list (no per-triangle std::set node churn).
    std::vector<Triangle> level_tris;
    for (std::size_t i = 0; i < todo.size(); ++i) {
      ++out.clusters_processed;
      out.router_queries += cluster_out[i].queries;
      level_tris.insert(level_tris.end(), cluster_out[i].tris.begin(),
                        cluster_out[i].tris.end());
    }
    merge_triangles(found, level_tris);

    // --- 4. Recurse on E*. ---
    if (estar.size() >= current.size()) {
      // No shrink (pathological split): finish the remainder as one
      // cluster to guarantee termination.
      const EdgeSubgraph rest = subgraph_of_edges(g, estar);
      auto& scratch = TriangleScratch::for_thread();
      scratch.to_local.begin_epoch(g.num_vertices());
      std::vector<VertexId> ambient_members;
      ambient_members.reserve(rest.to_parent.size());
      for (std::size_t i = 0; i < rest.to_parent.size(); ++i) {
        scratch.to_local.put(rest.to_parent[i], static_cast<VertexId>(i));
        ambient_members.push_back(rest.to_parent[i]);
      }
      routing::HierarchicalParams hp;
      hp.depth = prm.router_depth;
      hp.tau_mix = std::max<std::uint32_t>(diameter_double_sweep(rest.graph), 1);
      routing::HierarchicalRouter router(rest.graph, ledger, hp);
      router.preprocess();
      auto tris = enumerate_cluster(g, estar, groups, p_global, router,
                                    ambient_members, scratch);
      merge_triangles(found, tris);
      out.router_queries += router.queries();
      current.clear();
      break;
    }
    current = std::move(estar);
  }

  out.triangles = std::move(found);
  out.rounds = ledger.rounds() - before;
  return out;
}

}  // namespace xd::triangle

#pragma once

/// \file enumerate.hpp
/// Theorem 2: triangle enumeration in Õ(n^{1/3}) CONGEST rounds.
///
/// Per recursion level:
///   1. expander-decompose the surviving edge set (ε <= 1/6);
///   2. preprocess a router per cluster (constant-depth GKS structure:
///      o(n^{1/3}) preprocessing, polylog queries -- the §3 observation
///      that lifts 2^{O(√log n)} to polylog);
///   3. run the clustered enumeration on every cluster's E_i;
///   4. recurse on E* = the inter-cluster edges (every triangle not yet
///      reported has all three edges there); |E*| <= ε|E| halves the work,
///      so O(log m) levels suffice.

#include <cstdint>
#include <vector>

#include "congest/ledger.hpp"
#include "expander/params.hpp"
#include "graph/graph.hpp"
#include "triangle/clique_dlp.hpp"
#include "util/rng.hpp"

namespace xd::triangle {

/// Per-cluster router backend (docs/routing.md):
///   kCharged        -- HierarchicalRouter, the GKS cost model (charges the
///                      §3 formulas with a measured τ_mix);
///   kTree           -- TreeRouter, fully simulated store-and-forward over
///                      O(log n) random BFS trees;
///   kHierarchicalSim - SimulatedHierarchicalRouter, the fully simulated
///                      GKS hierarchy (portal embedding + relay delivery on
///                      the round engine).
enum class RouterBackend { kCharged, kTree, kHierarchicalSim };

/// Knobs for the CONGEST enumeration.
struct EnumParams {
  /// Decomposition budget; the CPZ recursion needs <= 1/6.
  double epsilon = 1.0 / 6.0;
  /// Decomposition level count (Theorem 1's k).
  int k = 2;
  /// φ₀ override for the decomposition (0 = derived; see
  /// DecompositionParams::phi0_override).
  double phi0_override = 0.05;
  /// Which router serves each cluster's DLP traffic.
  RouterBackend backend = RouterBackend::kCharged;
  /// GKS depth parameter (constant, per §3; both hierarchical backends).
  int router_depth = 2;
  /// Safety cap on E* recursion levels.
  int max_levels = 40;
  /// Concurrent cluster scheduler (scheduler.hpp), forwarded to the
  /// per-level expander decomposition as well.  0 = sequential: clusters
  /// run one after another and their rounds SUM.  >= 1 = the level's
  /// clusters run concurrently on that many host threads with forked
  /// ledger branches joined by MAX (the one-network composition Theorem 2
  /// charges; docs/rounds.md).  The triangle list is bit-identical across
  /// all settings.
  int scheduler_threads = 0;
};

/// Result of the CONGEST enumeration.
struct CongestEnumResult {
  std::vector<Triangle> triangles;  ///< deduplicated, sorted
  std::uint64_t rounds = 0;
  int levels = 0;
  std::uint64_t clusters_processed = 0;
  std::uint64_t router_queries = 0;
};

/// Runs the Theorem 2 algorithm on g, charging `ledger`.
CongestEnumResult enumerate_congest(const Graph& g, const EnumParams& prm,
                                    Rng& rng, congest::RoundLedger& ledger);

}  // namespace xd::triangle

#pragma once

/// \file baseline_local.hpp
/// Neighborhood-exchange baseline: every vertex ships its full adjacency
/// list to every neighbor (the obvious LOCAL algorithm, simulated in
/// CONGEST where a list of deg(v) ids costs deg(v) rounds on one edge).
/// Rounds ≈ max degree -- Θ(n) on dense graphs, the foil for Theorem 2's
/// Õ(n^{1/3}) in experiment E4.

#include "congest/ledger.hpp"
#include "graph/graph.hpp"
#include "triangle/clique_dlp.hpp"

namespace xd::triangle {

/// Runs the baseline on g, charging `ledger`.  Every triangle is reported
/// by each of its vertices; the result is deduplicated.
EnumerationResult enumerate_local_baseline(const Graph& g,
                                           congest::RoundLedger& ledger);

}  // namespace xd::triangle

#pragma once

/// \file baseline_local.hpp
/// Neighborhood-exchange baseline: every vertex ships its full adjacency
/// list to every neighbor (the obvious LOCAL algorithm, simulated in
/// CONGEST where a list of deg(v) ids costs deg(v) rounds on one edge).
/// Rounds ≈ max degree -- Θ(n) on dense graphs, the foil for Theorem 2's
/// Õ(n^{1/3}) in experiment E4.

#include <cstdint>
#include <vector>

#include "congest/ledger.hpp"
#include "graph/graph.hpp"
#include "triangle/clique_dlp.hpp"

namespace xd::triangle {

/// Runs the baseline on g, charging `ledger`.  Every triangle is reported
/// by each of its vertices; the result is deduplicated.  Detection runs on
/// csr_triangle_join below.
EnumerationResult enumerate_local_baseline(const Graph& g,
                                           congest::RoundLedger& ledger);

/// All triangles v < u < w of a CSR whose per-vertex neighbor lists are
/// sorted, deduplicated, and loop-free (`offsets` has n+1 entries into
/// `adj`).  Appends Triangle{v, u, w} in (v asc, u asc, w asc) order --
/// each triangle exactly once, via its smallest edge (v, u).  Closing-edge
/// searches run on the hybrid intersection kernels (intersect.hpp): the
/// merge kernel per oriented edge, or -- for vertices whose degree clears
/// the bitmap threshold -- one epoch-stamped bitmap of N(v) probed by
/// every N(u).  Output is bit-identical to csr_triangle_join_reference
/// under every kernel/ISA.
void csr_triangle_join(const std::uint32_t* offsets, const VertexId* adj,
                       std::size_t n, std::vector<Triangle>& out);

/// The PR 4 scalar two-pointer join, retained as the kernel differential
/// oracle and the E4d join-phase baseline.  Identical output.
void csr_triangle_join_reference(const std::uint32_t* offsets,
                                 const VertexId* adj, std::size_t n,
                                 std::vector<Triangle>& out);

}  // namespace xd::triangle

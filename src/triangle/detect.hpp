#pragma once

/// \file detect.hpp
/// Triangle detection and counting on top of the enumeration machinery.
///
/// Theorem 2 "immediately implies an algorithm for triangle detection with
/// the same number of rounds" (§1); the paper notes the detection lower
/// bound currently excludes only 1-round algorithms, so the gap is wide
/// open -- these wrappers expose the upper-bound side.

#include <optional>

#include "triangle/enumerate.hpp"

namespace xd::triangle {

/// Result of a detection run.
struct DetectResult {
  std::optional<Triangle> witness;  ///< some triangle, if any exists
  std::uint64_t rounds = 0;
};

/// Detects whether g has a triangle (CONGEST, via Theorem 2 enumeration;
/// the first witness is returned).
DetectResult detect_congest(const Graph& g, const EnumParams& prm, Rng& rng,
                            congest::RoundLedger& ledger);

/// Distributed triangle count (CONGEST): the enumeration total plus an
/// aggregation convergecast charge of O(D) for summing per-vertex counts.
struct CountResult {
  std::uint64_t count = 0;
  std::uint64_t rounds = 0;
};
CountResult count_congest(const Graph& g, const EnumParams& prm, Rng& rng,
                          congest::RoundLedger& ledger);

}  // namespace xd::triangle

#include "triangle/bucket_join.hpp"

#include <algorithm>

#include "triangle/intersect.hpp"

namespace xd::triangle {

namespace {

/// Orders the plane by (rank, u, v) and dedups -- the shared grouping pass
/// of both join variants.  The counting path pays an O(R) counter clear,
/// so take it only when the plane is at least a constant fraction of the
/// rank domain; sparse planes comparison-sort directly.  Both paths
/// produce the identical ordering.
void group_tuples(std::vector<ProxyTuple>& tuples, const TripleRanker& ranker,
                  JoinScratch& js) {
  const std::uint64_t num_ranks = ranker.count();
  if (tuples.size() * 4 >= num_ranks) {
    js.counts.assign(num_ranks + 1, 0);
    for (const ProxyTuple& t : tuples) ++js.counts[t.rank + 1];
    for (std::uint64_t r = 0; r < num_ranks; ++r) {
      js.counts[r + 1] += js.counts[r];
    }
    js.scatter.resize(tuples.size());
    for (const ProxyTuple& t : tuples) js.scatter[js.counts[t.rank]++] = t;
    tuples.swap(js.scatter);
    // counts[r] now marks the end of bucket r; sort each span by (u, v).
    std::size_t lo = 0;
    for (std::uint64_t r = 0; r < num_ranks && lo < tuples.size(); ++r) {
      const std::size_t hi = js.counts[r];
      if (hi > lo + 1) std::sort(tuples.begin() + lo, tuples.begin() + hi);
      lo = hi;
    }
  } else {
    std::sort(tuples.begin(), tuples.end());
  }
  tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());
}

/// Kernelized join of one bucket span [lo, hi).  The span's larger
/// endpoints are copied to a contiguous u32 array (SIMD-friendly) and the
/// runs of equal smaller endpoint are indexed once; each wedge source y in
/// the run of x then closes via ONE intersection of the x-run's tail with
/// y's run, instead of one binary search per candidate pair:
///
///   * run(x) holds x's bucket-neighbors > x, strictly ascending;
///   * run(y) (further down the span, since y > x) holds y's neighbors
///     > y, so every probe result z satisfies z > y automatically;
///   * z ∈ run(x) ∩ run(y) with z > y  <=>  (x,y), (x,z), (y,z) are all
///     bucket edges -- the triangle x < y < z.
///
/// High-degree runs build an epoch-stamped bitmap of run(x) once and probe
/// each run(y) against it; the bitmap holds *all* of run(x), but every
/// probed z is > y, so the match set equals the tail intersection exactly.
/// Emission order (x asc, y asc, z asc) matches the probe join bit for bit.
void join_bucket_kernel(const std::vector<ProxyTuple>& tuples, std::size_t lo,
                        std::size_t hi, std::uint64_t rank,
                        const TripleRanker& ranker,
                        const std::uint32_t* groups, JoinScratch& js,
                        std::vector<Triangle>& out) {
  const std::size_t bn = hi - lo;
  js.vals.resize(bn);
  for (std::size_t t = 0; t < bn; ++t) js.vals[t] = tuples[lo + t].v;
  js.run_u.clear();
  js.run_begin.clear();
  js.run_end.clear();
  for (std::size_t t = 0; t < bn;) {
    const VertexId u = tuples[lo + t].u;
    const std::size_t begin = t;
    while (t < bn && tuples[lo + t].u == u) ++t;
    js.run_u.push_back(u);
    js.run_begin.push_back(static_cast<std::uint32_t>(begin));
    js.run_end.push_back(static_cast<std::uint32_t>(t));
  }
  js.matches.resize(bn + intersect::kOutSlack);

  const std::uint32_t* vals = js.vals.data();
  std::uint32_t* matches = js.matches.data();
  auto& bm = intersect::BitmapIntersect::for_thread();
  const std::size_t num_runs = js.run_u.size();
  for (std::size_t r = 0; r < num_runs; ++r) {
    const VertexId x = js.run_u[r];
    const std::size_t b0 = js.run_begin[r];
    const std::size_t b1 = js.run_end[r];
    if (b1 - b0 < 2) continue;  // no wedge without two bucket-neighbors
    const bool hub = intersect::use_bitmap(b1 - b0);
    if (hub) bm.build(vals + b0, b1 - b0);
    // Runs are ascending in u, so y's run (y > x) can only lie past r.
    std::size_t next = r + 1;
    for (std::size_t a = b0; a + 1 < b1; ++a) {
      const std::uint32_t y = vals[a];
      const auto yit = std::lower_bound(js.run_u.begin() + next,
                                        js.run_u.end(), y);
      if (yit == js.run_u.end()) break;  // no later run can close a wedge
      next = static_cast<std::size_t>(yit - js.run_u.begin());
      if (*yit != y) continue;
      const std::size_t q0 = js.run_begin[next];
      const std::size_t q1 = js.run_end[next];
      std::size_t cnt;
      if (hub) {
        cnt = bm.probe(vals + q0, q1 - q0, matches);
      } else {
        cnt = intersect::intersect_sorted(vals + a + 1, b1 - (a + 1),
                                          vals + q0, q1 - q0, matches);
      }
      for (std::size_t t = 0; t < cnt; ++t) {
        const std::uint32_t z = matches[t];
        // Report only at the owning proxy (no duplicates across proxies).
        if (ranker.rank(groups[x], groups[y], groups[z]) == rank) {
          out.push_back(Triangle{x, y, z});
        }
      }
    }
  }
}

}  // namespace

void join_proxy_buckets(std::vector<ProxyTuple>& tuples,
                        const TripleRanker& ranker,
                        const std::uint32_t* groups, JoinScratch& js,
                        std::vector<Triangle>& out) {
  if (tuples.empty()) return;
  group_tuples(tuples, ranker, js);

  // Kernelized join, one bucket span at a time.
  const std::size_t n = tuples.size();
  std::size_t lo = 0;
  while (lo < n) {
    const std::uint64_t rank = tuples[lo].rank;
    std::size_t hi = lo;
    while (hi < n && tuples[hi].rank == rank) ++hi;
    join_bucket_kernel(tuples, lo, hi, rank, ranker, groups, js, out);
    lo = hi;
  }
}

void join_proxy_buckets_probe(std::vector<ProxyTuple>& tuples,
                              const TripleRanker& ranker,
                              const std::uint32_t* groups, JoinScratch& js,
                              std::vector<Triangle>& out) {
  if (tuples.empty()) return;
  group_tuples(tuples, ranker, js);

  // Wedge-probe join, one bucket span at a time (the PR 4 loop): every
  // candidate pair performs one binary search over the remaining span.
  const std::size_t n = tuples.size();
  std::size_t lo = 0;
  while (lo < n) {
    const std::uint64_t rank = tuples[lo].rank;
    std::size_t hi = lo;
    while (hi < n && tuples[hi].rank == rank) ++hi;
    // Runs sharing the smaller endpoint x are consecutive; every pair of
    // run members (x, y), (x, z) with y < z is a wedge whose closing edge
    // (y, z) -- if present -- lives past the run (y > x), still in-span.
    std::size_t i = lo;
    while (i < hi) {
      const VertexId x = tuples[i].u;
      std::size_t j = i;
      while (j < hi && tuples[j].u == x) ++j;
      for (std::size_t a = i; a < j; ++a) {
        for (std::size_t b = a + 1; b < j; ++b) {
          const VertexId y = tuples[a].v;
          const VertexId z = tuples[b].v;
          if (!std::binary_search(tuples.begin() + j, tuples.begin() + hi,
                                  ProxyTuple{rank, y, z})) {
            continue;
          }
          // Report only at the owning proxy (no duplicates across
          // proxies).
          if (ranker.rank(groups[x], groups[y], groups[z]) == rank) {
            out.push_back(Triangle{x, y, z});
          }
        }
      }
      i = j;
    }
    lo = hi;
  }
}

}  // namespace xd::triangle

#include "triangle/bucket_join.hpp"

#include <algorithm>

namespace xd::triangle {

void join_proxy_buckets(std::vector<ProxyTuple>& tuples,
                        const TripleRanker& ranker,
                        const std::uint32_t* groups, JoinScratch& js,
                        std::vector<Triangle>& out) {
  if (tuples.empty()) return;
  const std::uint64_t num_ranks = ranker.count();

  // Order the plane by (rank, u, v).  The counting path pays an O(R)
  // counter clear, so take it only when the plane is at least a constant
  // fraction of the rank domain; sparse planes comparison-sort directly.
  // Both paths produce the identical ordering.
  if (tuples.size() * 4 >= num_ranks) {
    js.counts.assign(num_ranks + 1, 0);
    for (const ProxyTuple& t : tuples) ++js.counts[t.rank + 1];
    for (std::uint64_t r = 0; r < num_ranks; ++r) {
      js.counts[r + 1] += js.counts[r];
    }
    js.scatter.resize(tuples.size());
    for (const ProxyTuple& t : tuples) js.scatter[js.counts[t.rank]++] = t;
    tuples.swap(js.scatter);
    // counts[r] now marks the end of bucket r; sort each span by (u, v).
    std::size_t lo = 0;
    for (std::uint64_t r = 0; r < num_ranks && lo < tuples.size(); ++r) {
      const std::size_t hi = js.counts[r];
      if (hi > lo + 1) std::sort(tuples.begin() + lo, tuples.begin() + hi);
      lo = hi;
    }
  } else {
    std::sort(tuples.begin(), tuples.end());
  }
  tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());

  // Wedge-probe join, one bucket span at a time.
  const std::size_t n = tuples.size();
  std::size_t lo = 0;
  while (lo < n) {
    const std::uint64_t rank = tuples[lo].rank;
    std::size_t hi = lo;
    while (hi < n && tuples[hi].rank == rank) ++hi;
    // Runs sharing the smaller endpoint x are consecutive; every pair of
    // run members (x, y), (x, z) with y < z is a wedge whose closing edge
    // (y, z) -- if present -- lives past the run (y > x), still in-span.
    std::size_t i = lo;
    while (i < hi) {
      const VertexId x = tuples[i].u;
      std::size_t j = i;
      while (j < hi && tuples[j].u == x) ++j;
      for (std::size_t a = i; a < j; ++a) {
        for (std::size_t b = a + 1; b < j; ++b) {
          const VertexId y = tuples[a].v;
          const VertexId z = tuples[b].v;
          if (!std::binary_search(tuples.begin() + j, tuples.begin() + hi,
                                  ProxyTuple{rank, y, z})) {
            continue;
          }
          // Report only at the owning proxy (no duplicates across
          // proxies).
          if (ranker.rank(groups[x], groups[y], groups[z]) == rank) {
            out.push_back(Triangle{x, y, z});
          }
        }
      }
      i = j;
    }
    lo = hi;
  }
}

}  // namespace xd::triangle

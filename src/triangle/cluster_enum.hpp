#pragma once

/// \file cluster_enum.hpp
/// Clustered triangle enumeration (Chang–Pettie–Zhang, as used in §3).
///
/// For a cluster V_i of the expander decomposition, let
/// E_i = E(V_i) ∪ ∂(V_i) (every edge with at least one endpoint in V_i).
/// Any triangle that is not entirely inter-cluster has some edge {u, v}
/// inside a cluster, and then all three of its edges lie in that cluster's
/// E_i -- so enumerating all triangles within each E_i covers everything
/// except triangles whose three edges are all in E* (the inter-cluster
/// set), which the driver recurses on.
///
/// Within the cluster the work is a degree-weighted DLP join: endpoints of
/// E_i are hashed into p = ⌈n^{1/3}⌉ groups, one virtual proxy per sorted
/// group triple is hosted round-robin on V_i's vertices, each edge travels
/// to the p proxies whose triple contains its group pair, and each proxy
/// joins its buckets.  All traffic moves through the cluster's expander
/// Router (each vertex sources/sinks O(deg) messages per routing query, so
/// the batch needs Õ(n^{1/3}) queries -- Theorem 2's budget).

#include <cstdint>
#include <vector>

#include "congest/ledger.hpp"
#include "graph/graph.hpp"
#include "routing/router.hpp"
#include "triangle/clique_dlp.hpp"
#include "util/rng.hpp"

namespace xd::triangle {

/// Enumerates every triangle of `ambient` whose three edges all lie in
/// `edge_ids` (the cluster's E_i), where `in_cluster` flags V_i membership.
///
/// \param groups    per-vertex group id in [0, p); the driver samples one
///                  assignment per recursion level and shares it across
///                  clusters
/// \param p         group count (⌈n^{1/3}⌉ at the top level)
/// \param router    preprocessed Router over the cluster subgraph
/// \param to_local  ambient -> cluster-subgraph vertex ids (for routing)
std::vector<Triangle> enumerate_cluster(
    const Graph& ambient, const std::vector<EdgeId>& edge_ids,
    const std::vector<char>& in_cluster, const std::vector<std::uint32_t>& groups,
    std::uint32_t p, routing::Router& router,
    const std::vector<VertexId>& to_local,
    const std::vector<VertexId>& cluster_vertices);

}  // namespace xd::triangle

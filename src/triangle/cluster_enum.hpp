#pragma once

/// \file cluster_enum.hpp
/// Clustered triangle enumeration (Chang–Pettie–Zhang, as used in §3).
///
/// For a cluster V_i of the expander decomposition, let
/// E_i = E(V_i) ∪ ∂(V_i) (every edge with at least one endpoint in V_i).
/// Any triangle that is not entirely inter-cluster has some edge {u, v}
/// inside a cluster, and then all three of its edges lie in that cluster's
/// E_i -- so enumerating all triangles within each E_i covers everything
/// except triangles whose three edges are all in E* (the inter-cluster
/// set), which the driver recurses on.
///
/// Within the cluster the work is a degree-weighted DLP join: endpoints of
/// E_i are hashed into p = ⌈n^{1/3}⌉ groups, one virtual proxy per sorted
/// group triple is hosted round-robin on V_i's vertices, each edge travels
/// to the p proxies whose triple contains its group pair, and each proxy
/// joins its buckets.  All traffic moves through the cluster's expander
/// Router (each vertex sources/sinks O(deg) messages per routing query, so
/// the batch needs Õ(n^{1/3}) queries -- Theorem 2's budget).
///
/// Data plane (docs/triangle.md): proxies are identified by the O(1)
/// combinatorial rank of their sorted triple (triple_rank.hpp), the bucket
/// store is one flat (rank, u, v) tuple vector grouped by a single sort,
/// and each bucket joins over a bucket-local CSR with two-pointer
/// sorted-neighbor intersection (bucket_join.hpp).  All ambient-sized
/// scratch is epoch-stamped and reused across clusters and levels
/// (TriangleScratch).  The seed's node-based plane is retained as
/// enumerate_cluster_reference for differential tests and benches.

#include <cstdint>
#include <vector>

#include "congest/ledger.hpp"
#include "graph/graph.hpp"
#include "routing/router.hpp"
#include "triangle/bucket_join.hpp"
#include "triangle/clique_dlp.hpp"
#include "util/rng.hpp"
#include "util/scratch.hpp"

namespace xd::triangle {

/// Per-thread reusable storage for the flat cluster data plane.  One
/// instance serves every cluster and level a thread processes: the
/// ambient-indexed map is stamped (O(1) logical clears, util/scratch.hpp)
/// and the flat buffers keep their capacity, so the steady state performs
/// zero per-cluster O(n) allocations (pinned by a regression test).
struct TriangleScratch {
  /// Ambient -> cluster-local vertex id; contains(v) doubles as the
  /// in-cluster flag.  Callers stamp a fresh epoch and fill it with the
  /// cluster's members before enumerate_cluster.
  util::StampedMap<VertexId> to_local;
  std::vector<ProxyTuple> tuples;  ///< the flat (rank, u, v) plane
  std::vector<routing::Demand> demands;
  JoinScratch join;

  /// The calling thread's arena.  Scheduler work items are thread-disjoint
  /// (scheduler.hpp), so per-thread reuse is race-free at any thread count.
  static TriangleScratch& for_thread();
};

/// Enumerates every triangle of `ambient` whose three edges all lie in
/// `edge_ids` (the cluster's E_i).  `scratch.to_local` must hold exactly
/// the cluster's members, mapped to their positions in `cluster_vertices`.
///
/// \param groups  per-vertex group id in [0, p); the driver samples one
///                assignment per recursion level and shares it across
///                clusters
/// \param p       group count (⌈n^{1/3}⌉ at the top level)
/// \param router  preprocessed Router over the cluster subgraph
std::vector<Triangle> enumerate_cluster(
    const Graph& ambient, const std::vector<EdgeId>& edge_ids,
    const std::vector<std::uint32_t>& groups, std::uint32_t p,
    routing::Router& router, const std::vector<VertexId>& cluster_vertices,
    TriangleScratch& scratch);

/// The seed's node-based data plane (hashed host table, std::map buckets,
/// per-bucket hash join, O(n) membership vectors), retained verbatim as
/// the differential-testing oracle and the bench_triangle flat-vs-seed
/// baseline.  Semantics -- outputs and the demand stream handed to
/// `router` -- are identical to enumerate_cluster.
std::vector<Triangle> enumerate_cluster_reference(
    const Graph& ambient, const std::vector<EdgeId>& edge_ids,
    const std::vector<char>& in_cluster,
    const std::vector<std::uint32_t>& groups, std::uint32_t p,
    routing::Router& router, const std::vector<VertexId>& to_local,
    const std::vector<VertexId>& cluster_vertices);

}  // namespace xd::triangle

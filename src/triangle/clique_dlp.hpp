#pragma once

/// \file clique_dlp.hpp
/// Dolev–Lenzen–Peled deterministic triangle enumeration in
/// CONGESTED-CLIQUE ("Tri, tri again", DISC 2012): the O(n^{1/3}/log n)
/// baseline the paper's Theorem 2 is measured against (§1, §3).
///
/// Scheme: split V into p = ⌈n^{1/3}⌉ groups; assign each sorted group
/// triple {a, b, c} to a proxy vertex; every edge is shipped (via Lenzen
/// routing, see CliqueNetwork::exchange_lenzen) to the p proxies whose
/// triple contains its group pair; each proxy joins its edge buckets and
/// reports the triangles of its triple.  Every triangle has exactly one
/// sorted triple, so output is duplicate-free by construction.

#include <array>
#include <cstdint>
#include <vector>

#include "congest/clique.hpp"
#include "congest/ledger.hpp"
#include "graph/graph.hpp"

namespace xd::triangle {

/// A triangle as a sorted vertex triple.
using Triangle = std::array<VertexId, 3>;

/// Output of a distributed enumeration run.
struct EnumerationResult {
  std::vector<Triangle> triangles;  ///< sorted triples, deduplicated, sorted
  std::uint64_t rounds = 0;         ///< simulated rounds charged
};

/// Runs DLP on g in the CONGESTED-CLIQUE model, charging `ledger`.
EnumerationResult enumerate_clique_dlp(const Graph& g,
                                       congest::RoundLedger& ledger);

}  // namespace xd::triangle

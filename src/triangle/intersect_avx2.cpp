// AVX2 kernel bodies for triangle/intersect.hpp, isolated in their own
// translation unit so CMake can compile exactly this file with -mavx2
// while the rest of the library stays at the baseline ISA.  Dispatch
// (intersect.cpp) only calls these after checking avx2_compiled() AND
// runtime CPU support, so the scalar stubs below are never reached on
// hardware that cannot execute them.

#include "triangle/intersect.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace xd::triangle::intersect::detail {

bool avx2_compiled() {
#if defined(__AVX2__)
  return true;
#else
  return false;
#endif
}

#if defined(__AVX2__)

namespace {

/// mask (8 bits) -> permutation indices packing the set lanes to the front;
/// fed to _mm256_permutevar8x32_epi32 for the compress store.
struct CompressLut {
  alignas(32) std::uint32_t idx[256][8];
  CompressLut() {
    for (int m = 0; m < 256; ++m) {
      int k = 0;
      for (int b = 0; b < 8; ++b) {
        if ((m & (1 << b)) != 0) idx[m][k++] = static_cast<std::uint32_t>(b);
      }
      for (; k < 8; ++k) idx[m][k] = 0;
    }
  }
};
const CompressLut kLut;

}  // namespace

std::size_t intersect_merge_avx2(const std::uint32_t* a, std::size_t na,
                                 const std::uint32_t* b, std::size_t nb,
                                 std::uint32_t* out) {
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t k = 0;
  if (na >= 8 && nb >= 8) {
    // Lane-rotation index vectors for the all-pairs block compare.
    const __m256i rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
    const __m256i rot2 = _mm256_setr_epi32(2, 3, 4, 5, 6, 7, 0, 1);
    const __m256i rot3 = _mm256_setr_epi32(3, 4, 5, 6, 7, 0, 1, 2);
    const __m256i rot4 = _mm256_setr_epi32(4, 5, 6, 7, 0, 1, 2, 3);
    const __m256i rot5 = _mm256_setr_epi32(5, 6, 7, 0, 1, 2, 3, 4);
    const __m256i rot6 = _mm256_setr_epi32(6, 7, 0, 1, 2, 3, 4, 5);
    const __m256i rot7 = _mm256_setr_epi32(7, 0, 1, 2, 3, 4, 5, 6);
    while (true) {
      const __m256i va =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
      const __m256i vb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
      // Each va lane matches at most one vb lane (both blocks strictly
      // ascending); OR the eight rotations into one per-lane hit mask.
      __m256i eq = _mm256_cmpeq_epi32(va, vb);
      eq = _mm256_or_si256(
          eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot1)));
      eq = _mm256_or_si256(
          eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot2)));
      eq = _mm256_or_si256(
          eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot3)));
      eq = _mm256_or_si256(
          eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot4)));
      eq = _mm256_or_si256(
          eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot5)));
      eq = _mm256_or_si256(
          eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot6)));
      eq = _mm256_or_si256(
          eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot7)));
      const int mask = _mm256_movemask_ps(_mm256_castsi256_ps(eq));
      // Compress the matched va lanes to the front and bulk-store; the
      // store may write up to kOutSlack lanes past the real matches.
      const __m256i perm = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(kLut.idx[mask]));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k),
                          _mm256_permutevar8x32_epi32(va, perm));
      k += static_cast<std::size_t>(__builtin_popcount(
          static_cast<unsigned>(mask)));
      // Advance the block whose maximum is smaller (both on a tie); values
      // at or below that maximum have been compared against everything
      // they could match.
      const std::uint32_t a_max = a[i + 7];
      const std::uint32_t b_max = b[j + 7];
      if (a_max <= b_max) i += 8;
      if (b_max <= a_max) j += 8;
      if (i + 8 > na || j + 8 > nb) break;
    }
  }
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out[k++] = a[i];
      ++i;
      ++j;
    }
  }
  return k;
}

namespace {

/// Loads slots [w, w+4) of an interleaved (stamp, word) slab and returns
/// the stamp-masked words in lane order [w0, w1, w2, w3].
inline __m256i masked_words(const util::StampedSlot* slab, std::size_t w,
                            __m256i epoch) {
  // Two 256-bit loads cover four slots: [s0 w0 s1 w1] and [s2 w2 s3 w3].
  const __m256i lo =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(slab + w));
  const __m256i hi =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(slab + w + 2));
  // Per-128-lane unpack splits stamps from words in the permuted order
  // [x0 x2 x1 x3]; both operands share the permutation, so masking is
  // order-oblivious and one permute4x64 restores lane order at the end.
  const __m256i stamps = _mm256_unpacklo_epi64(lo, hi);
  const __m256i words = _mm256_unpackhi_epi64(lo, hi);
  const __m256i masked =
      _mm256_and_si256(words, _mm256_cmpeq_epi64(stamps, epoch));
  return _mm256_permute4x64_epi64(masked, 0xD8);  // [0 2 1 3] -> [0 1 2 3]
}

}  // namespace

std::size_t bitmap_and_extract_avx2(const util::StampedSlot* r,
                                    std::uint64_t r_epoch,
                                    const util::StampedSlot* q,
                                    std::uint64_t q_epoch, std::size_t w_lo,
                                    std::size_t w_hi, std::uint32_t* out) {
  std::size_t k = 0;
  std::size_t w = w_lo;
  const __m256i vre = _mm256_set1_epi64x(static_cast<long long>(r_epoch));
  const __m256i vqe = _mm256_set1_epi64x(static_cast<long long>(q_epoch));
  for (; w + 4 <= w_hi; w += 4) {
    // Stamp-mask each slab (a word participates only if written this
    // epoch), then AND; skip fully empty 256-bit blocks with one test.
    const __m256i x = _mm256_and_si256(masked_words(r, w, vre),
                                       masked_words(q, w, vqe));
    if (_mm256_testz_si256(x, x) != 0) continue;
    alignas(32) std::uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), x);
    for (std::size_t t = 0; t < 4; ++t) {
      std::uint64_t bits = lanes[t];
      while (bits != 0) {
        out[k++] = static_cast<std::uint32_t>(
            ((w + t) << 6) + static_cast<std::size_t>(__builtin_ctzll(bits)));
        bits &= bits - 1;
      }
    }
  }
  for (; w < w_hi; ++w) {
    std::uint64_t bits = (r[w].stamp == r_epoch ? r[w].word : 0) &
                         (q[w].stamp == q_epoch ? q[w].word : 0);
    while (bits != 0) {
      out[k++] = static_cast<std::uint32_t>(
          (w << 6) + static_cast<std::size_t>(__builtin_ctzll(bits)));
      bits &= bits - 1;
    }
  }
  return k;
}

#else  // !__AVX2__: never dispatched (avx2_compiled() is false); keep the
       // symbols defined so the library links on any toolchain.

std::size_t intersect_merge_avx2(const std::uint32_t* a, std::size_t na,
                                 const std::uint32_t* b, std::size_t nb,
                                 std::uint32_t* out) {
  return intersect_scalar(a, na, b, nb, out);
}

std::size_t bitmap_and_extract_avx2(const util::StampedSlot*, std::uint64_t,
                                    const util::StampedSlot*, std::uint64_t,
                                    std::size_t, std::size_t, std::uint32_t*) {
  return 0;
}

#endif

}  // namespace xd::triangle::intersect::detail

#include "triangle/detect.hpp"

#include "graph/metrics.hpp"
#include "util/check.hpp"

namespace xd::triangle {

DetectResult detect_congest(const Graph& g, const EnumParams& prm, Rng& rng,
                            congest::RoundLedger& ledger) {
  DetectResult out;
  const auto res = enumerate_congest(g, prm, rng, ledger);
  if (!res.triangles.empty()) out.witness = res.triangles.front();
  out.rounds = res.rounds;
  return out;
}

CountResult count_congest(const Graph& g, const EnumParams& prm, Rng& rng,
                          congest::RoundLedger& ledger) {
  CountResult out;
  const auto res = enumerate_congest(g, prm, rng, ledger);
  out.count = res.triangles.size();
  // Aggregating per-reporter counts to a leader: one BFS-depth
  // convergecast over the original graph.
  const auto diameter = diameter_double_sweep(g);
  ledger.charge(std::max<std::uint64_t>(diameter, 1), "Triangle/count-aggregate");
  out.rounds = res.rounds + std::max<std::uint64_t>(diameter, 1);
  return out;
}

}  // namespace xd::triangle

#include "triangle/clique_dlp.hpp"

#include <algorithm>
#include <cmath>

#include "triangle/bucket_join.hpp"
#include "triangle/cluster_enum.hpp"
#include "util/check.hpp"

namespace xd::triangle {

using congest::CliqueNetwork;
using congest::Message;

EnumerationResult enumerate_clique_dlp(const Graph& g,
                                       congest::RoundLedger& ledger) {
  EnumerationResult out;
  const std::size_t n = g.num_vertices();
  if (n < 3) return out;
  const std::uint64_t before = ledger.rounds();

  const auto p = static_cast<std::uint32_t>(
      std::max(1.0, std::ceil(std::cbrt(static_cast<double>(n)))));
  const TripleRanker ranker(p);
  std::vector<std::uint32_t> groups(n);
  for (VertexId v = 0; v < n; ++v) {
    groups[v] =
        static_cast<std::uint32_t>(static_cast<std::uint64_t>(v) * p / n);
  }
  // Proxy host for a sorted triple: spread round-robin over the n vertices
  // in triple-rank order, i.e. host(rank) = rank mod n -- pure arithmetic,
  // no host table.

  CliqueNetwork net(n, ledger);
  auto& scratch = TriangleScratch::for_thread();
  auto& tuples = scratch.tuples;
  tuples.clear();

  // Ship every edge (sender: min endpoint) to the proxies of every triple
  // containing its group pair; the same pass stages the local bucket plane
  // (identical to re-deriving the targets at each host -- the exchange
  // below charges the rounds for the shipped part).  Message payload:
  // endpoints packed in words[0], proxy rank in words[1].
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.edge(e);
    if (u == v) continue;
    const VertexId sender = std::min(u, v);
    const std::uint32_t gu = groups[u];
    const std::uint32_t gv = groups[v];
    // Ranks over {gu, gv, c} ascend with c (multiset monotonicity), so the
    // send order matches the seed's sorted-key iteration exactly.
    for (std::uint32_t c = 0; c < p; ++c) {
      const std::uint64_t rank = ranker.rank(gu, gv, c);
      tuples.push_back(ProxyTuple{rank, sender, std::max(u, v)});
      const auto host = static_cast<VertexId>(rank % n);
      if (host == sender) continue;  // local knowledge, no message needed
      net.send(sender, host,
               Message{/*tag=*/1, (static_cast<std::uint64_t>(u) << 32) | v,
                       rank});
    }
  }
  net.exchange_lenzen("DLP/ship-edges");

  // Join per proxy triple over the flat plane (bucket_join.hpp); the
  // ownership rule keeps the output duplicate-free across proxies.
  std::vector<Triangle> found;
  join_proxy_buckets(tuples, ranker, groups.data(), scratch.join, found);
  std::sort(found.begin(), found.end());
  found.erase(std::unique(found.begin(), found.end()), found.end());

  out.triangles = std::move(found);
  out.rounds = ledger.rounds() - before;
  return out;
}

}  // namespace xd::triangle

#include "triangle/clique_dlp.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "util/check.hpp"

namespace xd::triangle {

using congest::CliqueNetwork;
using congest::Message;

namespace {

/// Sorted triple -> dense proxy index.
std::uint64_t triple_key(std::uint32_t a, std::uint32_t b, std::uint32_t c,
                         std::uint32_t p) {
  std::array<std::uint32_t, 3> t{a, b, c};
  std::sort(t.begin(), t.end());
  return (static_cast<std::uint64_t>(t[0]) * p + t[1]) * p + t[2];
}

}  // namespace

EnumerationResult enumerate_clique_dlp(const Graph& g,
                                       congest::RoundLedger& ledger) {
  EnumerationResult out;
  const std::size_t n = g.num_vertices();
  if (n < 3) return out;
  const std::uint64_t before = ledger.rounds();

  const auto p = static_cast<std::uint32_t>(
      std::max(1.0, std::ceil(std::cbrt(static_cast<double>(n)))));
  auto group_of = [&](VertexId v) {
    return static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(v) * p / n);
  };
  // Proxy host for a sorted triple: spread round-robin over the n vertices.
  std::unordered_map<std::uint64_t, VertexId> host_of;
  {
    std::uint64_t next = 0;
    for (std::uint32_t a = 0; a < p; ++a) {
      for (std::uint32_t b = a; b < p; ++b) {
        for (std::uint32_t c = b; c < p; ++c) {
          host_of[triple_key(a, b, c, p)] =
              static_cast<VertexId>(next++ % n);
        }
      }
    }
  }

  CliqueNetwork net(n, ledger);

  // Ship every edge (sender: min endpoint) to the proxies of every triple
  // containing its group pair.  Message: tag = triple key low bits unusable
  // -- pack edge endpoints in words, triple key in tag is too small, so
  // words[1] carries the key.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.edge(e);
    if (u == v) continue;
    const VertexId sender = std::min(u, v);
    const std::uint32_t gu = group_of(u);
    const std::uint32_t gv = group_of(v);
    std::set<std::uint64_t> targets;
    for (std::uint32_t c = 0; c < p; ++c) {
      targets.insert(triple_key(gu, gv, c, p));
    }
    for (const std::uint64_t key : targets) {
      const VertexId host = host_of[key];
      if (host == sender) continue;  // local knowledge, no message needed
      net.send(sender, host,
               Message{/*tag=*/1, (static_cast<std::uint64_t>(u) << 32) | v,
                       key});
    }
  }
  net.exchange_lenzen("DLP/ship-edges");

  // Proxy bucket contents: what was shipped plus each host's local edges
  // (identical to re-deriving the targets; the exchange above already
  // charged the rounds for the shipped part).
  std::map<std::uint64_t, std::vector<std::pair<VertexId, VertexId>>> buckets;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.edge(e);
    if (u == v) continue;
    const std::uint32_t gu = group_of(u);
    const std::uint32_t gv = group_of(v);
    std::set<std::uint64_t> targets;
    for (std::uint32_t c = 0; c < p; ++c) {
      targets.insert(triple_key(gu, gv, c, p));
    }
    for (const std::uint64_t key : targets) {
      buckets[key].emplace_back(std::min(u, v), std::max(u, v));
    }
  }

  // Join per proxy triple.
  std::set<Triangle> found;
  for (auto& [key, edges] : buckets) {
    std::unordered_map<VertexId, std::vector<VertexId>> adj;
    std::unordered_set<std::uint64_t> present;
    for (const auto& [x, y] : edges) {
      adj[x].push_back(y);
      adj[y].push_back(x);
      present.insert((static_cast<std::uint64_t>(x) << 32) | y);
    }
    for (const auto& [x, y] : edges) {
      // Candidates adjacent to x above y.
      for (const VertexId z : adj[y]) {
        if (z <= y) continue;
        const std::uint64_t probe = (static_cast<std::uint64_t>(x) << 32) | z;
        if (present.count(probe)) {
          // Only report if this proxy owns the triple of the triangle's
          // groups (prevents duplicates across proxies).
          if (triple_key(group_of(x), group_of(y), group_of(z), p) == key) {
            found.insert(Triangle{x, y, z});
          }
        }
      }
    }
  }

  out.triangles.assign(found.begin(), found.end());
  out.rounds = ledger.rounds() - before;
  return out;
}

}  // namespace xd::triangle

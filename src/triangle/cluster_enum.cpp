#include "triangle/cluster_enum.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "util/check.hpp"

namespace xd::triangle {

TriangleScratch& TriangleScratch::for_thread() {
  thread_local TriangleScratch scratch;
  return scratch;
}

std::vector<Triangle> enumerate_cluster(
    const Graph& ambient, const std::vector<EdgeId>& edge_ids,
    const std::vector<std::uint32_t>& groups, std::uint32_t p,
    routing::Router& router, const std::vector<VertexId>& cluster_vertices,
    TriangleScratch& scratch) {
  XD_CHECK(!cluster_vertices.empty());
  XD_CHECK(p >= 1);
  const TripleRanker ranker(p);
  const auto& to_local = scratch.to_local;

  // Build demands (knower -> host, one message per shipped edge copy) and
  // the flat proxy plane.  Proxy hosts are round-robin over the cluster's
  // vertices in triple-rank order, so host lookup is index arithmetic.
  auto& tuples = scratch.tuples;
  auto& demands = scratch.demands;
  tuples.clear();
  demands.clear();
  for (const EdgeId e : edge_ids) {
    const auto [u, v] = ambient.edge(e);
    if (u == v) continue;
    // The in-cluster endpoint knows the edge (min id if both are inside).
    VertexId knower;
    if (to_local.contains(u) && to_local.contains(v)) {
      knower = std::min(u, v);
    } else if (to_local.contains(u)) {
      knower = u;
    } else {
      XD_CHECK_MSG(to_local.contains(v), "edge " << e << " has no cluster endpoint");
      knower = v;
    }
    const std::uint32_t gu = groups[u];
    const std::uint32_t gv = groups[v];
    const VertexId a = std::min(u, v);
    const VertexId b = std::max(u, v);
    // The p ranks over {gu, gv, c} are pairwise distinct and already
    // ascending in c (raising one element of a multiset raises its sorted
    // vector pointwise), and rank order is seed-key order, so this demand
    // stream is bit-identical to the seed's sorted-target loop.
    for (std::uint32_t c = 0; c < p; ++c) {
      const std::uint64_t r = ranker.rank(gu, gv, c);
      const VertexId host = cluster_vertices[r % cluster_vertices.size()];
      tuples.push_back(ProxyTuple{r, a, b});
      if (host != knower) {
        demands.push_back(
            routing::Demand{to_local.at(knower), to_local.at(host), 1});
      }
    }
  }
  if (!demands.empty()) router.route(demands);

  // Proxy joins: one sort groups the plane; each bucket joins over its
  // local CSR (bucket_join.hpp).  The ownership rule (report only at the
  // proxy owning the triangle's group triple) keeps reports unique.
  std::vector<Triangle> out;
  join_proxy_buckets(tuples, ranker, groups.data(), scratch.join, out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

namespace {

/// Seed-era hash key of a sorted triple (reference plane only).
std::uint64_t triple_key(std::uint32_t a, std::uint32_t b, std::uint32_t c,
                         std::uint32_t p) {
  std::array<std::uint32_t, 3> t{a, b, c};
  std::sort(t.begin(), t.end());
  return (static_cast<std::uint64_t>(t[0]) * p + t[1]) * p + t[2];
}

}  // namespace

std::vector<Triangle> enumerate_cluster_reference(
    const Graph& ambient, const std::vector<EdgeId>& edge_ids,
    const std::vector<char>& in_cluster, const std::vector<std::uint32_t>& groups,
    std::uint32_t p, routing::Router& router,
    const std::vector<VertexId>& to_local,
    const std::vector<VertexId>& cluster_vertices) {
  XD_CHECK(!cluster_vertices.empty());
  XD_CHECK(p >= 1);

  // Proxy hosts: sorted triples round-robin over cluster vertices, weighted
  // implicitly by iteration order (degree-weighting refines constants only).
  std::unordered_map<std::uint64_t, VertexId> host_of;  // ambient host id
  {
    std::uint64_t next = 0;
    for (std::uint32_t a = 0; a < p; ++a) {
      for (std::uint32_t b = a; b < p; ++b) {
        for (std::uint32_t c = b; c < p; ++c) {
          host_of[triple_key(a, b, c, p)] =
              cluster_vertices[next++ % cluster_vertices.size()];
        }
      }
    }
  }

  // Build demands (knower -> host, one message per shipped edge copy) and
  // the proxy buckets (data plane).
  std::vector<routing::Demand> demands;
  std::map<std::uint64_t, std::vector<std::pair<VertexId, VertexId>>> buckets;
  std::vector<std::uint64_t> targets;
  targets.reserve(p);
  for (const EdgeId e : edge_ids) {
    const auto [u, v] = ambient.edge(e);
    if (u == v) continue;
    // The in-cluster endpoint knows the edge (min id if both are inside).
    VertexId knower;
    if (in_cluster[u] && in_cluster[v]) {
      knower = std::min(u, v);
    } else if (in_cluster[u]) {
      knower = u;
    } else {
      XD_CHECK_MSG(in_cluster[v], "edge " << e << " has no cluster endpoint");
      knower = v;
    }
    const std::uint32_t gu = groups[u];
    const std::uint32_t gv = groups[v];
    // The p sorted triples over {gu, gv} are pairwise distinct; a flat
    // sort reproduces the old std::set iteration order without the
    // per-edge node allocations.
    targets.clear();
    for (std::uint32_t c = 0; c < p; ++c) {
      targets.push_back(triple_key(gu, gv, c, p));
    }
    std::sort(targets.begin(), targets.end());
    for (const std::uint64_t key : targets) {
      const VertexId host = host_of[key];
      buckets[key].emplace_back(std::min(u, v), std::max(u, v));
      if (host != knower) {
        demands.push_back(routing::Demand{to_local[knower], to_local[host], 1});
      }
    }
  }
  if (!demands.empty()) router.route(demands);

  // Proxy joins.
  std::vector<Triangle> out;
  std::unordered_map<VertexId, std::vector<VertexId>> adj;
  std::unordered_set<std::uint64_t> present;
  for (auto& [key, edges] : buckets) {
    adj.clear();
    present.clear();
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    for (const auto& [x, y] : edges) {
      adj[x].push_back(y);
      adj[y].push_back(x);
      present.insert((static_cast<std::uint64_t>(x) << 32) | y);
    }
    for (const auto& [x, y] : edges) {
      for (const VertexId z : adj[y]) {
        if (z <= y) continue;
        if (x >= y) continue;  // enumerate each sorted pair once
        if (present.count((static_cast<std::uint64_t>(x) << 32) | z)) {
          // Report only at the owning proxy (no duplicates inside a
          // cluster).
          if (triple_key(groups[x], groups[y], groups[z], p) == key) {
            out.push_back(Triangle{x, y, z});
          }
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace xd::triangle

#pragma once

/// \file clique.hpp
/// CONGESTED-CLIQUE kernel: n vertices with all-to-all O(log n)-bit channels.
///
/// Used by the Dolev–Lenzen–Peled deterministic triangle-enumeration
/// baseline (§3 of the paper compares CONGEST against this model's
/// Θ(n^{1/3}/log n) bound).  The charging rule mirrors Network: one staged
/// batch is delivered in max(1, max ordered-pair congestion) rounds, since
/// each ordered pair (u, v) carries one bounded message per round.

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "congest/ledger.hpp"
#include "congest/message.hpp"

namespace xd::congest {

/// All-to-all round-synchronous network on n vertices.
class CliqueNetwork {
 public:
  CliqueNetwork(std::size_t n, RoundLedger& ledger);

  [[nodiscard]] std::size_t num_vertices() const { return n_; }

  /// Stage a message from `from` to `to` (any pair, from != to).
  void send(VertexId from, VertexId to, const Message& msg);

  /// Deliver staged messages; charge max(1, max per-ordered-pair message
  /// count) rounds under `reason`.  Returns rounds charged.
  std::uint64_t exchange(std::string_view reason);

  /// Deliver staged messages charging Lenzen-routing rounds:
  /// max over vertices of ⌈max(sent, received) / (n-1)⌉.  Lenzen's
  /// deterministic routing delivers any such pattern in O(1) rounds per
  /// (n-1)-message unit; this is what gives Dolev–Lenzen–Peled its
  /// O(n^{1/3}) bound, so the DLP baseline uses this exchange.
  std::uint64_t exchange_lenzen(std::string_view reason);

  /// Messages delivered to v in the last exchange: a span into the flat
  /// arena (same zero-allocation layout as Network), in staging order.
  [[nodiscard]] std::span<const Envelope> inbox(VertexId v) const {
    return {arena_.data() + inbox_offsets_[v],
            inbox_offsets_[v + 1] - inbox_offsets_[v]};
  }

 private:
  struct Staged {
    VertexId from;
    VertexId to;
    Message msg;
  };

  /// Scatter outbox_ into the arena (counting sort by receiver, stable in
  /// staging order) and clear it; returns the messages delivered.
  std::size_t deliver();

  std::size_t n_;
  RoundLedger* ledger_;
  std::vector<Staged> outbox_;
  std::vector<Envelope> arena_;
  std::vector<std::uint32_t> inbox_offsets_;
  std::vector<std::uint32_t> cursor_;
};

}  // namespace xd::congest

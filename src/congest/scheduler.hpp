#pragma once

/// \file scheduler.hpp
/// Host-side fork/join pool for independent simulation work items.
///
/// The paper's round bounds assume the algorithm runs on all disjoint
/// components *in parallel* -- one CONGEST network, one clock.  The epoch
/// scheduler is the host half of that model: the decomposition driver (and
/// the triangle enumerator's per-cluster stage) collects every active
/// component of a recursion level into one batch -- an *epoch* -- and runs
/// the items concurrently here, each with its own forked RoundLedger branch
/// (ledger.hpp) and its own seed-split Rng.
///
/// Determinism contract (matching the round engine's bit-identical rule,
/// docs/engine.md): items of an epoch are vertex-disjoint, so an item's
/// computation depends only on its own inputs -- pre-forked RNG, private
/// ledger branch, and a snapshot of shared state that no item mutates.
/// Which host thread runs an item, and in what order items finish, can
/// never change what any item computes; callers merge the per-item outputs
/// in item-index order, so the combined result is bit-identical at any
/// thread count.  Round accounting is covered in docs/rounds.md.

#include <cstddef>
#include <functional>

#include "congest/ledger.hpp"

namespace xd::congest {

namespace detail {

/// Test hook: called with the worker index immediately before that worker's
/// std::thread is constructed; a throwing hook simulates thread creation
/// failing mid-loop (resource exhaustion).  Backed by the fault-plane
/// registry's "sched.spawn" hook slot (util/fault_plane.hpp), so setting it
/// is thread-safe; pass {} to reset.  The fault plane's own sched.* sites
/// (sched.spawn / sched.stall / sched.throw) inject the same failures from
/// an XD_FAULTS spec without any hook.
void set_spawn_fault_hook_for_testing(std::function<void(int)> hook);

}  // namespace detail

/// Runs batches ("epochs") of independent work items on a pool of host
/// threads.  Work-sharing: workers pull the next unclaimed item index from
/// a shared cursor, so one oversized component keeps the remaining workers
/// busy on the rest of the level instead of idling behind it.
class EpochScheduler {
 public:
  explicit EpochScheduler(int threads = 1) { set_threads(threads); }

  /// Host threads used by run(); >= 1.  Thread count shapes wall-clock
  /// only, never results.
  void set_threads(int threads);
  [[nodiscard]] int threads() const { return threads_; }

  /// Runs fn(i) for every i in [0, n) and returns after all complete (the
  /// epoch barrier).  fn must only mutate item-local state; exceptions
  /// propagate (first one wins, matching the round engine's behavior).
  void run(std::size_t n, const std::function<void(std::size_t)>& fn) const;

  /// The concurrent-epoch idiom in one call: forks one branch of `root`
  /// per item, runs fn(i, branch_i) as an epoch, and joins at the barrier
  /// (rounds advance by the epoch max -- ledger.hpp).  The join runs even
  /// when an item throws: the aborted epoch's partial branch charges merge
  /// and `root` never carries stale forked children into a later epoch.
  void run_forked(
      RoundLedger& root, std::size_t n,
      const std::function<void(std::size_t, RoundLedger&)>& fn) const;

  /// Static contiguous partition: body(worker, lo, hi) over [0, n) split
  /// into `workers` ranges.  This is the round engine's phase executor
  /// (Network::run_round): per-worker ranges with per-worker buffers,
  /// merged in worker order, keep delivery canonical.  Exposed here so the
  /// engine and the scheduler share one pool idiom.
  static void run_partitioned(
      std::size_t n, int workers,
      const std::function<void(int, std::size_t, std::size_t)>& body);

 private:
  int threads_ = 1;
};

}  // namespace xd::congest

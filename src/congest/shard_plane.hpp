#pragma once

/// \file shard_plane.hpp
/// Sharded delivery plane for the round engine: aggregate / exchange /
/// deaggregate.
///
/// `Network::set_shards(S)` splits the vertex set into S contiguous shards
/// (worker threads today; the buffer wire format below is exactly what a
/// process or socket boundary would ship).  Each sender shard stages its
/// messages into S per-destination-shard *aggregation buffers* -- packed
/// `(slot, from, msg)` records, canonicalized to ascending directed slot
/// with ties in staging order -- and delivery becomes an S x S bulk buffer
/// exchange followed by a per-shard local scatter into that shard's inbox
/// arena.  No shared staging vector, no global sort.
///
/// The shard-invariance argument (docs/sharding.md in full): directed slots
/// are grouped by sender vertex and shards own contiguous vertex ranges, so
///   (a) every directed slot lives in exactly one (sender shard, dest
///       shard) buffer, which makes per-buffer congestion runs globally
///       exact, and
///   (b) scanning a receiver shard's S incoming buffers in sender-shard
///       order visits each receiver's messages in ascending directed-slot
///       order -- exactly the canonical delivery order of the shared-arena
///       path.
/// S = 1 bypasses the plane entirely, and every S > 1 reproduces the
/// shared-arena results bit-for-bit at any worker count (pinned by
/// tests/shard_test.cpp and the *_sharded golden CTest variants).

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "congest/engine.hpp"
#include "congest/message.hpp"
#include "graph/graph.hpp"

namespace xd::congest {

/// Per-delivery totals and timings, per destination shard -- the
/// buffer/scatter breakdown `bench_kernel` emits into
/// BENCH_kernel_summary.json.
struct ShardDeliveryStats {
  struct PerShard {
    double buffer_ms = 0.0;   ///< canonicalize + congestion + receiver counts
    double scatter_ms = 0.0;  ///< offset publication + arena scatter
    std::uint64_t received = 0;
  };
  /// Wire-exchange transport counters, cumulative since configure() (the
  /// fault-armed frame path only; the in-memory fast path ships no frames).
  struct Wire {
    std::uint64_t frames = 0;       ///< frames emitted, incl. retransmits
    std::uint64_t retransmits = 0;  ///< frames re-emitted after a bad attempt
    std::uint64_t dropped = 0;      ///< frames lost to injected drops
    std::uint64_t corrupted = 0;    ///< frames rejected (CRC / structure)
    std::uint64_t duplicates = 0;   ///< valid copies discarded as duplicates
    std::uint64_t reordered = 0;    ///< arrival batches delivered reversed
  };
  std::vector<PerShard> shard;
  Wire wire;
  std::uint64_t max_congestion = 0;
  std::size_t staged = 0;
};

/// Wire format of one aggregation buffer ("XDSB" version 2): a 40-byte
/// header {magic u32, version u32, sender shard u32, dest shard u32, record
/// count u64, sequence u64, crc32c u32, reserved u32} followed by `count`
/// packed 28-byte records {slot u32, from u32, Message{tag u32, words[2]
/// u64}}, all little-endian.  The CRC-32C covers the whole frame with the
/// crc field's four bytes taken as zero; the sequence number stamps every
/// frame of one logical exchange so stale retransmits are rejectable.
/// Version-1 frames (24-byte header, no seq/crc) are still decodable.
/// deliver() swaps buffers through shared memory; a process-boundary
/// transport would ship exactly these bytes (docs/sharding.md,
/// docs/robustness.md).
inline constexpr std::uint32_t kShardBufferMagic = 0x42534458u;  // "XDSB"
inline constexpr std::uint32_t kShardBufferVersion = 2;
inline constexpr std::uint32_t kShardBufferLegacyVersion = 1;

[[nodiscard]] std::vector<unsigned char> encode_shard_buffer(
    std::uint32_t sender_shard, std::uint32_t dest_shard,
    const detail::StagingBuffer& buf, std::uint64_t seq = 0);
/// Strict decode: throws CheckError on any structural or integrity defect.
/// `seq` (optional) receives the frame's sequence number (0 for v1 frames).
void decode_shard_buffer(std::span<const unsigned char> bytes,
                         std::uint32_t* sender_shard, std::uint32_t* dest_shard,
                         detail::StagingBuffer* out,
                         std::uint64_t* seq = nullptr);
/// Non-throwing decode for transport loops that expect damaged frames:
/// returns false (and leaves *out unspecified) instead of throwing.
[[nodiscard]] bool try_decode_shard_buffer(std::span<const unsigned char> bytes,
                                           std::uint32_t* sender_shard,
                                           std::uint32_t* dest_shard,
                                           detail::StagingBuffer* out,
                                           std::uint64_t* seq = nullptr);

/// The S-shard delivery plane a Network runs when `set_shards(S > 1)`.
/// Owned by Network; all staging entry points validate there first.
class ShardPlane {
 public:
  /// Partition the graph's vertices into `shards` contiguous ranges
  /// (range s = [n*s/S, n*(s+1)/S), the scheduler's partition formula).
  void configure(const Graph& g, int shards);

  [[nodiscard]] bool active() const { return shards_ > 1; }
  [[nodiscard]] int shards() const { return shards_; }
  [[nodiscard]] int shard_of(VertexId v) const {
    return static_cast<int>(vshard_[v]);
  }
  [[nodiscard]] std::pair<std::size_t, std::size_t> shard_range(int s) const {
    return {bounds_[static_cast<std::size_t>(s)],
            bounds_[static_cast<std::size_t>(s) + 1]};
  }

  /// Stage one pre-validated record from `sender_shard` (== shard_of(from)).
  /// Distinct sender shards may stage concurrently (disjoint buffer rows).
  /// Every staging entry point (send, send_to, and the run_round send
  /// phase) lands here while the plane is active, so records arrive
  /// pre-partitioned -- delivery never re-scans a mixed buffer.
  void stage(int sender_shard, std::uint32_t global_slot, VertexId from,
             const Message& msg);

  /// The S x S buffer exchange + per-shard scatter.  Canonicalizes every
  /// buffer, reads congestion off the per-slot runs, publishes the global
  /// CSR offsets into `inbox_offsets` (size n+1), and fills the per-shard
  /// inbox arenas.  Aggregation buffers are cleared afterwards (capacity
  /// retained); totals and per-shard timings land in last_delivery().
  void deliver(std::vector<std::uint32_t>& inbox_offsets, int workers);

  /// Inbox span of v against the offsets the last deliver() published.
  [[nodiscard]] std::span<const Envelope> inbox(
      VertexId v, const std::vector<std::uint32_t>& inbox_offsets) const {
    const auto s = static_cast<std::size_t>(vshard_[v]);
    return {arena_[s].data() + (inbox_offsets[v] - shard_msg_base_[s]),
            inbox_offsets[v + 1] - inbox_offsets[v]};
  }

  /// Records staged across all aggregation buffers (diagnostics).
  [[nodiscard]] std::size_t staged() const;

  [[nodiscard]] const ShardDeliveryStats& last_delivery() const {
    return stats_;
  }

 private:
  [[nodiscard]] std::size_t index(int sender, int dest) const {
    return static_cast<std::size_t>(sender) *
               static_cast<std::size_t>(shards_) +
           static_cast<std::size_t>(dest);
  }
  [[nodiscard]] detail::StagingBuffer& buf(int sender, int dest) {
    return bufs_[index(sender, dest)];
  }

  /// Fault-armed transport step, run serially at the top of deliver():
  /// every aggregation buffer crosses the exchange as an XDSB v2 frame,
  /// injected faults (shard.drop / corrupt / dup / reorder) damage frames
  /// in flight, and each destination column recovers by bounded re-request
  /// from the senders' retained staging copies.  Decoded buffers replace
  /// the originals with their canonicalization metadata invalidated, so
  /// phase A recomputes order and congestion from the wire content --
  /// bit-identical results under any recoverable fault schedule.  Exhausted
  /// retries throw CheckError.
  void wire_exchange();

  /// Phase A for dest shard s: canonicalize its S incoming buffers (sorted
  /// detection, else a stable (slot, index) key sort recorded in order_),
  /// read per-slot congestion runs, count per-receiver messages.
  void phase_count(int s);
  /// Phase B for dest shard s: publish global offsets, scatter the S
  /// buffers in sender-shard order into this shard's arena.
  void phase_scatter(int s, std::vector<std::uint32_t>& inbox_offsets);

  const Graph* graph_ = nullptr;
  int shards_ = 1;
  std::vector<std::size_t> bounds_;  ///< size S+1: shard vertex ranges
  std::vector<std::uint32_t> vshard_;  ///< size n: vertex -> shard
  /// S x S aggregation buffers, row-major by sender shard.
  std::vector<detail::StagingBuffer> bufs_;
  /// Per buffer, maintained incrementally by stage(): the record targets
  /// (stage() resolves slot -> receiver to pick the destination shard
  /// anyway, so delivery never repeats that random lookup), whether the
  /// staged slots are still ascending, and -- while they are -- the
  /// running/maximal slot run (== per-slot congestion in a sorted buffer).
  std::vector<std::vector<std::uint32_t>> tos_;
  std::vector<char> stage_sorted_;
  std::vector<std::uint32_t> stage_prev_;
  std::vector<std::uint64_t> stage_run_;
  std::vector<std::uint64_t> stage_cong_;
  /// Per buffer: canonical visit order when the staged order was unsorted
  /// (empty = already canonical, visit in staging order).
  std::vector<std::vector<std::uint32_t>> order_;
  std::vector<std::uint64_t> buf_congestion_;  ///< per buffer, phase A
  /// Per dest shard: inbox arena, receiver counts/cursors scratch, and
  /// (slot, index) key scratch for unsorted buffers.
  std::vector<std::vector<Envelope>> arena_;
  std::vector<std::vector<std::uint32_t>> counts_;
  std::vector<std::vector<std::uint64_t>> key_scratch_;
  /// Size S+1: global message offset where each shard's arena begins.
  std::vector<std::uint32_t> shard_msg_base_;
  /// Logical-exchange sequence stamped into every wire frame.
  std::uint64_t exchange_seq_ = 0;
  ShardDeliveryStats stats_;
};

}  // namespace xd::congest

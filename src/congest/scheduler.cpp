#include "congest/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/check.hpp"
#include "util/fault_plane.hpp"

namespace xd::congest {

namespace detail {

void set_spawn_fault_hook_for_testing(std::function<void(int)> hook) {
  FaultPlane::instance().set_hook("sched.spawn", std::move(hook));
}

}  // namespace detail

namespace {

/// Spawns `workers` threads over `body(worker)`, joins them, and rethrows
/// the first exception so XD_CHECK failures inside a worker surface as the
/// same catchable error the serial path gives.  Worker fault sites
/// (sched.spawn before construction, sched.stall / sched.throw inside the
/// worker) inject resource exhaustion, stragglers, and mid-epoch errors on
/// demand; either way every spawned thread is joined exactly once.
void spawn_join(int workers, const std::function<void(int)>& body) {
  FaultPlane& faults = FaultPlane::instance();
  const bool sched_armed = faults.armed(FaultCategory::kSched);
  std::exception_ptr first_error;
  std::mutex error_mu;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  try {
    for (int w = 0; w < workers; ++w) {
      if (sched_armed) {
        faults.call_hook("sched.spawn", w);
        if (faults.should_fire("sched.spawn",
                               static_cast<std::uint64_t>(w))) {
          throw CheckError("injected fault: sched.spawn at worker " +
                           std::to_string(w));
        }
      }
      pool.emplace_back([&, w] {
        try {
          if (sched_armed) {
            if (faults.should_fire("sched.stall",
                                   static_cast<std::uint64_t>(w))) {
              std::this_thread::sleep_for(std::chrono::milliseconds(2));
            }
            if (faults.should_fire("sched.throw",
                                   static_cast<std::uint64_t>(w))) {
              throw CheckError("injected fault: sched.throw in worker " +
                               std::to_string(w));
            }
          }
          body(w);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
  } catch (...) {
    // std::thread construction failed mid-loop (resource exhaustion).
    // Destroying a joinable thread is std::terminate, so join the partial
    // pool before surfacing the spawn failure.  Body exceptions from those
    // workers are dropped in favor of the spawn error -- the epoch did not
    // run at full width, so its partial results are void anyway.
    for (auto& t : pool) t.join();
    throw;
  }
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace

void EpochScheduler::set_threads(int threads) {
  XD_CHECK_MSG(threads >= 1, "scheduler thread count must be >= 1");
  threads_ = threads;
}

void EpochScheduler::run(std::size_t n,
                         const std::function<void(std::size_t)>& fn) const {
  const int workers =
      static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(threads_),
                                             n ? n : 1));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  spawn_join(workers, [&](int /*w*/) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
    }
  });
}

void EpochScheduler::run_forked(
    RoundLedger& root, std::size_t n,
    const std::function<void(std::size_t, RoundLedger&)>& fn) const {
  std::vector<RoundLedger*> branches;
  branches.reserve(n);
  for (std::size_t i = 0; i < n; ++i) branches.push_back(&root.fork());
  try {
    run(n, [&](std::size_t i) { fn(i, *branches[i]); });
  } catch (...) {
    root.join();
    throw;
  }
  root.join();
}

void EpochScheduler::run_partitioned(
    std::size_t n, int workers,
    const std::function<void(int, std::size_t, std::size_t)>& body) {
  XD_CHECK_MSG(workers >= 1, "worker count must be >= 1");
  if (workers == 1) {
    body(0, 0, n);
    return;
  }
  spawn_join(workers, [&](int w) {
    const std::size_t lo =
        n * static_cast<std::size_t>(w) / static_cast<std::size_t>(workers);
    const std::size_t hi = n * (static_cast<std::size_t>(w) + 1) /
                           static_cast<std::size_t>(workers);
    body(w, lo, hi);
  });
}

}  // namespace xd::congest

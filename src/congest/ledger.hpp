#pragma once

/// \file ledger.hpp
/// Round and message accounting.
///
/// Every simulated communication step charges rounds here, labeled with the
/// lemma/phase it implements, so a bench can both report the total and
/// explain where it went.  The charging rules are documented in DESIGN.md §2:
/// a kernel exchange that multiplexes c messages over the most loaded
/// directed edge costs c rounds (bandwidth is one message per edge per
/// round); orchestrated control-flow decisions charge the broadcast /
/// convergecast depth of the tree they would run over.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace xd::congest {

/// Accumulates simulated CONGEST rounds and message counts by category.
class RoundLedger {
 public:
  /// Adds `rounds` simulated rounds attributed to `reason`.
  void charge(std::uint64_t rounds, std::string_view reason);

  /// Adds to the global message counter (no rounds).
  void count_messages(std::uint64_t messages) { messages_ += messages; }

  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }
  [[nodiscard]] std::uint64_t messages() const { return messages_; }

  /// Rounds charged under a specific label so far.
  [[nodiscard]] std::uint64_t rounds_for(std::string_view reason) const;

  /// Per-label breakdown, sorted by label.
  [[nodiscard]] const std::map<std::string, std::uint64_t>& breakdown() const {
    return by_reason_;
  }

  /// Human-readable multi-line report.
  [[nodiscard]] std::string report() const;

  /// Resets all counters.
  void reset();

 private:
  std::uint64_t rounds_ = 0;
  std::uint64_t messages_ = 0;
  std::map<std::string, std::uint64_t> by_reason_;
};

}  // namespace xd::congest

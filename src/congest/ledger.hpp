#pragma once

/// \file ledger.hpp
/// Round and message accounting.
///
/// Every simulated communication step charges rounds here, labeled with the
/// lemma/phase it implements, so a bench can both report the total and
/// explain where it went.  The charging rules are documented in
/// docs/rounds.md: a kernel exchange that multiplexes c messages over the
/// most loaded directed edge costs c rounds (bandwidth is one message per
/// edge per round); orchestrated control-flow decisions charge the
/// broadcast / convergecast depth of the tree they would run over.
///
/// Concurrent components share the clock.  When vertex-disjoint parts of
/// the graph run their protocols simultaneously (one CONGEST network, one
/// round counter -- the composition Theorems 1 and 2 assume), fork() hands
/// each branch an independent sub-ledger and join() merges them by charging
/// the MAX of the branches' round totals while summing their messages.
/// Sequentialized execution keeps the classic behavior: charges add up.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace xd::congest {

/// Accumulates simulated CONGEST rounds and message counts by category.
class RoundLedger {
 public:
  /// Adds `rounds` simulated rounds attributed to `reason`.
  void charge(std::uint64_t rounds, std::string_view reason);

  /// Adds to the global message counter (no rounds).
  void count_messages(std::uint64_t messages) { messages_ += messages; }

  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }
  [[nodiscard]] std::uint64_t messages() const { return messages_; }

  /// Rounds charged under a specific label so far.
  [[nodiscard]] std::uint64_t rounds_for(std::string_view reason) const;

  /// Per-label breakdown, sorted by label.
  [[nodiscard]] const std::map<std::string, std::uint64_t>& breakdown() const {
    return by_reason_;
  }

  // ------------------------------------------------------------ fork/join

  /// Begins an independent branch for a concurrently-executing component.
  /// The child ledger is owned by this one and its address is stable until
  /// join() or reset().  Threading contract: fork every branch of a batch
  /// before handing them to worker threads, charge each branch from at most
  /// one thread at a time, and call join() only after the workers finished
  /// (the epoch barrier).  fork() and join() themselves must run on the
  /// owner's thread.
  RoundLedger& fork();

  /// Merges and discards all outstanding forked children (recursively
  /// joining theirs first).  Concurrent branches share the clock:
  ///   rounds   += max over children of child.rounds()
  ///   messages += sum over children of child.messages()
  /// and each label's breakdown advances by the max of that label across
  /// children (the label's parallel critical depth).  Per-label entries
  /// may therefore sum to more than rounds() after a join; rounds() is
  /// always the simulated clock.  No-op when nothing is forked.
  void join();

  /// Outstanding (not yet joined) forked children.
  [[nodiscard]] std::size_t forked() const { return children_.size(); }

  /// Folds another ledger's settled totals into this one: rounds and
  /// messages add, each label's breakdown adds.  `other` must be joined
  /// (outstanding forks would be silently lost -- checked).  This is the
  /// commit step of a run-on-scratch-then-commit pattern: charge a
  /// retryable phase against a scratch ledger, absorb it only once the
  /// phase succeeds, and an abandoned attempt never pollutes the clock.
  void absorb(const RoundLedger& other);

  /// Human-readable multi-line report.
  [[nodiscard]] std::string report() const;

  /// Resets all counters and discards any forked children.
  void reset();

 private:
  std::uint64_t rounds_ = 0;
  std::uint64_t messages_ = 0;
  std::map<std::string, std::uint64_t> by_reason_;
  /// unique_ptr keeps child addresses stable while the vector grows.
  std::vector<std::unique_ptr<RoundLedger>> children_;
};

}  // namespace xd::congest

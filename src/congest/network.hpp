#pragma once

/// \file network.hpp
/// The round-synchronous CONGEST kernel.
///
/// Usage pattern (a "logical exchange"):
///   1. stage messages with send() / send_to() from any vertex;
///   2. call exchange("label") -- all staged messages are delivered to the
///      receivers' inboxes and the ledger is charged max-edge-congestion
///      rounds (>= 1), i.e. the number of CONGEST rounds needed to push the
///      staged traffic through the most loaded directed edge at one bounded
///      message per edge per round;
///   3. read inbox(v).
///
/// Sending over a self-loop slot is rejected: loops are local state, not
/// channels.  Messages are validated to travel only over edges of the graph
/// (that *is* the CONGEST model -- no telepathy).

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "congest/ledger.hpp"
#include "congest/message.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace xd::congest {

/// Round-synchronous message-passing network over a fixed topology.
class Network {
 public:
  /// \param graph   topology; must outlive the network
  /// \param ledger  accounting sink; must outlive the network
  /// \param seed    run seed; per-vertex private streams fork from it
  Network(const Graph& graph, RoundLedger& ledger, std::uint64_t seed = 1);

  [[nodiscard]] const Graph& graph() const { return *graph_; }
  [[nodiscard]] RoundLedger& ledger() { return *ledger_; }
  [[nodiscard]] std::size_t num_vertices() const { return graph_->num_vertices(); }

  /// Private randomness of vertex v (the model's local random bits).
  [[nodiscard]] Rng& rng(VertexId v) { return rngs_[v]; }

  /// Stage a message from `from` over its adjacency slot `slot`
  /// (0 <= slot < degree).  Rejects self-loop slots.
  void send(VertexId from, std::uint32_t slot, const Message& msg);

  /// Stage a message from `from` to neighbor `to`; O(deg(from)) slot lookup.
  /// Requires {from, to} to be an edge.
  void send_to(VertexId from, VertexId to, const Message& msg);

  /// Deliver all staged messages; charge max(1, max directed-edge
  /// congestion) rounds under `reason`.  Clears previous inboxes first.
  /// Returns the number of rounds charged.
  std::uint64_t exchange(std::string_view reason);

  /// Deliver staged messages, charging exactly `rounds_override` rounds
  /// (used when a phase's cost is charged in aggregate elsewhere, e.g. the
  /// pipelined parts of Lemma 10).  Congestion must not exceed the
  /// override -- checked.
  std::uint64_t exchange_charging(std::string_view reason,
                                  std::uint64_t rounds_override);

  /// Charge idle rounds (a phase that waits without traffic).
  void tick(std::uint64_t rounds, std::string_view reason);

  /// Messages delivered to v in the last exchange.
  [[nodiscard]] std::span<const Envelope> inbox(VertexId v) const {
    return inboxes_[v];
  }

  /// Total messages staged for the pending exchange (diagnostics).
  [[nodiscard]] std::size_t staged() const { return staged_count_; }

 private:
  struct Staged {
    VertexId from;
    VertexId to;
    std::uint32_t directed_slot;  ///< global directed-slot index of (from, slot)
    Message msg;
  };

  const Graph* graph_;
  RoundLedger* ledger_;
  std::vector<Rng> rngs_;
  std::vector<Staged> outbox_;
  std::vector<std::vector<Envelope>> inboxes_;
  std::size_t staged_count_ = 0;

  std::uint64_t do_exchange(std::string_view reason, bool has_override,
                            std::uint64_t rounds_override);
};

}  // namespace xd::congest

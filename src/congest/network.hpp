#pragma once

/// \file network.hpp
/// The round-synchronous CONGEST kernel, built around a batched round
/// engine.
///
/// Usage pattern (a "logical exchange"):
///   1. stage messages with send() / send_to() from any vertex;
///   2. call exchange("label") -- all staged messages are delivered to the
///      receivers' inboxes and the ledger is charged max-edge-congestion
///      rounds (>= 1), i.e. the number of CONGEST rounds needed to push the
///      staged traffic through the most loaded directed edge at one bounded
///      message per edge per round;
///   3. read inbox(v).
///
/// Or, preferred for whole-protocol steps: implement a VertexProgram
/// (engine.hpp) and call run_round(); the engine runs the send phase over
/// all vertices, delivers, then runs the receive phase -- optionally on
/// several threads (set_threads) with bit-identical results.  The phase
/// threads use the same pool idiom as the component-level epoch scheduler
/// (scheduler.hpp), which parallelizes *across* networks of disjoint
/// components; round charges for that case are documented in docs/rounds.md.
///
/// Delivery is flat: staged messages are canonicalized by directed slot
/// (counting-sort keys), congestion is read off the sorted runs, and the
/// inboxes are one contiguous Envelope arena plus a CSR offset array --
/// zero per-vertex allocations per round.  inbox(v) is a span into the
/// arena, ordered by (sender, slot); this order is deterministic and
/// independent of staging interleaving, which is what makes the parallel
/// executor exact.
///
/// Sending over a self-loop slot is rejected: loops are local state, not
/// channels.  Messages are validated to travel only over edges of the graph
/// (that *is* the CONGEST model -- no telepathy).
///
/// set_shards(S > 1) switches delivery onto the sharded message plane
/// (shard_plane.hpp): contiguous vertex shards stage into S x S
/// per-destination aggregation buffers and delivery becomes a bulk buffer
/// exchange plus per-shard scatter -- results, delivery order, and round
/// charges are bit-identical to the shared arena at any (shards x threads)
/// combination.  The XD_SHARDS environment variable sets the construction
/// default (docs/sharding.md).

#include <atomic>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "congest/engine.hpp"
#include "congest/ledger.hpp"
#include "congest/message.hpp"
#include "congest/shard_plane.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace xd::congest {

/// Strict parser for shard counts (the XD_SHARDS environment variable and
/// any CLI flag that feeds set_shards).  Accepts a base-10 integer with
/// optional surrounding whitespace; rejects empty strings, garbage,
/// trailing junk ("4x"), zero, negatives, and absurd values (> 2^20) with
/// a CheckError -- a mistyped shard count must never silently run
/// unsharded.
int parse_shard_count(const char* text);

/// Round-synchronous message-passing network over a fixed topology.
class Network {
 public:
  /// \param graph   topology; must outlive the network
  /// \param ledger  accounting sink; must outlive the network
  /// \param seed    run seed; per-vertex private streams fork from it
  Network(const Graph& graph, RoundLedger& ledger, std::uint64_t seed = 1);

  [[nodiscard]] const Graph& graph() const { return *graph_; }
  [[nodiscard]] RoundLedger& ledger() { return *ledger_; }
  [[nodiscard]] std::size_t num_vertices() const { return graph_->num_vertices(); }

  /// Private randomness of vertex v (the model's local random bits).
  [[nodiscard]] Rng& rng(VertexId v) { return rngs_[v]; }

  /// Stage a message from `from` over its adjacency slot `slot`
  /// (0 <= slot < degree).  Rejects self-loop slots.
  void send(VertexId from, std::uint32_t slot, const Message& msg);

  /// Stage a message from `from` to neighbor `to`; O(log deg) via the
  /// graph's neighbor->slot index.  Requires {from, to} to be an edge.
  void send_to(VertexId from, VertexId to, const Message& msg);

  /// Deliver all staged messages; charge max(1, max directed-edge
  /// congestion) rounds under `reason`.  Clears previous inboxes first.
  /// Returns the number of rounds charged.
  std::uint64_t exchange(std::string_view reason);

  /// Deliver staged messages, charging exactly `rounds_override` rounds
  /// (used when a phase's cost is charged in aggregate elsewhere, e.g. the
  /// pipelined parts of Lemma 10).  Congestion must not exceed the
  /// override -- checked.
  std::uint64_t exchange_charging(std::string_view reason,
                                  std::uint64_t rounds_override);

  /// Charge idle rounds (a phase that waits without traffic).
  void tick(std::uint64_t rounds, std::string_view reason);

  /// Messages delivered to v in the last exchange: a span into the flat
  /// arena (or, sharded, into v's shard's arena -- same contents, same
  /// order), ordered by (sender, sender slot).
  [[nodiscard]] std::span<const Envelope> inbox(VertexId v) const {
    if (plane_.active()) return plane_.inbox(v, inbox_offsets_);
    return {arena_.data() + inbox_offsets_[v],
            inbox_offsets_[v + 1] - inbox_offsets_[v]};
  }

  /// Total messages staged for the pending exchange (diagnostics).
  [[nodiscard]] std::size_t staged() const {
    return outbox_.size() + plane_.staged();
  }

  // ---------------------------------------------------------- round engine

  /// Run one superstep of `program`: send phase over all vertices, one
  /// delivery (charged like exchange), receive phase over all vertices.
  /// Returns the rounds charged.
  std::uint64_t run_round(VertexProgram& program, std::string_view reason);

  /// run_round `rounds` times; returns total rounds charged.
  std::uint64_t run_rounds(VertexProgram& program, int rounds,
                           std::string_view reason);

  /// Opt-in thread-parallel executor for run_round phases (default 1 =
  /// serial).  Results are bit-identical for every thread count: phases are
  /// data-parallel over vertices and delivery order is canonical.
  void set_threads(int threads);
  [[nodiscard]] int threads() const { return threads_; }

  /// Opt-in sharded message plane: S contiguous vertex shards exchanging
  /// S x S aggregation buffers (shard_plane.hpp).  S = 1 restores the
  /// shared-arena path; every S is bit-identical to it.  Rejected while
  /// messages are staged (the pending traffic would be orphaned).  The
  /// XD_SHARDS environment variable (> 1) sets the construction default.
  void set_shards(int shards);
  [[nodiscard]] int shards() const { return plane_.shards(); }

  /// Totals and per-shard buffer/scatter timings of the last sharded
  /// delivery (bench_kernel's breakdown; empty stats while unsharded).
  [[nodiscard]] const ShardDeliveryStats& shard_delivery_stats() const {
    return plane_.last_delivery();
  }

  /// Total binary-search probes spent in send_to slot lookups (diagnostics;
  /// the star-broadcast regression test asserts this stays O(S log deg)).
  [[nodiscard]] std::uint64_t slot_lookup_probes() const {
    return slot_lookup_probes_.load(std::memory_order_relaxed);
  }

 private:
  friend class Outbox;

  /// Validates and stages one message into `buf`.
  void stage(detail::StagingBuffer& buf, VertexId from, std::uint32_t slot,
             const Message& msg);
  void stage_to(detail::StagingBuffer& buf, VertexId from, VertexId to,
                const Message& msg);
  /// Sharded send-phase staging: same validation, routed straight into the
  /// sender shard's aggregation buffers (safe across distinct shards).
  void stage_sharded(int sender_shard, VertexId from, std::uint32_t slot,
                     const Message& msg);
  void stage_to_sharded(int sender_shard, VertexId from, VertexId to,
                        const Message& msg);

  /// Canonicalize + deliver outbox_ into the arena; charge and return
  /// rounds.
  std::uint64_t do_exchange(std::string_view reason, bool has_override,
                            std::uint64_t rounds_override);
  /// Delivery via the S x S aggregation-buffer exchange (plane_ active).
  std::uint64_t do_exchange_sharded(std::string_view reason, bool has_override,
                                    std::uint64_t rounds_override);
  /// Shared charging tail of both delivery paths: message accounting, the
  /// congestion-vs-override check, and the round charge.
  std::uint64_t finish_exchange(std::string_view reason,
                                std::size_t staged_count,
                                std::uint64_t max_congestion, bool has_override,
                                std::uint64_t rounds_override);
  /// run_round over the sharded plane: shards are the partition unit for
  /// both phases, so results are bit-identical at any worker count.
  std::uint64_t run_round_sharded(VertexProgram& program,
                                  std::string_view reason);

  const Graph* graph_;
  RoundLedger* ledger_;
  std::vector<Rng> rngs_;
  int threads_ = 1;
  /// Relaxed atomic: bumped from parallel send phases, read for diagnostics.
  std::atomic<std::uint64_t> slot_lookup_probes_{0};

  detail::StagingBuffer outbox_;
  /// Flat inbox arena + CSR offsets (size n+1); rebuilt each delivery with
  /// no per-vertex allocations.
  std::vector<Envelope> arena_;
  std::vector<std::uint32_t> inbox_offsets_;
  /// Scratch reused across deliveries.  slot_counts_ (size volume, lazily
  /// grown) is kept all-zeros between exchanges; the dense delivery path
  /// uses it for per-slot counts, then cursors, then bulk-zeroes it.
  std::vector<std::uint64_t> sort_keys_;
  std::vector<std::uint32_t> cursor_;
  std::vector<std::uint32_t> slot_counts_;
  /// Per-worker staging buffers for the parallel executor.
  std::vector<detail::StagingBuffer> worker_bufs_;
  /// Sharded delivery plane; inactive (shared arena) until set_shards(> 1).
  ShardPlane plane_;
};

}  // namespace xd::congest

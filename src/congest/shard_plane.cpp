#include "congest/shard_plane.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <sstream>
#include <string>

#include "congest/scheduler.hpp"
#include "util/check.hpp"
#include "util/crc32c.hpp"
#include "util/fault_plane.hpp"

namespace xd::congest {

namespace {

constexpr std::size_t kWireHeaderBytes = 40;        // v2
constexpr std::size_t kWireLegacyHeaderBytes = 24;  // v1
constexpr std::size_t kWireCrcOffset = 32;
constexpr std::size_t kWireRecordBytes = 28;

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

int clamp_workers(int workers, int shards) {
  return std::max(1, std::min(workers, shards));
}

}  // namespace

// ------------------------------------------------------------- wire format --

namespace {

/// CRC-32C of a v2 frame with the crc field's own four bytes taken as zero
/// (three streaming chunks; the xor conventions cancel across calls).
std::uint32_t frame_crc(std::span<const unsigned char> bytes) {
  static constexpr unsigned char kZero[4] = {0, 0, 0, 0};
  std::uint32_t c = crc32c(bytes.data(), kWireCrcOffset);
  c = crc32c_update(c, kZero, 4);
  return crc32c_update(c, bytes.data() + kWireCrcOffset + 4,
                       bytes.size() - kWireCrcOffset - 4);
}

/// Shared decode core: fills the outputs and returns true, or (for any
/// structural or integrity defect) writes a diagnostic into *err and
/// returns false.  Every byte read is bounds-checked before the read, so
/// arbitrarily damaged frames are rejected, never UB.
bool decode_impl(std::span<const unsigned char> bytes,
                 std::uint32_t* sender_shard, std::uint32_t* dest_shard,
                 detail::StagingBuffer* out, std::uint64_t* seq,
                 std::string* err) {
  const auto fail = [err](auto&&... parts) {
    std::ostringstream os;
    (os << ... << parts);
    *err = os.str();
    return false;
  };
  if (bytes.size() < kWireLegacyHeaderBytes) {
    return fail("shard buffer truncated: ", bytes.size(),
                " bytes, header needs ", kWireLegacyHeaderBytes);
  }
  const unsigned char* p = bytes.data();
  auto get32 = [&p] {
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    p += 4;
    return v;
  };
  auto get64 = [&p] {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    p += 8;
    return v;
  };
  const std::uint32_t magic = get32();
  if (magic != kShardBufferMagic) {
    return fail("shard buffer bad magic ", magic);
  }
  const std::uint32_t version = get32();
  if (version != kShardBufferVersion && version != kShardBufferLegacyVersion) {
    return fail("shard buffer version ", version, " unsupported (want ",
                kShardBufferVersion, " or ", kShardBufferLegacyVersion, ")");
  }
  const std::size_t header_bytes = version == kShardBufferLegacyVersion
                                       ? kWireLegacyHeaderBytes
                                       : kWireHeaderBytes;
  if (bytes.size() < header_bytes) {
    return fail("shard buffer truncated: ", bytes.size(),
                " bytes, v", version, " header needs ", header_bytes);
  }
  *sender_shard = get32();
  *dest_shard = get32();
  const std::uint64_t count = get64();
  std::uint64_t frame_seq = 0;
  if (version == kShardBufferVersion) {
    frame_seq = get64();
    const std::uint32_t stored_crc = get32();
    get32();  // reserved
    if (stored_crc != frame_crc(bytes)) {
      return fail("shard buffer CRC mismatch (stored ", stored_crc, ")");
    }
  }
  if (seq != nullptr) *seq = frame_seq;
  if (count > (bytes.size() - header_bytes) / kWireRecordBytes ||
      bytes.size() != header_bytes + kWireRecordBytes * count) {
    return fail("shard buffer size ", bytes.size(), " != header + ", count,
                " records");
  }
  out->clear();
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint32_t slot = get32();
    const VertexId from = get32();
    Message msg;
    msg.tag = get32();
    msg.words[0] = get64();
    msg.words[1] = get64();
    out->push(slot, from, msg);
  }
  return true;
}

}  // namespace

std::vector<unsigned char> encode_shard_buffer(
    std::uint32_t sender_shard, std::uint32_t dest_shard,
    const detail::StagingBuffer& buf, std::uint64_t seq) {
  const std::uint64_t count = buf.size();
  std::vector<unsigned char> out(kWireHeaderBytes + kWireRecordBytes * count);
  unsigned char* p = out.data();
  auto put32 = [&p](std::uint32_t v) {
    std::memcpy(p, &v, 4);
    p += 4;
  };
  auto put64 = [&p](std::uint64_t v) {
    std::memcpy(p, &v, 8);
    p += 8;
  };
  put32(kShardBufferMagic);
  put32(kShardBufferVersion);
  put32(sender_shard);
  put32(dest_shard);
  put64(count);
  put64(seq);
  put32(0);  // crc placeholder, patched below
  put32(0);  // reserved
  for (std::size_t i = 0; i < count; ++i) {
    put32(buf.slot[i]);
    put32(buf.from[i]);
    put32(buf.msg[i].tag);
    put64(buf.msg[i].words[0]);
    put64(buf.msg[i].words[1]);
  }
  const std::uint32_t crc = frame_crc(out);
  std::memcpy(out.data() + kWireCrcOffset, &crc, 4);
  return out;
}

void decode_shard_buffer(std::span<const unsigned char> bytes,
                         std::uint32_t* sender_shard, std::uint32_t* dest_shard,
                         detail::StagingBuffer* out, std::uint64_t* seq) {
  std::string err;
  XD_CHECK_MSG(decode_impl(bytes, sender_shard, dest_shard, out, seq, &err),
               err);
}

bool try_decode_shard_buffer(std::span<const unsigned char> bytes,
                             std::uint32_t* sender_shard,
                             std::uint32_t* dest_shard,
                             detail::StagingBuffer* out, std::uint64_t* seq) {
  std::string err;
  return decode_impl(bytes, sender_shard, dest_shard, out, seq, &err);
}

// -------------------------------------------------------------- ShardPlane --

void ShardPlane::configure(const Graph& g, int shards) {
  XD_CHECK_MSG(shards >= 1, "shard count must be >= 1");
  graph_ = &g;
  shards_ = shards;
  const std::size_t n = g.num_vertices();
  const auto s_sz = static_cast<std::size_t>(shards);
  bounds_.assign(s_sz + 1, 0);
  for (std::size_t s = 0; s <= s_sz; ++s) bounds_[s] = n * s / s_sz;
  vshard_.assign(n, 0);
  for (std::size_t s = 0; s < s_sz; ++s) {
    for (std::size_t v = bounds_[s]; v < bounds_[s + 1]; ++v) {
      vshard_[v] = static_cast<std::uint32_t>(s);
    }
  }
  bufs_.assign(s_sz * s_sz, {});
  tos_.assign(s_sz * s_sz, {});
  stage_sorted_.assign(s_sz * s_sz, 1);
  stage_prev_.assign(s_sz * s_sz, 0);
  stage_run_.assign(s_sz * s_sz, 0);
  stage_cong_.assign(s_sz * s_sz, 0);
  order_.assign(s_sz * s_sz, {});
  buf_congestion_.assign(s_sz * s_sz, 0);
  arena_.assign(s_sz, {});
  counts_.assign(s_sz, {});
  key_scratch_.assign(s_sz, {});
  shard_msg_base_.assign(s_sz + 1, 0);
  exchange_seq_ = 0;
  stats_ = {};
  stats_.shard.resize(s_sz);
}

void ShardPlane::stage(int sender_shard, std::uint32_t global_slot,
                       VertexId from, const Message& msg) {
  const VertexId to = graph_->slot_target(global_slot);
  const std::size_t idx = index(sender_shard, static_cast<int>(vshard_[to]));
  detail::StagingBuffer& b = bufs_[idx];
  // Buffer metadata rides along with the fill (the sender resolves the
  // receiver to pick this buffer anyway): the record target, and the slot
  // run / sortedness bookkeeping that lets delivery skip its detection
  // pass.  In a still-sorted buffer the maximal slot run IS the buffer's
  // per-slot congestion; once a slot regresses the buffer is marked
  // unsorted and phase A recomputes congestion after its key sort.
  if (b.size() == 0) {
    stage_sorted_[idx] = 1;
    stage_run_[idx] = 1;
    stage_cong_[idx] = 1;
  } else if (stage_sorted_[idx]) {
    if (global_slot < stage_prev_[idx]) {
      stage_sorted_[idx] = 0;
    } else {
      stage_run_[idx] = global_slot == stage_prev_[idx] ? stage_run_[idx] + 1
                                                        : 1;
      if (stage_run_[idx] > stage_cong_[idx]) {
        stage_cong_[idx] = stage_run_[idx];
      }
    }
  }
  stage_prev_[idx] = global_slot;
  b.push(global_slot, from, msg);
  tos_[idx].push_back(to);
}

std::size_t ShardPlane::staged() const {
  std::size_t total = 0;
  for (const auto& b : bufs_) total += b.size();
  return total;
}

void ShardPlane::wire_exchange() {
  // Transport semantics under test: every (sender, dest) buffer becomes an
  // XDSB v2 frame, the fault plane damages frames in flight, and each
  // destination column re-requests what it is missing from the senders'
  // retained staging copies -- at most kMaxAttempts passes before the
  // exchange is declared unrecoverable.  Runs serially (fault-armed runs
  // trade speed for a deterministic hit order); fault keys are pure
  // (seq, sender, dest, attempt) coordinates so p-triggers replay exactly.
  constexpr int kMaxAttempts = 8;
  FaultPlane& faults = FaultPlane::instance();
  const std::uint64_t seq = ++exchange_seq_;
  const std::uint64_t volume = graph_->volume();
  const auto S = static_cast<std::size_t>(shards_);
  std::vector<detail::StagingBuffer> col(S);
  std::vector<char> have(S, 0);
  detail::StagingBuffer scratch;
  for (int s = 0; s < shards_; ++s) {
    std::fill(have.begin(), have.end(), 0);
    int attempt = 0;
    for (; attempt < kMaxAttempts; ++attempt) {
      std::vector<std::vector<unsigned char>> arrivals;
      bool all_held = true;
      for (int q = 0; q < shards_; ++q) {
        if (have[static_cast<std::size_t>(q)]) continue;
        all_held = false;
        const std::uint64_t key =
            (seq * 0x9E3779B97F4A7C15ull) ^
            (static_cast<std::uint64_t>(q) << 20) ^
            (static_cast<std::uint64_t>(s) << 8) ^
            static_cast<std::uint64_t>(attempt);
        if (attempt > 0) {
          ++stats_.wire.retransmits;
          faults.count("shard.retransmits");
        }
        if (faults.should_fire("shard.drop", key)) {
          ++stats_.wire.dropped;
          continue;  // the frame never arrives
        }
        std::vector<unsigned char> frame = encode_shard_buffer(
            static_cast<std::uint32_t>(q), static_cast<std::uint32_t>(s),
            bufs_[index(q, s)], seq);
        ++stats_.wire.frames;
        if (faults.should_fire("shard.corrupt", key)) {
          const std::uint64_t bit =
              faults.decision_mix("shard.corrupt", key) %
              (static_cast<std::uint64_t>(frame.size()) * 8);
          frame[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
        }
        if (faults.should_fire("shard.dup", key)) {
          ++stats_.wire.frames;
          arrivals.push_back(frame);
        }
        arrivals.push_back(std::move(frame));
      }
      if (all_held) break;
      if (arrivals.size() > 1 &&
          faults.should_fire("shard.reorder",
                             (seq << 16) ^ static_cast<std::uint64_t>(s))) {
        ++stats_.wire.reordered;
        std::reverse(arrivals.begin(), arrivals.end());
      }
      for (const auto& frame : arrivals) {
        std::uint32_t sender = 0;
        std::uint32_t dest = 0;
        std::uint64_t frame_seq = 0;
        if (!try_decode_shard_buffer(frame, &sender, &dest, &scratch,
                                     &frame_seq)) {
          ++stats_.wire.corrupted;
          continue;
        }
        if (sender >= S || dest != static_cast<std::uint32_t>(s) ||
            frame_seq != seq) {
          ++stats_.wire.corrupted;  // valid frame, wrong coordinates
          continue;
        }
        if (have[sender]) {
          ++stats_.wire.duplicates;
          continue;  // first valid copy wins
        }
        col[sender] = std::move(scratch);
        scratch = {};
        have[sender] = 1;
      }
    }
    for (int q = 0; q < shards_; ++q) {
      XD_CHECK_MSG(have[static_cast<std::size_t>(q)],
                   "shard wire exchange unrecoverable: buffer (" << q << " -> "
                       << s << ") still missing after " << attempt
                       << " attempts (seq " << seq << ")");
    }
    // Commit the column: the decoded buffers replace the staging originals,
    // record targets are rebuilt from the graph (with the shard invariant
    // re-checked defensively), and the stage-time canonicalization metadata
    // is invalidated so phase A's key sort recomputes order and congestion
    // from the wire content -- identical content, identical results.
    for (int q = 0; q < shards_; ++q) {
      const std::size_t idx = index(q, s);
      bufs_[idx] = std::move(col[static_cast<std::size_t>(q)]);
      col[static_cast<std::size_t>(q)] = {};
      const detail::StagingBuffer& b = bufs_[idx];
      auto& tos = tos_[idx];
      tos.clear();
      for (std::size_t i = 0; i < b.size(); ++i) {
        XD_CHECK_MSG(b.slot[i] < volume,
                     "wire record slot " << b.slot[i] << " out of range");
        const VertexId to = graph_->slot_target(b.slot[i]);
        XD_CHECK_MSG(vshard_[to] == static_cast<std::uint32_t>(s),
                     "wire record routed to shard " << vshard_[to]
                                                    << ", expected " << s);
        tos.push_back(to);
      }
      stage_sorted_[idx] = 0;
    }
  }
}

void ShardPlane::phase_count(int s) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto [lo, hi] = shard_range(s);
  auto& counts = counts_[static_cast<std::size_t>(s)];
  counts.assign(hi - lo, 0);
  std::uint64_t total = 0;
  for (int q = 0; q < shards_; ++q) {
    const std::size_t idx = index(q, s);
    const detail::StagingBuffer& b = bufs_[idx];
    const std::size_t m = b.size();
    std::uint64_t cong = 0;
    auto& ord = order_[idx];
    ord.clear();
    if (m > 0) {
      // Canonical per-buffer order is ascending (slot, staging index) --
      // the same rule as the shared arena.  stage() tracked sortedness and
      // the maximal slot run as the buffer filled, so the common case
      // (vertex-ascending staging) costs nothing here; an out-of-order
      // buffer pays a stable (slot, index) key sort that also recomputes
      // its congestion off the sorted runs.
      if (stage_sorted_[idx]) {
        cong = stage_cong_[idx];
      } else {
        auto& keys = key_scratch_[static_cast<std::size_t>(s)];
        keys.resize(m);
        for (std::size_t j = 0; j < m; ++j) {
          keys[j] =
              (std::uint64_t{b.slot[j]} << 32) | static_cast<std::uint32_t>(j);
        }
        std::sort(keys.begin(), keys.end());
        ord.resize(m);
        std::uint64_t run = 0;
        for (std::size_t j = 0; j < m; ++j) {
          run = j > 0 && (keys[j] >> 32) == (keys[j - 1] >> 32) ? run + 1 : 1;
          cong = std::max(cong, run);
          ord[j] = static_cast<std::uint32_t>(keys[j] & 0xffffffffu);
        }
      }
      // Receiver counts stream the stage-time target cache -- no random
      // slot -> receiver lookups on the delivery path.
      const std::uint32_t* tos = tos_[idx].data();
      for (std::size_t i = 0; i < m; ++i) ++counts[tos[i] - lo];
      total += m;
    }
    buf_congestion_[idx] = cong;
  }
  auto& st = stats_.shard[static_cast<std::size_t>(s)];
  st.received = total;
  st.buffer_ms = ms_since(t0);
}

void ShardPlane::phase_scatter(int s,
                               std::vector<std::uint32_t>& inbox_offsets) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto [lo, hi] = shard_range(s);
  auto& counts = counts_[static_cast<std::size_t>(s)];
  auto& arena = arena_[static_cast<std::size_t>(s)];
  arena.resize(stats_.shard[static_cast<std::size_t>(s)].received);
  // Publish this shard's slice of the global CSR offsets (vertices [lo, hi)
  // only -- offsets[n] is written serially by deliver(), and neighboring
  // shards' slices are disjoint, so no write is shared across workers) and
  // repurpose counts as arena-local scatter cursors.
  const std::uint32_t base = shard_msg_base_[static_cast<std::size_t>(s)];
  std::uint32_t running = 0;
  for (std::size_t v = lo; v < hi; ++v) {
    const std::uint32_t c = counts[v - lo];
    inbox_offsets[v] = base + running;
    counts[v - lo] = running;
    running += c;
  }
  // Scatter the S incoming buffers in sender-shard order: sender shards
  // partition the directed-slot space monotonically, so this visits each
  // receiver's messages in globally ascending slot order -- the canonical
  // delivery order of the shared-arena path.
  for (int q = 0; q < shards_; ++q) {
    const std::size_t bidx = index(q, s);
    const detail::StagingBuffer& b = bufs_[bidx];
    const auto& ord = order_[bidx];
    const std::uint32_t* tos = tos_[bidx].data();
    const std::size_t m = b.size();
    constexpr std::size_t kAhead = 12;
    if (ord.empty()) {
      for (std::size_t i = 0; i < m; ++i) {
        if (i + kAhead < m) {
          __builtin_prefetch(arena.data() + counts[tos[i + kAhead] - lo], 1, 0);
        }
        arena[counts[tos[i] - lo]++] = Envelope{b.from[i], b.msg[i]};
      }
    } else {
      for (std::size_t i = 0; i < m; ++i) {
        if (i + kAhead < m) {
          __builtin_prefetch(arena.data() + counts[tos[ord[i + kAhead]] - lo],
                             1, 0);
        }
        const std::size_t idx = ord[i];
        arena[counts[tos[idx] - lo]++] = Envelope{b.from[idx], b.msg[idx]};
      }
    }
  }
  stats_.shard[static_cast<std::size_t>(s)].scatter_ms = ms_since(t0);
}

void ShardPlane::deliver(std::vector<std::uint32_t>& inbox_offsets,
                         int workers) {
  const auto S = static_cast<std::size_t>(shards_);
  const std::size_t n = graph_->num_vertices();
  const int w = clamp_workers(workers, shards_);

  // Fault-armed runs route every buffer through the wire frame path first
  // (serial, deterministic); disarmed runs pay one relaxed load here and
  // exchange buffers in memory as before.
  if (shards_ > 1 &&
      FaultPlane::instance().armed(FaultCategory::kShard)) {
    wire_exchange();
  }

  // Phase A, parallel over destination shards: canonicalize buffers, read
  // congestion, count receivers.  All writes are per-dest-shard-local.
  EpochScheduler::run_partitioned(S, w,
                                  [&](int /*w*/, std::size_t lo,
                                      std::size_t hi) {
                                    for (std::size_t s = lo; s < hi; ++s) {
                                      phase_count(static_cast<int>(s));
                                    }
                                  });

  // Serial barrier: shard totals -> global arena base offsets, buffer
  // congestion -> global max.  Exact because every directed slot lives in
  // exactly one (sender, dest) buffer.
  std::size_t total_staged = 0;
  stats_.max_congestion = 0;
  shard_msg_base_[0] = 0;
  for (std::size_t s = 0; s < S; ++s) {
    total_staged += stats_.shard[s].received;
    XD_CHECK_MSG(total_staged < (std::uint64_t{1} << 32),
                 "too many staged messages for one exchange");
    shard_msg_base_[s + 1] =
        shard_msg_base_[s] + static_cast<std::uint32_t>(stats_.shard[s].received);
  }
  for (const std::uint64_t c : buf_congestion_) {
    stats_.max_congestion = std::max(stats_.max_congestion, c);
  }
  stats_.staged = total_staged;
  inbox_offsets[n] = shard_msg_base_[S];

  // Phase B, parallel over destination shards: publish offsets and scatter.
  EpochScheduler::run_partitioned(
      S, w, [&](int /*w*/, std::size_t lo, std::size_t hi) {
        for (std::size_t s = lo; s < hi; ++s) {
          phase_scatter(static_cast<int>(s), inbox_offsets);
        }
      });

  // Clearing a buffer resets its stage-time metadata lazily: stage()
  // reinitializes the sortedness/run tracking on the first push into an
  // empty buffer.
  for (auto& b : bufs_) b.clear();
  for (auto& t : tos_) t.clear();
}

}  // namespace xd::congest

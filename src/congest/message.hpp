#pragma once

/// \file message.hpp
/// The CONGEST message type.
///
/// CONGEST allows each vertex to send one distinct O(log n)-bit message per
/// neighbor per round.  We enforce the size cap *by construction*: a Message
/// is a 32-bit tag plus two 64-bit payload words -- 160 bits, which is
/// O(log n) for every graph this simulator can hold (n <= 2^32).  Anything
/// that cannot be squeezed into a Message must be split across rounds, and
/// the RoundLedger will charge accordingly.

#include <cstdint>
#include <cstring>

#include "graph/graph.hpp"

namespace xd::congest {

/// A single bounded-size message.
///
/// Packed to 4-byte alignment: the kernel moves millions of these through
/// flat staging and inbox arenas per delivery, and dropping the 4 padding
/// bytes after the tag (plus 8 more in Envelope) cuts that memory traffic
/// by a fifth.  x86/ARM handle the unaligned word loads natively; the
/// payload accessors go through memcpy regardless.
struct __attribute__((packed, aligned(4))) Message {
  /// Algorithm-defined discriminator (which sub-protocol this belongs to).
  std::uint32_t tag = 0;
  /// Two machine words of payload.  Fixed size == the model's O(log n) cap.
  std::uint64_t words[2]{0, 0};

  Message() = default;
  Message(std::uint32_t t, std::uint64_t w0, std::uint64_t w1 = 0)
      : tag(t), words{w0, w1} {}

  /// Bit-packs a double into word `i` (diffusion algorithms ship one
  /// fixed-point probability per message; a 64-bit encoding is O(log n)
  /// bits at the paper's precision ε_b >= 1/poly(n)).
  void set_double(int i, double v) {
    static_assert(sizeof(double) == sizeof(std::uint64_t));
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    words[static_cast<std::size_t>(i)] = bits;
  }

  [[nodiscard]] double get_double(int i) const {
    double v;
    const std::uint64_t bits = words[static_cast<std::size_t>(i)];
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  friend bool operator==(const Message&, const Message&) = default;
};

/// A delivered message: payload plus provenance.  Packed like Message.
struct __attribute__((packed, aligned(4))) Envelope {
  VertexId from = 0;  ///< sender
  Message msg;
};

static_assert(sizeof(Message) == 20, "Message must stay 20 bytes packed");
static_assert(sizeof(Envelope) == 24, "Envelope must stay 24 bytes packed");

}  // namespace xd::congest

#include "congest/network.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace xd::congest {

Network::Network(const Graph& graph, RoundLedger& ledger, std::uint64_t seed)
    : graph_(&graph), ledger_(&ledger), inboxes_(graph.num_vertices()) {
  Rng master(seed);
  rngs_.reserve(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    rngs_.push_back(master.fork(v));
  }
}

void Network::send(VertexId from, std::uint32_t slot, const Message& msg) {
  XD_CHECK_MSG(from < graph_->num_vertices(), "bad sender " << from);
  XD_CHECK_MSG(slot < graph_->degree(from),
               "slot " << slot << " out of range for vertex " << from);
  const VertexId to = graph_->neighbors(from)[slot];
  XD_CHECK_MSG(to != from, "cannot send over a self-loop slot");
  // Directed slot index: position of this slot in the global CSR layout.
  // Unique per (from, slot) pair, which is exactly per directed edge use.
  const std::uint32_t directed_slot = graph_->slot_base(from) + slot;
  outbox_.push_back(Staged{from, to, directed_slot, msg});
  ++staged_count_;
}

void Network::send_to(VertexId from, VertexId to, const Message& msg) {
  auto nbrs = graph_->neighbors(from);
  for (std::uint32_t slot = 0; slot < nbrs.size(); ++slot) {
    if (nbrs[slot] == to && to != from) {
      send(from, slot, msg);
      return;
    }
  }
  XD_CHECK_MSG(false, "send_to: {" << from << "," << to << "} is not an edge");
}

std::uint64_t Network::exchange(std::string_view reason) {
  return do_exchange(reason, /*has_override=*/false, 0);
}

std::uint64_t Network::exchange_charging(std::string_view reason,
                                         std::uint64_t rounds_override) {
  return do_exchange(reason, /*has_override=*/true, rounds_override);
}

std::uint64_t Network::do_exchange(std::string_view reason, bool has_override,
                                   std::uint64_t rounds_override) {
  for (auto& inbox : inboxes_) inbox.clear();

  // Congestion = messages per directed slot; rounds = max over slots.
  std::uint64_t max_congestion = 0;
  if (!outbox_.empty()) {
    std::vector<std::uint32_t> slots(outbox_.size());
    for (std::size_t i = 0; i < outbox_.size(); ++i) {
      slots[i] = outbox_[i].directed_slot;
    }
    std::sort(slots.begin(), slots.end());
    std::uint64_t run = 1;
    for (std::size_t i = 1; i < slots.size(); ++i) {
      run = slots[i] == slots[i - 1] ? run + 1 : 1;
      max_congestion = std::max(max_congestion, run);
    }
    max_congestion = std::max<std::uint64_t>(max_congestion, 1);
  }

  for (const Staged& s : outbox_) {
    inboxes_[s.to].push_back(Envelope{s.from, s.msg});
  }
  ledger_->count_messages(outbox_.size());
  outbox_.clear();
  staged_count_ = 0;

  std::uint64_t rounds = std::max<std::uint64_t>(max_congestion, 1);
  if (has_override) {
    XD_CHECK_MSG(max_congestion <= std::max<std::uint64_t>(rounds_override, 1),
                 "exchange_charging: congestion " << max_congestion
                     << " exceeds declared rounds " << rounds_override);
    rounds = rounds_override;
  }
  if (rounds > 0) ledger_->charge(rounds, reason);
  return rounds;
}

void Network::tick(std::uint64_t rounds, std::string_view reason) {
  if (rounds > 0) ledger_->charge(rounds, reason);
}

}  // namespace xd::congest

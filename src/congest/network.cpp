#include "congest/network.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "congest/scheduler.hpp"
#include "util/check.hpp"

namespace xd::congest {

int parse_shard_count(const char* text) {
  XD_CHECK_MSG(text != nullptr, "shard count: null string");
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  XD_CHECK_MSG(end != text, "shard count '" << text << "' is not a number");
  while (*end != '\0' &&
         std::isspace(static_cast<unsigned char>(*end)) != 0) {
    ++end;
  }
  XD_CHECK_MSG(*end == '\0',
               "shard count '" << text << "' has trailing garbage");
  XD_CHECK_MSG(errno != ERANGE && v >= 1 && v <= (1L << 20),
               "shard count " << text << " out of range [1, 2^20]");
  return static_cast<int>(v);
}

Network::Network(const Graph& graph, RoundLedger& ledger, std::uint64_t seed)
    : graph_(&graph),
      ledger_(&ledger),
      inbox_offsets_(graph.num_vertices() + 1, 0),
      cursor_(graph.num_vertices() + 1, 0) {
  Rng master(seed);
  rngs_.reserve(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    rngs_.push_back(master.fork(v));
  }
  // XD_SHARDS > 1 turns the sharded plane on for every network in the
  // process -- how the *_sharded CTest variants re-run whole suites over
  // the plane without touching call sites (docs/sharding.md).
  if (const char* env = std::getenv("XD_SHARDS")) {
    const int s = parse_shard_count(env);
    if (s > 1) set_shards(s);
  }
}

void Network::set_threads(int threads) {
  XD_CHECK_MSG(threads >= 1, "thread count must be >= 1");
  threads_ = threads;
}

void Network::set_shards(int shards) {
  XD_CHECK_MSG(shards >= 1, "shard count must be >= 1");
  XD_CHECK_MSG(staged() == 0,
               "cannot reshard while " << staged() << " messages are staged");
  plane_.configure(*graph_, shards);
}

void Network::stage(detail::StagingBuffer& buf, VertexId from,
                    std::uint32_t slot, const Message& msg) {
  XD_CHECK_MSG(from < graph_->num_vertices(), "bad sender " << from);
  XD_CHECK_MSG(slot < graph_->degree(from),
               "slot " << slot << " out of range for vertex " << from);
  const VertexId to = graph_->neighbors(from)[slot];
  XD_CHECK_MSG(to != from, "cannot send over a self-loop slot");
  // Directed slot index: position of this slot in the global CSR layout.
  // Unique per (from, slot) pair, which is exactly per directed edge use.
  buf.push(graph_->slot_base(from) + slot, from, msg);
}

void Network::stage_to(detail::StagingBuffer& buf, VertexId from, VertexId to,
                       const Message& msg) {
  XD_CHECK_MSG(from < graph_->num_vertices(), "bad sender " << from);
  XD_CHECK_MSG(to != from, "cannot send over a self-loop slot");
  std::uint64_t probes = 0;
  const std::uint32_t slot = graph_->slot_of(from, to, &probes);
  slot_lookup_probes_.fetch_add(probes, std::memory_order_relaxed);
  XD_CHECK_MSG(slot != Graph::kNoSlot,
               "send_to: {" << from << "," << to << "} is not an edge");
  buf.push(graph_->slot_base(from) + slot, from, msg);
}

void Network::stage_sharded(int sender_shard, VertexId from,
                            std::uint32_t slot, const Message& msg) {
  XD_CHECK_MSG(from < graph_->num_vertices(), "bad sender " << from);
  XD_CHECK_MSG(slot < graph_->degree(from),
               "slot " << slot << " out of range for vertex " << from);
  const VertexId to = graph_->neighbors(from)[slot];
  XD_CHECK_MSG(to != from, "cannot send over a self-loop slot");
  plane_.stage(sender_shard, graph_->slot_base(from) + slot, from, msg);
}

void Network::stage_to_sharded(int sender_shard, VertexId from, VertexId to,
                               const Message& msg) {
  XD_CHECK_MSG(from < graph_->num_vertices(), "bad sender " << from);
  XD_CHECK_MSG(to != from, "cannot send over a self-loop slot");
  std::uint64_t probes = 0;
  const std::uint32_t slot = graph_->slot_of(from, to, &probes);
  slot_lookup_probes_.fetch_add(probes, std::memory_order_relaxed);
  XD_CHECK_MSG(slot != Graph::kNoSlot,
               "send_to: {" << from << "," << to << "} is not an edge");
  plane_.stage(sender_shard, graph_->slot_base(from) + slot, from, msg);
}

void Network::send(VertexId from, std::uint32_t slot, const Message& msg) {
  // Sharded, staging aggregates at the sender: records go straight into the
  // sender shard's per-destination buffers (per-sender staging order -- the
  // only order the canonical delivery sort can observe -- is preserved).
  if (plane_.active()) {
    XD_CHECK_MSG(from < graph_->num_vertices(), "bad sender " << from);
    stage_sharded(plane_.shard_of(from), from, slot, msg);
    return;
  }
  stage(outbox_, from, slot, msg);
}

void Network::send_to(VertexId from, VertexId to, const Message& msg) {
  if (plane_.active()) {
    XD_CHECK_MSG(from < graph_->num_vertices(), "bad sender " << from);
    stage_to_sharded(plane_.shard_of(from), from, to, msg);
    return;
  }
  stage_to(outbox_, from, to, msg);
}

std::uint64_t Network::exchange(std::string_view reason) {
  return do_exchange(reason, /*has_override=*/false, 0);
}

std::uint64_t Network::exchange_charging(std::string_view reason,
                                         std::uint64_t rounds_override) {
  return do_exchange(reason, /*has_override=*/true, rounds_override);
}

std::uint64_t Network::do_exchange(std::string_view reason, bool has_override,
                                   std::uint64_t rounds_override) {
  if (plane_.active()) {
    return do_exchange_sharded(reason, has_override, rounds_override);
  }
  const std::size_t n = graph_->num_vertices();
  const std::size_t staged_count = outbox_.size();
  XD_CHECK_MSG(staged_count < (std::uint64_t{1} << 32),
               "too many staged messages for one exchange");

  // Canonical delivery order: ascending (directed slot, staging index).
  // Ties in slot are same-sender re-sends, kept in staging order; distinct
  // senders never share a slot, so the order is independent of how the
  // staging was interleaved across worker buffers.  Both paths below
  // produce exactly this order; they differ only in cost shape.
  const std::uint64_t volume = graph_->volume();
  std::uint64_t max_congestion = 0;
  arena_.resize(staged_count);

  // Fast path: staging order already IS the canonical order (true for
  // every vertex-ascending protocol and for the parallel executor's
  // worker-merge).  One fused pass detects sortedness while computing run
  // congestion and receiver counts; if it survives, one in-order scatter
  // finishes delivery -- no reordering at all.
  bool sorted = true;
  if (staged_count > 0) {
    std::fill(cursor_.begin(), cursor_.end(), 0);
    std::uint64_t run = 0;
    std::uint32_t prev = 0;
    for (std::size_t i = 0; i < staged_count; ++i) {
      const std::uint32_t s = outbox_.slot[i];
      if (i > 0 && s < prev) {
        sorted = false;
        break;
      }
      run = i > 0 && s == prev ? run + 1 : 1;
      max_congestion = std::max(max_congestion, run);
      prev = s;
      ++cursor_[graph_->slot_target(s)];
    }
  }

  if (staged_count > 0 && sorted) {
    // cursor_ holds receiver counts; turn it into running start positions
    // while emitting the CSR offsets.
    inbox_offsets_[0] = 0;
    for (std::size_t v = 0; v < n; ++v) {
      inbox_offsets_[v + 1] = inbox_offsets_[v] + cursor_[v];
      cursor_[v] = inbox_offsets_[v];
    }
    for (std::size_t i = 0; i < staged_count; ++i) {
      // Hint the write-allocate for an upcoming destination; the cursor
      // may advance a little more before we get there, but the line it
      // points at now is almost always the line we will touch.
      if (i + 12 < staged_count) {
        const VertexId ahead = graph_->slot_target(outbox_.slot[i + 12]);
        // A tail-heavy receiver's cursor can already sit at the arena end;
        // clamp so the hint address stays inside (or one past) the
        // allocation instead of indexing out of bounds.
        __builtin_prefetch(
            arena_.data() + std::min<std::size_t>(cursor_[ahead], staged_count),
            1, 0);
      }
      const VertexId to = graph_->slot_target(outbox_.slot[i]);
      arena_[cursor_[to]++] = Envelope{outbox_.from[i], outbox_.msg[i]};
    }
  } else if (staged_count * 16 >= volume) {
    max_congestion = 0;  // discard the aborted fused pass's partial value
    // Dense path: pure counting passes, no sort.  Messages grouped by
    // directed slot are already grouped by receiver through the graph's
    // incoming-slot mirror index, so one O(S) count, one O(volume) offset
    // scan, and one O(S) scatter build the CSR inboxes; the counts array is
    // then bulk-zeroed (a streaming memset is cheaper than re-walking the
    // touched slots).
    if (slot_counts_.size() < volume) slot_counts_.resize(volume, 0);
    for (const std::uint32_t s : outbox_.slot) ++slot_counts_[s];
    std::uint32_t running = 0;
    for (std::size_t v = 0; v < n; ++v) {
      inbox_offsets_[v] = running;
      for (const std::uint32_t s : graph_->incoming_slots(v)) {
        const std::uint32_t c = slot_counts_[s];
        max_congestion = std::max<std::uint64_t>(max_congestion, c);
        // Repurpose the count as this slot's scatter cursor.
        slot_counts_[s] = running;
        running += c;
      }
    }
    inbox_offsets_[n] = running;
    for (std::size_t i = 0; i < staged_count; ++i) {
      arena_[slot_counts_[outbox_.slot[i]]++] =
          Envelope{outbox_.from[i], outbox_.msg[i]};
    }
    std::fill(slot_counts_.begin(), slot_counts_.end(), 0);
  } else {
    max_congestion = 0;  // discard the aborted fused pass's partial value
    // Sparse path: sort packed (slot, index) keys; avoids the O(volume)
    // scans when little traffic is staged.
    sort_keys_.resize(staged_count);
    for (std::size_t i = 0; i < staged_count; ++i) {
      sort_keys_[i] = (std::uint64_t{outbox_.slot[i]} << 32) |
                      static_cast<std::uint32_t>(i);
    }
    std::sort(sort_keys_.begin(), sort_keys_.end());
    std::uint64_t run = 0;
    for (std::size_t i = 0; i < staged_count; ++i) {
      run = i > 0 && (sort_keys_[i] >> 32) == (sort_keys_[i - 1] >> 32)
                ? run + 1
                : 1;
      max_congestion = std::max(max_congestion, run);
    }
    std::fill(inbox_offsets_.begin(), inbox_offsets_.end(), 0);
    for (const std::uint32_t s : outbox_.slot) {
      ++inbox_offsets_[graph_->slot_target(s) + 1];
    }
    for (std::size_t v = 0; v < n; ++v) {
      inbox_offsets_[v + 1] += inbox_offsets_[v];
    }
    std::copy(inbox_offsets_.begin(), inbox_offsets_.end(), cursor_.begin());
    for (std::size_t i = 0; i < staged_count; ++i) {
      const auto idx = static_cast<std::size_t>(sort_keys_[i] & 0xffffffffu);
      const VertexId to = graph_->slot_target(outbox_.slot[idx]);
      arena_[cursor_[to]++] = Envelope{outbox_.from[idx], outbox_.msg[idx]};
    }
  }

  outbox_.clear();
  return finish_exchange(reason, staged_count, max_congestion, has_override,
                         rounds_override);
}

std::uint64_t Network::do_exchange_sharded(std::string_view reason,
                                          bool has_override,
                                          std::uint64_t rounds_override) {
  // All staging entry points route into the plane while it is active (and
  // set_shards refuses pending traffic), so the mixed outbox is empty here.
  const int workers = std::min(std::max(threads_, 1), plane_.shards());
  plane_.deliver(inbox_offsets_, workers);
  const ShardDeliveryStats& st = plane_.last_delivery();
  return finish_exchange(reason, st.staged, st.max_congestion, has_override,
                         rounds_override);
}

std::uint64_t Network::finish_exchange(std::string_view reason,
                                       std::size_t staged_count,
                                       std::uint64_t max_congestion,
                                       bool has_override,
                                       std::uint64_t rounds_override) {
  ledger_->count_messages(staged_count);
  std::uint64_t rounds = std::max<std::uint64_t>(max_congestion, 1);
  if (has_override) {
    XD_CHECK_MSG(max_congestion <= std::max<std::uint64_t>(rounds_override, 1),
                 "exchange_charging: congestion " << max_congestion
                     << " exceeds declared rounds " << rounds_override);
    rounds = rounds_override;
  }
  if (rounds > 0) ledger_->charge(rounds, reason);
  return rounds;
}

std::uint64_t Network::run_round(VertexProgram& program,
                                 std::string_view reason) {
  if (plane_.active()) return run_round_sharded(program, reason);
  const std::size_t n = graph_->num_vertices();
  const int workers =
      static_cast<int>(std::min<std::size_t>(std::max(threads_, 1), n ? n : 1));

  if (workers <= 1) {
    Outbox out(this, &outbox_);
    for (VertexId v = 0; v < n; ++v) {
      out.vertex_ = v;
      program.on_send(v, out);
    }
    const std::uint64_t rounds = do_exchange(reason, false, 0);
    for (VertexId v = 0; v < n; ++v) program.on_receive(v, inbox(v));
    return rounds;
  }

  // Parallel executor: contiguous vertex ranges, one staging buffer per
  // worker, run on the shared pool idiom (EpochScheduler::run_partitioned,
  // which also rethrows the first worker exception after its join barrier).
  // Merging buffers in worker order keeps each sender's messages contiguous
  // and in send order, which is all the canonical delivery sort needs for
  // bit-identical results at any thread count.  Threads are spawned per
  // phase (simple and correct); protocols with thousands of tiny rounds
  // that want a persistent pool should drive phases serially or batch
  // rounds -- revisit if a workload shows the spawn cost.
  worker_bufs_.resize(static_cast<std::size_t>(workers));

  EpochScheduler::run_partitioned(
      n, workers, [&](int w, std::size_t lo, std::size_t hi) {
        auto& buf = worker_bufs_[static_cast<std::size_t>(w)];
        buf.clear();
        Outbox out(this, &buf);
        for (auto v = static_cast<VertexId>(lo); v < hi; ++v) {
          out.vertex_ = v;
          program.on_send(v, out);
        }
      });
  for (auto& buf : worker_bufs_) outbox_.append(buf);

  const std::uint64_t rounds = do_exchange(reason, false, 0);

  EpochScheduler::run_partitioned(
      n, workers, [&](int /*w*/, std::size_t lo, std::size_t hi) {
        for (auto v = static_cast<VertexId>(lo); v < hi; ++v) {
          program.on_receive(v, inbox(v));
        }
      });
  return rounds;
}

std::uint64_t Network::run_round_sharded(VertexProgram& program,
                                         std::string_view reason) {
  const int S = plane_.shards();
  const int workers = std::min(std::max(threads_, 1), S);

  // Send phase: the shard is the partition unit -- each worker runs whole
  // shards, staging through stage_sharded straight into that sender
  // shard's aggregation buffers (rows are disjoint across shards), so
  // which worker runs a shard can never change what gets staged where.
  EpochScheduler::run_partitioned(
      static_cast<std::size_t>(S), workers,
      [&](int /*w*/, std::size_t lo, std::size_t hi) {
        for (std::size_t s = lo; s < hi; ++s) {
          Outbox out(this, nullptr);
          out.shard_ = static_cast<int>(s);
          const auto [vlo, vhi] = plane_.shard_range(static_cast<int>(s));
          for (auto v = static_cast<VertexId>(vlo); v < vhi; ++v) {
            out.vertex_ = v;
            program.on_send(v, out);
          }
        }
      });

  const std::uint64_t rounds = do_exchange(reason, false, 0);

  EpochScheduler::run_partitioned(
      static_cast<std::size_t>(S), workers,
      [&](int /*w*/, std::size_t lo, std::size_t hi) {
        for (std::size_t s = lo; s < hi; ++s) {
          const auto [vlo, vhi] = plane_.shard_range(static_cast<int>(s));
          for (auto v = static_cast<VertexId>(vlo); v < vhi; ++v) {
            program.on_receive(v, inbox(v));
          }
        }
      });
  return rounds;
}

std::uint64_t Network::run_rounds(VertexProgram& program, int rounds,
                                  std::string_view reason) {
  std::uint64_t total = 0;
  for (int r = 0; r < rounds; ++r) total += run_round(program, reason);
  return total;
}

void Network::tick(std::uint64_t rounds, std::string_view reason) {
  if (rounds > 0) ledger_->charge(rounds, reason);
}

// ---------------------------------------------------------------- Outbox --

void Outbox::send(std::uint32_t slot, const Message& msg) {
  if (shard_ >= 0) {
    net_->stage_sharded(shard_, vertex_, slot, msg);
  } else {
    net_->stage(*buf_, vertex_, slot, msg);
  }
}

void Outbox::send_to(VertexId to, const Message& msg) {
  if (shard_ >= 0) {
    net_->stage_to_sharded(shard_, vertex_, to, msg);
  } else {
    net_->stage_to(*buf_, vertex_, to, msg);
  }
}

Rng& Outbox::rng() const { return net_->rng(vertex_); }

}  // namespace xd::congest

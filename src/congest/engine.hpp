#pragma once

/// \file engine.hpp
/// The batched round-engine programming model.
///
/// A VertexProgram expresses one round-synchronous protocol step as two
/// phases, executed by Network::run_round:
///
///   1. send phase    -- on_send(v, outbox) runs for every vertex and stages
///                       messages; it may READ any shared state but must not
///                       write state another vertex's on_send reads;
///   2. delivery      -- all staged messages are delivered at once (flat
///                       CSR inboxes, canonical directed-slot order) and the
///                       ledger is charged max-edge-congestion rounds;
///   3. receive phase -- on_receive(v, inbox) runs for every vertex and
///                       folds its deliveries; it may only WRITE state owned
///                       by v (its own array entries), which is what makes
///                       the phase safe to run on any number of threads.
///
/// The split mirrors the stage/exchange/fold shape every protocol in this
/// library already had, and is what makes the opt-in thread-parallel
/// executor (Network::set_threads) deterministic: phases are data-parallel
/// over vertices, the barrier between them is the exchange itself, and
/// delivery order is canonicalized by directed slot before inboxes are
/// built, so results are bit-identical across thread counts.  See
/// docs/engine.md for the full determinism contract.  One level up,
/// scheduler.hpp applies the same contract across whole networks: disjoint
/// components of a decomposition level run as concurrent work items, each
/// charging a forked ledger branch (joined by max -- docs/rounds.md).

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "congest/message.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace xd::congest {

class Network;

namespace detail {

/// Staged messages, structure-of-arrays: the delivery passes that only need
/// routing information (congestion counting, canonical ordering) stream the
/// 4-byte slot array instead of dragging full message payloads through the
/// cache.  The receiver is not stored -- it is the slot's target in the CSR
/// (Graph::slot_target), and the sender is kept for Envelope provenance.
struct StagingBuffer {
  std::vector<std::uint32_t> slot;  ///< global directed slot per message
  std::vector<VertexId> from;       ///< sender per message
  std::vector<Message> msg;         ///< payload per message

  [[nodiscard]] std::size_t size() const { return slot.size(); }
  void clear() {
    slot.clear();
    from.clear();
    msg.clear();
  }
  void push(std::uint32_t s, VertexId f, const Message& m) {
    slot.push_back(s);
    from.push_back(f);
    msg.push_back(m);
  }
  void append(const StagingBuffer& other) {
    slot.insert(slot.end(), other.slot.begin(), other.slot.end());
    from.insert(from.end(), other.from.begin(), other.from.end());
    msg.insert(msg.end(), other.msg.begin(), other.msg.end());
  }
};

}  // namespace detail

/// Per-vertex staging handle passed to VertexProgram::on_send.  Writes go to
/// an executor-owned buffer (one per worker thread), so staging is safe and
/// allocation-free on the hot path.
class Outbox {
 public:
  /// Stage a message over adjacency slot `slot` of the current vertex.
  void send(std::uint32_t slot, const Message& msg);

  /// Stage a message to neighbor `to`; O(log deg) via the graph's
  /// neighbor->slot index.
  void send_to(VertexId to, const Message& msg);

  /// The vertex this handle currently stages for.
  [[nodiscard]] VertexId vertex() const { return vertex_; }

  /// The current vertex's private random stream.
  [[nodiscard]] Rng& rng() const;

 private:
  friend class Network;
  Outbox(Network* net, detail::StagingBuffer* buf) : net_(net), buf_(buf) {}

  Network* net_;
  detail::StagingBuffer* buf_;
  VertexId vertex_ = 0;
  /// Sender shard when the executor runs the sharded plane (>= 0): sends
  /// route straight into that shard's aggregation buffers instead of buf_.
  int shard_ = -1;
};

/// One round-synchronous protocol step, run by Network::run_round.
class VertexProgram {
 public:
  virtual ~VertexProgram() = default;

  /// Send phase: stage this round's messages from v.  May read shared
  /// state; must not write state other vertices' on_send calls read.
  virtual void on_send(VertexId v, Outbox& out) = 0;

  /// Receive phase: fold the messages delivered to v this round.  May only
  /// write state owned by v.
  virtual void on_receive(VertexId v, std::span<const Envelope> inbox) = 0;
};

/// Adapter so protocols can pass two lambdas instead of subclassing.
template <class SendFn, class ReceiveFn>
class LambdaProgram final : public VertexProgram {
 public:
  LambdaProgram(SendFn send, ReceiveFn receive)
      : send_(std::move(send)), receive_(std::move(receive)) {}

  void on_send(VertexId v, Outbox& out) override { send_(v, out); }
  void on_receive(VertexId v, std::span<const Envelope> inbox) override {
    receive_(v, inbox);
  }

 private:
  SendFn send_;
  ReceiveFn receive_;
};

template <class SendFn, class ReceiveFn>
LambdaProgram<SendFn, ReceiveFn> make_program(SendFn send, ReceiveFn receive) {
  return LambdaProgram<SendFn, ReceiveFn>(std::move(send), std::move(receive));
}

}  // namespace xd::congest

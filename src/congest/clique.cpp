#include "congest/clique.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace xd::congest {

CliqueNetwork::CliqueNetwork(std::size_t n, RoundLedger& ledger)
    : n_(n), ledger_(&ledger), inbox_offsets_(n + 1, 0), cursor_(n + 1, 0) {}

void CliqueNetwork::send(VertexId from, VertexId to, const Message& msg) {
  XD_CHECK(from < n_ && to < n_);
  XD_CHECK_MSG(from != to, "clique self-sends are local computation");
  outbox_.push_back(Staged{from, to, msg});
}

std::size_t CliqueNetwork::deliver() {
  const std::size_t count = outbox_.size();
  XD_CHECK_MSG(count < (std::uint64_t{1} << 32),
               "too many staged messages for one exchange");
  std::fill(inbox_offsets_.begin(), inbox_offsets_.end(), 0);
  for (const Staged& s : outbox_) ++inbox_offsets_[s.to + 1];
  for (std::size_t v = 0; v < n_; ++v) {
    inbox_offsets_[v + 1] += inbox_offsets_[v];
  }
  arena_.resize(count);
  std::copy(inbox_offsets_.begin(), inbox_offsets_.end(), cursor_.begin());
  for (const Staged& s : outbox_) {
    arena_[cursor_[s.to]++] = Envelope{s.from, s.msg};
  }
  ledger_->count_messages(count);
  outbox_.clear();
  return count;
}

std::uint64_t CliqueNetwork::exchange_lenzen(std::string_view reason) {
  std::vector<std::uint64_t> sent(n_, 0);
  std::vector<std::uint64_t> received(n_, 0);
  for (const Staged& s : outbox_) {
    ++sent[s.from];
    ++received[s.to];
  }
  std::uint64_t worst = 0;
  for (std::size_t v = 0; v < n_; ++v) {
    worst = std::max(worst, std::max(sent[v], received[v]));
  }
  const std::uint64_t unit = std::max<std::size_t>(n_ - 1, 1);
  const std::uint64_t rounds = std::max<std::uint64_t>(
      (worst + unit - 1) / unit, 1);

  deliver();
  ledger_->charge(rounds, reason);
  return rounds;
}

std::uint64_t CliqueNetwork::exchange(std::string_view reason) {
  std::uint64_t max_congestion = 0;
  if (!outbox_.empty()) {
    std::vector<std::uint64_t> pairs(outbox_.size());
    for (std::size_t i = 0; i < outbox_.size(); ++i) {
      pairs[i] = (static_cast<std::uint64_t>(outbox_[i].from) << 32) |
                 outbox_[i].to;
    }
    std::sort(pairs.begin(), pairs.end());
    std::uint64_t run = 1;
    max_congestion = 1;
    for (std::size_t i = 1; i < pairs.size(); ++i) {
      run = pairs[i] == pairs[i - 1] ? run + 1 : 1;
      max_congestion = std::max(max_congestion, run);
    }
  }

  deliver();

  const std::uint64_t rounds = std::max<std::uint64_t>(max_congestion, 1);
  ledger_->charge(rounds, reason);
  return rounds;
}

}  // namespace xd::congest

#include "congest/ledger.hpp"

#include <sstream>

#include "util/check.hpp"

namespace xd::congest {

void RoundLedger::charge(std::uint64_t rounds, std::string_view reason) {
  rounds_ += rounds;
  by_reason_[std::string(reason)] += rounds;
}

std::uint64_t RoundLedger::rounds_for(std::string_view reason) const {
  const auto it = by_reason_.find(std::string(reason));
  return it == by_reason_.end() ? 0 : it->second;
}

RoundLedger& RoundLedger::fork() {
  children_.push_back(std::make_unique<RoundLedger>());
  return *children_.back();
}

void RoundLedger::join() {
  if (children_.empty()) return;
  std::uint64_t max_rounds = 0;
  std::uint64_t sum_messages = 0;
  std::map<std::string, std::uint64_t> label_max;
  for (const auto& child : children_) {
    child->join();  // nested forks resolve bottom-up
    max_rounds = std::max(max_rounds, child->rounds_);
    sum_messages += child->messages_;
    for (const auto& [label, rounds] : child->by_reason_) {
      auto& slot = label_max[label];
      slot = std::max(slot, rounds);
    }
  }
  rounds_ += max_rounds;
  messages_ += sum_messages;
  for (const auto& [label, rounds] : label_max) by_reason_[label] += rounds;
  children_.clear();
}

void RoundLedger::absorb(const RoundLedger& other) {
  XD_CHECK_MSG(other.children_.empty(),
               "absorb: other ledger still has " << other.children_.size()
                                                 << " unjoined forks");
  rounds_ += other.rounds_;
  messages_ += other.messages_;
  for (const auto& [label, rounds] : other.by_reason_) {
    by_reason_[label] += rounds;
  }
}

std::string RoundLedger::report() const {
  std::ostringstream os;
  os << "rounds=" << rounds_ << " messages=" << messages_ << "\n";
  for (const auto& [label, rounds] : by_reason_) {
    os << "  " << label << ": " << rounds << "\n";
  }
  return os.str();
}

void RoundLedger::reset() {
  rounds_ = 0;
  messages_ = 0;
  by_reason_.clear();
  children_.clear();
}

}  // namespace xd::congest

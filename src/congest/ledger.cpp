#include "congest/ledger.hpp"

#include <sstream>

namespace xd::congest {

void RoundLedger::charge(std::uint64_t rounds, std::string_view reason) {
  rounds_ += rounds;
  by_reason_[std::string(reason)] += rounds;
}

std::uint64_t RoundLedger::rounds_for(std::string_view reason) const {
  const auto it = by_reason_.find(std::string(reason));
  return it == by_reason_.end() ? 0 : it->second;
}

std::string RoundLedger::report() const {
  std::ostringstream os;
  os << "rounds=" << rounds_ << " messages=" << messages_ << "\n";
  for (const auto& [label, rounds] : by_reason_) {
    os << "  " << label << ": " << rounds << "\n";
  }
  return os.str();
}

void RoundLedger::reset() {
  rounds_ = 0;
  messages_ = 0;
  by_reason_.clear();
}

}  // namespace xd::congest

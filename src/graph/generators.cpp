#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "util/check.hpp"

namespace xd::gen {

Graph path(std::size_t n) {
  XD_CHECK(n >= 1);
  GraphBuilder b(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    b.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(i + 1));
  }
  return b.build();
}

Graph cycle(std::size_t n) {
  XD_CHECK(n >= 3);
  GraphBuilder b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b.add_edge(static_cast<VertexId>(i), static_cast<VertexId>((i + 1) % n));
  }
  return b.build();
}

Graph complete(std::size_t n) {
  GraphBuilder b(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      b.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(j));
    }
  }
  return b.build();
}

Graph star(std::size_t n) {
  XD_CHECK(n >= 2);
  GraphBuilder b(n);
  for (std::size_t i = 1; i < n; ++i) b.add_edge(0, static_cast<VertexId>(i));
  return b.build();
}

Graph grid(std::size_t rows, std::size_t cols, bool wrap) {
  XD_CHECK(rows >= 1 && cols >= 1);
  GraphBuilder b(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<VertexId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  if (wrap) {
    // Wrap edges only when they are not already present (size >= 3).
    if (cols >= 3) {
      for (std::size_t r = 0; r < rows; ++r) b.add_edge(id(r, cols - 1), id(r, 0));
    }
    if (rows >= 3) {
      for (std::size_t c = 0; c < cols; ++c) b.add_edge(id(rows - 1, c), id(0, c));
    }
  }
  return b.build();
}

Graph hypercube(int dim) {
  XD_CHECK(dim >= 1 && dim < 26);
  const std::size_t n = std::size_t{1} << dim;
  GraphBuilder b(n);
  for (std::size_t v = 0; v < n; ++v) {
    for (int bit = 0; bit < dim; ++bit) {
      const std::size_t u = v ^ (std::size_t{1} << bit);
      if (u > v) b.add_edge(static_cast<VertexId>(v), static_cast<VertexId>(u));
    }
  }
  return b.build();
}

Graph binary_tree(int depth) {
  XD_CHECK(depth >= 0 && depth < 30);
  const std::size_t n = (std::size_t{1} << (depth + 1)) - 1;
  GraphBuilder b(n);
  for (std::size_t v = 1; v < n; ++v) {
    b.add_edge(static_cast<VertexId>(v), static_cast<VertexId>((v - 1) / 2));
  }
  return b.build();
}

Graph gnp(std::size_t n, double p, Rng& rng) {
  XD_CHECK(p >= 0.0 && p <= 1.0);
  GraphBuilder b(n);
  if (p <= 0.0) return b.build();
  if (p >= 1.0) return complete(n);
  // Batagelj–Brandes geometric skipping: O(m) instead of O(n^2).
  const double log_q = std::log1p(-p);
  std::size_t v = 1;
  std::ptrdiff_t w = -1;
  while (v < n) {
    const double r = rng.next_double();
    const auto skip =
        static_cast<std::ptrdiff_t>(std::floor(std::log1p(-r) / log_q));
    w += 1 + skip;
    while (w >= static_cast<std::ptrdiff_t>(v) && v < n) {
      w -= static_cast<std::ptrdiff_t>(v);
      ++v;
    }
    if (v < n) {
      b.add_edge(static_cast<VertexId>(v), static_cast<VertexId>(w));
    }
  }
  return b.build();
}

Graph random_regular(std::size_t n, int d, Rng& rng) {
  XD_CHECK(d >= 1 && static_cast<std::size_t>(d) < n);
  XD_CHECK_MSG((n * static_cast<std::size_t>(d)) % 2 == 0,
               "n*d must be even for a d-regular graph");
  // Pairing model followed by edge-swap repair of loops and duplicates
  // (full restarts need e^{Θ(d²)} attempts; local swaps converge fast and
  // preserve the degree sequence exactly).
  std::vector<VertexId> stubs;
  stubs.reserve(n * static_cast<std::size_t>(d));
  for (std::size_t v = 0; v < n; ++v) {
    for (int i = 0; i < d; ++i) stubs.push_back(static_cast<VertexId>(v));
  }
  for (std::size_t i = stubs.size(); i > 1; --i) {
    std::swap(stubs[i - 1], stubs[rng.next_below(i)]);
  }
  const std::size_t m = stubs.size() / 2;
  std::vector<std::pair<VertexId, VertexId>> edges(m);
  std::set<std::pair<VertexId, VertexId>> seen;
  auto canon = [](VertexId a, VertexId b) {
    return std::make_pair(std::min(a, b), std::max(a, b));
  };
  std::vector<std::size_t> bad;  // loop or duplicate edge indices
  std::vector<char> is_bad(m, 0);
  for (std::size_t i = 0; i < m; ++i) {
    edges[i] = {stubs[2 * i], stubs[2 * i + 1]};
    const auto& [u, v] = edges[i];
    if (u == v || !seen.insert(canon(u, v)).second) {
      bad.push_back(i);
      is_bad[i] = 1;
    }
  }
  std::size_t guard = 0;
  while (!bad.empty()) {
    XD_CHECK_MSG(++guard < 100 * m + 10000,
                 "random_regular: swap repair did not converge (n="
                     << n << ", d=" << d << ")");
    const std::size_t i = bad.back();
    const std::size_t j = rng.next_below(m);
    // Only swap against a currently-good partner so `seen` bookkeeping
    // stays exact (a duplicate bad edge shares its canon with a good twin).
    if (i == j || is_bad[j]) continue;
    auto [a, b2] = edges[i];
    auto [c, e] = edges[j];
    if (a == c || b2 == e) continue;
    const auto n1 = canon(a, c);
    const auto n2 = canon(b2, e);
    if (n1 == n2 || seen.count(n1) || seen.count(n2)) continue;
    // Commit: remove j's old edge, insert the two new ones.
    seen.erase(canon(c, e));
    seen.insert(n1);
    seen.insert(n2);
    edges[i] = {a, c};
    edges[j] = {b2, e};
    is_bad[i] = 0;
    bad.pop_back();
  }
  GraphBuilder b(n);
  for (const auto& [u, v] : edges) b.add_edge(u, v);
  return b.build();
}

Graph barbell(std::size_t k, std::size_t bridge_len) {
  XD_CHECK(k >= 2);
  const std::size_t n = 2 * k + bridge_len;
  GraphBuilder b(n);
  auto clique = [&](std::size_t base) {
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = i + 1; j < k; ++j) {
        b.add_edge(static_cast<VertexId>(base + i),
                   static_cast<VertexId>(base + j));
      }
    }
  };
  clique(0);
  clique(k + bridge_len);
  // Path through bridge vertices k .. k+bridge_len-1.
  VertexId prev = static_cast<VertexId>(k - 1);
  for (std::size_t i = 0; i < bridge_len; ++i) {
    const auto mid = static_cast<VertexId>(k + i);
    b.add_edge(prev, mid);
    prev = mid;
  }
  b.add_edge(prev, static_cast<VertexId>(k + bridge_len));
  return b.build();
}

Graph dumbbell_expanders(std::size_t n1, std::size_t n2, int d,
                         std::size_t bridge_edges, Rng& rng) {
  XD_CHECK(bridge_edges >= 1);
  Rng r1 = rng.fork(1);
  Rng r2 = rng.fork(2);
  const Graph g1 = random_regular(n1, d, r1);
  const Graph g2 = random_regular(n2, d, r2);
  GraphBuilder b(n1 + n2, /*allow_parallel=*/false);
  for (EdgeId e = 0; e < g1.num_edges(); ++e) {
    const auto [u, v] = g1.edge(e);
    b.add_edge(u, v);
  }
  for (EdgeId e = 0; e < g2.num_edges(); ++e) {
    const auto [u, v] = g2.edge(e);
    b.add_edge(static_cast<VertexId>(u + n1), static_cast<VertexId>(v + n1));
  }
  std::set<std::pair<VertexId, VertexId>> used;
  std::size_t added = 0;
  while (added < bridge_edges) {
    const auto u = static_cast<VertexId>(rng.next_below(n1));
    const auto v = static_cast<VertexId>(n1 + rng.next_below(n2));
    if (used.emplace(u, v).second) {
      b.add_edge(u, v);
      ++added;
    }
  }
  return b.build();
}

Graph planted_partition(std::size_t n, int blocks, double p_in, double p_out,
                        Rng& rng) {
  XD_CHECK(blocks >= 1);
  GraphBuilder b(n);
  auto block_of = [&](std::size_t v) {
    return static_cast<int>(v * static_cast<std::size_t>(blocks) / n);
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double p = block_of(i) == block_of(j) ? p_in : p_out;
      if (rng.next_bool(p)) {
        b.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(j));
      }
    }
  }
  return b.build();
}

Graph clique_chain(std::size_t count, std::size_t k) {
  XD_CHECK(count >= 1 && k >= 2);
  const std::size_t n = count * k;
  GraphBuilder b(n);
  for (std::size_t c = 0; c < count; ++c) {
    const std::size_t base = c * k;
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = i + 1; j < k; ++j) {
        b.add_edge(static_cast<VertexId>(base + i),
                   static_cast<VertexId>(base + j));
      }
    }
    if (c + 1 < count) {
      b.add_edge(static_cast<VertexId>(base + k - 1),
                 static_cast<VertexId>(base + k));
    }
  }
  return b.build();
}

Graph lollipop(std::size_t k, std::size_t tail) {
  XD_CHECK(k >= 2);
  GraphBuilder b(k + tail);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      b.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(j));
    }
  }
  VertexId prev = static_cast<VertexId>(k - 1);
  for (std::size_t i = 0; i < tail; ++i) {
    const auto next = static_cast<VertexId>(k + i);
    b.add_edge(prev, next);
    prev = next;
  }
  return b.build();
}

Graph ring_of_cliques(std::size_t count, std::size_t k) {
  XD_CHECK(count >= 3 && k >= 2);
  GraphBuilder b(count * k);
  for (std::size_t c = 0; c < count; ++c) {
    const std::size_t base = c * k;
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = i + 1; j < k; ++j) {
        b.add_edge(static_cast<VertexId>(base + i),
                   static_cast<VertexId>(base + j));
      }
    }
    const std::size_t next_base = ((c + 1) % count) * k;
    b.add_edge(static_cast<VertexId>(base + k - 1),
               static_cast<VertexId>(next_base));
  }
  return b.build();
}

Graph watts_strogatz(std::size_t n, int k, double p, Rng& rng) {
  XD_CHECK(k >= 1 && static_cast<std::size_t>(2 * k) < n);
  XD_CHECK(p >= 0.0 && p <= 1.0);
  // Ring lattice edges (i, i+d) for d = 1..k, each rewired to a uniform
  // non-duplicate target with probability p.
  std::set<std::pair<VertexId, VertexId>> edges;
  auto canon = [](VertexId a, VertexId b2) {
    return std::make_pair(std::min(a, b2), std::max(a, b2));
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (int d = 1; d <= k; ++d) {
      edges.insert(canon(static_cast<VertexId>(i),
                         static_cast<VertexId>((i + static_cast<std::size_t>(d)) % n)));
    }
  }
  std::vector<std::pair<VertexId, VertexId>> rewired(edges.begin(), edges.end());
  for (auto& [u, v] : rewired) {
    if (!rng.next_bool(p)) continue;
    for (int attempt = 0; attempt < 64; ++attempt) {
      const auto w = static_cast<VertexId>(rng.next_below(n));
      if (w == u || w == v) continue;
      const auto cand = canon(u, w);
      if (edges.count(cand)) continue;
      edges.erase(canon(u, v));
      edges.insert(cand);
      v = w;
      break;
    }
  }
  GraphBuilder b(n);
  for (const auto& [u, v] : edges) b.add_edge(u, v);
  return b.build();
}

Graph preferential_attachment(std::size_t n, int attach, Rng& rng) {
  XD_CHECK(attach >= 1);
  XD_CHECK(n > static_cast<std::size_t>(attach));
  GraphBuilder b(n);
  // Degree-proportional sampling via the repeated-endpoints trick.
  std::vector<VertexId> endpoint_pool;
  // Seed: clique on attach+1 vertices.
  for (int i = 0; i <= attach; ++i) {
    for (int j = i + 1; j <= attach; ++j) {
      b.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(j));
      endpoint_pool.push_back(static_cast<VertexId>(i));
      endpoint_pool.push_back(static_cast<VertexId>(j));
    }
  }
  for (std::size_t v = static_cast<std::size_t>(attach) + 1; v < n; ++v) {
    std::set<VertexId> targets;
    while (targets.size() < static_cast<std::size_t>(attach)) {
      targets.insert(endpoint_pool[rng.next_below(endpoint_pool.size())]);
    }
    for (VertexId t : targets) {
      b.add_edge(static_cast<VertexId>(v), t);
      endpoint_pool.push_back(static_cast<VertexId>(v));
      endpoint_pool.push_back(t);
    }
  }
  return b.build();
}

}  // namespace xd::gen

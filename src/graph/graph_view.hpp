#pragma once

/// \file graph_view.hpp
/// Zero-copy G{U} overlays: the decomposition's working graph without the
/// per-level CSR rebuild.
///
/// The Chang–Saranurak discipline never changes a vertex's degree: a
/// removed edge leaves a self-loop at both endpoints, and G{U} replaces
/// each boundary edge of U by a self-loop.  A GraphView exploits exactly
/// that invariant: it keeps the *ambient* CSR untouched and overlays
///
///   * an active-vertex set U (sorted ambient ids + membership bitmap), and
///   * an optional removed-edge bitmap indexed by ambient EdgeId,
///
/// and computes the loop substitution on the fly -- a *masked* slot (edge
/// removed, or neighbor outside U) simply reads as a self-loop at its
/// owner.  Degrees, slot counts, and therefore all volumes match the
/// ambient graph by construction; no neighbor array is rewritten, no
/// sorted-neighbor index rebuilt, no edge table copied.
///
/// Vertex and edge ids are ambient ids throughout -- there is no
/// renumbering, so results (cuts, components, removals) need no provenance
/// mapping back.  Construction costs one O(Vol(U)) scan (for the edge
/// counts) plus an O(n)-byte bitmap; compare O(Vol · log deg) allocation
/// and sorting for a materialized copy.
///
/// Materialization still exists, but only where a dense renumbering
/// genuinely pays for itself -- the CONGEST Network / engine boundary and
/// the routing structures -- via explicit materialize() (G{U}, loop
/// substitution) or materialize_induced() (plain G[U]), both returning the
/// provenance-carrying LiveSubgraph.
///
/// Lifetimes: a view *borrows* its ambient graph, its removed overlay, and
/// nothing else; both must outlive the view (the CI AddressSanitizer job
/// exists to catch violations).  Mutating the removed overlay invalidates
/// the view's cached edge counts -- build a fresh view instead.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/access.hpp"
#include "graph/graph.hpp"
#include "graph/subgraph.hpp"
#include "graph/vertex_set.hpp"

namespace xd {

class GraphView {
 public:
  GraphView() = default;

  /// Whole-graph view: every vertex active, nothing removed.
  explicit GraphView(const Graph& ambient)
      : GraphView(ambient, nullptr, VertexSet::all(ambient.num_vertices())) {}

  /// G{U} of (ambient minus removed).  `removed` is indexed by ambient
  /// EdgeId (nullptr = no removals; ambient self-loops must never be
  /// flagged); `u` holds ambient vertex ids.
  GraphView(const Graph& ambient, const std::vector<char>* removed,
            VertexSet u);

  [[nodiscard]] const Graph& ambient() const { return *g_; }
  [[nodiscard]] const std::vector<char>* removed_overlay() const {
    return removed_;
  }

  /// Ambient id-space size (arrays indexed by VertexId use this), NOT the
  /// active count -- see num_active().
  [[nodiscard]] std::size_t num_vertices() const { return g_->num_vertices(); }
  [[nodiscard]] std::size_t num_active() const { return active_.size(); }

  /// The active vertices, ascending.
  [[nodiscard]] std::span<const VertexId> vertices() const {
    return active_.ids();
  }
  [[nodiscard]] const VertexSet& active_set() const { return active_; }
  [[nodiscard]] bool active(VertexId v) const { return mask_[v] != 0; }

  /// deg_{G{U}}(v) == deg_ambient(v) for active v (the paper's invariant);
  /// 0 for inactive v, so degree-weighted scans over the ambient id space
  /// skip them naturally.
  [[nodiscard]] std::uint32_t degree(VertexId v) const {
    return mask_[v] ? g_->degree(v) : 0;
  }

  /// Vol(U) under ambient degrees (== the materialized G{U} volume).
  [[nodiscard]] std::uint64_t volume() const { return volume_; }

  /// The paper's |E| of G{U}: surviving non-loop edges + ambient loops of
  /// active vertices + one substitution loop per masked slot.
  [[nodiscard]] std::size_t num_edges() const {
    return static_cast<std::size_t>(volume_) - live_nonloop_;
  }
  [[nodiscard]] std::size_t num_nonloop_edges() const { return live_nonloop_; }
  [[nodiscard]] std::size_t num_loops() const {
    return num_edges() - live_nonloop_;
  }

  /// Loop slots at v under substitution (ambient loops + masked slots).
  /// O(deg v), like Graph::loops_at.
  [[nodiscard]] std::uint32_t loops_at(VertexId v) const;

  /// Lazily-masked neighbor list of v in ambient slot order: a masked slot
  /// yields v itself (the substitution loop), a live slot yields the
  /// ambient neighbor.  Empty for inactive v.
  class NeighborRange;
  [[nodiscard]] NeighborRange neighbors(VertexId v) const;

  /// Visits every surviving non-loop edge once as fn(ambient edge id, u, v)
  /// with u < v, in (u ascending, slot) order -- the same sequence in which
  /// a materialized G{U} numbers its non-loop edges.
  template <typename Fn>
  void for_each_live_edge(Fn&& fn) const {
    for (const VertexId u : active_) {
      const auto nbrs = g_->neighbors(u);
      const auto eids = g_->incident_edges(u);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const VertexId w = nbrs[i];
        if (w > u && mask_[w] && !is_removed(eids[i])) fn(eids[i], u, w);
      }
    }
  }

  /// Visits v's surviving non-loop incident edges as fn(ambient edge id,
  /// neighbor), slot order.
  template <typename Fn>
  void for_each_live_incident(VertexId v, Fn&& fn) const {
    if (!mask_[v]) return;
    const auto nbrs = g_->neighbors(v);
    const auto eids = g_->incident_edges(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId w = nbrs[i];
      if (w != v && mask_[w] && !is_removed(eids[i])) fn(eids[i], w);
    }
  }

  /// Materializes G{U} as a renumbered CSR with provenance maps --
  /// bit-identical to live_subgraph(ambient, removed, U).  The *only*
  /// sanctioned copy points are the Network/engine boundary (a dense
  /// renumbering pays for itself there) and sub-n oracle math.
  [[nodiscard]] LiveSubgraph materialize() const;

  /// Materializes the plain induced G[U]: masked slots are dropped instead
  /// of looped (boundary degrees shrink).  Bit-identical to
  /// induced_subgraph(ambient, U) when the view has no removed overlay.
  /// Routing structures want this topology.
  [[nodiscard]] LiveSubgraph materialize_induced() const;

  /// Narrowed view over the same ambient graph and overlay; `u` must be a
  /// subset of this view's active set (ambient ids).
  [[nodiscard]] GraphView restricted(VertexSet u) const {
    return GraphView(*g_, removed_, std::move(u));
  }

 private:
  [[nodiscard]] bool is_removed(EdgeId e) const {
    return removed_ != nullptr && (*removed_)[e] != 0;
  }

  const Graph* g_ = nullptr;
  const std::vector<char>* removed_ = nullptr;  ///< borrowed; may be null
  VertexSet active_;
  std::vector<char> mask_;        ///< active bitmap, ambient-indexed
  std::uint64_t volume_ = 0;      ///< Σ ambient degrees over active
  std::size_t live_nonloop_ = 0;  ///< surviving non-loop edges
};

/// Lazily-masked neighbor span (see GraphView::neighbors).
class GraphView::NeighborRange {
 public:
  NeighborRange(const GraphView& view, VertexId v,
                std::span<const VertexId> nbrs, std::span<const EdgeId> eids)
      : view_(&view), v_(v), nbrs_(nbrs), eids_(eids) {}

  [[nodiscard]] std::size_t size() const { return nbrs_.size(); }

  [[nodiscard]] VertexId operator[](std::size_t i) const {
    const VertexId w = nbrs_[i];
    if (w == v_ || !view_->active(w) || view_->is_removed(eids_[i])) return v_;
    return w;
  }

  class iterator {
   public:
    using value_type = VertexId;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::input_iterator_tag;

    iterator() = default;
    iterator(const NeighborRange* r, std::size_t i) : r_(r), i_(i) {}
    VertexId operator*() const { return (*r_)[i_]; }
    iterator& operator++() {
      ++i_;
      return *this;
    }
    iterator operator++(int) {
      iterator t = *this;
      ++i_;
      return t;
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.r_ == b.r_ && a.i_ == b.i_;
    }

   private:
    const NeighborRange* r_ = nullptr;
    std::size_t i_ = 0;
  };

  [[nodiscard]] iterator begin() const { return {this, 0}; }
  [[nodiscard]] iterator end() const { return {this, nbrs_.size()}; }

 private:
  const GraphView* view_;
  VertexId v_;
  std::span<const VertexId> nbrs_;
  std::span<const EdgeId> eids_;
};

inline GraphView::NeighborRange GraphView::neighbors(VertexId v) const {
  if (!mask_[v]) return NeighborRange(*this, v, {}, {});
  return NeighborRange(*this, v, g_->neighbors(v), g_->incident_edges(v));
}

static_assert(GraphAccess<GraphView>);

/// The generic "G{W} of g" used by restart loops (Partition): for a Graph it
/// opens a fresh view, for a GraphView it narrows (same ambient, same
/// overlay).  Either way the result is a GraphView and no CSR is built.
[[nodiscard]] inline GraphView restrict_view(const Graph& g, VertexSet w) {
  return GraphView(g, nullptr, std::move(w));
}
[[nodiscard]] inline GraphView restrict_view(const GraphView& g, VertexSet w) {
  return g.restricted(std::move(w));
}

}  // namespace xd

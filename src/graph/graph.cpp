#include "graph/graph.hpp"

#include <algorithm>
#include <atomic>
#include <unordered_set>

#include "util/check.hpp"

namespace xd {

std::uint32_t Graph::loops_at(VertexId v) const {
  std::uint32_t loops = 0;
  for (VertexId u : neighbors(v)) {
    if (u == v) ++loops;
  }
  return loops;
}

bool Graph::has_edge(VertexId u, VertexId v) const {
  XD_CHECK(u != v);
  // Search from the lower-degree endpoint's sorted-neighbor index; slot_of
  // is the one binary-search helper both lookups share.
  const VertexId probe = degree(u) <= degree(v) ? u : v;
  return slot_of(probe, probe == u ? v : u) != kNoSlot;
}

std::uint32_t Graph::slot_of(VertexId u, VertexId v, std::uint64_t* probes) const {
  XD_CHECK_MSG(u != v, "slot_of is for non-loop neighbors");
  // Binary search the neighbor-sorted slot permutation of u; on parallel
  // edges the (neighbor, slot) sort order guarantees the first hit is the
  // smallest slot.
  std::uint32_t lo = offsets_[u];
  std::uint32_t hi = offsets_[u + 1];
  while (lo < hi) {
    if (probes != nullptr) ++*probes;
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (sorted_nbrs_[mid] < v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == offsets_[u + 1] || sorted_nbrs_[lo] != v) return kNoSlot;
  return sorted_slots_[lo];
}

std::uint32_t Graph::max_degree() const {
  std::uint32_t best = 0;
  for (VertexId v = 0; v < num_vertices(); ++v) best = std::max(best, degree(v));
  return best;
}

GraphBuilder::GraphBuilder(std::size_t n, bool allow_parallel)
    : n_(n), allow_parallel_(allow_parallel) {}

GraphBuilder& GraphBuilder::add_edge(VertexId u, VertexId v) {
  XD_CHECK_MSG(u < n_ && v < n_, "edge (" << u << "," << v << ") out of range n=" << n_);
  us_.push_back(u);
  vs_.push_back(v);
  return *this;
}

GraphBuilder& GraphBuilder::add_loops(VertexId v, std::uint32_t count) {
  for (std::uint32_t i = 0; i < count; ++i) add_edge(v, v);
  return *this;
}

Graph Graph_build_impl(std::size_t n, bool allow_parallel,
                       const std::vector<VertexId>& us,
                       const std::vector<VertexId>& vs);

namespace {
std::atomic<std::uint64_t> g_total_builds{0};
}  // namespace

std::uint64_t GraphBuilder::total_builds() {
  return g_total_builds.load(std::memory_order_relaxed);
}

Graph GraphBuilder::build() const {
  g_total_builds.fetch_add(1, std::memory_order_relaxed);
  Graph g;
  const std::size_t m = us_.size();
  g.offsets_.assign(n_ + 1, 0);
  g.edge_u_.resize(m);
  g.edge_v_.resize(m);

  // Degree count: loop contributes 1 slot, non-loop 1 slot per endpoint.
  for (std::size_t e = 0; e < m; ++e) {
    ++g.offsets_[us_[e] + 1];
    if (us_[e] != vs_[e]) ++g.offsets_[vs_[e] + 1];
  }
  for (std::size_t v = 0; v < n_; ++v) g.offsets_[v + 1] += g.offsets_[v];

  const std::size_t slots = g.offsets_[n_];
  g.neighbors_.resize(slots);
  g.edge_ids_.resize(slots);

  std::vector<std::uint32_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (std::size_t e = 0; e < m; ++e) {
    const VertexId u = us_[e];
    const VertexId v = vs_[e];
    g.edge_u_[e] = u;
    g.edge_v_[e] = v;
    g.neighbors_[cursor[u]] = v;
    g.edge_ids_[cursor[u]] = static_cast<EdgeId>(e);
    ++cursor[u];
    if (u != v) {
      g.neighbors_[cursor[v]] = u;
      g.edge_ids_[cursor[v]] = static_cast<EdgeId>(e);
      ++cursor[v];
    }
    if (u == v) ++g.num_loops_;
  }
  g.num_edges_ = m;

  // Neighbor->slot index: per vertex, slots sorted by (neighbor id, slot).
  g.sorted_nbrs_.resize(slots);
  g.sorted_slots_.resize(slots);
  for (std::size_t v = 0; v < n_; ++v) {
    const std::uint32_t base = g.offsets_[v];
    const std::uint32_t deg = g.offsets_[v + 1] - base;
    for (std::uint32_t s = 0; s < deg; ++s) g.sorted_slots_[base + s] = s;
    std::sort(g.sorted_slots_.begin() + base,
              g.sorted_slots_.begin() + base + deg,
              [&](std::uint32_t a, std::uint32_t b) {
                const VertexId na = g.neighbors_[base + a];
                const VertexId nb = g.neighbors_[base + b];
                return na != nb ? na < nb : a < b;
              });
    for (std::uint32_t s = 0; s < deg; ++s) {
      g.sorted_nbrs_[base + s] = g.neighbors_[base + g.sorted_slots_[base + s]];
    }
  }

  // Incoming-slot mirror index: scanning directed slots in ascending order
  // and appending each to its receiver's cursor yields, per receiver, the
  // ascending list of slots that deliver into it.
  g.incoming_slots_.resize(slots);
  std::copy(g.offsets_.begin(), g.offsets_.end() - 1, cursor.begin());
  for (std::uint32_t s = 0; s < slots; ++s) {
    g.incoming_slots_[cursor[g.neighbors_[s]]++] = s;
  }

  if (!allow_parallel_) {
    // Detect duplicate non-loop edges: sort each adjacency copy.
    std::vector<std::pair<VertexId, VertexId>> canon;
    canon.reserve(m);
    for (std::size_t e = 0; e < m; ++e) {
      if (us_[e] == vs_[e]) continue;
      canon.emplace_back(std::min(us_[e], vs_[e]), std::max(us_[e], vs_[e]));
    }
    std::sort(canon.begin(), canon.end());
    const auto dup = std::adjacent_find(canon.begin(), canon.end());
    XD_CHECK_MSG(dup == canon.end(),
                 "parallel edge {" << (dup == canon.end() ? 0 : dup->first)
                                   << "," << (dup == canon.end() ? 0 : dup->second)
                                   << "} (pass allow_parallel to permit)");
  }
  return g;
}

}  // namespace xd

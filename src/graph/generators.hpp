#pragma once

/// \file generators.hpp
/// Graph families used throughout the tests and benches.  Each family maps
/// onto a workload of the experiment tables in bench/ (E1..E5):
///  * G(n, p) with p = 1/2 is the triangle-enumeration lower-bound family;
///  * random regular graphs are the expanders (conductance Ω(1) w.h.p.);
///  * dumbbells / planted partitions provide cuts of known conductance and
///    balance for the nearly-most-balanced sparse cut experiments;
///  * rings, tori, hypercubes, trees provide known diameters/mixing times
///    for the LDD and mixing experiments.

#include <cstdint>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace xd::gen {

/// Simple path 0-1-...-(n-1).  Diameter n-1.
Graph path(std::size_t n);

/// Cycle on n >= 3 vertices.  Conductance Θ(1/n).
Graph cycle(std::size_t n);

/// Complete graph K_n.  Conductance Θ(1).
Graph complete(std::size_t n);

/// Star with one hub and n-1 leaves.
Graph star(std::size_t n);

/// rows x cols grid; `wrap` makes it a torus.  Torus mixing time Θ(n log n)
/// for the square case.
Graph grid(std::size_t rows, std::size_t cols, bool wrap = false);

/// d-dimensional hypercube (2^d vertices).  Conductance Θ(1/d).
Graph hypercube(int dim);

/// Complete binary tree of the given depth (2^{depth+1} - 1 vertices).
Graph binary_tree(int depth);

/// Erdős–Rényi G(n, p): each pair independently an edge.
Graph gnp(std::size_t n, double p, Rng& rng);

/// Random d-regular simple graph via the pairing model with restarts.
/// Requires n * d even and d < n.  An expander w.h.p. for d >= 3.
Graph random_regular(std::size_t n, int d, Rng& rng);

/// Two cliques K_k joined by a path of `bridge_len` extra vertices
/// (bridge_len == 0 joins them by a single edge).  The classic low
/// conductance, perfectly balanced cut.
Graph barbell(std::size_t k, std::size_t bridge_len = 0);

/// Two random d-regular expanders of sizes n1 and n2 joined by
/// `bridge_edges` random cross edges.  Planted sparse cut with conductance
/// about bridge_edges / (d * min(n1, n2)) and balance min-side controlled by
/// n1 : n2.  The workhorse for Theorem 3 experiments.
Graph dumbbell_expanders(std::size_t n1, std::size_t n2, int d,
                         std::size_t bridge_edges, Rng& rng);

/// Stochastic block model: `blocks` equal communities over n vertices,
/// intra-community edge probability p_in, inter p_out.
Graph planted_partition(std::size_t n, int blocks, double p_in, double p_out,
                        Rng& rng);

/// Chain of `count` cliques K_k, consecutive cliques joined by one edge.
/// High diameter with locally dense pieces -- stress case for the LDD.
Graph clique_chain(std::size_t count, std::size_t k);

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `attach` existing vertices.  Skewed degrees for volume-weighted sampling
/// tests.
Graph preferential_attachment(std::size_t n, int attach, Rng& rng);

/// Lollipop: K_k with a path of `tail` vertices hanging off it.  The
/// classic worst case for hitting/mixing times -- the walk bench's slowest
/// family.
Graph lollipop(std::size_t k, std::size_t tail);

/// `count` cliques K_k arranged in a ring, consecutive cliques joined by
/// one edge.  Like clique_chain but vertex-transitive at the cluster
/// level; its optimal expander decomposition is exactly the cliques.
Graph ring_of_cliques(std::size_t count, std::size_t k);

/// Watts–Strogatz small world: ring lattice with 2`k` neighbors per
/// vertex, each edge rewired with probability `p`.  Interpolates between
/// the high-diameter lattice (p = 0) and an expander-like graph (p ~ 1).
Graph watts_strogatz(std::size_t n, int k, double p, Rng& rng);

}  // namespace xd::gen

#include "graph/subgraph.hpp"

#include <algorithm>

#include "graph/graph_view.hpp"
#include "util/check.hpp"

namespace xd {

namespace {

SubgraphMap induced_impl(const Graph& g, const VertexSet& s, bool add_loops) {
  SubgraphMap out;
  const std::size_t n = g.num_vertices();
  out.from_parent.assign(n, SubgraphMap::kAbsent);
  out.to_parent.assign(s.size(), 0);
  std::size_t next = 0;
  for (VertexId v : s) {
    XD_CHECK(v < n);
    out.from_parent[v] = static_cast<VertexId>(next);
    out.to_parent[next] = v;
    ++next;
  }

  GraphBuilder b(s.size(), /*allow_parallel=*/true);
  for (VertexId v : s) {
    const VertexId nv = out.from_parent[v];
    std::uint32_t lost = 0;
    auto nbrs = g.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId u = nbrs[i];
      if (u == v) {
        // Existing self-loop: keep (once; loops appear once per slot).
        b.add_edge(nv, nv);
      } else if (out.from_parent[u] == SubgraphMap::kAbsent) {
        ++lost;
      } else if (u > v) {
        // Emit each surviving non-loop edge once.
        b.add_edge(nv, out.from_parent[u]);
      }
    }
    if (add_loops) b.add_loops(nv, lost);
  }
  out.graph = b.build();
  return out;
}

}  // namespace

SubgraphMap induced_subgraph(const Graph& g, const VertexSet& s) {
  return induced_impl(g, s, /*add_loops=*/false);
}

SubgraphMap induced_with_loops(const Graph& g, const VertexSet& s) {
  return induced_impl(g, s, /*add_loops=*/true);
}

Graph remove_edges_with_loops(const Graph& g, const std::vector<char>& removed) {
  XD_CHECK(removed.size() == g.num_edges());
  GraphBuilder b(g.num_vertices(), /*allow_parallel=*/true);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.edge(e);
    if (!removed[e]) {
      b.add_edge(u, v);
    } else {
      XD_CHECK_MSG(u != v, "self-loops are never removed (edge " << e << ")");
      b.add_loops(u, 1);
      b.add_loops(v, 1);
    }
  }
  return b.build();
}

LiveSubgraph live_subgraph(const Graph& g, const std::vector<char>& removed,
                           const VertexSet& u) {
  XD_CHECK(removed.size() == g.num_edges());
  LiveSubgraph out;
  const std::size_t n = g.num_vertices();
  out.from_parent.assign(n, LiveSubgraph::kAbsent);
  out.to_parent.assign(u.size(), 0);
  std::size_t next = 0;
  for (VertexId v : u) {
    XD_CHECK(v < n);
    out.from_parent[v] = static_cast<VertexId>(next);
    out.to_parent[next] = v;
    ++next;
  }

  GraphBuilder b(u.size(), /*allow_parallel=*/true);
  std::vector<EdgeId> provenance;
  for (VertexId v : u) {
    const VertexId nv = out.from_parent[v];
    auto nbrs = g.neighbors(v);
    auto eids = g.incident_edges(v);
    std::uint32_t loops = 0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId w = nbrs[i];
      const EdgeId e = eids[i];
      if (w == v) {
        XD_CHECK_MSG(!removed[e], "self-loops are never removed");
        b.add_edge(nv, nv);
        provenance.push_back(e);
      } else if (removed[e] || out.from_parent[w] == LiveSubgraph::kAbsent) {
        ++loops;  // removed edge or boundary edge -> substitution loop
      } else if (w > v) {
        b.add_edge(nv, out.from_parent[w]);
        provenance.push_back(e);
      }
    }
    for (std::uint32_t i = 0; i < loops; ++i) {
      b.add_edge(nv, nv);
      provenance.push_back(LiveSubgraph::kNoEdge);
    }
  }
  out.graph = b.build();
  out.edge_to_parent = std::move(provenance);
  XD_CHECK(out.edge_to_parent.size() == out.graph.num_edges());
  return out;
}

template <GraphAccess G>
std::pair<std::vector<std::uint32_t>, std::size_t> connected_components(
    const G& g) {
  const std::size_t n = g.num_vertices();
  std::vector<std::uint32_t> comp(n, static_cast<std::uint32_t>(-1));
  std::size_t count = 0;
  std::vector<VertexId> stack;
  for (const VertexId root : g.vertices()) {
    if (comp[root] != static_cast<std::uint32_t>(-1)) continue;
    comp[root] = static_cast<std::uint32_t>(count);
    stack.push_back(root);
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (VertexId u : g.neighbors(v)) {
        if (comp[u] == static_cast<std::uint32_t>(-1)) {
          comp[u] = static_cast<std::uint32_t>(count);
          stack.push_back(u);
        }
      }
    }
    ++count;
  }
  return {std::move(comp), count};
}

template std::pair<std::vector<std::uint32_t>, std::size_t>
connected_components(const Graph& g);
template std::pair<std::vector<std::uint32_t>, std::size_t>
connected_components(const GraphView& g);

std::vector<SubgraphMap> component_subgraphs(const Graph& g) {
  auto [comp, count] = connected_components(g);
  const std::size_t n = g.num_vertices();

  // Single pass 1: bucket vertices (local ids assigned in ascending parent
  // order, so each map matches what induced_subgraph would produce).
  std::vector<SubgraphMap> out(count);
  for (auto& sub : out) sub.from_parent.assign(n, SubgraphMap::kAbsent);
  std::vector<VertexId> local(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    auto& sub = out[comp[v]];
    local[v] = static_cast<VertexId>(sub.to_parent.size());
    sub.from_parent[v] = local[v];
    sub.to_parent.push_back(v);
  }

  // Single pass 2: route every adjacency slot to its component's builder in
  // the same (v ascending, slot) order induced_subgraph emits edges, so the
  // resulting graphs are bit-identical to the per-component rebuild.
  std::vector<GraphBuilder> builders;
  builders.reserve(count);
  for (std::size_t c = 0; c < count; ++c) {
    builders.emplace_back(out[c].to_parent.size(), /*allow_parallel=*/true);
  }
  for (VertexId v = 0; v < n; ++v) {
    auto& b = builders[comp[v]];
    for (VertexId u : g.neighbors(v)) {
      if (u == v) {
        b.add_edge(local[v], local[v]);
      } else if (u > v) {
        b.add_edge(local[v], local[u]);  // same component by connectivity
      }
    }
  }
  for (std::size_t c = 0; c < count; ++c) out[c].graph = builders[c].build();
  return out;
}

}  // namespace xd

#include "graph/vertex_set.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace xd {

VertexSet::VertexSet(std::vector<VertexId> ids) : ids_(std::move(ids)) {
  std::sort(ids_.begin(), ids_.end());
  ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
}

VertexSet::VertexSet(std::initializer_list<VertexId> ids)
    : VertexSet(std::vector<VertexId>(ids)) {}

VertexSet VertexSet::all(std::size_t n) {
  std::vector<VertexId> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<VertexId>(i);
  VertexSet s;
  s.ids_ = std::move(ids);
  return s;
}

bool VertexSet::contains(VertexId v) const {
  return std::binary_search(ids_.begin(), ids_.end(), v);
}

VertexSet VertexSet::complement(std::size_t n) const {
  VertexSet out;
  out.ids_.reserve(n - ids_.size());
  std::size_t cursor = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (cursor < ids_.size() && ids_[cursor] == v) {
      ++cursor;
    } else {
      out.ids_.push_back(v);
    }
  }
  return out;
}

VertexSet VertexSet::set_union(const VertexSet& other) const {
  VertexSet out;
  std::set_union(ids_.begin(), ids_.end(), other.ids_.begin(),
                 other.ids_.end(), std::back_inserter(out.ids_));
  return out;
}

VertexSet VertexSet::set_intersection(const VertexSet& other) const {
  VertexSet out;
  std::set_intersection(ids_.begin(), ids_.end(), other.ids_.begin(),
                        other.ids_.end(), std::back_inserter(out.ids_));
  return out;
}

VertexSet VertexSet::set_difference(const VertexSet& other) const {
  VertexSet out;
  std::set_difference(ids_.begin(), ids_.end(), other.ids_.begin(),
                      other.ids_.end(), std::back_inserter(out.ids_));
  return out;
}

std::vector<char> VertexSet::bitmap(std::size_t n) const {
  std::vector<char> mask(n, 0);
  for (VertexId v : ids_) {
    XD_CHECK(v < n);
    mask[v] = 1;
  }
  return mask;
}

VertexSet VertexSet::from_bitmap(const std::vector<char>& mask) {
  VertexSet out;
  for (std::size_t v = 0; v < mask.size(); ++v) {
    if (mask[v]) out.ids_.push_back(static_cast<VertexId>(v));
  }
  return out;
}

}  // namespace xd

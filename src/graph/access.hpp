#pragma once

/// \file access.hpp
/// The shared graph-access concept behind the zero-copy refactor.
///
/// Every local (non-Network) algorithm in the stack -- metrics, lazy walks,
/// sweep cuts, the Nibble chain, the decomposition driver's bookkeeping --
/// is templated over GraphAccess instead of taking a concrete `Graph`.  Two
/// models exist:
///
///   * `Graph`      -- the materialized CSR (graph.hpp);
///   * `GraphView`  -- a zero-copy overlay over an ambient CSR
///                     (graph_view.hpp): an active-vertex set plus a
///                     removed-edge bitmap, with the paper's G{S}
///                     loop-substitution semantics computed on the fly.
///
/// The surface is deliberately the paper's vocabulary: degrees, neighbor
/// slots (masked slots read as self-loops, so deg is invariant), volume,
/// and the |E| that counts substitution loops.  Algorithms iterate
/// `g.vertices()` (never `0..num_vertices()`) so a view can restrict the
/// ground set without renumbering, and use the `for_each_live_edge` /
/// `for_each_live_incident` hooks (duck-typed, same signature on both
/// models) when they need surviving non-loop edges with their ids.
///
/// Determinism contract: `vertices()` ascends, `neighbors(v)` follows
/// ambient slot order, and `for_each_live_edge` visits in (u ascending,
/// slot) order -- exactly the order the materializing constructors in
/// subgraph.hpp emit edges.  That order-congruence is what keeps view-based
/// and materialized runs bit-identical (see docs/graph_views.md).

#include <concepts>
#include <cstdint>

#include "graph/graph.hpp"

namespace xd {

template <typename G>
concept GraphAccess = requires(const G& g, VertexId v) {
  { g.num_vertices() } -> std::convertible_to<std::size_t>;
  { g.num_edges() } -> std::convertible_to<std::size_t>;
  { g.num_nonloop_edges() } -> std::convertible_to<std::size_t>;
  { g.num_loops() } -> std::convertible_to<std::size_t>;
  { g.degree(v) } -> std::convertible_to<std::uint32_t>;
  { g.loops_at(v) } -> std::convertible_to<std::uint32_t>;
  { g.volume() } -> std::convertible_to<std::uint64_t>;
  { *g.vertices().begin() } -> std::convertible_to<VertexId>;
  { *g.neighbors(v).begin() } -> std::convertible_to<VertexId>;
};

static_assert(GraphAccess<Graph>);

}  // namespace xd

#pragma once

/// \file io.hpp
/// Graph serialization (docs/io.md).
///
/// Two on-disk forms:
///  * **Text edge list** -- first line "n m", then one "u v" pair per
///    line; self-loops serialize as "v v".  Human-readable fixtures.
///  * **Binary edge list** -- a fixed 24-byte header (magic 'XDG1', a
///    reserved word, u64 n, u64 m) followed by m little-endian (u32 u,
///    u32 v) pairs.  The production-scale loader mmaps the file (falling
///    back to a streamed read), normalizes and deduplicates the pairs with
///    a chunked parallel sort, histograms degrees, and converts to the CSR
///    Graph -- with an optional degree-descending (DODG-style) reorder
///    pass that relabels vertices by (degree desc, id asc) so high-degree
///    hubs get the smallest ids, which orientation-based triangle kernels
///    and decomposition seeds can opt into.  tools/edges_to_binary
///    converts text lists into this format.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace xd {

/// Writes the graph as an edge list.
void write_edge_list(const Graph& g, std::ostream& os);
void write_edge_list_file(const Graph& g, const std::string& path);

/// Parses an edge list; throws CheckError on malformed input.
Graph read_edge_list(std::istream& is);
Graph read_edge_list_file(const std::string& path);

// -------------------------------------------------- binary edge lists --

/// 'XDG1' little-endian.
inline constexpr std::uint32_t kBinaryGraphMagic = 0x31474458u;

struct BinaryLoadOptions {
  /// Run the DODG-style preprocessing pass: relabel vertices by (degree
  /// desc, id asc) before building the CSR.
  bool reorder_by_degree = false;
  /// Keep self-loops from the file (dropped by default: the triangle and
  /// decomposition planes define their own loop semantics).
  bool keep_self_loops = false;
  /// Worker threads for the dedup sort; 0 = hardware concurrency.
  unsigned threads = 0;
};

/// A loaded (and possibly relabeled) graph.  The permutations are empty
/// unless the reorder pass ran; otherwise old_to_new[v] is v's new id and
/// new_to_old is its inverse, so callers can map results back.
struct LoadedGraph {
  Graph graph;
  std::vector<VertexId> old_to_new;
  std::vector<VertexId> new_to_old;
};

/// Writes g's edges in the binary format (loops included verbatim).
void write_binary_edge_list_file(const Graph& g, const std::string& path);

/// Loads a binary edge list: mmap/stream read, parallel dedup -> degree
/// histogram -> CSR, optional degree-descending reorder.  Parallel copies
/// of an edge collapse to one; endpoint order in the file is irrelevant.
/// Throws CheckError on missing files, bad magic, truncation, or
/// out-of-range endpoints.
LoadedGraph read_binary_edge_list_file(const std::string& path,
                                       const BinaryLoadOptions& opt = {});

/// The standalone DODG pass over an already-built graph: returns the
/// relabeled graph plus both permutations.  Any plane can run this as a
/// preprocessing step and translate its output through new_to_old.
LoadedGraph reorder_by_degree(const Graph& g);

}  // namespace xd

#pragma once

/// \file io.hpp
/// Plain-text edge-list serialization: first line "n m", then one "u v" pair
/// per line.  Self-loops serialize as "v v".

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace xd {

/// Writes the graph as an edge list.
void write_edge_list(const Graph& g, std::ostream& os);
void write_edge_list_file(const Graph& g, const std::string& path);

/// Parses an edge list; throws CheckError on malformed input.
Graph read_edge_list(std::istream& is);
Graph read_edge_list_file(const std::string& path);

}  // namespace xd

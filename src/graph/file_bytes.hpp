#pragma once

/// \file file_bytes.hpp
/// Whole-file byte access for the binary loaders (docs/io.md).
///
/// Both on-disk binary formats -- the XDG1 edge lists and the XDA1
/// prepared artifacts (docs/serving.md) -- start from the same primitive:
/// the raw file bytes, mmapped when the platform allows (multi-GB inputs
/// of the --large bench tier never pass through a copy) and stream-read
/// otherwise.  Non-regular files (pipes, FIFOs, process substitution) take
/// the streamed path: read(2) is free to return short counts (pipe
/// capacity, signals), so the fallback loops until EOF and truncation
/// surfaces as the caller's size checks -- never as silently missing
/// bytes.

#include <cstddef>
#include <string>
#include <vector>

namespace xd {

/// Read-only view of one file's entire contents.
class FileBytes {
 public:
  /// Opens and maps (or reads) `path`; throws CheckError when the file
  /// cannot be opened or read.
  explicit FileBytes(const std::string& path);
  ~FileBytes();

  FileBytes(const FileBytes&) = delete;
  FileBytes& operator=(const FileBytes&) = delete;

  [[nodiscard]] const unsigned char* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  /// Fault-plane hook (io.truncate / io.bitflip / io.short_read): when an
  /// io.* site fires for this path, the freshly loaded bytes are damaged in
  /// place -- deterministically, keyed on (path, size) -- before any parser
  /// sees them.  This is how the loader tests prove every corruption
  /// surfaces as a typed CheckError, never UB.  Disarmed cost: one relaxed
  /// atomic load.
  void inject_faults(const std::string& path);

  const unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
  const unsigned char* map_ = nullptr;
  std::vector<unsigned char> buf_;
};

}  // namespace xd

#pragma once

/// \file metrics.hpp
/// Exact (centralized) graph metrics.  These are the *oracles* the tests and
/// the decomposition verifier use; the distributed algorithms never call
/// them for their own decisions.
///
/// Terminology follows the paper (§1): for S ⊆ V,
///   Vol(S)  = Σ_{v∈S} deg(v)            (degrees in the ambient graph),
///   ∂(S)    = E(S, V\S)                 (self-loops never cross),
///   Φ(S)    = |∂(S)| / min(Vol(S), Vol(V\S)),
///   bal(S)  = min(Vol(S), Vol(V\S)) / Vol(V),
///   Φ(G)    = min over nontrivial S of Φ(S).

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "graph/access.hpp"
#include "graph/graph.hpp"
#include "graph/vertex_set.hpp"

namespace xd {

/// The set-quality metrics and BFS measures are generic over GraphAccess
/// (Graph or GraphView): on a view, degrees/volumes read through to the
/// ambient graph and removed/boundary slots count as loops -- exactly the
/// numbers a materialized G{S} would give, without building it.

/// Vol(S): sum of degrees over S.
template <GraphAccess G>
std::uint64_t volume(const G& g, const VertexSet& s);

/// |∂(S)|: edges with exactly one endpoint in S (loops never counted).
template <GraphAccess G>
std::uint64_t cut_size(const G& g, const VertexSet& s);

/// Conductance of the cut (S, V\S); infinity when either side has zero
/// volume (matching "no nontrivial cut").
template <GraphAccess G>
double conductance(const G& g, const VertexSet& s);

/// bal(S) = min(Vol(S), Vol(S̄)) / Vol(V).
template <GraphAccess G>
double balance(const G& g, const VertexSet& s);

/// Exact graph conductance Φ(G) by exhaustive enumeration.  Exponential:
/// only for n <= 24 test oracles.  Returns infinity for graphs with no
/// nontrivial cut (n < 2 or zero volume).
double conductance_exact(const Graph& g);

/// The most-balanced cut among all cuts of conductance <= phi, by exhaustive
/// enumeration (n <= 24).  Returns nullopt when no cut has conductance <=
/// phi.  (Definition of "most-balanced sparse cut", §1.)
std::optional<VertexSet> most_balanced_cut_exact(const Graph& g, double phi);

/// Single-source BFS hop distances; unreachable = UINT32_MAX.  Self-loops
/// are ignored.
template <GraphAccess G>
std::vector<std::uint32_t> bfs_distances(const G& g, VertexId source);

/// Exact diameter over the largest connected component... strictly: maximum
/// eccentricity over all vertices, ignoring unreachable pairs.  O(n * m).
std::uint32_t diameter_exact(const Graph& g);

/// Diameter lower bound by double-sweep BFS (tight on many families) --
/// cheap for big benches.  The first sweep starts at the smallest vertex
/// (vertex 0 of a Graph; the smallest active vertex of a GraphView).
template <GraphAccess G>
std::uint32_t diameter_double_sweep(const G& g);

/// Sorted triangle list (a < b < c).  Merge-join on sorted adjacency lists;
/// O(Σ deg(v)^2 / ...) ~ O(m^{3/2}).  Ground truth for Theorem 2 tests.
std::vector<std::array<VertexId, 3>> triangles_exact(const Graph& g);

/// Number of triangles (without materializing the list).
std::uint64_t triangle_count_exact(const Graph& g);

/// Degeneracy (max over subgraphs of the min degree) via the standard
/// peeling order; arboricity lies in [⌈degeneracy/2⌉, degeneracy].  This
/// is the quantity behind the prior work's caveat (the CPZ decomposition's
/// extra n^δ-arboricity part, §1) -- the present paper's contribution is
/// exactly that no such part is needed.  Self-loops are ignored.
std::uint32_t degeneracy(const Graph& g);

}  // namespace xd

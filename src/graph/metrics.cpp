#include "graph/metrics.hpp"

#include <algorithm>
#include <array>
#include <deque>

#include "graph/graph_view.hpp"
#include "util/check.hpp"

namespace xd {

template <GraphAccess G>
std::uint64_t volume(const G& g, const VertexSet& s) {
  std::uint64_t vol = 0;
  for (VertexId v : s) vol += g.degree(v);
  return vol;
}

template <GraphAccess G>
std::uint64_t cut_size(const G& g, const VertexSet& s) {
  const auto mask = s.bitmap(g.num_vertices());
  std::uint64_t cut = 0;
  g.for_each_live_edge([&](EdgeId, VertexId u, VertexId v) {
    if (mask[u] != mask[v]) ++cut;
  });
  return cut;
}

template <GraphAccess G>
double conductance(const G& g, const VertexSet& s) {
  const std::uint64_t vol_s = volume(g, s);
  const std::uint64_t vol_rest = g.volume() - vol_s;
  const std::uint64_t denom = std::min(vol_s, vol_rest);
  if (denom == 0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(cut_size(g, s)) / static_cast<double>(denom);
}

template <GraphAccess G>
double balance(const G& g, const VertexSet& s) {
  const std::uint64_t vol_s = volume(g, s);
  const std::uint64_t vol_rest = g.volume() - vol_s;
  if (g.volume() == 0) return 0.0;
  return static_cast<double>(std::min(vol_s, vol_rest)) /
         static_cast<double>(g.volume());
}

template std::uint64_t volume(const Graph&, const VertexSet&);
template std::uint64_t volume(const GraphView&, const VertexSet&);
template std::uint64_t cut_size(const Graph&, const VertexSet&);
template std::uint64_t cut_size(const GraphView&, const VertexSet&);
template double conductance(const Graph&, const VertexSet&);
template double conductance(const GraphView&, const VertexSet&);
template double balance(const Graph&, const VertexSet&);
template double balance(const GraphView&, const VertexSet&);

namespace {

/// Iterates nontrivial subsets containing vertex 0 (each cut once).
template <typename Fn>
void for_each_cut(const Graph& g, Fn&& fn) {
  const std::size_t n = g.num_vertices();
  XD_CHECK_MSG(n <= 24, "exhaustive cut enumeration limited to n <= 24");
  if (n < 2) return;
  const std::uint64_t limit = std::uint64_t{1} << (n - 1);
  // Subsets of {1..n-1}; side containing vertex 0 is the complement, so each
  // unordered cut appears exactly once, and S is never empty or full.
  for (std::uint64_t bits = 1; bits < limit; ++bits) {
    std::vector<VertexId> ids;
    for (std::size_t v = 1; v < n; ++v) {
      if (bits & (std::uint64_t{1} << (v - 1))) {
        ids.push_back(static_cast<VertexId>(v));
      }
    }
    fn(VertexSet(std::move(ids)));
  }
}

}  // namespace

double conductance_exact(const Graph& g) {
  double best = std::numeric_limits<double>::infinity();
  for_each_cut(g, [&](const VertexSet& s) {
    best = std::min(best, conductance(g, s));
  });
  return best;
}

std::optional<VertexSet> most_balanced_cut_exact(const Graph& g, double phi) {
  std::optional<VertexSet> best;
  double best_balance = -1.0;
  for_each_cut(g, [&](const VertexSet& s) {
    if (conductance(g, s) <= phi) {
      const double b = balance(g, s);
      if (b > best_balance) {
        best_balance = b;
        best = s;
      }
    }
  });
  return best;
}

template <GraphAccess G>
std::vector<std::uint32_t> bfs_distances(const G& g, VertexId source) {
  constexpr auto kInf = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> dist(g.num_vertices(), kInf);
  std::deque<VertexId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop_front();
    for (VertexId u : g.neighbors(v)) {
      if (u != v && dist[u] == kInf) {
        dist[u] = dist[v] + 1;
        queue.push_back(u);
      }
    }
  }
  return dist;
}

template std::vector<std::uint32_t> bfs_distances(const Graph&, VertexId);
template std::vector<std::uint32_t> bfs_distances(const GraphView&, VertexId);

namespace {

template <GraphAccess G>
std::pair<std::uint32_t, VertexId> eccentricity(const G& g, VertexId src) {
  const auto dist = bfs_distances(g, src);
  std::uint32_t ecc = 0;
  VertexId far = src;
  for (const VertexId v : g.vertices()) {
    if (dist[v] != std::numeric_limits<std::uint32_t>::max() && dist[v] > ecc) {
      ecc = dist[v];
      far = v;
    }
  }
  return {ecc, far};
}

}  // namespace

std::uint32_t diameter_exact(const Graph& g) {
  std::uint32_t best = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    best = std::max(best, eccentricity(g, v).first);
  }
  return best;
}

template <GraphAccess G>
std::uint32_t diameter_double_sweep(const G& g) {
  const auto vs = g.vertices();
  if (vs.begin() == vs.end()) return 0;
  const auto [ecc0, far] = eccentricity(g, *vs.begin());
  (void)ecc0;
  return eccentricity(g, far).first;
}

template std::uint32_t diameter_double_sweep(const Graph&);
template std::uint32_t diameter_double_sweep(const GraphView&);

namespace {

/// Sorted, deduplicated, loop-free adjacency (triangle joins need it).
std::vector<std::vector<VertexId>> simple_adjacency(const Graph& g) {
  std::vector<std::vector<VertexId>> adj(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    auto& row = adj[v];
    for (VertexId u : g.neighbors(v)) {
      if (u != v) row.push_back(u);
    }
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
  }
  return adj;
}

}  // namespace

std::vector<std::array<VertexId, 3>> triangles_exact(const Graph& g) {
  const auto adj = simple_adjacency(g);
  std::vector<std::array<VertexId, 3>> out;
  for (VertexId a = 0; a < g.num_vertices(); ++a) {
    for (VertexId b : adj[a]) {
      if (b <= a) continue;
      // Intersect adj[a] and adj[b] above b.
      auto ia = std::upper_bound(adj[a].begin(), adj[a].end(), b);
      auto ib = std::upper_bound(adj[b].begin(), adj[b].end(), b);
      while (ia != adj[a].end() && ib != adj[b].end()) {
        if (*ia < *ib) {
          ++ia;
        } else if (*ib < *ia) {
          ++ib;
        } else {
          out.push_back({a, b, *ia});
          ++ia;
          ++ib;
        }
      }
    }
  }
  return out;
}

std::uint32_t degeneracy(const Graph& g) {
  const std::size_t n = g.num_vertices();
  if (n == 0) return 0;
  // Peel minimum-degree vertices with a bucket queue; the largest degree
  // seen at removal time is the degeneracy.
  std::vector<std::uint32_t> deg(n, 0);
  std::uint32_t max_deg = 0;
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId u : g.neighbors(v)) {
      if (u != v) ++deg[v];
    }
    max_deg = std::max(max_deg, deg[v]);
  }
  std::vector<std::vector<VertexId>> buckets(max_deg + 1);
  for (VertexId v = 0; v < n; ++v) buckets[deg[v]].push_back(v);

  std::vector<char> removed(n, 0);
  std::uint32_t degeneracy_bound = 0;
  std::uint32_t cursor = 0;
  for (std::size_t peeled = 0; peeled < n; ++peeled) {
    // Find the lowest non-empty bucket with a still-live entry; entries go
    // stale when their degree drops, so validate on pop.
    while (true) {
      while (cursor <= max_deg && buckets[cursor].empty()) ++cursor;
      XD_CHECK(cursor <= max_deg);
      const VertexId v = buckets[cursor].back();
      buckets[cursor].pop_back();
      if (removed[v] || deg[v] != cursor) continue;  // stale
      removed[v] = 1;
      degeneracy_bound = std::max(degeneracy_bound, cursor);
      for (VertexId u : g.neighbors(v)) {
        if (u != v && !removed[u]) {
          --deg[u];
          buckets[deg[u]].push_back(u);
          cursor = std::min(cursor, deg[u]);
        }
      }
      break;
    }
  }
  return degeneracy_bound;
}

std::uint64_t triangle_count_exact(const Graph& g) {
  const auto adj = simple_adjacency(g);
  std::uint64_t count = 0;
  for (VertexId a = 0; a < g.num_vertices(); ++a) {
    for (VertexId b : adj[a]) {
      if (b <= a) continue;
      auto ia = std::upper_bound(adj[a].begin(), adj[a].end(), b);
      auto ib = std::upper_bound(adj[b].begin(), adj[b].end(), b);
      while (ia != adj[a].end() && ib != adj[b].end()) {
        if (*ia < *ib) {
          ++ia;
        } else if (*ib < *ia) {
          ++ib;
        } else {
          ++count;
          ++ia;
          ++ib;
        }
      }
    }
  }
  return count;
}

}  // namespace xd

#include "graph/graph_view.hpp"

#include <utility>

#include "util/check.hpp"

namespace xd {

GraphView::GraphView(const Graph& ambient, const std::vector<char>* removed,
                     VertexSet u)
    : g_(&ambient), removed_(removed), active_(std::move(u)) {
  const std::size_t n = g_->num_vertices();
  XD_CHECK(removed_ == nullptr || removed_->size() == g_->num_edges());
  mask_.assign(n, 0);
  for (const VertexId v : active_) {
    XD_CHECK(v < n);
    mask_[v] = 1;
  }
  // One O(Vol(U)) counting scan replaces the materialized copy: volume is
  // degree-preserved by the loop substitution, and |E| follows from the
  // surviving non-loop count (each occupies two slots, every other slot
  // reads as a one-slot loop): |E| = Vol - #nonloop.
  for (const VertexId v : active_) {
    volume_ += g_->degree(v);
    const auto nbrs = g_->neighbors(v);
    const auto eids = g_->incident_edges(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId w = nbrs[i];
      if (w > v && mask_[w] && !is_removed(eids[i])) ++live_nonloop_;
    }
  }
}

std::uint32_t GraphView::loops_at(VertexId v) const {
  if (!mask_[v]) return 0;
  std::uint32_t loops = 0;
  const auto nbrs = g_->neighbors(v);
  const auto eids = g_->incident_edges(v);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    const VertexId w = nbrs[i];
    if (w == v || !mask_[w] || is_removed(eids[i])) ++loops;
  }
  return loops;
}

LiveSubgraph GraphView::materialize() const {
  // Mirrors live_subgraph (subgraph.cpp) step for step so the two paths
  // stay bit-identical -- the property tests pin this equivalence.
  LiveSubgraph out;
  const std::size_t n = g_->num_vertices();
  out.from_parent.assign(n, LiveSubgraph::kAbsent);
  out.to_parent.assign(active_.size(), 0);
  std::size_t next = 0;
  for (const VertexId v : active_) {
    out.from_parent[v] = static_cast<VertexId>(next);
    out.to_parent[next] = v;
    ++next;
  }

  GraphBuilder b(active_.size(), /*allow_parallel=*/true);
  std::vector<EdgeId> provenance;
  for (const VertexId v : active_) {
    const VertexId nv = out.from_parent[v];
    const auto nbrs = g_->neighbors(v);
    const auto eids = g_->incident_edges(v);
    std::uint32_t loops = 0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId w = nbrs[i];
      const EdgeId e = eids[i];
      if (w == v) {
        XD_CHECK_MSG(!is_removed(e), "self-loops are never removed");
        b.add_edge(nv, nv);
        provenance.push_back(e);
      } else if (is_removed(e) || !mask_[w]) {
        ++loops;  // removed edge or boundary edge -> substitution loop
      } else if (w > v) {
        b.add_edge(nv, out.from_parent[w]);
        provenance.push_back(e);
      }
    }
    for (std::uint32_t i = 0; i < loops; ++i) {
      b.add_edge(nv, nv);
      provenance.push_back(LiveSubgraph::kNoEdge);
    }
  }
  out.graph = b.build();
  out.edge_to_parent = std::move(provenance);
  XD_CHECK(out.edge_to_parent.size() == out.graph.num_edges());
  return out;
}

LiveSubgraph GraphView::materialize_induced() const {
  // Mirrors induced_subgraph (subgraph.cpp): masked slots are dropped, so
  // boundary/removed incidences lower the local degree instead of looping.
  LiveSubgraph out;
  const std::size_t n = g_->num_vertices();
  out.from_parent.assign(n, LiveSubgraph::kAbsent);
  out.to_parent.assign(active_.size(), 0);
  std::size_t next = 0;
  for (const VertexId v : active_) {
    out.from_parent[v] = static_cast<VertexId>(next);
    out.to_parent[next] = v;
    ++next;
  }

  GraphBuilder b(active_.size(), /*allow_parallel=*/true);
  std::vector<EdgeId> provenance;
  for (const VertexId v : active_) {
    const VertexId nv = out.from_parent[v];
    const auto nbrs = g_->neighbors(v);
    const auto eids = g_->incident_edges(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId w = nbrs[i];
      const EdgeId e = eids[i];
      if (w == v) {
        if (!is_removed(e)) {
          b.add_edge(nv, nv);
          provenance.push_back(e);
        }
      } else if (w > v && mask_[w] && !is_removed(e)) {
        b.add_edge(nv, out.from_parent[w]);
        provenance.push_back(e);
      }
    }
  }
  out.graph = b.build();
  out.edge_to_parent = std::move(provenance);
  XD_CHECK(out.edge_to_parent.size() == out.graph.num_edges());
  return out;
}

}  // namespace xd

#pragma once

/// \file graph.hpp
/// Immutable CSR graph with the paper's self-loop semantics.
///
/// The decomposition algorithms of Chang & Saranurak never let a vertex's
/// degree change: whenever an edge {u, v} is removed, a self-loop is added at
/// both u and v, and `G{S}` denotes the induced subgraph G[S] plus one
/// self-loop per lost edge.  Following the paper (and Spielman–Srivastava),
/// **each self-loop contributes exactly 1 to deg(v)** and occupies one
/// adjacency slot whose neighbor is the vertex itself.

#include <cstdint>
#include <ranges>
#include <span>
#include <vector>

namespace xd {

/// Vertex identifier: dense, 0-based.
using VertexId = std::uint32_t;
/// Undirected edge identifier: dense, 0-based; self-loops get ids too.
using EdgeId = std::uint32_t;

class GraphBuilder;

/// Immutable undirected graph in CSR form.  Self-loops allowed (multiple per
/// vertex); parallel non-loop edges are rejected at build time.
///
/// Invariants:
///  * deg(v) == number of adjacency slots of v; a self-loop is one slot.
///  * Every non-loop edge {u,v} appears in both endpoint lists with the same
///    EdgeId; a self-loop appears once.
///  * volume(V) == 2 * (non-loop edge count) + (loop count).
class Graph {
 public:
  Graph() = default;

  [[nodiscard]] std::size_t num_vertices() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }

  /// All vertex ids {0, ..., n-1} in ascending order.  This is the
  /// GraphAccess iteration surface (access.hpp): algorithms loop over
  /// `vertices()` instead of `[0, num_vertices())` so a GraphView can
  /// substitute its active subset without renumbering.
  [[nodiscard]] auto vertices() const {
    return std::views::iota(VertexId{0}, static_cast<VertexId>(num_vertices()));
  }
  /// Total undirected edges, self-loops included (the paper's |E|).
  [[nodiscard]] std::size_t num_edges() const { return num_edges_; }
  /// Undirected non-loop edges only.
  [[nodiscard]] std::size_t num_nonloop_edges() const { return num_edges_ - num_loops_; }
  [[nodiscard]] std::size_t num_loops() const { return num_loops_; }

  /// deg(v): adjacency slots, self-loops counted once each.
  [[nodiscard]] std::uint32_t degree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Neighbor list of v (self-loops show up as v itself).
  [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const {
    return {neighbors_.data() + offsets_[v], degree(v)};
  }

  /// Edge ids parallel to neighbors(v).
  [[nodiscard]] std::span<const EdgeId> incident_edges(VertexId v) const {
    return {edge_ids_.data() + offsets_[v], degree(v)};
  }

  /// Global index of v's first adjacency slot; slot_base(v) + slot uniquely
  /// identifies a *directed* edge use (what the congestion accounting keys
  /// on).  Total slots == slot_base(n) == volume() - num_loops().
  [[nodiscard]] std::uint32_t slot_base(VertexId v) const { return offsets_[v]; }

  /// Sentinel returned by slot_of when {u, v} is not an edge.
  static constexpr std::uint32_t kNoSlot = static_cast<std::uint32_t>(-1);

  /// Adjacency slot of neighbor `v` at vertex `u` (u != v), or kNoSlot.
  /// O(log deg(u)) binary search over the per-vertex neighbor-sorted slot
  /// index built at construction; with parallel edges the smallest matching
  /// slot is returned (the same slot a linear scan would find first).
  /// If `probes` is non-null it is incremented once per search step, so
  /// callers can assert work bounds (see the star-broadcast regression
  /// test).
  [[nodiscard]] std::uint32_t slot_of(VertexId u, VertexId v,
                                      std::uint64_t* probes = nullptr) const;

  /// Receiver of global directed slot s: the neighbor that slot points at.
  [[nodiscard]] VertexId slot_target(std::uint32_t s) const {
    return neighbors_[s];
  }

  /// The directed slots that deliver INTO v -- the mirror of each of v's
  /// adjacency slots (a self-loop slot mirrors itself) -- in ascending
  /// order.  Exactly deg(v) entries, sharing offsets with neighbors(v).
  /// This is what lets the round engine build CSR inboxes by counting
  /// passes alone (no per-round sort): traffic grouped by directed slot is
  /// already grouped by receiver through this index.
  [[nodiscard]] std::span<const std::uint32_t> incoming_slots(VertexId v) const {
    return {incoming_slots_.data() + offsets_[v], degree(v)};
  }

  /// Number of self-loop slots at v.
  [[nodiscard]] std::uint32_t loops_at(VertexId v) const;

  /// Endpoints of an edge; for a self-loop both are equal.
  [[nodiscard]] std::pair<VertexId, VertexId> edge(EdgeId e) const {
    return {edge_u_[e], edge_v_[e]};
  }
  [[nodiscard]] bool is_loop(EdgeId e) const { return edge_u_[e] == edge_v_[e]; }

  /// Sum of degrees over all vertices (the paper's Vol(V)); one adjacency
  /// slot per degree unit, so this is exactly the slot count.
  [[nodiscard]] std::uint64_t volume() const { return neighbors_.size(); }

  /// True if {u, v} (u != v) is an edge.  O(log min degree) binary search
  /// over the sorted-neighbor index (shares the slot_of helper).
  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const;

  /// Visits every non-loop edge exactly once as fn(edge id, u, v) with
  /// u < v, in (u ascending, slot) order -- the order in which the
  /// materializing subgraph constructors emit surviving edges, which is what
  /// lets view-based consumers replay materialized edge processing
  /// bit-for-bit.  GraphView provides the same hook over its live slots.
  template <typename Fn>
  void for_each_live_edge(Fn&& fn) const {
    for (VertexId u = 0; u < num_vertices(); ++u) {
      const auto nbrs = neighbors(u);
      const auto eids = incident_edges(u);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (nbrs[i] > u) fn(eids[i], u, nbrs[i]);
      }
    }
  }

  /// Visits v's non-loop incident edges as fn(edge id, neighbor) in slot
  /// order.  (A GraphView additionally skips masked slots -- they read as
  /// self-loops there.)
  template <typename Fn>
  void for_each_live_incident(VertexId v, Fn&& fn) const {
    const auto nbrs = neighbors(v);
    const auto eids = incident_edges(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] != v) fn(eids[i], nbrs[i]);
    }
  }

  /// Maximum degree.
  [[nodiscard]] std::uint32_t max_degree() const;

 private:
  friend class GraphBuilder;

  std::vector<std::uint32_t> offsets_;   ///< size n+1
  std::vector<VertexId> neighbors_;      ///< one entry per slot; loop -> self
  std::vector<EdgeId> edge_ids_;         ///< parallel to neighbors_
  /// Neighbor->slot index: per vertex, its slots permuted so the neighbor
  /// ids are ascending (ties by slot).  sorted_nbrs_ holds the reordered
  /// neighbor ids, sorted_slots_ the matching local slot numbers.  Shares
  /// offsets_ with the adjacency arrays.
  std::vector<VertexId> sorted_nbrs_;
  std::vector<std::uint32_t> sorted_slots_;
  /// Per vertex: ascending directed slots delivering into it (see
  /// incoming_slots()).  Shares offsets_.
  std::vector<std::uint32_t> incoming_slots_;
  std::vector<VertexId> edge_u_, edge_v_;  ///< size num_edges_
  std::size_t num_edges_ = 0;
  std::size_t num_loops_ = 0;
};

/// Accumulates edges, then produces an immutable Graph.
class GraphBuilder {
 public:
  /// \param n          number of vertices (fixed up front)
  /// \param allow_parallel  if false (default) duplicate non-loop edges throw
  explicit GraphBuilder(std::size_t n, bool allow_parallel = false);

  /// Adds undirected edge {u, v}; u == v adds a self-loop (repeatable).
  GraphBuilder& add_edge(VertexId u, VertexId v);

  /// Pre-sizes the edge accumulators (bulk loaders know m up front).
  GraphBuilder& reserve(std::size_t num_edges) {
    us_.reserve(num_edges);
    vs_.reserve(num_edges);
    return *this;
  }

  /// Adds `count` self-loops at v.
  GraphBuilder& add_loops(VertexId v, std::uint32_t count);

  [[nodiscard]] std::size_t num_vertices() const { return n_; }
  [[nodiscard]] std::size_t num_edges() const { return us_.size(); }

  /// Finalizes into CSR form.  The builder may be reused afterwards (edges
  /// are retained).
  [[nodiscard]] Graph build() const;

  /// Process-wide count of build() calls (thread-safe, monotone).  A test
  /// hook: paths that promise to stay view-only (no intermediate CSR
  /// materialization) assert this does not advance across them.
  [[nodiscard]] static std::uint64_t total_builds();

 private:
  std::size_t n_;
  bool allow_parallel_;
  std::vector<VertexId> us_, vs_;
};

}  // namespace xd

#include "graph/io.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "graph/file_bytes.hpp"
#include "util/check.hpp"

namespace xd {

void write_edge_list(const Graph& g, std::ostream& os) {
  os << g.num_vertices() << " " << g.num_edges() << "\n";
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.edge(e);
    os << u << " " << v << "\n";
  }
}

void write_edge_list_file(const Graph& g, const std::string& path) {
  std::ofstream os(path);
  XD_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  write_edge_list(g, os);
}

Graph read_edge_list(std::istream& is) {
  std::size_t n = 0;
  std::size_t m = 0;
  XD_CHECK_MSG(static_cast<bool>(is >> n >> m), "bad edge-list header");
  GraphBuilder b(n, /*allow_parallel=*/true);
  b.reserve(m);
  for (std::size_t e = 0; e < m; ++e) {
    VertexId u = 0;
    VertexId v = 0;
    XD_CHECK_MSG(static_cast<bool>(is >> u >> v),
                 "edge list truncated at edge " << e << " of " << m);
    b.add_edge(u, v);
  }
  return b.build();
}

Graph read_edge_list_file(const std::string& path) {
  std::ifstream is(path);
  XD_CHECK_MSG(is.good(), "cannot open " << path);
  return read_edge_list(is);
}

// ---------------------------------------------------- binary edge lists --

namespace {

constexpr std::size_t kHeaderBytes = 24;

// All on-disk integers are little-endian; the loader memcpys them raw, so
// gate on the host byte order (every supported target is little-endian).
static_assert(std::endian::native == std::endian::little,
              "binary graph IO assumes a little-endian host");

template <typename T>
T load_le(const unsigned char* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

template <typename T>
void store_le(T v, unsigned char* p) {
  std::memcpy(p, &v, sizeof(T));
}

/// Sorts keys with `threads` workers: chunk sorts in parallel, then a
/// binary merge tree.  Single-threaded (or small) inputs take std::sort.
void sort_keys(std::vector<std::uint64_t>& keys, unsigned threads) {
  const std::size_t n = keys.size();
  constexpr std::size_t kMinChunk = std::size_t{1} << 16;
  std::size_t chunks = threads;
  if (n >= 2 * kMinChunk) chunks = std::min<std::size_t>(chunks, n / kMinChunk);
  if (chunks < 2 || n < 2 * kMinChunk) {
    std::sort(keys.begin(), keys.end());
    return;
  }
  std::vector<std::size_t> bounds(chunks + 1);
  for (std::size_t c = 0; c <= chunks; ++c) bounds[c] = n * c / chunks;
  {
    std::vector<std::thread> workers;
    workers.reserve(chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
      workers.emplace_back([&keys, &bounds, c] {
        std::sort(keys.begin() + static_cast<std::ptrdiff_t>(bounds[c]),
                  keys.begin() + static_cast<std::ptrdiff_t>(bounds[c + 1]));
      });
    }
    for (auto& w : workers) w.join();
  }
  for (std::size_t step = 1; step < chunks; step *= 2) {
    for (std::size_t c = 0; c + step < chunks; c += 2 * step) {
      const std::size_t hi = std::min(c + 2 * step, chunks);
      std::inplace_merge(
          keys.begin() + static_cast<std::ptrdiff_t>(bounds[c]),
          keys.begin() + static_cast<std::ptrdiff_t>(bounds[c + step]),
          keys.begin() + static_cast<std::ptrdiff_t>(bounds[hi]));
    }
  }
}

/// (deg desc, id asc) relabeling permutations for the given degree table.
void degree_order(const std::vector<std::uint32_t>& deg,
                  std::vector<VertexId>& old_to_new,
                  std::vector<VertexId>& new_to_old) {
  const std::size_t n = deg.size();
  new_to_old.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    new_to_old[v] = static_cast<VertexId>(v);
  }
  std::sort(new_to_old.begin(), new_to_old.end(),
            [&deg](VertexId a, VertexId b) {
              if (deg[a] != deg[b]) return deg[a] > deg[b];
              return a < b;
            });
  old_to_new.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    old_to_new[new_to_old[i]] = static_cast<VertexId>(i);
  }
}

/// CSR conversion of deduplicated (u <= v) keys.
Graph build_from_keys(std::size_t n, const std::vector<std::uint64_t>& keys) {
  GraphBuilder b(n, /*allow_parallel=*/true);
  b.reserve(keys.size());
  for (const std::uint64_t k : keys) {
    b.add_edge(static_cast<VertexId>(k >> 32),
               static_cast<VertexId>(k & 0xffffffffu));
  }
  return b.build();
}

std::uint64_t edge_key(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

}  // namespace

void write_binary_edge_list_file(const Graph& g, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  XD_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  unsigned char header[kHeaderBytes];
  store_le<std::uint32_t>(kBinaryGraphMagic, header);
  store_le<std::uint32_t>(0, header + 4);  // reserved / format flags
  store_le<std::uint64_t>(g.num_vertices(), header + 8);
  store_le<std::uint64_t>(g.num_edges(), header + 16);
  os.write(reinterpret_cast<const char*>(header), kHeaderBytes);
  std::vector<unsigned char> buf;
  constexpr std::size_t kFlushEdges = std::size_t{1} << 16;
  buf.reserve(kFlushEdges * 8);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.edge(e);
    unsigned char pair[8];
    store_le<std::uint32_t>(u, pair);
    store_le<std::uint32_t>(v, pair + 4);
    buf.insert(buf.end(), pair, pair + 8);
    if (buf.size() >= kFlushEdges * 8) {
      os.write(reinterpret_cast<const char*>(buf.data()),
               static_cast<std::streamsize>(buf.size()));
      buf.clear();
    }
  }
  if (!buf.empty()) {
    os.write(reinterpret_cast<const char*>(buf.data()),
             static_cast<std::streamsize>(buf.size()));
  }
  XD_CHECK_MSG(os.good(), "short write on " << path);
}

LoadedGraph read_binary_edge_list_file(const std::string& path,
                                       const BinaryLoadOptions& opt) {
  FileBytes file(path);
  XD_CHECK_MSG(file.size() >= kHeaderBytes,
               path << ": truncated header (" << file.size() << " bytes)");
  const unsigned char* p = file.data();
  const std::uint32_t magic = load_le<std::uint32_t>(p);
  XD_CHECK_MSG(magic == kBinaryGraphMagic,
               path << ": bad magic 0x" << std::hex << magic
                    << " (not an XDG1 binary edge list)");
  const std::uint64_t n64 = load_le<std::uint64_t>(p + 8);
  const std::uint64_t m = load_le<std::uint64_t>(p + 16);
  XD_CHECK_MSG(n64 <= 0xffffffffu, path << ": n=" << n64 << " exceeds u32 ids");
  const std::size_t n = static_cast<std::size_t>(n64);
  XD_CHECK_MSG(file.size() == kHeaderBytes + 8 * m,
               path << ": size " << file.size() << " != header + 8*m for m="
                    << m);

  // Normalize (u <= v), drop loops unless kept, pack to one u64 per edge.
  std::vector<std::uint64_t> keys;
  keys.reserve(static_cast<std::size_t>(m));
  const unsigned char* q = p + kHeaderBytes;
  for (std::uint64_t e = 0; e < m; ++e, q += 8) {
    const std::uint32_t u = load_le<std::uint32_t>(q);
    const std::uint32_t v = load_le<std::uint32_t>(q + 4);
    XD_CHECK_MSG(u < n && v < n, path << ": edge " << e << " = (" << u << ","
                                      << v << ") out of range n=" << n);
    if (u == v && !opt.keep_self_loops) continue;
    keys.push_back(edge_key(u, v));
  }

  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned threads = opt.threads != 0 ? opt.threads : (hw != 0 ? hw : 1);
  sort_keys(keys, threads);
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  LoadedGraph out;
  if (opt.reorder_by_degree) {
    std::vector<std::uint32_t> deg(n, 0);
    for (const std::uint64_t k : keys) {
      ++deg[static_cast<std::uint32_t>(k >> 32)];
      ++deg[static_cast<std::uint32_t>(k & 0xffffffffu)];
    }
    degree_order(deg, out.old_to_new, out.new_to_old);
    for (std::uint64_t& k : keys) {
      k = edge_key(out.old_to_new[static_cast<std::uint32_t>(k >> 32)],
                   out.old_to_new[static_cast<std::uint32_t>(k & 0xffffffffu)]);
    }
    sort_keys(keys, threads);  // relabeling is a bijection: no new dups
  }
  out.graph = build_from_keys(n, keys);
  return out;
}

LoadedGraph reorder_by_degree(const Graph& g) {
  const std::size_t n = g.num_vertices();
  std::vector<std::uint32_t> deg(n);
  for (VertexId v = 0; v < n; ++v) deg[v] = g.degree(v);
  LoadedGraph out;
  degree_order(deg, out.old_to_new, out.new_to_old);
  GraphBuilder b(n, /*allow_parallel=*/true);
  b.reserve(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.edge(e);
    b.add_edge(out.old_to_new[u], out.old_to_new[v]);
  }
  out.graph = b.build();
  return out;
}

}  // namespace xd

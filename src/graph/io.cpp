#include "graph/io.hpp"

#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace xd {

void write_edge_list(const Graph& g, std::ostream& os) {
  os << g.num_vertices() << " " << g.num_edges() << "\n";
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.edge(e);
    os << u << " " << v << "\n";
  }
}

void write_edge_list_file(const Graph& g, const std::string& path) {
  std::ofstream os(path);
  XD_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  write_edge_list(g, os);
}

Graph read_edge_list(std::istream& is) {
  std::size_t n = 0;
  std::size_t m = 0;
  XD_CHECK_MSG(static_cast<bool>(is >> n >> m), "bad edge-list header");
  GraphBuilder b(n, /*allow_parallel=*/true);
  for (std::size_t e = 0; e < m; ++e) {
    VertexId u = 0;
    VertexId v = 0;
    XD_CHECK_MSG(static_cast<bool>(is >> u >> v),
                 "edge list truncated at edge " << e << " of " << m);
    b.add_edge(u, v);
  }
  return b.build();
}

Graph read_edge_list_file(const std::string& path) {
  std::ifstream is(path);
  XD_CHECK_MSG(is.good(), "cannot open " << path);
  return read_edge_list(is);
}

}  // namespace xd

#include "graph/file_bytes.hpp"

#include <cerrno>
#include <fstream>

#include "util/check.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define XD_IO_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace xd {

FileBytes::FileBytes(const std::string& path) {
#if XD_IO_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  XD_CHECK_MSG(fd >= 0, "cannot open " << path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    XD_CHECK_MSG(false, "cannot stat " << path);
  }
  if (S_ISREG(st.st_mode)) {
    size_ = static_cast<std::size_t>(st.st_size);
    if (size_ > 0) {
      void* p = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
      if (p != MAP_FAILED) {
        map_ = static_cast<const unsigned char*>(p);
        data_ = map_;
      }
    }
    if (map_ != nullptr || size_ == 0) {
      ::close(fd);
      return;
    }
    buf_.reserve(size_);
  }
  unsigned char chunk[1 << 16];
  for (;;) {
    const ssize_t got = ::read(fd, chunk, sizeof chunk);
    if (got < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      XD_CHECK_MSG(false, "read failed on " << path);
    }
    if (got == 0) break;
    buf_.insert(buf_.end(), chunk, chunk + got);
  }
  ::close(fd);
  size_ = buf_.size();
  data_ = buf_.data();
#else
  // No POSIX: sized single reads would trust a seek that non-seekable
  // inputs do not support, so read fixed chunks until EOF here too.
  std::ifstream is(path, std::ios::binary);
  XD_CHECK_MSG(is.good(), "cannot open " << path);
  char chunk[1 << 16];
  while (is.read(chunk, sizeof chunk) || is.gcount() > 0) {
    buf_.insert(buf_.end(), chunk, chunk + is.gcount());
    if (!is.good()) break;
  }
  XD_CHECK_MSG(is.eof(), "read failed on " << path);
  size_ = buf_.size();
  data_ = buf_.data();
#endif
}

FileBytes::~FileBytes() {
#if XD_IO_HAVE_MMAP
  if (map_ != nullptr) ::munmap(const_cast<unsigned char*>(map_), size_);
#endif
}

}  // namespace xd

#include "graph/file_bytes.hpp"

#include <cerrno>
#include <cstdint>
#include <fstream>

#include "util/check.hpp"
#include "util/fault_plane.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define XD_IO_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace xd {

FileBytes::FileBytes(const std::string& path) {
#if XD_IO_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  XD_CHECK_MSG(fd >= 0, "cannot open " << path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    XD_CHECK_MSG(false, "cannot stat " << path);
  }
  if (S_ISREG(st.st_mode)) {
    size_ = static_cast<std::size_t>(st.st_size);
    if (size_ > 0) {
      void* p = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
      if (p != MAP_FAILED) {
        map_ = static_cast<const unsigned char*>(p);
        data_ = map_;
      }
    }
    if (map_ != nullptr || size_ == 0) {
      ::close(fd);
      inject_faults(path);
      return;
    }
    buf_.reserve(size_);
  }
  unsigned char chunk[1 << 16];
  for (;;) {
    const ssize_t got = ::read(fd, chunk, sizeof chunk);
    if (got < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      XD_CHECK_MSG(false, "read failed on " << path);
    }
    if (got == 0) break;
    buf_.insert(buf_.end(), chunk, chunk + got);
  }
  ::close(fd);
  size_ = buf_.size();
  data_ = buf_.data();
  inject_faults(path);
#else
  // No POSIX: sized single reads would trust a seek that non-seekable
  // inputs do not support, so read fixed chunks until EOF here too.
  std::ifstream is(path, std::ios::binary);
  XD_CHECK_MSG(is.good(), "cannot open " << path);
  char chunk[1 << 16];
  while (is.read(chunk, sizeof chunk) || is.gcount() > 0) {
    buf_.insert(buf_.end(), chunk, chunk + is.gcount());
    if (!is.good()) break;
  }
  XD_CHECK_MSG(is.eof(), "read failed on " << path);
  size_ = buf_.size();
  data_ = buf_.data();
  inject_faults(path);
#endif
}

void FileBytes::inject_faults(const std::string& path) {
  FaultPlane& faults = FaultPlane::instance();
  if (!faults.armed(FaultCategory::kIo) || size_ == 0) return;
  // One key per load: FNV-1a of the path mixed with the byte size, so the
  // damage (and its location) replays exactly for the same file regardless
  // of which test or thread triggers the load.
  std::uint64_t key = 0xCBF29CE484222325ull;
  for (const char c : path) {
    key ^= static_cast<unsigned char>(c);
    key *= 0x100000001B3ull;
  }
  key ^= size_;
  const bool truncate = faults.should_fire("io.truncate", key);
  const bool bitflip = faults.should_fire("io.bitflip", key);
  const bool short_read = faults.should_fire("io.short_read", key);
  if (!truncate && !bitflip && !short_read) return;
  if (map_ != nullptr) {
    // The mapping is read-only; damage wants a private mutable copy.
    buf_.assign(map_, map_ + size_);
#if XD_IO_HAVE_MMAP
    ::munmap(const_cast<unsigned char*>(map_), size_);
#endif
    map_ = nullptr;
  }
  if (short_read) {
    // A transport that quit early: lose a 64 KiB tail (or half of a small
    // file) -- the shape a short read(2) loop bug would produce.
    size_ = size_ > (std::size_t{1} << 16) ? size_ - (std::size_t{1} << 16)
                                           : size_ / 2;
  }
  if (truncate && size_ > 0) {
    size_ = faults.decision_mix("io.truncate", key) % size_;
  }
  if (bitflip && size_ > 0) {
    const std::uint64_t bit =
        faults.decision_mix("io.bitflip", key) % (std::uint64_t{size_} * 8);
    buf_[static_cast<std::size_t>(bit / 8)] ^=
        static_cast<unsigned char>(1u << (bit % 8));
  }
  buf_.resize(size_);
  data_ = buf_.data();
}

FileBytes::~FileBytes() {
#if XD_IO_HAVE_MMAP
  if (map_ != nullptr) ::munmap(const_cast<unsigned char*>(map_), size_);
#endif
}

}  // namespace xd

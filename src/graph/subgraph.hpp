#pragma once

/// \file subgraph.hpp
/// Induced subgraphs G[S] and the paper's degree-preserving G{S}, plus edge
/// removal with loop substitution (the decomposition's Remove-1/2/3 steps
/// never change any degree).

#include <vector>

#include "graph/access.hpp"
#include "graph/graph.hpp"
#include "graph/vertex_set.hpp"

namespace xd {

/// A subgraph together with the vertex renumbering used to build it.
struct SubgraphMap {
  Graph graph;
  /// new id -> parent id (size = graph.num_vertices()).
  std::vector<VertexId> to_parent;
  /// parent id -> new id, or kAbsent when the parent vertex is not in S.
  std::vector<VertexId> from_parent;

  static constexpr VertexId kAbsent = static_cast<VertexId>(-1);
};

/// G[S]: induced subgraph on S; self-loops of members are kept, degrees of
/// boundary vertices shrink.
SubgraphMap induced_subgraph(const Graph& g, const VertexSet& s);

/// G{S}: induced subgraph on S with one self-loop added per boundary edge
/// lost, so deg_{G{S}}(v) == deg_G(v) for every v in S (paper, §1
/// Terminology).
SubgraphMap induced_with_loops(const Graph& g, const VertexSet& s);

/// Removes the flagged edges, adding one self-loop at *both* endpoints of
/// every removed non-loop edge (the paper's edge-removal discipline: "we add
/// a self loop at both u and v, and so the degree of a vertex never
/// changes").  Vertex ids are preserved.  Removing a self-loop is forbidden.
///
/// \param removed bitmap indexed by EdgeId of g.
Graph remove_edges_with_loops(const Graph& g, const std::vector<char>& removed);

/// G{U} materialized against an ambient graph with an edge-removal overlay,
/// keeping edge provenance.  This is the decomposition driver's working
/// view: removed edges and boundary edges both appear as self-loops (so
/// every degree matches the ambient graph), and each surviving non-loop
/// edge knows its ambient EdgeId.
struct LiveSubgraph {
  Graph graph;
  std::vector<VertexId> to_parent;    ///< local -> ambient vertex id
  std::vector<VertexId> from_parent;  ///< ambient -> local, kAbsent outside U
  /// Local EdgeId -> ambient EdgeId; kNoEdge for substitution loops.
  std::vector<EdgeId> edge_to_parent;

  static constexpr VertexId kAbsent = static_cast<VertexId>(-1);
  static constexpr EdgeId kNoEdge = static_cast<EdgeId>(-1);
};

/// Builds G{U} of (g minus removed edges).  `removed` is indexed by g's
/// EdgeIds; self-loops of g must not be flagged.
LiveSubgraph live_subgraph(const Graph& g, const std::vector<char>& removed,
                           const VertexSet& u);

/// Connected components, treating self-loops as irrelevant.  Generic over
/// GraphAccess: on a GraphView only active vertices are labeled (inactive
/// stay at the uint32 max sentinel) and masked slots -- reading as loops --
/// are never traversed, so no remainder graph has to be materialized.
/// Returns (component id per vertex, number of components); ids are dense
/// and assigned in ascending order of each component's smallest vertex.
template <GraphAccess G>
std::pair<std::vector<std::uint32_t>, std::size_t> connected_components(
    const G& g);

/// Splits g into one SubgraphMap per connected component, each equal to
/// induced_subgraph on the component (components have no boundary edges, so
/// G[S] == G{S}).  Single-pass: vertices are bucketed by component id and
/// every adjacency is scanned exactly once, instead of a VertexSet +
/// induced-subgraph rebuild per component.
std::vector<SubgraphMap> component_subgraphs(const Graph& g);

}  // namespace xd

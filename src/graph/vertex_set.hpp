#pragma once

/// \file vertex_set.hpp
/// A set of vertices S ⊆ V, stored sorted.  The cut/conductance metrics and
/// the decomposition bookkeeping all traffic in these.

#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace xd {

/// Sorted, duplicate-free vertex set with O(log n) membership queries.
class VertexSet {
 public:
  VertexSet() = default;
  /// Takes any order, sorts and dedups.
  explicit VertexSet(std::vector<VertexId> ids);
  VertexSet(std::initializer_list<VertexId> ids);

  /// The full vertex set {0, ..., n-1}.
  static VertexSet all(std::size_t n);

  [[nodiscard]] bool contains(VertexId v) const;
  [[nodiscard]] std::size_t size() const { return ids_.size(); }
  [[nodiscard]] bool empty() const { return ids_.empty(); }
  [[nodiscard]] std::span<const VertexId> ids() const { return ids_; }

  [[nodiscard]] auto begin() const { return ids_.begin(); }
  [[nodiscard]] auto end() const { return ids_.end(); }

  /// V \ S against ground set {0, ..., n-1}.
  [[nodiscard]] VertexSet complement(std::size_t n) const;
  [[nodiscard]] VertexSet set_union(const VertexSet& other) const;
  [[nodiscard]] VertexSet set_intersection(const VertexSet& other) const;
  [[nodiscard]] VertexSet set_difference(const VertexSet& other) const;

  /// Membership bitmap of size n (convenience for linear-scan algorithms).
  [[nodiscard]] std::vector<char> bitmap(std::size_t n) const;

  /// Builds the set {v : mask[v] != 0}.
  static VertexSet from_bitmap(const std::vector<char>& mask);

  friend bool operator==(const VertexSet&, const VertexSet&) = default;

 private:
  std::vector<VertexId> ids_;
};

}  // namespace xd

#pragma once

/// \file service.hpp
/// Concurrent query service over one PreparedArtifact (docs/serving.md).
///
/// The serving half of the build-once lifecycle: clients submit triangle /
/// routing / conductance queries into a bounded admission queue, and
/// flush() executes them in batches against the shared immutable artifact.
/// Execution is two-phase:
///
///   * Phase A (parallel): every admitted query is computed read-only from
///     the artifact on the EpochScheduler, each on its own forked
///     RoundLedger branch.  The phase always forks -- even at one thread --
///     so the charged totals are identical at every thread count (the
///     scheduler's determinism contract: threads shape wall-clock only).
///   * Phase B (sequential): route queries stage their relay paths into
///     the service's QueueArena in admission order and one synchronous
///     drain delivers them all, charging the shared clock the drain's round
///     count (concurrent demands contend for directed-edge bandwidth,
///     exactly like the simulated routers).
///
/// Results come back in admission order and are bit-identical for every
/// ServiceParams::threads setting; per-client RoundLedger-style sums are
/// tracked in ClientStats.
///
/// Robustness (docs/robustness.md): flush_report() wraps the two phases in
/// a retry ladder.  A flush the fault plane fails (serve.flush) is retried
/// with capped exponential backoff against a scratch ledger -- the shared
/// clock only absorbs the attempt that commits, so a faulty run charges
/// exactly what the fault-free run charges.  Per-query deadlines
/// (ServiceParams::deadline_rounds) and exhausted retries degrade answers
/// instead of throwing: QueryResult::exact flips false and the value falls
/// back to a cheaper local summary (a component-local triangle count, a
/// depth-sum route estimate).  ServiceHealth counts everything.

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "congest/ledger.hpp"
#include "congest/scheduler.hpp"
#include "routing/queue_arena.hpp"
#include "serve/artifact.hpp"

namespace xd::serve {

enum class QueryKind : int {
  kTriangleCount = 0,      ///< total triangles in the artifact
  kTrianglesOf = 1,        ///< ids of triangles incident to vertex a
  kTriangleMembership = 2, ///< is {a, b, c} a listed triangle?
  kRoute = 3,              ///< relay-forest route a -> b
  kConductance = 4,        ///< component a's conductance observation
  kComponentOf = 5,        ///< component label of vertex a
};

/// One client request.  Unused operand slots are ignored per kind.
struct Query {
  QueryKind kind = QueryKind::kTriangleCount;
  VertexId a = 0;
  VertexId b = 0;
  VertexId c = 0;
};

/// One answered query, in admission order.
struct QueryResult {
  QueryKind kind = QueryKind::kTriangleCount;
  std::uint32_t client = 0;
  std::uint64_t ticket = 0;        ///< global admission sequence number
  bool ok = false;                 ///< false: bad operand / no route
  bool exact = true;               ///< false: degraded (deadline / retries)
  std::uint64_t value = 0;         ///< count / 0-1 / label / hop count
  double scalar = 0.0;             ///< conductance (kConductance only)
  std::uint64_t rounds_charged = 0;///< model cost + drain arrival round
  std::uint64_t messages = 0;      ///< messages this answer accounts for
  /// kTrianglesOf: incident triangle ids (ascending).
  /// kRoute: the delivered vertex path a .. b.
  std::vector<std::uint32_t> ids;
};

struct ServiceParams {
  int threads = 1;              ///< Phase A scheduler threads (>= 1)
  std::size_t max_pending = 1024;  ///< admission queue bound (backpressure)
  std::size_t max_batch = 256;     ///< queries executed per flush()
  /// Per-query round budget (0 = no deadline).  A query whose model cost
  /// would exceed it returns a truncated / estimated answer with
  /// exact == false, charged exactly `deadline_rounds` -- deterministic at
  /// every thread count (costs are model values, not wall-clock).
  std::uint64_t deadline_rounds = 0;
  /// Failed flushes (the serve.flush fault site) retry up to this many
  /// times before degrading the whole batch.
  int max_flush_retries = 3;
  std::uint64_t backoff_base_us = 50;  ///< first retry sleep; doubles per try
  std::uint64_t backoff_cap_us = 2000; ///< backoff ceiling
};

/// Why a flush_report() did not commit a normal batch.
enum class FlushFailure : int {
  kNone = 0,            ///< committed normally
  kRetryExhausted = 1,  ///< every attempt faulted; batch degraded
};

/// One flush's outcome: the results plus how they were obtained.
struct FlushReport {
  std::vector<QueryResult> results;  ///< admission order, as flush()
  int attempts = 1;                  ///< Phase A runs consumed (>= 1)
  FlushFailure failure = FlushFailure::kNone;
  bool degraded = false;  ///< batch served by the degraded fallback
};

/// Monotone robustness counters over the service's lifetime.
struct ServiceHealth {
  std::uint64_t faults_seen = 0;       ///< serve.flush faults hit
  std::uint64_t flush_retries = 0;     ///< retry attempts spent
  std::uint64_t degraded_answers = 0;  ///< results returned with exact=false
  std::uint64_t deadline_hits = 0;     ///< degradations due to the deadline
  std::uint64_t retransmits = 0;       ///< shard-plane wire retransmits
};

/// Per-client fork of the accounting: sums over that client's answers.
struct ClientStats {
  std::uint64_t submitted = 0;  ///< submit() calls (accepted + rejected)
  std::uint64_t served = 0;
  std::uint64_t rejected = 0;   ///< bounced by backpressure
  std::uint64_t rounds = 0;     ///< sum of rounds_charged over its answers
  std::uint64_t messages = 0;
};

/// Executes query streams against one shared PreparedArtifact.  The
/// artifact must outlive the service (the QueueArena keeps a pointer to
/// its graph).  Not internally synchronized: one thread drives submit() /
/// flush(); parallelism lives inside flush()'s Phase A.
class QueryService {
 public:
  QueryService(const PreparedArtifact& artifact, const ServiceParams& prm);

  /// Admits one query from `client`.  Returns false -- and counts a
  /// rejection -- when the pending queue is at max_pending (the caller
  /// should flush() and retry: closed-loop backpressure).
  bool submit(std::uint32_t client, const Query& q);

  /// Executes up to max_batch pending queries (FIFO admission order) and
  /// returns their results in that order.  Empty queue -> empty vector.
  /// Equivalent to flush_report().results.
  std::vector<QueryResult> flush();

  /// flush() with the robustness envelope made visible: attempts consumed,
  /// typed failure reason, and whether the batch fell back to degraded
  /// answers.  Each attempt runs Phase A against a scratch ledger; only
  /// the committing attempt's charges reach ledger(), so retries never
  /// inflate the clock.  Never throws for injected flush faults -- the
  /// worst outcome is a fully degraded batch (exact == false throughout).
  FlushReport flush_report();

  /// Snapshot of the robustness counters (retransmits read from the fault
  /// plane's shard-wire ledger).
  [[nodiscard]] ServiceHealth health() const;

  [[nodiscard]] std::size_t pending() const { return pending_.size(); }
  [[nodiscard]] std::uint64_t total_served() const { return total_served_; }
  [[nodiscard]] std::uint64_t total_rejected() const {
    return total_rejected_;
  }

  /// The service's shared clock: Phase A query costs (epoch max per batch)
  /// plus every Phase B drain.
  [[nodiscard]] const congest::RoundLedger& ledger() const { return ledger_; }

  /// Per-client accounting, keyed by client id.
  [[nodiscard]] const std::map<std::uint32_t, ClientStats>& clients() const {
    return clients_;
  }

 private:
  struct Pending {
    std::uint32_t client;
    std::uint64_t ticket;
    Query query;
  };

  /// Phase A of one attempt: compute `taken` read-only against the
  /// artifact, charging `scratch`.  Deterministic, so a retry recomputes
  /// identical results.
  void run_phase_a(const std::vector<Pending>& taken,
                   congest::RoundLedger& scratch,
                   std::vector<QueryResult>& results,
                   std::vector<std::vector<VertexId>>& route_paths) const;

  /// Serial last-resort answers when retries are exhausted: cheap local
  /// summaries (exact=false where the full answer was out of reach),
  /// bypassing the pool and the arena entirely.
  std::vector<QueryResult> degraded_answers(const std::vector<Pending>& taken);

  const PreparedArtifact& art_;
  ServiceParams prm_;
  congest::EpochScheduler pool_;
  routing::QueueArena arena_;
  congest::RoundLedger ledger_;
  std::deque<Pending> pending_;
  std::map<std::uint32_t, ClientStats> clients_;
  std::uint64_t next_ticket_ = 0;
  std::uint64_t total_served_ = 0;
  std::uint64_t total_rejected_ = 0;
  std::uint64_t flush_seq_ = 0;  ///< fault key coordinate per flush
  ServiceHealth health_;
};

}  // namespace xd::serve

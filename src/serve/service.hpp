#pragma once

/// \file service.hpp
/// Concurrent query service over one PreparedArtifact (docs/serving.md).
///
/// The serving half of the build-once lifecycle: clients submit triangle /
/// routing / conductance queries into a bounded admission queue, and
/// flush() executes them in batches against the shared immutable artifact.
/// Execution is two-phase:
///
///   * Phase A (parallel): every admitted query is computed read-only from
///     the artifact on the EpochScheduler, each on its own forked
///     RoundLedger branch.  The phase always forks -- even at one thread --
///     so the charged totals are identical at every thread count (the
///     scheduler's determinism contract: threads shape wall-clock only).
///   * Phase B (sequential): route queries stage their relay paths into
///     the service's QueueArena in admission order and one synchronous
///     drain delivers them all, charging the shared clock the drain's round
///     count (concurrent demands contend for directed-edge bandwidth,
///     exactly like the simulated routers).
///
/// Results come back in admission order and are bit-identical for every
/// ServiceParams::threads setting; per-client RoundLedger-style sums are
/// tracked in ClientStats.

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "congest/ledger.hpp"
#include "congest/scheduler.hpp"
#include "routing/queue_arena.hpp"
#include "serve/artifact.hpp"

namespace xd::serve {

enum class QueryKind : int {
  kTriangleCount = 0,      ///< total triangles in the artifact
  kTrianglesOf = 1,        ///< ids of triangles incident to vertex a
  kTriangleMembership = 2, ///< is {a, b, c} a listed triangle?
  kRoute = 3,              ///< relay-forest route a -> b
  kConductance = 4,        ///< component a's conductance observation
  kComponentOf = 5,        ///< component label of vertex a
};

/// One client request.  Unused operand slots are ignored per kind.
struct Query {
  QueryKind kind = QueryKind::kTriangleCount;
  VertexId a = 0;
  VertexId b = 0;
  VertexId c = 0;
};

/// One answered query, in admission order.
struct QueryResult {
  QueryKind kind = QueryKind::kTriangleCount;
  std::uint32_t client = 0;
  std::uint64_t ticket = 0;        ///< global admission sequence number
  bool ok = false;                 ///< false: bad operand / no route
  std::uint64_t value = 0;         ///< count / 0-1 / label / hop count
  double scalar = 0.0;             ///< conductance (kConductance only)
  std::uint64_t rounds_charged = 0;///< model cost + drain arrival round
  std::uint64_t messages = 0;      ///< messages this answer accounts for
  /// kTrianglesOf: incident triangle ids (ascending).
  /// kRoute: the delivered vertex path a .. b.
  std::vector<std::uint32_t> ids;
};

struct ServiceParams {
  int threads = 1;              ///< Phase A scheduler threads (>= 1)
  std::size_t max_pending = 1024;  ///< admission queue bound (backpressure)
  std::size_t max_batch = 256;     ///< queries executed per flush()
};

/// Per-client fork of the accounting: sums over that client's answers.
struct ClientStats {
  std::uint64_t submitted = 0;  ///< submit() calls (accepted + rejected)
  std::uint64_t served = 0;
  std::uint64_t rejected = 0;   ///< bounced by backpressure
  std::uint64_t rounds = 0;     ///< sum of rounds_charged over its answers
  std::uint64_t messages = 0;
};

/// Executes query streams against one shared PreparedArtifact.  The
/// artifact must outlive the service (the QueueArena keeps a pointer to
/// its graph).  Not internally synchronized: one thread drives submit() /
/// flush(); parallelism lives inside flush()'s Phase A.
class QueryService {
 public:
  QueryService(const PreparedArtifact& artifact, const ServiceParams& prm);

  /// Admits one query from `client`.  Returns false -- and counts a
  /// rejection -- when the pending queue is at max_pending (the caller
  /// should flush() and retry: closed-loop backpressure).
  bool submit(std::uint32_t client, const Query& q);

  /// Executes up to max_batch pending queries (FIFO admission order) and
  /// returns their results in that order.  Empty queue -> empty vector.
  std::vector<QueryResult> flush();

  [[nodiscard]] std::size_t pending() const { return pending_.size(); }
  [[nodiscard]] std::uint64_t total_served() const { return total_served_; }
  [[nodiscard]] std::uint64_t total_rejected() const {
    return total_rejected_;
  }

  /// The service's shared clock: Phase A query costs (epoch max per batch)
  /// plus every Phase B drain.
  [[nodiscard]] const congest::RoundLedger& ledger() const { return ledger_; }

  /// Per-client accounting, keyed by client id.
  [[nodiscard]] const std::map<std::uint32_t, ClientStats>& clients() const {
    return clients_;
  }

 private:
  struct Pending {
    std::uint32_t client;
    std::uint64_t ticket;
    Query query;
  };

  const PreparedArtifact& art_;
  ServiceParams prm_;
  congest::EpochScheduler pool_;
  routing::QueueArena arena_;
  congest::RoundLedger ledger_;
  std::deque<Pending> pending_;
  std::map<std::uint32_t, ClientStats> clients_;
  std::uint64_t next_ticket_ = 0;
  std::uint64_t total_served_ = 0;
  std::uint64_t total_rejected_ = 0;
};

}  // namespace xd::serve

#include "serve/artifact.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>

#include "congest/ledger.hpp"
#include "expander/decomposition.hpp"
#include "graph/file_bytes.hpp"
#include "util/check.hpp"
#include "util/crc32c.hpp"
#include "util/rng.hpp"

namespace xd::serve {

namespace {

// All on-disk integers are little-endian; the loader memcpys them raw, so
// gate on the host byte order (matching graph/io.cpp).
static_assert(std::endian::native == std::endian::little,
              "artifact IO assumes a little-endian host");

constexpr std::size_t kHeaderBytes = 32;
constexpr std::size_t kSectionEntryBytes = 24;
constexpr std::size_t kSectionCount = 6;
/// Offset of the header's reserved u64, now the whole-file CRC-32C slot
/// (0 = checksum absent, the legacy meaning of the reserved field).
constexpr std::size_t kCrcAt = 24;

constexpr std::uint32_t section_tag(const char (&t)[5]) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(t[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(t[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(t[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(t[3])) << 24;
}

constexpr std::uint32_t kTagGraph = section_tag("GRPH");
constexpr std::uint32_t kTagDecomp = section_tag("DCMP");
constexpr std::uint32_t kTagStats = section_tag("STAT");
constexpr std::uint32_t kTagHier = section_tag("HIER");
constexpr std::uint32_t kTagTris = section_tag("TRIS");
constexpr std::uint32_t kTagMeta = section_tag("META");

constexpr std::uint32_t kSectionOrder[kSectionCount] = {
    kTagGraph, kTagDecomp, kTagStats, kTagHier, kTagTris, kTagMeta};

/// Appending little-endian writer over one growing byte vector.
class ByteSink {
 public:
  template <typename T>
  void put(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    unsigned char raw[sizeof(T)];
    std::memcpy(raw, &v, sizeof(T));
    bytes_.insert(bytes_.end(), raw, raw + sizeof(T));
  }

  void patch_u64(std::size_t offset, std::uint64_t v) {
    std::memcpy(bytes_.data() + offset, &v, sizeof v);
  }

  [[nodiscard]] std::size_t size() const { return bytes_.size(); }
  [[nodiscard]] const std::vector<unsigned char>& bytes() const {
    return bytes_;
  }

 private:
  std::vector<unsigned char> bytes_;
};

/// Bounds-checked little-endian reader over one section's payload.
class ByteSource {
 public:
  ByteSource(const unsigned char* data, std::size_t size, const char* what)
      : data_(data), size_(size), what_(what) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    XD_CHECK_MSG(pos_ + sizeof(T) <= size_,
                 what_ << ": section payload overrun at byte " << pos_);
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

 private:
  const unsigned char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  const char* what_;
};

/// Deterministic per-component BFS relay forests over the live (non-removed)
/// intra-component edges, neighbors visited in slot order.  Components that
/// come apart under practical-mode guards get one tree per piece (extra
/// roots keep parent[v] == v).
void build_relay_forest(const Graph& g, const std::vector<std::uint32_t>& comp,
                        const std::vector<char>& removed,
                        std::vector<VertexId>& parent,
                        std::vector<std::uint32_t>& depth,
                        std::vector<ComponentInfo>& infos) {
  const std::size_t n = g.num_vertices();
  parent.resize(n);
  depth.assign(n, 0);
  for (VertexId v = 0; v < n; ++v) parent[v] = v;
  std::vector<char> seen(n, 0);
  std::vector<VertexId> queue;
  for (VertexId v = 0; v < n; ++v) {
    if (seen[v]) continue;
    const std::uint32_t c = comp[v];
    // First unseen member in id order starts a tree (the component's min-id
    // vertex -- its root -- starts the first one).
    queue.clear();
    queue.push_back(v);
    seen[v] = 1;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const VertexId u = queue[head];
      infos[c].height = std::max(infos[c].height, depth[u]);
      const auto nbrs = g.neighbors(u);
      const auto eids = g.incident_edges(u);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const VertexId w = nbrs[i];
        if (w == u || seen[w] || removed[eids[i]] || comp[w] != c) continue;
        seen[w] = 1;
        parent[w] = u;
        depth[w] = depth[u] + 1;
        queue.push_back(w);
      }
    }
  }
}

}  // namespace

void PreparedArtifact::build_index() {
  const std::size_t n = graph.num_vertices();
  tri_offsets.assign(n + 1, 0);
  for (const auto& t : triangles) {
    for (const VertexId v : t) ++tri_offsets[v + 1];
  }
  for (std::size_t v = 0; v < n; ++v) tri_offsets[v + 1] += tri_offsets[v];
  tri_ids.resize(3 * triangles.size());
  std::vector<std::uint32_t> cursor(tri_offsets.begin(), tri_offsets.end() - 1);
  for (std::uint32_t i = 0; i < triangles.size(); ++i) {
    for (const VertexId v : triangles[i]) tri_ids[cursor[v]++] = i;
  }
  comp_triangles.assign(num_components, 0);
  if (!component.empty()) {
    for (const auto& t : triangles) ++comp_triangles[component[t[0]]];
  }
}

bool PreparedArtifact::has_triangle(VertexId a, VertexId b, VertexId c) const {
  triangle::Triangle t{a, b, c};
  std::sort(t.begin(), t.end());
  if (t[0] == t[1] || t[1] == t[2]) return false;
  return std::binary_search(triangles.begin(), triangles.end(), t);
}

bool PreparedArtifact::relay_path(VertexId u, VertexId v,
                                  std::vector<VertexId>& path) const {
  if (component[u] != component[v]) return false;
  VertexId x = u;
  VertexId y = v;
  std::vector<VertexId> tail;
  while (relay_depth[x] > relay_depth[y]) {
    path.push_back(x);
    x = relay_parent[x];
  }
  while (relay_depth[y] > relay_depth[x]) {
    tail.push_back(y);
    y = relay_parent[y];
  }
  while (x != y) {
    // Disjoint trees of a fragmented component meet only at their roots;
    // hitting both roots without converging means no relay route exists.
    if (relay_parent[x] == x && relay_parent[y] == y) return false;
    path.push_back(x);
    x = relay_parent[x];
    tail.push_back(y);
    y = relay_parent[y];
  }
  path.push_back(x);
  path.insert(path.end(), tail.rbegin(), tail.rend());
  return true;
}

PreparedArtifact prepare_artifact(const Graph& g, const PrepareParams& prm) {
  PreparedArtifact art;
  art.graph = g;  // CSR copy: the artifact owns its ambient graph
  const std::size_t n = g.num_vertices();
  congest::RoundLedger ledger;

  // --- Theorem 1 decomposition (the serving partition). ---
  expander::DecompositionParams dprm;
  dprm.epsilon = prm.enumerate.epsilon;
  dprm.k = prm.enumerate.k;
  dprm.phi0_override = prm.enumerate.phi0_override;
  dprm.scheduler_threads = prm.enumerate.scheduler_threads;
  dprm.backend = prm.decomp_backend;
  Rng drng = Rng(prm.seed).fork(0xD5C0);
  const auto decomp = expander::expander_decomposition(g, dprm, drng, ledger);
  art.component = decomp.component;
  art.num_components = static_cast<std::uint32_t>(decomp.num_components);
  art.removed_edge = decomp.removed_edge;
  for (int r = 0; r < 3; ++r) art.removed_by[r] = decomp.removed_by[r];

  // --- Per-component conductance/balance stats. ---
  art.components.assign(art.num_components, ComponentInfo{});
  const std::uint64_t total_volume = g.volume();
  for (VertexId v = 0; v < n; ++v) {
    auto& info = art.components[art.component[v]];
    if (info.size == 0 || v < info.root) info.root = v;
    ++info.size;
    info.volume += g.degree(v);
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (g.is_loop(e)) continue;
    const auto [u, v] = g.edge(e);
    const std::uint32_t cu = art.component[u];
    const std::uint32_t cv = art.component[v];
    if (cu != cv) {
      ++art.components[cu].cut;
      ++art.components[cv].cut;
    } else if (!art.removed_edge[e]) {
      ++art.components[cu].internal_edges;
    }
  }
  for (auto& info : art.components) {
    const std::uint64_t other = total_volume - info.volume;
    const std::uint64_t small = std::min(info.volume, other);
    info.conductance = small == 0
                           ? std::numeric_limits<double>::infinity()
                           : static_cast<double>(info.cut) / small;
    info.balance = total_volume == 0
                       ? 0.0
                       : static_cast<double>(small) / total_volume;
  }

  // --- GKS hierarchy summary: relay forests + beta / portal counts. ---
  art.router_depth =
      static_cast<std::uint32_t>(std::max(1, prm.enumerate.router_depth));
  build_relay_forest(g, art.component, art.removed_edge, art.relay_parent,
                     art.relay_depth, art.components);
  art.portals.assign(std::size_t{art.num_components} * art.router_depth, 1);
  for (std::uint32_t c = 0; c < art.num_components; ++c) {
    auto& info = art.components[c];
    const double m_c = static_cast<double>(info.internal_edges);
    info.beta = m_c > 0 ? std::pow(m_c, 1.0 / art.router_depth) : 0.0;
    for (std::uint32_t l = 0; l < art.router_depth; ++l) {
      const double denom = info.beta > 0 ? std::pow(info.beta, l) : 1.0;
      const double count = m_c > 0 ? std::ceil(m_c / denom) : 1.0;
      art.portals[std::size_t{c} * art.router_depth + l] =
          static_cast<std::uint64_t>(std::max(1.0, count));
    }
  }

  // --- Theorem 2 triangle plane.  Fresh Rng(seed): exactly the stream a
  // direct enumerate_congest call would draw, so golden pins carry over.
  Rng erng(prm.seed);
  const auto enumed =
      triangle::enumerate_congest(g, prm.enumerate, erng, ledger);
  art.triangles = enumed.triangles;
  art.enum_rounds = enumed.rounds;
  art.router_queries = enumed.router_queries;
  art.enum_levels = static_cast<std::uint32_t>(enumed.levels);
  art.clusters_processed = enumed.clusters_processed;

  art.epsilon = prm.enumerate.epsilon;
  art.k = prm.enumerate.k;
  art.phi0 = prm.enumerate.phi0_override;
  art.backend = static_cast<int>(prm.enumerate.backend);
  art.decomp_backend = static_cast<int>(prm.decomp_backend);
  art.seed = prm.seed;
  art.build_rounds = ledger.rounds();
  art.build_messages = ledger.messages();

  art.build_index();
  return art;
}

// ------------------------------------------------------------------ save --

void save_artifact(const PreparedArtifact& art, const std::string& path) {
  const std::size_t n = art.graph.num_vertices();
  const std::size_t m = art.graph.num_edges();
  ByteSink sink;

  // Header.
  sink.put<std::uint32_t>(kArtifactMagic);
  sink.put<std::uint32_t>(kArtifactVersion);
  sink.put<std::uint64_t>(kSectionCount);
  const std::size_t file_size_at = sink.size();
  sink.put<std::uint64_t>(0);  // file size, patched below
  sink.put<std::uint64_t>(0);  // reserved

  // Section table (offsets/sizes patched as payloads are emitted).
  const std::size_t table_at = sink.size();
  for (const std::uint32_t tag : kSectionOrder) {
    sink.put<std::uint32_t>(tag);
    sink.put<std::uint32_t>(0);  // reserved
    sink.put<std::uint64_t>(0);  // offset
    sink.put<std::uint64_t>(0);  // size
  }

  std::size_t section = 0;
  std::size_t payload_start = 0;
  const auto begin_section = [&] { payload_start = sink.size(); };
  const auto end_section = [&] {
    const std::size_t entry = table_at + section * kSectionEntryBytes;
    sink.patch_u64(entry + 8, payload_start);
    sink.patch_u64(entry + 16, sink.size() - payload_start);
    ++section;
  };

  // GRPH: edge endpoints in EdgeId order (loops verbatim) -- replaying
  // them through GraphBuilder reproduces the CSR bit-for-bit.
  begin_section();
  sink.put<std::uint64_t>(n);
  sink.put<std::uint64_t>(m);
  for (EdgeId e = 0; e < m; ++e) {
    const auto [u, v] = art.graph.edge(e);
    sink.put<std::uint32_t>(u);
    sink.put<std::uint32_t>(v);
  }
  end_section();

  // DCMP.
  begin_section();
  sink.put<std::uint64_t>(art.num_components);
  for (int r = 0; r < 3; ++r) sink.put<std::uint64_t>(art.removed_by[r]);
  for (VertexId v = 0; v < n; ++v) sink.put<std::uint32_t>(art.component[v]);
  for (EdgeId e = 0; e < m; ++e) {
    sink.put<std::uint8_t>(art.removed_edge[e] ? 1 : 0);
  }
  end_section();

  // STAT.
  begin_section();
  for (const auto& info : art.components) {
    sink.put<std::uint32_t>(info.root);
    sink.put<std::uint32_t>(info.size);
    sink.put<std::uint64_t>(info.volume);
    sink.put<std::uint64_t>(info.cut);
    sink.put<std::uint64_t>(info.internal_edges);
    sink.put<double>(info.conductance);
    sink.put<double>(info.balance);
  }
  end_section();

  // HIER.
  begin_section();
  sink.put<std::uint32_t>(art.router_depth);
  sink.put<std::uint32_t>(0);  // reserved
  for (VertexId v = 0; v < n; ++v) sink.put<std::uint32_t>(art.relay_parent[v]);
  for (VertexId v = 0; v < n; ++v) sink.put<std::uint32_t>(art.relay_depth[v]);
  for (const auto& info : art.components) {
    sink.put<std::uint32_t>(info.height);
    sink.put<std::uint32_t>(0);  // reserved
    sink.put<double>(info.beta);
  }
  for (const std::uint64_t p : art.portals) sink.put<std::uint64_t>(p);
  end_section();

  // TRIS.
  begin_section();
  sink.put<std::uint64_t>(art.triangles.size());
  for (const auto& t : art.triangles) {
    for (const VertexId v : t) sink.put<std::uint32_t>(v);
  }
  end_section();

  // META.
  begin_section();
  sink.put<double>(art.epsilon);
  sink.put<double>(art.phi0);
  sink.put<std::int32_t>(art.k);
  sink.put<std::int32_t>(art.backend);
  sink.put<std::uint64_t>(art.seed);
  sink.put<std::uint64_t>(art.build_rounds);
  sink.put<std::uint64_t>(art.build_messages);
  sink.put<std::uint64_t>(art.enum_rounds);
  sink.put<std::uint64_t>(art.router_queries);
  sink.put<std::uint32_t>(art.enum_levels);
  sink.put<std::uint32_t>(static_cast<std::uint32_t>(art.decomp_backend));
  sink.put<std::uint64_t>(art.clusters_processed);
  end_section();

  sink.patch_u64(file_size_at, sink.size());

  // Header integrity: CRC-32C of the whole file computed while the
  // reserved u64 at offset 24 still holds zero, then stored there (the low
  // 32 bits; the high 32 stay zero).  Loaders recompute over the same
  // zeroed field; a legacy file's zero there means "no checksum" and skips
  // the verify, so version stays 1 and save(load(save(x))) stays
  // byte-identical.
  const std::uint32_t crc = crc32c(sink.bytes().data(), sink.size());
  sink.patch_u64(kCrcAt, crc);

  std::ofstream os(path, std::ios::binary);
  XD_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  os.write(reinterpret_cast<const char*>(sink.bytes().data()),
           static_cast<std::streamsize>(sink.size()));
  XD_CHECK_MSG(os.good(), "short write on " << path);
}

// ------------------------------------------------------------------ load --

PreparedArtifact load_artifact(const std::string& path) {
  FileBytes file(path);
  XD_CHECK_MSG(file.size() >= kHeaderBytes,
               path << ": truncated header (" << file.size() << " bytes)");
  ByteSource header(file.data(), kHeaderBytes, "header");
  const auto magic = header.get<std::uint32_t>();
  XD_CHECK_MSG(magic == kArtifactMagic,
               path << ": bad magic 0x" << std::hex << magic
                    << " (not an XDA1 prepared artifact)");
  const auto version = header.get<std::uint32_t>();
  XD_CHECK_MSG(version == kArtifactVersion,
               path << ": unsupported XDA1 version " << version);
  const auto section_count = header.get<std::uint64_t>();
  XD_CHECK_MSG(section_count == kSectionCount,
               path << ": expected " << kSectionCount << " sections, header"
                    << " claims " << section_count);
  const auto file_size = header.get<std::uint64_t>();
  XD_CHECK_MSG(file_size == file.size(),
               path << ": header claims " << file_size << " bytes, file has "
                    << file.size());
  const auto stored_crc = header.get<std::uint64_t>();
  XD_CHECK_MSG(stored_crc <= 0xffffffffu,
               path << ": reserved header bits set (not an XDA1 checksum)");
  if (stored_crc != 0) {
    // Recompute over the file with the crc slot taken as zero (the bytes
    // it held when the writer checksummed them).
    static constexpr unsigned char kZero[8] = {0};
    std::uint32_t c = crc32c(file.data(), kCrcAt);
    c = crc32c_update(c, kZero, 8);
    c = crc32c_update(c, file.data() + kCrcAt + 8, file.size() - kCrcAt - 8);
    XD_CHECK_MSG(c == stored_crc,
                 path << ": file checksum mismatch (stored " << stored_crc
                      << ", computed " << c << ") -- corrupt artifact");
  }

  const std::size_t table_end =
      kHeaderBytes + kSectionCount * kSectionEntryBytes;
  XD_CHECK_MSG(file.size() >= table_end, path << ": truncated section table");

  // Sections must appear in canonical order and tile the rest of the file
  // contiguously -- any overlap, gap, or overrun is a corrupt file.
  struct Section {
    const unsigned char* data;
    std::size_t size;
  };
  Section sections[kSectionCount];
  std::size_t expect_offset = table_end;
  for (std::size_t s = 0; s < kSectionCount; ++s) {
    ByteSource entry(file.data() + kHeaderBytes + s * kSectionEntryBytes,
                     kSectionEntryBytes, "section table");
    const auto tag = entry.get<std::uint32_t>();
    entry.get<std::uint32_t>();  // reserved
    const auto offset = entry.get<std::uint64_t>();
    const auto size = entry.get<std::uint64_t>();
    XD_CHECK_MSG(tag == kSectionOrder[s],
                 path << ": section " << s << " tag 0x" << std::hex << tag
                      << " != expected 0x" << kSectionOrder[s]);
    XD_CHECK_MSG(offset == expect_offset,
                 path << ": section " << s << " offset " << offset
                      << " != expected " << expect_offset);
    XD_CHECK_MSG(offset + size <= file.size(),
                 path << ": section " << s << " overruns the file (offset "
                      << offset << " + size " << size << " > " << file.size()
                      << ")");
    sections[s] = {file.data() + offset, static_cast<std::size_t>(size)};
    expect_offset = offset + size;
  }
  XD_CHECK_MSG(expect_offset == file.size(),
               path << ": " << file.size() - expect_offset
                    << " trailing bytes after the last section");

  PreparedArtifact art;

  // GRPH.
  {
    ByteSource src(sections[0].data, sections[0].size, "GRPH");
    const auto n64 = src.get<std::uint64_t>();
    const auto m = src.get<std::uint64_t>();
    XD_CHECK_MSG(n64 <= 0xffffffffu, path << ": n=" << n64 << " exceeds u32");
    XD_CHECK_MSG(src.remaining() == 8 * m,
                 path << ": GRPH payload holds " << src.remaining() / 8
                      << " edges, header claims " << m);
    const auto n = static_cast<std::size_t>(n64);
    GraphBuilder b(n, /*allow_parallel=*/true);
    b.reserve(static_cast<std::size_t>(m));
    for (std::uint64_t e = 0; e < m; ++e) {
      const auto u = src.get<std::uint32_t>();
      const auto v = src.get<std::uint32_t>();
      XD_CHECK_MSG(u < n && v < n, path << ": GRPH edge " << e << " = (" << u
                                        << "," << v << ") out of range n="
                                        << n);
      b.add_edge(u, v);
    }
    art.graph = b.build();
  }
  const std::size_t n = art.graph.num_vertices();
  const std::size_t m = art.graph.num_edges();

  // DCMP.
  {
    ByteSource src(sections[1].data, sections[1].size, "DCMP");
    XD_CHECK_MSG(sections[1].size == 32 + 4 * n + m,
                 path << ": DCMP size " << sections[1].size
                      << " inconsistent with n=" << n << " m=" << m);
    const auto comps = src.get<std::uint64_t>();
    XD_CHECK_MSG(comps <= n && (n == 0 || comps > 0),
                 path << ": " << comps << " components for n=" << n);
    art.num_components = static_cast<std::uint32_t>(comps);
    for (int r = 0; r < 3; ++r) art.removed_by[r] = src.get<std::uint64_t>();
    art.component.resize(n);
    for (std::size_t v = 0; v < n; ++v) {
      art.component[v] = src.get<std::uint32_t>();
      XD_CHECK_MSG(art.component[v] < comps,
                   path << ": vertex " << v << " label " << art.component[v]
                        << " out of range");
    }
    art.removed_edge.resize(m);
    for (std::size_t e = 0; e < m; ++e) {
      const auto flag = src.get<std::uint8_t>();
      XD_CHECK_MSG(flag <= 1, path << ": DCMP removed flag " << int{flag}
                                   << " at edge " << e << " is not 0/1");
      art.removed_edge[e] = static_cast<char>(flag);
    }
  }

  // STAT.
  {
    ByteSource src(sections[2].data, sections[2].size, "STAT");
    XD_CHECK_MSG(sections[2].size == std::size_t{48} * art.num_components,
                 path << ": STAT size " << sections[2].size << " != 48 * "
                      << art.num_components);
    art.components.resize(art.num_components);
    std::uint64_t total_size = 0;
    for (auto& info : art.components) {
      info.root = src.get<std::uint32_t>();
      info.size = src.get<std::uint32_t>();
      info.volume = src.get<std::uint64_t>();
      info.cut = src.get<std::uint64_t>();
      info.internal_edges = src.get<std::uint64_t>();
      info.conductance = src.get<double>();
      info.balance = src.get<double>();
      XD_CHECK_MSG(info.root < n || (n == 0 && info.root == 0),
                   path << ": STAT root " << info.root << " out of range");
      total_size += info.size;
    }
    XD_CHECK_MSG(total_size == n, path << ": STAT sizes sum to " << total_size
                                       << ", not n=" << n);
  }

  // HIER.
  {
    ByteSource src(sections[3].data, sections[3].size, "HIER");
    XD_CHECK_MSG(sections[3].size >= 8, path << ": HIER header truncated");
    art.router_depth = src.get<std::uint32_t>();
    src.get<std::uint32_t>();  // reserved
    XD_CHECK_MSG(art.router_depth >= 1,
                 path << ": HIER depth " << art.router_depth << " < 1");
    const std::size_t want =
        8 + 8 * n + std::size_t{16} * art.num_components +
        std::size_t{8} * art.num_components * art.router_depth;
    XD_CHECK_MSG(sections[3].size == want,
                 path << ": HIER size " << sections[3].size << " != expected "
                      << want);
    art.relay_parent.resize(n);
    for (std::size_t v = 0; v < n; ++v) {
      art.relay_parent[v] = src.get<std::uint32_t>();
      XD_CHECK_MSG(art.relay_parent[v] < n,
                   path << ": relay parent of " << v << " out of range");
      XD_CHECK_MSG(art.component[art.relay_parent[v]] == art.component[v],
                   path << ": relay parent of " << v
                        << " crosses components");
    }
    art.relay_depth.resize(n);
    for (std::size_t v = 0; v < n; ++v) {
      art.relay_depth[v] = src.get<std::uint32_t>();
    }
    // Depth consistency makes relay_path termination a file invariant:
    // roots sit at depth 0 and every child is one deeper than its parent.
    for (std::size_t v = 0; v < n; ++v) {
      const VertexId p = art.relay_parent[v];
      if (p == v) {
        XD_CHECK_MSG(art.relay_depth[v] == 0,
                     path << ": relay root " << v << " at depth "
                          << art.relay_depth[v]);
      } else {
        XD_CHECK_MSG(art.relay_depth[v] == art.relay_depth[p] + 1,
                     path << ": relay depth of " << v
                          << " != parent depth + 1");
      }
    }
    for (auto& info : art.components) {
      info.height = src.get<std::uint32_t>();
      src.get<std::uint32_t>();  // reserved
      info.beta = src.get<double>();
    }
    art.portals.resize(std::size_t{art.num_components} * art.router_depth);
    for (auto& p : art.portals) p = src.get<std::uint64_t>();
  }

  // TRIS.
  {
    ByteSource src(sections[4].data, sections[4].size, "TRIS");
    const auto count = src.get<std::uint64_t>();
    XD_CHECK_MSG(src.remaining() == 12 * count,
                 path << ": TRIS payload holds " << src.remaining() / 12
                      << " triples, header claims " << count);
    art.triangles.resize(static_cast<std::size_t>(count));
    for (std::size_t i = 0; i < art.triangles.size(); ++i) {
      auto& t = art.triangles[i];
      for (auto& v : t) v = src.get<std::uint32_t>();
      XD_CHECK_MSG(t[0] < t[1] && t[1] < t[2] && t[2] < n,
                   path << ": TRIS triple " << i << " is not sorted in-range");
      XD_CHECK_MSG(i == 0 || art.triangles[i - 1] < t,
                   path << ": TRIS not strictly ascending at " << i);
    }
  }

  // META.
  {
    ByteSource src(sections[5].data, sections[5].size, "META");
    XD_CHECK_MSG(sections[5].size == 80,
                 path << ": META size " << sections[5].size << " != 80");
    art.epsilon = src.get<double>();
    art.phi0 = src.get<double>();
    art.k = src.get<std::int32_t>();
    art.backend = src.get<std::int32_t>();
    art.seed = src.get<std::uint64_t>();
    art.build_rounds = src.get<std::uint64_t>();
    art.build_messages = src.get<std::uint64_t>();
    art.enum_rounds = src.get<std::uint64_t>();
    art.router_queries = src.get<std::uint64_t>();
    art.enum_levels = src.get<std::uint32_t>();
    // The once-reserved slot now names the decomposition backend; legacy
    // zero reads as nibble, and anything unknown is a typed load error.
    art.decomp_backend = static_cast<int>(src.get<std::uint32_t>());
    XD_CHECK_MSG(art.decomp_backend <= 1,
                 path << ": META decomposition backend " << art.decomp_backend
                      << " unknown");
    art.clusters_processed = src.get<std::uint64_t>();
  }

  art.build_index();
  return art;
}

}  // namespace xd::serve

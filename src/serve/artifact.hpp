#pragma once

/// \file artifact.hpp
/// Build-once prepared artifacts: the preprocess half of the serving
/// lifecycle (docs/serving.md).
///
/// Every entry point used to rebuild the expander decomposition, the GKS
/// hierarchy summaries, and the triangle tuple plane per call.  The paper's
/// structures are explicitly preprocess-then-query (the §3 routing
/// hierarchy is built once and then answers arbitrary demand streams), so
/// the lifecycle splits here: `prepare_artifact` pays the whole
/// preprocessing cost once and captures the results in an immutable
/// `PreparedArtifact` that a concurrent `QueryService` (service.hpp) then
/// serves from, and that serializes to disk as the versioned `XDA1` binary
/// format (mmap'd loader in the graph/io style; doubles as the fixture
/// format for the --large bench tier).
///
/// Captured sections:
///   * GRPH -- the ambient graph's edge list, replayed in EdgeId order so
///     the reloaded CSR is bit-identical to the prepared one;
///   * DCMP -- the Theorem 1 decomposition: per-vertex component labels,
///     the removed-edge overlay, Remove-1/2/3 counts;
///   * STAT -- per-component conductance/balance observations (component
///     boundary read as a cut of the ambient graph);
///   * HIER -- the GKS hierarchy summary: per-vertex relay forest
///     (parent + depth, the Lemma 3.4 delivery trees), per-component
///     β = m^{1/k} and per-level portal counts;
///   * TRIS -- the flat triangle tuple plane (sorted, deduplicated);
///   * META -- build parameters, seeds, and the charged round/message
///     totals, so artifact-served answers replay the fresh-build charges.

#include <cstdint>
#include <string>
#include <vector>

#include "expander/params.hpp"
#include "graph/graph.hpp"
#include "triangle/enumerate.hpp"

namespace xd::serve {

/// 'XDA1' little-endian.
inline constexpr std::uint32_t kArtifactMagic = 0x31414458u;
inline constexpr std::uint32_t kArtifactVersion = 1;

/// Preprocessing knobs.  The enumeration parameters drive both the
/// decomposition (epsilon, k, phi0) and the triangle plane; `seed` is the
/// build Rng seed (the whole prepare is a pure function of (graph, params),
/// bit-identical at every scheduler thread count).
struct PrepareParams {
  triangle::EnumParams enumerate;
  std::uint64_t seed = 17;
  /// Which Theorem 1 driver preprocesses the serving partition
  /// (docs/decomposition.md); recorded in META so a reloaded artifact
  /// reports which backend built it.
  expander::DecompositionBackend decomp_backend =
      expander::DecompositionBackend::kNibble;
};

/// Per-component quality and hierarchy summary.
struct ComponentInfo {
  VertexId root = 0;            ///< min-id member; relay forest root
  std::uint32_t size = 0;       ///< vertices
  std::uint64_t volume = 0;     ///< ambient degree sum
  std::uint64_t cut = 0;        ///< boundary edges to other components
  std::uint64_t internal_edges = 0;  ///< live (non-removed) internal edges
  double conductance = 0.0;  ///< cut/min-side volume; inf if one side empty
  double balance = 0.0;         ///< min(vol, total - vol) / total
  std::uint32_t height = 0;     ///< relay forest height
  double beta = 0.0;            ///< GKS beta = internal_edges^{1/depth}
};

/// The immutable prepared state.  Everything queries need -- no rebuild on
/// the hot path.  Instances come from prepare_artifact() or
/// load_artifact(); treat as read-only afterwards (the QueryService shares
/// one across all its workers).
struct PreparedArtifact {
  // ---- GRPH ----
  Graph graph;

  // ---- DCMP ----
  std::vector<std::uint32_t> component;  ///< per vertex
  std::uint32_t num_components = 0;
  std::vector<char> removed_edge;        ///< per ambient edge
  std::uint64_t removed_by[3] = {0, 0, 0};

  // ---- STAT + HIER (per component) ----
  std::vector<ComponentInfo> components;
  std::uint32_t router_depth = 2;        ///< GKS k of the hierarchy summary
  std::vector<VertexId> relay_parent;    ///< per vertex; root -> itself
  std::vector<std::uint32_t> relay_depth;  ///< hops to the component root
  /// Per-component per-level portal counts, row-major
  /// [component * router_depth + level].
  std::vector<std::uint64_t> portals;

  // ---- TRIS ----
  std::vector<triangle::Triangle> triangles;  ///< sorted, deduplicated

  // ---- META ----
  double epsilon = 0.0;
  int k = 0;
  double phi0 = 0.0;
  int backend = 0;  ///< triangle::RouterBackend of the build
  /// expander::DecompositionBackend of the build (the legacy reserved
  /// META slot: old files read back as 0 == nibble, and nibble-built
  /// files stay byte-identical to pre-selector artifacts).
  int decomp_backend = 0;
  std::uint64_t seed = 0;
  std::uint64_t build_rounds = 0;    ///< total charged rounds of the prepare
  std::uint64_t build_messages = 0;
  std::uint64_t enum_rounds = 0;     ///< enumeration-only rounds (golden pin)
  std::uint64_t router_queries = 0;
  std::uint32_t enum_levels = 0;
  std::uint64_t clusters_processed = 0;

  // ---- derived in memory (not serialized) ----
  /// Triangle incidence CSR: triangles touching v are
  /// tri_ids[tri_offsets[v] .. tri_offsets[v+1]), ascending triangle ids.
  std::vector<std::uint32_t> tri_offsets;
  std::vector<std::uint32_t> tri_ids;
  /// Per-component triangle counts (a triangle belongs to its first
  /// vertex's component -- triangles never span components, the removed
  /// overlay cuts them).  The degraded-answer path of the QueryService
  /// serves component-local counts from this when a global answer is out
  /// of budget (docs/robustness.md).
  std::vector<std::uint64_t> comp_triangles;

  /// (Re)builds the derived incidence index from `triangles`.
  void build_index();

  // ------------------------------------------------------------- queries
  // Read-only, thread-safe once built: the QueryService's parallel phase
  // calls these from any worker.

  [[nodiscard]] std::uint64_t triangle_count() const {
    return triangles.size();
  }

  /// Ids of the triangles incident to v (ascending).
  [[nodiscard]] std::span<const std::uint32_t> triangles_of(VertexId v) const {
    return {tri_ids.data() + tri_offsets[v],
            tri_offsets[v + 1] - tri_offsets[v]};
  }

  /// Is {a, b, c} a listed triangle?  (Order-insensitive.)
  [[nodiscard]] bool has_triangle(VertexId a, VertexId b, VertexId c) const;

  [[nodiscard]] std::uint32_t component_of(VertexId v) const {
    return component[v];
  }

  /// Relay-forest route u -> v (up to the lowest common ancestor, then
  /// down), appended to `path` as a vertex sequence starting at u and
  /// ending at v.  Returns false (path untouched) when u and v live in
  /// different components -- no intra-component route exists.
  [[nodiscard]] bool relay_path(VertexId u, VertexId v,
                                std::vector<VertexId>& path) const;
};

/// Runs the whole preprocessing pipeline on g: Theorem 1 decomposition,
/// per-component stats, relay forests + GKS summaries, and the Theorem 2
/// triangle plane.  Deterministic in (g, prm): every scheduler thread
/// count yields a byte-identical artifact.
PreparedArtifact prepare_artifact(const Graph& g, const PrepareParams& prm);

/// Serializes to the XDA1 format.  save(load(save(x))) is byte-identical
/// to save(x).
void save_artifact(const PreparedArtifact& art, const std::string& path);

/// Loads (mmap'd, with streamed fallback) and validates an XDA1 file.
/// Throws CheckError on truncation, bad magic/version, section-table
/// overruns, or inconsistent section payloads.
PreparedArtifact load_artifact(const std::string& path);

}  // namespace xd::serve

#include "serve/service.hpp"

#include <algorithm>
#include <bit>

namespace xd::serve {

namespace {

/// GKS query-model cost of one routed demand inside component `info`: one
/// round of local lookup plus a polylog term per hierarchy level (the §3
/// observation -- portal queries cost polylog, not 2^{O(√log n)}).
std::uint64_t route_model_cost(const ComponentInfo& info,
                               std::uint32_t depth) {
  return 1 + std::uint64_t{depth} * std::bit_width(info.internal_edges + 1);
}

}  // namespace

QueryService::QueryService(const PreparedArtifact& artifact,
                           const ServiceParams& prm)
    : art_(artifact),
      prm_(prm),
      pool_(std::max(1, prm.threads)),
      arena_(artifact.graph) {
  if (prm_.max_batch == 0) prm_.max_batch = 1;
}

bool QueryService::submit(std::uint32_t client, const Query& q) {
  auto& stats = clients_[client];
  ++stats.submitted;
  if (pending_.size() >= prm_.max_pending) {
    ++stats.rejected;
    ++total_rejected_;
    return false;
  }
  pending_.push_back(Pending{client, next_ticket_++, q});
  return true;
}

std::vector<QueryResult> QueryService::flush() {
  const std::size_t batch = std::min(prm_.max_batch, pending_.size());
  const auto batch_end =
      pending_.begin() + static_cast<std::ptrdiff_t>(batch);
  std::vector<Pending> taken(pending_.begin(), batch_end);
  pending_.erase(pending_.begin(), batch_end);

  std::vector<QueryResult> results(batch);
  std::vector<std::vector<VertexId>> route_paths(batch);
  const std::size_t n = art_.graph.num_vertices();

  // Phase A: per-query computation, read-only against the shared artifact.
  // Always forked -- each query charges its own ledger branch and the join
  // advances the clock by the batch's max, so the accounting is identical
  // at every thread count.
  pool_.run_forked(
      ledger_, batch,
      [&](std::size_t i, congest::RoundLedger& branch) {
        const Pending& p = taken[i];
        QueryResult& r = results[i];
        r.kind = p.query.kind;
        r.client = p.client;
        r.ticket = p.ticket;
        const Query& q = p.query;
        std::uint64_t cost = 1;
        switch (q.kind) {
          case QueryKind::kTriangleCount:
            r.ok = true;
            r.value = art_.triangle_count();
            r.messages = 1;
            break;
          case QueryKind::kTrianglesOf:
            if (q.a < n) {
              const auto span = art_.triangles_of(q.a);
              r.ok = true;
              r.value = span.size();
              r.ids.assign(span.begin(), span.end());
              r.messages = span.size();
              // Batched convergecast: eight ids ride one message slot.
              cost = 1 + (span.size() + 7) / 8;
            }
            break;
          case QueryKind::kTriangleMembership:
            if (q.a < n && q.b < n && q.c < n) {
              r.ok = true;
              r.value = art_.has_triangle(q.a, q.b, q.c) ? 1 : 0;
              r.messages = 1;
            }
            break;
          case QueryKind::kRoute:
            if (q.a < n && q.b < n &&
                art_.relay_path(q.a, q.b, route_paths[i])) {
              r.ok = true;
              r.value = route_paths[i].size() - 1;  // hops
              r.ids.assign(route_paths[i].begin(), route_paths[i].end());
              r.messages = route_paths[i].size() - 1;
              cost = route_model_cost(
                  art_.components[art_.component_of(q.a)], art_.router_depth);
            }
            break;
          case QueryKind::kConductance:
            if (q.a < art_.num_components) {
              r.ok = true;
              r.scalar = art_.components[q.a].conductance;
              r.value = art_.components[q.a].size;
              r.messages = 1;
            }
            break;
          case QueryKind::kComponentOf:
            if (q.a < n) {
              r.ok = true;
              r.value = art_.component_of(q.a);
              r.messages = 1;
            }
            break;
        }
        r.rounds_charged = cost;
        branch.charge(cost, "Serve/query");
        branch.count_messages(r.messages);
      });

  // Phase B: deliver every successful route over the shared network in one
  // synchronous drain -- concurrent demands contend for directed-edge
  // bandwidth, so a route's arrival round depends (deterministically, by
  // admission order) on the whole batch.
  std::vector<std::size_t> route_of_staged;
  for (std::size_t i = 0; i < batch; ++i) {
    if (results[i].kind == QueryKind::kRoute && results[i].ok) {
      route_of_staged.push_back(i);
    }
  }
  if (!route_of_staged.empty()) {
    arena_.begin_batch();
    for (const std::size_t i : route_of_staged) {
      arena_.begin_path();
      for (const VertexId v : route_paths[i]) arena_.push_vertex(v);
      arena_.end_path();
    }
    const auto drained = arena_.drain();
    ledger_.charge(drained.rounds, "Serve/drain");
    ledger_.count_messages(drained.messages_sent);
    for (std::size_t s = 0; s < route_of_staged.size(); ++s) {
      results[route_of_staged[s]].rounds_charged += drained.arrivals[s];
    }
  }

  for (QueryResult& r : results) {
    auto& stats = clients_[r.client];
    ++stats.served;
    stats.rounds += r.rounds_charged;
    stats.messages += r.messages;
    ++total_served_;
  }
  return results;
}

}  // namespace xd::serve

#include "serve/service.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <thread>

#include "util/fault_plane.hpp"

namespace xd::serve {

namespace {

/// GKS query-model cost of one routed demand inside component `info`: one
/// round of local lookup plus a polylog term per hierarchy level (the §3
/// observation -- portal queries cost polylog, not 2^{O(√log n)}).
std::uint64_t route_model_cost(const ComponentInfo& info,
                               std::uint32_t depth) {
  return 1 + std::uint64_t{depth} * std::bit_width(info.internal_edges + 1);
}

}  // namespace

QueryService::QueryService(const PreparedArtifact& artifact,
                           const ServiceParams& prm)
    : art_(artifact),
      prm_(prm),
      pool_(std::max(1, prm.threads)),
      arena_(artifact.graph) {
  if (prm_.max_batch == 0) prm_.max_batch = 1;
  if (prm_.max_flush_retries < 0) prm_.max_flush_retries = 0;
}

bool QueryService::submit(std::uint32_t client, const Query& q) {
  auto& stats = clients_[client];
  ++stats.submitted;
  if (pending_.size() >= prm_.max_pending) {
    ++stats.rejected;
    ++total_rejected_;
    return false;
  }
  pending_.push_back(Pending{client, next_ticket_++, q});
  return true;
}

void QueryService::run_phase_a(
    const std::vector<Pending>& taken, congest::RoundLedger& scratch,
    std::vector<QueryResult>& results,
    std::vector<std::vector<VertexId>>& route_paths) const {
  const std::size_t batch = taken.size();
  const std::size_t n = art_.graph.num_vertices();
  const std::uint64_t deadline = prm_.deadline_rounds;

  // Phase A: per-query computation, read-only against the shared artifact.
  // Always forked -- each query charges its own ledger branch and the join
  // advances the clock by the batch's max, so the accounting is identical
  // at every thread count.
  pool_.run_forked(
      scratch, batch,
      [&](std::size_t i, congest::RoundLedger& branch) {
        const Pending& p = taken[i];
        QueryResult& r = results[i];
        r = QueryResult{};
        route_paths[i].clear();
        r.kind = p.query.kind;
        r.client = p.client;
        r.ticket = p.ticket;
        const Query& q = p.query;
        std::uint64_t cost = 1;
        switch (q.kind) {
          case QueryKind::kTriangleCount:
            r.ok = true;
            r.value = art_.triangle_count();
            r.messages = 1;
            break;
          case QueryKind::kTrianglesOf:
            if (q.a < n) {
              const auto span = art_.triangles_of(q.a);
              r.ok = true;
              r.value = span.size();
              r.ids.assign(span.begin(), span.end());
              r.messages = span.size();
              // Batched convergecast: eight ids ride one message slot.
              cost = 1 + (span.size() + 7) / 8;
            }
            break;
          case QueryKind::kTriangleMembership:
            if (q.a < n && q.b < n && q.c < n) {
              r.ok = true;
              r.value = art_.has_triangle(q.a, q.b, q.c) ? 1 : 0;
              r.messages = 1;
            }
            break;
          case QueryKind::kRoute:
            if (q.a < n && q.b < n &&
                art_.relay_path(q.a, q.b, route_paths[i])) {
              r.ok = true;
              r.value = route_paths[i].size() - 1;  // hops
              r.ids.assign(route_paths[i].begin(), route_paths[i].end());
              r.messages = route_paths[i].size() - 1;
              cost = route_model_cost(
                  art_.components[art_.component_of(q.a)], art_.router_depth);
            }
            break;
          case QueryKind::kConductance:
            if (q.a < art_.num_components) {
              r.ok = true;
              r.scalar = art_.components[q.a].conductance;
              r.value = art_.components[q.a].size;
              r.messages = 1;
            }
            break;
          case QueryKind::kComponentOf:
            if (q.a < n) {
              r.ok = true;
              r.value = art_.component_of(q.a);
              r.messages = 1;
            }
            break;
        }
        // Deadline: a query whose model cost exceeds the budget returns
        // what fits inside it instead.  Deterministic -- costs are model
        // values -- so a deadline-degraded batch is still bit-identical at
        // every thread count.
        if (deadline > 0 && r.ok && cost > deadline) {
          r.exact = false;
          if (q.kind == QueryKind::kTrianglesOf) {
            // The first (deadline - 1) convergecast rounds' worth of ids.
            r.ids.resize(std::min<std::size_t>(
                r.ids.size(), static_cast<std::size_t>(deadline - 1) * 8));
            r.value = r.ids.size();
            r.messages = r.ids.size();
          } else if (q.kind == QueryKind::kRoute) {
            // Depth-sum upper bound on the hop count; no path delivered.
            r.value = art_.relay_depth[q.a] + art_.relay_depth[q.b];
            r.ids.clear();
            route_paths[i].clear();
            r.messages = 1;
          }
          cost = deadline;
        }
        r.rounds_charged = cost;
        branch.charge(cost, "Serve/query");
        branch.count_messages(r.messages);
      });
}

std::vector<QueryResult> QueryService::degraded_answers(
    const std::vector<Pending>& taken) {
  const std::size_t n = art_.graph.num_vertices();
  std::vector<QueryResult> results(taken.size());
  for (std::size_t i = 0; i < taken.size(); ++i) {
    const Pending& p = taken[i];
    const Query& q = p.query;
    QueryResult& r = results[i];
    r.kind = q.kind;
    r.client = p.client;
    r.ticket = p.ticket;
    r.messages = 1;
    switch (q.kind) {
      case QueryKind::kTriangleCount:
        // Component-local count: exact within the component the client
        // named (operand a), a lower bound on the global answer.
        if (q.a < n) {
          r.ok = true;
          r.exact = false;
          r.value = art_.comp_triangles[art_.component_of(q.a)];
        }
        break;
      case QueryKind::kTrianglesOf:
        if (q.a < n) {
          r.ok = true;
          r.exact = false;
          r.value = art_.triangles_of(q.a).size();  // count only, no ids
        }
        break;
      case QueryKind::kRoute:
        if (q.a < n && q.b < n &&
            art_.component_of(q.a) == art_.component_of(q.b)) {
          r.ok = true;
          r.exact = false;
          r.value = art_.relay_depth[q.a] + art_.relay_depth[q.b];
        }
        break;
      // O(1) local lookups stay exact even in the fallback.
      case QueryKind::kTriangleMembership:
        if (q.a < n && q.b < n && q.c < n) {
          r.ok = true;
          r.value = art_.has_triangle(q.a, q.b, q.c) ? 1 : 0;
        }
        break;
      case QueryKind::kConductance:
        if (q.a < art_.num_components) {
          r.ok = true;
          r.scalar = art_.components[q.a].conductance;
          r.value = art_.components[q.a].size;
        }
        break;
      case QueryKind::kComponentOf:
        if (q.a < n) {
          r.ok = true;
          r.value = art_.component_of(q.a);
        }
        break;
    }
    r.rounds_charged = 1;
    ledger_.charge(1, "Serve/degraded");
    ledger_.count_messages(r.messages);
  }
  return results;
}

std::vector<QueryResult> QueryService::flush() {
  return flush_report().results;
}

FlushReport QueryService::flush_report() {
  FlushReport rep;
  if (pending_.empty()) return rep;  // no work: no charges, no fault dice

  const std::size_t batch = std::min(prm_.max_batch, pending_.size());
  const auto batch_end =
      pending_.begin() + static_cast<std::ptrdiff_t>(batch);
  std::vector<Pending> taken(pending_.begin(), batch_end);
  pending_.erase(pending_.begin(), batch_end);

  FaultPlane& faults = FaultPlane::instance();
  const bool serve_armed = faults.armed(FaultCategory::kServe);
  const std::uint64_t fseq = flush_seq_++;

  std::vector<QueryResult> results(batch);
  std::vector<std::vector<VertexId>> route_paths(batch);
  bool committed = false;
  for (int attempt = 0; attempt <= prm_.max_flush_retries; ++attempt) {
    rep.attempts = attempt + 1;
    // Each attempt charges a scratch ledger; only the committing attempt
    // is absorbed, so an abandoned attempt never pollutes the clock and a
    // faulty run's committed charges equal the fault-free run's.
    congest::RoundLedger scratch;
    run_phase_a(taken, scratch, results, route_paths);
    if (serve_armed &&
        faults.should_fire("serve.flush",
                           (fseq << 8) | static_cast<std::uint64_t>(attempt))) {
      ++health_.faults_seen;
      if (attempt < prm_.max_flush_retries) {
        ++health_.flush_retries;
        const std::uint64_t us = std::min(
            prm_.backoff_cap_us, prm_.backoff_base_us << attempt);
        if (us > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(us));
        }
      }
      continue;
    }
    ledger_.absorb(scratch);
    committed = true;
    break;
  }

  if (committed) {
    // Phase B: deliver every successful exact route over the shared
    // network in one synchronous drain -- concurrent demands contend for
    // directed-edge bandwidth, so a route's arrival round depends
    // (deterministically, by admission order) on the whole batch.
    std::vector<std::size_t> route_of_staged;
    for (std::size_t i = 0; i < batch; ++i) {
      if (results[i].kind == QueryKind::kRoute && results[i].ok &&
          results[i].exact) {
        route_of_staged.push_back(i);
      }
    }
    if (!route_of_staged.empty()) {
      arena_.begin_batch();
      for (const std::size_t i : route_of_staged) {
        arena_.begin_path();
        for (const VertexId v : route_paths[i]) arena_.push_vertex(v);
        arena_.end_path();
      }
      const auto drained = arena_.drain();
      ledger_.charge(drained.rounds, "Serve/drain");
      ledger_.count_messages(drained.messages_sent);
      for (std::size_t s = 0; s < route_of_staged.size(); ++s) {
        results[route_of_staged[s]].rounds_charged += drained.arrivals[s];
      }
    }
    for (const QueryResult& r : results) {
      if (!r.exact) {
        ++health_.degraded_answers;
        ++health_.deadline_hits;
      }
    }
  } else {
    // Every attempt faulted: answer from the serial degraded path rather
    // than throwing -- typed, bounded, still in admission order.
    rep.failure = FlushFailure::kRetryExhausted;
    rep.degraded = true;
    results = degraded_answers(taken);
    for (const QueryResult& r : results) {
      if (!r.exact) ++health_.degraded_answers;
    }
  }

  for (const QueryResult& r : results) {
    auto& stats = clients_[r.client];
    ++stats.served;
    stats.rounds += r.rounds_charged;
    stats.messages += r.messages;
    ++total_served_;
  }
  rep.results = std::move(results);
  return rep;
}

ServiceHealth QueryService::health() const {
  ServiceHealth h = health_;
  h.retransmits = FaultPlane::instance().counter("shard.retransmits");
  return h;
}

}  // namespace xd::serve

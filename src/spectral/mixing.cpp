#include "spectral/mixing.hpp"

#include <algorithm>
#include <cmath>

#include "spectral/lazy_walk.hpp"
#include "util/check.hpp"

namespace xd::spectral {

double lazy_second_eigenvalue(const Graph& g, int iterations) {
  const std::size_t n = g.num_vertices();
  XD_CHECK(n >= 2);
  const double vol = static_cast<double>(g.volume());
  XD_CHECK(vol > 0);

  // Work with y = D^{-1/2} x; N = D^{-1/2} M D^{1/2} is symmetric with top
  // eigenvector proportional to D^{1/2} 1.  Deflate it and power-iterate.
  std::vector<double> top(n);
  for (VertexId v = 0; v < n; ++v) top[v] = std::sqrt(g.degree(v) / vol);

  std::vector<double> y(n);
  for (VertexId v = 0; v < n; ++v) {
    // Deterministic pseudo-random start, orthogonalized below.
    y[v] = ((v * 2654435761u) % 1000) / 1000.0 - 0.5;
  }

  auto deflate = [&](std::vector<double>& vec) {
    double dot = 0;
    for (std::size_t i = 0; i < n; ++i) dot += vec[i] * top[i];
    for (std::size_t i = 0; i < n; ++i) vec[i] -= dot * top[i];
  };
  auto norm = [&](const std::vector<double>& vec) {
    double s = 0;
    for (double x : vec) s += x * x;
    return std::sqrt(s);
  };
  // N y: x = D^{1/2} y, x' = M x, y' = D^{-1/2} x'.
  auto apply = [&](const std::vector<double>& vec) {
    std::vector<double> x(n);
    for (VertexId v = 0; v < n; ++v) {
      x[v] = vec[v] * std::sqrt(static_cast<double>(g.degree(v)));
    }
    x = lazy_step(g, x);
    for (VertexId v = 0; v < n; ++v) {
      const double d = g.degree(v);
      x[v] = d > 0 ? x[v] / std::sqrt(d) : 0.0;
    }
    return x;
  };

  deflate(y);
  double lambda = 0;
  for (int it = 0; it < iterations; ++it) {
    const double len = norm(y);
    if (len < 1e-300) return 0.0;  // walk mixes in one step (e.g. K_2 lazy)
    for (double& x : y) x /= len;
    std::vector<double> next = apply(y);
    deflate(next);
    double dot = 0;
    for (std::size_t i = 0; i < n; ++i) dot += next[i] * y[i];
    lambda = dot;
    y = std::move(next);
  }
  return std::clamp(lambda, 0.0, 1.0);
}

std::uint32_t mixing_time_simulated(const Graph& g, double eps, int starts,
                                    std::uint32_t cap) {
  const std::size_t n = g.num_vertices();
  XD_CHECK(n >= 1);
  const auto pi = stationary(g);

  // Deterministic spread of start vertices (worst-start is what matters;
  // a handful of seeds approximates it well on vertex-transitive families).
  std::vector<VertexId> start_vs;
  for (int s = 0; s < starts; ++s) {
    start_vs.push_back(static_cast<VertexId>((s * n) / static_cast<std::size_t>(starts)));
  }

  std::uint32_t worst = 0;
  for (VertexId sv : start_vs) {
    if (g.degree(sv) == 0) continue;
    std::vector<double> p(n, 0.0);
    p[sv] = 1.0;
    std::uint32_t t = 0;
    for (; t < cap; ++t) {
      double dist = 0;
      for (VertexId v = 0; v < n; ++v) {
        if (pi[v] > 0) {
          dist = std::max(dist, std::abs(p[v] - pi[v]) / pi[v]);
        }
      }
      if (dist <= eps) break;
      p = lazy_step(g, p);
    }
    worst = std::max(worst, t);
  }
  return worst;
}

std::uint32_t mixing_time_estimate(const Graph& g, double eps) {
  const double lambda2 = lazy_second_eigenvalue(g);
  const double gap = 1.0 - lambda2;
  if (gap <= 1e-12) return std::numeric_limits<std::uint32_t>::max();
  std::uint32_t deg_min = std::numeric_limits<std::uint32_t>::max();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) > 0) deg_min = std::min(deg_min, g.degree(v));
  }
  if (deg_min == std::numeric_limits<std::uint32_t>::max()) return 0;
  const double pi_min = static_cast<double>(deg_min) / static_cast<double>(g.volume());
  const double t = std::log(1.0 / (eps * pi_min)) / gap;
  return static_cast<std::uint32_t>(std::ceil(std::max(t, 1.0)));
}

}  // namespace xd::spectral

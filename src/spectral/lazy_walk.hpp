#pragma once

/// \file lazy_walk.hpp
/// The lazy random walk M = (A D^{-1} + I)/2 and Spielman–Teng truncation.
///
/// Self-loop convention (paper, §1): a loop is one adjacency slot, so a step
/// from v sends p(v)/(2 deg(v)) along every slot; loop slots deposit back at
/// v.  Equivalently the effective laziness of v is 1/2 + loops(v)/(2 deg v),
/// which is what makes G{S} simulate G's walk restricted to S.
///
/// The truncation operator [p]_ε zeroes p(x) when p(x) < 2 ε deg(x) (paper,
/// Appendix A); truncated walks have support that grows slowly, which is the
/// whole reason Nibble is cheap.

#include <cstdint>
#include <vector>

#include "graph/access.hpp"
#include "graph/graph.hpp"

namespace xd::spectral {

/// All walk operators are generic over GraphAccess (Graph or GraphView).
/// On a view the masked slots read as self-loops, so the walk *is* the
/// paper's G{S} walk -- mass that would have crossed a removed or boundary
/// edge deposits back -- without materializing G{S}.

/// One dense lazy-walk step: returns M p.  Dense vectors are indexed by the
/// ambient id space (p must be zero off the active set of a view).
template <GraphAccess G>
std::vector<double> lazy_step(const G& g, const std::vector<double>& p);

/// t dense lazy-walk steps from the distribution `p0`.
template <GraphAccess G>
std::vector<double> lazy_walk(const G& g, std::vector<double> p0, int steps);

/// Sparse distribution: only the support is materialized.
struct SparseDist {
  /// Parallel arrays (vertex, mass), ascending by vertex, no duplicates,
  /// mass > 0.  (point() is trivially sorted and truncated_step emits its
  /// candidates in ascending order, so the invariant is maintained; the
  /// Nibble stall detector's deterministic merge relies on it.)
  std::vector<VertexId> support;
  std::vector<double> mass;

  [[nodiscard]] std::size_t size() const { return support.size(); }
  /// Σ mass (<= 1 once truncation begins discarding).
  [[nodiscard]] double total() const;

  /// Point distribution χ_v.
  static SparseDist point(VertexId v);
};

/// One sparse lazy-walk step followed by ε-truncation:  [M p]_ε.
/// Cost O(Vol(support)).
template <GraphAccess G>
SparseDist truncated_step(const G& g, const SparseDist& p, double epsilon);

/// The full truncated evolution p̃_0 = χ_v, p̃_t = [M p̃_{t-1}]_ε for
/// t = 1..steps.  Returns all t+1 distributions (index = t).
template <GraphAccess G>
std::vector<SparseDist> truncated_walk(const G& g, VertexId v, int steps,
                                       double epsilon);

/// Stationary distribution π(x) = deg(x)/Vol(V).
template <GraphAccess G>
std::vector<double> stationary(const G& g);

/// ρ(x) = p(x)/deg(x) for a dense p (0 where deg = 0).
template <GraphAccess G>
std::vector<double> normalize_by_degree(const G& g,
                                        const std::vector<double>& p);

}  // namespace xd::spectral

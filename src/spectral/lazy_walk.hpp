#pragma once

/// \file lazy_walk.hpp
/// The lazy random walk M = (A D^{-1} + I)/2 and Spielman–Teng truncation.
///
/// Self-loop convention (paper, §1): a loop is one adjacency slot, so a step
/// from v sends p(v)/(2 deg(v)) along every slot; loop slots deposit back at
/// v.  Equivalently the effective laziness of v is 1/2 + loops(v)/(2 deg v),
/// which is what makes G{S} simulate G's walk restricted to S.
///
/// The truncation operator [p]_ε zeroes p(x) when p(x) < 2 ε deg(x) (paper,
/// Appendix A); truncated walks have support that grows slowly, which is the
/// whole reason Nibble is cheap.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace xd::spectral {

/// One dense lazy-walk step: returns M p.
std::vector<double> lazy_step(const Graph& g, const std::vector<double>& p);

/// t dense lazy-walk steps from the distribution `p0`.
std::vector<double> lazy_walk(const Graph& g, std::vector<double> p0, int steps);

/// Sparse distribution: only the support is materialized.
struct SparseDist {
  /// Parallel arrays (vertex, mass), unordered, no duplicates, mass > 0.
  std::vector<VertexId> support;
  std::vector<double> mass;

  [[nodiscard]] std::size_t size() const { return support.size(); }
  /// Σ mass (<= 1 once truncation begins discarding).
  [[nodiscard]] double total() const;

  /// Point distribution χ_v.
  static SparseDist point(VertexId v);
};

/// One sparse lazy-walk step followed by ε-truncation:  [M p]_ε.
/// Cost O(Vol(support)).
SparseDist truncated_step(const Graph& g, const SparseDist& p, double epsilon);

/// The full truncated evolution p̃_0 = χ_v, p̃_t = [M p̃_{t-1}]_ε for
/// t = 1..steps.  Returns all t+1 distributions (index = t).
std::vector<SparseDist> truncated_walk(const Graph& g, VertexId v, int steps,
                                       double epsilon);

/// Stationary distribution π(x) = deg(x)/Vol(V).
std::vector<double> stationary(const Graph& g);

/// ρ(x) = p(x)/deg(x) for a dense p (0 where deg = 0).
std::vector<double> normalize_by_degree(const Graph& g,
                                        const std::vector<double>& p);

}  // namespace xd::spectral

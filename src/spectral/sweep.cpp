#include "spectral/sweep.hpp"

#include <algorithm>
#include <limits>

#include "graph/graph_view.hpp"
#include "util/check.hpp"

namespace xd::spectral {

double Sweep::conductance(std::size_t j) const {
  XD_CHECK(j >= 1 && j <= size());
  const std::uint64_t vol = prefix_volume[j - 1];
  const std::uint64_t rest = total_volume - vol;
  const std::uint64_t denom = std::min(vol, rest);
  if (denom == 0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(prefix_cut[j - 1]) / static_cast<double>(denom);
}

VertexSet Sweep::prefix(std::size_t j) const {
  XD_CHECK(j <= size());
  return VertexSet(
      std::vector<VertexId>(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(j)));
}

template <GraphAccess G>
Sweep sweep_cut(const G& g, const std::vector<double>& rho) {
  XD_CHECK(rho.size() == g.num_vertices());
  Sweep s;
  s.total_volume = g.volume();
  for (const VertexId v : g.vertices()) {
    if (rho[v] > 0.0) s.order.push_back(v);
  }
  std::sort(s.order.begin(), s.order.end(), [&](VertexId a, VertexId b) {
    if (rho[a] != rho[b]) return rho[a] > rho[b];
    return a < b;
  });

  s.rho.resize(s.order.size());
  s.prefix_volume.resize(s.order.size());
  s.prefix_cut.resize(s.order.size());

  // Incremental cut maintenance: adding v changes the cut by
  // (non-loop degree of v) - 2 * (edges from v into the prefix so far).
  std::vector<char> in_prefix(g.num_vertices(), 0);
  std::uint64_t vol = 0;
  std::int64_t cut = 0;
  for (std::size_t j = 0; j < s.order.size(); ++j) {
    const VertexId v = s.order[j];
    s.rho[j] = rho[v];
    vol += g.degree(v);
    std::int64_t inside = 0;
    std::int64_t nonloop = 0;
    for (VertexId u : g.neighbors(v)) {
      if (u == v) continue;
      ++nonloop;
      if (in_prefix[u]) ++inside;
    }
    cut += nonloop - 2 * inside;
    XD_CHECK(cut >= 0);
    in_prefix[v] = 1;
    s.prefix_volume[j] = vol;
    s.prefix_cut[j] = static_cast<std::uint64_t>(cut);
  }
  return s;
}

template Sweep sweep_cut(const Graph&, const std::vector<double>&);
template Sweep sweep_cut(const GraphView&, const std::vector<double>&);

std::size_t best_prefix(const Sweep& sweep) {
  std::size_t best = 0;
  double best_phi = std::numeric_limits<double>::infinity();
  for (std::size_t j = 1; j <= sweep.size(); ++j) {
    const double phi = sweep.conductance(j);
    if (phi < best_phi) {
      best_phi = phi;
      best = j;
    }
  }
  return best;
}

}  // namespace xd::spectral

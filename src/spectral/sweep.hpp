#pragma once

/// \file sweep.hpp
/// Sweep cuts: order vertices by ρ(v) = p(v)/deg(v) descending (ties by id,
/// as the paper allows "breaking ties arbitrarily, e.g. by comparing IDs")
/// and evaluate every prefix π(1..j).  Nibble's conditions (C.1)-(C.3) and
/// their approximate versions (C.1*)-(C.3*) are all predicates over this
/// sweep data.

#include <cstdint>
#include <vector>

#include "graph/access.hpp"
#include "graph/graph.hpp"
#include "graph/vertex_set.hpp"

namespace xd::spectral {

/// Prefix-by-prefix statistics of a sweep over the positive-ρ vertices.
struct Sweep {
  /// Vertices in sweep order π(1), π(2), ... (only those with rho > 0).
  std::vector<VertexId> order;
  /// rho value per sweep position.
  std::vector<double> rho;
  /// Vol(π(1..j)) per position j (1-based position j = index j-1).
  std::vector<std::uint64_t> prefix_volume;
  /// |∂(π(1..j))| per position.
  std::vector<std::uint64_t> prefix_cut;
  /// Total graph volume (for conductance denominators).
  std::uint64_t total_volume = 0;

  [[nodiscard]] std::size_t size() const { return order.size(); }

  /// Conductance of prefix 1..j (1-based j in [1, size()]).
  [[nodiscard]] double conductance(std::size_t j) const;

  /// The prefix as a VertexSet (1-based j; j = 0 gives the empty set).
  [[nodiscard]] VertexSet prefix(std::size_t j) const;
};

/// Builds the sweep for score vector rho (dense, ambient-indexed;
/// non-positive entries are excluded from the ordering).  Generic over
/// GraphAccess: on a GraphView the prefix cut counts only live edges --
/// masked slots read as loops and loops never cross.  O(m + support log
/// support).
template <GraphAccess G>
Sweep sweep_cut(const G& g, const std::vector<double>& rho);

/// Position (1-based) of the minimum-conductance prefix, or 0 if empty.
std::size_t best_prefix(const Sweep& sweep);

}  // namespace xd::spectral

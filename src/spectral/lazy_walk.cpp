#include "spectral/lazy_walk.hpp"

#include <algorithm>
#include <unordered_map>

#include "graph/graph_view.hpp"
#include "util/check.hpp"

namespace xd::spectral {

template <GraphAccess G>
std::vector<double> lazy_step(const G& g, const std::vector<double>& p) {
  const std::size_t n = g.num_vertices();
  XD_CHECK(p.size() == n);
  std::vector<double> next(n, 0.0);
  for (const VertexId v : g.vertices()) {
    if (p[v] == 0.0) continue;
    const double deg = g.degree(v);
    XD_CHECK_MSG(deg > 0, "walk mass on an isolated vertex " << v);
    next[v] += p[v] / 2.0;
    const double share = p[v] / (2.0 * deg);
    for (VertexId u : g.neighbors(v)) {
      next[u] += share;  // u == v for loop/masked slots: deposits back
    }
  }
  return next;
}

template <GraphAccess G>
std::vector<double> lazy_walk(const G& g, std::vector<double> p0, int steps) {
  for (int t = 0; t < steps; ++t) p0 = lazy_step(g, p0);
  return p0;
}

template std::vector<double> lazy_step(const Graph&,
                                       const std::vector<double>&);
template std::vector<double> lazy_step(const GraphView&,
                                       const std::vector<double>&);
template std::vector<double> lazy_walk(const Graph&, std::vector<double>, int);
template std::vector<double> lazy_walk(const GraphView&, std::vector<double>,
                                       int);

double SparseDist::total() const {
  double s = 0;
  for (double m : mass) s += m;
  return s;
}

SparseDist SparseDist::point(VertexId v) {
  SparseDist d;
  d.support.push_back(v);
  d.mass.push_back(1.0);
  return d;
}

template <GraphAccess G>
SparseDist truncated_step(const G& g, const SparseDist& p, double epsilon) {
  // Pull-based and order-deterministic: each candidate u sums contributions
  // from its in-neighbors in ascending sender id.  The distributed kernel
  // implementation sums its inbox in the same order, so the two paths agree
  // bit-for-bit (validated by DistributedNibble tests).  Determinism is
  // also what makes a GraphView run reproduce a materialized run exactly:
  // the renumbering is monotone, so every sort below induces the same
  // permutation either way.
  std::unordered_map<VertexId, double> mass_of;
  mass_of.reserve(p.size() * 2);
  for (std::size_t i = 0; i < p.size(); ++i) mass_of[p.support[i]] = p.mass[i];

  std::vector<VertexId> candidates;
  candidates.reserve(p.size() * 4);
  for (const VertexId v : p.support) {
    candidates.push_back(v);
    for (VertexId u : g.neighbors(v)) candidates.push_back(u);
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  SparseDist out;
  std::vector<std::pair<VertexId, double>> incoming;
  for (const VertexId u : candidates) {
    const double deg_u = g.degree(u);
    XD_CHECK_MSG(deg_u > 0, "walk mass on an isolated vertex " << u);
    incoming.clear();
    double retained = 0.0;
    if (const auto it = mass_of.find(u); it != mass_of.end()) {
      // Lazy half plus loop (and masked) slots depositing back.
      retained = it->second / 2.0 +
                 static_cast<double>(g.loops_at(u)) * it->second / (2.0 * deg_u);
    }
    for (VertexId v : g.neighbors(u)) {
      if (v == u) continue;
      if (const auto it = mass_of.find(v); it != mass_of.end()) {
        incoming.emplace_back(v, it->second / (2.0 * g.degree(v)));
      }
    }
    std::sort(incoming.begin(), incoming.end());
    double m = 0.0;
    for (const auto& [v, share] : incoming) m += share;
    m += retained;
    if (m >= 2.0 * epsilon * deg_u) {
      out.support.push_back(u);
      out.mass.push_back(m);
    }
  }
  return out;
}

template <GraphAccess G>
std::vector<SparseDist> truncated_walk(const G& g, VertexId v, int steps,
                                       double epsilon) {
  std::vector<SparseDist> evolution;
  evolution.reserve(static_cast<std::size_t>(steps) + 1);
  evolution.push_back(SparseDist::point(v));
  for (int t = 1; t <= steps; ++t) {
    evolution.push_back(truncated_step(g, evolution.back(), epsilon));
    if (evolution.back().size() == 0) break;  // all mass truncated away
  }
  return evolution;
}

template SparseDist truncated_step(const Graph&, const SparseDist&, double);
template SparseDist truncated_step(const GraphView&, const SparseDist&, double);
template std::vector<SparseDist> truncated_walk(const Graph&, VertexId, int,
                                                double);
template std::vector<SparseDist> truncated_walk(const GraphView&, VertexId, int,
                                                double);

template <GraphAccess G>
std::vector<double> stationary(const G& g) {
  const double vol = static_cast<double>(g.volume());
  std::vector<double> pi(g.num_vertices(), 0.0);
  if (vol == 0) return pi;
  for (const VertexId v : g.vertices()) {
    pi[v] = g.degree(v) / vol;
  }
  return pi;
}

template <GraphAccess G>
std::vector<double> normalize_by_degree(const G& g,
                                        const std::vector<double>& p) {
  XD_CHECK(p.size() == g.num_vertices());
  std::vector<double> rho(p.size(), 0.0);
  for (const VertexId v : g.vertices()) {
    if (g.degree(v) > 0) rho[v] = p[v] / g.degree(v);
  }
  return rho;
}

template std::vector<double> stationary(const Graph&);
template std::vector<double> stationary(const GraphView&);
template std::vector<double> normalize_by_degree(const Graph&,
                                                 const std::vector<double>&);
template std::vector<double> normalize_by_degree(const GraphView&,
                                                 const std::vector<double>&);

}  // namespace xd::spectral

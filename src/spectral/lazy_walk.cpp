#include "spectral/lazy_walk.hpp"

#include <algorithm>

#include "graph/graph_view.hpp"
#include "util/check.hpp"

namespace xd::spectral {

template <GraphAccess G>
std::vector<double> lazy_step(const G& g, const std::vector<double>& p) {
  const std::size_t n = g.num_vertices();
  XD_CHECK(p.size() == n);
  std::vector<double> next(n, 0.0);
  for (const VertexId v : g.vertices()) {
    if (p[v] == 0.0) continue;
    const double deg = g.degree(v);
    XD_CHECK_MSG(deg > 0, "walk mass on an isolated vertex " << v);
    next[v] += p[v] / 2.0;
    const double share = p[v] / (2.0 * deg);
    for (VertexId u : g.neighbors(v)) {
      next[u] += share;  // u == v for loop/masked slots: deposits back
    }
  }
  return next;
}

template <GraphAccess G>
std::vector<double> lazy_walk(const G& g, std::vector<double> p0, int steps) {
  for (int t = 0; t < steps; ++t) p0 = lazy_step(g, p0);
  return p0;
}

template std::vector<double> lazy_step(const Graph&,
                                       const std::vector<double>&);
template std::vector<double> lazy_step(const GraphView&,
                                       const std::vector<double>&);
template std::vector<double> lazy_walk(const Graph&, std::vector<double>, int);
template std::vector<double> lazy_walk(const GraphView&, std::vector<double>,
                                       int);

double SparseDist::total() const {
  double s = 0;
  for (double m : mass) s += m;
  return s;
}

SparseDist SparseDist::point(VertexId v) {
  SparseDist d;
  d.support.push_back(v);
  d.mass.push_back(1.0);
  return d;
}

template <GraphAccess G>
SparseDist truncated_step(const G& g, const SparseDist& p, double epsilon) {
  // Order-deterministic: each candidate u sums contributions from its
  // in-neighbors in ascending sender id.  The distributed kernel
  // implementation sums its inbox in the same order, so the two paths agree
  // bit-for-bit (validated by DistributedNibble tests).  Determinism is
  // also what makes a GraphView run reproduce a materialized run exactly:
  // the renumbering is monotone, so every sort below induces the same
  // permutation either way.
  //
  // Flat plane: one (receiver, sender, share) triple per directed support
  // edge, sorted by (receiver, sender).  The support is sorted, so each
  // receiver's group arrives sender-sorted and the summation order matches
  // the seed's sorted `incoming` exactly (FP-identical); candidate
  // enumeration is the merge of the support with the grouped receivers --
  // two pointer walks, no hash lookups.
  struct Contribution {
    VertexId to, from;
    double share;
  };
  std::vector<Contribution> inflow;
  inflow.reserve(p.size() * 4);
  for (std::size_t i = 0; i < p.size(); ++i) {
    const VertexId v = p.support[i];
    XD_CHECK_MSG(g.degree(v) > 0, "walk mass on an isolated vertex " << v);
    const double share = p.mass[i] / (2.0 * g.degree(v));
    for (VertexId u : g.neighbors(v)) {
      if (u == v) continue;  // loop and masked slots retain mass below
      inflow.push_back(Contribution{u, v, share});
    }
  }
  std::sort(inflow.begin(), inflow.end(),
            [](const Contribution& a, const Contribution& b) {
              return a.to != b.to ? a.to < b.to : a.from < b.from;
            });

  SparseDist out;
  std::size_t si = 0;  // cursor into the sorted support
  std::size_t ci = 0;  // cursor into the grouped inflow
  while (si < p.size() || ci < inflow.size()) {
    const VertexId u =
        si < p.size() && (ci == inflow.size() || p.support[si] <= inflow[ci].to)
            ? p.support[si]
            : inflow[ci].to;
    const double deg_u = g.degree(u);
    XD_CHECK_MSG(deg_u > 0, "walk mass on an isolated vertex " << u);
    double m = 0.0;
    while (ci < inflow.size() && inflow[ci].to == u) {
      m += inflow[ci].share;
      ++ci;
    }
    if (si < p.size() && p.support[si] == u) {
      // Lazy half plus loop (and masked) slots depositing back.
      const double retained =
          p.mass[si] / 2.0 +
          static_cast<double>(g.loops_at(u)) * p.mass[si] / (2.0 * deg_u);
      m += retained;
      ++si;
    }
    if (m >= 2.0 * epsilon * deg_u) {
      out.support.push_back(u);
      out.mass.push_back(m);
    }
  }
  return out;
}

template <GraphAccess G>
std::vector<SparseDist> truncated_walk(const G& g, VertexId v, int steps,
                                       double epsilon) {
  std::vector<SparseDist> evolution;
  evolution.reserve(static_cast<std::size_t>(steps) + 1);
  evolution.push_back(SparseDist::point(v));
  for (int t = 1; t <= steps; ++t) {
    evolution.push_back(truncated_step(g, evolution.back(), epsilon));
    if (evolution.back().size() == 0) break;  // all mass truncated away
  }
  return evolution;
}

template SparseDist truncated_step(const Graph&, const SparseDist&, double);
template SparseDist truncated_step(const GraphView&, const SparseDist&, double);
template std::vector<SparseDist> truncated_walk(const Graph&, VertexId, int,
                                                double);
template std::vector<SparseDist> truncated_walk(const GraphView&, VertexId, int,
                                                double);

template <GraphAccess G>
std::vector<double> stationary(const G& g) {
  const double vol = static_cast<double>(g.volume());
  std::vector<double> pi(g.num_vertices(), 0.0);
  if (vol == 0) return pi;
  for (const VertexId v : g.vertices()) {
    pi[v] = g.degree(v) / vol;
  }
  return pi;
}

template <GraphAccess G>
std::vector<double> normalize_by_degree(const G& g,
                                        const std::vector<double>& p) {
  XD_CHECK(p.size() == g.num_vertices());
  std::vector<double> rho(p.size(), 0.0);
  for (const VertexId v : g.vertices()) {
    if (g.degree(v) > 0) rho[v] = p[v] / g.degree(v);
  }
  return rho;
}

template std::vector<double> stationary(const Graph&);
template std::vector<double> stationary(const GraphView&);
template std::vector<double> normalize_by_degree(const Graph&,
                                                 const std::vector<double>&);
template std::vector<double> normalize_by_degree(const GraphView&,
                                                 const std::vector<double>&);

}  // namespace xd::spectral

#include "spectral/fiedler.hpp"

#include <cmath>

#include "graph/metrics.hpp"
#include "spectral/lazy_walk.hpp"
#include "spectral/mixing.hpp"
#include "spectral/sweep.hpp"
#include "util/check.hpp"

namespace xd::spectral {

std::optional<SpectralCut> fiedler_sweep(const Graph& g, int iterations) {
  const std::size_t n = g.num_vertices();
  if (n < 2 || g.volume() == 0) return std::nullopt;
  const double vol = static_cast<double>(g.volume());

  // Power iteration in the symmetrized space (same scheme as
  // lazy_second_eigenvalue, but we keep the vector).
  std::vector<double> top(n);
  for (VertexId v = 0; v < n; ++v) top[v] = std::sqrt(g.degree(v) / vol);
  std::vector<double> y(n);
  for (VertexId v = 0; v < n; ++v) {
    y[v] = ((v * 2654435761u) % 1000) / 1000.0 - 0.5;
  }
  auto deflate = [&](std::vector<double>& vec) {
    double dot = 0;
    for (std::size_t i = 0; i < n; ++i) dot += vec[i] * top[i];
    for (std::size_t i = 0; i < n; ++i) vec[i] -= dot * top[i];
  };
  auto apply = [&](const std::vector<double>& vec) {
    std::vector<double> x(n);
    for (VertexId v = 0; v < n; ++v) {
      x[v] = vec[v] * std::sqrt(static_cast<double>(g.degree(v)));
    }
    x = lazy_step(g, x);
    for (VertexId v = 0; v < n; ++v) {
      const double d = g.degree(v);
      x[v] = d > 0 ? x[v] / std::sqrt(d) : 0.0;
    }
    return x;
  };

  deflate(y);
  double lambda = 0;
  for (int it = 0; it < iterations; ++it) {
    double len = 0;
    for (double x : y) len += x * x;
    len = std::sqrt(len);
    if (len < 1e-300) break;
    for (double& x : y) x /= len;
    auto next = apply(y);
    deflate(next);
    double dot = 0;
    for (std::size_t i = 0; i < n; ++i) dot += next[i] * y[i];
    lambda = dot;
    y = std::move(next);
  }

  // Fiedler embedding: f = D^{-1/2} y; sweep both directions (the vector's
  // sign is arbitrary).
  std::vector<double> f(n, 0.0);
  for (VertexId v = 0; v < n; ++v) {
    const double d = g.degree(v);
    f[v] = d > 0 ? y[v] / std::sqrt(d) : 0.0;
  }
  // Shift so all scores are positive for the sweep machinery, preserving
  // order; sweep ascending and descending by negation.
  auto shifted = [&](bool negate) {
    double lo = 0;
    std::vector<double> s(n);
    for (std::size_t i = 0; i < n; ++i) {
      s[i] = negate ? -f[i] : f[i];
      lo = std::min(lo, s[i]);
    }
    for (double& x : s) x += -lo + 1.0;
    return s;
  };

  SpectralCut best;
  best.lambda2 = lambda;
  best.conductance = std::numeric_limits<double>::infinity();
  for (bool negate : {false, true}) {
    const Sweep sw = sweep_cut(g, shifted(negate));
    const std::size_t j = best_prefix(sw);
    if (j == 0 || j == sw.size()) continue;
    const double phi = sw.conductance(j);
    if (phi < best.conductance) {
      best.conductance = phi;
      best.cut = sw.prefix(j);
    }
  }
  if (best.cut.empty()) return std::nullopt;
  return best;
}

}  // namespace xd::spectral

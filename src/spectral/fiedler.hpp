#pragma once

/// \file fiedler.hpp
/// Centralized spectral partitioning oracle: sweep over an approximate
/// second eigenvector of the lazy walk.  By Cheeger's inequality the best
/// sweep prefix has conductance <= sqrt(2 * gap), so this provides a
/// certified-quality reference cut for tests and for the E2/E3 benches'
/// "centralized baseline" columns.  The distributed algorithms never use it.

#include <optional>

#include "graph/graph.hpp"
#include "graph/vertex_set.hpp"

namespace xd::spectral {

/// Result of the spectral sweep.
struct SpectralCut {
  VertexSet cut;          ///< smaller-volume side of the best sweep prefix
  double conductance = 0; ///< its conductance
  double lambda2 = 0;     ///< second eigenvalue of the lazy walk
};

/// Runs power iteration + sweep.  Returns nullopt for graphs with < 2
/// vertices or zero volume.
std::optional<SpectralCut> fiedler_sweep(const Graph& g, int iterations = 400);

}  // namespace xd::spectral

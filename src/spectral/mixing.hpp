#pragma once

/// \file mixing.hpp
/// Mixing time and spectral gap of the lazy walk.
///
/// The paper leans on the Jerrum–Sinclair relation (§1):
///   Θ(1/Φ_G)  <=  τ_mix(G)  <=  Θ(log n / Φ_G²),
/// and Theorem 2's routing uses τ_mix = O(log n / φ²) on each component of
/// the decomposition.  Experiment E7 reproduces the relation empirically.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace xd::spectral {

/// Second-largest eigenvalue λ₂ of the lazy walk matrix M (all eigenvalues
/// of M lie in [0, 1]).  Power iteration on the symmetrized walk
/// D^{-1/2} M D^{1/2} with the stationary component deflated.  The spectral
/// gap 1 - λ₂ controls mixing: τ(ε) <= log(1/(ε π_min)) / (1 - λ₂).
double lazy_second_eigenvalue(const Graph& g, int iterations = 400);

/// Exact-simulation mixing time: the smallest t such that the walk from the
/// worst of `starts` sampled start vertices satisfies
///   max_u |p_t(u) - π(u)| / π(u) <= eps     (relative pointwise distance).
/// Cost O(starts * t * m); meant for graphs up to a few thousand vertices.
/// Returns `cap` if not mixed within `cap` steps.
std::uint32_t mixing_time_simulated(const Graph& g, double eps = 0.25,
                                    int starts = 3, std::uint32_t cap = 1u << 20);

/// Eigenvalue-based mixing-time estimate log(Vol/ (eps * deg_min)) / (1-λ₂);
/// cheap and tight enough for round-cost modeling (used by the router).
std::uint32_t mixing_time_estimate(const Graph& g, double eps = 0.25);

}  // namespace xd::spectral

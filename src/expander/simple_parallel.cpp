#include "expander/simple_parallel.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "congest/network.hpp"
#include "congest/scheduler.hpp"
#include "graph/graph_view.hpp"
#include "graph/metrics.hpp"
#include "graph/subgraph.hpp"
#include "ldd/ldd.hpp"
#include "sparsecut/partition.hpp"
#include "util/check.hpp"

namespace xd::expander::detail {

namespace {

/// Fraction of φ₀² the backend promises the spectral verifier when every
/// part was certified by a sparse-cut miss.  Cheeger for the lazy walk
/// gives 1 - λ₂ >= Φ²/2 on a true φ₀-expander; the extra factor 2 of
/// slack absorbs the certification being a whp/practical statement rather
/// than an exact oracle (cross_check.cpp holds both backends to this).
constexpr double kCheegerSlack = 0.25;

/// Consecutive trims of one part before it is forced back to clustering:
/// the CMPS trimming step shaves at most O(log Vol) sparse cuts off the
/// large side before re-clustering can make progress again.
std::uint64_t trim_budget(std::uint64_t vol) {
  const double lg = std::log2(static_cast<double>(vol) + 1.0);
  return 4 * static_cast<std::uint64_t>(std::ceil(lg)) + 8;
}

/// One schedulable unit; same vertex-disjoint / own-Rng / deferred-effects
/// discipline as the nibble driver's WorkItem (decomposition.cpp).
struct WorkItem {
  enum class Kind {
    kCluster,  ///< LDD the part, emit one kCertify per cluster
    kCertify,  ///< one sparse cut at φ₀: finalize, or cut-and-trim
  };
  Kind kind;
  std::vector<VertexId> u;
  std::uint32_t depth = 0;
  std::uint32_t trims = 0;  ///< consecutive kCertify passes on this part
  Rng rng{0};
};

/// Deferred effects, applied at the epoch barrier in item-index order.
/// `input` keeps the item's own vertex set so the εm budget guard can
/// finalize the part untouched when its removals no longer fit.
struct ItemResult {
  std::vector<VertexId> input;
  std::vector<std::pair<EdgeId, RemoveReason>> removals;
  std::vector<std::vector<VertexId>> finals;
  std::vector<WorkItem> children;
  std::uint64_t sparse_cut_calls = 0;
  std::uint64_t guard_finalized = 0;
  std::uint32_t depth_seen = 0;
};

struct Driver {
  const Graph* g = nullptr;
  DecompositionParams prm;
  Schedule schedule;
  congest::RoundLedger* ledger = nullptr;

  std::vector<char> removed;  // ambient edge overlay
  std::vector<std::vector<VertexId>> finals;
  std::uint64_t removal_budget = 0;  // ⌊ε·|E|⌋, enforced at the barrier
  std::uint64_t removals_applied = 0;
  DecompositionResult* out = nullptr;

  void mark_removed(EdgeId ambient, RemoveReason reason) {
    XD_CHECK(!removed[ambient]);
    removed[ambient] = 1;
    ++out->removed_by[static_cast<int>(reason)];
    ++removals_applied;
  }

  void run(std::vector<VertexId> start, Rng top_rng);
  ItemResult run_item(WorkItem& item, congest::RoundLedger& lg) const;
  ItemResult run_cluster(WorkItem& item, congest::RoundLedger& lg) const;
  ItemResult run_certify(WorkItem& item, congest::RoundLedger& lg) const;
};

void Driver::run(std::vector<VertexId> start, Rng top_rng) {
  std::vector<WorkItem> epoch;
  epoch.push_back(
      WorkItem{WorkItem::Kind::kCluster, std::move(start), 0, 0, top_rng});

  const bool concurrent = prm.scheduler_threads >= 1;
  const congest::EpochScheduler pool(concurrent ? prm.scheduler_threads : 1);

  while (!epoch.empty()) {
    ++out->epochs;
    std::vector<ItemResult> results(epoch.size());
    if (concurrent) {
      pool.run_forked(*ledger, epoch.size(),
                      [&](std::size_t i, congest::RoundLedger& lg) {
                        results[i] = run_item(epoch[i], lg);
                      });
    } else {
      for (std::size_t i = 0; i < epoch.size(); ++i) {
        results[i] = run_item(epoch[i], *ledger);
      }
    }

    // Barrier merge in item-index order.  The εm budget guard lives here,
    // not in the items: items race on host threads and cannot see a shared
    // running total without breaking bit-identity, while the merge order
    // is the same at every thread count, so "which item hit the ceiling"
    // replays exactly.
    std::vector<WorkItem> next;
    for (auto& res : results) {
      if (removals_applied + res.removals.size() > removal_budget) {
        finals.push_back(std::move(res.input));
        ++out->guard_finalized;
        continue;
      }
      for (const auto& [ambient, reason] : res.removals) {
        mark_removed(ambient, reason);
      }
      for (auto& part : res.finals) finals.push_back(std::move(part));
      for (auto& child : res.children) next.push_back(std::move(child));
      out->sparse_cut_calls += res.sparse_cut_calls;
      out->guard_finalized += res.guard_finalized;
      out->max_phase1_depth = std::max(out->max_phase1_depth, res.depth_seen);
    }
    epoch = std::move(next);
  }
}

ItemResult Driver::run_item(WorkItem& item, congest::RoundLedger& lg) const {
  switch (item.kind) {
    case WorkItem::Kind::kCluster:
      return run_cluster(item, lg);
    case WorkItem::Kind::kCertify:
      return run_certify(item, lg);
  }
  XD_CHECK_MSG(false, "unreachable work-item kind");
  return {};
}

// Clustering step: LDD on G{U} (Remove-1 its cut edges), one certify child
// per surviving cluster.  Identical probe discipline to the nibble
// driver's run_ldd: the practical preset skips the call when the measured
// diameter already meets the LDD's own O(log²n/β²) bound.
ItemResult Driver::run_cluster(WorkItem& item, congest::RoundLedger& lg) const {
  ItemResult res;
  res.input = item.u;
  res.depth_seen = item.depth;
  std::vector<VertexId>& u = item.u;
  if (u.size() <= 1) {
    res.finals.push_back(std::move(u));
    return res;
  }
  if (item.depth > schedule.d) {
    // Depth guard: quality loss only, never partition validity (the final
    // assembly splits disconnected guarded parts).
    ++res.guard_finalized;
    res.finals.push_back(std::move(u));
    return res;
  }

  const double logn = std::log(std::max<double>(g->num_vertices(), 2));
  const double ldd_diameter_bound =
      150.0 * logn * logn / (schedule.beta * schedule.beta);
  std::optional<GraphView> live;
  if (prm.preset != Preset::kPaper) {
    live.emplace(*g, &removed, VertexSet(u));
  }
  const bool run_ldd_call =
      !live ||
      static_cast<double>(diameter_double_sweep(*live)) > ldd_diameter_bound;

  std::vector<std::vector<VertexId>> comps;
  if (run_ldd_call) {
    const LiveSubgraph mat =
        live ? live->materialize() : live_subgraph(*g, removed, VertexSet(u));
    ldd::LddParams ldd_prm;
    ldd_prm.beta = schedule.beta;
    ldd_prm.K = prm.ldd_K;
    congest::Network net(mat.graph, lg, item.rng());
    const ldd::LddResult ldd_res =
        ldd::low_diameter_decomposition(net, ldd_prm, item.rng);
    for (EdgeId e = 0; e < mat.graph.num_edges(); ++e) {
      if (ldd_res.cut_edge[e]) {
        const EdgeId parent = mat.edge_to_parent[e];
        XD_CHECK(parent != LiveSubgraph::kNoEdge);
        res.removals.emplace_back(parent, RemoveReason::kLdd);
      }
    }
    comps.resize(ldd_res.num_components);
    for (VertexId lv = 0; lv < mat.graph.num_vertices(); ++lv) {
      comps[ldd_res.component[lv]].push_back(mat.to_parent[lv]);
    }
  } else {
    auto [comp, count] = connected_components(*live);
    comps.resize(count);
    for (const VertexId v : live->vertices()) {
      comps[comp[v]].push_back(v);
    }
  }

  std::uint64_t child_id = 0;
  for (auto& comp : comps) {
    if (comp.empty()) continue;
    if (comp.size() == 1) {
      res.finals.push_back(std::move(comp));
      continue;
    }
    res.children.push_back(WorkItem{WorkItem::Kind::kCertify, std::move(comp),
                                    item.depth, 0, item.rng.fork(child_id++)});
  }
  return res;
}

// Certification step: one nearly-most-balanced sparse cut at φ₀.  A miss
// certifies the cluster (Φ >= φ₀ whp) and finalizes it.  A hit Remove-2s
// the cut edges; the sparse side goes back to clustering one level deeper,
// and the rest is trimmed -- certified again at the same depth -- until
// the trim budget forces it back to clustering too.
ItemResult Driver::run_certify(WorkItem& item, congest::RoundLedger& lg) const {
  ItemResult res;
  res.input = item.u;
  res.depth_seen = item.depth;
  std::vector<VertexId>& comp = item.u;
  const GraphView comp_live(*g, &removed, VertexSet(comp));
  if (comp_live.volume() == 0) {
    res.finals.push_back(std::move(comp));
    return res;
  }
  ++res.sparse_cut_calls;
  const auto diameter = diameter_double_sweep(comp_live);
  const auto cut_res = sparsecut::nearly_most_balanced_sparse_cut(
      comp_live, schedule.phi[0], prm.preset, item.rng, lg, diameter,
      prm.thorough_partition);

  if (!cut_res.found()) {
    res.finals.push_back(std::move(comp));  // certified: Φ(G{U}) >= φ₀ (whp)
    return res;
  }

  const std::uint64_t vol_u = comp_live.volume();
  const auto in_cut = cut_res.cut.bitmap(g->num_vertices());
  comp_live.for_each_live_edge([&](EdgeId ambient, VertexId x, VertexId y) {
    if (in_cut[x] != in_cut[y]) {
      res.removals.emplace_back(ambient, RemoveReason::kSparseCut);
    }
  });
  std::vector<VertexId> side_c, side_rest;
  for (const VertexId v : comp_live.vertices()) {
    (in_cut[v] ? side_c : side_rest).push_back(v);
  }

  // Sparse side: re-cluster one level deeper (the cut certifies it is the
  // thin part; its own structure is unknown again).
  if (side_c.size() == 1) {
    res.finals.push_back(std::move(side_c));
  } else if (!side_c.empty()) {
    res.children.push_back(WorkItem{WorkItem::Kind::kCluster, std::move(side_c),
                                    item.depth + 1, 0, item.rng.fork(0)});
  }
  // Large side: trim (same depth) within budget, else back to clustering.
  if (side_rest.size() == 1) {
    res.finals.push_back(std::move(side_rest));
  } else if (!side_rest.empty()) {
    const bool trims_left = item.trims + 1 <= trim_budget(vol_u);
    res.children.push_back(
        trims_left
            ? WorkItem{WorkItem::Kind::kCertify, std::move(side_rest),
                       item.depth, item.trims + 1, item.rng.fork(1)}
            : WorkItem{WorkItem::Kind::kCluster, std::move(side_rest),
                       item.depth + 1, 0, item.rng.fork(1)});
  }
  return res;
}

}  // namespace

DecompositionResult simple_parallel_decomposition(const Graph& g,
                                                  const DecompositionParams& prm,
                                                  Rng& rng,
                                                  congest::RoundLedger& ledger) {
  XD_CHECK(g.num_vertices() >= 2);
  DecompositionResult out;
  out.backend = DecompositionBackend::kSimpleParallel;
  out.schedule = derive_schedule(prm, g.num_vertices(),
                                 std::max<std::size_t>(g.num_edges(), 1),
                                 std::max<std::uint64_t>(g.volume(), 1));
  out.removed_edge.assign(g.num_edges(), 0);

  const std::uint64_t rounds_before = ledger.rounds();

  Driver driver;
  driver.g = &g;
  driver.prm = prm;
  driver.schedule = out.schedule;
  driver.ledger = &ledger;
  driver.removed.assign(g.num_edges(), 0);
  driver.removal_budget = static_cast<std::uint64_t>(
      prm.epsilon * static_cast<double>(g.num_edges()));
  driver.out = &out;

  std::vector<VertexId> start;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) == 0) {
      driver.finals.push_back({v});
    } else {
      start.push_back(v);
    }
  }
  // Same one-draw seeding as the nibble driver, so a caller alternating
  // backends on one Rng still gets independent streams per call.
  const Rng top_rng(rng());
  if (!start.empty()) driver.run(std::move(start), top_rng);

  out.removed_edge = driver.removed;
  out.rounds = ledger.rounds() - rounds_before;
  // The certified floor: every non-guarded part ended on a sparse-cut miss
  // at φ₀, which the spectral verifier can confirm down to ~φ₀²/2 via
  // Cheeger; one guarded part drops the promise to the nibble schedule's
  // tiny φ_k floor (still honest -- guards trade quality, not validity).
  const double phi0 = out.schedule.phi[0];
  out.phi_guarantee = out.guard_finalized == 0
                          ? kCheegerSlack * phi0 * phi0
                          : out.schedule.phi_final();

  detail::assemble_components(g, driver.removed, driver.finals, out);
  return out;
}

}  // namespace xd::expander::detail

#include "expander/decomposition.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "congest/network.hpp"
#include "graph/metrics.hpp"
#include "graph/subgraph.hpp"
#include "ldd/ldd.hpp"
#include "sparsecut/partition.hpp"
#include "util/check.hpp"

namespace xd::expander {

namespace {

/// Mutable driver state shared by both phases.
struct Driver {
  const Graph* g = nullptr;
  DecompositionParams prm;
  Schedule schedule;
  Rng* rng = nullptr;
  congest::RoundLedger* ledger = nullptr;

  std::vector<char> removed;               // ambient edge overlay
  std::vector<std::vector<VertexId>> finals;
  DecompositionResult* out = nullptr;

  std::uint64_t ambient_volume(const std::vector<VertexId>& ids) const {
    std::uint64_t vol = 0;
    for (VertexId v : ids) vol += g->degree(v);
    return vol;
  }

  void finalize(std::vector<VertexId> ids) { finals.push_back(std::move(ids)); }

  void mark_removed(EdgeId ambient, RemoveReason reason) {
    XD_CHECK(!removed[ambient]);
    removed[ambient] = 1;
    ++out->removed_by[static_cast<int>(reason)];
  }

  void phase1(std::vector<VertexId> u, std::uint32_t depth);
  void phase2(std::vector<VertexId> u);
};

void Driver::phase1(std::vector<VertexId> u, std::uint32_t depth) {
  out->max_phase1_depth = std::max(out->max_phase1_depth, depth);
  if (u.size() <= 1) {
    finalize(std::move(u));
    return;
  }
  if (depth > schedule.d) {
    // Lemma 1 proves this cannot happen with the paper constants; with
    // practical constants it is a stopgap, and the affected part simply
    // becomes final (costing conductance quality, never correctness of the
    // partition).
    finalize(std::move(u));
    return;
  }

  // --- Step 1: LDD on G{U}; Remove-1 its cut edges. ---
  // Practical preset skips the call when the part's measured diameter
  // already meets the O(log²n/β²) bound LDD guarantees -- the LDD is then
  // a no-op by its own contract (it may legally cut nothing), and the
  // 2 ln n / β MPX epochs are saved.  Paper mode always runs it.
  const LiveSubgraph live = live_subgraph(*g, removed, VertexSet(u));
  const double logn =
      std::log(std::max<double>(g->num_vertices(), 2));
  const double ldd_diameter_bound =
      150.0 * logn * logn / (schedule.beta * schedule.beta);
  const bool run_ldd =
      prm.preset == Preset::kPaper ||
      static_cast<double>(diameter_double_sweep(live.graph)) >
          ldd_diameter_bound;

  std::vector<std::vector<VertexId>> comps;
  if (run_ldd) {
    ldd::LddParams ldd_prm;
    ldd_prm.beta = schedule.beta;
    ldd_prm.K = prm.ldd_K;
    congest::Network net(live.graph, *ledger, (*rng)());
    const ldd::LddResult ldd_res =
        ldd::low_diameter_decomposition(net, ldd_prm, *rng);
    for (EdgeId e = 0; e < live.graph.num_edges(); ++e) {
      if (ldd_res.cut_edge[e]) {
        const EdgeId parent = live.edge_to_parent[e];
        XD_CHECK(parent != LiveSubgraph::kNoEdge);
        mark_removed(parent, RemoveReason::kLdd);
      }
    }
    comps.resize(ldd_res.num_components);
    for (VertexId lv = 0; lv < live.graph.num_vertices(); ++lv) {
      comps[ldd_res.component[lv]].push_back(live.to_parent[lv]);
    }
  } else {
    auto [comp, count] = connected_components(live.graph);
    comps.resize(count);
    for (VertexId lv = 0; lv < live.graph.num_vertices(); ++lv) {
      comps[comp[lv]].push_back(live.to_parent[lv]);
    }
  }

  // --- Step 2: sparse cut on each component of what remains. ---
  for (auto& comp : comps) {
    if (comp.empty()) continue;
    if (comp.size() == 1) {
      finalize(std::move(comp));
      continue;
    }
    const LiveSubgraph comp_live = live_subgraph(*g, removed, VertexSet(comp));
    if (comp_live.graph.volume() == 0) {
      finalize(std::move(comp));
      continue;
    }
    ++out->sparse_cut_calls;
    const auto diameter = diameter_double_sweep(comp_live.graph);
    const auto res = sparsecut::nearly_most_balanced_sparse_cut(
        comp_live.graph, schedule.phi[0], prm.preset, *rng, *ledger, diameter,
        prm.thorough_partition);

    if (!res.found()) {
      finalize(std::move(comp));  // certified: Φ(G{U}) >= φ₀ (w.h.p.)
      continue;
    }
    const std::uint64_t vol_u = comp_live.graph.volume();
    const std::uint64_t vol_c = volume(comp_live.graph, res.cut);
    // Phase-2 entry (Step 2b).  The paper's ε/12 threshold composes with
    // Theorem 3's bal >= min{b/2, 1/48} only when ε <= 1/4; the min keeps
    // the Lemma 2 argument valid for every ε in (0, 1).
    const double entry = std::min(prm.epsilon / 12.0, 1.0 / 48.0);
    if (static_cast<double>(vol_c) <= entry * static_cast<double>(vol_u)) {
      ++out->phase2_entries;
      phase2(std::move(comp));  // cut edges intentionally kept (Step 2b)
      continue;
    }

    // Step 2c: Remove-2 the cut edges, recurse on both sides.
    const auto in_cut = res.cut.bitmap(comp_live.graph.num_vertices());
    for (EdgeId e = 0; e < comp_live.graph.num_edges(); ++e) {
      const auto [x, y] = comp_live.graph.edge(e);
      if (x == y) continue;
      if (in_cut[x] != in_cut[y]) {
        const EdgeId parent = comp_live.edge_to_parent[e];
        XD_CHECK(parent != LiveSubgraph::kNoEdge);
        mark_removed(parent, RemoveReason::kSparseCut);
      }
    }
    std::vector<VertexId> side_c, side_rest;
    for (VertexId lv = 0; lv < comp_live.graph.num_vertices(); ++lv) {
      (in_cut[lv] ? side_c : side_rest).push_back(comp_live.to_parent[lv]);
    }
    phase1(std::move(side_c), depth + 1);
    phase1(std::move(side_rest), depth + 1);
  }
}

void Driver::phase2(std::vector<VertexId> u) {
  const std::uint64_t vol_u = ambient_volume(u);
  XD_CHECK(vol_u > 0);
  const double m1 = (prm.epsilon / 6.0) * static_cast<double>(vol_u);
  const double tau = std::pow(m1, 1.0 / static_cast<double>(prm.k));

  // Communication uses all of G* = G{U}; its diameter bounds the O(D) terms
  // for every sparse-cut call in this phase (paper, end of §2).
  const LiveSubgraph entry = live_subgraph(*g, removed, VertexSet(u));
  const std::uint32_t diameter = diameter_double_sweep(entry.graph);

  int level = 1;
  std::vector<VertexId> uprime = std::move(u);
  // Per-level iteration guard: the paper bounds each level by 2τ rounds of
  // the loop; the +2 absorbs rounding with practical constants.
  const auto level_budget =
      static_cast<std::uint64_t>(std::ceil(2.0 * tau)) + 2;
  std::uint64_t level_iterations = 0;
  // Lemma 2 invariant: the total volume ripped out in Phase 2 is at most
  // m₁ = (ε/6) Vol(U).  Paper constants guarantee it; practical constants
  // enforce it as a hard stop so one mis-balanced cut cannot cascade.
  std::uint64_t ripped_volume = 0;

  while (true) {
    if (uprime.empty()) return;
    const LiveSubgraph live = live_subgraph(*g, removed, VertexSet(uprime));
    if (live.graph.volume() == 0 || uprime.size() == 1) {
      finalize(std::move(uprime));
      return;
    }
    ++out->sparse_cut_calls;
    const auto res = sparsecut::nearly_most_balanced_sparse_cut(
        live.graph, schedule.phi[static_cast<std::size_t>(level)], prm.preset,
        *rng, *ledger, diameter, prm.thorough_partition);
    if (!res.found()) {
      finalize(std::move(uprime));
      return;
    }

    const std::uint64_t vol_c = volume(live.graph, res.cut);
    const double m_level = m1 / std::pow(tau, level - 1);
    if (static_cast<double>(vol_c) <= m_level / (2.0 * tau)) {
      ++level;
      level_iterations = 0;
      if (level > prm.k) {
        // Impossible with the paper identity m_k/(2τ) = 1/2 < Vol(C);
        // practical guard only.
        finalize(std::move(uprime));
        return;
      }
      continue;
    }

    if (++level_iterations > level_budget) {
      finalize(std::move(uprime));  // practical guard; see level_budget
      return;
    }
    if (static_cast<double>(ripped_volume + vol_c) > m1) {
      finalize(std::move(uprime));  // Lemma 2 hard stop (practical guard)
      return;
    }
    ripped_volume += vol_c;

    // Remove-3: every edge incident to C goes; C's vertices become
    // singleton components.
    const auto in_cut = res.cut.bitmap(live.graph.num_vertices());
    for (EdgeId e = 0; e < live.graph.num_edges(); ++e) {
      const auto [x, y] = live.graph.edge(e);
      if (x == y) continue;
      if (in_cut[x] || in_cut[y]) {
        const EdgeId parent = live.edge_to_parent[e];
        XD_CHECK(parent != LiveSubgraph::kNoEdge);
        mark_removed(parent, RemoveReason::kRipOut);
      }
    }
    std::vector<VertexId> rest;
    for (VertexId lv = 0; lv < live.graph.num_vertices(); ++lv) {
      const VertexId pv = live.to_parent[lv];
      if (in_cut[lv]) {
        ++out->singleton_components;
        finalize({pv});
      } else {
        rest.push_back(pv);
      }
    }
    uprime = std::move(rest);
  }
}

}  // namespace

DecompositionResult expander_decomposition(const Graph& g,
                                           const DecompositionParams& prm,
                                           Rng& rng,
                                           congest::RoundLedger& ledger) {
  XD_CHECK(g.num_vertices() >= 2);
  DecompositionResult out;
  out.schedule = derive_schedule(prm, g.num_vertices(),
                                 std::max<std::size_t>(g.num_edges(), 1),
                                 std::max<std::uint64_t>(g.volume(), 1));
  out.removed_edge.assign(g.num_edges(), 0);

  const std::uint64_t rounds_before = ledger.rounds();

  Driver driver;
  driver.g = &g;
  driver.prm = prm;
  driver.schedule = out.schedule;
  driver.rng = &rng;
  driver.ledger = &ledger;
  driver.removed.assign(g.num_edges(), 0);
  driver.out = &out;

  // Isolated vertices are their own components; everything else enters
  // Phase 1 as one part (the LDD splits disconnected inputs for free).
  std::vector<VertexId> start;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) == 0) {
      driver.finalize({v});
    } else {
      start.push_back(v);
    }
  }
  if (!start.empty()) driver.phase1(std::move(start), 0);

  out.removed_edge = driver.removed;
  out.rounds = ledger.rounds() - rounds_before;

  // Assemble component ids; every vertex must appear exactly once.
  out.component.assign(g.num_vertices(), static_cast<std::uint32_t>(-1));
  std::uint32_t next_id = 0;
  for (const auto& ids : driver.finals) {
    // A final part can still be disconnected (e.g. the depth guard); split
    // it so components are genuinely connected in the remaining graph.
    const LiveSubgraph live = live_subgraph(g, driver.removed, VertexSet(ids));
    auto [comp, count] = connected_components(live.graph);
    std::vector<std::uint32_t> local_to_global(count,
                                               static_cast<std::uint32_t>(-1));
    for (VertexId lv = 0; lv < live.graph.num_vertices(); ++lv) {
      auto& slot = local_to_global[comp[lv]];
      if (slot == static_cast<std::uint32_t>(-1)) slot = next_id++;
      const VertexId pv = live.to_parent[lv];
      XD_CHECK_MSG(out.component[pv] == static_cast<std::uint32_t>(-1),
                   "vertex " << pv << " assigned twice");
      out.component[pv] = slot;
    }
    if (live.graph.num_vertices() == 0 && !ids.empty()) {
      // Degenerate: isolated final ids (empty live graph cannot happen for
      // non-empty ids, but keep the invariant airtight).
      for (VertexId pv : ids) out.component[pv] = next_id++;
    }
  }
  out.num_components = next_id;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    XD_CHECK_MSG(out.component[v] != static_cast<std::uint32_t>(-1),
                 "vertex " << v << " missing from the decomposition");
  }
  return out;
}

}  // namespace xd::expander

#include "expander/decomposition.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "congest/network.hpp"
#include "congest/scheduler.hpp"
#include "expander/simple_parallel.hpp"
#include "graph/graph_view.hpp"
#include "graph/metrics.hpp"
#include "graph/subgraph.hpp"
#include "ldd/ldd.hpp"
#include "sparsecut/partition.hpp"
#include "util/check.hpp"

namespace xd::expander {

namespace {

/// One schedulable unit of decomposition work.  Items of an epoch are
/// vertex-disjoint, carry their own seed-split Rng, and never mutate shared
/// driver state -- their effects come back as an ItemResult that the driver
/// merges in item-index order at the epoch barrier.  That discipline is the
/// whole determinism argument: an item's computation depends only on its
/// own inputs, so neither the host thread running it nor the finish order
/// can change what it produces.
struct WorkItem {
  enum class Kind {
    kLdd,     ///< Phase 1 step 1: LDD the part, emit kCut per component
    kCut,     ///< Phase 1 step 2: sparse-cut one component
    kPhase2,  ///< the whole Phase 2 level loop for one entered component
  };
  Kind kind;
  std::vector<VertexId> u;
  std::uint32_t depth = 0;
  Rng rng{0};
};

/// Deferred effects of one work item, applied by the driver at the barrier.
struct ItemResult {
  std::vector<std::pair<EdgeId, RemoveReason>> removals;
  std::vector<std::vector<VertexId>> finals;
  std::vector<WorkItem> children;
  std::uint64_t sparse_cut_calls = 0;
  std::uint64_t phase2_entries = 0;
  std::uint64_t singletons = 0;
  std::uint32_t depth_seen = 0;
};

/// Epoch-batched driver shared by the sequential and concurrent modes.
struct Driver {
  const Graph* g = nullptr;
  DecompositionParams prm;
  Schedule schedule;
  congest::RoundLedger* ledger = nullptr;

  std::vector<char> removed;               // ambient edge overlay
  std::vector<std::vector<VertexId>> finals;
  DecompositionResult* out = nullptr;

  std::uint64_t ambient_volume(const std::vector<VertexId>& ids) const {
    std::uint64_t vol = 0;
    for (VertexId v : ids) vol += g->degree(v);
    return vol;
  }

  void mark_removed(EdgeId ambient, RemoveReason reason) {
    XD_CHECK(!removed[ambient]);
    removed[ambient] = 1;
    ++out->removed_by[static_cast<int>(reason)];
  }

  void run(std::vector<VertexId> start, Rng top_rng);
  ItemResult run_item(WorkItem& item, congest::RoundLedger& lg) const;
  ItemResult run_ldd(WorkItem& item, congest::RoundLedger& lg) const;
  ItemResult run_cut(WorkItem& item, congest::RoundLedger& lg) const;
  ItemResult run_phase2(WorkItem& item, congest::RoundLedger& lg) const;
};

void Driver::run(std::vector<VertexId> start, Rng top_rng) {
  std::vector<WorkItem> epoch;
  epoch.push_back(
      WorkItem{WorkItem::Kind::kLdd, std::move(start), 0, top_rng});

  // Sequential mode charges the root ledger directly (components pay one
  // after another: rounds SUM).  Concurrent mode runs each epoch's items on
  // the host pool against forked ledger branches and joins them at the
  // barrier (components share the clock: rounds advance by the epoch MAX,
  // the composition the paper's Theorem 1/2 bounds assume).
  const bool concurrent = prm.scheduler_threads >= 1;
  const congest::EpochScheduler pool(concurrent ? prm.scheduler_threads : 1);

  while (!epoch.empty()) {
    ++out->epochs;
    std::vector<ItemResult> results(epoch.size());
    if (concurrent) {
      pool.run_forked(*ledger, epoch.size(),
                      [&](std::size_t i, congest::RoundLedger& lg) {
                        results[i] = run_item(epoch[i], lg);
                      });
    } else {
      for (std::size_t i = 0; i < epoch.size(); ++i) {
        results[i] = run_item(epoch[i], *ledger);
      }
    }

    // Barrier merge, in item-index order so ids and counters replay
    // identically at every thread count.
    std::vector<WorkItem> next;
    for (auto& res : results) {
      for (const auto& [ambient, reason] : res.removals) {
        mark_removed(ambient, reason);
      }
      for (auto& part : res.finals) finals.push_back(std::move(part));
      for (auto& child : res.children) next.push_back(std::move(child));
      out->sparse_cut_calls += res.sparse_cut_calls;
      out->phase2_entries += res.phase2_entries;
      out->singleton_components += res.singletons;
      out->max_phase1_depth = std::max(out->max_phase1_depth, res.depth_seen);
    }
    epoch = std::move(next);
  }
}

ItemResult Driver::run_item(WorkItem& item, congest::RoundLedger& lg) const {
  switch (item.kind) {
    case WorkItem::Kind::kLdd:
      return run_ldd(item, lg);
    case WorkItem::Kind::kCut:
      return run_cut(item, lg);
    case WorkItem::Kind::kPhase2:
      return run_phase2(item, lg);
  }
  XD_CHECK_MSG(false, "unreachable work-item kind");
  return {};
}

// Phase 1, step 1: LDD on G{U}; Remove-1 its cut edges; one kCut child per
// surviving component.
ItemResult Driver::run_ldd(WorkItem& item, congest::RoundLedger& lg) const {
  ItemResult res;
  res.depth_seen = item.depth;
  std::vector<VertexId>& u = item.u;
  if (u.size() <= 1) {
    res.finals.push_back(std::move(u));
    return res;
  }
  if (item.depth > schedule.d) {
    // Lemma 1 proves this cannot happen with the paper constants; with
    // practical constants it is a stopgap, and the affected part simply
    // becomes final (costing conductance quality, never correctness of the
    // partition).
    res.finals.push_back(std::move(u));
    return res;
  }

  // Practical preset skips the call when the part's measured diameter
  // already meets the O(log²n/β²) bound LDD guarantees -- the LDD is then
  // a no-op by its own contract (it may legally cut nothing), and the
  // 2 ln n / β MPX epochs are saved.  Paper mode always runs it, so only
  // the practical probe pays for the zero-copy overlay (whose construction
  // scan nothing in the materialized path would read).
  const double logn = std::log(std::max<double>(g->num_vertices(), 2));
  const double ldd_diameter_bound =
      150.0 * logn * logn / (schedule.beta * schedule.beta);
  std::optional<GraphView> live;
  if (prm.preset != Preset::kPaper) {
    live.emplace(*g, &removed, VertexSet(u));
  }
  const bool run_ldd_call =
      !live ||
      static_cast<double>(diameter_double_sweep(*live)) > ldd_diameter_bound;

  std::vector<std::vector<VertexId>> comps;
  if (run_ldd_call) {
    // The CONGEST kernel wants a dense renumbering (per-vertex inbox
    // arrays, slot-keyed congestion): the one place Phase 1 still pays for
    // a materialized G{U}.
    const LiveSubgraph mat =
        live ? live->materialize() : live_subgraph(*g, removed, VertexSet(u));
    ldd::LddParams ldd_prm;
    ldd_prm.beta = schedule.beta;
    ldd_prm.K = prm.ldd_K;
    congest::Network net(mat.graph, lg, item.rng());
    const ldd::LddResult ldd_res =
        ldd::low_diameter_decomposition(net, ldd_prm, item.rng);
    for (EdgeId e = 0; e < mat.graph.num_edges(); ++e) {
      if (ldd_res.cut_edge[e]) {
        const EdgeId parent = mat.edge_to_parent[e];
        XD_CHECK(parent != LiveSubgraph::kNoEdge);
        res.removals.emplace_back(parent, RemoveReason::kLdd);
      }
    }
    comps.resize(ldd_res.num_components);
    for (VertexId lv = 0; lv < mat.graph.num_vertices(); ++lv) {
      comps[ldd_res.component[lv]].push_back(mat.to_parent[lv]);
    }
  } else {
    auto [comp, count] = connected_components(*live);
    comps.resize(count);
    for (const VertexId v : live->vertices()) {
      comps[comp[v]].push_back(v);
    }
  }

  // Each surviving component becomes a sparse-cut item of the next epoch,
  // with its own stream split off this item's (fork does not advance the
  // parent, and child ids only count scheduled children, so the split is a
  // pure function of the item's deterministic computation).
  std::uint64_t child_id = 0;
  for (auto& comp : comps) {
    if (comp.empty()) continue;
    if (comp.size() == 1) {
      res.finals.push_back(std::move(comp));
      continue;
    }
    res.children.push_back(WorkItem{WorkItem::Kind::kCut, std::move(comp),
                                    item.depth, item.rng.fork(child_id++)});
  }
  return res;
}

// Phase 1, step 2 for one component: nearly most balanced sparse cut, then
// finalize / enter Phase 2 / Remove-2 and recurse.
ItemResult Driver::run_cut(WorkItem& item, congest::RoundLedger& lg) const {
  ItemResult res;
  res.depth_seen = item.depth;
  std::vector<VertexId>& comp = item.u;
  // The whole sparse-cut stack (Partition -> ParallelNibble -> Nibble) runs
  // on the zero-copy overlay; the cut comes back in ambient ids.
  const GraphView comp_live(*g, &removed, VertexSet(comp));
  if (comp_live.volume() == 0) {
    res.finals.push_back(std::move(comp));
    return res;
  }
  ++res.sparse_cut_calls;
  const auto diameter = diameter_double_sweep(comp_live);
  const auto cut_res = sparsecut::nearly_most_balanced_sparse_cut(
      comp_live, schedule.phi[0], prm.preset, item.rng, lg, diameter,
      prm.thorough_partition);

  if (!cut_res.found()) {
    res.finals.push_back(std::move(comp));  // certified: Φ(G{U}) >= φ₀ (whp)
    return res;
  }
  const std::uint64_t vol_u = comp_live.volume();
  const std::uint64_t vol_c = volume(comp_live, cut_res.cut);
  // Phase-2 entry (Step 2b).  The paper's ε/12 threshold composes with
  // Theorem 3's bal >= min{b/2, 1/48} only when ε <= 1/4; the min keeps
  // the Lemma 2 argument valid for every ε in (0, 1).
  const double entry = std::min(prm.epsilon / 12.0, 1.0 / 48.0);
  if (static_cast<double>(vol_c) <= entry * static_cast<double>(vol_u)) {
    ++res.phase2_entries;
    // Cut edges intentionally kept (Step 2b); the Phase 2 loop inherits
    // this item's stream.
    res.children.push_back(WorkItem{WorkItem::Kind::kPhase2, std::move(comp),
                                    item.depth, item.rng});
    return res;
  }

  // Step 2c: Remove-2 the cut edges, recurse on both sides.  Live-edge
  // iteration visits surviving edges in the same order a materialized copy
  // numbers them, so the removal log replays identically.
  const auto in_cut = cut_res.cut.bitmap(g->num_vertices());
  comp_live.for_each_live_edge([&](EdgeId ambient, VertexId x, VertexId y) {
    if (in_cut[x] != in_cut[y]) {
      res.removals.emplace_back(ambient, RemoveReason::kSparseCut);
    }
  });
  std::vector<VertexId> side_c, side_rest;
  for (const VertexId v : comp_live.vertices()) {
    (in_cut[v] ? side_c : side_rest).push_back(v);
  }
  res.children.push_back(WorkItem{WorkItem::Kind::kLdd, std::move(side_c),
                                  item.depth + 1, item.rng.fork(0)});
  res.children.push_back(WorkItem{WorkItem::Kind::kLdd, std::move(side_rest),
                                  item.depth + 1, item.rng.fork(1)});
  return res;
}

// Phase 2: the level schedule with Remove-3 rip-outs, sequential within one
// entered component (the loop's state genuinely chains), concurrent across
// components.  The item works against a private copy of the removal overlay
// because its own rip-outs must be visible to its next iteration; only its
// component's edges differ from the shared snapshot.
ItemResult Driver::run_phase2(WorkItem& item, congest::RoundLedger& lg) const {
  ItemResult res;
  res.depth_seen = item.depth;
  std::vector<VertexId> u = std::move(item.u);
  std::vector<char> local_removed = removed;
  const auto rip = [&](EdgeId ambient) {
    XD_CHECK(!local_removed[ambient]);
    local_removed[ambient] = 1;
    res.removals.emplace_back(ambient, RemoveReason::kRipOut);
  };

  const std::uint64_t vol_u = ambient_volume(u);
  XD_CHECK(vol_u > 0);
  const double m1 = (prm.epsilon / 6.0) * static_cast<double>(vol_u);
  const double tau = std::pow(m1, 1.0 / static_cast<double>(prm.k));

  // Communication uses all of G* = G{U}; its diameter bounds the O(D) terms
  // for every sparse-cut call in this phase (paper, end of §2).
  const std::uint32_t diameter =
      diameter_double_sweep(GraphView(*g, &local_removed, VertexSet(u)));

  int level = 1;
  std::vector<VertexId> uprime = std::move(u);
  // Per-level iteration guard: the paper bounds each level by 2τ rounds of
  // the loop; the +2 absorbs rounding with practical constants.
  const auto level_budget =
      static_cast<std::uint64_t>(std::ceil(2.0 * tau)) + 2;
  std::uint64_t level_iterations = 0;
  // Lemma 2 invariant: the total volume ripped out in Phase 2 is at most
  // m₁ = (ε/6) Vol(U).  Paper constants guarantee it; practical constants
  // enforce it as a hard stop so one mis-balanced cut cannot cascade.
  std::uint64_t ripped_volume = 0;

  while (true) {
    if (uprime.empty()) return res;
    // The per-level G{U'} is the view overlay that used to be the dominant
    // rebuild cost: one fresh CSR per level iteration, now one O(Vol) scan.
    const GraphView live(*g, &local_removed, VertexSet(uprime));
    if (live.volume() == 0 || uprime.size() == 1) {
      res.finals.push_back(std::move(uprime));
      return res;
    }
    ++res.sparse_cut_calls;
    const auto cut_res = sparsecut::nearly_most_balanced_sparse_cut(
        live, schedule.phi[static_cast<std::size_t>(level)], prm.preset,
        item.rng, lg, diameter, prm.thorough_partition);
    if (!cut_res.found()) {
      res.finals.push_back(std::move(uprime));
      return res;
    }

    const std::uint64_t vol_c = volume(live, cut_res.cut);
    const double m_level = m1 / std::pow(tau, level - 1);
    if (static_cast<double>(vol_c) <= m_level / (2.0 * tau)) {
      ++level;
      level_iterations = 0;
      if (level > prm.k) {
        // Impossible with the paper identity m_k/(2τ) = 1/2 < Vol(C);
        // practical guard only.
        res.finals.push_back(std::move(uprime));
        return res;
      }
      continue;
    }

    if (++level_iterations > level_budget) {
      res.finals.push_back(std::move(uprime));  // practical guard
      return res;
    }
    if (static_cast<double>(ripped_volume + vol_c) > m1) {
      res.finals.push_back(std::move(uprime));  // Lemma 2 hard stop
      return res;
    }
    ripped_volume += vol_c;

    // Remove-3: every edge incident to C goes; C's vertices become
    // singleton components.  Collect first, then rip: the view reads the
    // overlay lazily, so mutating it mid-iteration would change what
    // "live" means for the slots not yet visited.
    const auto in_cut = cut_res.cut.bitmap(g->num_vertices());
    std::vector<EdgeId> to_rip;
    live.for_each_live_edge([&](EdgeId ambient, VertexId x, VertexId y) {
      if (in_cut[x] || in_cut[y]) to_rip.push_back(ambient);
    });
    for (const EdgeId ambient : to_rip) rip(ambient);
    std::vector<VertexId> rest;
    for (const VertexId pv : live.vertices()) {
      if (in_cut[pv]) {
        ++res.singletons;
        res.finals.push_back({pv});
      } else {
        rest.push_back(pv);
      }
    }
    uprime = std::move(rest);
  }
}

}  // namespace

namespace detail {

void assemble_components(const Graph& g, const std::vector<char>& removed,
                         const std::vector<std::vector<VertexId>>& finals,
                         DecompositionResult& out) {
  // Assemble component ids; every vertex must appear exactly once.
  out.component.assign(g.num_vertices(), static_cast<std::uint32_t>(-1));
  std::uint32_t next_id = 0;
  for (const auto& ids : finals) {
    // A final part can still be disconnected (e.g. the depth guard); split
    // it so components are genuinely connected in the remaining graph --
    // on the view overlay, where removed edges read as loops and are never
    // traversed.
    const GraphView live(g, &removed, VertexSet(ids));
    auto [comp, count] = connected_components(live);
    std::vector<std::uint32_t> local_to_global(count,
                                               static_cast<std::uint32_t>(-1));
    for (const VertexId pv : live.vertices()) {
      auto& slot = local_to_global[comp[pv]];
      if (slot == static_cast<std::uint32_t>(-1)) slot = next_id++;
      XD_CHECK_MSG(out.component[pv] == static_cast<std::uint32_t>(-1),
                   "vertex " << pv << " assigned twice");
      out.component[pv] = slot;
    }
    if (live.num_active() == 0 && !ids.empty()) {
      // Degenerate: isolated final ids (an empty active set cannot happen
      // for non-empty ids, but keep the invariant airtight).
      for (VertexId pv : ids) out.component[pv] = next_id++;
    }
  }
  out.num_components = next_id;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    XD_CHECK_MSG(out.component[v] != static_cast<std::uint32_t>(-1),
                 "vertex " << v << " missing from the decomposition");
  }
}

}  // namespace detail

DecompositionResult expander_decomposition(const Graph& g,
                                           const DecompositionParams& prm,
                                           Rng& rng,
                                           congest::RoundLedger& ledger) {
  XD_CHECK(g.num_vertices() >= 2);
  if (prm.backend == DecompositionBackend::kSimpleParallel) {
    return detail::simple_parallel_decomposition(g, prm, rng, ledger);
  }
  DecompositionResult out;
  out.schedule = derive_schedule(prm, g.num_vertices(),
                                 std::max<std::size_t>(g.num_edges(), 1),
                                 std::max<std::uint64_t>(g.volume(), 1));
  out.removed_edge.assign(g.num_edges(), 0);

  const std::uint64_t rounds_before = ledger.rounds();

  Driver driver;
  driver.g = &g;
  driver.prm = prm;
  driver.schedule = out.schedule;
  driver.ledger = &ledger;
  driver.removed.assign(g.num_edges(), 0);
  driver.out = &out;

  // Isolated vertices are their own components; everything else enters
  // Phase 1 as one part (the LDD splits disconnected inputs for free).
  std::vector<VertexId> start;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) == 0) {
      driver.finals.push_back({v});
    } else {
      start.push_back(v);
    }
  }
  // One draw seeds the driver's item streams, so back-to-back calls on the
  // same caller Rng (e.g. the triangle recursion's levels) diverge.
  const Rng top_rng(rng());
  if (!start.empty()) driver.run(std::move(start), top_rng);

  out.removed_edge = driver.removed;
  out.rounds = ledger.rounds() - rounds_before;
  out.backend = DecompositionBackend::kNibble;
  out.phi_guarantee = out.schedule.phi_final();

  detail::assemble_components(g, driver.removed, driver.finals, out);
  return out;
}

}  // namespace xd::expander

#pragma once

/// \file simple_parallel.hpp
/// The simple/parallel expander-decomposition backend, in the style of
/// Chen, Meierhans, Probst Gutenberg & Saranurak, "Parallel and Distributed
/// Expander Decomposition: Simple, Fast, and Near-Optimal"
/// (arXiv:2410.13451).  Selected via DecompositionParams::backend
/// (docs/decomposition.md); call through expander_decomposition, never
/// this function directly.
///
/// Where the nibble driver (decomposition.cpp) runs the Chang–Saranurak
/// two-phase machinery -- a φ₀..φ_k schedule, a Phase 2 level loop with
/// Remove-3 rip-outs -- this backend keeps one conductance target φ₀ and
/// three work-item kinds:
///
///   cluster   LDD the part (Remove-1 the inter-cluster edges), one
///             certify child per surviving cluster;
///   certify   one nearly-most-balanced sparse cut at φ₀.  No cut means
///             the cluster is a certified expander and becomes final.  A
///             cut is Remove-2'd: the sparse side re-clusters one level
///             deeper, and the large side is *trimmed* -- certified again
///             at the same depth, up to O(log Vol) consecutive trims
///             before it too is sent back to clustering;
///   (merge)   a driver-side εm budget guard: removals are applied at the
///             epoch barrier in item-index order, and an item whose
///             removals would push the total past ⌊ε·|E|⌋ is finalized
///             as-is instead.  That makes the Theorem 1 cut budget
///             unconditional rather than a charging-argument promise.
///
/// Items follow the exact determinism discipline of every driver in this
/// repo: vertex-disjoint work, per-item seed-split Rng streams, effects
/// deferred to an ItemResult merged at the epoch barrier in item-index
/// order -- so the partition, overlay, and counters are bit-identical at
/// every scheduler thread count, and cross-backend differential testing
/// (cross_check.hpp) can pin both drivers against the same contract.

#include "congest/ledger.hpp"
#include "expander/decomposition.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace xd::expander::detail {

/// Runs the simple-parallel backend on g, charging `ledger`.  Same output
/// contract as expander_decomposition (which dispatches here when
/// prm.backend == DecompositionBackend::kSimpleParallel).
DecompositionResult simple_parallel_decomposition(const Graph& g,
                                                  const DecompositionParams& prm,
                                                  Rng& rng,
                                                  congest::RoundLedger& ledger);

}  // namespace xd::expander::detail

#pragma once

/// \file decomposition.hpp
/// Theorem 1: the (ε, φ)-expander decomposition.
///
/// Phase 1 (recursive, depth <= d): low-diameter-decompose the current
/// part (Remove-1 its cut edges), then on each resulting component run the
/// nearly most balanced sparse cut at φ₀:
///   (a) no cut        -> the component is final (it certifies Φ >= φ₀);
///   (b) tiny cut      -> Vol(C) <= (ε/12) Vol(U): enter Phase 2, keeping
///                        the cut edges;
///   (c) balanced cut  -> Remove-2 the cut edges and recurse on both sides.
///
/// Phase 2 (level schedule L = 1..k with thresholds m_L = (ε/6)Vol(U)/τ^{L-1},
/// τ = ((ε/6)Vol(U))^{1/k}): repeatedly cut at φ_L; big cuts are ripped out
/// whole -- every incident edge removed (Remove-3), their vertices becoming
/// singleton components; small cuts bump the level.  At most 2τ iterations
/// per level, which is where the n^{2/k} in the round bound comes from.
///
/// Every removed edge leaves a self-loop at both endpoints, so degrees --
/// and therefore all volumes -- never change (the paper's invariant).

#include <cstdint>
#include <vector>

#include "congest/ledger.hpp"
#include "expander/params.hpp"
#include "graph/graph.hpp"
#include "graph/vertex_set.hpp"
#include "util/rng.hpp"

namespace xd::expander {

/// Why an edge was removed (the paper's Remove-1/2/3 tags).
enum class RemoveReason : int {
  kLdd = 0,        ///< Remove-1: LDD inter-cluster edge
  kSparseCut = 1,  ///< Remove-2: Phase 1 balanced cut edge
  kRipOut = 2,     ///< Remove-3: Phase 2 incident-edge removal
};

/// Output of the decomposition.
struct DecompositionResult {
  /// Final component id per vertex (V = V_1 ∪ ... ∪ V_x).
  std::vector<std::uint32_t> component;
  std::size_t num_components = 0;
  /// Per ambient edge: removed?  (== inter-component, plus Remove-3 edges.)
  std::vector<char> removed_edge;
  /// Removed-edge counts by reason, indexed by RemoveReason.
  std::uint64_t removed_by[3] = {0, 0, 0};
  /// Derived schedule actually used.
  Schedule schedule;
  /// Diagnostics.
  std::uint32_t max_phase1_depth = 0;
  std::uint64_t phase2_entries = 0;      ///< components that entered Phase 2
  std::uint64_t singleton_components = 0; ///< vertices ripped out by Remove-3
  std::uint64_t sparse_cut_calls = 0;
  std::uint64_t rounds = 0;
  /// Scheduler epochs executed (batches of concurrent work items); with
  /// scheduler_threads >= 1 the round total is a sum of per-epoch maxima.
  std::uint64_t epochs = 0;
  /// Backend that produced this result (mirrors prm.backend).
  DecompositionBackend backend = DecompositionBackend::kNibble;
  /// Parts finalized by a practical guard (depth, trim, or εm budget)
  /// instead of a certifying sparse-cut miss.  Only the simple-parallel
  /// backend tracks this; the nibble driver reports 0 (its guards are
  /// equally silent about quality, but its verified floor is the tiny
  /// φ_k, which guard-finalized parts still clear in practice).
  std::uint64_t guard_finalized = 0;
  /// Conductance floor this result promises to the verifier: φ_k for the
  /// nibble schedule; for simple-parallel, the Cheeger-checkable square of
  /// the certification target when no guard fired, else the φ_k floor.
  double phi_guarantee = 0.0;

  [[nodiscard]] std::uint64_t total_removed() const {
    return removed_by[0] + removed_by[1] + removed_by[2];
  }
};

/// Runs the two-phase decomposition on g, charging `ledger`.
///
/// Execution is epoch-batched: every work item (Phase 1 LDD, per-component
/// sparse cut, Phase 2 level loop) belonging to one recursion level forms a
/// batch, and prm.scheduler_threads picks how the batch runs -- sequential
/// with summed rounds (0) or concurrent on forked ledger branches joined by
/// max (>= 1; scheduler.hpp, docs/rounds.md).  Each item draws from its own
/// seed-split Rng, so the partition, removed_edge overlay, and removed_by
/// counts are bit-identical for every scheduler setting and thread count.
DecompositionResult expander_decomposition(const Graph& g,
                                           const DecompositionParams& prm,
                                           Rng& rng,
                                           congest::RoundLedger& ledger);

namespace detail {

/// Shared final assembly of both backends: splits every finalized part
/// into its connected components on the removed-edge overlay (a final
/// part can be disconnected via the practical guards), assigns dense ids
/// in finals order, and checks the partition covers V exactly once.
void assemble_components(const Graph& g, const std::vector<char>& removed,
                         const std::vector<std::vector<VertexId>>& finals,
                         DecompositionResult& out);

}  // namespace detail

}  // namespace xd::expander

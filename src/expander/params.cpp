#include "expander/params.hpp"

#include <algorithm>
#include <cmath>

#include "sparsecut/partition.hpp"
#include "util/check.hpp"

namespace xd::expander {

DecompositionBackend parse_decomposition_backend(const std::string& name) {
  if (name == "nibble") return DecompositionBackend::kNibble;
  if (name == "simple-parallel") return DecompositionBackend::kSimpleParallel;
  XD_CHECK_MSG(false, "unknown decomposition backend '"
                          << name << "' (want nibble | simple-parallel)");
  return DecompositionBackend::kNibble;
}

const char* to_string(DecompositionBackend backend) {
  switch (backend) {
    case DecompositionBackend::kNibble:
      return "nibble";
    case DecompositionBackend::kSimpleParallel:
      return "simple-parallel";
  }
  XD_CHECK_MSG(false, "decomposition backend out of range: "
                          << static_cast<int>(backend));
  return "nibble";
}

double h_of(double theta, std::size_t m, std::uint64_t vol, Preset preset) {
  XD_CHECK(theta > 0);
  // Single source of truth: Theorem 3's contract as implemented (and, in
  // practical mode, enforced) by the sparsecut module.
  return sparsecut::theorem3_conductance_bound(theta, m, vol, preset);
}

double h_inverse(double theta, std::size_t m, std::uint64_t vol, Preset preset) {
  XD_CHECK(theta > 0);
  if (preset == Preset::kPaper) {
    // Invert h(x) = c * x^{1/3} with c = bound(x)/x^{1/3} (c is
    // θ-independent in paper mode apart from the 1/12 clamp, which never
    // binds on the inverse path for θ < h(1/12)).
    const double c =
        sparsecut::theorem3_conductance_bound(1e-30, m, vol, Preset::kPaper) /
        std::cbrt(1e-30);
    const double x = theta / c;
    return x * x * x;
  }
  return theta / 6.0;
}

Schedule derive_schedule(const DecompositionParams& prm, std::size_t n,
                         std::size_t m, std::uint64_t vol) {
  XD_CHECK(prm.epsilon > 0 && prm.epsilon < 1);
  XD_CHECK(prm.k >= 1);
  XD_CHECK(n >= 2 && m >= 1);

  Schedule s;
  // d: smallest integer with (1 - ε/12)^d · 2·C(n,2) < 1 (paper); the
  // practical preset uses the depth balanced splitting actually reaches
  // (O(log n); the driver's depth guard finalizes any excess), which keeps
  // β -- and with it the LDD epoch count -- at bench-executable scale.
  const double nn = static_cast<double>(n);
  const double pairs2 = nn * (nn - 1.0);  // 2·C(n,2)
  const double shrink = -std::log1p(-prm.epsilon / 12.0);
  const double d_paper = std::max(1.0, std::ceil(std::log(pairs2) / shrink));
  const double d_practical = std::ceil(3.0 * std::log(nn)) + 5.0;
  s.d = static_cast<std::uint32_t>(
      prm.preset == Preset::kPaper ? d_paper : std::min(d_paper, d_practical));

  s.beta = (prm.epsilon / 3.0) / static_cast<double>(s.d);

  // φ₀ from the Remove-2 budget: h(φ₀) <= ε / (6 log₂(n²)).
  const double log2_n2 = 2.0 * std::log2(nn);
  const double target0 = prm.epsilon / (6.0 * log2_n2);
  double phi0 = h_inverse(target0, m, vol, prm.preset);
  if (prm.preset == Preset::kPractical) {
    phi0 = std::max(phi0, prm.phi_floor);
  }
  if (prm.phi0_override > 0.0) phi0 = prm.phi0_override;
  s.phi.push_back(phi0);
  for (int i = 1; i <= prm.k; ++i) {
    double next = h_inverse(s.phi.back(), m, vol, prm.preset);
    if (prm.preset == Preset::kPractical) {
      next = std::max(next, prm.phi_floor * std::pow(0.25, i));
    }
    XD_CHECK_MSG(next > 0, "phi schedule underflowed at level " << i);
    s.phi.push_back(next);
  }
  return s;
}

}  // namespace xd::expander

#include "expander/verify.hpp"

#include <algorithm>
#include <limits>

#include "graph/graph_view.hpp"
#include "graph/metrics.hpp"
#include "graph/subgraph.hpp"
#include "spectral/fiedler.hpp"
#include "spectral/mixing.hpp"
#include "util/check.hpp"

namespace xd::expander {

VerificationReport verify_decomposition(const Graph& g,
                                        const DecompositionResult& result,
                                        double epsilon, double phi) {
  VerificationReport report;
  const std::size_t n = g.num_vertices();
  XD_CHECK(result.component.size() == n);

  // (1) Partition validity.
  report.is_partition = true;
  for (VertexId v = 0; v < n; ++v) {
    if (result.component[v] >= result.num_components) {
      report.is_partition = false;
    }
  }

  // (2) Inter-component edges.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.edge(e);
    if (u == v) continue;
    if (result.component[u] != result.component[v]) {
      ++report.inter_component_edges;
    } else if (result.removed_edge[e]) {
      ++report.internal_removed_edges;
    }
  }
  report.cut_fraction = g.num_edges() == 0
                            ? 0.0
                            : static_cast<double>(report.inter_component_edges) /
                                  static_cast<double>(g.num_edges());
  report.cut_within_epsilon = report.cut_fraction <= epsilon + 1e-12;

  // Labels outside [0, num_components) make the per-component analysis
  // below meaningless (and would index out of range); report the broken
  // partition and stop here.
  if (!report.is_partition) return report;

  // (3) Component conductance Φ(G{V_i}) on the live view (removed edges as
  // loops -- the graph the final sparse-cut call certified).
  std::vector<std::vector<VertexId>> members(result.num_components);
  for (VertexId v = 0; v < n; ++v) {
    members[result.component[v]].push_back(v);
  }
  report.min_conductance_lower = std::numeric_limits<double>::infinity();
  for (std::uint32_t c = 0; c < result.num_components; ++c) {
    ComponentQuality q;
    q.id = c;
    q.size = members[c].size();
    const VertexSet ids(std::vector<VertexId>(members[c]));
    q.volume = volume(g, ids);

    // The live G{V_i} is a zero-copy view first: the vacuous cases are
    // decided from its counting scan alone, and only components that need
    // dense spectral math (or the exhaustive oracle) get materialized.
    const GraphView view(g, &result.removed_edge, ids);
    if (q.size <= 1 || view.num_nonloop_edges() == 0) {
      // Singletons (and edgeless parts) expand vacuously.
      q.conductance_lower = std::numeric_limits<double>::infinity();
      q.conductance_upper = std::numeric_limits<double>::infinity();
      q.exact = true;
    } else if (q.size <= 14) {
      const LiveSubgraph live = view.materialize();
      q.conductance_lower = conductance_exact(live.graph);
      q.conductance_upper = q.conductance_lower;
      q.exact = true;
    } else {
      const LiveSubgraph live = view.materialize();
      const double lambda2 = spectral::lazy_second_eigenvalue(live.graph);
      q.conductance_lower = std::max(0.0, 1.0 - lambda2);
      const auto sweep = spectral::fiedler_sweep(live.graph);
      q.conductance_upper = sweep ? sweep->conductance
                                  : std::numeric_limits<double>::infinity();
      q.exact = false;
    }
    report.min_conductance_lower =
        std::min(report.min_conductance_lower, q.conductance_lower);
    report.components.push_back(q);
  }
  report.conductance_meets_phi = report.min_conductance_lower >= phi - 1e-12;
  return report;
}

}  // namespace xd::expander

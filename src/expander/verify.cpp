#include "expander/verify.hpp"

#include <algorithm>
#include <limits>

#include "graph/metrics.hpp"
#include "spectral/fiedler.hpp"
#include "spectral/mixing.hpp"
#include "util/check.hpp"

namespace xd::expander {

VerificationReport verify_decomposition(const Graph& g,
                                        const DecompositionResult& result,
                                        double epsilon, double phi) {
  VerificationReport report;
  const std::size_t n = g.num_vertices();
  XD_CHECK(result.component.size() == n);

  // (1) Partition validity.
  report.is_partition = true;
  for (VertexId v = 0; v < n; ++v) {
    if (result.component[v] >= result.num_components) {
      report.is_partition = false;
    }
  }

  // (2) Inter-component edges.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.edge(e);
    if (u == v) continue;
    if (result.component[u] != result.component[v]) {
      ++report.inter_component_edges;
    } else if (result.removed_edge[e]) {
      ++report.internal_removed_edges;
    }
  }
  report.cut_fraction = g.num_edges() == 0
                            ? 0.0
                            : static_cast<double>(report.inter_component_edges) /
                                  static_cast<double>(g.num_edges());
  report.cut_within_epsilon = report.cut_fraction <= epsilon + 1e-12;

  // Labels outside [0, num_components) make the per-component analysis
  // below meaningless (and would index out of range); report the broken
  // partition and stop here.
  if (!report.is_partition) return report;

  // (3) Component conductance Φ(G{V_i}) on the live view (removed edges as
  // loops -- the graph the final sparse-cut call certified).
  //
  // The per-component work used to route through one GraphView each, whose
  // constructor and materialize() both touch O(n) state (the full mask and
  // from_parent arrays) -- O(n · #components) total, quadratic on
  // decompositions that shatter the graph.  Instead: one O(n + m) pass
  // decides the vacuous cases and assigns local ranks, and one global
  // adjacency sweep feeds per-component GraphBuilders in exactly the slot
  // order materialize() would use (ambient loops in place, live w > v
  // edges in slot order, substitution loops appended), so the oracle
  // inputs stay bit-identical to the old per-view path.
  const std::uint32_t num_comps = static_cast<std::uint32_t>(
      result.num_components);
  std::vector<ComponentQuality> quality(num_comps);
  std::vector<std::uint32_t> local_rank(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    ComponentQuality& q = quality[result.component[v]];
    local_rank[v] = static_cast<std::uint32_t>(q.size++);
    q.volume += g.degree(v);
  }
  std::vector<std::uint64_t> live_internal(num_comps, 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.edge(e);
    if (u == v || result.removed_edge[e]) continue;
    if (result.component[u] == result.component[v]) {
      ++live_internal[result.component[u]];
    }
  }

  // Builders only for components that need an oracle; everything else is
  // vacuous straight from the counts.
  std::vector<std::uint32_t> builder_of(num_comps,
                                        static_cast<std::uint32_t>(-1));
  std::vector<GraphBuilder> builders;
  for (std::uint32_t c = 0; c < num_comps; ++c) {
    quality[c].id = c;
    if (quality[c].size > 1 && live_internal[c] > 0) {
      builder_of[c] = static_cast<std::uint32_t>(builders.size());
      builders.emplace_back(quality[c].size, /*allow_parallel=*/true);
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    const std::uint32_t c = result.component[v];
    const std::uint32_t b = builder_of[c];
    if (b == static_cast<std::uint32_t>(-1)) continue;
    const VertexId nv = local_rank[v];
    const auto nbrs = g.neighbors(v);
    const auto eids = g.incident_edges(v);
    std::uint32_t loops = 0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId w = nbrs[i];
      if (w == v) {
        builders[b].add_edge(nv, nv);
      } else if (result.removed_edge[eids[i]] || result.component[w] != c) {
        ++loops;  // removed or boundary edge -> substitution loop
      } else if (w > v) {
        builders[b].add_edge(nv, local_rank[w]);
      }
    }
    builders[b].add_loops(nv, loops);
  }

  report.min_conductance_lower = std::numeric_limits<double>::infinity();
  for (std::uint32_t c = 0; c < num_comps; ++c) {
    ComponentQuality& q = quality[c];
    if (builder_of[c] == static_cast<std::uint32_t>(-1)) {
      // Singletons (and edgeless parts) expand vacuously.
      q.conductance_lower = std::numeric_limits<double>::infinity();
      q.conductance_upper = std::numeric_limits<double>::infinity();
      q.exact = true;
    } else {
      const Graph live = builders[builder_of[c]].build();
      if (q.size <= 14) {
        q.conductance_lower = conductance_exact(live);
        q.conductance_upper = q.conductance_lower;
        q.exact = true;
      } else {
        const double lambda2 = spectral::lazy_second_eigenvalue(live);
        q.conductance_lower = std::max(0.0, 1.0 - lambda2);
        const auto sweep = spectral::fiedler_sweep(live);
        q.conductance_upper = sweep ? sweep->conductance
                                    : std::numeric_limits<double>::infinity();
        q.exact = false;
      }
    }
    report.min_conductance_lower =
        std::min(report.min_conductance_lower, q.conductance_lower);
  }
  report.components = std::move(quality);
  report.conductance_meets_phi = report.min_conductance_lower >= phi - 1e-12;
  return report;
}

}  // namespace xd::expander

#pragma once

/// \file cross_check.hpp
/// Cross-backend differential validation of Theorem 1 (docs/decomposition.md).
///
/// Two independent drivers now produce (ε, φ)-expander decompositions: the
/// Chang–Saranurak nibble driver and the CMPS-style simple-parallel driver
/// (simple_parallel.hpp).  Pinned constants catch regressions in one
/// implementation; running both over one corpus and holding each to the
/// contract the paper actually states catches *agreement bugs* -- a guard
/// that silently eats quality, a charging argument that stopped closing, a
/// scheduler merge that is only deterministic on one code path.  Per
/// backend the harness checks:
///
///   * the verify.cpp oracles pass: valid partition, inter-component edges
///     <= ε|E|, every component's conductance lower bound >= the backend's
///     own phi_guarantee;
///   * outputs are bit-identical at 1/2/8 scheduler threads (same
///     partition, overlay, removal counts as the sequential run);
///   * scheduled rounds never exceed the sequential sum, and the
///     sequential sum stays under the charged Õ(n+m) budget.
///
/// bench_expander's E10 section reuses these observations for the
/// head-to-head quality/rounds/wall-clock table.

#include <cstdint>
#include <string>
#include <vector>

#include "congest/ledger.hpp"
#include "expander/decomposition.hpp"
#include "expander/verify.hpp"
#include "graph/graph.hpp"

namespace xd::expander {

/// Charged-round ceiling the harness holds one sequential decomposition
/// to: 32 · (n + m) · (⌈log₂ n⌉ + 1)³.  Theorem 1 promises Õ(n + m)
/// rounds; the constant is generous (measured corpus runs sit 5–15x
/// below) so the bound trips on asymptotic regressions -- a level loop
/// that stopped terminating, a sparse-cut stack gone quadratic -- not on
/// noise.
std::uint64_t theorem1_round_budget(std::size_t n, std::size_t m);

/// Order-sensitive fingerprint of everything the determinism contract
/// pins: component labels, the removed-edge overlay, per-reason removal
/// counts, and the component count.  Golden tests pin this per backend.
std::uint64_t partition_fingerprint(const DecompositionResult& result);

/// One backend's observed behaviour on one graph.
struct BackendObservation {
  DecompositionBackend backend = DecompositionBackend::kNibble;
  DecompositionResult result;   ///< the sequential (threads = 0) run
  VerificationReport report;    ///< verified against result.phi_guarantee
  std::uint64_t fingerprint = 0;
  std::uint64_t scheduled_rounds = 0;  ///< rounds at scheduler_threads = 2
  std::uint64_t round_budget = 0;
  /// Contract violations, human-readable; empty means the backend held
  /// the Theorem 1 contract on this graph.
  std::vector<std::string> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
};

/// Runs `prm.backend` on g -- sequentially first, then at 1/2/8 scheduler
/// threads -- and records every contract violation.  `seed` feeds the
/// caller-level Rng, so equal seeds make runs comparable across backends.
BackendObservation observe_backend(const Graph& g, DecompositionParams prm,
                                   std::uint64_t seed);

/// Both backends on one graph under one parameter set.
struct CrossCheckReport {
  BackendObservation nibble;
  BackendObservation simple_parallel;

  [[nodiscard]] bool ok() const {
    return nibble.ok() && simple_parallel.ok();
  }
  /// All violations, each prefixed with its backend name (empty iff ok()).
  [[nodiscard]] std::string summary() const;
};

/// Runs the full differential check: base params with backend overridden
/// to each driver in turn, same seed.
CrossCheckReport cross_check_backends(const Graph& g,
                                      const DecompositionParams& base,
                                      std::uint64_t seed);

}  // namespace xd::expander

#pragma once

/// \file params.hpp
/// The parameter schedule of the expander decomposition (paper, §2).
///
///   h(θ)        conductance degradation of the nearly most balanced sparse
///               cut: a non-empty output at target θ has Φ <= h(θ);
///               h(θ) = Θ(θ^{1/3} log^{5/3} n), h⁻¹(θ) = Θ(θ³ / log⁵ n).
///   d           recursion depth bound of Phase 1: smallest integer with
///               (1 - ε/12)^d · 2·C(n,2) < 1, i.e. O((1/ε) log n).
///   β           LDD cut knob: (ε/3)/d = O(ε²/log n).
///   φ₀          chosen so h(φ₀) <= ε / (6 log₂(n²)) -- makes the Remove-2
///               charging argument close.
///   φ_i         = h⁻¹(φ_{i-1}), i = 1..k; the final guarantee is φ = φ_k
///               = (ε/log n)^{2^{O(k)}}.

#include <cstdint>
#include <string>
#include <vector>

#include "sparsecut/nibble_params.hpp"

namespace xd::expander {

using sparsecut::Preset;

/// Which Theorem 1 driver runs (docs/decomposition.md).
enum class DecompositionBackend : int {
  /// The Chang–Saranurak two-phase nibble driver (arXiv:1904.08037):
  /// Phase 1 LDD + nearly-most-balanced sparse cut recursion, Phase 2
  /// level schedule with Remove-3 rip-outs.  The default.
  kNibble = 0,
  /// The simple/parallel driver in the Chen–Meierhans–Probst Gutenberg–
  /// Saranurak style (arXiv:2410.13451): cluster → certify → trim at one
  /// conductance target, no level schedule.  Fewer moving parts, an
  /// unconditional εm cut budget, and typically far fewer charged rounds.
  kSimpleParallel = 1,
};

/// Parses a backend selector string ("nibble" | "simple-parallel");
/// throws a typed CheckError on anything else.
DecompositionBackend parse_decomposition_backend(const std::string& name);

/// Inverse of parse_decomposition_backend (also accepts the int-cast
/// round trip from XDA1 META; throws CheckError on out-of-range values).
const char* to_string(DecompositionBackend backend);

/// Inputs of Theorem 1.
struct DecompositionParams {
  double epsilon = 0.3;  ///< inter-component edge budget (fraction of |E|)
  int k = 2;             ///< level count; rounds scale as n^{2/k}
  Preset preset = Preset::kPractical;
  double ldd_K = 2.0;    ///< V_D/V_S guard constant
  /// Practical floor for the φ_i schedule (the literal h⁻¹ iterate
  /// collapses to denormals within a few levels; paper mode uses 0).
  double phi_floor = 1e-7;
  /// Persistence of the sparse-cut calls: true approximates the paper's
  /// iteration count (needed to reliably find tiny-balance cuts, i.e. to
  /// reach Phase 2); false is the fast practical default.
  bool thorough_partition = false;
  /// When > 0, overrides the derived φ₀.  The derived value is tuned so
  /// the Remove-2 charging argument closes; for clustering-style usage
  /// where splitting aggressiveness matters more than the worst-case edge
  /// budget, set this to the conductance scale you want separated.
  double phi0_override = 0.0;
  /// Concurrent component scheduler (scheduler.hpp).  0 = sequential
  /// driver: components run one after another and their rounds SUM (the
  /// classic accounting).  >= 1 = epoch scheduler with that many host
  /// threads: each recursion level's components run concurrently on forked
  /// ledger branches joined by MAX (the model the paper's round bounds
  /// assume; docs/rounds.md).  Outputs are bit-identical across all
  /// settings; only round totals and wall-clock change.
  int scheduler_threads = 0;
  /// Which driver runs.  Both backends share the schedule derivation, the
  /// GraphView overlay, the epoch scheduler, and the verify contract; they
  /// differ in how they reach it (docs/decomposition.md).
  DecompositionBackend backend = DecompositionBackend::kNibble;
};

/// Fully-derived schedule.
struct Schedule {
  std::uint32_t d = 1;       ///< Phase 1 recursion depth bound
  double beta = 0.1;         ///< LDD parameter
  std::vector<double> phi;   ///< φ₀ ... φ_k (size k+1)

  [[nodiscard]] double phi_final() const { return phi.back(); }
};

/// h(θ): the conductance reached by Theorem 3 when targeting θ, on a graph
/// with m edges and total volume vol.
double h_of(double theta, std::size_t m, std::uint64_t vol, Preset preset);

/// h⁻¹(θ): the target to hand Theorem 3 so its output conductance is <= θ.
double h_inverse(double theta, std::size_t m, std::uint64_t vol, Preset preset);

/// Derives the full schedule for a graph with n vertices, m edges, volume
/// vol.
Schedule derive_schedule(const DecompositionParams& prm, std::size_t n,
                         std::size_t m, std::uint64_t vol);

}  // namespace xd::expander

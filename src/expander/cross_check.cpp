#include "expander/cross_check.hpp"

#include <cmath>
#include <sstream>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace xd::expander {

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

/// The determinism contract compares the full output, not a digest: a
/// digest collision may be astronomically unlikely, but a direct compare
/// is just as cheap and names no failure mode at all.
bool outputs_identical(const DecompositionResult& a,
                       const DecompositionResult& b) {
  return a.component == b.component && a.num_components == b.num_components &&
         a.removed_edge == b.removed_edge &&
         a.removed_by[0] == b.removed_by[0] &&
         a.removed_by[1] == b.removed_by[1] &&
         a.removed_by[2] == b.removed_by[2] &&
         a.guard_finalized == b.guard_finalized &&
         a.sparse_cut_calls == b.sparse_cut_calls;
}

DecompositionResult run_once(const Graph& g, DecompositionParams prm,
                             std::uint64_t seed, int threads,
                             std::uint64_t* rounds_out = nullptr) {
  prm.scheduler_threads = threads;
  Rng rng(seed);
  congest::RoundLedger ledger;
  DecompositionResult res = expander_decomposition(g, prm, rng, ledger);
  if (rounds_out != nullptr) *rounds_out = ledger.rounds();
  return res;
}

}  // namespace

std::uint64_t theorem1_round_budget(std::size_t n, std::size_t m) {
  XD_CHECK(n >= 2);
  std::uint64_t log2n = 0;
  while ((std::uint64_t{1} << log2n) < n) ++log2n;
  const std::uint64_t polylog = (log2n + 1) * (log2n + 1) * (log2n + 1);
  return 32 * static_cast<std::uint64_t>(n + m) * polylog;
}

std::uint64_t partition_fingerprint(const DecompositionResult& result) {
  std::uint64_t h = 0;
  h = mix(h, result.num_components);
  for (const std::uint32_t c : result.component) h = mix(h, c);
  for (const char r : result.removed_edge) {
    h = mix(h, static_cast<std::uint64_t>(r != 0));
  }
  for (const std::uint64_t r : result.removed_by) h = mix(h, r);
  return h;
}

BackendObservation observe_backend(const Graph& g, DecompositionParams prm,
                                   std::uint64_t seed) {
  BackendObservation obs;
  obs.backend = prm.backend;
  const char* name = to_string(prm.backend);

  std::uint64_t seq_rounds = 0;
  obs.result = run_once(g, prm, seed, /*threads=*/0, &seq_rounds);
  obs.fingerprint = partition_fingerprint(obs.result);
  obs.round_budget = theorem1_round_budget(g.num_vertices(), g.num_edges());

  const auto fail = [&](const std::string& what) {
    obs.violations.push_back(std::string(name) + ": " + what);
  };

  // (1) The verify.cpp oracles, against the backend's own promised floor.
  obs.report =
      verify_decomposition(g, obs.result, prm.epsilon, obs.result.phi_guarantee);
  if (!obs.report.is_partition) fail("components do not partition V");
  if (!obs.report.cut_within_epsilon) {
    std::ostringstream msg;
    msg << "cut fraction " << obs.report.cut_fraction << " exceeds epsilon "
        << prm.epsilon;
    fail(msg.str());
  }
  if (!obs.report.conductance_meets_phi) {
    std::ostringstream msg;
    msg << "min conductance lower bound " << obs.report.min_conductance_lower
        << " below promised phi " << obs.result.phi_guarantee;
    fail(msg.str());
  }

  // (2) Charged budget on the sequential (summing) accounting.
  if (seq_rounds > obs.round_budget) {
    std::ostringstream msg;
    msg << "sequential rounds " << seq_rounds << " exceed the charged budget "
        << obs.round_budget;
    fail(msg.str());
  }

  // (3) Bit-identical outputs at every scheduler thread count, and the
  // epoch-max accounting never charges more than the sequential sum.
  for (const int threads : {1, 2, 8}) {
    std::uint64_t rounds = 0;
    const DecompositionResult forked = run_once(g, prm, seed, threads, &rounds);
    if (threads == 2) obs.scheduled_rounds = rounds;
    if (!outputs_identical(obs.result, forked)) {
      std::ostringstream msg;
      msg << "output at scheduler_threads=" << threads
          << " diverges from the sequential run";
      fail(msg.str());
    }
    if (rounds > seq_rounds) {
      std::ostringstream msg;
      msg << "scheduled rounds " << rounds << " at threads=" << threads
          << " exceed the sequential sum " << seq_rounds;
      fail(msg.str());
    }
  }
  return obs;
}

std::string CrossCheckReport::summary() const {
  std::string all;
  for (const auto* obs : {&nibble, &simple_parallel}) {
    for (const std::string& v : obs->violations) {
      if (!all.empty()) all += "; ";
      all += v;
    }
  }
  return all;
}

CrossCheckReport cross_check_backends(const Graph& g,
                                      const DecompositionParams& base,
                                      std::uint64_t seed) {
  CrossCheckReport report;
  DecompositionParams prm = base;
  prm.backend = DecompositionBackend::kNibble;
  report.nibble = observe_backend(g, prm, seed);
  prm.backend = DecompositionBackend::kSimpleParallel;
  report.simple_parallel = observe_backend(g, prm, seed);
  return report;
}

}  // namespace xd::expander

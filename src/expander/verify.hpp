#pragma once

/// \file verify.hpp
/// Certificate checking for an (ε, φ)-expander decomposition:
///   (1) the components partition V;
///   (2) inter-component edges number at most ε |E|;
///   (3) every component satisfies Φ(G{V_i}) >= φ.
///
/// (3) asks for a conductance *lower* bound, which is NP-hard exactly; the
/// verifier uses exhaustive enumeration for tiny components and the Cheeger
/// bound Φ >= 1 - λ₂(lazy walk) otherwise (the lazy walk of G{V_i} with its
/// substitution loops -- laziness from loops is accounted automatically).

#include <cstdint>
#include <vector>

#include "expander/decomposition.hpp"
#include "graph/graph.hpp"

namespace xd::expander {

/// Per-component quality observation.
struct ComponentQuality {
  std::uint32_t id = 0;
  std::size_t size = 0;
  std::uint64_t volume = 0;         ///< ambient volume
  double conductance_lower = 0.0;   ///< certified lower bound on Φ(G{V_i})
  double conductance_upper = 0.0;   ///< witnessed cut (∞ if none found)
  bool exact = false;               ///< lower bound exhaustive?
};

/// Full verification report.
struct VerificationReport {
  bool is_partition = false;
  std::uint64_t inter_component_edges = 0;
  double cut_fraction = 0.0;        ///< inter-component edges / |E|
  bool cut_within_epsilon = false;
  double min_conductance_lower = 0.0;
  bool conductance_meets_phi = false;
  /// Removed edges whose endpoints ended up in the same final component
  /// (0 in normal operation; non-zero only via practical-mode guards).
  std::uint64_t internal_removed_edges = 0;
  std::vector<ComponentQuality> components;

  [[nodiscard]] bool ok() const {
    return is_partition && cut_within_epsilon && conductance_meets_phi;
  }
};

/// Verifies `result` as an (epsilon, phi)-decomposition of g.
VerificationReport verify_decomposition(const Graph& g,
                                        const DecompositionResult& result,
                                        double epsilon, double phi);

}  // namespace xd::expander

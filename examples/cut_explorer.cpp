// Cut explorer: run the nearly most balanced sparse cut (Theorem 3) on a
// graph with a planted cut of tunable conductance and balance, and compare
// what the Nibble stack finds against the plant and against the exact
// spectral reference.
//
//   $ ./cut_explorer [n1] [n2] [bridges] [phi] [seed]

#include <cstdlib>
#include <iostream>

#include "core/xd.hpp"

int main(int argc, char** argv) {
  using namespace xd;
  const std::size_t n1 = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 80;
  const std::size_t n2 = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 40;
  const std::size_t bridges = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2;
  const double phi = argc > 4 ? std::atof(argv[4]) : 0.02;
  const std::uint64_t seed = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 5;

  Rng rng(seed);
  const Graph g = gen::dumbbell_expanders(n1, n2, 4, bridges, rng);

  // The plant.
  std::vector<VertexId> left;
  for (VertexId v = 0; v < n1; ++v) left.push_back(v);
  const VertexSet planted(std::move(left));
  std::cout << "planted cut: conductance=" << conductance(g, planted)
            << " balance=" << balance(g, planted) << "\n";

  // Theorem 3.
  congest::RoundLedger ledger;
  const auto found = sparsecut::nearly_most_balanced_sparse_cut(
      g, phi, sparsecut::Preset::kPractical, rng, ledger);
  if (found.found()) {
    std::cout << "nibble stack: conductance=" << found.conductance
              << " balance=" << found.balance << " (target phi=" << phi
              << ", " << found.rounds << " rounds, " << found.iterations
              << " ParallelNibble iterations)\n";
  } else {
    std::cout << "nibble stack: no cut at phi=" << phi
              << " (graph certified as an expander at that scale)\n";
  }

  // Spectral reference.
  if (const auto spectral_cut = spectral::fiedler_sweep(g)) {
    std::cout << "fiedler sweep: conductance=" << spectral_cut->conductance
              << " balance=" << balance(g, spectral_cut->cut) << "\n";
  }

  std::cout << "\nround breakdown:\n" << ledger.report();
  return 0;
}

// Quickstart: build a graph, run the (ε, φ)-expander decomposition, verify
// it, and enumerate its triangles -- the library's three headline calls in
// thirty lines of user code.
//
//   $ ./quickstart [n] [seed]

#include <cstdlib>
#include <iostream>

#include "core/xd.hpp"

int main(int argc, char** argv) {
  using namespace xd;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  // A graph with planted structure: two communities bridged by a few edges.
  Rng rng(seed);
  const Graph g = gen::dumbbell_expanders(n / 2, n / 2, 4, 3, rng);
  std::cout << "graph: n=" << g.num_vertices() << " m=" << g.num_edges()
            << " vol=" << g.volume() << "\n";

  // --- Theorem 1: expander decomposition. ---
  expander::DecompositionParams prm;
  prm.epsilon = 0.25;        // inter-component edge budget
  prm.k = 2;                 // rounds scale as n^{2/k}
  prm.phi0_override = 0.02;  // separate anything sparser than this
  congest::RoundLedger ledger;
  const auto decomp = expander::expander_decomposition(g, prm, rng, ledger);
  std::cout << "decomposition: " << decomp.num_components << " components, "
            << decomp.total_removed() << "/" << g.num_edges()
            << " edges removed, " << decomp.rounds << " simulated rounds\n";

  // --- Verify the (ε, φ) certificate. ---
  const auto report = expander::verify_decomposition(
      g, decomp, prm.epsilon, decomp.schedule.phi_final());
  std::cout << "verify: partition=" << report.is_partition
            << " cut_fraction=" << report.cut_fraction
            << " min_component_conductance>=" << report.min_conductance_lower
            << (report.ok() ? "  [OK]" : "  [FAILED]") << "\n";

  // --- Theorem 2: triangle enumeration in CONGEST. ---
  congest::RoundLedger tri_ledger;
  triangle::EnumParams tprm;
  const auto tris = triangle::enumerate_congest(g, tprm, rng, tri_ledger);
  std::cout << "triangles: " << tris.triangles.size() << " found in "
            << tris.rounds << " simulated rounds ("
            << triangle_count_exact(g) << " exist)\n";

  return report.ok() &&
                 tris.triangles.size() == triangle_count_exact(g)
             ? 0
             : 1;
}

// The build-once serving lifecycle end to end (docs/serving.md): generate
// a graph, write it as an XDG1 binary edge list, load it back the way a
// deployment would, prepare the artifact (decomposition + hierarchy +
// triangle plane), save/reload it as XDA1, and serve a mixed query batch
// from several clients with per-client round accounting.
//
//   $ ./serve_quickstart [n] [seed]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/xd.hpp"

int main(int argc, char** argv) {
  using namespace xd;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 400;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 17;

  // A graph arrives as an XDG1 file in production; round-trip through one.
  Rng grng(31);
  const Graph generated = gen::gnp(n, 12.0 / static_cast<double>(n), grng);
  const std::string xdg = "serve_quickstart.xdg";
  write_binary_edge_list_file(generated, xdg);
  const Graph g = read_binary_edge_list_file(xdg).graph;
  std::cout << "graph: n=" << g.num_vertices() << " m=" << g.num_edges()
            << " (via " << xdg << ")\n";

  // Prepare once: every query below is answered from this artifact.
  serve::PrepareParams pp;
  pp.seed = seed;
  const auto built = serve::prepare_artifact(g, pp);
  std::cout << "prepared: " << built.triangle_count() << " triangles, "
            << built.num_components << " components, build rounds "
            << built.build_rounds << "\n";

  // Persist and reload -- the reloaded artifact is bit-identical, so a
  // served answer never depends on which process built the file.
  const std::string xda = "serve_quickstart.xda";
  serve::save_artifact(built, xda);
  const auto art = serve::load_artifact(xda);
  std::cout << "reloaded " << xda << "\n";

  serve::ServiceParams sp;
  sp.threads = 2;
  serve::QueryService svc(art, sp);

  // A mixed batch from three clients.
  using serve::Query;
  using serve::QueryKind;
  svc.submit(0, Query{QueryKind::kTriangleCount, 0, 0, 0});
  svc.submit(0, Query{QueryKind::kTrianglesOf, 5, 0, 0});
  svc.submit(1, Query{QueryKind::kComponentOf, 9, 0, 0});
  svc.submit(1, Query{QueryKind::kConductance, 0, 0, 0});
  svc.submit(2, Query{QueryKind::kRoute, 2,
                      static_cast<VertexId>(g.num_vertices() - 1), 0});
  if (!art.triangles.empty()) {
    const auto& t = art.triangles.front();
    svc.submit(2, Query{QueryKind::kTriangleMembership, t[0], t[1], t[2]});
  }

  for (const auto& r : svc.flush()) {
    std::cout << "client " << r.client << " ticket " << r.ticket << ": ";
    switch (r.kind) {
      case QueryKind::kTriangleCount:
        std::cout << "triangle count = " << r.value;
        break;
      case QueryKind::kTrianglesOf:
        std::cout << r.value << " triangles at vertex";
        break;
      case QueryKind::kTriangleMembership:
        std::cout << "membership = " << (r.value != 0 ? "yes" : "no");
        break;
      case QueryKind::kRoute:
        if (r.ok) {
          std::cout << "route delivered in " << r.value << " hops";
        } else {
          std::cout << "no route (different components)";
        }
        break;
      case QueryKind::kConductance:
        std::cout << "component 0 conductance = " << r.scalar;
        break;
      case QueryKind::kComponentOf:
        std::cout << "component = " << r.value;
        break;
    }
    std::cout << " (" << r.rounds_charged << " rounds)\n";
  }

  std::cout << "\nper-client accounting:\n";
  for (const auto& [client, stats] : svc.clients()) {
    std::cout << "  client " << client << ": served " << stats.served
              << ", rounds " << stats.rounds << ", messages "
              << stats.messages << "\n";
  }
  std::cout << "service clock: " << svc.ledger().rounds() << " rounds, "
            << svc.ledger().messages() << " messages\n";

  std::remove(xdg.c_str());
  std::remove(xda.c_str());
  return 0;
}

// Triangle census: run all three distributed enumeration algorithms on the
// same graph and compare round costs against ground truth -- a miniature of
// experiment E4.
//
//   $ ./triangle_census [n] [p] [seed]

#include <cstdlib>
#include <iostream>

#include "core/xd.hpp"

int main(int argc, char** argv) {
  using namespace xd;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 120;
  const double p = argc > 2 ? std::atof(argv[2]) : 0.5;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 3;

  Rng rng(seed);
  const Graph g = gen::gnp(n, p, rng);
  const auto exact = triangle_count_exact(g);
  std::cout << "G(" << n << ", " << p << "): m=" << g.num_edges()
            << ", triangles=" << exact << "\n\n";

  Table table("triangle census",
              {"algorithm", "model", "triangles", "rounds", "ok"});

  {
    congest::RoundLedger ledger;
    triangle::EnumParams prm;
    const auto res = triangle::enumerate_congest(g, prm, rng, ledger);
    table.add_row({"CPZ + expander routing (Thm 2)", "CONGEST",
                   Table::cell(static_cast<std::uint64_t>(res.triangles.size())),
                   Table::cell(res.rounds),
                   res.triangles.size() == exact ? "yes" : "NO"});
  }
  {
    congest::RoundLedger ledger;
    const auto res = triangle::enumerate_clique_dlp(g, ledger);
    table.add_row({"Dolev-Lenzen-Peled", "CONGESTED-CLIQUE",
                   Table::cell(static_cast<std::uint64_t>(res.triangles.size())),
                   Table::cell(res.rounds),
                   res.triangles.size() == exact ? "yes" : "NO"});
  }
  {
    congest::RoundLedger ledger;
    const auto res = triangle::enumerate_local_baseline(g, ledger);
    table.add_row({"neighborhood exchange", "CONGEST",
                   Table::cell(static_cast<std::uint64_t>(res.triangles.size())),
                   Table::cell(res.rounds),
                   res.triangles.size() == exact ? "yes" : "NO"});
  }
  table.print();
  return 0;
}

// Community detection via expander decomposition: the intro's motivating
// use case.  Generates a stochastic block model, decomposes it, and scores
// the recovered components against the planted communities.
//
//   $ ./community_detection [n] [blocks] [seed]

#include <cstdlib>
#include <iostream>
#include <map>

#include "core/xd.hpp"

int main(int argc, char** argv) {
  using namespace xd;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 160;
  const int blocks = argc > 2 ? std::atoi(argv[2]) : 4;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

  Rng rng(seed);
  const Graph g = gen::planted_partition(n, blocks, 0.5, 0.02, rng);
  auto block_of = [&](VertexId v) {
    return static_cast<int>(static_cast<std::size_t>(v) *
                            static_cast<std::size_t>(blocks) / n);
  };
  std::cout << "SBM: n=" << n << " blocks=" << blocks << " m=" << g.num_edges()
            << "\n";

  expander::DecompositionParams prm;
  prm.epsilon = 0.3;
  prm.k = 1;
  prm.phi0_override = 0.08;  // split at the inter-block conductance scale
  congest::RoundLedger ledger;
  const auto decomp = expander::expander_decomposition(g, prm, rng, ledger);

  // Score: for every planted block, the fraction of its vertices landing in
  // the block's majority component.
  std::map<int, std::map<std::uint32_t, int>> votes;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ++votes[block_of(v)][decomp.component[v]];
  }
  Table table("community recovery", {"block", "size", "majority comp",
                                     "purity"});
  double total_purity = 0;
  for (const auto& [block, counts] : votes) {
    int size = 0;
    int best = 0;
    std::uint32_t best_comp = 0;
    for (const auto& [comp, c] : counts) {
      size += c;
      if (c > best) {
        best = c;
        best_comp = comp;
      }
    }
    const double purity = static_cast<double>(best) / size;
    total_purity += purity;
    table.add_row({Table::cell(block), Table::cell(size),
                   Table::cell(static_cast<std::uint64_t>(best_comp)),
                   Table::cell(purity, 3)});
  }
  table.print();
  std::cout << "components=" << decomp.num_components
            << " rounds=" << decomp.rounds
            << " mean purity=" << total_purity / blocks << "\n";
  return total_purity / blocks > 0.8 ? 0 : 1;
}

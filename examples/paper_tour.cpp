// A guided tour of the paper, theorem by theorem, on one small graph --
// run this to see every major component fire in order.
//
//   $ ./paper_tour [seed]

#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/xd.hpp"

int main(int argc, char** argv) {
  using namespace xd;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2;

  Rng rng(seed);
  const Graph g = gen::dumbbell_expanders(60, 60, 4, 2, rng);
  std::cout << "graph: two 4-regular expanders (60+60) bridged by 2 edges; "
            << "m=" << g.num_edges() << "\n\n";

  // --- §1: the Jerrum–Sinclair relation everything rests on. ---
  const auto cut = spectral::fiedler_sweep(g);
  const auto tau = spectral::mixing_time_simulated(g);
  std::cout << "[JS]     conductance ~ " << cut->conductance
            << ", mixing time " << tau << " (1/(4phi)=" << 0.25 / cut->conductance
            << " <= tau <= 16 ln(vol)/phi^2="
            << 16.0 * std::log(static_cast<double>(g.volume())) /
                   (cut->conductance * cut->conductance)
            << ")\n";

  // --- Theorem 4: low-diameter decomposition. ---
  {
    congest::RoundLedger ledger;
    congest::Network net(g, ledger, seed);
    Rng r(seed + 1);
    ldd::LddParams prm;
    prm.beta = 0.4;
    const auto res = ldd::low_diameter_decomposition(net, prm, r);
    std::cout << "[Thm 4]  LDD(beta=0.4): " << res.num_components
              << " component(s), " << res.num_cut_edges << " cut edges "
              << "(budget " << static_cast<std::uint64_t>(0.4 * g.num_edges())
              << "), " << res.rounds << " rounds\n";
  }

  // --- Appendix A: one kernel-executed ApproximateNibble. ---
  {
    congest::RoundLedger ledger;
    congest::Network net(g, ledger, seed);
    auto prm =
        sparsecut::NibbleParams::practical(0.05, g.num_edges(), g.volume());
    prm.stall_tolerance = 0.0;
    prm.t0 = 60;
    const auto res =
        sparsecut::distributed_approximate_nibble(net, 0, prm, 6, "tour");
    std::cout << "[Nibble] distributed ApproximateNibble: "
              << (res.found()
                      ? "cut of " + std::to_string(res.cut.size()) +
                            " vertices at walk step " + std::to_string(res.t_used)
                      : std::string("no cut"))
              << ", " << res.rank_selects << " Lemma-9 rank selects, "
              << res.rounds << " rounds\n";
  }

  // --- Theorem 3: the nearly most balanced sparse cut. ---
  {
    congest::RoundLedger ledger;
    Rng r(seed + 2);
    const auto res = sparsecut::nearly_most_balanced_sparse_cut(
        g, 0.02, sparsecut::Preset::kPractical, r, ledger);
    std::cout << "[Thm 3]  sparse cut: phi=" << res.conductance
              << " bal=" << res.balance << " (target bal >= min{b/2,1/48}="
              << 1.0 / 48 << "), " << res.rounds << " rounds\n";
  }

  // --- Theorem 1: the full expander decomposition. ---
  expander::DecompositionResult decomp;
  {
    congest::RoundLedger ledger;
    Rng r(seed + 3);
    expander::DecompositionParams prm;
    prm.epsilon = 0.25;
    prm.k = 2;
    prm.phi0_override = 0.02;
    decomp = expander::expander_decomposition(g, prm, r, ledger);
    const auto report = expander::verify_decomposition(
        g, decomp, prm.epsilon, decomp.schedule.phi_final());
    std::cout << "[Thm 1]  decomposition: " << decomp.num_components
              << " components, cut fraction " << report.cut_fraction
              << ", min certified conductance " << report.min_conductance_lower
              << (report.ok() ? " [verified]" : " [FAILED]") << "\n";
  }

  // --- §3 / Theorem 2: routing + triangle enumeration. ---
  {
    congest::RoundLedger ledger;
    routing::HierarchicalParams hp;
    hp.depth = 2;
    routing::HierarchicalRouter router(g, ledger, hp);
    router.preprocess();
    std::cout << "[GKS]    router(k=2): preprocess "
              << router.preprocessing_cost() << " rounds, query "
              << router.query_cost() << " rounds (tau_mix "
              << router.tau_mix() << ")\n";
  }
  {
    congest::RoundLedger ledger;
    Rng r(seed + 4);
    triangle::EnumParams prm;
    const auto res = triangle::enumerate_congest(g, prm, r, ledger);
    std::cout << "[Thm 2]  triangles: " << res.triangles.size() << " of "
              << triangle_count_exact(g) << " found, " << res.rounds
              << " rounds over " << res.levels << " recursion level(s)\n";
  }
  return 0;
}

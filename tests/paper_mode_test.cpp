// Paper-constant smoke tests: the literal formulas of Appendix A are
// runnable on small graphs for the pieces whose paper-scale costs stay
// finite (a single Nibble; the parameter schedules).  Partition with paper
// constants is *intentionally* not run end to end -- its iteration count
// s = 4·g(φ,Vol)·⌈log(1/p)⌉ is astronomically large by design (that is the
// paper's own round bound) -- but every formula feeding it is checked.

#include <gtest/gtest.h>

#include <cmath>

#include "core/xd.hpp"
#include "util/check.hpp"

namespace xd::sparsecut {
namespace {

TEST(PaperMode, SingleNibbleRunsWithLiteralConstants) {
  // Tiny dumbbell: m = 85, phi = 0.3 -> t0 = 49·ln(85 e²)/0.09 ≈ 3500
  // steps; sparse supports keep this affordable.
  Rng rng(1);
  const Graph g = gen::dumbbell_expanders(20, 20, 4, 2, rng);
  const auto prm = NibbleParams::paper(0.3, g.num_edges(), g.volume());
  EXPECT_EQ(prm.preset, Preset::kPaper);
  EXPECT_EQ(prm.star_relax, 12.0);
  EXPECT_EQ(prm.stall_tolerance, 0.0);  // no practical shortcuts

  const auto res = approximate_nibble(g, 0, prm, 5);
  // With the huge paper thresholds the outcome (cut or no cut) depends on
  // the constants; what must hold is the contract on whatever came back.
  if (res.found()) {
    EXPECT_LE(res.cut_conductance, 12.0 * prm.phi + 1e-12);
    EXPECT_LE(static_cast<double>(res.cut_volume),
              (11.0 / 12.0) * static_cast<double>(g.volume()));
  }
  // The paper walk has no stall cutoff: it runs to t0 or dies by
  // truncation or succeeds.
  EXPECT_TRUE(res.found() || res.steps_run == prm.t0 ||
              res.steps_run < prm.t0);
  EXPECT_GT(res.steps_run, 0);
}

TEST(PaperMode, T0DominatesPracticalT0) {
  const auto paper = NibbleParams::paper(0.1, 1000, 2000);
  const auto practical = NibbleParams::practical(0.1, 1000, 2000);
  EXPECT_GT(paper.t0, practical.t0);
  EXPECT_GT(paper.max_iterations, practical.max_iterations * 100);
  EXPECT_LT(paper.eps_base, practical.eps_base);
}

TEST(PaperMode, ScheduleIsTheoremShaped) {
  // φ_k = (ε/log n)^{2^{O(k)}}: log φ_k should fall ~3x per level (the
  // cube in h⁻¹).
  expander::DecompositionParams prm;
  prm.preset = Preset::kPaper;
  prm.epsilon = 0.1;
  prm.phi_floor = 0.0;
  prm.k = 2;
  const auto s = expander::derive_schedule(prm, 1 << 12, 1 << 14, 1 << 15);
  ASSERT_EQ(s.phi.size(), 3u);
  for (int i = 1; i <= 2; ++i) {
    const double ratio = std::log(s.phi[i]) / std::log(s.phi[i - 1]);
    EXPECT_GT(ratio, 2.0) << "level " << i;  // roughly cubing
    EXPECT_LT(ratio, 4.0) << "level " << i;
  }
}

TEST(PaperMode, ScheduleUnderflowsDoublesAtKThree) {
  // The literal schedule at n = 4096 is below IEEE-double range by level 3
  // (φ₂ ~ 1e-298, cubed again underflows to 0): the paper's "enormous"
  // polylog trade-off, reproduced as an arithmetic fact.  The schedule
  // derivation refuses to emit a zero φ rather than silently flooring it.
  expander::DecompositionParams prm;
  prm.preset = Preset::kPaper;
  prm.epsilon = 0.1;
  prm.phi_floor = 0.0;
  prm.k = 3;
  EXPECT_THROW(
      (void)expander::derive_schedule(prm, 1 << 12, 1 << 14, 1 << 15),
      CheckError);
}

TEST(PaperMode, OverlapCapAndKMatchFormulas) {
  const std::size_t m = 1 << 16;
  const std::uint64_t vol = 1 << 17;
  const auto prm = NibbleParams::paper(0.05, m, vol);
  EXPECT_EQ(prm.overlap_cap,
            10 * static_cast<int>(std::ceil(std::log(static_cast<double>(vol)))));
  const double lnm4 = std::log(static_cast<double>(m)) + 4.0;
  const double denom = 56.0 * prm.ell * (prm.t0 + 1.0) * prm.t0 * lnm4 / 0.05;
  EXPECT_EQ(prm.k_instances,
            static_cast<std::uint64_t>(std::max(
                1.0, std::ceil(static_cast<double>(vol) / denom))));
}

TEST(PaperMode, LddChargesDwarfPractical) {
  // The same LDD run charges the paper's O(ab log²n) classify cost; with
  // β = O(ε²/log n) this dwarfs anything practical -- the "enormous
  // polylog" reproduced as a number.
  Rng rng(2);
  const Graph g = gen::random_regular(200, 4, rng);
  congest::RoundLedger ledger;
  congest::Network net(g, ledger, 1);
  ldd::LddParams prm;
  prm.beta = 0.01;  // the scale Theorem 1 feeds in
  const auto res = ldd::low_diameter_decomposition(net, prm, rng);
  (void)res;
  EXPECT_GT(ledger.rounds_for("LDD/classify"), 1000000u);
}

}  // namespace
}  // namespace xd::sparsecut

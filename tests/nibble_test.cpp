#include "sparsecut/nibble.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "sparsecut/distributed_nibble.hpp"
#include "sparsecut/nibble_params.hpp"
#include "sparsecut/random_nibble.hpp"
#include "util/check.hpp"

namespace xd::sparsecut {
namespace {

TEST(NibbleParams, PaperFormulasLiteral) {
  const std::size_t m = 1000;
  const double phi = 0.05;
  const auto prm = NibbleParams::paper(phi, m, 2 * m);
  const double lnm2 = std::log(1000.0) + 2.0;
  const double lnm4 = std::log(1000.0) + 4.0;
  EXPECT_EQ(prm.ell, 10);  // ceil(log2 1000)
  EXPECT_EQ(prm.t0, static_cast<int>(std::ceil(49.0 * lnm2 / (phi * phi))));
  EXPECT_NEAR(prm.f_phi, phi * phi * phi / (144.0 * lnm4 * lnm4), 1e-15);
  EXPECT_NEAR(prm.gamma, 5.0 * phi / (392.0 * lnm4), 1e-15);
  EXPECT_NEAR(prm.eps_base, phi / (56.0 * lnm4 * prm.t0), 1e-18);
  EXPECT_EQ(prm.preset, Preset::kPaper);
}

TEST(NibbleParams, EpsBHalvesPerScale) {
  const auto prm = NibbleParams::practical(0.1, 500, 1000);
  for (int b = 2; b <= prm.ell; ++b) {
    EXPECT_NEAR(prm.eps_b(b), prm.eps_b(b - 1) / 2.0, 1e-18);
  }
  EXPECT_THROW((void)prm.eps_b(0), CheckError);
  EXPECT_THROW((void)prm.eps_b(prm.ell + 1), CheckError);
}

TEST(NibbleParams, RescaledKeepsPresetAndPhi) {
  const auto prm = NibbleParams::paper(0.02, 100, 200);
  const auto re = prm.rescaled(5000, 10000);
  EXPECT_EQ(re.preset, Preset::kPaper);
  EXPECT_DOUBLE_EQ(re.phi, 0.02);
  EXPECT_EQ(re.num_edges, 5000u);
  const auto re2 = prm.with_phi(0.3);
  EXPECT_DOUBLE_EQ(re2.phi, 0.3);
  EXPECT_EQ(re2.num_edges, 100u);
}

TEST(NibbleParams, PracticalWithinCaps) {
  const auto prm = NibbleParams::practical(0.01, 1 << 20, 1 << 21);
  EXPECT_LE(prm.t0, 600);
  EXPECT_GE(prm.t0, 8);
  EXPECT_LE(prm.k_instances, 64u);
  EXPECT_LE(prm.max_iterations, 96u);
}

class NibbleOnDumbbell : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(11);
    g_ = gen::dumbbell_expanders(40, 40, 4, 2, rng);
    prm_ = NibbleParams::practical(0.05, g_.num_edges(), g_.volume());
  }
  Graph g_;
  NibbleParams prm_;
};

TEST_F(NibbleOnDumbbell, FindsTrappedCut) {
  // Start deep inside community 0 at a scale matching the community volume
  // (~160): b with 2^{b-1} <= 160*7/5.
  const auto res = nibble(g_, 0, prm_, 6);
  ASSERT_TRUE(res.found());
  // Exact Nibble honors (C.1): conductance <= phi.
  EXPECT_LE(res.cut_conductance, prm_.phi + 1e-12);
  // (C.3) volume window.
  EXPECT_GE(static_cast<double>(res.cut_volume), (5.0 / 7.0) * 32.0);
  EXPECT_LE(static_cast<double>(res.cut_volume),
            (5.0 / 6.0) * static_cast<double>(g_.volume()));
  // The cut stays inside the started community (it is the trapped set).
  std::size_t inside = 0;
  for (VertexId v : res.cut) inside += (v < 40);
  EXPECT_GE(static_cast<double>(inside) / static_cast<double>(res.cut.size()),
            0.9);
}

TEST_F(NibbleOnDumbbell, ApproximateCutRespectsStarredConditions) {
  const auto res = approximate_nibble(g_, 3, prm_, 6);
  ASSERT_TRUE(res.found());
  // (C.1*) allows up to 12 phi.
  EXPECT_LE(res.cut_conductance, 12.0 * prm_.phi + 1e-12);
  // (C.3*) volume window.
  EXPECT_GE(static_cast<double>(res.cut_volume), (5.0 / 7.0) * 32.0);
  EXPECT_LE(static_cast<double>(res.cut_volume),
            (11.0 / 12.0) * static_cast<double>(g_.volume()));
  // Consistency of the reported stats with the cut itself.
  EXPECT_EQ(res.cut_volume, volume(g_, res.cut));
  EXPECT_NEAR(res.cut_conductance, conductance(g_, res.cut), 1e-12);
  EXPECT_EQ(res.cut.size(), res.j_used);
}

TEST_F(NibbleOnDumbbell, TouchedCoversCut) {
  const auto res = approximate_nibble(g_, 0, prm_, 6);
  ASSERT_TRUE(res.found());
  const VertexSet touched(std::vector<VertexId>(res.touched.begin(),
                                                res.touched.end()));
  EXPECT_EQ(res.cut.set_intersection(touched), res.cut);
  EXPECT_GT(res.work_volume, 0u);
  EXPECT_GT(res.sweep_candidates, 0u);
}

TEST(Nibble, RejectsBadInputs) {
  Rng rng(1);
  const Graph g = gen::cycle(10);
  const auto prm = NibbleParams::practical(0.1, 10, 20);
  EXPECT_THROW((void)nibble(g, 0, prm, 0), CheckError);
  EXPECT_THROW((void)nibble(g, 0, prm, prm.ell + 1), CheckError);
  GraphBuilder b(2);
  b.add_edge(0, 1);
  GraphBuilder b2(3);
  b2.add_edge(0, 1);
  const Graph with_isolated = b2.build();
  const auto prm2 = NibbleParams::practical(0.1, 1, 2);
  EXPECT_THROW((void)nibble(with_isolated, 2, prm2, 1), CheckError);
}

TEST(Nibble, ExpanderYieldsNoLowScaleCut) {
  // A 6-regular random graph has conductance ~0.3; with target phi = 0.02
  // no sweep prefix passes (C.1), so Nibble returns empty.
  Rng rng(5);
  const Graph g = gen::random_regular(80, 6, rng);
  auto prm = NibbleParams::practical(0.02, g.num_edges(), g.volume());
  const auto res = nibble(g, 0, prm, 4);
  EXPECT_FALSE(res.found());
}

TEST(RandomNibble, DegreeSampling) {
  Rng rng(7);
  const Graph g = gen::star(9);  // hub degree 8 of volume 16
  std::size_t hub = 0;
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) hub += (sample_by_degree(g, rng) == 0);
  EXPECT_NEAR(static_cast<double>(hub), trials / 2.0, 100.0);
}

TEST(RandomNibble, RunsAndReportsSampledInputs) {
  Rng rng(13);
  const Graph g = gen::dumbbell_expanders(30, 30, 4, 2, rng);
  const auto prm = NibbleParams::practical(0.05, g.num_edges(), g.volume());
  const auto res = random_nibble(g, prm, rng);
  EXPECT_LT(res.start, g.num_vertices());
  EXPECT_GE(res.scale, 1);
  EXPECT_LE(res.scale, prm.ell);
  if (res.inner.found()) {
    EXPECT_LE(res.inner.cut_conductance, 12.0 * prm.phi + 1e-12);
  }
}

TEST(DistributedWalk, MatchesCentralizedExactly) {
  Rng rng(17);
  const Graph g = gen::dumbbell_expanders(25, 25, 4, 2, rng);
  const double eps = 1e-5;
  const int steps = 40;

  congest::RoundLedger ledger;
  congest::Network net(g, ledger);
  const auto dist_walk =
      distributed_truncated_walk(net, 3, steps, eps, "diffuse");
  const auto cent_walk = spectral::truncated_walk(g, 3, steps, eps);

  ASSERT_EQ(dist_walk.size(), cent_walk.size());
  for (std::size_t t = 0; t < dist_walk.size(); ++t) {
    ASSERT_EQ(dist_walk[t].support, cent_walk[t].support) << "step " << t;
    for (std::size_t i = 0; i < dist_walk[t].size(); ++i) {
      EXPECT_EQ(dist_walk[t].mass[i], cent_walk[t].mass[i])
          << "step " << t << " vertex " << dist_walk[t].support[i];
    }
  }
  // The diffusion really used the kernel: one round per step (no edge
  // multiplexing for a single instance).
  EXPECT_GE(ledger.rounds(), dist_walk.size() - 1);
}

TEST(DistributedWalk, ChargesOneRoundPerStep) {
  const Graph g = gen::cycle(12);
  congest::RoundLedger ledger;
  congest::Network net(g, ledger);
  (void)distributed_truncated_walk(net, 0, 10, 1e-6, "diffuse");
  EXPECT_EQ(ledger.rounds(), 10u);
}

TEST(DistributedNibble, EndToEndMatchesOrchestrated) {
  // The full distributed ApproximateNibble -- kernel diffusion + Lemma 9
  // rank-select sweeps + prefix-cut convergecasts -- must return exactly
  // the cut the orchestrated implementation computes (same walk, same
  // candidate sequence, same conditions).
  Rng rng(23);
  const Graph g = gen::dumbbell_expanders(25, 25, 4, 2, rng);
  auto prm = NibbleParams::practical(0.05, g.num_edges(), g.volume());
  prm.stall_tolerance = 0.0;  // the distributed path has no stall cutoff
  prm.t0 = 80;                // keep the kernel run affordable

  const auto central = approximate_nibble(g, 2, prm, 6);

  congest::RoundLedger ledger;
  congest::Network net(g, ledger, 23);
  const auto dist = distributed_approximate_nibble(net, 2, prm, 6, "e2e");

  ASSERT_EQ(dist.found(), central.found());
  if (central.found()) {
    EXPECT_EQ(dist.cut, central.cut);
    EXPECT_EQ(dist.t_used, central.t_used);
    EXPECT_EQ(dist.j_used, central.j_used);
  }
  EXPECT_GT(dist.rank_selects, 0u);
  EXPECT_GT(dist.rounds, 0u);
  EXPECT_EQ(dist.rounds, ledger.rounds());
}

TEST(DistributedNibble, NoCutCaseAgreesToo) {
  // On an expander neither path finds a low-conductance prefix.
  Rng rng(29);
  const Graph g = gen::random_regular(30, 4, rng);
  auto prm = NibbleParams::practical(0.02, g.num_edges(), g.volume());
  prm.stall_tolerance = 0.0;
  prm.t0 = 40;

  const auto central = approximate_nibble(g, 0, prm, 3);
  congest::RoundLedger ledger;
  congest::Network net(g, ledger, 29);
  const auto dist = distributed_approximate_nibble(net, 0, prm, 3, "e2e");
  EXPECT_EQ(dist.found(), central.found());
  EXPECT_FALSE(dist.found());
}

}  // namespace
}  // namespace xd::sparsecut

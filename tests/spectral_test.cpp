#include "spectral/lazy_walk.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "spectral/fiedler.hpp"
#include "spectral/mixing.hpp"
#include "spectral/sweep.hpp"
#include "util/rng.hpp"

namespace xd::spectral {
namespace {

TEST(LazyWalk, ConservesMass) {
  Rng rng(1);
  const Graph g = gen::gnp(40, 0.2, rng);
  std::vector<double> p(40, 0.0);
  p[0] = 1.0;
  for (int t = 0; t < 10; ++t) {
    p = lazy_step(g, p);
    double total = std::accumulate(p.begin(), p.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(LazyWalk, StationaryIsFixedPoint) {
  Rng rng(2);
  const Graph g = gen::gnp(30, 0.3, rng);
  const auto pi = stationary(g);
  const auto next = lazy_step(g, pi);
  for (std::size_t v = 0; v < pi.size(); ++v) {
    EXPECT_NEAR(next[v], pi[v], 1e-12);
  }
}

TEST(LazyWalk, SelfLoopsKeepMassInPlace) {
  // Two vertices, one edge, 3 loops at vertex 0 -> from 0 only 1/(2*4) of
  // the mass leaves per step.
  GraphBuilder b(2);
  b.add_edge(0, 1).add_loops(0, 3);
  const Graph g = b.build();
  std::vector<double> p{1.0, 0.0};
  p = lazy_step(g, p);
  EXPECT_NEAR(p[1], 1.0 / 8.0, 1e-12);
  EXPECT_NEAR(p[0], 7.0 / 8.0, 1e-12);
}

TEST(LazyWalk, ConvergesToStationary) {
  const Graph g = gen::complete(10);
  std::vector<double> p(10, 0.0);
  p[3] = 1.0;
  p = lazy_walk(g, p, 50);
  const auto pi = stationary(g);
  for (std::size_t v = 0; v < 10; ++v) EXPECT_NEAR(p[v], pi[v], 1e-6);
}

TEST(TruncatedWalk, TruncationOnlyRemovesMass) {
  Rng rng(3);
  const Graph g = gen::gnp(50, 0.15, rng);
  const double eps = 1e-4;
  const auto evolution = truncated_walk(g, 0, 20, eps);
  // Dense reference.
  std::vector<double> dense(50, 0.0);
  dense[0] = 1.0;
  for (std::size_t t = 0; t < evolution.size(); ++t) {
    // p̃_t(u) <= p_t(u) everywhere (paper: "for all u and t, p_t(u) >=
    // p̃_t(u)").
    std::vector<double> sparse_dense(50, 0.0);
    for (std::size_t i = 0; i < evolution[t].size(); ++i) {
      sparse_dense[evolution[t].support[i]] = evolution[t].mass[i];
    }
    for (std::size_t v = 0; v < 50; ++v) {
      EXPECT_LE(sparse_dense[v], dense[v] + 1e-12);
    }
    dense = lazy_step(g, dense);
  }
}

TEST(TruncatedWalk, ThresholdEnforced) {
  Rng rng(4);
  const Graph g = gen::gnp(50, 0.15, rng);
  const double eps = 1e-3;
  const auto evolution = truncated_walk(g, 0, 15, eps);
  for (std::size_t t = 1; t < evolution.size(); ++t) {
    for (std::size_t i = 0; i < evolution[t].size(); ++i) {
      const VertexId v = evolution[t].support[i];
      EXPECT_GE(evolution[t].mass[i], 2.0 * eps * g.degree(v) - 1e-15);
    }
  }
}

TEST(TruncatedWalk, SupportVolumeBoundedByLemma3) {
  // Lemma 3's underlying fact: at each step the set of vertices with
  // ρ(v) >= 2ε has volume <= 1/(2ε).
  Rng rng(5);
  const Graph g = gen::random_regular(100, 4, rng);
  const double eps = 1e-3;
  const auto evolution = truncated_walk(g, 7, 30, eps);
  for (const auto& dist : evolution) {
    std::uint64_t vol = 0;
    for (VertexId v : dist.support) vol += g.degree(v);
    EXPECT_LE(static_cast<double>(vol), 1.0 / (2 * eps) + g.max_degree());
  }
}

TEST(Sweep, OrdersByRhoThenId) {
  const Graph g = gen::path(4);
  std::vector<double> rho{0.5, 0.9, 0.5, 0.0};
  const Sweep s = sweep_cut(g, rho);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.order[0], 1u);
  EXPECT_EQ(s.order[1], 0u);  // tie with 2 broken by id
  EXPECT_EQ(s.order[2], 2u);
}

TEST(Sweep, PrefixCutAndVolumeMatchOracle) {
  Rng rng(6);
  const Graph g = gen::gnp(30, 0.2, rng);
  std::vector<double> rho(30);
  for (auto& x : rho) x = rng.next_double();
  const Sweep s = sweep_cut(g, rho);
  for (std::size_t j = 1; j <= s.size(); ++j) {
    const VertexSet prefix = s.prefix(j);
    EXPECT_EQ(s.prefix_volume[j - 1], volume(g, prefix));
    EXPECT_EQ(s.prefix_cut[j - 1], cut_size(g, prefix));
    const double expect = conductance(g, prefix);
    if (std::isinf(expect)) {
      EXPECT_TRUE(std::isinf(s.conductance(j)));
    } else {
      EXPECT_NEAR(s.conductance(j), expect, 1e-12);
    }
  }
}

TEST(Sweep, FindsPlantedCutFromWalk) {
  // Run a lazy walk from inside one community of a dumbbell; the sweep of
  // rho should recover a cut far better than a random one.
  Rng rng(7);
  const Graph g = gen::dumbbell_expanders(50, 50, 4, 2, rng);
  std::vector<double> p(g.num_vertices(), 0.0);
  p[0] = 1.0;
  p = lazy_walk(g, p, 60);
  const Sweep s = sweep_cut(g, normalize_by_degree(g, p));
  const std::size_t j = best_prefix(s);
  ASSERT_GT(j, 0u);
  EXPECT_LT(s.conductance(j), 0.05);
}

TEST(Mixing, SecondEigenvalueKnownFamilies) {
  // Lazy walk on K_n: eigenvalues 1 and (n-2)/(2(n-1)) ... for K_10:
  // non-lazy eig -1/(n-1) -> lazy (1 - 1/9)/2 = 0.4444.
  const Graph k10 = gen::complete(10);
  EXPECT_NEAR(lazy_second_eigenvalue(k10), (1.0 - 1.0 / 9.0) / 2.0, 1e-3);

  // Cycle C_n: non-lazy eig cos(2π/n) -> lazy (1+cos(2π/n))/2.
  const Graph c20 = gen::cycle(20);
  const double expect = (1.0 + std::cos(2.0 * M_PI / 20.0)) / 2.0;
  EXPECT_NEAR(lazy_second_eigenvalue(c20), expect, 1e-3);
}

TEST(Mixing, SimulatedMixingOrdersFamiliesCorrectly) {
  Rng rng(8);
  const Graph expander = gen::random_regular(64, 6, rng);
  const Graph ring = gen::cycle(64);
  const auto t_exp = mixing_time_simulated(expander);
  const auto t_ring = mixing_time_simulated(ring);
  EXPECT_LT(t_exp, 60u);
  EXPECT_GT(t_ring, 5 * t_exp);
}

TEST(Mixing, JerrumSinclairSandwich) {
  // Θ(1/Φ) <= τ <= Θ(log n / Φ²) with explicit constants loose enough to
  // be robust: τ >= 1/(4Φ) - 1 and τ <= 16 ln(vol) / Φ².  Φ is taken from
  // the Fiedler sweep, which is within Cheeger slack of exact -- the bounds
  // used here absorb that slack.
  Rng rng(9);
  for (const Graph& g :
       {gen::cycle(40), gen::random_regular(40, 4, rng), gen::hypercube(5)}) {
    const auto cut = fiedler_sweep(g);
    ASSERT_TRUE(cut.has_value());
    const double phi = cut->conductance;
    const auto tau = mixing_time_simulated(g);
    EXPECT_GE(tau + 1.0, 0.25 / phi) << "lower bound";
    EXPECT_LE(tau, 16.0 * std::log(static_cast<double>(g.volume())) / (phi * phi))
        << "upper bound";
  }
}

TEST(Fiedler, RecoversBarbellCut) {
  const Graph g = gen::barbell(8);
  const auto cut = fiedler_sweep(g);
  ASSERT_TRUE(cut.has_value());
  EXPECT_LT(cut->conductance, 0.05);
  EXPECT_NEAR(balance(g, cut->cut), 0.5, 0.1);
}

TEST(Fiedler, NoCutOnTinyGraph) {
  EXPECT_FALSE(fiedler_sweep(gen::path(1)).has_value());
}

TEST(Fiedler, ExpanderHasLargeConductance) {
  Rng rng(10);
  const Graph g = gen::random_regular(100, 6, rng);
  const auto cut = fiedler_sweep(g);
  ASSERT_TRUE(cut.has_value());
  EXPECT_GT(cut->conductance, 0.1);
  EXPECT_LT(cut->lambda2, 0.95);
}

}  // namespace
}  // namespace xd::spectral

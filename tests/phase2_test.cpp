// Dedicated coverage for Phase 2 of the expander decomposition (the level
// schedule with Remove-3 rip-outs).  Phase 2 is entered when the nearly
// most balanced sparse cut is *tiny* -- Vol(C) <= min(ε/12, 1/48) Vol(U) --
// which needs a graph whose only sparse cut has minuscule balance and a
// persistent Partition (tiny cuts are hit with probability proportional to
// their volume).

#include <gtest/gtest.h>

#include "expander/decomposition.hpp"
#include "sparsecut/partition.hpp"
#include "expander/verify.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "graph/subgraph.hpp"

namespace xd::expander {
namespace {

/// K_core clique with one K_wart pendant clique attached by a single edge.
Graph warted_clique(std::size_t core, std::size_t wart) {
  GraphBuilder b(core + wart);
  for (VertexId i = 0; i < core; ++i) {
    for (VertexId j = i + 1; j < core; ++j) b.add_edge(i, j);
  }
  for (VertexId i = 0; i < wart; ++i) {
    for (VertexId j = i + 1; j < wart; ++j) {
      b.add_edge(static_cast<VertexId>(core + i),
                 static_cast<VertexId>(core + j));
    }
  }
  b.add_edge(0, static_cast<VertexId>(core));
  return b.build();
}

TEST(Phase2, RipOutOnWartedClique) {
  // K40 core (vol 1560) + K6 wart (vol 31): wart conductance 1/31 = 0.032,
  // wart volume share 0.019 < min(ε/12, 1/48) = 0.0208 -> Phase 2 entry.
  // With phi0 = 0.3 the level-1 target phi1 = 0.05 still sees the wart, so
  // Phase 2 rips it out: 6 singleton components plus the core.
  const Graph g = warted_clique(40, 6);
  DecompositionParams prm;
  prm.epsilon = 0.25;
  prm.k = 1;
  prm.phi0_override = 0.3;
  prm.thorough_partition = true;

  bool saw_phase2 = false;
  for (int seed = 1; seed <= 5 && !saw_phase2; ++seed) {
    Rng rng(seed);
    congest::RoundLedger ledger;
    const auto res = expander_decomposition(g, prm, rng, ledger);
    const auto report =
        verify_decomposition(g, res, prm.epsilon, res.schedule.phi_final());
    EXPECT_TRUE(report.is_partition);
    if (res.phase2_entries > 0) {
      saw_phase2 = true;
      // The rip-out produced singletons and charged Remove-3.
      EXPECT_GT(res.singleton_components, 0u);
      EXPECT_GT(res.removed_by[2], 0u);
      // Lemma 2: ripped volume (= 2 * Remove-3 edges + boundary) stays
      // within m1 = (ε/6) Vol; the edge count alone is a weaker proxy.
      EXPECT_LE(static_cast<double>(res.removed_by[2]),
                (prm.epsilon / 6.0) * static_cast<double>(g.volume()));
      // The core survives as one big component.
      std::vector<std::size_t> sizes(res.num_components, 0);
      std::size_t biggest = 0;
      for (auto c : res.component) biggest = std::max(biggest, ++sizes[c]);
      EXPECT_GE(biggest, 40u);
    }
  }
  EXPECT_TRUE(saw_phase2)
      << "no seed entered Phase 2; the entry threshold or persistence knob "
         "regressed";
}

TEST(Phase2, LevelScheduleNeverExceedsK) {
  // Even under thorough partitioning with several warts, the level index
  // stays within [1, k] (the m_k/(2τ) = 1/2 identity) and the result is a
  // valid partition.
  GraphBuilder b(60 + 12);
  for (VertexId i = 0; i < 60; ++i) {
    for (VertexId j = i + 1; j < 60; ++j) b.add_edge(i, j);
  }
  for (int w = 0; w < 2; ++w) {
    const auto base = static_cast<VertexId>(60 + w * 6);
    for (VertexId i = 0; i < 6; ++i) {
      for (VertexId j = i + 1; j < 6; ++j) {
        b.add_edge(base + i, base + j);
      }
    }
    b.add_edge(static_cast<VertexId>(w), base);
  }
  const Graph g = b.build();

  DecompositionParams prm;
  prm.epsilon = 0.25;
  prm.k = 3;
  prm.phi0_override = 0.3;
  prm.thorough_partition = true;
  Rng rng(7);
  congest::RoundLedger ledger;
  const auto res = expander_decomposition(g, prm, rng, ledger);
  const auto report =
      verify_decomposition(g, res, prm.epsilon, res.schedule.phi_final());
  EXPECT_TRUE(report.is_partition);
  EXPECT_TRUE(report.cut_within_epsilon)
      << "cut fraction " << report.cut_fraction;
}

TEST(Phase2, ThoroughFindsTinyCutPlainMisses) {
  // The persistence knob is what makes tiny cuts findable: statistically,
  // thorough mode should find the wart at least as often as the fast mode.
  const Graph g = warted_clique(40, 6);
  int found_fast = 0;
  int found_thorough = 0;
  for (int seed = 1; seed <= 5; ++seed) {
    Rng r1(seed), r2(seed);
    congest::RoundLedger l1, l2;
    const auto fast = sparsecut::nearly_most_balanced_sparse_cut(
        g, 0.05, sparsecut::Preset::kPractical, r1, l1, std::nullopt, false);
    const auto thorough = sparsecut::nearly_most_balanced_sparse_cut(
        g, 0.05, sparsecut::Preset::kPractical, r2, l2, std::nullopt, true);
    found_fast += fast.found();
    found_thorough += thorough.found();
  }
  EXPECT_GE(found_thorough, found_fast);
  EXPECT_GE(found_thorough, 3);
}

}  // namespace
}  // namespace xd::expander

#include "util/scratch.hpp"

#include <gtest/gtest.h>

#include "triangle/triple_rank.hpp"

namespace xd {
namespace {

TEST(StampedMap, EpochIsolatesEntries) {
  util::StampedMap<std::uint32_t> m;
  m.begin_epoch(8);
  EXPECT_FALSE(m.contains(3));
  m.put(3, 42);
  m.put(7, 9);
  EXPECT_TRUE(m.contains(3));
  EXPECT_TRUE(m.contains(7));
  EXPECT_EQ(m.at(3), 42u);
  EXPECT_EQ(m.at(7), 9u);

  // A new epoch logically clears every key without touching the slab.
  m.begin_epoch(8);
  EXPECT_FALSE(m.contains(3));
  EXPECT_FALSE(m.contains(7));
  m.put(3, 1);
  EXPECT_TRUE(m.contains(3));
  EXPECT_EQ(m.at(3), 1u);
}

TEST(StampedMap, GrowthAndReuseAccounting) {
  util::StampedMap<char> m;
  EXPECT_EQ(m.stats().grown, 0u);
  EXPECT_EQ(m.stats().reused, 0u);

  m.begin_epoch(100);  // first epoch allocates
  EXPECT_EQ(m.stats().grown, 1u);
  EXPECT_EQ(m.stats().reused, 0u);

  m.begin_epoch(100);  // same size: reuse
  m.begin_epoch(40);   // smaller: reuse
  EXPECT_EQ(m.stats().grown, 1u);
  EXPECT_EQ(m.stats().reused, 2u);

  m.begin_epoch(200);  // larger: grows once more
  EXPECT_EQ(m.stats().grown, 2u);
  EXPECT_EQ(m.stats().reused, 2u);

  m.begin_epoch(150);  // below the high-water mark: reuse again
  EXPECT_EQ(m.stats().grown, 2u);
  EXPECT_EQ(m.stats().reused, 3u);
}

TEST(StampedMap, StaleStampsNeverReadAsCurrentAfterGrowth) {
  util::StampedMap<int> m;
  m.begin_epoch(4);
  m.put(2, 5);
  m.begin_epoch(16);  // growth rewrites the stamp slab
  for (std::size_t i = 0; i < 16; ++i) EXPECT_FALSE(m.contains(i));
}

TEST(StampedMap, RefInsertsValueInitializedAndMutatesInPlace) {
  util::StampedMap<std::uint32_t> m;
  m.begin_epoch(8);
  m.put(5, 77);
  // Absent key: ref() materializes a value-initialized entry.
  EXPECT_EQ(m.ref(3), 0u);
  EXPECT_TRUE(m.contains(3));
  // Present key: ref() must NOT reset (the queue-arena head/tail cursors
  // rely on in-place mutation).
  ++m.ref(5);
  EXPECT_EQ(m.at(5), 78u);
  m.ref(3) = 9;
  EXPECT_EQ(m.at(3), 9u);

  // Stale entries from an earlier epoch read as fresh zero via ref().
  m.begin_epoch(8);
  EXPECT_FALSE(m.contains(5));
  EXPECT_EQ(m.ref(5), 0u);
}

TEST(TripleRanker, MatchesLexicographicEnumeration) {
  for (const std::uint32_t p : {1u, 2u, 3u, 5u, 8u, 47u}) {
    const triangle::TripleRanker ranker(p);
    std::uint64_t expected = 0;
    for (std::uint32_t a = 0; a < p; ++a) {
      for (std::uint32_t b = a; b < p; ++b) {
        for (std::uint32_t c = b; c < p; ++c) {
          ASSERT_EQ(ranker.rank_sorted(a, b, c), expected)
              << "p=" << p << " (" << a << "," << b << "," << c << ")";
          // rank() sorts its arguments.
          ASSERT_EQ(ranker.rank(c, a, b), expected);
          ASSERT_EQ(ranker.rank(b, c, a), expected);
          ++expected;
        }
      }
    }
    EXPECT_EQ(ranker.count(), expected) << "p=" << p;
    // C(p+2, 3).
    EXPECT_EQ(ranker.count(),
              static_cast<std::uint64_t>(p) * (p + 1) * (p + 2) / 6);
  }
}

}  // namespace
}  // namespace xd

#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace xd::serve {
namespace {

PreparedArtifact golden_artifact() {
  Rng rng(31);
  const Graph g = gen::gnp(60, 0.2, rng);
  PrepareParams prm;
  prm.enumerate.backend = triangle::RouterBackend::kTree;
  return prepare_artifact(g, prm);
}

/// Deterministic mixed stream: every kind appears, operands in and out of
/// range, several clients.
std::vector<std::pair<std::uint32_t, Query>> mixed_stream(
    const PreparedArtifact& art, std::size_t count, std::uint64_t seed) {
  const auto n = static_cast<std::uint32_t>(art.graph.num_vertices());
  Rng rng(seed);
  std::vector<std::pair<std::uint32_t, Query>> stream;
  stream.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto client = static_cast<std::uint32_t>(rng.next_below(5));
    Query q;
    q.kind = static_cast<QueryKind>(rng.next_below(6));
    q.a = static_cast<VertexId>(rng.next_below(n + 2));  // sometimes invalid
    q.b = static_cast<VertexId>(rng.next_below(n));
    q.c = static_cast<VertexId>(rng.next_below(n));
    stream.emplace_back(client, q);
  }
  return stream;
}

void expect_same(const QueryResult& a, const QueryResult& b,
                 std::size_t index) {
  EXPECT_EQ(a.kind, b.kind) << index;
  EXPECT_EQ(a.client, b.client) << index;
  EXPECT_EQ(a.ticket, b.ticket) << index;
  EXPECT_EQ(a.ok, b.ok) << index;
  EXPECT_EQ(a.value, b.value) << index;
  EXPECT_EQ(a.scalar, b.scalar) << index;
  EXPECT_EQ(a.rounds_charged, b.rounds_charged) << index;
  EXPECT_EQ(a.messages, b.messages) << index;
  EXPECT_EQ(a.ids, b.ids) << index;
}

/// Runs the whole stream through a service at the given thread count:
/// submit until backpressure, flush, repeat.
std::vector<QueryResult> run_stream(
    QueryService& svc,
    const std::vector<std::pair<std::uint32_t, Query>>& stream) {
  std::vector<QueryResult> all;
  std::size_t next = 0;
  while (next < stream.size() || svc.pending() > 0) {
    while (next < stream.size() &&
           svc.submit(stream[next].first, stream[next].second)) {
      ++next;
    }
    for (auto& r : svc.flush()) all.push_back(std::move(r));
  }
  return all;
}

// --------------------------------------------------- concurrent identity

TEST(Serve, ConcurrentExecutionIsBitIdenticalToSequential) {
  const auto art = golden_artifact();
  const auto stream = mixed_stream(art, 300, 99);
  ServiceParams base;
  base.max_pending = 64;
  base.max_batch = 32;

  ServiceParams p1 = base;
  p1.threads = 1;
  QueryService seq(art, p1);
  const auto seq_results = run_stream(seq, stream);

  for (const int threads : {2, 8}) {
    ServiceParams pt = base;
    pt.threads = threads;
    QueryService conc(art, pt);
    const auto conc_results = run_stream(conc, stream);
    ASSERT_EQ(conc_results.size(), seq_results.size()) << threads;
    for (std::size_t i = 0; i < seq_results.size(); ++i) {
      expect_same(conc_results[i], seq_results[i], i);
    }
    // The shared clock and the per-client forks agree too: Phase A always
    // forks, so charged totals never depend on the host thread count.
    EXPECT_EQ(conc.ledger().rounds(), seq.ledger().rounds()) << threads;
    EXPECT_EQ(conc.ledger().messages(), seq.ledger().messages()) << threads;
    ASSERT_EQ(conc.clients().size(), seq.clients().size());
    for (const auto& [client, stats] : seq.clients()) {
      const auto& other = conc.clients().at(client);
      EXPECT_EQ(other.served, stats.served) << "client " << client;
      EXPECT_EQ(other.rounds, stats.rounds) << "client " << client;
      EXPECT_EQ(other.messages, stats.messages) << "client " << client;
    }
  }
}

// ---------------------------------------------------------- backpressure

TEST(Serve, BackpressureBoundsThePendingQueue) {
  const auto art = golden_artifact();
  ServiceParams prm;
  prm.max_pending = 16;
  prm.max_batch = 8;
  QueryService svc(art, prm);

  Query q;
  q.kind = QueryKind::kTriangleCount;
  std::size_t accepted = 0;
  for (int i = 0; i < 100; ++i) {
    if (svc.submit(0, q)) ++accepted;
    EXPECT_LE(svc.pending(), prm.max_pending);
  }
  EXPECT_EQ(accepted, prm.max_pending);
  EXPECT_EQ(svc.total_rejected(), 100 - prm.max_pending);
  EXPECT_EQ(svc.clients().at(0).rejected, 100 - prm.max_pending);
  EXPECT_EQ(svc.clients().at(0).submitted, 100u);

  // Each flush serves at most max_batch, FIFO.
  const auto first = svc.flush();
  EXPECT_EQ(first.size(), prm.max_batch);
  EXPECT_EQ(first.front().ticket, 0u);
  EXPECT_EQ(svc.pending(), prm.max_pending - prm.max_batch);
  const auto second = svc.flush();
  EXPECT_EQ(second.size(), prm.max_batch);
  EXPECT_EQ(second.front().ticket, prm.max_batch);
  EXPECT_EQ(svc.pending(), 0u);
  EXPECT_TRUE(svc.flush().empty());
  EXPECT_EQ(svc.total_served(), prm.max_pending);
}

TEST(Serve, SubmitAtExactlyMaxPendingBoundary) {
  const auto art = golden_artifact();
  ServiceParams prm;
  prm.max_pending = 4;
  QueryService svc(art, prm);
  Query q{QueryKind::kTriangleCount, 0, 0, 0};

  // Fill to the boundary: the max_pending-th submit is still accepted...
  for (std::size_t i = 0; i < prm.max_pending; ++i) {
    EXPECT_TRUE(svc.submit(0, q)) << i;
  }
  EXPECT_EQ(svc.pending(), prm.max_pending);
  EXPECT_EQ(svc.total_rejected(), 0u);
  // ...and the very next one bounces without growing the queue.
  EXPECT_FALSE(svc.submit(0, q));
  EXPECT_EQ(svc.pending(), prm.max_pending);
  EXPECT_EQ(svc.total_rejected(), 1u);
  // Draining one slot reopens admission exactly at the boundary.
  (void)svc.flush();
  EXPECT_TRUE(svc.submit(0, q));
}

TEST(Serve, FlushWithZeroPendingIsFree) {
  const auto art = golden_artifact();
  QueryService svc(art, ServiceParams{});
  const auto rep = svc.flush_report();
  EXPECT_TRUE(rep.results.empty());
  EXPECT_EQ(rep.failure, FlushFailure::kNone);
  EXPECT_FALSE(rep.degraded);
  // An empty flush charges nothing and serves nobody.
  EXPECT_EQ(svc.ledger().rounds(), 0u);
  EXPECT_EQ(svc.ledger().messages(), 0u);
  EXPECT_EQ(svc.total_served(), 0u);
  EXPECT_TRUE(svc.clients().empty());
  EXPECT_TRUE(svc.flush().empty());  // idempotent
}

TEST(Serve, ClientStatsAfterARejectedSubmit) {
  const auto art = golden_artifact();
  ServiceParams prm;
  prm.max_pending = 1;
  QueryService svc(art, prm);
  Query q{QueryKind::kComponentOf, 2, 0, 0};

  ASSERT_TRUE(svc.submit(9, q));
  ASSERT_FALSE(svc.submit(9, q));  // bounced: queue full
  // A rejection counts as submitted (the client did ask) but never as
  // served, and charges nothing.
  const auto& before = svc.clients().at(9);
  EXPECT_EQ(before.submitted, 2u);
  EXPECT_EQ(before.rejected, 1u);
  EXPECT_EQ(before.served, 0u);
  EXPECT_EQ(before.rounds, 0u);

  const auto rs = svc.flush();
  ASSERT_EQ(rs.size(), 1u);  // only the accepted query was answered
  const auto& after = svc.clients().at(9);
  EXPECT_EQ(after.submitted, 2u);
  EXPECT_EQ(after.rejected, 1u);
  EXPECT_EQ(after.served, 1u);
  EXPECT_EQ(after.submitted, after.served + after.rejected + svc.pending());
}

// ------------------------------------------------------- client ledgers

TEST(Serve, PerClientStatsSumTheirAnswers) {
  const auto art = golden_artifact();
  const auto stream = mixed_stream(art, 200, 7);
  ServiceParams prm;
  prm.threads = 2;
  prm.max_pending = 32;
  prm.max_batch = 16;
  QueryService svc(art, prm);
  const auto results = run_stream(svc, stream);
  EXPECT_EQ(results.size(), stream.size());
  EXPECT_EQ(svc.total_served(), stream.size());

  std::map<std::uint32_t, ClientStats> expect;
  for (const auto& r : results) {
    auto& s = expect[r.client];
    ++s.served;
    s.rounds += r.rounds_charged;
    s.messages += r.messages;
  }
  ASSERT_EQ(svc.clients().size(), expect.size());
  std::uint64_t total_rounds = 0;
  for (const auto& [client, want] : expect) {
    const auto& got = svc.clients().at(client);
    EXPECT_EQ(got.served, want.served) << "client " << client;
    EXPECT_EQ(got.rounds, want.rounds) << "client " << client;
    EXPECT_EQ(got.messages, want.messages) << "client " << client;
    EXPECT_EQ(got.submitted, got.served + got.rejected) << client;
    total_rounds += got.rounds;
  }
  // Per-client sums run sequential (each client waits for its answers);
  // the service clock joins concurrent queries by max, so it reads faster.
  EXPECT_LE(svc.ledger().rounds(), total_rounds);
  EXPECT_GT(svc.ledger().rounds(), 0u);
}

// ------------------------------------------------------------- semantics

TEST(Serve, AnswersMatchTheArtifact) {
  const auto art = golden_artifact();
  ServiceParams prm;
  QueryService svc(art, prm);

  ASSERT_TRUE(svc.submit(1, {QueryKind::kTriangleCount, 0, 0, 0}));
  ASSERT_TRUE(svc.submit(1, {QueryKind::kTrianglesOf, 3, 0, 0}));
  const auto& t0 = art.triangles[0];
  ASSERT_TRUE(svc.submit(2, {QueryKind::kTriangleMembership, t0[0], t0[1],
                             t0[2]}));
  ASSERT_TRUE(svc.submit(2, {QueryKind::kComponentOf, 7, 0, 0}));
  ASSERT_TRUE(svc.submit(3, {QueryKind::kConductance, 0, 0, 0}));
  ASSERT_TRUE(svc.submit(3, {QueryKind::kRoute, 0, 59, 0}));
  ASSERT_TRUE(
      svc.submit(3, {QueryKind::kRoute, 0, static_cast<VertexId>(1000), 0}));

  const auto rs = svc.flush();
  ASSERT_EQ(rs.size(), 7u);
  EXPECT_TRUE(rs[0].ok);
  EXPECT_EQ(rs[0].value, art.triangle_count());
  EXPECT_TRUE(rs[1].ok);
  EXPECT_EQ(rs[1].value, art.triangles_of(3).size());
  EXPECT_TRUE(rs[2].ok);
  EXPECT_EQ(rs[2].value, 1u);
  EXPECT_TRUE(rs[3].ok);
  EXPECT_EQ(rs[3].value, art.component_of(7));
  EXPECT_TRUE(rs[4].ok);
  EXPECT_EQ(rs[4].scalar, art.components[0].conductance);
  if (art.component_of(0) == art.component_of(59)) {
    EXPECT_TRUE(rs[5].ok);
    ASSERT_FALSE(rs[5].ids.empty());
    EXPECT_EQ(rs[5].ids.front(), 0u);
    EXPECT_EQ(rs[5].ids.back(), 59u);
    // Delivery really happened: the drain's arrival round is charged on
    // top of the GKS query-model cost.
    EXPECT_GT(rs[5].rounds_charged, 1u);
  }
  EXPECT_FALSE(rs[6].ok);  // out-of-range destination
  EXPECT_EQ(rs[6].rounds_charged, 1u);
}

}  // namespace
}  // namespace xd::serve

// Direct tests of the decomposition verifier: it must catch bad
// decompositions, not just bless good ones.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>

#include "expander/verify.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "util/rng.hpp"

namespace xd::expander {
namespace {

/// Hand-built DecompositionResult with the given labels and no removals.
DecompositionResult fake(const Graph& g, std::vector<std::uint32_t> component,
                         std::size_t count) {
  DecompositionResult res;
  res.component = std::move(component);
  res.num_components = count;
  res.removed_edge.assign(g.num_edges(), 0);
  return res;
}

TEST(Verifier, BlessesTheTrivialDecomposition) {
  Rng rng(1);
  const Graph g = gen::random_regular(60, 6, rng);
  const auto res = fake(g, std::vector<std::uint32_t>(60, 0), 1);
  const auto report = verify_decomposition(g, res, 0.1, 0.05);
  EXPECT_TRUE(report.is_partition);
  EXPECT_EQ(report.inter_component_edges, 0u);
  EXPECT_TRUE(report.cut_within_epsilon);
  // A 6-regular expander comfortably certifies phi = 0.05.
  EXPECT_TRUE(report.conductance_meets_phi);
  EXPECT_TRUE(report.ok());
}

TEST(Verifier, FlagsCutBudgetViolation) {
  // Splitting a clique in half cuts ~n²/4 of ~n²/2 edges: way over ε = 0.1.
  const Graph g = gen::complete(16);
  std::vector<std::uint32_t> comp(16, 0);
  for (VertexId v = 8; v < 16; ++v) comp[v] = 1;
  const auto report = verify_decomposition(g, fake(g, comp, 2), 0.1, 0.0);
  EXPECT_TRUE(report.is_partition);
  EXPECT_FALSE(report.cut_within_epsilon);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.inter_component_edges, 64u);
}

TEST(Verifier, FlagsLowConductanceComponent) {
  // A barbell kept whole fails a phi demand above its bridge conductance.
  const Graph g = gen::barbell(8);
  const auto res = fake(g, std::vector<std::uint32_t>(g.num_vertices(), 0), 1);
  const auto report = verify_decomposition(g, res, 0.5, 0.2);
  EXPECT_TRUE(report.is_partition);
  EXPECT_TRUE(report.cut_within_epsilon);
  EXPECT_FALSE(report.conductance_meets_phi);
  EXPECT_LT(report.min_conductance_lower, 0.2);
}

TEST(Verifier, FlagsBrokenPartitionLabels) {
  const Graph g = gen::cycle(6);
  std::vector<std::uint32_t> comp(6, 0);
  comp[3] = 7;  // out of range vs num_components = 1
  const auto report = verify_decomposition(g, fake(g, comp, 1), 1.0, 0.0);
  EXPECT_FALSE(report.is_partition);
}

TEST(Verifier, ExactBranchForTinyComponents) {
  // Components of size <= 14 get exhaustive conductance; the report must
  // mark them exact and match the oracle.
  const Graph g = gen::barbell(5);  // 10 vertices
  std::vector<std::uint32_t> comp(10, 0);
  for (VertexId v = 5; v < 10; ++v) comp[v] = 1;
  DecompositionResult res = fake(g, comp, 2);
  // Mark the bridge removed so the live view matches a real run.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.edge(e);
    if ((u < 5) != (v < 5)) res.removed_edge[e] = 1;
  }
  ++res.removed_by[1];
  const auto report = verify_decomposition(g, res, 0.5, 0.1);
  ASSERT_EQ(report.components.size(), 2u);
  for (const auto& c : report.components) {
    EXPECT_TRUE(c.exact);
    // Each side is K5 plus one substitution loop; K5's conductance is
    // 6/10 = 0.6 and the loop only lowers it slightly.
    EXPECT_GT(c.conductance_lower, 0.4);
  }
  EXPECT_TRUE(report.ok());
}

TEST(Verifier, CountsInternalRemovedEdges) {
  // An edge removed but with both endpoints in the same final component is
  // suspicious (only practical-mode guards produce it); the verifier must
  // surface it.
  const Graph g = gen::cycle(6);
  DecompositionResult res = fake(g, std::vector<std::uint32_t>(6, 0), 1);
  res.removed_edge[2] = 1;
  const auto report = verify_decomposition(g, res, 1.0, 0.0);
  EXPECT_EQ(report.internal_removed_edges, 1u);
}

TEST(Verifier, SingletonComponentsAreVacuouslyExpanding) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const Graph g = b.build();
  std::vector<std::uint32_t> comp{0, 0, 1};
  const auto report = verify_decomposition(g, fake(g, comp, 2), 1.0, 100.0);
  // Singleton (vertex 2) must not drag the min conductance down.
  ASSERT_EQ(report.components.size(), 2u);
  EXPECT_TRUE(std::isinf(report.components[1].conductance_lower));
}

TEST(Verifier, ManyComponentVerificationStaysLinear) {
  // Regression guard for the verifier's single-pass component extraction:
  // the old path rescanned every vertex once per component, which at 50k
  // components over 100k vertices is ~5e9 label comparisons before a
  // single oracle runs.  The rewrite does one global sweep, so this must
  // finish comfortably inside the ceiling -- and build exactly one
  // subgraph per non-vacuous component, no more.
  constexpr std::uint32_t kPairs = 50000;
  GraphBuilder b(2 * kPairs);
  std::vector<std::uint32_t> comp(2 * kPairs);
  for (std::uint32_t c = 0; c < kPairs; ++c) {
    b.add_edge(2 * c, 2 * c + 1);
    comp[2 * c] = c;
    comp[2 * c + 1] = c;
  }
  const Graph g = b.build();
  const std::uint64_t builds_before = GraphBuilder::total_builds();
  const auto t0 = std::chrono::steady_clock::now();
  const auto report = verify_decomposition(g, fake(g, comp, kPairs), 1.0, 0.1);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_TRUE(report.ok());
  ASSERT_EQ(report.components.size(), kPairs);
  EXPECT_EQ(GraphBuilder::total_builds() - builds_before, kPairs);
  // Generous even under the sanitizer jobs; the quadratic path blows way
  // past it.
  EXPECT_LT(wall_s, 60.0) << "verification took " << wall_s << "s";
}

TEST(Verifier, BenchScaleGraphVerifiesWithinBudget) {
  // The 100k-vertex serving-bench graph (bench_serve's multi_cluster
  // shape: disjoint G(250, 8/250) blocks) with the natural block
  // partition.  Sparse random blocks can contain isolated vertices, so
  // conductance is checked vacuously (phi = 0) -- this test budgets the
  // verifier's wall time at bench scale, it does not grade the partition.
  constexpr std::size_t kBlock = 250;
  constexpr std::size_t kBlocks = 400;  // 100k vertices
  Rng rng(23);
  GraphBuilder b(kBlock * kBlocks);
  std::vector<std::uint32_t> comp(kBlock * kBlocks);
  const double p = 8.0 / static_cast<double>(kBlock);
  for (std::size_t c = 0; c < kBlocks; ++c) {
    const auto base = static_cast<VertexId>(c * kBlock);
    for (std::size_t i = 0; i < kBlock; ++i) {
      comp[base + i] = static_cast<std::uint32_t>(c);
      for (std::size_t j = i + 1; j < kBlock; ++j) {
        if (rng.next_bool(p)) {
          b.add_edge(base + static_cast<VertexId>(i),
                     base + static_cast<VertexId>(j));
        }
      }
    }
  }
  const Graph g = b.build();
  const auto t0 = std::chrono::steady_clock::now();
  const auto report = verify_decomposition(g, fake(g, comp, kBlocks), 1.0, 0.0);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_TRUE(report.is_partition);
  EXPECT_TRUE(report.cut_within_epsilon);
  EXPECT_EQ(report.inter_component_edges, 0u);
  EXPECT_LT(wall_s, 60.0) << "verification took " << wall_s << "s";
}

}  // namespace
}  // namespace xd::expander

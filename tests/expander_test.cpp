#include "expander/decomposition.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "expander/verify.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "graph/subgraph.hpp"
#include "util/check.hpp"

namespace xd::expander {
namespace {

TEST(Schedule, DepthAndBetaFormulas) {
  DecompositionParams prm;
  prm.epsilon = 0.3;
  prm.k = 2;
  prm.preset = Preset::kPaper;
  const Schedule s = derive_schedule(prm, 1000, 5000, 10000);
  // d: smallest integer with (1 - ε/12)^d · n(n-1) < 1 (paper preset).
  const double shrink = -std::log1p(-0.3 / 12.0);
  const auto expect_d = static_cast<std::uint32_t>(
      std::ceil(std::log(1000.0 * 999.0) / shrink));
  EXPECT_EQ(s.d, expect_d);
  EXPECT_NEAR(s.beta, (0.3 / 3.0) / expect_d, 1e-12);
  ASSERT_EQ(s.phi.size(), 3u);  // φ₀, φ₁, φ₂

  // Practical preset caps the depth at the observed O(log n) scale.
  prm.preset = Preset::kPractical;
  const Schedule sp = derive_schedule(prm, 1000, 5000, 10000);
  EXPECT_LE(sp.d, static_cast<std::uint32_t>(std::ceil(3.0 * std::log(1000.0)) + 5));
  EXPECT_NEAR(sp.beta, (0.3 / 3.0) / sp.d, 1e-12);
}

TEST(Schedule, PhiStrictlyDecreasing) {
  DecompositionParams prm;
  prm.epsilon = 0.2;
  prm.k = 3;
  const Schedule s = derive_schedule(prm, 500, 2000, 4000);
  for (std::size_t i = 1; i < s.phi.size(); ++i) {
    EXPECT_LT(s.phi[i], s.phi[i - 1]);
    EXPECT_GT(s.phi[i], 0.0);
  }
}

TEST(Schedule, HInverseRoundTrip) {
  for (Preset preset : {Preset::kPaper, Preset::kPractical}) {
    const double theta = 1e-3;
    const double inv = h_inverse(theta, 10000, 20000, preset);
    EXPECT_NEAR(h_of(inv, 10000, 20000, preset), theta, 1e-12);
  }
}

TEST(Schedule, PaperPhiMatchesTheoremShape) {
  // φ = (ε / log n)^{2^{O(k)}}: deeper k must shrink φ dramatically.
  DecompositionParams prm;
  prm.preset = Preset::kPaper;
  prm.epsilon = 0.1;
  prm.phi_floor = 0.0;
  prm.k = 1;
  const double phi1 = derive_schedule(prm, 4096, 1 << 14, 1 << 15).phi_final();
  prm.k = 2;
  const double phi2 = derive_schedule(prm, 4096, 1 << 14, 1 << 15).phi_final();
  EXPECT_LT(phi2, phi1 * phi1);  // roughly cubing per level
}

class DecompositionInvariants : public ::testing::TestWithParam<int> {};

TEST_P(DecompositionInvariants, DumbbellSeparatesAndVerifies) {
  const int seed = GetParam();
  Rng rng(seed);
  const Graph g = gen::dumbbell_expanders(40, 40, 4, 2, rng);
  DecompositionParams prm;
  prm.epsilon = 0.3;
  prm.k = 2;
  // The planted bridge cut has conductance ~0.012; target that scale.
  prm.phi0_override = 0.02;
  congest::RoundLedger ledger;
  const auto res = expander_decomposition(g, prm, rng, ledger);

  const auto report = verify_decomposition(g, res, prm.epsilon,
                                           res.schedule.phi_final());
  EXPECT_TRUE(report.is_partition);
  EXPECT_TRUE(report.cut_within_epsilon)
      << "cut fraction " << report.cut_fraction;
  EXPECT_TRUE(report.conductance_meets_phi)
      << "min conductance lower bound " << report.min_conductance_lower;
  EXPECT_GT(res.rounds, 0u);
  EXPECT_EQ(res.rounds, ledger.rounds());
}

TEST_P(DecompositionInvariants, ExpanderStaysAlmostWhole) {
  const int seed = GetParam();
  Rng rng(seed + 100);
  const Graph g = gen::random_regular(120, 6, rng);
  DecompositionParams prm;
  prm.epsilon = 0.3;
  prm.k = 2;
  congest::RoundLedger ledger;
  const auto res = expander_decomposition(g, prm, rng, ledger);
  const auto report = verify_decomposition(g, res, prm.epsilon,
                                           res.schedule.phi_final());
  EXPECT_TRUE(report.ok()) << "cut " << report.cut_fraction << " minphi "
                           << report.min_conductance_lower;
  // An expander admits no sparse cut: the bulk survives in one big part.
  std::size_t biggest = 0;
  std::vector<std::size_t> sizes(res.num_components, 0);
  for (auto c : res.component) biggest = std::max(biggest, ++sizes[c]);
  EXPECT_GE(biggest, g.num_vertices() * 3 / 4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecompositionInvariants,
                         ::testing::Values(1, 2, 3));

TEST(Decomposition, PlantedPartitionRecoversBlocks) {
  Rng rng(7);
  const Graph g = gen::planted_partition(120, 3, 0.35, 0.01, rng);
  DecompositionParams prm;
  prm.epsilon = 0.35;
  prm.k = 2;
  // Ask for separation at the block-cut conductance scale (~0.03).
  prm.phi0_override = 0.06;
  congest::RoundLedger ledger;
  const auto res = expander_decomposition(g, prm, rng, ledger);
  const auto report = verify_decomposition(g, res, prm.epsilon,
                                           res.schedule.phi_final());
  EXPECT_TRUE(report.is_partition);
  EXPECT_TRUE(report.cut_within_epsilon)
      << "cut fraction " << report.cut_fraction;
  // Most pairs from different blocks should be separated.
  std::size_t cross_same = 0;
  std::size_t cross_total = 0;
  for (VertexId u = 0; u < 120; u += 7) {
    for (VertexId v = u + 1; v < 120; v += 11) {
      if (u / 40 != v / 40) {
        ++cross_total;
        cross_same += (res.component[u] == res.component[v]);
      }
    }
  }
  EXPECT_LT(cross_same, cross_total / 2);
}

TEST(Decomposition, RemoveBudgetsTracked) {
  Rng rng(9);
  const Graph g = gen::clique_chain(10, 8);
  DecompositionParams prm;
  prm.epsilon = 0.4;
  prm.k = 1;
  congest::RoundLedger ledger;
  const auto res = expander_decomposition(g, prm, rng, ledger);
  std::uint64_t marked = 0;
  for (char c : res.removed_edge) marked += c;
  EXPECT_EQ(marked, res.total_removed());
  // Every removed edge was charged to exactly one reason.
  EXPECT_EQ(res.total_removed(),
            res.removed_by[0] + res.removed_by[1] + res.removed_by[2]);
}

TEST(Decomposition, DegreesNeverChange) {
  // The central invariant: removals substitute self-loops, so the live view
  // at the end preserves every ambient degree.
  Rng rng(10);
  const Graph g = gen::dumbbell_expanders(25, 25, 4, 2, rng);
  DecompositionParams prm;
  prm.epsilon = 0.3;
  prm.k = 1;
  congest::RoundLedger ledger;
  const auto res = expander_decomposition(g, prm, rng, ledger);
  const LiveSubgraph live =
      live_subgraph(g, res.removed_edge, VertexSet::all(g.num_vertices()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(live.graph.degree(v), g.degree(v));
  }
}

TEST(Decomposition, HandlesDisconnectedInputAndIsolatedVertices) {
  GraphBuilder b(12);
  for (VertexId i = 0; i < 5; ++i) {
    for (VertexId j = i + 1; j < 5; ++j) b.add_edge(i, j);
  }
  for (VertexId i = 5; i < 10; ++i) {
    for (VertexId j = i + 1; j < 10; ++j) b.add_edge(i, j);
  }
  // Vertices 10, 11 isolated.
  const Graph g = b.build();
  Rng rng(11);
  DecompositionParams prm;
  prm.epsilon = 0.3;
  prm.k = 1;
  congest::RoundLedger ledger;
  const auto res = expander_decomposition(g, prm, rng, ledger);
  const auto report =
      verify_decomposition(g, res, prm.epsilon, res.schedule.phi_final());
  EXPECT_TRUE(report.is_partition);
  EXPECT_GE(res.num_components, 4u);  // 2 cliques + 2 isolated
  EXPECT_NE(res.component[0], res.component[5]);
  EXPECT_NE(res.component[10], res.component[11]);
}

TEST(Decomposition, EpsilonKnobControlsCutBudget) {
  // Tighter epsilon must never produce a looser cut fraction bound; check
  // the measured fractions are both within their budgets.
  Rng r1(12), r2(12);
  const Graph g = gen::planted_partition(100, 2, 0.3, 0.02, r1);
  congest::RoundLedger l1, l2;
  DecompositionParams tight;
  tight.epsilon = 0.1;
  tight.k = 1;
  DecompositionParams loose;
  loose.epsilon = 0.5;
  loose.k = 1;
  const auto res_tight = expander_decomposition(g, tight, r1, l1);
  const auto res_loose = expander_decomposition(g, loose, r2, l2);
  const auto rep_tight =
      verify_decomposition(g, res_tight, tight.epsilon, 0.0);
  const auto rep_loose =
      verify_decomposition(g, res_loose, loose.epsilon, 0.0);
  EXPECT_TRUE(rep_tight.cut_within_epsilon)
      << "tight fraction " << rep_tight.cut_fraction;
  EXPECT_TRUE(rep_loose.cut_within_epsilon)
      << "loose fraction " << rep_loose.cut_fraction;
}

TEST(BackendSelection, ParseAndToStringRoundTrip) {
  EXPECT_EQ(parse_decomposition_backend("nibble"), DecompositionBackend::kNibble);
  EXPECT_EQ(parse_decomposition_backend("simple-parallel"),
            DecompositionBackend::kSimpleParallel);
  EXPECT_STREQ(to_string(DecompositionBackend::kNibble), "nibble");
  EXPECT_STREQ(to_string(DecompositionBackend::kSimpleParallel),
               "simple-parallel");
  for (const char* name : {"nibble", "simple-parallel"}) {
    EXPECT_STREQ(to_string(parse_decomposition_backend(name)), name);
  }
}

TEST(BackendSelection, UnknownNameIsATypedError) {
  EXPECT_THROW((void)parse_decomposition_backend("nibble2"), CheckError);
  EXPECT_THROW((void)parse_decomposition_backend(""), CheckError);
  try {
    (void)parse_decomposition_backend("simple_parallel");  // underscore typo
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("simple_parallel"), std::string::npos)
        << e.what();
  }
}

TEST(BackendSelection, DefaultIsNibbleAndResultEchoesTheChoice) {
  DecompositionParams prm;
  EXPECT_EQ(prm.backend, DecompositionBackend::kNibble);

  Rng grng(12);
  const Graph g = gen::planted_partition(100, 2, 0.3, 0.02, grng);
  for (const auto backend :
       {DecompositionBackend::kNibble, DecompositionBackend::kSimpleParallel}) {
    prm.epsilon = 0.3;
    prm.k = 1;
    prm.backend = backend;
    Rng rng(5);
    congest::RoundLedger ledger;
    const auto res = expander_decomposition(g, prm, rng, ledger);
    EXPECT_EQ(res.backend, backend) << to_string(backend);
    EXPECT_GT(res.phi_guarantee, 0.0) << to_string(backend);
  }
}

}  // namespace
}  // namespace xd::expander

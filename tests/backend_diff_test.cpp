#include "expander/cross_check.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "congest/ledger.hpp"
#include "corpus.hpp"
#include "expander/decomposition.hpp"
#include "expander/verify.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace xd::expander {
namespace {

DecompositionParams harness_params() {
  DecompositionParams prm;
  prm.epsilon = 0.3;
  prm.k = 2;
  prm.phi0_override = 0.05;
  return prm;
}

// The tentpole: both backends over the whole corpus, each held to the
// Theorem 1 contract it states itself (verify.cpp oracles against its own
// phi_guarantee, inter-component edges <= εm, bit-identical outputs at
// 1/2/8 scheduler threads, rounds within the charged budget).  A failure
// message names the graph and every violated clause.
TEST(BackendDiff, FullCorpusHoldsTheTheorem1Contract) {
  for (const auto& entry : corpus::default_corpus()) {
    SCOPED_TRACE(entry.name);
    const Graph g = entry.make();
    const CrossCheckReport report =
        cross_check_backends(g, harness_params(), /*seed=*/5);
    EXPECT_TRUE(report.ok()) << entry.name << ": " << report.summary();
  }
}

// Differential agreement on planted structure: the SBM's four communities
// are separated by both backends (they need not agree on the exact
// partition -- they run different machinery -- but neither may merge the
// planted blocks away or shatter them into noise).
TEST(BackendDiff, BothBackendsSeparateThePlantedBlocks) {
  Graph g;
  for (const auto& entry : corpus::default_corpus()) {
    if (entry.family == "sbm") g = entry.make();
  }
  ASSERT_GT(g.num_vertices(), 0u);
  const CrossCheckReport report =
      cross_check_backends(g, harness_params(), /*seed=*/5);
  ASSERT_TRUE(report.ok()) << report.summary();
  for (const auto* obs : {&report.nibble, &report.simple_parallel}) {
    EXPECT_GE(obs->result.num_components, 4u) << to_string(obs->backend);
    EXPECT_LE(obs->result.num_components, 16u) << to_string(obs->backend);
  }
}

// What the new backend adds beyond a second opinion: its εm budget is
// enforced at the merge barrier, so even a hostile (epsilon, graph) pair
// -- a grid at ε = 0.02, where recursive bisection wants far more than
// ⌊ε·|E|⌋ removals -- stays within budget unconditionally, trading
// conductance quality (phi_guarantee drops to the schedule floor) instead
// of breaking the cut bound.
TEST(BackendDiff, SimpleParallelEnforcesTheCutBudgetUnconditionally) {
  const Graph g = gen::grid(12, 12);
  DecompositionParams prm = harness_params();
  prm.epsilon = 0.02;
  prm.backend = DecompositionBackend::kSimpleParallel;
  Rng rng(5);
  congest::RoundLedger ledger;
  const DecompositionResult res = expander_decomposition(g, prm, rng, ledger);
  const auto budget =
      static_cast<std::uint64_t>(prm.epsilon *
                                 static_cast<double>(g.num_edges()));
  EXPECT_LE(res.total_removed(), budget);
  EXPECT_GT(res.guard_finalized, 0u);
  const VerificationReport report =
      verify_decomposition(g, res, prm.epsilon, res.phi_guarantee);
  EXPECT_TRUE(report.ok()) << "cut_fraction=" << report.cut_fraction
                           << " min_phi=" << report.min_conductance_lower;
}

// The scheduled accounting is never charged more than the sequential sum,
// and the budget formula itself stays meaningfully above real runs (a
// budget that just barely passes would page someone on every perf wiggle).
TEST(BackendDiff, RoundAccountingStaysWithinBudgetWithHeadroom) {
  const Graph g = corpus::topology("expander");
  const CrossCheckReport report =
      cross_check_backends(g, harness_params(), /*seed=*/5);
  ASSERT_TRUE(report.ok()) << report.summary();
  const std::uint64_t budget =
      theorem1_round_budget(g.num_vertices(), g.num_edges());
  for (const auto* obs : {&report.nibble, &report.simple_parallel}) {
    EXPECT_LE(obs->result.rounds, budget / 4) << to_string(obs->backend);
    EXPECT_LE(obs->scheduled_rounds, obs->result.rounds)
        << to_string(obs->backend);
  }
}

// The fingerprint the golden suite pins is sensitive to every field it
// claims to cover: a single flipped label, overlay bit, or removal count
// changes it.
TEST(BackendDiff, FingerprintIsSensitiveToEveryPinnedField) {
  const Graph g = corpus::topology("expander");
  DecompositionParams prm = harness_params();
  prm.backend = DecompositionBackend::kSimpleParallel;
  Rng rng(5);
  congest::RoundLedger ledger;
  const DecompositionResult base = expander_decomposition(g, prm, rng, ledger);
  const std::uint64_t fp = partition_fingerprint(base);

  DecompositionResult mutated = base;
  mutated.component[0] ^= 1u;
  EXPECT_NE(partition_fingerprint(mutated), fp);
  mutated = base;
  mutated.removed_edge[0] = !mutated.removed_edge[0];
  EXPECT_NE(partition_fingerprint(mutated), fp);
  mutated = base;
  ++mutated.removed_by[static_cast<int>(RemoveReason::kSparseCut)];
  EXPECT_NE(partition_fingerprint(mutated), fp);
  mutated = base;
  ++mutated.num_components;
  EXPECT_NE(partition_fingerprint(mutated), fp);
}

}  // namespace
}  // namespace xd::expander

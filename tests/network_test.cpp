#include "congest/network.hpp"

#include <gtest/gtest.h>

#include "congest/clique.hpp"
#include "graph/generators.hpp"
#include "util/check.hpp"

namespace xd::congest {
namespace {

TEST(Network, DeliversAlongEdges) {
  Rng rng(1);
  const Graph g = gen::path(3);  // 0-1-2
  RoundLedger ledger;
  Network net(g, ledger);

  net.send_to(0, 1, Message{7, 42});
  net.send_to(2, 1, Message{8, 43});
  const auto rounds = net.exchange("test");
  EXPECT_EQ(rounds, 1u);

  auto in = net.inbox(1);
  ASSERT_EQ(in.size(), 2u);
  EXPECT_EQ(ledger.rounds(), 1u);
  EXPECT_EQ(ledger.messages(), 2u);
  bool saw0 = false;
  bool saw2 = false;
  for (const auto& env : in) {
    if (env.from == 0) {
      saw0 = true;
      EXPECT_EQ(env.msg.words[0], 42u);
    }
    if (env.from == 2) {
      saw2 = true;
      EXPECT_EQ(env.msg.tag, 8u);
    }
  }
  EXPECT_TRUE(saw0 && saw2);
}

TEST(Network, RejectsNonEdgeSend) {
  const Graph g = gen::path(3);
  RoundLedger ledger;
  Network net(g, ledger);
  EXPECT_THROW(net.send_to(0, 2, Message{}), CheckError);
}

TEST(Network, RejectsSelfLoopSlot) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  b.add_loops(0, 1);
  const Graph g = b.build();
  RoundLedger ledger;
  Network net(g, ledger);
  // Find the loop slot of 0 and try to send on it.
  auto nbrs = g.neighbors(0);
  for (std::uint32_t slot = 0; slot < nbrs.size(); ++slot) {
    if (nbrs[slot] == 0) {
      EXPECT_THROW(net.send(0, slot, Message{}), CheckError);
    }
  }
}

TEST(Network, CongestionChargesMultipleRounds) {
  // 3 messages multiplexed on one directed edge -> 3 rounds.
  const Graph g = gen::path(2);
  RoundLedger ledger;
  Network net(g, ledger);
  for (int i = 0; i < 3; ++i) net.send_to(0, 1, Message{0, std::uint64_t(i)});
  const auto rounds = net.exchange("congested");
  EXPECT_EQ(rounds, 3u);
  EXPECT_EQ(net.inbox(1).size(), 3u);
  EXPECT_EQ(ledger.rounds_for("congested"), 3u);
}

TEST(Network, OppositeDirectionsDoNotCollide) {
  const Graph g = gen::path(2);
  RoundLedger ledger;
  Network net(g, ledger);
  net.send_to(0, 1, Message{});
  net.send_to(1, 0, Message{});
  EXPECT_EQ(net.exchange("duplex"), 1u);
}

TEST(Network, EmptyExchangeChargesOneRound) {
  const Graph g = gen::path(2);
  RoundLedger ledger;
  Network net(g, ledger);
  EXPECT_EQ(net.exchange("idle"), 1u);
  EXPECT_EQ(ledger.messages(), 0u);
}

TEST(Network, ExchangeChargingValidatesCongestion) {
  const Graph g = gen::path(2);
  RoundLedger ledger;
  Network net(g, ledger);
  for (int i = 0; i < 5; ++i) net.send_to(0, 1, Message{});
  EXPECT_THROW(net.exchange_charging("underdeclared", 2), CheckError);
}

TEST(Network, ExchangeChargingUsesOverride) {
  const Graph g = gen::path(2);
  RoundLedger ledger;
  Network net(g, ledger);
  net.send_to(0, 1, Message{});
  EXPECT_EQ(net.exchange_charging("pipelined", 10), 10u);
  EXPECT_EQ(ledger.rounds(), 10u);
}

TEST(Network, InboxClearedBetweenExchanges) {
  const Graph g = gen::path(2);
  RoundLedger ledger;
  Network net(g, ledger);
  net.send_to(0, 1, Message{});
  net.exchange("a");
  EXPECT_EQ(net.inbox(1).size(), 1u);
  net.exchange("b");
  EXPECT_EQ(net.inbox(1).size(), 0u);
}

TEST(Network, PerVertexRngIsDeterministic) {
  const Graph g = gen::path(3);
  RoundLedger l1, l2;
  Network a(g, l1, 5);
  Network b(g, l2, 5);
  EXPECT_EQ(a.rng(1)(), b.rng(1)());
}

TEST(Network, TickChargesIdleRounds) {
  const Graph g = gen::path(2);
  RoundLedger ledger;
  Network net(g, ledger);
  net.tick(17, "waiting");
  EXPECT_EQ(ledger.rounds(), 17u);
}

TEST(RoundLedger, BreakdownAndReport) {
  RoundLedger ledger;
  ledger.charge(5, "phase-a");
  ledger.charge(3, "phase-b");
  ledger.charge(2, "phase-a");
  EXPECT_EQ(ledger.rounds(), 10u);
  EXPECT_EQ(ledger.rounds_for("phase-a"), 7u);
  EXPECT_EQ(ledger.rounds_for("missing"), 0u);
  EXPECT_NE(ledger.report().find("phase-a"), std::string::npos);
  ledger.reset();
  EXPECT_EQ(ledger.rounds(), 0u);
}

TEST(CliqueNetwork, AllToAllDelivery) {
  RoundLedger ledger;
  CliqueNetwork net(4, ledger);
  // Vertex 0 sends to everyone -- non-neighbors in a sparse graph, but the
  // clique model allows it.
  for (VertexId v = 1; v < 4; ++v) net.send(0, v, Message{1, v});
  EXPECT_EQ(net.exchange("spread"), 1u);
  for (VertexId v = 1; v < 4; ++v) {
    ASSERT_EQ(net.inbox(v).size(), 1u);
    EXPECT_EQ(net.inbox(v)[0].msg.words[0], v);
  }
}

TEST(CliqueNetwork, PairCongestionCharges) {
  RoundLedger ledger;
  CliqueNetwork net(3, ledger);
  for (int i = 0; i < 4; ++i) net.send(0, 1, Message{});
  EXPECT_EQ(net.exchange("pair"), 4u);
}

TEST(CliqueNetwork, RejectsSelfSend) {
  RoundLedger ledger;
  CliqueNetwork net(3, ledger);
  EXPECT_THROW(net.send(1, 1, Message{}), CheckError);
}

TEST(Network, SortedFastPathPrefetchStaysInBoundsOnTailHeavyReceiver) {
  // Regression for the delivery fast path's write-ahead prefetch: with all
  // traffic landing in the LAST vertex's inbox, that receiver's scatter
  // cursor reaches the arena end while the loop is still hinting ahead, so
  // an unclamped &arena_[cursor] would index past the allocation.  Staging
  // by ascending sender keeps the slots sorted (the fast path runs); the
  // CI ASan job executes this test to police the bound.
  constexpr std::size_t kSenders = 64;
  GraphBuilder b(kSenders + 1);
  for (VertexId v = 0; v < kSenders; ++v) {
    b.add_edge(v, static_cast<VertexId>(kSenders));
  }
  const Graph g = b.build();
  RoundLedger ledger;
  Network net(g, ledger);
  net.set_shards(1);  // pin the shared-arena fast path under XD_SHARDS too
  for (VertexId v = 0; v < kSenders; ++v) {
    net.send_to(v, static_cast<VertexId>(kSenders), Message{1, v});
  }
  EXPECT_EQ(net.exchange("tail"), 1u);
  const auto inbox = net.inbox(static_cast<VertexId>(kSenders));
  ASSERT_EQ(inbox.size(), kSenders);
  for (std::size_t i = 0; i < kSenders; ++i) {
    EXPECT_EQ(inbox[i].from, i);
    EXPECT_EQ(inbox[i].msg.words[0], i);
  }
}

TEST(Message, DoubleRoundTrip) {
  Message m;
  m.set_double(0, 3.14159);
  m.set_double(1, -2.5e-9);
  EXPECT_DOUBLE_EQ(m.get_double(0), 3.14159);
  EXPECT_DOUBLE_EQ(m.get_double(1), -2.5e-9);
}

}  // namespace
}  // namespace xd::congest

#include "graph/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace xd {
namespace {

TEST(Metrics, VolumeAndCut) {
  const Graph g = gen::cycle(6);
  const VertexSet s{0, 1, 2};
  EXPECT_EQ(volume(g, s), 6u);
  EXPECT_EQ(cut_size(g, s), 2u);
  EXPECT_DOUBLE_EQ(conductance(g, s), 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(balance(g, s), 0.5);
}

TEST(Metrics, LoopsDoNotCrossCuts) {
  GraphBuilder b(2);
  b.add_edge(0, 1).add_loops(0, 5);
  const Graph g = b.build();
  EXPECT_EQ(cut_size(g, VertexSet{0}), 1u);
}

TEST(Metrics, ConductanceInfinityForTrivialCut) {
  const Graph g = gen::cycle(4);
  EXPECT_TRUE(std::isinf(conductance(g, VertexSet{})));
}

TEST(Metrics, ExactConductanceOfCycleAndClique) {
  // Cycle C_n: optimal cut is an arc of n/2, conductance 2/(n/2 * 2) = 2/n.
  const Graph c8 = gen::cycle(8);
  EXPECT_NEAR(conductance_exact(c8), 2.0 / 8.0, 1e-12);

  // K_n: conductance = ceil(n/2)*floor(n/2) / (floor(n/2)*(n-1)).
  const Graph k6 = gen::complete(6);
  EXPECT_NEAR(conductance_exact(k6), 9.0 / 15.0, 1e-12);
}

TEST(Metrics, MostBalancedCutExactOnBarbell) {
  const Graph g = gen::barbell(4);  // two K4 joined by an edge
  const auto cut = most_balanced_cut_exact(g, 0.2);
  ASSERT_TRUE(cut.has_value());
  EXPECT_NEAR(balance(g, *cut), 0.5, 0.03);
  EXPECT_LE(conductance(g, *cut), 0.2);
}

TEST(Metrics, MostBalancedCutAbsentWhenExpanding) {
  const Graph g = gen::complete(8);
  EXPECT_FALSE(most_balanced_cut_exact(g, 0.05).has_value());
}

TEST(Metrics, BfsDistancesOnPath) {
  const Graph g = gen::path(5);
  const auto d = bfs_distances(g, 0);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(d[v], v);
}

TEST(Metrics, BfsUnreachableIsMax) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const auto d = bfs_distances(b.build(), 0);
  EXPECT_EQ(d[2], std::numeric_limits<std::uint32_t>::max());
}

TEST(Metrics, DiameterDoubleSweepMatchesExactOnTrees) {
  const Graph g = gen::binary_tree(4);
  EXPECT_EQ(diameter_double_sweep(g), diameter_exact(g));
}

TEST(Metrics, TrianglesOfCompleteGraph) {
  const Graph g = gen::complete(6);
  EXPECT_EQ(triangle_count_exact(g), 20u);  // C(6,3)
  const auto tris = triangles_exact(g);
  EXPECT_EQ(tris.size(), 20u);
  for (const auto& t : tris) {
    EXPECT_LT(t[0], t[1]);
    EXPECT_LT(t[1], t[2]);
  }
}

TEST(Metrics, TriangleFreeGraphs) {
  EXPECT_EQ(triangle_count_exact(gen::cycle(8)), 0u);
  EXPECT_EQ(triangle_count_exact(gen::grid(4, 4)), 0u);
  EXPECT_EQ(triangle_count_exact(gen::hypercube(4)), 0u);
}

TEST(Metrics, TriangleCountIgnoresLoops) {
  GraphBuilder b(3);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2).add_loops(0, 4);
  EXPECT_EQ(triangle_count_exact(b.build()), 1u);
}

TEST(Metrics, TriangleCountGnpMatchesExpectation) {
  Rng rng(11);
  const Graph g = gen::gnp(60, 0.3, rng);
  // E[triangles] = C(60,3) p^3 ~ 924. Just sanity-check the order.
  const auto count = triangle_count_exact(g);
  EXPECT_GT(count, 500u);
  EXPECT_LT(count, 1600u);
}

TEST(Io, EdgeListRoundTrip) {
  Rng rng(12);
  const Graph g = gen::gnp(20, 0.3, rng);
  std::stringstream ss;
  write_edge_list(g, ss);
  const Graph h = read_edge_list(ss);
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(g.edge(e), h.edge(e));
  }
}

TEST(Io, RejectsTruncatedInput) {
  std::stringstream ss("3 2\n0 1\n");
  EXPECT_THROW((void)read_edge_list(ss), CheckError);
}

}  // namespace
}  // namespace xd

#include "congest/shard_plane.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "congest/ledger.hpp"
#include "congest/network.hpp"
#include "corpus.hpp"
#include "graph/generators.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace xd::congest {
namespace {

using corpus::topology;

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

/// A deliberately messy multi-round program: descending-slot sends (defeats
/// the per-buffer sorted fast path), same-slot re-sends (congestion > 1),
/// silent vertices, and a per-vertex fold hash over full envelope contents
/// (sender, tag, payload) so any reorder or loss flips the fingerprint.
struct Chatter final : VertexProgram {
  explicit Chatter(const Graph& g) : g(&g), acc(g.num_vertices(), 0) {}

  const Graph* g;
  int round = 0;
  std::vector<std::uint64_t> acc;

  void on_send(VertexId v, Outbox& out) override {
    if (v % 3 == 2) return;
    const auto nbrs = g->neighbors(v);
    for (std::uint32_t s = static_cast<std::uint32_t>(nbrs.size()); s-- > 0;) {
      if (nbrs[s] == v) continue;
      out.send(s, Message{static_cast<std::uint32_t>(round),
                          (std::uint64_t{v} << 32) | s, v + 1});
      if (s == 0 && round % 2 == 0) out.send(s, Message{7, v});
    }
  }

  void on_receive(VertexId v, std::span<const Envelope> inbox) override {
    for (const Envelope& e : inbox) {
      acc[v] = mix(acc[v], e.from);
      acc[v] = mix(acc[v], e.msg.tag);
      acc[v] = mix(acc[v], e.msg.words[0]);
      acc[v] = mix(acc[v], e.msg.words[1]);
    }
  }
};

struct RunResult {
  std::vector<std::uint64_t> acc;
  std::vector<std::uint64_t> rounds_per_step;
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;

  friend bool operator==(const RunResult&, const RunResult&) = default;
};

RunResult run_chatter(const Graph& g, int shards, int threads) {
  RoundLedger ledger;
  Network net(g, ledger, /*seed=*/7);
  net.set_shards(shards);
  net.set_threads(threads);
  Chatter program(g);
  RunResult r;
  for (program.round = 0; program.round < 4; ++program.round) {
    r.rounds_per_step.push_back(net.run_round(program, "chatter"));
  }
  r.acc = program.acc;
  r.rounds = ledger.rounds();
  r.messages = ledger.messages();
  return r;
}

// The tentpole conformance grid: inbox fold hashes, per-step round charges
// (max congestion), and ledger totals must be bit-identical to the serial
// shared-arena run at every shards x threads combination.
TEST(ShardConformance, GridMatchesSharedArenaOnAllTopologies) {
  for (const char* name : {"expander", "dumbbell", "star"}) {
    SCOPED_TRACE(name);
    const Graph g = topology(name);
    const RunResult baseline = run_chatter(g, /*shards=*/1, /*threads=*/1);
    EXPECT_GT(baseline.messages, 0u);
    for (const int shards : {1, 2, 4, 8}) {
      for (const int threads : {1, 2, 8}) {
        SCOPED_TRACE("shards=" + std::to_string(shards) +
                     " threads=" + std::to_string(threads));
        EXPECT_EQ(run_chatter(g, shards, threads), baseline);
      }
    }
  }
}

// Direct send()/send_to() staging (no VertexProgram) routes straight into
// the sender shard's aggregation buffers: contents, order, and round charges
// must match the shared arena, including same-slot re-send ties staged out
// of order.
TEST(ShardConformance, DirectExchangeMatchesSharedArena) {
  const Graph g = topology("gnp-medium");
  const auto stage_all = [&](Network& net) {
    for (VertexId v = g.num_vertices(); v-- > 0;) {
      const auto nbrs = g.neighbors(v);
      for (std::uint32_t s = 0; s < nbrs.size(); ++s) {
        if (nbrs[s] == v) continue;
        net.send(v, s, Message{s, v});
        if (v % 5 == 0) net.send_to(v, nbrs[s], Message{99, v});
      }
    }
  };
  RoundLedger shared_ledger;
  Network shared(g, shared_ledger);
  shared.set_shards(1);
  stage_all(shared);
  const std::uint64_t shared_rounds = shared.exchange("direct");

  for (const int shards : {2, 4, 8}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    RoundLedger ledger;
    Network net(g, ledger);
    net.set_shards(shards);
    net.set_threads(4);
    stage_all(net);
    EXPECT_EQ(net.exchange("direct"), shared_rounds);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const auto a = shared.inbox(v);
      const auto b = net.inbox(v);
      ASSERT_EQ(a.size(), b.size()) << "vertex " << v;
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].from, b[i].from) << "vertex " << v << " msg " << i;
        EXPECT_EQ(a[i].msg, b[i].msg) << "vertex " << v << " msg " << i;
      }
    }
    EXPECT_EQ(ledger.rounds(), shared_ledger.rounds());
    EXPECT_EQ(ledger.messages(), shared_ledger.messages());
  }
}

// Direct sends staged before a run_round must precede the send phase's
// messages on the same slot (the shared path's tiebreak), sharded or not.
TEST(ShardConformance, DirectSendsPrecedeProgramStagingOnSlotTies) {
  const Graph g = gen::path(2);
  auto run = [&](int shards) {
    RoundLedger ledger;
    Network net(g, ledger);
    net.set_shards(shards);
    net.send_to(0, 1, Message{1, 100});
    auto program = make_program(
        [](VertexId v, Outbox& out) {
          if (v == 0) {
            out.send_to(1, Message{2, 200});
            out.send_to(1, Message{3, 300});
          }
        },
        [](VertexId, std::span<const Envelope>) {});
    const std::uint64_t rounds = net.run_round(program, "ties");
    EXPECT_EQ(rounds, 3u);
    std::vector<std::uint32_t> tags;
    for (const Envelope& e : net.inbox(1)) tags.push_back(e.msg.tag);
    return tags;
  };
  const std::vector<std::uint32_t> want{1, 2, 3};
  EXPECT_EQ(run(1), want);
  EXPECT_EQ(run(2), want);
}

TEST(ShardConformance, EmptyExchangeChargesOneRoundAndOverridesHold) {
  const Graph g = gen::star(9);
  RoundLedger ledger;
  Network net(g, ledger);
  net.set_shards(4);
  EXPECT_EQ(net.exchange("idle"), 1u);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_TRUE(net.inbox(v).empty());
  }
  // Congestion 2 under an override of 5 charges 5; an override below the
  // congestion is rejected, same as the shared path.
  net.send_to(1, 0, Message{1, 1});
  net.send_to(1, 0, Message{2, 2});
  EXPECT_EQ(net.exchange_charging("override", 5), 5u);
  net.send_to(1, 0, Message{1, 1});
  net.send_to(1, 0, Message{2, 2});
  net.send_to(1, 0, Message{3, 3});
  EXPECT_THROW((void)net.exchange_charging("override", 2), CheckError);
}

TEST(ShardPlaneUnit, PartitionIsContiguousAndCoversAllVertices) {
  const Graph g = gen::star(11);  // n = 11, not divisible by 4
  ShardPlane plane;
  plane.configure(g, 4);
  std::size_t covered = 0;
  std::size_t prev_hi = 0;
  for (int s = 0; s < 4; ++s) {
    const auto [lo, hi] = plane.shard_range(s);
    EXPECT_EQ(lo, prev_hi);
    for (std::size_t v = lo; v < hi; ++v) {
      EXPECT_EQ(plane.shard_of(static_cast<VertexId>(v)), s);
    }
    covered += hi - lo;
    prev_hi = hi;
  }
  EXPECT_EQ(covered, g.num_vertices());
  EXPECT_EQ(prev_hi, g.num_vertices());
}

TEST(ShardPlaneUnit, RejectsInvalidShardCountsAndPendingTraffic) {
  const Graph g = gen::star(5);
  RoundLedger ledger;
  Network net(g, ledger);
  EXPECT_THROW(net.set_shards(0), CheckError);
  EXPECT_THROW(net.set_shards(-2), CheckError);
  net.send_to(1, 0, Message{1, 1});
  EXPECT_THROW(net.set_shards(4), CheckError);
  (void)net.exchange("drain");
  net.set_shards(4);
  EXPECT_EQ(net.shards(), 4);
  net.set_shards(1);
  EXPECT_EQ(net.shards(), 1);
}

TEST(ShardPlaneUnit, DeliveryStatsAccountEveryMessage) {
  Rng rng(3);
  const Graph g = gen::random_regular(64, 4, rng);
  RoundLedger ledger;
  Network net(g, ledger);
  net.set_shards(4);
  net.set_threads(4);
  std::size_t sent = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    for (std::uint32_t s = 0; s < nbrs.size(); ++s) {
      if (nbrs[s] == v) continue;
      net.send(v, s, Message{1, v});
      ++sent;
    }
  }
  EXPECT_EQ(net.staged(), sent);
  (void)net.exchange("flood");
  const ShardDeliveryStats& st = net.shard_delivery_stats();
  ASSERT_EQ(st.shard.size(), 4u);
  std::uint64_t received = 0;
  for (const auto& s : st.shard) received += s.received;
  EXPECT_EQ(received, sent);
  EXPECT_EQ(st.staged, sent);
  EXPECT_GE(st.max_congestion, 1u);
  EXPECT_EQ(net.staged(), 0u);
}

TEST(ShardWire, BufferRoundTrip) {
  detail::StagingBuffer buf;
  buf.push(17, 3, Message{1, 0xdeadbeefull, 42});
  buf.push(17, 3, Message{2, 7});
  buf.push(901, 12, Message{3, 0xffffffffffffffffull, 1});
  const std::vector<unsigned char> bytes =
      encode_shard_buffer(3, 5, buf, /*seq=*/77);
  EXPECT_EQ(bytes.size(), 40u + 28u * buf.size());

  std::uint32_t sender = 0;
  std::uint32_t dest = 0;
  std::uint64_t seq = 0;
  detail::StagingBuffer back;
  back.push(999, 999, Message{9, 9});  // decode must clear stale contents
  decode_shard_buffer(bytes, &sender, &dest, &back, &seq);
  EXPECT_EQ(sender, 3u);
  EXPECT_EQ(dest, 5u);
  EXPECT_EQ(seq, 77u);
  ASSERT_EQ(back.size(), buf.size());
  for (std::size_t i = 0; i < buf.size(); ++i) {
    EXPECT_EQ(back.slot[i], buf.slot[i]);
    EXPECT_EQ(back.from[i], buf.from[i]);
    EXPECT_EQ(back.msg[i], buf.msg[i]);
  }
}

// A version-1 frame -- 24-byte header, no sequence number or CRC -- must
// still decode (reported as seq 0): prepared buffer dumps from before the
// v2 format stay readable.
TEST(ShardWire, DecodesLegacyV1Frames) {
  detail::StagingBuffer buf;
  buf.push(5, 2, Message{4, 11, 12});
  std::vector<unsigned char> v1;
  const auto put32 = [&v1](std::uint32_t v) {
    for (int b = 0; b < 4; ++b) {
      v1.push_back(static_cast<unsigned char>(v >> (8 * b)));
    }
  };
  const auto put64 = [&v1](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      v1.push_back(static_cast<unsigned char>(v >> (8 * b)));
    }
  };
  put32(kShardBufferMagic);
  put32(kShardBufferLegacyVersion);
  put32(1);  // sender
  put32(2);  // dest
  put64(buf.size());
  for (std::size_t i = 0; i < buf.size(); ++i) {
    put32(buf.slot[i]);
    put32(buf.from[i]);
    put32(buf.msg[i].tag);
    put64(buf.msg[i].words[0]);
    put64(buf.msg[i].words[1]);
  }
  std::uint32_t sender = 0;
  std::uint32_t dest = 0;
  std::uint64_t seq = 99;
  detail::StagingBuffer back;
  decode_shard_buffer(v1, &sender, &dest, &back, &seq);
  EXPECT_EQ(sender, 1u);
  EXPECT_EQ(dest, 2u);
  EXPECT_EQ(seq, 0u);
  ASSERT_EQ(back.size(), buf.size());
  EXPECT_EQ(back.slot[0], buf.slot[0]);
  EXPECT_EQ(back.msg[0], buf.msg[0]);
}

// Any single flipped bit in a v2 frame -- header or payload -- must fail
// the CRC (or a structural check) and be rejected; try_decode reports it
// without throwing.
TEST(ShardWire, CrcCatchesEveryBitFlip) {
  detail::StagingBuffer buf;
  buf.push(9, 4, Message{2, 0x123456789abcdef0ull, 3});
  buf.push(10, 4, Message{5, 6});
  const std::vector<unsigned char> bytes = encode_shard_buffer(1, 2, buf, 13);
  std::uint32_t sender = 0;
  std::uint32_t dest = 0;
  detail::StagingBuffer out;
  ASSERT_TRUE(try_decode_shard_buffer(bytes, &sender, &dest, &out));
  for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
    std::vector<unsigned char> damaged = bytes;
    damaged[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
    EXPECT_FALSE(try_decode_shard_buffer(damaged, &sender, &dest, &out))
        << "flip of bit " << bit << " went undetected";
    EXPECT_THROW(decode_shard_buffer(damaged, &sender, &dest, &out),
                 CheckError);
  }
}

TEST(ShardWire, RejectsMalformedBuffers) {
  detail::StagingBuffer buf;
  buf.push(1, 0, Message{1, 1});
  std::vector<unsigned char> bytes = encode_shard_buffer(0, 1, buf);
  std::uint32_t sender = 0;
  std::uint32_t dest = 0;
  detail::StagingBuffer out;

  std::vector<unsigned char> truncated(bytes.begin(), bytes.end() - 4);
  EXPECT_THROW(decode_shard_buffer(truncated, &sender, &dest, &out),
               CheckError);
  std::vector<unsigned char> short_header(bytes.begin(), bytes.begin() + 10);
  EXPECT_THROW(decode_shard_buffer(short_header, &sender, &dest, &out),
               CheckError);
  std::vector<unsigned char> bad_magic = bytes;
  bad_magic[0] ^= 0xff;
  EXPECT_THROW(decode_shard_buffer(bad_magic, &sender, &dest, &out),
               CheckError);
  std::vector<unsigned char> bad_version = bytes;
  bad_version[4] ^= 0xff;
  EXPECT_THROW(decode_shard_buffer(bad_version, &sender, &dest, &out),
               CheckError);
}

TEST(ShardCount, ParserRejectsGarbageLoudly) {
  EXPECT_EQ(parse_shard_count("1"), 1);
  EXPECT_EQ(parse_shard_count("8"), 8);
  EXPECT_EQ(parse_shard_count(" 16 "), 16);
  EXPECT_THROW((void)parse_shard_count("0"), CheckError);
  EXPECT_THROW((void)parse_shard_count("-4"), CheckError);
  EXPECT_THROW((void)parse_shard_count(""), CheckError);
  EXPECT_THROW((void)parse_shard_count("four"), CheckError);
  EXPECT_THROW((void)parse_shard_count("4x"), CheckError);
  EXPECT_THROW((void)parse_shard_count("4.5"), CheckError);
  EXPECT_THROW((void)parse_shard_count("99999999999999999999"), CheckError);
  EXPECT_THROW((void)parse_shard_count("1048577"), CheckError);  // > 2^20
  EXPECT_THROW((void)parse_shard_count(nullptr), CheckError);
}

// A garbage XD_SHARDS value must fail Network construction loudly, not run
// silently unsharded.
TEST(ShardCount, NetworkCtorRejectsGarbageEnv) {
  const char* saved = std::getenv("XD_SHARDS");
  const std::string restore = saved != nullptr ? saved : "";
  const Graph g = gen::star(5);
  RoundLedger ledger;
  ::setenv("XD_SHARDS", "bogus", 1);
  EXPECT_THROW((Network{g, ledger}), CheckError);
  ::setenv("XD_SHARDS", "0", 1);
  EXPECT_THROW((Network{g, ledger}), CheckError);
  ::setenv("XD_SHARDS", "2", 1);
  {
    Network net(g, ledger);
    EXPECT_EQ(net.shards(), 2);
  }
  if (saved != nullptr) {
    ::setenv("XD_SHARDS", restore.c_str(), 1);
  } else {
    ::unsetenv("XD_SHARDS");
  }
}

}  // namespace
}  // namespace xd::congest

#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/check.hpp"

namespace xd {
namespace {

TEST(GraphBuilder, TriangleBasics) {
  GraphBuilder b(3);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2);
  const Graph g = b.build();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.num_loops(), 0u);
  EXPECT_EQ(g.volume(), 6u);
  for (VertexId v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 0));
}

TEST(GraphBuilder, SelfLoopCountsOnceInDegree) {
  // Paper, §1: "each self loop of v contributes 1 in the calculation of
  // deg(v)".
  GraphBuilder b(2);
  b.add_edge(0, 1);
  b.add_loops(0, 3);
  const Graph g = b.build();
  EXPECT_EQ(g.degree(0), 4u);  // 1 real + 3 loops
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.num_loops(), 3u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.loops_at(0), 3u);
  EXPECT_EQ(g.loops_at(1), 0u);
  EXPECT_EQ(g.volume(), 5u);
}

TEST(GraphBuilder, RejectsParallelEdges) {
  GraphBuilder b(3);
  b.add_edge(0, 1).add_edge(1, 0);
  EXPECT_THROW((void)b.build(), CheckError);
}

TEST(GraphBuilder, AllowsParallelWhenAsked) {
  GraphBuilder b(3, /*allow_parallel=*/true);
  b.add_edge(0, 1).add_edge(1, 0);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(0), 2u);
}

TEST(GraphBuilder, RejectsOutOfRangeVertex) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(0, 2), CheckError);
}

TEST(Graph, EdgeEndpointsAndIds) {
  GraphBuilder b(4);
  b.add_edge(0, 1).add_edge(2, 3);
  const Graph g = b.build();
  const auto [u0, v0] = g.edge(0);
  EXPECT_EQ(u0, 0u);
  EXPECT_EQ(v0, 1u);
  EXPECT_FALSE(g.is_loop(0));

  // Each non-loop edge id appears in exactly two incidence lists.
  int appearances = 0;
  for (VertexId v = 0; v < 4; ++v) {
    for (EdgeId e : g.incident_edges(v)) appearances += (e == 0);
  }
  EXPECT_EQ(appearances, 2);
}

TEST(Graph, NeighborsOfLoopVertexIncludeSelf) {
  GraphBuilder b(1);
  b.add_loops(0, 2);
  const Graph g = b.build();
  auto nbrs = g.neighbors(0);
  EXPECT_EQ(nbrs.size(), 2u);
  EXPECT_EQ(nbrs[0], 0u);
  EXPECT_TRUE(g.is_loop(0));
}

TEST(Graph, SlotBasePartitionsSlots) {
  GraphBuilder b(3);
  b.add_edge(0, 1).add_edge(1, 2);
  const Graph g = b.build();
  EXPECT_EQ(g.slot_base(0), 0u);
  EXPECT_EQ(g.slot_base(1), 1u);
  EXPECT_EQ(g.slot_base(2), 3u);
}

TEST(Graph, MaxDegree) {
  GraphBuilder b(4);
  b.add_edge(0, 1).add_edge(0, 2).add_edge(0, 3);
  EXPECT_EQ(b.build().max_degree(), 3u);
}

TEST(Graph, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.volume(), 0u);
}

TEST(Graph, VolumeIdentity) {
  // volume == 2 * nonloop + loops.
  GraphBuilder b(5);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(3, 4).add_loops(2, 2);
  const Graph g = b.build();
  EXPECT_EQ(g.volume(), 2 * g.num_nonloop_edges() + g.num_loops());
}

TEST(Graph, HasEdgeMatchesAdjacencyScan) {
  // has_edge now binary-searches the sorted-neighbor index (shared with
  // slot_of); it must agree with a plain adjacency scan everywhere,
  // including with self-loops and parallel edges present.
  GraphBuilder b(8, /*allow_parallel=*/true);
  b.add_edge(0, 1).add_edge(0, 1).add_edge(1, 2).add_edge(2, 5);
  b.add_edge(3, 4).add_loops(2, 2).add_edge(6, 0);
  const Graph g = b.build();
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (u == v) continue;
      const auto nbrs = g.neighbors(u);
      const bool scan = std::find(nbrs.begin(), nbrs.end(), v) != nbrs.end();
      EXPECT_EQ(g.has_edge(u, v), scan) << "u=" << u << " v=" << v;
      EXPECT_EQ(g.has_edge(u, v), g.slot_of(u, v) != Graph::kNoSlot);
    }
  }
}

TEST(Graph, HasEdgeIsLogarithmic) {
  // On a star, probing through the hub must stay O(log deg): has_edge picks
  // the leaf side (degree 1), and even hub-side slot_of is a binary search.
  const std::size_t n = 1 << 12;
  GraphBuilder b(n);
  for (VertexId v = 1; v < n; ++v) b.add_edge(0, v);
  const Graph g = b.build();
  std::uint64_t probes = 0;
  EXPECT_NE(g.slot_of(0, static_cast<VertexId>(n - 1), &probes),
            Graph::kNoSlot);
  EXPECT_LE(probes, 16u);  // ~log2(4095) + 1
  EXPECT_TRUE(g.has_edge(0, 5));
  EXPECT_FALSE(g.has_edge(1, 2));
}

TEST(GraphBuilder, TotalBuildsCounterAdvances) {
  const std::uint64_t before = GraphBuilder::total_builds();
  GraphBuilder b(2);
  b.add_edge(0, 1);
  (void)b.build();
  (void)b.build();
  EXPECT_EQ(GraphBuilder::total_builds(), before + 2);
}

}  // namespace
}  // namespace xd

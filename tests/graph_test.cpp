#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/check.hpp"

namespace xd {
namespace {

TEST(GraphBuilder, TriangleBasics) {
  GraphBuilder b(3);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2);
  const Graph g = b.build();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.num_loops(), 0u);
  EXPECT_EQ(g.volume(), 6u);
  for (VertexId v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 0));
}

TEST(GraphBuilder, SelfLoopCountsOnceInDegree) {
  // Paper, §1: "each self loop of v contributes 1 in the calculation of
  // deg(v)".
  GraphBuilder b(2);
  b.add_edge(0, 1);
  b.add_loops(0, 3);
  const Graph g = b.build();
  EXPECT_EQ(g.degree(0), 4u);  // 1 real + 3 loops
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.num_loops(), 3u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.loops_at(0), 3u);
  EXPECT_EQ(g.loops_at(1), 0u);
  EXPECT_EQ(g.volume(), 5u);
}

TEST(GraphBuilder, RejectsParallelEdges) {
  GraphBuilder b(3);
  b.add_edge(0, 1).add_edge(1, 0);
  EXPECT_THROW((void)b.build(), CheckError);
}

TEST(GraphBuilder, AllowsParallelWhenAsked) {
  GraphBuilder b(3, /*allow_parallel=*/true);
  b.add_edge(0, 1).add_edge(1, 0);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(0), 2u);
}

TEST(GraphBuilder, RejectsOutOfRangeVertex) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(0, 2), CheckError);
}

TEST(Graph, EdgeEndpointsAndIds) {
  GraphBuilder b(4);
  b.add_edge(0, 1).add_edge(2, 3);
  const Graph g = b.build();
  const auto [u0, v0] = g.edge(0);
  EXPECT_EQ(u0, 0u);
  EXPECT_EQ(v0, 1u);
  EXPECT_FALSE(g.is_loop(0));

  // Each non-loop edge id appears in exactly two incidence lists.
  int appearances = 0;
  for (VertexId v = 0; v < 4; ++v) {
    for (EdgeId e : g.incident_edges(v)) appearances += (e == 0);
  }
  EXPECT_EQ(appearances, 2);
}

TEST(Graph, NeighborsOfLoopVertexIncludeSelf) {
  GraphBuilder b(1);
  b.add_loops(0, 2);
  const Graph g = b.build();
  auto nbrs = g.neighbors(0);
  EXPECT_EQ(nbrs.size(), 2u);
  EXPECT_EQ(nbrs[0], 0u);
  EXPECT_TRUE(g.is_loop(0));
}

TEST(Graph, SlotBasePartitionsSlots) {
  GraphBuilder b(3);
  b.add_edge(0, 1).add_edge(1, 2);
  const Graph g = b.build();
  EXPECT_EQ(g.slot_base(0), 0u);
  EXPECT_EQ(g.slot_base(1), 1u);
  EXPECT_EQ(g.slot_base(2), 3u);
}

TEST(Graph, MaxDegree) {
  GraphBuilder b(4);
  b.add_edge(0, 1).add_edge(0, 2).add_edge(0, 3);
  EXPECT_EQ(b.build().max_degree(), 3u);
}

TEST(Graph, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.volume(), 0u);
}

TEST(Graph, VolumeIdentity) {
  // volume == 2 * nonloop + loops.
  GraphBuilder b(5);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(3, 4).add_loops(2, 2);
  const Graph g = b.build();
  EXPECT_EQ(g.volume(), 2 * g.num_nonloop_edges() + g.num_loops());
}

}  // namespace
}  // namespace xd

#include "serve/artifact.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "triangle/enumerate.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace xd::serve {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::uint64_t mix(std::uint64_t h, std::uint64_t x) {
  h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

/// The golden enumeration fixture (golden_test.cpp): gnp(60, 0.2, Rng(31)),
/// TreeRouter backend, build seed 17.
Graph golden_graph() {
  Rng rng(31);
  return gen::gnp(60, 0.2, rng);
}

PrepareParams golden_params(int scheduler_threads) {
  PrepareParams prm;
  prm.enumerate.backend = triangle::RouterBackend::kTree;
  prm.enumerate.scheduler_threads = scheduler_threads;
  return prm;
}

std::uint64_t triangle_hash(const PreparedArtifact& art) {
  std::uint64_t h = 0;
  for (const auto& t : art.triangles) {
    h = mix(h, t[0]);
    h = mix(h, t[1]);
    h = mix(h, t[2]);
  }
  return h;
}

std::vector<unsigned char> read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  return {std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path,
                const std::vector<unsigned char>& bytes) {
  std::ofstream os(path, std::ios::binary);
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
}

template <typename T>
void patch(std::vector<unsigned char>& bytes, std::size_t offset, T value) {
  ASSERT_LE(offset + sizeof(T), bytes.size());
  std::memcpy(bytes.data() + offset, &value, sizeof(T));
}

template <typename T>
T peek(const std::vector<unsigned char>& bytes, std::size_t offset) {
  T v{};
  std::memcpy(&v, bytes.data() + offset, sizeof(T));
  return v;
}

constexpr std::size_t kHeader = 32;
constexpr std::size_t kEntry = 24;

std::size_t section_offset(const std::vector<unsigned char>& bytes,
                           std::size_t s) {
  return static_cast<std::size_t>(
      peek<std::uint64_t>(bytes, kHeader + s * kEntry + 8));
}

std::size_t section_size(const std::vector<unsigned char>& bytes,
                         std::size_t s) {
  return static_cast<std::size_t>(
      peek<std::uint64_t>(bytes, kHeader + s * kEntry + 16));
}

/// Small deterministic fixture with triangles and two far-apart regions: a
/// K5 bridged to a 5-path.
Graph small_graph() {
  GraphBuilder b(10);
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) b.add_edge(u, v);
  }
  for (VertexId v = 5; v < 9; ++v) b.add_edge(v, v + 1);
  b.add_edge(4, 5);
  return b.build();
}

// ------------------------------------------------------ golden conformance

TEST(Artifact, PrepareMatchesGoldenPinsAtEveryThreadCount) {
  const Graph g = golden_graph();
  PreparedArtifact base;
  bool have_base = false;
  for (const int threads : {0, 1, 2, 8}) {
    const auto art = prepare_artifact(g, golden_params(threads));
    // The golden enumeration pins carry through the prepare pipeline
    // unchanged: prepare draws the enumeration stream from a fresh
    // Rng(seed), exactly like a direct enumerate_congest call.
    EXPECT_EQ(art.triangles.size(), 240u) << "threads=" << threads;
    EXPECT_EQ(triangle_hash(art), 2309664143457515940ULL)
        << "threads=" << threads;
    EXPECT_EQ(art.enum_rounds, 3445u) << "threads=" << threads;
    EXPECT_EQ(art.seed, 17u);
    if (!have_base) {
      base = art;
      have_base = true;
      continue;
    }
    // Thread count shapes wall-clock only: every captured structure is
    // bit-identical (build_rounds excepted -- sequential execution sums
    // rounds where the scheduler charges per-epoch maxima).
    EXPECT_EQ(art.component, base.component) << "threads=" << threads;
    EXPECT_EQ(art.removed_edge, base.removed_edge) << "threads=" << threads;
    EXPECT_EQ(art.num_components, base.num_components);
    EXPECT_EQ(art.relay_parent, base.relay_parent) << "threads=" << threads;
    EXPECT_EQ(art.relay_depth, base.relay_depth) << "threads=" << threads;
    EXPECT_EQ(art.portals, base.portals) << "threads=" << threads;
    EXPECT_EQ(art.triangles, base.triangles) << "threads=" << threads;
    EXPECT_EQ(art.build_messages, base.build_messages)
        << "threads=" << threads;
  }
}

TEST(Artifact, ReloadedArtifactKeepsTheGoldenPins) {
  const auto art = prepare_artifact(golden_graph(), golden_params(0));
  const std::string path = tmp_path("golden.xda");
  save_artifact(art, path);
  const auto back = load_artifact(path);
  EXPECT_EQ(back.triangles.size(), 240u);
  EXPECT_EQ(triangle_hash(back), 2309664143457515940ULL);
  EXPECT_EQ(back.enum_rounds, 3445u);
  EXPECT_EQ(back.component, art.component);
  EXPECT_EQ(back.build_rounds, art.build_rounds);
}

// ------------------------------------------------------------- round trip

TEST(Artifact, SaveLoadSaveIsByteStable) {
  const auto art = prepare_artifact(golden_graph(), golden_params(0));
  const std::string p1 = tmp_path("rt1.xda");
  const std::string p2 = tmp_path("rt2.xda");
  save_artifact(art, p1);
  const auto back = load_artifact(p1);
  save_artifact(back, p2);
  EXPECT_EQ(read_file(p1), read_file(p2));
}

TEST(Artifact, RoundTripPreservesEveryField) {
  const auto art = prepare_artifact(small_graph(), golden_params(0));
  const std::string path = tmp_path("small.xda");
  save_artifact(art, path);
  const auto back = load_artifact(path);
  EXPECT_EQ(back.graph.num_vertices(), art.graph.num_vertices());
  EXPECT_EQ(back.graph.num_edges(), art.graph.num_edges());
  for (EdgeId e = 0; e < art.graph.num_edges(); ++e) {
    EXPECT_EQ(back.graph.edge(e), art.graph.edge(e));
  }
  EXPECT_EQ(back.component, art.component);
  EXPECT_EQ(back.num_components, art.num_components);
  EXPECT_EQ(back.removed_edge, art.removed_edge);
  for (int r = 0; r < 3; ++r) EXPECT_EQ(back.removed_by[r], art.removed_by[r]);
  ASSERT_EQ(back.components.size(), art.components.size());
  for (std::size_t c = 0; c < art.components.size(); ++c) {
    EXPECT_EQ(back.components[c].root, art.components[c].root);
    EXPECT_EQ(back.components[c].size, art.components[c].size);
    EXPECT_EQ(back.components[c].volume, art.components[c].volume);
    EXPECT_EQ(back.components[c].cut, art.components[c].cut);
    EXPECT_EQ(back.components[c].internal_edges,
              art.components[c].internal_edges);
    EXPECT_EQ(back.components[c].conductance, art.components[c].conductance);
    EXPECT_EQ(back.components[c].balance, art.components[c].balance);
    EXPECT_EQ(back.components[c].height, art.components[c].height);
    EXPECT_EQ(back.components[c].beta, art.components[c].beta);
  }
  EXPECT_EQ(back.router_depth, art.router_depth);
  EXPECT_EQ(back.relay_parent, art.relay_parent);
  EXPECT_EQ(back.relay_depth, art.relay_depth);
  EXPECT_EQ(back.portals, art.portals);
  EXPECT_EQ(back.triangles, art.triangles);
  EXPECT_EQ(back.epsilon, art.epsilon);
  EXPECT_EQ(back.k, art.k);
  EXPECT_EQ(back.phi0, art.phi0);
  EXPECT_EQ(back.backend, art.backend);
  EXPECT_EQ(back.decomp_backend, art.decomp_backend);
  EXPECT_EQ(back.seed, art.seed);
  EXPECT_EQ(back.build_rounds, art.build_rounds);
  EXPECT_EQ(back.build_messages, art.build_messages);
  EXPECT_EQ(back.enum_rounds, art.enum_rounds);
  EXPECT_EQ(back.router_queries, art.router_queries);
  EXPECT_EQ(back.enum_levels, art.enum_levels);
  EXPECT_EQ(back.clusters_processed, art.clusters_processed);
  // The derived incidence index is rebuilt on load.
  EXPECT_EQ(back.tri_offsets, art.tri_offsets);
  EXPECT_EQ(back.tri_ids, art.tri_ids);
}

TEST(Artifact, DecompositionBackendRoundTripsThroughMeta) {
  // The selector lands in the META section's once-reserved slot: a
  // simple-parallel build reloads as simple-parallel, a default build
  // reloads as nibble (and stays byte-compatible with legacy files whose
  // slot was always zero).
  PrepareParams prm = golden_params(0);
  prm.decomp_backend = expander::DecompositionBackend::kSimpleParallel;
  const auto art = prepare_artifact(small_graph(), prm);
  EXPECT_EQ(art.decomp_backend, 1);
  const std::string path = tmp_path("backend.xda");
  save_artifact(art, path);
  const auto back = load_artifact(path);
  EXPECT_EQ(back.decomp_backend, 1);
  EXPECT_STREQ(expander::to_string(static_cast<expander::DecompositionBackend>(
                   back.decomp_backend)),
               "simple-parallel");

  const auto def = prepare_artifact(small_graph(), golden_params(0));
  EXPECT_EQ(def.decomp_backend, 0);
  EXPECT_STREQ(expander::to_string(static_cast<expander::DecompositionBackend>(
                   def.decomp_backend)),
               "nibble");
}

// ------------------------------------------------------------ query layer

TEST(Artifact, TriangleQueriesMatchTheTupleList) {
  const auto art = prepare_artifact(golden_graph(), golden_params(0));
  std::size_t incidences = 0;
  for (VertexId v = 0; v < art.graph.num_vertices(); ++v) {
    const auto span = art.triangles_of(v);
    incidences += span.size();
    for (const std::uint32_t id : span) {
      const auto& t = art.triangles[id];
      EXPECT_TRUE(t[0] == v || t[1] == v || t[2] == v);
    }
  }
  EXPECT_EQ(incidences, 3 * art.triangles.size());
  for (const auto& t : art.triangles) {
    EXPECT_TRUE(art.has_triangle(t[0], t[1], t[2]));
    EXPECT_TRUE(art.has_triangle(t[2], t[0], t[1]));  // order-insensitive
  }
  EXPECT_FALSE(art.has_triangle(0, 0, 1));  // degenerate triples never list
}

TEST(Artifact, RelayPathsWalkTheForest) {
  const auto art = prepare_artifact(small_graph(), golden_params(0));
  for (VertexId u = 0; u < art.graph.num_vertices(); ++u) {
    for (VertexId v = 0; v < art.graph.num_vertices(); ++v) {
      std::vector<VertexId> path;
      const bool ok = art.relay_path(u, v, path);
      if (art.component_of(u) != art.component_of(v)) {
        EXPECT_FALSE(ok);
        continue;
      }
      if (!ok) continue;  // fragmented component: disjoint relay trees
      ASSERT_FALSE(path.empty());
      EXPECT_EQ(path.front(), u);
      EXPECT_EQ(path.back(), v);
      // Every hop is a parent link of the relay forest.
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const VertexId x = path[i];
        const VertexId y = path[i + 1];
        EXPECT_TRUE(art.relay_parent[x] == y || art.relay_parent[y] == x)
            << u << "->" << v << " hop " << i;
      }
    }
  }
}

// -------------------------------------------------------- malformed files

class ArtifactReject : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto art = prepare_artifact(small_graph(), golden_params(0));
    ASSERT_GT(art.triangles.size(), 0u);  // the grid patches TRIS entries
    path_ = tmp_path("reject.xda");
    save_artifact(art, path_);
    bytes_ = read_file(path_);
    n_ = art.graph.num_vertices();
    m_ = art.graph.num_edges();
  }

  void expect_reject(const std::vector<unsigned char>& bytes,
                     const char* what) {
    const std::string p = tmp_path("reject_mut.xda");
    write_file(p, bytes);
    EXPECT_THROW((void)load_artifact(p), CheckError) << what;
  }

  std::string path_;
  std::vector<unsigned char> bytes_;
  std::size_t n_ = 0;
  std::size_t m_ = 0;
};

TEST_F(ArtifactReject, MissingFile) {
  EXPECT_THROW((void)load_artifact(tmp_path("no_such.xda")), CheckError);
}

TEST_F(ArtifactReject, TruncatedHeader) {
  auto b = bytes_;
  b.resize(16);
  expect_reject(b, "16-byte file");
  b.clear();
  expect_reject(b, "empty file");
}

TEST_F(ArtifactReject, BadMagic) {
  auto b = bytes_;
  patch<std::uint32_t>(b, 0, 0xdeadbeefu);
  expect_reject(b, "magic");
}

TEST_F(ArtifactReject, BadVersion) {
  auto b = bytes_;
  patch<std::uint32_t>(b, 4, kArtifactVersion + 1);
  expect_reject(b, "version");
}

TEST_F(ArtifactReject, BadSectionCount) {
  auto b = bytes_;
  patch<std::uint64_t>(b, 8, 7);
  expect_reject(b, "section count");
}

TEST_F(ArtifactReject, TruncatedFile) {
  auto b = bytes_;
  ASSERT_GT(b.size(), kHeader);
  b.resize(b.size() - 1);  // header file_size no longer matches
  expect_reject(b, "truncation");
}

TEST_F(ArtifactReject, WrongSectionTag) {
  auto b = bytes_;
  patch<std::uint32_t>(b, kHeader + 2 * kEntry, 0x21212121u);
  expect_reject(b, "tag");
}

TEST_F(ArtifactReject, NonContiguousSections) {
  auto b = bytes_;
  patch<std::uint64_t>(b, kHeader + 1 * kEntry + 8,
                       section_offset(b, 1) + 8);
  expect_reject(b, "offset gap");
}

TEST_F(ArtifactReject, SectionOverrunsFile) {
  auto b = bytes_;
  patch<std::uint64_t>(b, kHeader + 5 * kEntry + 16, section_size(b, 5) + 8);
  expect_reject(b, "overrun");
}

TEST_F(ArtifactReject, TrailingBytes) {
  auto b = bytes_;
  b.insert(b.end(), 4, 0);
  patch<std::uint64_t>(b, 16, b.size());
  expect_reject(b, "trailing bytes");
}

TEST_F(ArtifactReject, GraphEdgeOutOfRange) {
  auto b = bytes_;
  patch<std::uint32_t>(b, section_offset(b, 0) + 16, 0xfffffff0u);
  expect_reject(b, "edge endpoint");
}

TEST_F(ArtifactReject, GraphEdgeCountMismatch) {
  auto b = bytes_;
  patch<std::uint64_t>(b, section_offset(b, 0) + 8, m_ + 1);
  expect_reject(b, "edge count");
}

TEST_F(ArtifactReject, ComponentLabelOutOfRange) {
  auto b = bytes_;
  patch<std::uint32_t>(b, section_offset(b, 1) + 32, 0xffffffffu);
  expect_reject(b, "component label");
}

TEST_F(ArtifactReject, RemovedFlagNotBoolean) {
  auto b = bytes_;
  patch<std::uint8_t>(b, section_offset(b, 1) + 32 + 4 * n_, 2);
  expect_reject(b, "removed flag");
}

TEST_F(ArtifactReject, ComponentSizesDontSum) {
  auto b = bytes_;
  const std::size_t off = section_offset(b, 2) + 4;  // first size field
  patch<std::uint32_t>(b, off, peek<std::uint32_t>(b, off) + 1);
  expect_reject(b, "size sum");
}

TEST_F(ArtifactReject, ZeroRouterDepth) {
  auto b = bytes_;
  patch<std::uint32_t>(b, section_offset(b, 3), 0);
  expect_reject(b, "depth 0");
}

TEST_F(ArtifactReject, RelayParentOutOfRange) {
  auto b = bytes_;
  patch<std::uint32_t>(b, section_offset(b, 3) + 8, 0xffffffffu);
  expect_reject(b, "relay parent");
}

TEST_F(ArtifactReject, RelayDepthInconsistent) {
  auto b = bytes_;
  const std::size_t depth0 = section_offset(b, 3) + 8 + 4 * n_;
  patch<std::uint32_t>(b, depth0, peek<std::uint32_t>(b, depth0) + 5);
  expect_reject(b, "relay depth");
}

TEST_F(ArtifactReject, TrianglesNotSorted) {
  auto b = bytes_;
  patch<std::uint32_t>(b, section_offset(b, 4) + 8, 0xfffffff0u);
  expect_reject(b, "triangle order");
}

TEST_F(ArtifactReject, UnknownDecompositionBackend) {
  auto b = bytes_;
  // Zero the whole-file checksum first (legacy "no checksum" sentinel) so
  // the META range check itself fires, not the CRC mismatch.
  patch<std::uint64_t>(b, 24, 0);
  patch<std::uint32_t>(b, section_offset(b, 5) + 68, 7u);
  expect_reject(b, "decomposition backend");
}

TEST_F(ArtifactReject, MetaSizeWrong) {
  auto b = bytes_;
  patch<std::uint64_t>(b, kHeader + 5 * kEntry + 16, section_size(b, 5) - 8);
  patch<std::uint64_t>(b, 16, b.size() - 8);
  b.resize(b.size() - 8);
  expect_reject(b, "meta size");
}

}  // namespace
}  // namespace xd::serve

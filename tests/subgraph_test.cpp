#include "graph/subgraph.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace xd {
namespace {

TEST(VertexSet, BasicOps) {
  const VertexSet s{3, 1, 2, 2};
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.contains(1));
  EXPECT_FALSE(s.contains(0));

  const VertexSet c = s.complement(5);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_TRUE(c.contains(0));
  EXPECT_TRUE(c.contains(4));

  const VertexSet t{2, 4};
  EXPECT_EQ(s.set_union(t).size(), 4u);
  EXPECT_EQ(s.set_intersection(t), (VertexSet{2}));
  EXPECT_EQ(s.set_difference(t), (VertexSet{1, 3}));
}

TEST(VertexSet, BitmapRoundTrip) {
  const VertexSet s{0, 2};
  const auto mask = s.bitmap(4);
  EXPECT_EQ(mask, (std::vector<char>{1, 0, 1, 0}));
  EXPECT_EQ(VertexSet::from_bitmap(mask), s);
}

TEST(InducedSubgraph, DropsBoundaryEdges) {
  const Graph g = gen::cycle(6);
  const SubgraphMap sub = induced_subgraph(g, VertexSet{0, 1, 2});
  EXPECT_EQ(sub.graph.num_vertices(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 2u);  // 0-1, 1-2 survive
  EXPECT_EQ(sub.graph.num_loops(), 0u);
  EXPECT_EQ(sub.to_parent.size(), 3u);
  EXPECT_EQ(sub.from_parent[5], SubgraphMap::kAbsent);
}

TEST(InducedWithLoops, PreservesDegrees) {
  // G{S} keeps deg(v) for every v in S -- the paper's central invariant.
  const Graph g = gen::cycle(6);
  const VertexSet s{0, 1, 2};
  const SubgraphMap sub = induced_with_loops(g, s);
  for (std::size_t nv = 0; nv < sub.graph.num_vertices(); ++nv) {
    const VertexId pv = sub.to_parent[nv];
    EXPECT_EQ(sub.graph.degree(static_cast<VertexId>(nv)), g.degree(pv));
  }
  // Ends of the arc lost one edge each -> one loop each.
  EXPECT_EQ(sub.graph.num_loops(), 2u);
}

TEST(InducedWithLoops, ConductanceRelation) {
  // Φ(G{S}) <= Φ(G[S]) (paper, §1) -- check on a small graph where both
  // are computable exactly.
  Rng rng(1);
  const Graph g = gen::gnp(12, 0.5, rng);
  const VertexSet s{0, 1, 2, 3, 4, 5, 6};
  const auto with_loops = induced_with_loops(g, s);
  const auto plain = induced_subgraph(g, s);
  const double phi_loops = conductance_exact(with_loops.graph);
  const double phi_plain = conductance_exact(plain.graph);
  EXPECT_LE(phi_loops, phi_plain + 1e-12);
}

TEST(RemoveEdges, AddsLoopsAtBothEndpoints) {
  const Graph g = gen::path(3);  // edges 0: {0,1}, 1: {1,2}
  std::vector<char> removed(g.num_edges(), 0);
  removed[0] = 1;
  const Graph h = remove_edges_with_loops(g, removed);
  EXPECT_EQ(h.num_vertices(), 3u);
  EXPECT_EQ(h.num_edges(), 3u);  // 1 surviving + 2 loops
  EXPECT_EQ(h.num_loops(), 2u);
  // Degrees preserved.
  for (VertexId v = 0; v < 3; ++v) EXPECT_EQ(h.degree(v), g.degree(v));
  EXPECT_EQ(h.loops_at(0), 1u);
  EXPECT_EQ(h.loops_at(1), 1u);
}

TEST(RemoveEdges, RefusesToRemoveLoops) {
  GraphBuilder b(1);
  b.add_loops(0, 1);
  const Graph g = b.build();
  std::vector<char> removed{1};
  EXPECT_THROW((void)remove_edges_with_loops(g, removed), CheckError);
}

TEST(ConnectedComponents, CountsAndLabels) {
  GraphBuilder b(6);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(3, 4);
  const Graph g = b.build();
  auto [comp, count] = connected_components(g);
  EXPECT_EQ(count, 3u);  // {0,1,2}, {3,4}, {5}
  EXPECT_EQ(comp[0], comp[2]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[3], comp[5]);
}

TEST(ComponentSubgraphs, SplitsCorrectly) {
  GraphBuilder b(5);
  b.add_edge(0, 1).add_edge(2, 3).add_edge(3, 4);
  const Graph g = b.build();
  const auto subs = component_subgraphs(g);
  ASSERT_EQ(subs.size(), 2u);
  std::size_t total_vertices = 0;
  std::size_t total_edges = 0;
  for (const auto& sub : subs) {
    total_vertices += sub.graph.num_vertices();
    total_edges += sub.graph.num_edges();
  }
  EXPECT_EQ(total_vertices, 5u);
  EXPECT_EQ(total_edges, 3u);
}

TEST(ComponentSubgraphs, MappingsRoundTrip) {
  GraphBuilder b(4);
  b.add_edge(0, 2).add_edge(1, 3);
  const Graph g = b.build();
  for (const auto& sub : component_subgraphs(g)) {
    for (std::size_t nv = 0; nv < sub.graph.num_vertices(); ++nv) {
      EXPECT_EQ(sub.from_parent[sub.to_parent[nv]], nv);
    }
  }
}

}  // namespace
}  // namespace xd

// Model-conformance suite for the concurrent component scheduler
// (congest/scheduler.hpp + the epoch-batched decomposition driver).
//
// Pins the three contracts the paper's parallel-composition bounds rest on:
//   (a) forked-ledger invariant: a join charges max(branch rounds) and
//       sum(branch messages) -- verified against real decomposition charges
//       recorded per branch before the join;
//   (b) the decomposition output (component ids, removed_edge overlay,
//       removed_by[] counts) is bit-identical between the sequential driver
//       and the concurrent scheduler at 1, 2, and 8 host threads, across
//       the property-test family x size x seed grid;
//   (c) scheduler round totals are <= the sequential ledger's on every
//       grid point (max-per-epoch can never exceed sum-per-epoch).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <tuple>

#include "congest/scheduler.hpp"
#include "core/xd.hpp"
#include "util/check.hpp"

namespace xd {
namespace {

/// Graph family factory keyed by name (mirrors property_test.cpp).
Graph make_family(const std::string& family, std::size_t n, Rng& rng) {
  if (family == "gnp_sparse") {
    return gen::gnp(n, 6.0 / static_cast<double>(n), rng);
  }
  if (family == "gnp_dense") return gen::gnp(n, 0.3, rng);
  if (family == "regular") return gen::random_regular(n - n % 2, 4, rng);
  if (family == "cycle") return gen::cycle(n);
  if (family == "pref") return gen::preferential_attachment(n, 2, rng);
  XD_CHECK_MSG(false, "unknown family " << family);
  return {};
}

using GridParam = std::tuple<std::string, std::size_t, int>;

expander::DecompositionResult run_decomposition(const Graph& g, int seed,
                                                int scheduler_threads,
                                                congest::RoundLedger& ledger) {
  expander::DecompositionParams prm;
  prm.epsilon = 0.3;
  prm.k = 2;
  prm.phi0_override = 0.05;
  prm.scheduler_threads = scheduler_threads;
  Rng rng(static_cast<std::uint64_t>(seed) + 300);
  return expander::expander_decomposition(g, prm, rng, ledger);
}

class SchedulerConformance : public ::testing::TestWithParam<GridParam> {};

TEST_P(SchedulerConformance, BitIdenticalOutputAndBoundedRounds) {
  const auto& [family, n, seed] = GetParam();
  Rng grng(static_cast<std::uint64_t>(seed) + 300);
  const Graph g = make_family(family, n, grng);
  if (g.num_vertices() < 2) return;

  congest::RoundLedger sequential_ledger;
  const auto sequential =
      run_decomposition(g, seed, /*scheduler_threads=*/0, sequential_ledger);

  for (const int threads : {1, 2, 8}) {
    congest::RoundLedger ledger;
    const auto concurrent = run_decomposition(g, seed, threads, ledger);

    // (b) bit-identical outputs at every thread count.
    EXPECT_EQ(concurrent.component, sequential.component)
        << family << " threads=" << threads;
    EXPECT_EQ(concurrent.removed_edge, sequential.removed_edge)
        << family << " threads=" << threads;
    for (int r = 0; r < 3; ++r) {
      EXPECT_EQ(concurrent.removed_by[r], sequential.removed_by[r])
          << family << " threads=" << threads << " reason=" << r;
    }
    EXPECT_EQ(concurrent.num_components, sequential.num_components);
    EXPECT_EQ(concurrent.epochs, sequential.epochs);

    // (c) concurrent components share the clock: max-joined rounds can
    // never exceed the sequentialized sum.
    EXPECT_LE(concurrent.rounds, sequential.rounds)
        << family << " threads=" << threads;
    EXPECT_LE(ledger.rounds(), sequential_ledger.rounds());
    // Messages are work, not time: identical items send identical traffic.
    EXPECT_EQ(ledger.messages(), sequential_ledger.messages());
  }

  // The sequential epoch-driver output is still a valid decomposition
  // (the scheduler refactor must not have cost correctness).
  const auto report = expander::verify_decomposition(
      g, sequential, 0.3, sequential.schedule.phi_final());
  EXPECT_TRUE(report.is_partition) << family;
  EXPECT_TRUE(report.cut_within_epsilon) << family << " cut "
                                         << report.cut_fraction;
}

TEST_P(SchedulerConformance, ForkedLedgerInvariantOnRealCharges) {
  // (a) on every grid point: run the grid decomposition once per forked
  // branch, snapshot each branch's (rounds, messages) at the epoch barrier,
  // and check the join charged exactly max / sum.
  const auto& [family, n, seed] = GetParam();
  Rng grng(static_cast<std::uint64_t>(seed) + 300);
  const Graph g = make_family(family, n, grng);
  if (g.num_vertices() < 2) return;

  congest::RoundLedger root;
  root.charge(3, "prologue");
  const congest::EpochScheduler pool(4);
  constexpr int kBranches = 3;
  std::vector<congest::RoundLedger*> branches;
  for (int b = 0; b < kBranches; ++b) branches.push_back(&root.fork());
  pool.run(kBranches, [&](std::size_t b) {
    // Distinct seeds per branch give genuinely different charge histories.
    run_decomposition(g, seed + static_cast<int>(b), 0, *branches[b]);
  });
  std::uint64_t max_rounds = 0;
  std::uint64_t sum_messages = 0;
  for (const auto* b : branches) {
    max_rounds = std::max(max_rounds, b->rounds());
    sum_messages += b->messages();
  }
  EXPECT_GT(max_rounds, 0u) << family;
  root.join();
  EXPECT_EQ(root.rounds(), 3u + max_rounds) << family;
  EXPECT_EQ(root.messages(), sum_messages) << family;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SchedulerConformance,
    ::testing::Combine(::testing::Values("gnp_sparse", "regular", "cycle",
                                         "pref"),
                       ::testing::Values(64u), ::testing::Values(1, 2, 3)),
    [](const ::testing::TestParamInfo<GridParam>& info) {
      return std::get<0>(info.param) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

class EnumerationConformance : public ::testing::TestWithParam<GridParam> {};

TEST_P(EnumerationConformance, TrianglesBitIdenticalAndRoundsBounded) {
  const auto& [family, n, seed] = GetParam();
  Rng grng(static_cast<std::uint64_t>(seed) + 400);
  const Graph g = make_family(family, n, grng);

  triangle::EnumParams prm;
  congest::RoundLedger seq_ledger;
  Rng seq_rng(seed + 7);
  const auto sequential =
      triangle::enumerate_congest(g, prm, seq_rng, seq_ledger);

  for (const int threads : {1, 2, 8}) {
    triangle::EnumParams cprm = prm;
    cprm.scheduler_threads = threads;
    congest::RoundLedger ledger;
    Rng rng(seed + 7);
    const auto concurrent = triangle::enumerate_congest(g, cprm, rng, ledger);
    EXPECT_EQ(concurrent.triangles, sequential.triangles)
        << family << " threads=" << threads;
    EXPECT_EQ(concurrent.levels, sequential.levels);
    EXPECT_EQ(concurrent.clusters_processed, sequential.clusters_processed);
    EXPECT_LE(concurrent.rounds, sequential.rounds)
        << family << " threads=" << threads;
    EXPECT_EQ(ledger.messages(), seq_ledger.messages());
  }

  // And the enumeration is still exact.
  auto expect = triangles_exact(g);
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(sequential.triangles, expect) << family;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EnumerationConformance,
    ::testing::Combine(::testing::Values("gnp_sparse", "gnp_dense", "pref"),
                       ::testing::Values(40u), ::testing::Values(1, 2)),
    [](const ::testing::TestParamInfo<GridParam>& info) {
      return std::get<0>(info.param) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

TEST(EpochScheduler, RunsEveryItemExactlyOnceAtAnyThreadCount) {
  for (const int threads : {1, 2, 8}) {
    const congest::EpochScheduler pool(threads);
    constexpr std::size_t kItems = 257;
    std::vector<std::atomic<int>> hits(kItems);
    pool.run(kItems, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kItems; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "item " << i << " threads " << threads;
    }
  }
}

TEST(EpochScheduler, ItemResultsIndependentOfThreadCount) {
  // Items writing only their own slot produce identical vectors at every
  // thread count -- the determinism contract callers rely on.
  const auto compute = [](int threads) {
    const congest::EpochScheduler pool(threads);
    std::vector<std::uint64_t> out(100);
    pool.run(out.size(), [&](std::size_t i) {
      Rng rng(i);  // per-item seed split, like the driver's work items
      out[i] = rng() ^ (i * 0x9e3779b97f4a7c15ULL);
    });
    return out;
  };
  const auto serial = compute(1);
  EXPECT_EQ(compute(2), serial);
  EXPECT_EQ(compute(8), serial);
}

TEST(EpochScheduler, WorkerExceptionsPropagate) {
  const congest::EpochScheduler pool(4);
  EXPECT_THROW(
      pool.run(16,
               [](std::size_t i) {
                 if (i == 11) throw std::runtime_error("item failure");
               }),
      std::runtime_error);
}

TEST(EpochScheduler, RunForkedJoinsMaxAndSum) {
  congest::RoundLedger root;
  const congest::EpochScheduler pool(4);
  pool.run_forked(root, 3, [](std::size_t i, congest::RoundLedger& lg) {
    lg.charge(10 * (i + 1), "work");
    lg.count_messages(i + 1);
  });
  EXPECT_EQ(root.forked(), 0u);
  EXPECT_EQ(root.rounds(), 30u);    // max(10, 20, 30)
  EXPECT_EQ(root.messages(), 6u);   // 1 + 2 + 3
}

TEST(EpochScheduler, RunForkedJoinsEvenWhenAnItemThrows) {
  // A throwing item must not leave stale forked children behind: the next
  // epoch's join would silently merge the aborted epoch's branches.
  congest::RoundLedger root;
  const congest::EpochScheduler pool(2);
  EXPECT_THROW(
      pool.run_forked(root, 4,
                      [](std::size_t i, congest::RoundLedger& lg) {
                        lg.charge(5, "partial");
                        if (i == 2) throw std::runtime_error("item failure");
                      }),
      std::runtime_error);
  EXPECT_EQ(root.forked(), 0u);
  const std::uint64_t after_abort = root.rounds();
  // A follow-up epoch accounts exactly its own charges.
  pool.run_forked(root, 2, [](std::size_t, congest::RoundLedger& lg) {
    lg.charge(7, "next");
  });
  EXPECT_EQ(root.rounds(), after_abort + 7u);
}

TEST(EpochScheduler, RejectsNonPositiveThreadCounts) {
  EXPECT_ANY_THROW(congest::EpochScheduler(0));
  EXPECT_ANY_THROW(congest::EpochScheduler(-3));
}

TEST(EpochScheduler, PartialSpawnFailureJoinsAlreadySpawnedWorkers) {
  // std::thread construction failing mid-loop (resource exhaustion) used to
  // destroy the already-spawned, still-joinable threads -- which is
  // std::terminate.  The pool must join the partial pool and surface the
  // spawn error as a normal exception instead.
  struct SpawnFault : std::runtime_error {
    using std::runtime_error::runtime_error;
  };
  congest::detail::set_spawn_fault_hook_for_testing([](int w) {
    if (w == 2) throw SpawnFault("thread construction failed");
  });
  std::atomic<int> completed{0};
  EXPECT_THROW(congest::EpochScheduler::run_partitioned(
                   64, 4,
                   [&](int /*w*/, std::size_t /*lo*/, std::size_t /*hi*/) {
                     completed.fetch_add(1, std::memory_order_relaxed);
                   }),
               SpawnFault);
  congest::detail::set_spawn_fault_hook_for_testing({});
  // Workers 0 and 1 were spawned before the fault and joined before the
  // rethrow: their bodies ran to completion and their effects are visible.
  EXPECT_EQ(completed.load(), 2);
}

}  // namespace
}  // namespace xd

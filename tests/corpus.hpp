#pragma once

/// \file corpus.hpp
/// The seeded graph corpus shared across test suites.
///
/// One registry instead of each suite hand-rolling topologies: the shard
/// conformance grid, the fault-injection chaos grid, and the cross-backend
/// decomposition harness (backend_diff_test) all draw from here, so "the
/// expander", "the dumbbell", and friends mean the same bits everywhere.
/// Generators are pure functions of their (family, size, seed) cell --
/// calling make() twice yields bit-identical graphs, which is what lets
/// golden pins and cross-suite comparisons share fixtures.
///
/// Two surfaces:
///   * topology(name)     -- the named single graphs the message-plane
///     suites have always used (their golden pins depend on these exact
///     seeds; do not touch).
///   * default_corpus()   -- the family x size x seed grid the
///     differential harness sweeps: expanders, dumbbells, grids,
///     power-law, SBM, ring-of-cliques, and an XDG1 round-trip fixture
///     that routes one entry through the binary loader (graph/io.hpp).

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace xd::corpus {

/// The named topologies of the message-plane suites (shard_test's
/// conformance grid, fault_test's chaos grid).  Seeds are load-bearing:
/// the suites' pinned baselines were captured on these exact graphs.
inline Graph topology(const std::string& name) {
  if (name == "expander") {
    Rng rng(19);
    return gen::random_regular(96, 4, rng);
  }
  if (name == "dumbbell") return gen::barbell(20);
  if (name == "star") return gen::star(49);
  if (name == "gnp-small") {
    Rng rng(31);
    return gen::gnp(60, 0.2, rng);
  }
  if (name == "gnp-medium") {
    Rng rng(5);
    return gen::gnp(80, 0.1, rng);
  }
  XD_CHECK_MSG(false, "unknown topology " << name);
  return {};
}

/// One cell of the corpus grid.
struct CorpusEntry {
  std::string family;  ///< generator family ("expander", "grid", ...)
  std::string name;    ///< unique label, e.g. "expander/n96/s19"
  std::uint64_t seed;  ///< generator seed (0 for deterministic families)
  std::function<Graph()> make;
};

/// The differential-harness sweep.  Sizes are chosen so the full grid --
/// two backends x four scheduler settings x verification -- stays a
/// seconds-scale test; bench_expander's E10 covers the 100k point.
inline std::vector<CorpusEntry> default_corpus() {
  std::vector<CorpusEntry> corpus;
  const auto add = [&](std::string family, std::string name,
                       std::uint64_t seed, std::function<Graph()> make) {
    corpus.push_back(CorpusEntry{std::move(family), std::move(name), seed,
                                 std::move(make)});
  };
  add("expander", "expander/n96/s19", 19, [] {
    Rng rng(19);
    return gen::random_regular(96, 4, rng);
  });
  add("expander", "expander/n200/s23", 23, [] {
    Rng rng(23);
    return gen::random_regular(200, 4, rng);
  });
  add("dumbbell", "dumbbell/n120/s7", 7, [] {
    Rng rng(7);
    return gen::dumbbell_expanders(60, 60, 4, 3, rng);
  });
  add("dumbbell", "barbell/k20", 0, [] { return gen::barbell(20); });
  add("grid", "grid/12x12", 0, [] { return gen::grid(12, 12); });
  add("grid", "grid/8x20/wrap", 0, [] { return gen::grid(8, 20, true); });
  add("power-law", "powerlaw/n200/s7", 7, [] {
    Rng rng(7);
    return gen::preferential_attachment(200, 3, rng);
  });
  add("sbm", "sbm/n160b4/s11", 11, [] {
    Rng rng(11);
    return gen::planted_partition(160, 4, 0.35, 0.01, rng);
  });
  add("cliques", "ring-of-cliques/8x12", 0,
      [] { return gen::ring_of_cliques(8, 12); });
  // The XDG1 fixture: a generated expander written through the binary
  // format and read back, so the harness also sweeps a loader-produced
  // CSR (endpoint dedup + degree histogram path, docs/io.md).
  add("xdg1", "xdg1/n128/s41", 41, [] {
    Rng rng(41);
    const Graph g = gen::random_regular(128, 4, rng);
    const std::string path = ::testing::TempDir() + "xd_corpus_n128_s41.xdg";
    write_binary_edge_list_file(g, path);
    return read_binary_edge_list_file(path).graph;
  });
  return corpus;
}

}  // namespace xd::corpus

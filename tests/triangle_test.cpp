#include "triangle/enumerate.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "triangle/baseline_local.hpp"
#include "triangle/clique_dlp.hpp"
#include "util/check.hpp"

namespace xd::triangle {
namespace {

std::vector<Triangle> ground_truth(const Graph& g) {
  auto tris = triangles_exact(g);
  std::sort(tris.begin(), tris.end());
  return tris;
}

TEST(LocalBaseline, ExactOnGnp) {
  Rng rng(1);
  const Graph g = gen::gnp(60, 0.2, rng);
  congest::RoundLedger ledger;
  const auto res = enumerate_local_baseline(g, ledger);
  EXPECT_EQ(res.triangles, ground_truth(g));
  EXPECT_GE(res.rounds, g.max_degree());
}

TEST(LocalBaseline, RoundsScaleWithMaxDegree) {
  const Graph star = gen::star(100);
  congest::RoundLedger ledger;
  const auto res = enumerate_local_baseline(star, ledger);
  EXPECT_TRUE(res.triangles.empty());
  EXPECT_GE(res.rounds, 99u);
}

class DlpExactness : public ::testing::TestWithParam<int> {};

TEST_P(DlpExactness, MatchesGroundTruth) {
  Rng rng(GetParam());
  const Graph g = gen::gnp(70, 0.25, rng);
  congest::RoundLedger ledger;
  const auto res = enumerate_clique_dlp(g, ledger);
  EXPECT_EQ(res.triangles, ground_truth(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DlpExactness, ::testing::Values(1, 2, 3));

TEST(Dlp, DenseRoundsScaleLikeCubeRoot) {
  // On G(n, 1/2) the DLP bound is Θ(n^{1/3}); doubling n should grow
  // rounds by ~2^{1/3} = 1.26, certainly below 2x.
  Rng rng(7);
  const Graph g1 = gen::gnp(64, 0.5, rng);
  const Graph g2 = gen::gnp(128, 0.5, rng);
  congest::RoundLedger l1, l2;
  const auto r1 = enumerate_clique_dlp(g1, l1);
  const auto r2 = enumerate_clique_dlp(g2, l2);
  EXPECT_LT(r2.rounds, r1.rounds * 2);
  EXPECT_GT(r2.rounds, r1.rounds / 2);
}

TEST(Dlp, EmptyAndTinyGraphs) {
  congest::RoundLedger ledger;
  EXPECT_TRUE(enumerate_clique_dlp(gen::path(2), ledger).triangles.empty());
  EXPECT_EQ(enumerate_clique_dlp(gen::complete(3), ledger).triangles.size(), 1u);
}

class CongestEnumExactness : public ::testing::TestWithParam<int> {};

TEST_P(CongestEnumExactness, MatchesGroundTruthOnGnp) {
  Rng rng(GetParam() * 13);
  const Graph g = gen::gnp(60, 0.3, rng);
  congest::RoundLedger ledger;
  EnumParams prm;
  const auto res = enumerate_congest(g, prm, rng, ledger);
  EXPECT_EQ(res.triangles, ground_truth(g));
  EXPECT_GT(res.rounds, 0u);
}

TEST_P(CongestEnumExactness, MatchesGroundTruthOnClusteredGraph) {
  // Clustered graphs force a non-trivial decomposition and a real E*
  // recursion: triangles can straddle clusters.
  Rng rng(GetParam() * 29);
  const Graph g = gen::planted_partition(80, 4, 0.5, 0.05, rng);
  congest::RoundLedger ledger;
  EnumParams prm;
  const auto res = enumerate_congest(g, prm, rng, ledger);
  EXPECT_EQ(res.triangles, ground_truth(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CongestEnumExactness, ::testing::Values(1, 2, 3));

TEST(CongestEnum, DumbbellWithBridgeTriangles) {
  // Bridge edges between the communities form cross-cluster triangles --
  // the E* path must catch them.
  Rng rng(31);
  GraphBuilder b(20);
  // Two K_8s.
  for (VertexId i = 0; i < 8; ++i) {
    for (VertexId j = i + 1; j < 8; ++j) {
      b.add_edge(i, j);
      b.add_edge(10 + i, 10 + j);
    }
  }
  // A cross triangle: 0-10, 0-11, 10-11 already in K8; plus spares 8, 9.
  b.add_edge(0, 10).add_edge(0, 11);
  b.add_edge(8, 9).add_edge(7, 8).add_edge(7, 9);
  const Graph g = b.build();
  congest::RoundLedger ledger;
  EnumParams prm;
  prm.phi0_override = 0.1;
  const auto res = enumerate_congest(g, prm, rng, ledger);
  EXPECT_EQ(res.triangles, ground_truth(g));
  // The cross triangle {0, 10, 11} must be present.
  EXPECT_TRUE(std::binary_search(res.triangles.begin(), res.triangles.end(),
                                 Triangle{0, 10, 11}));
}

TEST(CongestEnum, TreeRouterBackendAgrees) {
  Rng rng(37);
  const Graph g = gen::gnp(50, 0.3, rng);
  congest::RoundLedger ledger;
  EnumParams prm;
  prm.hierarchical_router = false;
  const auto res = enumerate_congest(g, prm, rng, ledger);
  EXPECT_EQ(res.triangles, ground_truth(g));
}

TEST(CongestEnum, TriangleFreeGraphs) {
  Rng rng(41);
  congest::RoundLedger ledger;
  EnumParams prm;
  for (const Graph& g : {gen::cycle(40), gen::grid(6, 6), gen::hypercube(5)}) {
    Rng r(41);
    congest::RoundLedger l;
    EXPECT_TRUE(enumerate_congest(g, prm, r, l).triangles.empty());
  }
}

TEST(CongestEnum, RejectsOversizedEpsilon) {
  Rng rng(43);
  const Graph g = gen::complete(10);
  congest::RoundLedger ledger;
  EnumParams prm;
  prm.epsilon = 0.5;  // CPZ needs <= 1/6
  EXPECT_THROW((void)enumerate_congest(g, prm, rng, ledger), CheckError);
}

TEST(CongestEnum, ReportsDiagnostics) {
  Rng rng(47);
  const Graph g = gen::planted_partition(60, 3, 0.5, 0.05, rng);
  congest::RoundLedger ledger;
  EnumParams prm;
  const auto res = enumerate_congest(g, prm, rng, ledger);
  EXPECT_GE(res.levels, 1);
  EXPECT_GE(res.clusters_processed, 1u);
  EXPECT_EQ(res.rounds, ledger.rounds());
}

}  // namespace
}  // namespace xd::triangle

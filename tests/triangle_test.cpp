#include "triangle/enumerate.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "triangle/baseline_local.hpp"
#include "triangle/clique_dlp.hpp"
#include "triangle/cluster_enum.hpp"
#include "triangle/intersect.hpp"
#include "util/check.hpp"

namespace xd::triangle {
namespace {

std::vector<Triangle> ground_truth(const Graph& g) {
  auto tris = triangles_exact(g);
  std::sort(tris.begin(), tris.end());
  return tris;
}

/// Test double that records the exact demand stream instead of routing --
/// the flat plane must hand the router a bit-identical batch sequence.
class RecordingRouter : public routing::Router {
 public:
  std::uint64_t preprocess() override { return 0; }
  std::uint64_t route(const std::vector<routing::Demand>& demands) override {
    for (const auto& d : demands) log.push_back({d.src, d.dst, d.count});
    ++queries_;
    return 0;
  }
  [[nodiscard]] std::uint64_t queries() const override { return queries_; }

  std::vector<std::tuple<VertexId, VertexId, std::uint32_t>> log;

 private:
  std::uint64_t queries_ = 0;
};

TEST(LocalBaseline, ExactOnGnp) {
  Rng rng(1);
  const Graph g = gen::gnp(60, 0.2, rng);
  congest::RoundLedger ledger;
  const auto res = enumerate_local_baseline(g, ledger);
  EXPECT_EQ(res.triangles, ground_truth(g));
  EXPECT_GE(res.rounds, g.max_degree());
}

TEST(LocalBaseline, RoundsScaleWithMaxDegree) {
  const Graph star = gen::star(100);
  congest::RoundLedger ledger;
  const auto res = enumerate_local_baseline(star, ledger);
  EXPECT_TRUE(res.triangles.empty());
  EXPECT_GE(res.rounds, 99u);
}

class DlpExactness : public ::testing::TestWithParam<int> {};

TEST_P(DlpExactness, MatchesGroundTruth) {
  Rng rng(GetParam());
  const Graph g = gen::gnp(70, 0.25, rng);
  congest::RoundLedger ledger;
  const auto res = enumerate_clique_dlp(g, ledger);
  EXPECT_EQ(res.triangles, ground_truth(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DlpExactness, ::testing::Values(1, 2, 3));

TEST(Dlp, DenseRoundsScaleLikeCubeRoot) {
  // On G(n, 1/2) the DLP bound is Θ(n^{1/3}); doubling n should grow
  // rounds by ~2^{1/3} = 1.26, certainly below 2x.
  Rng rng(7);
  const Graph g1 = gen::gnp(64, 0.5, rng);
  const Graph g2 = gen::gnp(128, 0.5, rng);
  congest::RoundLedger l1, l2;
  const auto r1 = enumerate_clique_dlp(g1, l1);
  const auto r2 = enumerate_clique_dlp(g2, l2);
  EXPECT_LT(r2.rounds, r1.rounds * 2);
  EXPECT_GT(r2.rounds, r1.rounds / 2);
}

TEST(Dlp, EmptyAndTinyGraphs) {
  congest::RoundLedger ledger;
  EXPECT_TRUE(enumerate_clique_dlp(gen::path(2), ledger).triangles.empty());
  EXPECT_EQ(enumerate_clique_dlp(gen::complete(3), ledger).triangles.size(), 1u);
}

class CongestEnumExactness : public ::testing::TestWithParam<int> {};

TEST_P(CongestEnumExactness, MatchesGroundTruthOnGnp) {
  Rng rng(GetParam() * 13);
  const Graph g = gen::gnp(60, 0.3, rng);
  congest::RoundLedger ledger;
  EnumParams prm;
  const auto res = enumerate_congest(g, prm, rng, ledger);
  EXPECT_EQ(res.triangles, ground_truth(g));
  EXPECT_GT(res.rounds, 0u);
}

TEST_P(CongestEnumExactness, MatchesGroundTruthOnClusteredGraph) {
  // Clustered graphs force a non-trivial decomposition and a real E*
  // recursion: triangles can straddle clusters.
  Rng rng(GetParam() * 29);
  const Graph g = gen::planted_partition(80, 4, 0.5, 0.05, rng);
  congest::RoundLedger ledger;
  EnumParams prm;
  const auto res = enumerate_congest(g, prm, rng, ledger);
  EXPECT_EQ(res.triangles, ground_truth(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CongestEnumExactness, ::testing::Values(1, 2, 3));

TEST(CongestEnum, DumbbellWithBridgeTriangles) {
  // Bridge edges between the communities form cross-cluster triangles --
  // the E* path must catch them.
  Rng rng(31);
  GraphBuilder b(20);
  // Two K_8s.
  for (VertexId i = 0; i < 8; ++i) {
    for (VertexId j = i + 1; j < 8; ++j) {
      b.add_edge(i, j);
      b.add_edge(10 + i, 10 + j);
    }
  }
  // A cross triangle: 0-10, 0-11, 10-11 already in K8; plus spares 8, 9.
  b.add_edge(0, 10).add_edge(0, 11);
  b.add_edge(8, 9).add_edge(7, 8).add_edge(7, 9);
  const Graph g = b.build();
  congest::RoundLedger ledger;
  EnumParams prm;
  prm.phi0_override = 0.1;
  const auto res = enumerate_congest(g, prm, rng, ledger);
  EXPECT_EQ(res.triangles, ground_truth(g));
  // The cross triangle {0, 10, 11} must be present.
  EXPECT_TRUE(std::binary_search(res.triangles.begin(), res.triangles.end(),
                                 Triangle{0, 10, 11}));
}

TEST(CongestEnum, TreeRouterBackendAgrees) {
  Rng rng(37);
  const Graph g = gen::gnp(50, 0.3, rng);
  congest::RoundLedger ledger;
  EnumParams prm;
  prm.backend = RouterBackend::kTree;
  const auto res = enumerate_congest(g, prm, rng, ledger);
  EXPECT_EQ(res.triangles, ground_truth(g));
}

TEST(CongestEnum, TriangleFreeGraphs) {
  Rng rng(41);
  congest::RoundLedger ledger;
  EnumParams prm;
  for (const Graph& g : {gen::cycle(40), gen::grid(6, 6), gen::hypercube(5)}) {
    Rng r(41);
    congest::RoundLedger l;
    EXPECT_TRUE(enumerate_congest(g, prm, r, l).triangles.empty());
  }
}

TEST(CongestEnum, RejectsOversizedEpsilon) {
  Rng rng(43);
  const Graph g = gen::complete(10);
  congest::RoundLedger ledger;
  EnumParams prm;
  prm.epsilon = 0.5;  // CPZ needs <= 1/6
  EXPECT_THROW((void)enumerate_congest(g, prm, rng, ledger), CheckError);
}

// Property grid for the flat data plane: random graphs x group counts x
// cluster splits, comparing flat enumerate_cluster against the retained
// seed reference -- identical triangles AND an identical demand stream.
TEST(ClusterEnum, FlatMatchesReferenceAcrossGrid) {
  for (const int seed : {1, 2, 3}) {
    Rng grng(seed * 101);
    const Graph g = gen::gnp(48, 0.25, grng);
    const std::size_t n = g.num_vertices();
    for (const std::uint32_t p : {1u, 2u, 3u, 5u}) {
      std::vector<std::uint32_t> groups(n);
      Rng prng(seed * 7 + p);
      for (VertexId v = 0; v < n; ++v) {
        groups[v] = static_cast<std::uint32_t>(prng.next_below(p));
      }
      for (const std::uint32_t k : {1u, 2u, 3u}) {  // cluster splits
        for (std::uint32_t c = 0; c < k; ++c) {
          std::vector<VertexId> members;
          std::vector<char> in_cluster(n, 0);
          std::vector<VertexId> to_local_vec(n, 0);
          for (VertexId v = 0; v < n; ++v) {
            if (v % k != c) continue;
            in_cluster[v] = 1;
            to_local_vec[v] = static_cast<VertexId>(members.size());
            members.push_back(v);
          }
          std::vector<EdgeId> edge_ids;  // the cluster's E_i
          for (EdgeId e = 0; e < g.num_edges(); ++e) {
            const auto [u, v] = g.edge(e);
            if (u == v) continue;
            if (in_cluster[u] || in_cluster[v]) edge_ids.push_back(e);
          }

          RecordingRouter ref_router;
          const auto ref =
              enumerate_cluster_reference(g, edge_ids, in_cluster, groups, p,
                                          ref_router, to_local_vec, members);

          auto& scratch = TriangleScratch::for_thread();
          scratch.to_local.begin_epoch(n);
          for (std::size_t i = 0; i < members.size(); ++i) {
            scratch.to_local.put(members[i], static_cast<VertexId>(i));
          }
          RecordingRouter flat_router;
          const auto flat = enumerate_cluster(g, edge_ids, groups, p,
                                              flat_router, members, scratch);

          ASSERT_EQ(flat, ref) << "seed=" << seed << " p=" << p << " k=" << k
                               << " c=" << c;
          ASSERT_EQ(flat_router.log, ref_router.log)
              << "seed=" << seed << " p=" << p << " k=" << k << " c=" << c;
          if (k == 1) {
            // One cluster covering everything must enumerate exactly.
            ASSERT_EQ(flat, ground_truth(g)) << "seed=" << seed << " p=" << p;
          }
        }
      }
    }
  }
}

// The arena must serve every cluster from retained storage: after a warmup
// run at this ambient size, a full enumeration performs zero O(n)
// allocations -- every stamped epoch is a reuse hit.
TEST(ClusterEnum, ScratchArenaReusedAcrossClustersAndLevels) {
  // 79 clusters across 2 recursion levels at these seeds -- a real
  // multi-cluster, multi-level workload for the arena.
  const Graph g = gen::clique_chain(40, 7);
  const auto run = [&g] {
    Rng rng(19);
    congest::RoundLedger ledger;
    EnumParams prm;
    return enumerate_congest(g, prm, rng, ledger);
  };

  (void)run();  // warm the calling thread's arena at ambient size n
  const auto warm = TriangleScratch::for_thread().to_local.stats();

  const auto res = run();
  const auto after = TriangleScratch::for_thread().to_local.stats();
  EXPECT_EQ(res.clusters_processed, 79u);
  EXPECT_EQ(res.levels, 2);
  EXPECT_EQ(after.grown - warm.grown, 0u);  // zero per-cluster O(n) allocs
  // Exactly one stamped epoch per enumerated cluster, every one a reuse
  // hit served from the retained slab.
  EXPECT_EQ(after.reused - warm.reused, res.clusters_processed);
  EXPECT_EQ(ground_truth(g).size(), res.triangles.size());
}

// Forced-scalar and dispatched (SIMD) enumeration must be bit-identical --
// same triangles, same order, same round count -- at every scheduler
// thread count (per-thread kernel arenas are thread-disjoint).
TEST(CongestEnum, ForcedScalarBitIdenticalAcrossThreads) {
  const bool saved = intersect::force_scalar();
  Rng grng(51);
  const Graph g = gen::planted_partition(90, 3, 0.6, 0.05, grng);
  for (const int threads : {0, 1, 2, 8}) {
    EnumParams prm;
    prm.scheduler_threads = threads;
    const auto run = [&] {
      Rng rng(23);
      congest::RoundLedger ledger;
      return enumerate_congest(g, prm, rng, ledger);
    };
    intersect::set_force_scalar(false);
    const auto dispatched = run();
    intersect::set_force_scalar(true);
    const auto forced = run();
    EXPECT_EQ(dispatched.triangles, forced.triangles) << "threads=" << threads;
    EXPECT_EQ(dispatched.rounds, forced.rounds) << "threads=" << threads;
    EXPECT_EQ(dispatched.triangles, ground_truth(g)) << "threads=" << threads;
  }
  intersect::set_force_scalar(saved);
}

TEST(CongestEnum, ReportsDiagnostics) {
  Rng rng(47);
  const Graph g = gen::planted_partition(60, 3, 0.5, 0.05, rng);
  congest::RoundLedger ledger;
  EnumParams prm;
  const auto res = enumerate_congest(g, prm, rng, ledger);
  EXPECT_GE(res.levels, 1);
  EXPECT_GE(res.clusters_processed, 1u);
  EXPECT_EQ(res.rounds, ledger.rounds());
}

}  // namespace
}  // namespace xd::triangle

#include "triangle/detect.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/metrics.hpp"

namespace xd::triangle {
namespace {

TEST(Detect, FindsWitnessWhenTrianglesExist) {
  Rng rng(1);
  const Graph g = gen::gnp(50, 0.3, rng);
  ASSERT_GT(triangle_count_exact(g), 0u);
  congest::RoundLedger ledger;
  EnumParams prm;
  const auto res = detect_congest(g, prm, rng, ledger);
  ASSERT_TRUE(res.witness.has_value());
  const auto [a, b, c] = *res.witness;
  EXPECT_TRUE(g.has_edge(a, b));
  EXPECT_TRUE(g.has_edge(b, c));
  EXPECT_TRUE(g.has_edge(a, c));
  EXPECT_GT(res.rounds, 0u);
}

TEST(Detect, NoWitnessOnTriangleFree) {
  Rng rng(2);
  const Graph g = gen::grid(7, 7);
  congest::RoundLedger ledger;
  EnumParams prm;
  EXPECT_FALSE(detect_congest(g, prm, rng, ledger).witness.has_value());
}

TEST(Count, MatchesExactAndChargesAggregation) {
  Rng rng(3);
  const Graph g = gen::planted_partition(60, 3, 0.5, 0.05, rng);
  congest::RoundLedger ledger;
  EnumParams prm;
  const auto res = count_congest(g, prm, rng, ledger);
  EXPECT_EQ(res.count, triangle_count_exact(g));
  EXPECT_GT(ledger.rounds_for("Triangle/count-aggregate"), 0u);
  EXPECT_EQ(res.rounds, ledger.rounds());
}

TEST(Degeneracy, KnownFamilies) {
  EXPECT_EQ(degeneracy(gen::path(10)), 1u);       // trees are 1-degenerate
  EXPECT_EQ(degeneracy(gen::binary_tree(5)), 1u);
  EXPECT_EQ(degeneracy(gen::cycle(10)), 2u);
  EXPECT_EQ(degeneracy(gen::complete(7)), 6u);
  EXPECT_EQ(degeneracy(gen::grid(5, 5)), 2u);
  EXPECT_EQ(degeneracy(gen::barbell(5)), 4u);     // K5 blocks dominate
}

TEST(Degeneracy, IgnoresLoopsAndHandlesEmpty) {
  GraphBuilder b(3);
  b.add_edge(0, 1).add_loops(0, 5);
  EXPECT_EQ(degeneracy(b.build()), 1u);
  EXPECT_EQ(degeneracy(Graph{}), 0u);
}

TEST(Degeneracy, CpzCaveatQuantified) {
  // The prior work (CPZ) emits an extra part of arboricity <= n^δ; this
  // paper removes it.  Sanity-check the metric that caveat is measured in:
  // arboricity ∈ [⌈degeneracy/2⌉, degeneracy], so a dumbbell of 4-regular
  // expanders has degeneracy <= 4 while a clique has n-1.
  Rng rng(4);
  const Graph g = gen::dumbbell_expanders(50, 50, 4, 2, rng);
  EXPECT_LE(degeneracy(g), 4u);
  EXPECT_GE(degeneracy(g), 2u);
}

}  // namespace
}  // namespace xd::triangle

#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define XD_IO_TEST_HAVE_FIFO 1
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <thread>
#endif

namespace xd {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

/// Normalized (u <= v) edge multiset -- the identity the loader preserves.
std::vector<std::pair<VertexId, VertexId>> edge_set(const Graph& g) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    auto [u, v] = g.edge(e);
    if (u > v) std::swap(u, v);
    edges.emplace_back(u, v);
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

/// Hand-writes a binary file: header (possibly lying) plus raw pairs.
void write_raw(const std::string& path, std::uint32_t magic, std::uint64_t n,
               std::uint64_t m,
               const std::vector<std::pair<std::uint32_t, std::uint32_t>>&
                   pairs,
               std::size_t truncate_to = static_cast<std::size_t>(-1)) {
  std::vector<unsigned char> bytes(24 + 8 * pairs.size());
  std::memcpy(bytes.data(), &magic, 4);
  const std::uint32_t reserved = 0;
  std::memcpy(bytes.data() + 4, &reserved, 4);
  std::memcpy(bytes.data() + 8, &n, 8);
  std::memcpy(bytes.data() + 16, &m, 8);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    std::memcpy(bytes.data() + 24 + 8 * i, &pairs[i].first, 4);
    std::memcpy(bytes.data() + 24 + 8 * i + 4, &pairs[i].second, 4);
  }
  if (truncate_to < bytes.size()) bytes.resize(truncate_to);
  std::ofstream os(path, std::ios::binary);
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
}

TEST(TextEdgeList, RoundTrip) {
  Rng rng(5);
  const Graph g = gen::gnp(60, 0.2, rng);
  std::stringstream ss;
  write_edge_list(g, ss);
  const Graph back = read_edge_list(ss);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(edge_set(back), edge_set(g));
}

TEST(BinaryEdgeList, RoundTrip) {
  Rng rng(6);
  const Graph g = gen::gnp(200, 0.1, rng);
  const std::string path = tmp_path("roundtrip.xdg");
  write_binary_edge_list_file(g, path);
  const LoadedGraph loaded = read_binary_edge_list_file(path);
  EXPECT_EQ(loaded.graph.num_vertices(), g.num_vertices());
  EXPECT_EQ(edge_set(loaded.graph), edge_set(g));
  EXPECT_TRUE(loaded.old_to_new.empty());  // no reorder requested
  EXPECT_TRUE(loaded.new_to_old.empty());
}

TEST(BinaryEdgeList, NormalizesDedupsAndDropsLoops) {
  const std::string path = tmp_path("dedup.xdg");
  // (1,2) three times in both orientations, a loop, and (0,3).
  write_raw(path, kBinaryGraphMagic, 5, 6,
            {{1, 2}, {2, 1}, {4, 4}, {1, 2}, {0, 3}, {2, 1}});
  const LoadedGraph loaded = read_binary_edge_list_file(path);
  const std::vector<std::pair<VertexId, VertexId>> want = {{0, 3}, {1, 2}};
  EXPECT_EQ(edge_set(loaded.graph), want);
  EXPECT_EQ(loaded.graph.num_loops(), 0u);

  BinaryLoadOptions keep;
  keep.keep_self_loops = true;
  const LoadedGraph with_loops = read_binary_edge_list_file(path, keep);
  EXPECT_EQ(with_loops.graph.num_loops(), 1u);
  EXPECT_EQ(with_loops.graph.num_edges(), 3u);
}

TEST(BinaryEdgeList, MalformedInputsThrow) {
  EXPECT_THROW((void)read_binary_edge_list_file(tmp_path("missing.xdg")),
               CheckError);

  const std::string bad_magic = tmp_path("bad_magic.xdg");
  write_raw(bad_magic, 0xdeadbeefu, 4, 1, {{0, 1}});
  EXPECT_THROW((void)read_binary_edge_list_file(bad_magic), CheckError);

  const std::string truncated = tmp_path("truncated.xdg");
  write_raw(truncated, kBinaryGraphMagic, 4, 2, {{0, 1}, {2, 3}},
            /*truncate_to=*/24 + 8 + 4);
  EXPECT_THROW((void)read_binary_edge_list_file(truncated), CheckError);

  const std::string short_header = tmp_path("short_header.xdg");
  {
    std::ofstream os(short_header, std::ios::binary);
    os << "XDG1";
  }
  EXPECT_THROW((void)read_binary_edge_list_file(short_header), CheckError);

  const std::string out_of_range = tmp_path("out_of_range.xdg");
  write_raw(out_of_range, kBinaryGraphMagic, 3, 1, {{0, 7}});
  EXPECT_THROW((void)read_binary_edge_list_file(out_of_range), CheckError);
}

TEST(BinaryEdgeList, ThreadCountDoesNotChangeResult) {
  Rng rng(7);
  const Graph g = gen::preferential_attachment(3000, 4, rng);
  const std::string path = tmp_path("threads.xdg");
  write_binary_edge_list_file(g, path);
  BinaryLoadOptions one;
  one.threads = 1;
  BinaryLoadOptions three;
  three.threads = 3;
  const LoadedGraph a = read_binary_edge_list_file(path, one);
  const LoadedGraph b = read_binary_edge_list_file(path, three);
  EXPECT_EQ(edge_set(a.graph), edge_set(b.graph));
  one.reorder_by_degree = three.reorder_by_degree = true;
  const LoadedGraph ra = read_binary_edge_list_file(path, one);
  const LoadedGraph rb = read_binary_edge_list_file(path, three);
  EXPECT_EQ(ra.old_to_new, rb.old_to_new);
  EXPECT_EQ(edge_set(ra.graph), edge_set(rb.graph));
}

/// The reorder pass: degrees non-increasing in the new labeling, the
/// permutations mutually inverse, and the relabeled graph isomorphic to the
/// original under new_to_old.
void check_reorder(const Graph& original, const LoadedGraph& r) {
  const std::size_t n = original.num_vertices();
  ASSERT_EQ(r.graph.num_vertices(), n);
  ASSERT_EQ(r.old_to_new.size(), n);
  ASSERT_EQ(r.new_to_old.size(), n);
  for (VertexId v = 0; v < n; ++v) {
    EXPECT_EQ(r.old_to_new[r.new_to_old[v]], v);
    if (v + 1 < n) {
      EXPECT_GE(r.graph.degree(v), r.graph.degree(v + 1));
    }
    EXPECT_EQ(r.graph.degree(v), original.degree(r.new_to_old[v]));
  }
  std::vector<std::pair<VertexId, VertexId>> mapped;
  for (EdgeId e = 0; e < r.graph.num_edges(); ++e) {
    auto [u, v] = r.graph.edge(e);
    VertexId ou = r.new_to_old[u];
    VertexId ov = r.new_to_old[v];
    if (ou > ov) std::swap(ou, ov);
    mapped.emplace_back(ou, ov);
  }
  std::sort(mapped.begin(), mapped.end());
  EXPECT_EQ(mapped, edge_set(original));
}

TEST(DegreeReorder, LoaderPassRelabelsByDegree) {
  Rng rng(8);
  const Graph g = gen::preferential_attachment(400, 3, rng);
  const std::string path = tmp_path("reorder.xdg");
  write_binary_edge_list_file(g, path);
  BinaryLoadOptions opt;
  opt.reorder_by_degree = true;
  check_reorder(g, read_binary_edge_list_file(path, opt));
}

TEST(DegreeReorder, StandalonePassMatchesSemantics) {
  Rng rng(9);
  const Graph g = gen::gnp(150, 0.15, rng);
  check_reorder(g, reorder_by_degree(g));
  // Star: the hub must land at id 0.
  const Graph star = gen::star(50);
  const LoadedGraph rs = reorder_by_degree(star);
  EXPECT_EQ(rs.graph.degree(0), 49u);
  // Ties break by ascending original id (stable relabeling).
  EXPECT_LT(rs.new_to_old[1], rs.new_to_old[2]);
}

TEST(BinaryEdgeList, EmptyGraph) {
  const std::string path = tmp_path("empty.xdg");
  write_raw(path, kBinaryGraphMagic, 0, 0, {});
  const LoadedGraph loaded = read_binary_edge_list_file(path);
  EXPECT_EQ(loaded.graph.num_vertices(), 0u);
  EXPECT_EQ(loaded.graph.num_edges(), 0u);
}

#if XD_IO_TEST_HAVE_FIFO

std::vector<unsigned char> file_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>()};
}

/// Feeds `bytes` into the FIFO in tiny dribbled chunks so the reader's
/// read(2) calls return short counts -- the condition the streamed loader
/// must loop through instead of trusting one sized read.
std::thread dribble_into_fifo(const std::string& fifo,
                              std::vector<unsigned char> bytes) {
  return std::thread([fifo, bytes = std::move(bytes)] {
    const int fd = ::open(fifo.c_str(), O_WRONLY);
    EXPECT_GE(fd, 0);
    if (fd < 0) return;
    std::size_t off = 0;
    while (off < bytes.size()) {
      const std::size_t want = std::min<std::size_t>(97, bytes.size() - off);
      const ssize_t wrote = ::write(fd, bytes.data() + off, want);
      if (wrote < 0) {
        if (errno == EINTR) continue;
        ADD_FAILURE() << "fifo write failed";
        break;
      }
      off += static_cast<std::size_t>(wrote);
    }
    ::close(fd);
  });
}

TEST(BinaryEdgeList, StreamedPipeLoadMatchesMmapPath) {
  // A FIFO is not a regular file: the loader cannot mmap or size it, so
  // this exercises the streamed short-read fallback end to end against the
  // mmap path's result on identical bytes.
  Rng rng(10);
  const Graph g = gen::gnp(120, 0.08, rng);
  const std::string reg = tmp_path("pipe_src.xdg");
  write_binary_edge_list_file(g, reg);
  const std::string fifo = tmp_path("pipe.xdg");
  ::unlink(fifo.c_str());
  ASSERT_EQ(::mkfifo(fifo.c_str(), 0600), 0);
  std::thread writer = dribble_into_fifo(fifo, file_bytes(reg));
  const LoadedGraph piped = read_binary_edge_list_file(fifo);
  writer.join();
  ::unlink(fifo.c_str());
  const LoadedGraph mapped = read_binary_edge_list_file(reg);
  EXPECT_EQ(edge_set(piped.graph), edge_set(mapped.graph));
  EXPECT_EQ(piped.graph.num_vertices(), mapped.graph.num_vertices());
}

TEST(BinaryEdgeList, TruncatedPipeSurfacesCheckError) {
  // The writer closes mid-record-area; EOF on the pipe must surface as the
  // size check's CheckError, never as a silently smaller graph.
  Rng rng(11);
  const Graph g = gen::gnp(60, 0.1, rng);
  const std::string reg = tmp_path("pipe_trunc_src.xdg");
  write_binary_edge_list_file(g, reg);
  std::vector<unsigned char> bytes = file_bytes(reg);
  ASSERT_GT(bytes.size(), 40u);
  bytes.resize(bytes.size() / 2);
  const std::string fifo = tmp_path("pipe_trunc.xdg");
  ::unlink(fifo.c_str());
  ASSERT_EQ(::mkfifo(fifo.c_str(), 0600), 0);
  std::thread writer = dribble_into_fifo(fifo, std::move(bytes));
  EXPECT_THROW((void)read_binary_edge_list_file(fifo), CheckError);
  writer.join();
  ::unlink(fifo.c_str());
}

#endif  // XD_IO_TEST_HAVE_FIFO

}  // namespace
}  // namespace xd

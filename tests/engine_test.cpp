// Batched round-engine tests: flat CSR inbox delivery vs a reference
// nested-vector implementation, canonical delivery order, parallel-executor
// determinism, the O(log deg) send_to slot index, and the
// exchange_charging accounting contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "congest/engine.hpp"
#include "congest/network.hpp"
#include "graph/generators.hpp"
#include "ldd/mpx.hpp"
#include "primitives/forest.hpp"
#include "primitives/sampling.hpp"
#include "util/check.hpp"

namespace xd::congest {
namespace {

// ------------------------------------------------------ flat delivery -----

// Reference delivery semantics: every staged message lands in its
// receiver's inbox, ordered by (sender's directed slot, staging order).
struct RefStaged {
  std::uint32_t directed_slot;
  std::size_t index;
  VertexId from;
  VertexId to;
  Message msg;
};

TEST(Engine, FlatDeliveryMatchesNestedReference) {
  Rng rng(12);
  const Graph g = gen::gnp(64, 0.15, rng);
  RoundLedger ledger;
  Network net(g, ledger, 5);

  // Random staging pattern, including repeats on the same slot.
  std::vector<RefStaged> ref;
  Rng pick(99);
  for (int i = 0; i < 500; ++i) {
    const auto v = static_cast<VertexId>(pick.next_below(g.num_vertices()));
    if (g.degree(v) == 0) continue;
    const auto slot = static_cast<std::uint32_t>(pick.next_below(g.degree(v)));
    if (g.neighbors(v)[slot] == v) continue;
    const Message m{7, pick(), pick()};
    net.send(v, slot, m);
    ref.push_back(RefStaged{g.slot_base(v) + slot, ref.size(), v,
                            g.neighbors(v)[slot], m});
  }
  net.exchange("ref");

  std::stable_sort(ref.begin(), ref.end(),
                   [](const RefStaged& a, const RefStaged& b) {
                     return a.directed_slot < b.directed_slot;
                   });
  std::vector<std::vector<Envelope>> expected(g.num_vertices());
  for (const RefStaged& s : ref) {
    expected[s.to].push_back(Envelope{s.from, s.msg});
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto in = net.inbox(v);
    ASSERT_EQ(in.size(), expected[v].size()) << "vertex " << v;
    for (std::size_t i = 0; i < in.size(); ++i) {
      EXPECT_EQ(in[i].from, expected[v][i].from);
      EXPECT_EQ(in[i].msg, expected[v][i].msg);
    }
  }
}

TEST(Engine, InboxIsSenderAscending) {
  // Stage in descending sender order; delivery must canonicalize.
  const Graph g = gen::star(5);  // center 0, leaves 1..4
  RoundLedger ledger;
  Network net(g, ledger);
  for (VertexId v = 4; v >= 1; --v) net.send_to(v, 0, Message{1, v});
  net.exchange("canon");
  const auto in = net.inbox(0);
  ASSERT_EQ(in.size(), 4u);
  for (std::size_t i = 1; i < in.size(); ++i) {
    EXPECT_LT(in[i - 1].from, in[i].from);
  }
}

// ------------------------------------------------------- run_round --------

TEST(Engine, RunRoundChargesCongestionLikeExchange) {
  const Graph g = gen::path(2);
  RoundLedger ledger;
  Network net(g, ledger);
  auto program = make_program(
      [](VertexId v, Outbox& out) {
        if (v == 0) {
          for (int i = 0; i < 3; ++i) out.send_to(1, Message{0, std::uint64_t(i)});
        }
      },
      [](VertexId, std::span<const Envelope>) {});
  EXPECT_EQ(net.run_round(program, "congested"), 3u);
  EXPECT_EQ(ledger.rounds_for("congested"), 3u);
  EXPECT_EQ(net.inbox(1).size(), 3u);
}

TEST(Engine, RunRoundsAccumulates) {
  const Graph g = gen::cycle(8);
  RoundLedger ledger;
  Network net(g, ledger);
  auto program = make_program(
      [](VertexId, Outbox& out) { out.send(0, Message{1, out.vertex()}); },
      [](VertexId, std::span<const Envelope>) {});
  EXPECT_EQ(net.run_rounds(program, 5, "spin"), 5u);
  EXPECT_EQ(ledger.rounds(), 5u);
}

// Runs MPX + forest + weighted sampling at the given thread count and
// returns a full fingerprint of results and accounting.
struct Fingerprint {
  std::vector<VertexId> center;
  std::vector<VertexId> parent;
  std::vector<prim::ScaledSample> samples;
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

Fingerprint run_stack(int threads) {
  Rng rng(8);
  const Graph g = gen::gnp(150, 0.06, rng);
  RoundLedger ledger;
  Network net(g, ledger, 321);
  net.set_threads(threads);

  Fingerprint fp;
  fp.center = ldd::mpx_clustering(net, 0.35, "mpx").center;

  const std::vector<char> active(g.num_vertices(), 1);
  const auto forest = prim::build_forest(net, active, "forest");
  fp.parent = forest.parent;

  std::vector<std::uint64_t> w(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) w[v] = g.degree(v) + 1;
  std::vector<std::vector<std::pair<int, std::uint64_t>>> tok(g.num_vertices());
  for (auto r : forest.roots()) tok[r] = {{0, 7}, {2, 4}};
  fp.samples = prim::sample_by_weight(net, forest, w, tok, "sample");

  fp.rounds = ledger.rounds();
  fp.messages = ledger.messages();
  return fp;
}

TEST(Engine, ParallelExecutorIsBitIdentical) {
  const Fingerprint serial = run_stack(1);
  for (const int threads : {2, 3, 8}) {
    const Fingerprint parallel = run_stack(threads);
    EXPECT_EQ(serial, parallel) << "threads=" << threads;
  }
}

TEST(Engine, ParallelPhaseExceptionsAreCatchable) {
  // An XD_CHECK tripping inside a worker thread must surface as the same
  // catchable CheckError the serial executor throws, not std::terminate.
  const Graph g = gen::path(4);
  RoundLedger ledger;
  Network net(g, ledger);
  net.set_threads(3);
  auto program = make_program(
      [](VertexId v, Outbox& out) {
        if (v == 2) out.send_to(0, Message{});  // {2,0} is not an edge
      },
      [](VertexId, std::span<const Envelope>) {});
  EXPECT_THROW(net.run_round(program, "boom"), CheckError);
}

TEST(Engine, RejectsZeroThreads) {
  const Graph g = gen::path(2);
  RoundLedger ledger;
  Network net(g, ledger);
  EXPECT_THROW(net.set_threads(0), CheckError);
}

// ------------------------------------------------- send_to slot index -----

TEST(Engine, StarBroadcastSendToWorkIsNotQuadratic) {
  // The seed kernel's send_to was an O(deg) linear scan, so a star-center
  // broadcast cost Θ(d²) slot-lookup work.  The neighbor->slot index must
  // keep it at O(d log d) probes.
  const std::size_t d = 4096;
  const Graph g = gen::star(d + 1);  // center 0, leaves 1..d
  RoundLedger ledger;
  Network net(g, ledger);
  for (VertexId leaf = 1; leaf <= d; ++leaf) {
    net.send_to(0, leaf, Message{1, leaf});
  }
  const std::uint64_t probes = net.slot_lookup_probes();
  const double log_d = std::log2(static_cast<double>(d));
  EXPECT_LE(probes, static_cast<std::uint64_t>(2.0 * d * (log_d + 2.0)));
  EXPECT_LT(probes, d * d / 4);  // nowhere near the quadratic scan
  EXPECT_EQ(net.exchange("star"), 1u);
  for (VertexId leaf = 1; leaf <= d; ++leaf) {
    ASSERT_EQ(net.inbox(leaf).size(), 1u);
  }
}

TEST(Engine, SlotOfFindsEveryNeighborAndRejectsNonEdges) {
  Rng rng(77);
  const Graph g = gen::gnp(80, 0.1, rng);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    auto nbrs = g.neighbors(v);
    for (std::uint32_t slot = 0; slot < nbrs.size(); ++slot) {
      if (nbrs[slot] == v) continue;
      const auto found = g.slot_of(v, nbrs[slot]);
      ASSERT_NE(found, Graph::kNoSlot);
      EXPECT_EQ(nbrs[found], nbrs[slot]);
    }
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      if (u == v) continue;
      if (!g.has_edge(v, u)) {
        EXPECT_EQ(g.slot_of(v, u), Graph::kNoSlot);
      }
    }
  }
}

TEST(Engine, SlotOfPrefersSmallestParallelSlot) {
  GraphBuilder b(2, /*allow_parallel=*/true);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  const Graph g = b.build();
  // The linear scan the seed used would find slot 0 first; the index must
  // agree so congestion accounting is unchanged.
  EXPECT_EQ(g.slot_of(0, 1), 0u);
  EXPECT_EQ(g.slot_of(1, 0), 0u);
}

// ---------------------------------------------------- exchange_charging ---

TEST(Engine, ExchangeChargingAtExactCongestionPasses) {
  const Graph g = gen::path(2);
  RoundLedger ledger;
  Network net(g, ledger);
  for (int i = 0; i < 4; ++i) net.send_to(0, 1, Message{});
  // Congestion is exactly 4; declaring exactly 4 rounds must pass.
  EXPECT_EQ(net.exchange_charging("exact", 4), 4u);
  EXPECT_EQ(net.inbox(1).size(), 4u);
  EXPECT_EQ(ledger.rounds_for("exact"), 4u);
}

TEST(Engine, ExchangeChargingOverCongestionThrows) {
  const Graph g = gen::path(2);
  RoundLedger ledger;
  Network net(g, ledger);
  for (int i = 0; i < 5; ++i) net.send_to(0, 1, Message{});
  EXPECT_THROW(net.exchange_charging("under", 4), CheckError);
}

TEST(Engine, ExchangeChargingMatchesLedgerEntry) {
  const Graph g = gen::path(3);
  RoundLedger ledger;
  Network net(g, ledger);
  net.send_to(0, 1, Message{});
  const auto charged = net.exchange_charging("pipelined", 9);
  EXPECT_EQ(charged, 9u);
  EXPECT_EQ(ledger.rounds_for("pipelined"), charged);
  EXPECT_EQ(ledger.rounds(), charged);
  EXPECT_EQ(ledger.messages(), 1u);
  // A second override charge under the same label accumulates.
  net.send_to(1, 2, Message{});
  EXPECT_EQ(net.exchange_charging("pipelined", 2), 2u);
  EXPECT_EQ(ledger.rounds_for("pipelined"), 11u);
}

}  // namespace
}  // namespace xd::congest

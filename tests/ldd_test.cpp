#include "ldd/ldd.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "graph/subgraph.hpp"
#include "ldd/neighborhood.hpp"
#include "util/check.hpp"

namespace xd::ldd {
namespace {

using congest::Network;
using congest::RoundLedger;

TEST(Mpx, ClustersEveryVertexAndClustersAreConnected) {
  Rng rng(1);
  const Graph g = gen::gnp(150, 0.05, rng);
  RoundLedger ledger;
  Network net(g, ledger, 7);
  const Clustering c = mpx_clustering(net, 0.3, "mpx");

  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_NE(c.center[v], static_cast<VertexId>(-1));
    EXPECT_GE(c.joined_epoch[v], 1u);
  }
  // Centers belong to their own cluster.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(c.center[c.center[v]], c.center[v]);
  }
  // Connectivity: every non-center vertex has a neighbor in its cluster
  // that joined strictly earlier.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (c.center[v] == v) continue;
    bool has_earlier = false;
    for (VertexId u : g.neighbors(v)) {
      if (u != v && c.center[u] == c.center[v] &&
          c.joined_epoch[u] < c.joined_epoch[v]) {
        has_earlier = true;
      }
    }
    EXPECT_TRUE(has_earlier) << "vertex " << v;
  }
}

TEST(Mpx, RoundsAreEpochBounded) {
  Rng rng(2);
  const Graph g = gen::random_regular(200, 4, rng);
  RoundLedger ledger;
  Network net(g, ledger, 9);
  const double beta = 0.25;
  const Clustering c = mpx_clustering(net, beta, "mpx");
  EXPECT_EQ(c.epochs, static_cast<std::uint32_t>(
                          std::ceil(2.0 * std::log(200.0) / beta)));
  EXPECT_GE(ledger.rounds(), c.epochs);
  EXPECT_LE(ledger.rounds(), c.epochs + 3);
}

TEST(Mpx, ClusterRadiusBounded) {
  Rng rng(3);
  const Graph g = gen::grid(20, 20);
  RoundLedger ledger;
  Network net(g, ledger, 11);
  const double beta = 0.3;
  const Clustering c = mpx_clustering(net, beta, "mpx");
  // Radius <= 2 ln n / beta: joined_epoch - center's start >= depth, and
  // every join chain starts at a center, so depth <= epochs always; check
  // the measured radius against the theory bound via BFS from centers.
  const double bound = 4.0 * std::log(400.0) / beta;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto dist = bfs_distances(g, c.center[v]);
    EXPECT_LE(dist[v], bound);
  }
}

TEST(Mpx, Lemma12CutProbability) {
  // Average cut fraction over seeds should be within the 2 beta bound
  // (it is usually well under).
  Rng rng(4);
  const Graph g = gen::random_regular(300, 4, rng);
  const double beta = 0.15;
  double total_fraction = 0;
  const int trials = 10;
  for (int s = 0; s < trials; ++s) {
    RoundLedger ledger;
    Network net(g, ledger, 100 + s);
    const Clustering c = mpx_clustering(net, beta, "mpx");
    total_fraction += static_cast<double>(c.inter_cluster_edges(g)) /
                      static_cast<double>(g.num_edges());
  }
  EXPECT_LE(total_fraction / trials, 2.0 * beta);
}

TEST(BallEdgeCount, MatchesBruteForce) {
  Rng rng(5);
  const Graph g = gen::gnp(40, 0.1, rng);
  for (VertexId v = 0; v < 10; ++v) {
    for (std::uint32_t r : {0u, 1u, 2u, 3u}) {
      // Brute force: all edges with both endpoints within distance r.
      const auto dist = bfs_distances(g, v);
      std::uint64_t expect = 0;
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        const auto [x, y] = g.edge(e);
        if (dist[x] <= r && dist[y] <= r) ++expect;
      }
      EXPECT_EQ(ball_edge_count(g, v, r, 1u << 30), expect)
          << "v=" << v << " r=" << r;
    }
  }
}

TEST(BallEdgeCount, CapShortCircuits) {
  const Graph g = gen::complete(30);
  EXPECT_EQ(ball_edge_count(g, 0, 2, 10), 11u);  // cap+1 signals overflow
}

TEST(BallEdgeCount, CountsLoopsInsideBall) {
  GraphBuilder b(3);
  b.add_edge(0, 1).add_edge(1, 2).add_loops(1, 2);
  const Graph g = b.build();
  EXPECT_EQ(ball_edge_count(g, 0, 1, 100), 3u);  // {0,1} + two loops at 1
  EXPECT_EQ(ball_edge_count(g, 0, 2, 100), 4u);
}

TEST(ThresholdTest, SeparatesSparseAndDenseBalls) {
  // Star center has a huge 1-ball; leaves of a long path have tiny ones.
  GraphBuilder b(64);
  for (VertexId v = 1; v < 32; ++v) b.add_edge(0, v);  // star of 31 edges
  for (VertexId v = 32; v + 1 < 64; ++v) b.add_edge(v, v + 1);  // path
  b.add_edge(31, 32);  // connect halves far from both probes
  b.add_edge(0, 33);
  const Graph g = b.build();
  Rng rng(6);
  congest::RoundLedger ledger;
  const auto bit = ball_threshold_test(g, 1, 10.0, 0.5, 20.0, rng, ledger);
  EXPECT_EQ(bit[0], 0);   // |E(N^1(0))| = 33 >= 15
  EXPECT_EQ(bit[60], 1);  // tiny path ball
  EXPECT_GT(ledger.rounds_for("LDD/Lemma14-gather"), 0u);
}

TEST(BallEdgeEstimate, WithinFactorOnSmallGraph) {
  Rng rng(7);
  const Graph g = gen::gnp(60, 0.15, rng);
  congest::RoundLedger ledger;
  const double f = 0.25;
  const auto est = ball_edge_estimate(g, 2, f, 20.0, rng, ledger);
  // w.h.p. |E(N^d(v))| ∈ [m_v/(1+f), (1+f) m_v]; allow one extra (1+f) of
  // small-sample slack.
  const double slack = (1.0 + f) * (1.0 + f);
  for (VertexId v = 0; v < g.num_vertices(); v += 7) {
    const auto exact = ball_edge_count(g, v, 2, 1u << 30);
    if (exact == 0) continue;
    EXPECT_LE(est[v], slack * static_cast<double>(exact));
    EXPECT_GE(est[v] * slack, static_cast<double>(exact));
  }
}

TEST(VdVs, LowDiameterGraphBecomesAllVd) {
  // On an expander, a = 5 ln n / beta exceeds the diameter, so every ball
  // is the whole graph and everything is dense.
  Rng rng(8);
  const Graph g = gen::random_regular(100, 6, rng);
  congest::RoundLedger ledger;
  const auto part = build_vd_vs(g, 0.3, 2.0, /*sampled=*/false, rng, ledger);
  std::size_t vd = 0;
  for (char c : part.in_vd) vd += c;
  EXPECT_EQ(vd, g.num_vertices());
}

TEST(VdVs, CycleIsAllVs) {
  // On a long cycle every radius-a ball has only O(a) = O(|E|/b) edges
  // when n >> a*b, so no vertex seeds V_D.
  Rng rng(9);
  const Graph g = gen::cycle(3000);
  congest::RoundLedger ledger;
  const auto part = build_vd_vs(g, 0.9, 1.0, /*sampled=*/false, rng, ledger);
  std::size_t vd = 0;
  for (char c : part.in_vd) vd += c;
  EXPECT_EQ(vd, 0u);
  EXPECT_EQ(part.seed_vertices, 0u);
}

TEST(VdVs, ComponentsFarApart) {
  // Two dense cliques joined by a very long path: each clique seeds V_D;
  // after growth, distinct V_D components must be > a apart.
  Rng rng(10);
  GraphBuilder b(220);
  for (VertexId i = 0; i < 10; ++i) {
    for (VertexId j = i + 1; j < 10; ++j) {
      b.add_edge(i, j);
      b.add_edge(210 + i, 210 + j);
    }
  }
  for (VertexId v = 9; v < 210; ++v) b.add_edge(v, v + 1);
  const Graph g = b.build();
  congest::RoundLedger ledger;
  const auto part = build_vd_vs(g, 0.9, 1.0, /*sampled=*/false, rng, ledger);

  // Collect V_D components and check pairwise distance > a.
  std::vector<char> mask = part.in_vd;
  std::size_t vd_count = 0;
  for (char c : mask) vd_count += c;
  if (vd_count == 0) GTEST_SKIP() << "no dense seeds at this scale";
  const VertexSet vd = VertexSet::from_bitmap(mask);
  const SubgraphMap sub = induced_subgraph(g, vd);
  auto [comp, count] = connected_components(sub.graph);
  if (count < 2) return;  // merged into one: fine
  // For each pair of components measure distance in g.
  for (VertexId u = 0; u < sub.graph.num_vertices(); ++u) {
    const auto dist = bfs_distances(g, sub.to_parent[u]);
    for (VertexId w = 0; w < sub.graph.num_vertices(); ++w) {
      if (comp[u] != comp[w]) {
        EXPECT_GT(dist[sub.to_parent[w]], part.a);
      }
    }
  }
}

class LddTheorem4 : public ::testing::TestWithParam<int> {};

TEST_P(LddTheorem4, GuaranteesOnCycle) {
  // The cycle stresses the diameter guarantee: at n = 20000, β = 0.9, K = 1
  // every ball is sparse (2a < |E|/b at the internal β/3), all vertices
  // land in V_S, and MPX must actually chop the cycle.
  const int seed = GetParam();
  const Graph g = gen::cycle(20000);
  RoundLedger ledger;
  Network net(g, ledger, static_cast<std::uint64_t>(seed));
  Rng rng(seed);
  LddParams prm;
  prm.beta = 0.9;
  prm.K = 1.0;
  const LddResult res = low_diameter_decomposition(net, prm, rng);

  const double logn = std::log(20000.0);
  // Diameter bound O(log² n / β²): explicit constant absorbing the
  // internal β/3 (16 * 9 = 144, rounded up).
  EXPECT_LE(max_component_diameter(g, res),
            150.0 * logn * logn / (prm.beta * prm.beta));
  // Theorem 4 cut bound: β |E| w.h.p.
  EXPECT_LE(res.num_cut_edges,
            static_cast<std::uint64_t>(prm.beta * g.num_edges()));
  EXPECT_GT(res.num_components, 1u);
  // Every vertex sparse: the guard never seeds V_D at this scale.
  EXPECT_EQ(res.guard.seed_vertices, 0u);
}

TEST_P(LddTheorem4, GuaranteesOnTorus) {
  const int seed = GetParam();
  const Graph g = gen::grid(40, 40, /*wrap=*/true);
  RoundLedger ledger;
  Network net(g, ledger, static_cast<std::uint64_t>(seed) + 50);
  Rng rng(seed + 50);
  LddParams prm;
  prm.beta = 0.3;
  const LddResult res = low_diameter_decomposition(net, prm, rng);
  const double logn = std::log(1600.0);
  EXPECT_LE(max_component_diameter(g, res),
            150.0 * logn * logn / (prm.beta * prm.beta));
  EXPECT_LE(res.num_cut_edges,
            static_cast<std::uint64_t>(prm.beta * g.num_edges()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LddTheorem4, ::testing::Values(1, 2, 3, 4, 5));

TEST(Ldd, ExpanderStaysWhole) {
  // All vertices are V_D and MPX inter-cluster edges between V_D vertices
  // are not cut, so an expander comes back as a single component with zero
  // cut edges.
  Rng rng(11);
  const Graph g = gen::random_regular(150, 6, rng);
  RoundLedger ledger;
  Network net(g, ledger, 13);
  LddParams prm;
  prm.beta = 0.2;
  const LddResult res = low_diameter_decomposition(net, prm, rng);
  EXPECT_EQ(res.num_cut_edges, 0u);
  EXPECT_EQ(res.num_components, 1u);
}

TEST(Ldd, ComponentIdsArePartition) {
  Rng rng(12);
  const Graph g = gen::clique_chain(12, 8);
  RoundLedger ledger;
  Network net(g, ledger, 17);
  LddParams prm;
  prm.beta = 0.35;
  const LddResult res = low_diameter_decomposition(net, prm, rng);
  ASSERT_EQ(res.component.size(), g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LT(res.component[v], res.num_components);
  }
  // Cut edges cross components; kept edges do not.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.edge(e);
    if (u == v) continue;
    if (res.cut_edge[e]) {
      // A cut edge *may* still land inside one component (another path
      // reconnects) -- but a kept edge must never cross.
    } else {
      EXPECT_EQ(res.component[u], res.component[v]);
    }
  }
}

TEST(Ldd, GuardAblationCutsMore) {
  // Plain MPX cuts all inter-cluster edges; the guard uncuts V_D-V_D ones.
  Rng rng(13);
  const Graph g = gen::clique_chain(20, 10);
  LddParams with_guard;
  with_guard.beta = 0.3;
  LddParams no_guard = with_guard;
  no_guard.use_guard = false;

  RoundLedger l1, l2;
  Network n1(g, l1, 21), n2(g, l2, 21);  // same seed -> same MPX run
  Rng r1(13), r2(13);
  const auto res_guard = low_diameter_decomposition(n1, with_guard, r1);
  const auto res_plain = low_diameter_decomposition(n2, no_guard, r2);
  EXPECT_LE(res_guard.num_cut_edges, res_plain.num_cut_edges);
}

}  // namespace
}  // namespace xd::ldd

// Golden determinism pins: full-result fingerprints of every migrated
// algorithm layer at fixed seeds, captured from the seed (pre-engine)
// kernel.  The batched round engine must reproduce them bit-for-bit --
// results AND ledger round counts -- which is the refactor's acceptance
// contract.  If an intentional protocol change shifts these values,
// regenerate them by printing the fingerprints below (they are pure
// functions of the run seeds).

#include <gtest/gtest.h>

#include <algorithm>

#include "core/xd.hpp"

namespace xd {
namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t x) {
  h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

TEST(Golden, MpxClusteringMatchesSeedKernel) {
  Rng rng(11);
  const Graph g = gen::random_regular(400, 6, rng);
  congest::RoundLedger ledger;
  congest::Network net(g, ledger, 42);
  const auto c = ldd::mpx_clustering(net, 0.3, "mpx");
  std::uint64_t h = 0;
  for (auto x : c.center) h = mix(h, x);
  for (auto x : c.joined_epoch) h = mix(h, x);
  EXPECT_EQ(h, 802214689181496697ULL);
  EXPECT_EQ(ledger.rounds(), 40u);
  EXPECT_EQ(ledger.messages(), 754u);
}

TEST(Golden, LowDiameterDecompositionMatchesSeedKernel) {
  Rng rng(7);
  const Graph g = gen::random_regular(300, 4, rng);
  congest::RoundLedger ledger;
  congest::Network net(g, ledger, 13);
  ldd::LddParams prm;
  Rng lrng(5);
  const auto r = ldd::low_diameter_decomposition(net, prm, lrng);
  std::uint64_t h = 0;
  for (auto x : r.component) h = mix(h, x);
  h = mix(h, r.num_cut_edges);
  EXPECT_EQ(h, 7745803816326516560ULL);
  EXPECT_EQ(r.num_components, 1u);
  EXPECT_EQ(r.rounds, 2429500u);
}

TEST(Golden, ForestAggregateSamplingMatchSeedKernel) {
  Rng rng(3);
  const Graph g = gen::gnp(200, 0.05, rng);
  congest::RoundLedger ledger;
  congest::Network net(g, ledger, 99);
  std::vector<char> active(g.num_vertices(), 1);
  const auto f = prim::build_forest(net, active, "forest");
  std::vector<std::uint64_t> w(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) w[v] = g.degree(v) + 1;
  const auto s = prim::convergecast_sum(net, f, w, "agg");
  std::uint64_t h = 0;
  for (auto x : f.root) h = mix(h, x);
  for (auto x : f.parent) h = mix(h, x);
  for (auto x : f.depth) h = mix(h, x);
  for (const auto& kids : f.children) {
    for (auto k : kids) h = mix(h, k);
  }
  for (auto x : s) h = mix(h, x);
  std::vector<std::vector<std::pair<int, std::uint64_t>>> tok(g.num_vertices());
  for (auto r : f.roots()) tok[r] = {{0, 5}, {1, 3}};
  const auto samples = prim::sample_by_weight(net, f, w, tok, "sample");
  for (const auto& smp : samples) {
    h = mix(h, smp.vertex);
    h = mix(h, static_cast<std::uint64_t>(smp.scale));
  }
  EXPECT_EQ(h, 8883018817056161231ULL);
  EXPECT_EQ(f.height, 4u);
  EXPECT_EQ(ledger.rounds(), 24u);
  EXPECT_EQ(ledger.messages(), 7675u);
}

TEST(Golden, DistributedNibbleMatchesSeedKernel) {
  Rng rng(21);
  const Graph g = gen::barbell(24);
  congest::RoundLedger ledger;
  congest::Network net(g, ledger, 77);
  sparsecut::NibbleParams prm =
      sparsecut::NibbleParams::practical(0.1, g.num_edges(), g.volume());
  prm.t0 = std::min(prm.t0, 40);
  const auto r =
      sparsecut::distributed_approximate_nibble(net, 0, prm, 3, "nibble");
  std::uint64_t h = 0;
  for (auto v : r.cut.ids()) h = mix(h, v);
  EXPECT_EQ(h, 10102055727940276320ULL);
  EXPECT_TRUE(r.found());
  EXPECT_EQ(r.rounds, 1958u);
  EXPECT_EQ(r.rank_selects, 93u);
}

TEST(Golden, TriangleEnumerationMatchesSeedKernel) {
  Rng rng(31);
  const Graph g = gen::gnp(60, 0.2, rng);
  congest::RoundLedger ledger;
  Rng arng(17);
  triangle::EnumParams prm;
  prm.backend = triangle::RouterBackend::kTree;
  const auto r = triangle::enumerate_congest(g, prm, arng, ledger);
  std::uint64_t h = 0;
  for (const auto& t : r.triangles) {
    h = mix(h, t[0]);
    h = mix(h, t[1]);
    h = mix(h, t[2]);
  }
  EXPECT_EQ(h, 2309664143457515940ULL);
  EXPECT_EQ(r.triangles.size(), 240u);
  // Rounds re-pinned when the driver moved to epoch-batched scheduling
  // (per-item seed-split RNGs); the triangle set itself is unchanged.
  EXPECT_EQ(r.rounds, 3445u);
}

TEST(Golden, SchedulerRoundAccountingPins) {
  // Fixed-seed pins for the concurrent component scheduler: the sequential
  // driver and the epoch scheduler must produce identical partitions and
  // message counts, while rounds drop from the sum over components to the
  // sum of per-epoch maxima.  Per-label breakdowns are pinned too, so
  // future PRs cannot silently shift round accounting.  (Values regenerate
  // like every other pin here: print and re-pin on intentional changes.)
  Rng grng(11);
  const Graph g = gen::planted_partition(160, 4, 0.35, 0.01, grng);
  const auto run = [&](int scheduler_threads, congest::RoundLedger& ledger) {
    expander::DecompositionParams prm;
    prm.epsilon = 0.3;
    prm.k = 2;
    prm.phi0_override = 0.05;
    prm.scheduler_threads = scheduler_threads;
    Rng rng(5);
    return expander::expander_decomposition(g, prm, rng, ledger);
  };

  congest::RoundLedger seq_ledger;
  const auto seq = run(0, seq_ledger);
  EXPECT_EQ(seq.rounds, 16769u);
  EXPECT_EQ(seq.epochs, 6u);
  EXPECT_EQ(seq.num_components, 4u);
  EXPECT_EQ(seq_ledger.messages(), 229372u);
  EXPECT_EQ(seq_ledger.rounds_for("ParallelNibble/generate"), 193u);
  EXPECT_EQ(seq_ledger.rounds_for("ParallelNibble/nibbles"), 16468u);
  EXPECT_EQ(seq_ledger.rounds_for("ParallelNibble/select"), 108u);

  congest::RoundLedger sched_ledger;
  const auto sched = run(2, sched_ledger);
  EXPECT_EQ(sched.component, seq.component);
  EXPECT_EQ(sched.removed_edge, seq.removed_edge);
  EXPECT_EQ(sched.rounds, 7174u);
  EXPECT_EQ(sched.epochs, 6u);
  EXPECT_EQ(sched_ledger.messages(), 229372u);
  EXPECT_EQ(sched_ledger.rounds_for("ParallelNibble/generate"), 70u);
  EXPECT_EQ(sched_ledger.rounds_for("ParallelNibble/nibbles"), 7060u);
  EXPECT_EQ(sched_ledger.rounds_for("ParallelNibble/select"), 44u);
}

TEST(Golden, SimpleParallelBackendPins) {
  // Fixed-seed pins for the second decomposition backend (docs/
  // decomposition.md), on the same graph and caller seed as
  // SchedulerRoundAccountingPins so the two drivers' accounting is
  // directly comparable: the cluster/certify/trim driver reaches the same
  // four planted communities with Remove-2 cuts only (no Phase 2 exists
  // to rip anything out), and its outputs -- pinned here down to the
  // partition fingerprint -- are bit-identical at every scheduler thread
  // count.
  Rng grng(11);
  const Graph g = gen::planted_partition(160, 4, 0.35, 0.01, grng);
  const auto run = [&](int scheduler_threads, congest::RoundLedger& ledger) {
    expander::DecompositionParams prm;
    prm.epsilon = 0.3;
    prm.k = 2;
    prm.phi0_override = 0.05;
    prm.scheduler_threads = scheduler_threads;
    prm.backend = expander::DecompositionBackend::kSimpleParallel;
    Rng rng(5);
    return expander::expander_decomposition(g, prm, rng, ledger);
  };

  congest::RoundLedger seq_ledger;
  const auto seq = run(0, seq_ledger);
  EXPECT_EQ(seq.rounds, 16832u);
  EXPECT_EQ(seq.epochs, 6u);
  EXPECT_EQ(seq.num_components, 4u);
  EXPECT_EQ(seq.sparse_cut_calls, 7u);
  EXPECT_EQ(seq.removed_by[0], 0u);  // diameter probe skips every LDD call
  EXPECT_EQ(seq.removed_by[1], 100u);
  EXPECT_EQ(seq.removed_by[2], 0u);  // no Phase 2, never a rip-out
  EXPECT_EQ(seq.guard_finalized, 0u);
  EXPECT_EQ(seq_ledger.messages(), 232581u);
  EXPECT_EQ(expander::partition_fingerprint(seq), 17102884042930750356ull);

  for (const int threads : {1, 2, 8}) {
    congest::RoundLedger ledger;
    const auto sched = run(threads, ledger);
    EXPECT_EQ(sched.component, seq.component);
    EXPECT_EQ(sched.removed_edge, seq.removed_edge);
    EXPECT_EQ(expander::partition_fingerprint(sched),
              expander::partition_fingerprint(seq));
    EXPECT_EQ(sched.rounds, 13485u);
    EXPECT_EQ(sched.epochs, 6u);
    EXPECT_EQ(ledger.messages(), 232581u);
  }
}

TEST(Golden, SchedulerTriangleEnumerationPins) {
  // Same graph/seed as TriangleEnumerationMatchesSeedKernel, run under the
  // cluster scheduler at every pinned thread count: identical triangles,
  // rounds <= the sequential pin.
  for (const int threads : {1, 2, 8}) {
    Rng rng(31);
    const Graph g = gen::gnp(60, 0.2, rng);
    congest::RoundLedger ledger;
    Rng arng(17);
    triangle::EnumParams prm;
    prm.backend = triangle::RouterBackend::kTree;
    prm.scheduler_threads = threads;
    const auto r = triangle::enumerate_congest(g, prm, arng, ledger);
    std::uint64_t h = 0;
    for (const auto& t : r.triangles) {
      h = mix(h, t[0]);
      h = mix(h, t[1]);
      h = mix(h, t[2]);
    }
    EXPECT_EQ(h, 2309664143457515940ULL) << "threads=" << threads;
    EXPECT_EQ(r.triangles.size(), 240u) << "threads=" << threads;
    // This dense G(n,p) is an expander: each level keeps one cluster, so
    // the per-epoch max equals the sequential sum here.
    EXPECT_EQ(r.rounds, 3445u) << "threads=" << threads;
  }
}

TEST(Golden, TreeRouterMatchesSeedKernel) {
  Rng rng(41);
  const Graph g = gen::random_regular(128, 4, rng);
  congest::RoundLedger ledger;
  congest::Network net(g, ledger, 55);
  routing::TreeRouter router(net, 3);
  router.preprocess();
  std::vector<routing::Demand> demands;
  Rng drng(9);
  for (int i = 0; i < 200; ++i) {
    demands.push_back(routing::Demand{
        static_cast<VertexId>(drng.next_below(128)),
        static_cast<VertexId>(drng.next_below(128)), 1});
  }
  EXPECT_EQ(router.route(demands), 21u);
  EXPECT_EQ(ledger.rounds(), 40u);
  EXPECT_EQ(ledger.messages(), 2217u);
}

}  // namespace
}  // namespace xd

#include "sparsecut/partition.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "sparsecut/parallel_nibble.hpp"

namespace xd::sparsecut {
namespace {

TEST(ParallelNibble, FindsCutOnDumbbell) {
  Rng rng(3);
  const Graph g = gen::dumbbell_expanders(40, 40, 4, 2, rng);
  const auto prm = NibbleParams::practical(0.05, g.num_edges(), g.volume());
  congest::RoundLedger ledger;
  const auto res = parallel_nibble(g, prm, rng, ledger);
  EXPECT_FALSE(res.overlap_aborted);
  ASSERT_FALSE(res.cut.empty());
  // Volume stays under the z = (23/24) Vol threshold.
  EXPECT_LE(static_cast<double>(volume(g, res.cut)),
            (23.0 / 24.0) * static_cast<double>(g.volume()));
  EXPECT_GT(res.rounds, 0u);
  EXPECT_EQ(res.rounds, ledger.rounds());
  EXPECT_GE(res.max_overlap, 1);
}

TEST(ParallelNibble, LedgerBreakdownHasAllPhases) {
  Rng rng(4);
  const Graph g = gen::dumbbell_expanders(30, 30, 4, 2, rng);
  const auto prm = NibbleParams::practical(0.05, g.num_edges(), g.volume());
  congest::RoundLedger ledger;
  (void)parallel_nibble(g, prm, rng, ledger);
  EXPECT_GT(ledger.rounds_for("ParallelNibble/generate"), 0u);
  EXPECT_GT(ledger.rounds_for("ParallelNibble/nibbles"), 0u);
  EXPECT_GT(ledger.rounds_for("ParallelNibble/select"), 0u);
}

TEST(ParallelNibble, DiameterHintLowersGenerateCharge) {
  Rng rng(5);
  const Graph g = gen::cycle(200);  // large diameter
  const auto prm = NibbleParams::practical(0.1, g.num_edges(), g.volume());
  congest::RoundLedger with_hint, without_hint;
  Rng r1(5), r2(5);
  (void)parallel_nibble(g, prm, r1, without_hint);
  (void)parallel_nibble(g, prm, r2, with_hint, 10);
  EXPECT_LT(with_hint.rounds_for("ParallelNibble/generate"),
            without_hint.rounds_for("ParallelNibble/generate"));
}

TEST(Partition, RecoversBalancedDumbbellCut) {
  Rng rng(6);
  const Graph g = gen::dumbbell_expanders(50, 50, 4, 2, rng);
  const auto prm = NibbleParams::practical(0.05, g.num_edges(), g.volume());
  congest::RoundLedger ledger;
  const auto res = partition(g, prm, rng, ledger);
  ASSERT_TRUE(res.found());
  // Lemma 8 condition 1: Vol(C) <= (47/48) Vol(V).
  EXPECT_LE(static_cast<double>(volume(g, res.cut)),
            (47.0 / 48.0) * static_cast<double>(g.volume()) + 1e-9);
  // The planted cut has conductance ~0.01; Partition should find something
  // in the O(phi log n) band.
  EXPECT_LT(res.conductance, 12.0 * prm.phi * std::log(100.0));
  EXPECT_GT(res.balance, 0.0);
  EXPECT_EQ(res.rounds, ledger.rounds());
}

TEST(Partition, StatsAreConsistent) {
  Rng rng(7);
  const Graph g = gen::dumbbell_expanders(30, 30, 4, 3, rng);
  const auto prm = NibbleParams::practical(0.08, g.num_edges(), g.volume());
  congest::RoundLedger ledger;
  const auto res = partition(g, prm, rng, ledger);
  EXPECT_GE(res.iterations, 1u);
  EXPECT_LE(res.iterations, prm.max_iterations);
  if (res.found()) {
    EXPECT_NEAR(res.conductance, conductance(g, res.cut), 1e-12);
    EXPECT_NEAR(res.balance, balance(g, res.cut), 1e-12);
  }
}

TEST(Partition, ExpanderProducesEmptyOrSparseCutOnly) {
  // Theorem 3 case 2: if Φ(G) > φ the algorithm may return ∅ or a cut, but
  // never a *bad* cut (conductance must stay in the O(φ^{1/3}...) band,
  // checked loosely here).
  Rng rng(8);
  const Graph g = gen::random_regular(100, 6, rng);
  congest::RoundLedger ledger;
  const auto res = nearly_most_balanced_sparse_cut(g, 0.01, Preset::kPractical,
                                                   rng, ledger);
  if (res.found()) {
    EXPECT_LT(res.conductance, 0.5);
  }
}

TEST(Theorem3, BalanceGuaranteeOnPlantedCut) {
  // Dumbbell with a perfectly balanced planted cut of conductance ~0.0125:
  // the most balanced sparse cut has b = 1/2, so Theorem 3 demands
  // bal(C) >= min{b/2, 1/48} = 1/48.  (Statistical over the default seed.)
  Rng rng(9);
  const Graph g = gen::dumbbell_expanders(50, 50, 4, 2, rng);
  congest::RoundLedger ledger;
  const auto res = nearly_most_balanced_sparse_cut(g, 0.02, Preset::kPractical,
                                                   rng, ledger);
  ASSERT_TRUE(res.found());
  EXPECT_GE(res.balance, 1.0 / 48.0);
}

TEST(Theorem3, PhiRunParameterization) {
  // Paper mode: phi_run = cbrt(144 phi ln^2(m e^4)) clamped at 1/12.
  const double phi = 1e-8;
  const std::size_t m = 1000;
  const double ln4 = std::log(1000.0) + 4.0;
  EXPECT_NEAR(theorem3_phi_run(phi, m, Preset::kPaper),
              std::cbrt(144.0 * phi * ln4 * ln4), 1e-12);
  // Large phi clamps.
  EXPECT_DOUBLE_EQ(theorem3_phi_run(0.5, m, Preset::kPaper), 1.0 / 12.0);
  // Practical: phi_run = phi (star_relax = 1 makes C.1* exact).
  EXPECT_DOUBLE_EQ(theorem3_phi_run(0.06, m, Preset::kPractical), 0.06);
  // Contract bounds: paper = 276 w phi_run; practical = 6 phi.
  EXPECT_DOUBLE_EQ(theorem3_conductance_bound(0.06, m, 2000, Preset::kPractical),
                   0.36);
  EXPECT_GT(theorem3_conductance_bound(1e-8, m, 2000, Preset::kPaper),
            theorem3_phi_run(1e-8, m, Preset::kPaper));
}

TEST(Theorem3, ConductanceWithinReparameterizedBand) {
  // h(phi) = O(phi^{1/3} log^{5/3} n): check the measured conductance of the
  // returned cut against the practical-mode band 12 * phi_run * ln(vol).
  Rng rng(10);
  const Graph g = gen::dumbbell_expanders(40, 60, 4, 2, rng);
  congest::RoundLedger ledger;
  const double phi = 0.02;
  const auto res = nearly_most_balanced_sparse_cut(g, phi, Preset::kPractical,
                                                   rng, ledger);
  ASSERT_TRUE(res.found());
  const double phi_run = theorem3_phi_run(phi, g.num_edges(), Preset::kPractical);
  EXPECT_LE(res.conductance,
            12.0 * phi_run * std::log(static_cast<double>(g.volume())));
}

}  // namespace
}  // namespace xd::sparsecut

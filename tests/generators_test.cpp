#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/metrics.hpp"
#include "graph/subgraph.hpp"
#include "util/check.hpp"

namespace xd {
namespace {

TEST(Generators, PathShape) {
  const Graph g = gen::path(5);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_EQ(diameter_exact(g), 4u);
}

TEST(Generators, CycleShape) {
  const Graph g = gen::cycle(6);
  EXPECT_EQ(g.num_edges(), 6u);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_EQ(diameter_exact(g), 3u);
}

TEST(Generators, CompleteShape) {
  const Graph g = gen::complete(5);
  EXPECT_EQ(g.num_edges(), 10u);
  EXPECT_EQ(diameter_exact(g), 1u);
}

TEST(Generators, StarShape) {
  const Graph g = gen::star(7);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.degree(0), 6u);
  EXPECT_EQ(diameter_exact(g), 2u);
}

TEST(Generators, GridAndTorus) {
  const Graph grid = gen::grid(3, 4);
  EXPECT_EQ(grid.num_vertices(), 12u);
  EXPECT_EQ(grid.num_edges(), 3u * 3 + 4u * 2);  // horizontal + vertical
  EXPECT_EQ(diameter_exact(grid), 5u);

  const Graph torus = gen::grid(4, 4, /*wrap=*/true);
  for (VertexId v = 0; v < torus.num_vertices(); ++v) {
    EXPECT_EQ(torus.degree(v), 4u);
  }
  EXPECT_EQ(diameter_exact(torus), 4u);
}

TEST(Generators, HypercubeShape) {
  const Graph g = gen::hypercube(4);
  EXPECT_EQ(g.num_vertices(), 16u);
  EXPECT_EQ(g.num_edges(), 32u);
  EXPECT_EQ(diameter_exact(g), 4u);
}

TEST(Generators, BinaryTreeShape) {
  const Graph g = gen::binary_tree(3);
  EXPECT_EQ(g.num_vertices(), 15u);
  EXPECT_EQ(g.num_edges(), 14u);
  EXPECT_EQ(diameter_exact(g), 6u);
}

TEST(Generators, GnpDensityRoughlyRight) {
  Rng rng(1);
  const std::size_t n = 300;
  const double p = 0.1;
  const Graph g = gen::gnp(n, p, rng);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(g.num_edges(), expected, 4 * std::sqrt(expected));
  EXPECT_EQ(g.num_loops(), 0u);
}

TEST(Generators, GnpEdgeCases) {
  Rng rng(2);
  EXPECT_EQ(gen::gnp(10, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(gen::gnp(10, 1.0, rng).num_edges(), 45u);
}

TEST(Generators, RandomRegularIsRegularAndSimple) {
  Rng rng(3);
  const Graph g = gen::random_regular(100, 4, rng);
  EXPECT_EQ(g.num_edges(), 200u);
  EXPECT_EQ(g.num_loops(), 0u);
  for (VertexId v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(Generators, RandomRegularRejectsOddProduct) {
  Rng rng(4);
  EXPECT_THROW((void)gen::random_regular(5, 3, rng), CheckError);
}

TEST(Generators, RandomRegularIsConnectedExpander) {
  Rng rng(5);
  const Graph g = gen::random_regular(200, 6, rng);
  auto [comp, count] = connected_components(g);
  (void)comp;
  EXPECT_EQ(count, 1u);
  // 6-regular random graphs have small diameter (log n-ish).
  EXPECT_LE(diameter_double_sweep(g), 8u);
}

TEST(Generators, BarbellHasBalancedLowConductanceCut) {
  const Graph g = gen::barbell(6);  // two K6 + bridge edge
  EXPECT_EQ(g.num_vertices(), 12u);
  // The clique side is a sparse cut.
  std::vector<VertexId> left;
  for (VertexId v = 0; v < 6; ++v) left.push_back(v);
  const VertexSet s(std::move(left));
  EXPECT_EQ(cut_size(g, s), 1u);
  EXPECT_NEAR(balance(g, s), 0.5, 0.02);
}

TEST(Generators, DumbbellPlantedCutMatches) {
  Rng rng(6);
  const Graph g = gen::dumbbell_expanders(60, 60, 4, 3, rng);
  std::vector<VertexId> left;
  for (VertexId v = 0; v < 60; ++v) left.push_back(v);
  const VertexSet s(std::move(left));
  EXPECT_EQ(cut_size(g, s), 3u);
  const double phi = conductance(g, s);
  EXPECT_NEAR(phi, 3.0 / (60 * 4 + 3), 0.002);
}

TEST(Generators, PlantedPartitionBlocksDenser) {
  Rng rng(7);
  const Graph g = gen::planted_partition(100, 2, 0.3, 0.02, rng);
  std::vector<VertexId> left;
  for (VertexId v = 0; v < 50; ++v) left.push_back(v);
  const VertexSet s(std::move(left));
  EXPECT_LT(conductance(g, s), 0.2);
}

TEST(Generators, CliqueChainShape) {
  const Graph g = gen::clique_chain(4, 5);
  EXPECT_EQ(g.num_vertices(), 20u);
  EXPECT_EQ(g.num_edges(), 4u * 10 + 3u);
  auto [comp, count] = connected_components(g);
  (void)comp;
  EXPECT_EQ(count, 1u);
}

TEST(Generators, PreferentialAttachmentDegreesSkewed) {
  Rng rng(8);
  const Graph g = gen::preferential_attachment(300, 2, rng);
  EXPECT_EQ(g.num_loops(), 0u);
  auto [comp, count] = connected_components(g);
  (void)comp;
  EXPECT_EQ(count, 1u);
  EXPECT_GT(g.max_degree(), 15u);  // hubs emerge
}

TEST(Generators, LollipopShape) {
  const Graph g = gen::lollipop(6, 10);
  EXPECT_EQ(g.num_vertices(), 16u);
  EXPECT_EQ(g.num_edges(), 15u + 10u);
  EXPECT_EQ(g.degree(15), 1u);  // tail end
  EXPECT_EQ(diameter_exact(g), 11u);
  // Lollipops mix badly: hitting the tail end from the clique is slow.
  auto [comp, count] = connected_components(g);
  (void)comp;
  EXPECT_EQ(count, 1u);
}

TEST(Generators, RingOfCliquesShape) {
  const Graph g = gen::ring_of_cliques(5, 4);
  EXPECT_EQ(g.num_vertices(), 20u);
  EXPECT_EQ(g.num_edges(), 5u * 6 + 5u);
  auto [comp, count] = connected_components(g);
  (void)comp;
  EXPECT_EQ(count, 1u);
  // The clique cut has exactly two crossing edges.
  std::vector<VertexId> first_clique{0, 1, 2, 3};
  EXPECT_EQ(cut_size(g, VertexSet(std::move(first_clique))), 2u);
}

TEST(Generators, WattsStrogatzInterpolates) {
  Rng r1(1), r2(2);
  const Graph lattice = gen::watts_strogatz(200, 3, 0.0, r1);
  const Graph rewired = gen::watts_strogatz(200, 3, 0.3, r2);
  // Same edge count (rewiring preserves it), much smaller diameter.
  EXPECT_EQ(lattice.num_edges(), 600u);
  EXPECT_EQ(rewired.num_edges(), 600u);
  EXPECT_EQ(lattice.num_loops(), 0u);
  EXPECT_EQ(rewired.num_loops(), 0u);
  const auto d_lattice = diameter_double_sweep(lattice);
  const auto d_rewired = diameter_double_sweep(rewired);
  EXPECT_GT(d_lattice, 2 * d_rewired);
}

TEST(Generators, WattsStrogatzRejectsBadParams) {
  Rng rng(3);
  EXPECT_THROW((void)gen::watts_strogatz(10, 5, 0.1, rng), CheckError);
  EXPECT_THROW((void)gen::watts_strogatz(20, 2, 1.5, rng), CheckError);
}

}  // namespace
}  // namespace xd

// RoundLedger unit coverage: the classic sum accounting, and the fork/join
// concurrency semantics (docs/rounds.md) -- join charges the MAX of branch
// round totals, SUMS branch messages, and advances each label by its
// parallel critical depth (per-label max across branches).

#include "congest/ledger.hpp"

#include <gtest/gtest.h>

namespace xd::congest {
namespace {

TEST(Ledger, ChargeSumsAndTracksLabels) {
  RoundLedger l;
  l.charge(3, "a");
  l.charge(4, "b");
  l.charge(5, "a");
  l.count_messages(7);
  EXPECT_EQ(l.rounds(), 12u);
  EXPECT_EQ(l.messages(), 7u);
  EXPECT_EQ(l.rounds_for("a"), 8u);
  EXPECT_EQ(l.rounds_for("b"), 4u);
  EXPECT_EQ(l.rounds_for("missing"), 0u);
}

TEST(Ledger, JoinChargesMaxRoundsAndSumsMessages) {
  RoundLedger l;
  l.charge(10, "setup");
  RoundLedger& b1 = l.fork();
  RoundLedger& b2 = l.fork();
  RoundLedger& b3 = l.fork();
  EXPECT_EQ(l.forked(), 3u);
  b1.charge(5, "work");
  b1.count_messages(100);
  b2.charge(17, "work");
  b2.count_messages(30);
  b3.charge(2, "other");
  b3.count_messages(1);
  // Branch charges are invisible until the join barrier.
  EXPECT_EQ(l.rounds(), 10u);
  l.join();
  EXPECT_EQ(l.forked(), 0u);
  EXPECT_EQ(l.rounds(), 10u + 17u);         // max(5, 17, 2)
  EXPECT_EQ(l.messages(), 100u + 30u + 1u);  // sum
}

TEST(Ledger, JoinBreakdownIsPerLabelParallelDepth) {
  RoundLedger l;
  RoundLedger& b1 = l.fork();
  RoundLedger& b2 = l.fork();
  b1.charge(5, "ldd");
  b1.charge(1, "cut");
  b2.charge(2, "ldd");
  b2.charge(9, "cut");
  l.join();
  // Totals: max(6, 11) = 11; labels: max per label across branches.
  EXPECT_EQ(l.rounds(), 11u);
  EXPECT_EQ(l.rounds_for("ldd"), 5u);
  EXPECT_EQ(l.rounds_for("cut"), 9u);
  // Per-label entries may sum past rounds() after a join -- each is its
  // label's critical depth, not a partition of the clock.
  EXPECT_GE(l.rounds_for("ldd") + l.rounds_for("cut"), l.rounds());
}

TEST(Ledger, NestedForkJoinResolvesBottomUp) {
  RoundLedger l;
  RoundLedger& child = l.fork();
  RoundLedger& g1 = child.fork();
  RoundLedger& g2 = child.fork();
  g1.charge(4, "deep");
  g2.charge(6, "deep");
  child.charge(3, "mid");
  RoundLedger& sibling = l.fork();
  sibling.charge(7, "mid");
  // join() on the parent first joins each child's outstanding forks:
  // child = 3 + max(4, 6) = 9; parent = max(9, 7) = 9.
  l.join();
  EXPECT_EQ(l.rounds(), 9u);
  EXPECT_EQ(l.rounds_for("mid"), 7u);   // max(3, 7)
  EXPECT_EQ(l.rounds_for("deep"), 6u);  // max(6 via child, 0 via sibling)
}

TEST(Ledger, JoinWithoutForksIsNoOp) {
  RoundLedger l;
  l.charge(5, "x");
  l.join();
  EXPECT_EQ(l.rounds(), 5u);
  EXPECT_EQ(l.rounds_for("x"), 5u);
}

TEST(Ledger, ResetClearsForkedChildren) {
  RoundLedger l;
  l.charge(5, "x");
  RoundLedger& b = l.fork();
  b.charge(100, "y");
  ASSERT_EQ(l.forked(), 1u);
  l.reset();
  EXPECT_EQ(l.forked(), 0u);
  EXPECT_EQ(l.rounds(), 0u);
  EXPECT_EQ(l.messages(), 0u);
  EXPECT_TRUE(l.breakdown().empty());
  // A discarded branch can never leak into a later join.
  RoundLedger& fresh = l.fork();
  fresh.charge(2, "z");
  l.join();
  EXPECT_EQ(l.rounds(), 2u);
  EXPECT_EQ(l.rounds_for("y"), 0u);
}

TEST(Ledger, ReportIsDeterministicAndSorted) {
  RoundLedger l;
  l.charge(1, "zeta");
  l.charge(2, "alpha");
  l.charge(3, "mid");
  l.count_messages(4);
  const std::string r1 = l.report();
  const std::string r2 = l.report();
  EXPECT_EQ(r1, r2);
  // Labels appear in sorted order.
  const auto pos_alpha = r1.find("alpha");
  const auto pos_mid = r1.find("mid");
  const auto pos_zeta = r1.find("zeta");
  ASSERT_NE(pos_alpha, std::string::npos);
  ASSERT_NE(pos_mid, std::string::npos);
  ASSERT_NE(pos_zeta, std::string::npos);
  EXPECT_LT(pos_alpha, pos_mid);
  EXPECT_LT(pos_mid, pos_zeta);

  // Identical charge histories in different orders produce equal reports.
  RoundLedger l2;
  l2.count_messages(4);
  l2.charge(3, "mid");
  l2.charge(1, "zeta");
  l2.charge(2, "alpha");
  EXPECT_EQ(l.report(), l2.report());
}

TEST(Ledger, ForkedBranchAddressesAreStable) {
  RoundLedger l;
  RoundLedger& first = l.fork();
  first.charge(1, "a");
  // Growing the children list must not invalidate earlier branches (the
  // scheduler forks the whole epoch before any worker runs).
  for (int i = 0; i < 100; ++i) l.fork();
  first.charge(1, "a");
  l.join();
  EXPECT_EQ(l.rounds(), 2u);
}

}  // namespace
}  // namespace xd::congest

#include "util/fault_plane.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "congest/ledger.hpp"
#include "congest/network.hpp"
#include "congest/scheduler.hpp"
#include "congest/shard_plane.hpp"
#include "corpus.hpp"
#include "serve/artifact.hpp"
#include "serve/service.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace xd {
namespace {

using congest::EpochScheduler;
using congest::Envelope;
using congest::Message;
using congest::Network;
using congest::Outbox;
using congest::RoundLedger;
using congest::VertexProgram;

/// Every test arms the process-wide fault plane; the guard disarms it no
/// matter how the test exits, so cases stay independent.
struct FaultGuard {
  FaultGuard() { FaultPlane::instance().reset(); }
  ~FaultGuard() { FaultPlane::instance().reset(); }
};

// ---------------------------------------------------------------- registry

TEST(FaultPlaneSpec, TriggersFollowTheLedger) {
  FaultGuard guard;
  FaultPlane& fp = FaultPlane::instance();
  fp.configure("seed=42,shard.drop:every=3,io.bitflip:at=2,sched.throw:p=1/max=2");

  EXPECT_TRUE(fp.armed(FaultCategory::kShard));
  EXPECT_TRUE(fp.armed(FaultCategory::kIo));
  EXPECT_TRUE(fp.armed(FaultCategory::kSched));
  EXPECT_FALSE(fp.armed(FaultCategory::kServe));

  // every=3: fires on hits 3, 6, 9, ...
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) fired.push_back(fp.should_fire("shard.drop"));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, true,
                                      false, false, true}));
  EXPECT_EQ(fp.hits("shard.drop"), 9u);
  EXPECT_EQ(fp.fires("shard.drop"), 3u);

  // at=2: exactly the second hit.
  EXPECT_FALSE(fp.should_fire("io.bitflip"));
  EXPECT_TRUE(fp.should_fire("io.bitflip"));
  EXPECT_FALSE(fp.should_fire("io.bitflip"));

  // p=1 capped by max=2: two fires, then the cap holds.
  EXPECT_TRUE(fp.should_fire("sched.throw", 1));
  EXPECT_TRUE(fp.should_fire("sched.throw", 2));
  EXPECT_FALSE(fp.should_fire("sched.throw", 3));
  EXPECT_EQ(fp.fires("sched.throw"), 2u);

  // Unarmed sites never fire, and counters accumulate.
  EXPECT_FALSE(fp.should_fire("serve.flush"));
  fp.count("shard.retransmits", 2);
  fp.count("shard.retransmits");
  EXPECT_EQ(fp.counter("shard.retransmits"), 3u);
  EXPECT_EQ(fp.counter("never.bumped"), 0u);
}

TEST(FaultPlaneSpec, ProbabilityDecisionsAreSeedDeterministic) {
  FaultGuard guard;
  FaultPlane& fp = FaultPlane::instance();
  fp.configure("seed=7,shard.corrupt:p=0.5");
  std::vector<bool> first;
  for (std::uint64_t k = 0; k < 64; ++k) {
    first.push_back(fp.should_fire("shard.corrupt", k));
  }
  // Same seed, same keys: the exact same schedule.
  fp.reset();
  fp.configure("seed=7,shard.corrupt:p=0.5");
  for (std::uint64_t k = 0; k < 64; ++k) {
    EXPECT_EQ(fp.should_fire("shard.corrupt", k), first[k]) << k;
  }
  // A different seed decides differently somewhere, and p=0 / p=1 bound it.
  fp.reset();
  fp.configure("seed=8,shard.corrupt:p=0.5");
  bool any_diff = false;
  for (std::uint64_t k = 0; k < 64; ++k) {
    any_diff |= fp.should_fire("shard.corrupt", k) != first[k];
  }
  EXPECT_TRUE(any_diff);
  fp.reset();
  fp.configure("shard.corrupt:p=0");
  EXPECT_FALSE(fp.should_fire("shard.corrupt", 1));
  fp.reset();
  fp.configure("shard.corrupt:p=1");
  EXPECT_TRUE(fp.should_fire("shard.corrupt", 1));
  EXPECT_EQ(fp.decision_mix("shard.corrupt", 9),
            fp.decision_mix("shard.corrupt", 9));
  EXPECT_NE(fp.decision_mix("shard.corrupt", 9),
            fp.decision_mix("shard.corrupt", 10));
}

TEST(FaultPlaneSpec, MalformedSpecsThrowLoudly) {
  FaultGuard guard;
  FaultPlane& fp = FaultPlane::instance();
  EXPECT_THROW(fp.configure("bogus.site:p=0.5"), CheckError);
  EXPECT_THROW(fp.configure("shard.drop"), CheckError);        // no trigger
  EXPECT_THROW(fp.configure("shard.drop:"), CheckError);       // empty trigger
  EXPECT_THROW(fp.configure("shard.drop:banana=1"), CheckError);
  EXPECT_THROW(fp.configure("shard.drop:p=1.5"), CheckError);  // p > 1
  EXPECT_THROW(fp.configure("shard.drop:p=x"), CheckError);
  EXPECT_THROW(fp.configure("shard.drop:every=0"), CheckError);
  EXPECT_THROW(fp.configure("shard.drop:every=3x"), CheckError);
  EXPECT_THROW(fp.configure("seed=notanumber"), CheckError);
  EXPECT_THROW(fp.set_hook("no.such", [](int) {}), CheckError);
  // Nothing partial should have armed anything that then fires.
  fp.reset();
  EXPECT_FALSE(fp.armed(FaultCategory::kShard));
}

// --------------------------------------------------------------- scheduler

TEST(SchedulerFaults, SpawnHookIsRegistryBackedAndThreadSafe) {
  FaultGuard guard;
  std::atomic<int> calls{0};
  congest::detail::set_spawn_fault_hook_for_testing(
      [&](int /*w*/) { calls.fetch_add(1, std::memory_order_relaxed); });
  EpochScheduler pool(4);
  std::atomic<int> ran{0};
  pool.run(8, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 8);
  EXPECT_EQ(calls.load(), 4);  // once per spawned worker
  congest::detail::set_spawn_fault_hook_for_testing({});
  pool.run(8, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(calls.load(), 4);  // cleared hook no longer fires
}

TEST(SchedulerFaults, InjectedSpawnFailureSurfacesAndPoolRecovers) {
  FaultGuard guard;
  FaultPlane::instance().configure("sched.spawn:at=3/max=1");
  EpochScheduler pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.run(16, [&](std::size_t) { ran.fetch_add(1); }),
               CheckError);
  // The partial pool was joined, the cap exhausted the fault: the next
  // epoch runs clean on the same scheduler -- no leaked threads, no wedge.
  ran = 0;
  pool.run(16, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 16);
}

TEST(SchedulerFaults, MidEpochThrowPropagatesFirstError) {
  FaultGuard guard;
  FaultPlane::instance().configure("sched.throw:at=1/max=1");
  EpochScheduler pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.run(16, [&](std::size_t) { ran.fetch_add(1); }),
               CheckError);
  ran = 0;
  pool.run(16, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 16);
}

TEST(SchedulerFaults, InjectedStallOnlySlowsTheEpoch) {
  FaultGuard guard;
  FaultPlane::instance().configure("sched.stall:every=2");
  EpochScheduler pool(4);
  std::atomic<int> ran{0};
  pool.run(12, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 12);  // stragglers change wall-clock, never results
}

// -------------------------------------------------------------- chaos grid

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

/// Same deliberately messy shape as shard_test's Chatter: descending-slot
/// sends, same-slot re-sends, silent vertices, full-envelope fold hash.
struct Chatter final : VertexProgram {
  explicit Chatter(const Graph& g) : g(&g), acc(g.num_vertices(), 0) {}

  const Graph* g;
  int round = 0;
  std::vector<std::uint64_t> acc;

  void on_send(VertexId v, Outbox& out) override {
    if (v % 3 == 2) return;
    const auto nbrs = g->neighbors(v);
    for (std::uint32_t s = static_cast<std::uint32_t>(nbrs.size()); s-- > 0;) {
      if (nbrs[s] == v) continue;
      out.send(s, Message{static_cast<std::uint32_t>(round),
                          (std::uint64_t{v} << 32) | s, v + 1});
      if (s == 0 && round % 2 == 0) out.send(s, Message{7, v});
    }
  }

  void on_receive(VertexId v, std::span<const Envelope> inbox) override {
    for (const Envelope& e : inbox) {
      acc[v] = mix(acc[v], e.from);
      acc[v] = mix(acc[v], e.msg.tag);
      acc[v] = mix(acc[v], e.msg.words[0]);
      acc[v] = mix(acc[v], e.msg.words[1]);
    }
  }
};

struct RunResult {
  std::vector<std::uint64_t> acc;
  std::vector<std::uint64_t> rounds_per_step;
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;

  friend bool operator==(const RunResult&, const RunResult&) = default;
};

RunResult run_chatter(const Graph& g, int shards, int threads) {
  RoundLedger ledger;
  Network net(g, ledger, /*seed=*/7);
  net.set_shards(shards);
  net.set_threads(threads);
  Chatter program(g);
  RunResult r;
  for (program.round = 0; program.round < 4; ++program.round) {
    r.rounds_per_step.push_back(net.run_round(program, "chatter"));
  }
  r.acc = program.acc;
  r.rounds = ledger.rounds();
  r.messages = ledger.messages();
  return r;
}

// The tentpole pin: under every recoverable fault schedule -- each fault
// kind, count and probability triggers, at every shards x threads
// combination -- results, delivery order, and round charges are
// bit-identical to the fault-free shared-arena run.
TEST(ChaosGrid, RecoverableFaultsAreBitIdentical) {
  FaultGuard guard;
  const Graph g = corpus::topology("expander");
  const RunResult baseline = run_chatter(g, /*shards=*/1, /*threads=*/1);
  ASSERT_GT(baseline.messages, 0u);

  const char* kKinds[] = {"drop", "corrupt", "dup", "reorder"};
  const char* kRates[] = {"every=3", "p=0.3"};
  for (const char* kind : kKinds) {
    for (const char* rate : kRates) {
      for (const int shards : {2, 4, 8}) {
        for (const int threads : {1, 2, 8}) {
          SCOPED_TRACE(std::string(kind) + ":" + rate +
                       " shards=" + std::to_string(shards) +
                       " threads=" + std::to_string(threads));
          FaultPlane::instance().reset();
          FaultPlane::instance().configure(
              std::string("seed=11,shard.") + kind + ":" + rate);
          EXPECT_EQ(run_chatter(g, shards, threads), baseline);
        }
      }
    }
  }

  // All four fault kinds at once, still bit-identical.
  FaultPlane::instance().reset();
  FaultPlane::instance().configure(
      "seed=11,shard.drop:every=5,shard.corrupt:every=7,shard.dup:every=9,"
      "shard.reorder:every=3");
  EXPECT_EQ(run_chatter(g, 4, 8), baseline);
  EXPECT_GT(FaultPlane::instance().fires("shard.drop"), 0u);
  EXPECT_GT(FaultPlane::instance().fires("shard.corrupt"), 0u);
}

// A fault schedule no retry discipline can beat (every frame of a column
// dropped on every attempt) must surface as a typed CheckError -- bounded
// re-request, then a loud failure, never a hang or silent loss.
TEST(ChaosGrid, UnrecoverableDropIsATypedError) {
  FaultGuard guard;
  const Graph g = corpus::topology("expander");
  FaultPlane::instance().configure("shard.drop:every=1");
  EXPECT_THROW(run_chatter(g, 4, 2), CheckError);
}

// Transport counters see the injected faults and the recoveries.
TEST(ChaosGrid, WireStatsCountFaultsAndRetransmits) {
  FaultGuard guard;
  const Graph g = corpus::topology("expander");
  FaultPlane::instance().configure("seed=11,shard.drop:every=3");
  RoundLedger ledger;
  Network net(g, ledger, /*seed=*/7);
  net.set_shards(4);
  Chatter program(g);
  program.round = 0;
  (void)net.run_round(program, "chatter");
  const auto& wire = net.shard_delivery_stats().wire;
  EXPECT_GT(wire.frames, 0u);
  EXPECT_GT(wire.dropped, 0u);
  EXPECT_GT(wire.retransmits, 0u);
  EXPECT_EQ(wire.retransmits,
            FaultPlane::instance().counter("shard.retransmits"));
}

// --------------------------------------------------------- artifact loader

serve::PreparedArtifact small_artifact() {
  const Graph g = corpus::topology("gnp-small");
  serve::PrepareParams prm;
  prm.enumerate.backend = triangle::RouterBackend::kTree;
  return serve::prepare_artifact(g, prm);
}

// Every injected corruption of the artifact bytes -- truncation, a flipped
// bit anywhere (the file CRC catches what structural checks cannot), a
// torn short read -- must surface as a typed CheckError from load_artifact,
// never UB (this test is in the ASan/UBSan CI jobs).
TEST(IoFaults, EveryCorruptionLoadsAsTypedError) {
  const std::string path = testing::TempDir() + "xd_fault_artifact.xda1";
  const auto art = small_artifact();
  serve::save_artifact(art, path);

  {
    FaultGuard guard;  // control: loads clean while disarmed
    const auto back = serve::load_artifact(path);
    EXPECT_EQ(back.triangles.size(), art.triangles.size());
  }
  for (const char* site : {"io.truncate", "io.bitflip", "io.short_read"}) {
    for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
      SCOPED_TRACE(std::string(site) + " seed=" + std::to_string(seed));
      FaultGuard guard;
      FaultPlane::instance().configure(std::string(site) + ":every=1");
      FaultPlane::instance().set_seed(seed);
      EXPECT_THROW((void)serve::load_artifact(path), CheckError);
      EXPECT_EQ(FaultPlane::instance().fires(site), 1u);
    }
  }
  std::remove(path.c_str());
}

// A pre-CRC artifact (zero in the reserved slot) still loads: the checksum
// is an upgrade, not a format break.
TEST(IoFaults, LegacyArtifactWithoutChecksumStillLoads) {
  FaultGuard guard;
  const std::string path = testing::TempDir() + "xd_fault_legacy.xda1";
  const auto art = small_artifact();
  serve::save_artifact(art, path);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(24);
    const char zeros[8] = {0};
    f.write(zeros, 8);
  }
  const auto back = serve::load_artifact(path);
  EXPECT_EQ(back.triangles.size(), art.triangles.size());
  std::remove(path.c_str());
}

// ------------------------------------------------------------ query service

TEST(ServiceFaults, DeadlineDegradesDeterministically) {
  FaultGuard guard;
  const auto art = small_artifact();
  serve::ServiceParams prm;
  prm.deadline_rounds = 2;

  const auto run = [&](int threads) {
    serve::ServiceParams p = prm;
    p.threads = threads;
    serve::QueryService svc(art, p);
    for (VertexId v = 0; v < 20; ++v) {
      EXPECT_TRUE(svc.submit(0, {serve::QueryKind::kTrianglesOf, v, 0, 0}));
      EXPECT_TRUE(svc.submit(1, {serve::QueryKind::kRoute, v,
                                 static_cast<VertexId>(59 - v), 0}));
    }
    auto rep = svc.flush_report();
    EXPECT_EQ(rep.failure, serve::FlushFailure::kNone);
    EXPECT_FALSE(rep.degraded);
    return std::make_pair(std::move(rep.results), svc.health());
  };

  const auto [results, health] = run(1);
  std::size_t degraded = 0;
  for (const auto& r : results) {
    if (!r.exact) {
      ++degraded;
      EXPECT_EQ(r.rounds_charged, prm.deadline_rounds);
      if (r.kind == serve::QueryKind::kTrianglesOf) {
        // Only what fits in the budget's convergecast rounds came back.
        EXPECT_LE(r.ids.size(), (prm.deadline_rounds - 1) * 8);
        EXPECT_EQ(r.value, r.ids.size());
      }
      if (r.kind == serve::QueryKind::kRoute) {
        EXPECT_TRUE(r.ids.empty());  // estimate, no delivered path
      }
    }
  }
  ASSERT_GT(degraded, 0u);  // the stream really exercised the deadline
  EXPECT_EQ(health.degraded_answers, degraded);
  EXPECT_EQ(health.deadline_hits, degraded);
  EXPECT_EQ(health.faults_seen, 0u);

  // Deadline degradation is a model decision: bit-identical at any thread
  // count.
  const auto [results8, health8] = run(8);
  ASSERT_EQ(results8.size(), results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results8[i].exact, results[i].exact) << i;
    EXPECT_EQ(results8[i].value, results[i].value) << i;
    EXPECT_EQ(results8[i].ids, results[i].ids) << i;
    EXPECT_EQ(results8[i].rounds_charged, results[i].rounds_charged) << i;
  }
  EXPECT_EQ(health8.degraded_answers, health.degraded_answers);
}

TEST(ServiceFaults, FailedFlushRetriesAndChargesOnce) {
  const auto art = small_artifact();
  serve::ServiceParams prm;
  const auto submit_batch = [&](serve::QueryService& svc) {
    for (VertexId v = 0; v < 10; ++v) {
      EXPECT_TRUE(svc.submit(0, {serve::QueryKind::kTrianglesOf, v, 0, 0}));
      EXPECT_TRUE(svc.submit(1, {serve::QueryKind::kRoute, v,
                                 static_cast<VertexId>(v + 30), 0}));
    }
  };

  // Clean reference run.
  FaultPlane::instance().reset();
  serve::QueryService clean(art, prm);
  submit_batch(clean);
  const auto clean_rep = clean.flush_report();
  EXPECT_EQ(clean_rep.attempts, 1);

  // First flush attempt faulted: one retry, identical results, identical
  // committed charges (the aborted attempt ran on a scratch ledger).
  FaultGuard guard;
  FaultPlane::instance().configure("serve.flush:at=1/max=1");
  serve::QueryService faulty(art, prm);
  submit_batch(faulty);
  const auto rep = faulty.flush_report();
  EXPECT_EQ(rep.attempts, 2);
  EXPECT_EQ(rep.failure, serve::FlushFailure::kNone);
  EXPECT_FALSE(rep.degraded);
  ASSERT_EQ(rep.results.size(), clean_rep.results.size());
  for (std::size_t i = 0; i < rep.results.size(); ++i) {
    EXPECT_EQ(rep.results[i].value, clean_rep.results[i].value) << i;
    EXPECT_EQ(rep.results[i].exact, clean_rep.results[i].exact) << i;
    EXPECT_EQ(rep.results[i].rounds_charged,
              clean_rep.results[i].rounds_charged)
        << i;
    EXPECT_EQ(rep.results[i].ids, clean_rep.results[i].ids) << i;
  }
  EXPECT_EQ(faulty.ledger().rounds(), clean.ledger().rounds());
  EXPECT_EQ(faulty.ledger().messages(), clean.ledger().messages());
  const auto health = faulty.health();
  EXPECT_EQ(health.faults_seen, 1u);
  EXPECT_EQ(health.flush_retries, 1u);
  EXPECT_EQ(health.degraded_answers, 0u);
}

TEST(ServiceFaults, RetryExhaustionDegradesInsteadOfThrowing) {
  FaultGuard guard;
  const auto art = small_artifact();
  FaultPlane::instance().configure("serve.flush:every=1");
  serve::ServiceParams prm;
  prm.max_flush_retries = 2;
  prm.backoff_base_us = 1;  // keep the test quick
  serve::QueryService svc(art, prm);
  EXPECT_TRUE(svc.submit(0, {serve::QueryKind::kTriangleCount, 5, 0, 0}));
  EXPECT_TRUE(svc.submit(0, {serve::QueryKind::kTrianglesOf, 3, 0, 0}));
  EXPECT_TRUE(svc.submit(1, {serve::QueryKind::kComponentOf, 7, 0, 0}));
  const auto rep = svc.flush_report();
  EXPECT_EQ(rep.attempts, 3);  // 1 try + 2 retries
  EXPECT_EQ(rep.failure, serve::FlushFailure::kRetryExhausted);
  EXPECT_TRUE(rep.degraded);
  ASSERT_EQ(rep.results.size(), 3u);

  // kTriangleCount falls back to the component-local count of operand a.
  const auto& count = rep.results[0];
  EXPECT_TRUE(count.ok);
  EXPECT_FALSE(count.exact);
  EXPECT_EQ(count.value, art.comp_triangles[art.component_of(5)]);
  EXPECT_EQ(count.rounds_charged, 1u);
  // kTrianglesOf degrades to a count without the id payload.
  const auto& tris = rep.results[1];
  EXPECT_TRUE(tris.ok);
  EXPECT_FALSE(tris.exact);
  EXPECT_EQ(tris.value, art.triangles_of(3).size());
  EXPECT_TRUE(tris.ids.empty());
  // O(1) local lookups stay exact even in the fallback.
  const auto& comp = rep.results[2];
  EXPECT_TRUE(comp.ok);
  EXPECT_TRUE(comp.exact);
  EXPECT_EQ(comp.value, art.component_of(7));

  const auto health = svc.health();
  EXPECT_EQ(health.faults_seen, 3u);
  EXPECT_EQ(health.flush_retries, 2u);
  EXPECT_EQ(health.degraded_answers, 2u);
  EXPECT_EQ(svc.total_served(), 3u);
  EXPECT_EQ(svc.pending(), 0u);

  // The fault cleared: the next flush commits normally.
  FaultPlane::instance().reset();
  EXPECT_TRUE(svc.submit(0, {serve::QueryKind::kTriangleCount, 0, 0, 0}));
  const auto rep2 = svc.flush_report();
  EXPECT_EQ(rep2.failure, serve::FlushFailure::kNone);
  ASSERT_EQ(rep2.results.size(), 1u);
  EXPECT_TRUE(rep2.results[0].exact);
  EXPECT_EQ(rep2.results[0].value, art.triangle_count());
}

}  // namespace
}  // namespace xd

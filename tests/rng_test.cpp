#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/check.hpp"

namespace xd {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng base(7);
  Rng f1 = base.fork(10);
  Rng f2 = base.fork(10);
  EXPECT_EQ(f1(), f2());
  // Adjacent fork ids decorrelated.
  Rng g1 = base.fork(10);
  Rng g3 = base.fork(11);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (g1() == g3());
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkDoesNotAdvanceParent) {
  Rng a(9);
  Rng b(9);
  (void)a.fork(3);
  EXPECT_EQ(a(), b());
}

TEST(Rng, NextBelowInRangeAndRoughlyUniform) {
  Rng rng(5);
  std::vector<int> counts(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    const auto x = rng.next_below(10);
    ASSERT_LT(x, 10u);
    ++counts[x];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, trials / 10, trials / 100);
  }
}

TEST(Rng, NextIntBounds) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.next_int(-5, 5);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 5);
  }
  EXPECT_EQ(rng.next_int(3, 3), 3);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(13);
  const double beta = 0.5;
  double sum = 0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) sum += rng.next_exponential(beta);
  EXPECT_NEAR(sum / trials, 1.0 / beta, 0.05);
}

TEST(Rng, ExponentialRejectsNonPositiveBeta) {
  Rng rng(1);
  EXPECT_THROW(rng.next_exponential(0.0), CheckError);
}

TEST(Rng, NibbleScaleDistribution) {
  // Pr[b = i] = 2^{-i} / (1 - 2^{-ell}).
  Rng rng(99);
  const int ell = 5;
  std::vector<int> counts(ell + 1, 0);
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) {
    const int b = rng.next_nibble_scale(ell);
    ASSERT_GE(b, 1);
    ASSERT_LE(b, ell);
    ++counts[b];
  }
  const double z = 1.0 - std::ldexp(1.0, -ell);
  for (int i = 1; i <= ell; ++i) {
    const double expected = trials * std::ldexp(1.0, -i) / z;
    EXPECT_NEAR(counts[i], expected, 5 * std::sqrt(expected) + 30.0);
  }
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(3);
  const auto perm = rng.permutation(100);
  std::vector<char> seen(100, 0);
  for (auto v : perm) {
    ASSERT_LT(v, 100u);
    EXPECT_FALSE(seen[v]);
    seen[v] = 1;
  }
}

TEST(Rng, WeightedSamplingProportional) {
  Rng rng(17);
  const std::vector<std::uint64_t> weights{1, 0, 3};
  std::vector<int> counts(3, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[rng.next_weighted(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0], trials / 4, trials / 50);
  EXPECT_NEAR(counts[2], 3 * trials / 4, trials / 50);
}

TEST(Rng, WeightedSamplingRejectsZeroTotal) {
  Rng rng(1);
  std::vector<std::uint64_t> weights{0, 0};
  EXPECT_THROW(rng.next_weighted(weights), CheckError);
}

}  // namespace
}  // namespace xd

#include "primitives/tree_search.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "primitives/forest.hpp"
#include "util/check.hpp"

namespace xd::prim {
namespace {

using congest::Network;
using congest::RoundLedger;

/// Centralized oracle: the rank-j vertex and prefix weight by (key desc,
/// id asc) order.
std::pair<VertexId, std::uint64_t> oracle(const std::vector<double>& keys,
                                          const std::vector<std::uint64_t>& weights,
                                          const std::vector<char>& member,
                                          std::uint64_t j) {
  std::vector<VertexId> order;
  for (VertexId v = 0; v < keys.size(); ++v) {
    if (member[v]) order.push_back(v);
  }
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    if (keys[a] != keys[b]) return keys[a] > keys[b];
    return a < b;
  });
  std::uint64_t w = 0;
  for (std::uint64_t i = 0; i < j; ++i) w += weights[order[i]];
  return {order[j - 1], w};
}

class RankSelectOracle : public ::testing::TestWithParam<int> {};

TEST_P(RankSelectOracle, MatchesCentralizedOrder) {
  const int seed = GetParam();
  Rng rng(seed);
  const Graph g = gen::random_regular(60, 4, rng);
  RoundLedger ledger;
  Network net(g, ledger, static_cast<std::uint64_t>(seed));
  const std::vector<char> active(60, 1);
  const Forest f = build_forest(net, active, "forest");
  const VertexId root = f.roots()[0];

  std::vector<double> keys(60);
  std::vector<std::uint64_t> weights(60);
  for (VertexId v = 0; v < 60; ++v) {
    keys[v] = rng.next_double();
    weights[v] = 1 + rng.next_below(5);
  }
  // Plant some equal keys to exercise the id tie-break.
  keys[10] = keys[20] = keys[30];

  for (const std::uint64_t j : {1ull, 2ull, 17ull, 30ull, 59ull, 60ull}) {
    const auto got = rank_select(net, f, root, keys, weights, j, "select");
    ASSERT_TRUE(got.has_value()) << "j=" << j;
    const auto [expect_v, expect_w] = oracle(keys, weights, active, j);
    EXPECT_EQ(got->vertex, expect_v) << "j=" << j;
    EXPECT_EQ(got->prefix_weight, expect_w) << "j=" << j;
    EXPECT_DOUBLE_EQ(got->key, keys[expect_v]);
    EXPECT_GE(got->pivots, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RankSelectOracle, ::testing::Values(1, 2, 3, 4));

TEST(RankSelect, OutOfRangeReturnsNullopt) {
  Rng rng(9);
  const Graph g = gen::cycle(10);
  RoundLedger ledger;
  Network net(g, ledger, 9);
  const std::vector<char> active(10, 1);
  const Forest f = build_forest(net, active, "forest");
  std::vector<double> keys(10, 1.0);
  std::vector<std::uint64_t> weights(10, 1);
  EXPECT_FALSE(
      rank_select(net, f, f.roots()[0], keys, weights, 11, "select").has_value());
}

TEST(RankSelect, RespectsTreeMembership) {
  // Two components: selection in one tree never returns the other's
  // vertices.
  GraphBuilder b(8);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(3, 4).add_edge(4, 5).add_edge(5, 6);
  const Graph g = b.build();
  RoundLedger ledger;
  Network net(g, ledger, 3);
  std::vector<char> active(8, 1);
  active[7] = 0;
  const Forest f = build_forest(net, active, "forest");
  std::vector<double> keys(8);
  for (VertexId v = 0; v < 8; ++v) keys[v] = static_cast<double>(v);
  std::vector<std::uint64_t> weights(8, 1);

  const auto got = rank_select(net, f, 3, keys, weights, 1, "select");
  ASSERT_TRUE(got.has_value());
  // Rank 1 = largest key within tree {3,4,5,6} = vertex 6.
  EXPECT_EQ(got->vertex, 6u);
  EXPECT_FALSE(rank_select(net, f, 3, keys, weights, 5, "select").has_value());
}

TEST(CountPrefix, CountsAndWeights) {
  Rng rng(5);
  const Graph g = gen::path(6);
  RoundLedger ledger;
  Network net(g, ledger, 5);
  const std::vector<char> active(6, 1);
  const Forest f = build_forest(net, active, "forest");
  std::vector<double> keys{0.9, 0.8, 0.7, 0.6, 0.5, 0.4};
  std::vector<std::uint64_t> weights{1, 2, 3, 4, 5, 6};
  const auto [count, weight] =
      count_prefix(net, f, 0, keys, weights, OrderKey{0.7, 2}, "count");
  EXPECT_EQ(count, 3u);       // keys 0.9, 0.8, 0.7
  EXPECT_EQ(weight, 1u + 2 + 3);
}

TEST(RankSelect, RoundCostScalesWithHeightTimesLogn) {
  // Lemma 9's bill: O(height * log n) per query.
  Rng rng(11);
  const Graph g = gen::path(64);
  RoundLedger ledger;
  Network net(g, ledger, 11);
  const std::vector<char> active(64, 1);
  const Forest f = build_forest(net, active, "forest");
  std::vector<double> keys(64);
  std::vector<std::uint64_t> weights(64, 1);
  for (VertexId v = 0; v < 64; ++v) keys[v] = rng.next_double();

  ledger.reset();
  const auto got = rank_select(net, f, 0, keys, weights, 32, "select");
  ASSERT_TRUE(got.has_value());
  // Each pivot costs ~3 height-passes (sample + 2 convergecasts); with
  // O(log n) expected pivots the total should stay well under
  // 20 * height * log2(n).
  EXPECT_LE(ledger.rounds(), 20u * f.height * 6);
  EXPECT_GE(ledger.rounds(), f.height);
}

}  // namespace
}  // namespace xd::prim

// GraphView: the zero-copy G{U} overlay must be observationally equivalent
// to the materializing constructors (induced_with_loops / live_subgraph)
// under the monotone renumbering, and the paths that promise to stay
// view-only must build no intermediate CSR (GraphBuilder::total_builds hook).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <tuple>

#include "core/xd.hpp"
#include "util/check.hpp"

namespace xd {
namespace {

Graph make_family(const std::string& family, std::size_t n, Rng& rng) {
  if (family == "gnp_sparse") {
    return gen::gnp(n, 6.0 / static_cast<double>(n), rng);
  }
  if (family == "gnp_dense") return gen::gnp(n, 0.3, rng);
  if (family == "regular") return gen::random_regular(n - n % 2, 4, rng);
  if (family == "cliques") {
    return gen::ring_of_cliques(std::max<std::size_t>(n / 6, 2), 6);
  }
  XD_CHECK_MSG(false, "unknown family " << family);
  return {};
}

/// A random active set plus a random removal overlay (non-loop edges only).
struct Overlay {
  VertexSet active;
  std::vector<char> removed;
};

Overlay random_overlay(const Graph& g, Rng& rng, double keep_vertex,
                       double remove_edge) {
  Overlay out;
  std::vector<VertexId> ids;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (rng.next_bool(keep_vertex)) ids.push_back(v);
  }
  if (ids.empty()) ids.push_back(0);
  out.active = VertexSet(std::move(ids));
  out.removed.assign(g.num_edges(), 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!g.is_loop(e) && rng.next_bool(remove_edge)) out.removed[e] = 1;
  }
  return out;
}

/// Multiset of neighbor reads per vertex, as sorted vectors.
std::vector<VertexId> neighbor_multiset(const Graph& g, VertexId v) {
  auto nbrs = g.neighbors(v);
  std::vector<VertexId> out(nbrs.begin(), nbrs.end());
  std::sort(out.begin(), out.end());
  return out;
}

template <typename ViewLike>
std::vector<VertexId> view_neighbor_multiset(const ViewLike& view, VertexId v) {
  std::vector<VertexId> out;
  for (VertexId u : view.neighbors(v)) out.push_back(u);
  std::sort(out.begin(), out.end());
  return out;
}

using GridParam = std::tuple<std::string, std::size_t, int>;

class GraphViewEquivalence : public ::testing::TestWithParam<GridParam> {};

// GraphView(g, removed, U) ≡ live_subgraph(g, removed, U): degrees,
// volume, |E| splits, loop counts, and neighbor multisets all match under
// the to_parent/from_parent renumbering.
TEST_P(GraphViewEquivalence, MatchesLiveSubgraph) {
  const auto& [family, n, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const Graph g = make_family(family, n, rng);
  const Overlay ov = random_overlay(g, rng, 0.6, 0.15);

  const GraphView view(g, &ov.removed, ov.active);
  const LiveSubgraph live = live_subgraph(g, ov.removed, ov.active);

  ASSERT_EQ(view.num_active(), live.graph.num_vertices());
  EXPECT_EQ(view.volume(), live.graph.volume());
  EXPECT_EQ(view.num_edges(), live.graph.num_edges());
  EXPECT_EQ(view.num_nonloop_edges(), live.graph.num_nonloop_edges());
  EXPECT_EQ(view.num_loops(), live.graph.num_loops());

  for (VertexId lv = 0; lv < live.graph.num_vertices(); ++lv) {
    const VertexId pv = live.to_parent[lv];
    EXPECT_TRUE(view.active(pv));
    ASSERT_EQ(view.degree(pv), live.graph.degree(lv));
    EXPECT_EQ(view.loops_at(pv), live.graph.loops_at(lv));

    // Neighbor multisets agree after mapping local -> parent.
    std::vector<VertexId> local = neighbor_multiset(live.graph, lv);
    for (VertexId& x : local) x = live.to_parent[x];
    std::sort(local.begin(), local.end());
    EXPECT_EQ(view_neighbor_multiset(view, pv), local);
  }

  // Inactive vertices read as absent: degree 0, empty neighbors.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (view.active(v)) continue;
    EXPECT_EQ(view.degree(v), 0u);
    EXPECT_EQ(view.neighbors(v).size(), 0u);
  }
}

// GraphView ≡ induced_with_loops when nothing is removed.
TEST_P(GraphViewEquivalence, MatchesInducedWithLoops) {
  const auto& [family, n, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) + 777);
  const Graph g = make_family(family, n, rng);
  const Overlay ov = random_overlay(g, rng, 0.5, 0.0);

  const GraphView view(g, nullptr, ov.active);
  const SubgraphMap sub = induced_with_loops(g, ov.active);

  ASSERT_EQ(view.num_active(), sub.graph.num_vertices());
  EXPECT_EQ(view.volume(), sub.graph.volume());
  EXPECT_EQ(view.num_edges(), sub.graph.num_edges());
  EXPECT_EQ(view.num_nonloop_edges(), sub.graph.num_nonloop_edges());
  for (VertexId lv = 0; lv < sub.graph.num_vertices(); ++lv) {
    const VertexId pv = sub.to_parent[lv];
    ASSERT_EQ(view.degree(pv), sub.graph.degree(lv));
    EXPECT_EQ(view.loops_at(pv), sub.graph.loops_at(lv));
  }
}

// materialize() reproduces live_subgraph bit for bit, and
// materialize_induced() reproduces induced_subgraph's graph.
TEST_P(GraphViewEquivalence, MaterializeIsBitIdentical) {
  const auto& [family, n, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) + 4242);
  const Graph g = make_family(family, n, rng);
  const Overlay ov = random_overlay(g, rng, 0.7, 0.1);

  const GraphView view(g, &ov.removed, ov.active);
  const LiveSubgraph via_view = view.materialize();
  const LiveSubgraph direct = live_subgraph(g, ov.removed, ov.active);
  EXPECT_EQ(via_view.to_parent, direct.to_parent);
  EXPECT_EQ(via_view.from_parent, direct.from_parent);
  EXPECT_EQ(via_view.edge_to_parent, direct.edge_to_parent);
  ASSERT_EQ(via_view.graph.num_edges(), direct.graph.num_edges());
  for (EdgeId e = 0; e < direct.graph.num_edges(); ++e) {
    EXPECT_EQ(via_view.graph.edge(e), direct.graph.edge(e));
  }

  const GraphView plain(g, nullptr, ov.active);
  const LiveSubgraph induced = plain.materialize_induced();
  const SubgraphMap ref = induced_subgraph(g, ov.active);
  EXPECT_EQ(induced.to_parent, ref.to_parent);
  ASSERT_EQ(induced.graph.num_edges(), ref.graph.num_edges());
  for (EdgeId e = 0; e < ref.graph.num_edges(); ++e) {
    EXPECT_EQ(induced.graph.edge(e), ref.graph.edge(e));
  }
}

// Generic metrics and components on the view equal their values on the
// materialized twin (after id mapping).
TEST_P(GraphViewEquivalence, MetricsAndComponentsAgree) {
  const auto& [family, n, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) + 99);
  const Graph g = make_family(family, n, rng);
  const Overlay ov = random_overlay(g, rng, 0.8, 0.2);

  const GraphView view(g, &ov.removed, ov.active);
  const LiveSubgraph live = live_subgraph(g, ov.removed, ov.active);

  EXPECT_EQ(diameter_double_sweep(view), diameter_double_sweep(live.graph));

  // Components agree as partitions (same dense ids by first-vertex order).
  const auto [vcomp, vcount] = connected_components(view);
  const auto [lcomp, lcount] = connected_components(live.graph);
  ASSERT_EQ(vcount, lcount);
  for (VertexId lv = 0; lv < live.graph.num_vertices(); ++lv) {
    EXPECT_EQ(vcomp[live.to_parent[lv]], lcomp[lv]);
  }

  // A random cut set: volume / cut size / conductance match after mapping.
  std::vector<VertexId> view_ids, local_ids;
  for (VertexId lv = 0; lv < live.graph.num_vertices(); ++lv) {
    if (rng.next_bool(0.5)) {
      local_ids.push_back(lv);
      view_ids.push_back(live.to_parent[lv]);
    }
  }
  const VertexSet vs(std::move(view_ids));
  const VertexSet ls(std::move(local_ids));
  EXPECT_EQ(volume(view, vs), volume(live.graph, ls));
  EXPECT_EQ(cut_size(view, vs), cut_size(live.graph, ls));
  EXPECT_EQ(conductance(view, vs), conductance(live.graph, ls));
}

// Nested restriction == direct view of the intersection.
TEST_P(GraphViewEquivalence, RestrictionComposes) {
  const auto& [family, n, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) + 12);
  const Graph g = make_family(family, n, rng);
  const Overlay ov = random_overlay(g, rng, 0.8, 0.1);

  const GraphView outer(g, &ov.removed, ov.active);
  std::vector<VertexId> subset;
  for (VertexId v : outer.vertices()) {
    if (rng.next_bool(0.6)) subset.push_back(v);
  }
  if (subset.empty()) subset.push_back(outer.vertices().front());
  const VertexSet w(std::move(subset));

  const GraphView narrowed = restrict_view(outer, w);
  const GraphView direct(g, &ov.removed, w);
  EXPECT_EQ(narrowed.volume(), direct.volume());
  EXPECT_EQ(narrowed.num_edges(), direct.num_edges());
  EXPECT_EQ(narrowed.num_nonloop_edges(), direct.num_nonloop_edges());
  for (VertexId v : direct.vertices()) {
    EXPECT_EQ(view_neighbor_multiset(narrowed, v),
              view_neighbor_multiset(direct, v));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, GraphViewEquivalence,
    ::testing::Combine(::testing::Values("gnp_sparse", "gnp_dense", "regular",
                                         "cliques"),
                       ::testing::Values(std::size_t{24}, std::size_t{64}),
                       ::testing::Values(1, 2, 3)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

// The Nibble stack on a view is value-identical to the same stack on the
// materialized graph (ids mapped): the decomposition's bit-identity rests
// on exactly this.
TEST(GraphViewNibble, ViewRunEqualsMaterializedRun) {
  Rng grng(2024);
  const Graph g = gen::planted_partition(96, 3, 0.4, 0.02, grng);
  Rng orng(7);
  const Overlay ov = random_overlay(g, orng, 0.75, 0.1);

  const GraphView view(g, &ov.removed, ov.active);
  const LiveSubgraph live = live_subgraph(g, ov.removed, ov.active);
  ASSERT_GT(view.volume(), 0u);

  const auto prm = sparsecut::NibbleParams::practical(
      0.05, std::max<std::size_t>(view.num_edges(), 1), view.volume());

  Rng rng_view(31337);
  Rng rng_mat(31337);
  congest::RoundLedger ledger_view, ledger_mat;
  const auto pr_view =
      sparsecut::partition(view, prm, rng_view, ledger_view, std::nullopt);
  const auto pr_mat = sparsecut::partition(live.graph, prm, rng_mat,
                                           ledger_mat, std::nullopt);

  EXPECT_EQ(pr_view.iterations, pr_mat.iterations);
  EXPECT_EQ(pr_view.rounds, pr_mat.rounds);
  EXPECT_EQ(ledger_view.rounds(), ledger_mat.rounds());
  EXPECT_EQ(pr_view.conductance, pr_mat.conductance);
  EXPECT_EQ(pr_view.balance, pr_mat.balance);

  // Cuts map onto each other through the renumbering.
  std::vector<VertexId> mapped;
  for (VertexId lv : pr_mat.cut) mapped.push_back(live.to_parent[lv]);
  EXPECT_EQ(pr_view.cut, VertexSet(std::move(mapped)));
}

// Regression: a decomposition whose parts all meet the LDD diameter bound
// (practical preset skips the MPX call) must stay entirely view-only -- no
// intermediate Graph may be materialized anywhere in the driver, the
// sparse-cut stack, or the final component assembly.
TEST(GraphViewZeroCopy, DecompositionViewOnlyPathBuildsNoGraph) {
  Rng grng(5150);
  const Graph g = gen::gnp(160, 0.12, grng);  // diameter ~2: LDD skipped

  expander::DecompositionParams prm;
  prm.epsilon = 0.25;
  prm.k = 2;
  Rng rng(42);
  congest::RoundLedger ledger;

  const std::uint64_t builds_before = GraphBuilder::total_builds();
  const auto res = expander::expander_decomposition(g, prm, rng, ledger);
  const std::uint64_t builds_after = GraphBuilder::total_builds();

  EXPECT_EQ(builds_after, builds_before)
      << "the view-only decomposition path materialized a Graph";
  EXPECT_GE(res.num_components, 1u);
}

// And the counter does move when materialization is genuinely required
// (paper preset always runs the LDD through the CONGEST kernel).
TEST(GraphViewZeroCopy, PaperModeStillMaterializesAtNetworkBoundary) {
  Rng grng(99);
  const Graph g = gen::gnp(40, 0.2, grng);

  expander::DecompositionParams prm;
  prm.epsilon = 0.25;
  prm.k = 2;
  prm.preset = expander::Preset::kPaper;
  Rng rng(7);
  congest::RoundLedger ledger;

  const std::uint64_t builds_before = GraphBuilder::total_builds();
  (void)expander::expander_decomposition(g, prm, rng, ledger);
  EXPECT_GT(GraphBuilder::total_builds(), builds_before);
}

}  // namespace
}  // namespace xd

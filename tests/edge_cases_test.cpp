// Edge cases across the whole public API: degenerate graphs, boundary
// parameters, and misuse that must fail loudly rather than corrupt a run.

#include <gtest/gtest.h>

#include "core/xd.hpp"
#include "util/check.hpp"

namespace xd {
namespace {

TEST(EdgeCases, DecompositionOfSingleEdge) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  const Graph g = b.build();
  Rng rng(1);
  expander::DecompositionParams prm;
  prm.epsilon = 0.3;
  prm.k = 1;
  congest::RoundLedger ledger;
  const auto res = expander::expander_decomposition(g, prm, rng, ledger);
  const auto report =
      expander::verify_decomposition(g, res, prm.epsilon,
                                     res.schedule.phi_final());
  EXPECT_TRUE(report.is_partition);
  // K2 is an expander; it must survive as one component with no removals.
  EXPECT_EQ(res.num_components, 1u);
  EXPECT_EQ(res.total_removed(), 0u);
}

TEST(EdgeCases, DecompositionOfStar) {
  const Graph g = gen::star(40);
  Rng rng(2);
  expander::DecompositionParams prm;
  prm.epsilon = 0.3;
  prm.k = 2;
  congest::RoundLedger ledger;
  const auto res = expander::expander_decomposition(g, prm, rng, ledger);
  EXPECT_TRUE(expander::verify_decomposition(g, res, prm.epsilon,
                                             res.schedule.phi_final())
                  .is_partition);
}

TEST(EdgeCases, DecompositionRejectsDegenerateInputs) {
  Rng rng(3);
  congest::RoundLedger ledger;
  expander::DecompositionParams prm;
  GraphBuilder b(1);
  EXPECT_THROW((void)expander::expander_decomposition(b.build(), prm, rng, ledger),
               CheckError);
  prm.epsilon = 1.5;
  EXPECT_THROW((void)expander::expander_decomposition(gen::cycle(4), prm, rng, ledger),
               CheckError);
  prm.epsilon = 0.3;
  prm.k = 0;
  EXPECT_THROW((void)expander::expander_decomposition(gen::cycle(4), prm, rng, ledger),
               CheckError);
}

TEST(EdgeCases, TriangleEnumerationOnTinyGraphs) {
  Rng rng(4);
  congest::RoundLedger ledger;
  triangle::EnumParams prm;
  // Too few edges to hold a triangle: immediately empty.
  GraphBuilder b(3);
  b.add_edge(0, 1);
  Rng r1(4);
  congest::RoundLedger l1;
  EXPECT_TRUE(triangle::enumerate_congest(b.build(), prm, r1, l1)
                  .triangles.empty());
  // Exactly one triangle.
  Rng r2(4);
  congest::RoundLedger l2;
  const auto res = triangle::enumerate_congest(gen::complete(3), prm, r2, l2);
  ASSERT_EQ(res.triangles.size(), 1u);
  EXPECT_EQ(res.triangles[0], (triangle::Triangle{0, 1, 2}));
}

TEST(EdgeCases, PartitionOnGraphWithLoops) {
  // Graphs already carrying self-loops (e.g. a previous G{S}) must flow
  // through the whole sparse-cut stack.
  GraphBuilder b(8, /*allow_parallel=*/true);
  for (VertexId i = 0; i < 4; ++i) {
    for (VertexId j = i + 1; j < 4; ++j) {
      b.add_edge(i, j);
      b.add_edge(4 + i, 4 + j);
    }
  }
  b.add_edge(0, 4);
  b.add_loops(1, 2).add_loops(6, 1);
  const Graph g = b.build();
  Rng rng(5);
  congest::RoundLedger ledger;
  const auto res = sparsecut::nearly_most_balanced_sparse_cut(
      g, 0.2, sparsecut::Preset::kPractical, rng, ledger);
  if (res.found()) {
    EXPECT_LE(res.conductance, sparsecut::theorem3_conductance_bound(
                                   0.2, g.num_edges(), g.volume(),
                                   sparsecut::Preset::kPractical) +
                                   1e-12);
  }
}

TEST(EdgeCases, LddOnDisconnectedGraph) {
  GraphBuilder b(30);
  for (VertexId v = 0; v < 9; ++v) b.add_edge(v, v + 1);       // path
  for (VertexId v = 10; v < 19; ++v) b.add_edge(v, v + 1);     // path
  for (VertexId i = 20; i < 30; ++i) {
    for (VertexId j = i + 1; j < 30; ++j) b.add_edge(i, j);    // clique
  }
  const Graph g = b.build();
  congest::RoundLedger ledger;
  congest::Network net(g, ledger, 7);
  Rng rng(7);
  ldd::LddParams prm;
  prm.beta = 0.5;
  const auto res = ldd::low_diameter_decomposition(net, prm, rng);
  // Components never merge across connectivity.
  EXPECT_GE(res.num_components, 3u);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.edge(e);
    if (!res.cut_edge[e]) {
      EXPECT_EQ(res.component[u], res.component[v]);
    }
  }
}

TEST(EdgeCases, RouterWithSelfDemandIsNoop) {
  Rng rng(8);
  const Graph g = gen::random_regular(32, 4, rng);
  congest::RoundLedger ledger;
  congest::Network net(g, ledger, 8);
  routing::TreeRouter router(net);
  router.preprocess();
  const auto rounds = router.route({routing::Demand{5, 5, 3}});
  EXPECT_EQ(rounds, 1u);  // nothing to move; one idle exchange charged
}

TEST(EdgeCases, MixingTimeOfDisconnectedGraphIsCapped) {
  GraphBuilder b(8);
  b.add_edge(0, 1).add_edge(2, 3);
  const Graph g = b.build();
  // Never mixes: the estimate must hit the cap, not loop forever.
  EXPECT_EQ(spectral::mixing_time_simulated(g, 0.25, 2, 500), 500u);
}

TEST(EdgeCases, VertexSetOnEmptyGround) {
  const VertexSet empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.complement(0).size(), 0u);
  EXPECT_EQ(VertexSet::all(0).size(), 0u);
}

TEST(EdgeCases, SweepOnAllZeroScores) {
  const Graph g = gen::cycle(5);
  const auto sweep = spectral::sweep_cut(g, std::vector<double>(5, 0.0));
  EXPECT_EQ(sweep.size(), 0u);
  EXPECT_EQ(spectral::best_prefix(sweep), 0u);
}

TEST(EdgeCases, NibbleOnCompleteGraphFindsNothingSparse) {
  const Graph g = gen::complete(20);
  const auto prm =
      sparsecut::NibbleParams::practical(0.05, g.num_edges(), g.volume());
  const auto res = sparsecut::approximate_nibble(g, 0, prm, 3);
  EXPECT_FALSE(res.found());
}

}  // namespace
}  // namespace xd

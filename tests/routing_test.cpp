#include "routing/router.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "routing/hierarchical_router.hpp"
#include "routing/tree_router.hpp"
#include "util/check.hpp"

namespace xd::routing {
namespace {

using congest::Network;
using congest::RoundLedger;

TEST(QueriesNeeded, RespectsDegreeBudget) {
  const Graph cyc = gen::cycle(4);  // all degrees 2
  // 8 messages between degree-2 vertices -> 4 queries.
  EXPECT_EQ(queries_needed(cyc, {{0, 2, 8}}), 4u);

  const Graph g = gen::star(5);  // hub deg 4, leaves deg 1
  // 8 messages into the hub from a leaf: the leaf's out-budget (deg 1)
  // binds -> 8 queries.
  EXPECT_EQ(queries_needed(g, {{1, 0, 8}}), 8u);
  // 8 messages out of the hub into a leaf: the leaf's in-budget binds.
  EXPECT_EQ(queries_needed(g, {{0, 2, 8}}), 8u);
  // Hub-to-hub budget (both sides deg 4) spread over 4 leaves: 2 queries.
  EXPECT_EQ(queries_needed(g, {{0, 1, 2}, {0, 2, 2}, {0, 3, 2}, {0, 4, 2}}),
            2u);
  // Slack scales the budget.
  EXPECT_EQ(queries_needed(g, {{1, 0, 8}}, 4.0), 2u);
}

TEST(TreeRouter, DeliversAndMeasuresRounds) {
  Rng rng(1);
  const Graph g = gen::random_regular(64, 6, rng);
  RoundLedger ledger;
  Network net(g, ledger, 3);
  TreeRouter router(net);
  const auto pre = router.preprocess();
  EXPECT_GT(pre, 0u);
  EXPECT_GE(router.tree_count(), 7);  // ceil(log2 64) + 1

  std::vector<Demand> demands;
  for (VertexId v = 0; v < 32; ++v) {
    demands.push_back(Demand{v, static_cast<VertexId>(63 - v), 1});
  }
  const auto rounds = router.route(demands);
  EXPECT_GE(rounds, 1u);
  // On an expander with log-depth trees this permutation routes fast.
  EXPECT_LE(rounds, 200u);
  EXPECT_EQ(router.queries(), 1u);
}

TEST(TreeRouter, MakespanGrowsWithLoad) {
  Rng rng(2);
  const Graph g = gen::random_regular(64, 4, rng);
  RoundLedger l1, l2;
  Network n1(g, l1, 7), n2(g, l2, 7);
  TreeRouter r1(n1), r2(n2);
  r1.preprocess();
  r2.preprocess();
  std::vector<Demand> light{{0, 32, 1}};
  std::vector<Demand> heavy;
  for (int i = 0; i < 50; ++i) heavy.push_back(Demand{0, 32, 4});
  const auto t_light = r1.route(light);
  const auto t_heavy = r2.route(heavy);
  EXPECT_GT(t_heavy, t_light);
}

TEST(TreeRouter, PathsAreTreePaths) {
  // On a path graph the only route is the path itself: a demand across the
  // whole graph needs at least n-1 rounds.
  Rng rng(3);
  const Graph g = gen::path(32);
  RoundLedger ledger;
  Network net(g, ledger, 5);
  TreeRouter router(net, 2);
  router.preprocess();
  const auto rounds = router.route({Demand{0, 31, 1}});
  EXPECT_GE(rounds, 31u);
}

TEST(TreeRouter, RouteBeforePreprocessThrows) {
  const Graph g = gen::cycle(8);
  RoundLedger ledger;
  Network net(g, ledger);
  TreeRouter router(net);
  EXPECT_THROW((void)router.route({Demand{0, 1, 1}}), CheckError);
}

TEST(HierarchicalRouter, TradeoffMatchesGksShape) {
  // Deeper hierarchy: cheaper preprocessing while β = m^{1/k} dominates
  // (k = 1..3 at this size), always costlier queries ((log n)^k rises).
  // Preprocessing eventually *rises* again -- the polylog^k term takes
  // over -- which is exactly the "enormous polylog trade-off" the paper's
  // open-problems section laments; E5 charts the sweet spot.
  Rng rng(4);
  const Graph g = gen::random_regular(4096, 8, rng);
  RoundLedger ledger;

  std::uint64_t prev_pre = 0;
  std::uint64_t prev_query = 0;
  for (int k = 1; k <= 4; ++k) {
    HierarchicalParams prm;
    prm.depth = k;
    HierarchicalRouter router(g, ledger, prm);
    router.preprocess();
    const auto pre = router.preprocessing_cost();
    const auto query = router.query_cost();
    if (k > 1 && k <= 3) {
      EXPECT_LT(pre, prev_pre) << "preprocessing must fall with k=" << k;
    }
    if (k > 1) {
      EXPECT_GT(query, prev_query) << "query must rise with k=" << k;
    }
    prev_pre = pre;
    prev_query = query;
  }
}

TEST(HierarchicalRouter, CostsScaleWithMixingTime) {
  RoundLedger ledger;
  Rng rng(5);
  const Graph expander = gen::random_regular(256, 8, rng);
  const Graph ring = gen::cycle(256);

  HierarchicalParams prm;
  prm.depth = 2;
  HierarchicalRouter fast(expander, ledger, prm);
  HierarchicalRouter slow(ring, ledger, prm);
  fast.preprocess();
  slow.preprocess();
  EXPECT_LT(fast.tau_mix(), slow.tau_mix());
  EXPECT_LT(fast.query_cost(), slow.query_cost());
}

TEST(HierarchicalRouter, ChargesPerQueryBatch) {
  Rng rng(6);
  const Graph g = gen::random_regular(64, 4, rng);
  RoundLedger ledger;
  HierarchicalParams prm;
  prm.depth = 2;
  HierarchicalRouter router(g, ledger, prm);
  router.preprocess();
  const std::uint64_t after_pre = ledger.rounds();

  // 12 messages out of a degree-4 vertex -> 3 query batches.
  router.route({Demand{0, 8, 12}});
  EXPECT_EQ(router.queries(), 3u);
  EXPECT_EQ(ledger.rounds() - after_pre, 3 * router.query_cost());
}

}  // namespace
}  // namespace xd::routing

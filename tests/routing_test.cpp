#include "routing/router.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "routing/hierarchical_router.hpp"
#include "routing/queue_arena.hpp"
#include "routing/simulated_router.hpp"
#include "routing/tree_router.hpp"
#include "triangle/enumerate.hpp"
#include "util/check.hpp"

namespace xd::routing {
namespace {

using congest::Network;
using congest::RoundLedger;

TEST(QueriesNeeded, RespectsDegreeBudget) {
  const Graph cyc = gen::cycle(4);  // all degrees 2
  // 8 messages between degree-2 vertices -> 4 queries.
  EXPECT_EQ(queries_needed(cyc, {{0, 2, 8}}), 4u);

  const Graph g = gen::star(5);  // hub deg 4, leaves deg 1
  // 8 messages into the hub from a leaf: the leaf's out-budget (deg 1)
  // binds -> 8 queries.
  EXPECT_EQ(queries_needed(g, {{1, 0, 8}}), 8u);
  // 8 messages out of the hub into a leaf: the leaf's in-budget binds.
  EXPECT_EQ(queries_needed(g, {{0, 2, 8}}), 8u);
  // Hub-to-hub budget (both sides deg 4) spread over 4 leaves: 2 queries.
  EXPECT_EQ(queries_needed(g, {{0, 1, 2}, {0, 2, 2}, {0, 3, 2}, {0, 4, 2}}),
            2u);
  // Slack scales the budget.
  EXPECT_EQ(queries_needed(g, {{1, 0, 8}}, 4.0), 2u);
}

TEST(TreeRouter, DeliversAndMeasuresRounds) {
  Rng rng(1);
  const Graph g = gen::random_regular(64, 6, rng);
  RoundLedger ledger;
  Network net(g, ledger, 3);
  TreeRouter router(net);
  const auto pre = router.preprocess();
  EXPECT_GT(pre, 0u);
  EXPECT_GE(router.tree_count(), 7);  // ceil(log2 64) + 1

  std::vector<Demand> demands;
  for (VertexId v = 0; v < 32; ++v) {
    demands.push_back(Demand{v, static_cast<VertexId>(63 - v), 1});
  }
  const auto rounds = router.route(demands);
  EXPECT_GE(rounds, 1u);
  // On an expander with log-depth trees this permutation routes fast.
  EXPECT_LE(rounds, 200u);
  EXPECT_EQ(router.queries(), 1u);
}

TEST(TreeRouter, MakespanGrowsWithLoad) {
  Rng rng(2);
  const Graph g = gen::random_regular(64, 4, rng);
  RoundLedger l1, l2;
  Network n1(g, l1, 7), n2(g, l2, 7);
  TreeRouter r1(n1), r2(n2);
  r1.preprocess();
  r2.preprocess();
  std::vector<Demand> light{{0, 32, 1}};
  std::vector<Demand> heavy;
  for (int i = 0; i < 50; ++i) heavy.push_back(Demand{0, 32, 4});
  const auto t_light = r1.route(light);
  const auto t_heavy = r2.route(heavy);
  EXPECT_GT(t_heavy, t_light);
}

TEST(TreeRouter, PathsAreTreePaths) {
  // On a path graph the only route is the path itself: a demand across the
  // whole graph needs at least n-1 rounds.
  Rng rng(3);
  const Graph g = gen::path(32);
  RoundLedger ledger;
  Network net(g, ledger, 5);
  TreeRouter router(net, 2);
  router.preprocess();
  const auto rounds = router.route({Demand{0, 31, 1}});
  EXPECT_GE(rounds, 31u);
}

TEST(TreeRouter, RouteBeforePreprocessThrows) {
  const Graph g = gen::cycle(8);
  RoundLedger ledger;
  Network net(g, ledger);
  TreeRouter router(net);
  EXPECT_THROW((void)router.route({Demand{0, 1, 1}}), CheckError);
}

TEST(HierarchicalRouter, TradeoffMatchesGksShape) {
  // Deeper hierarchy: cheaper preprocessing while β = m^{1/k} dominates
  // (k = 1..3 at this size), always costlier queries ((log n)^k rises).
  // Preprocessing eventually *rises* again -- the polylog^k term takes
  // over -- which is exactly the "enormous polylog trade-off" the paper's
  // open-problems section laments; E5 charts the sweet spot.
  Rng rng(4);
  const Graph g = gen::random_regular(4096, 8, rng);
  RoundLedger ledger;

  std::uint64_t prev_pre = 0;
  std::uint64_t prev_query = 0;
  for (int k = 1; k <= 4; ++k) {
    HierarchicalParams prm;
    prm.depth = k;
    HierarchicalRouter router(g, ledger, prm);
    router.preprocess();
    const auto pre = router.preprocessing_cost();
    const auto query = router.query_cost();
    if (k > 1 && k <= 3) {
      EXPECT_LT(pre, prev_pre) << "preprocessing must fall with k=" << k;
    }
    if (k > 1) {
      EXPECT_GT(query, prev_query) << "query must rise with k=" << k;
    }
    prev_pre = pre;
    prev_query = query;
  }
}

TEST(HierarchicalRouter, CostsScaleWithMixingTime) {
  RoundLedger ledger;
  Rng rng(5);
  const Graph expander = gen::random_regular(256, 8, rng);
  const Graph ring = gen::cycle(256);

  HierarchicalParams prm;
  prm.depth = 2;
  HierarchicalRouter fast(expander, ledger, prm);
  HierarchicalRouter slow(ring, ledger, prm);
  fast.preprocess();
  slow.preprocess();
  EXPECT_LT(fast.tau_mix(), slow.tau_mix());
  EXPECT_LT(fast.query_cost(), slow.query_cost());
}

// Stages random-tree-path batches into `arena` the way TreeRouter does.
void stage_tree_batch(QueueArena& arena, const std::vector<prim::Forest>& fs,
                      const Graph& g, std::size_t messages, Rng& rng) {
  arena.begin_batch();
  for (std::size_t i = 0; i < messages; ++i) {
    const auto src = static_cast<VertexId>(rng.next_below(g.num_vertices()));
    auto dst = static_cast<VertexId>(rng.next_below(g.num_vertices()));
    if (src == dst) dst = static_cast<VertexId>((dst + 1) % g.num_vertices());
    arena.begin_path();
    append_tree_path(fs[rng.next_below(fs.size())], src, dst, arena);
    arena.end_path();
  }
}

TEST(QueueArena, FlatDrainBitIdenticalToSeedMapReference) {
  // The flat ring-slot drain must reproduce the seed std::map-of-deques
  // schedule exactly: same makespan, same total transmissions, same
  // per-message arrival round.
  Rng rng(11);
  for (const auto& g :
       {gen::random_regular(96, 6, rng), gen::grid(8, 12, false),
        gen::dumbbell_expanders(48, 48, 6, 2, rng)}) {
    RoundLedger ledger;
    Network net(g, ledger, 5);
    TreeRouter router(net, 4);
    router.preprocess();
    // Reach the forests through a fresh arena + the shared path helper.
    std::vector<prim::Forest> forests;
    {
      const std::vector<char> active(g.num_vertices(), 1);
      Rng frng(7);
      for (int t = 0; t < 4; ++t) {
        forests.push_back(prim::build_forest_from_roots(
            net, active,
            {static_cast<VertexId>(frng.next_below(g.num_vertices()))},
            "test"));
      }
    }
    QueueArena arena(g);
    Rng drng(23);
    for (int batch = 0; batch < 3; ++batch) {
      stage_tree_batch(arena, forests, g, 150, drng);
      const auto flat = arena.drain();
      const auto ref = arena.drain_reference();
      EXPECT_EQ(flat.rounds, ref.rounds);
      EXPECT_EQ(flat.messages_sent, ref.messages_sent);
      EXPECT_EQ(flat.arrivals, ref.arrivals);
    }
    // Steady state: the second and third batches must run entirely out of
    // retained scratch.
    EXPECT_LE(arena.scratch_stats().grown, 1u);
    EXPECT_GE(arena.scratch_stats().reused, 2u);
  }
}

TEST(QueueArena, RejectsHopsThatAreNotEdges) {
  const Graph g = gen::path(4);  // 0-1-2-3
  QueueArena arena(g);
  arena.begin_batch();
  arena.begin_path();
  arena.push_vertex(0);
  EXPECT_THROW(arena.push_vertex(2), CheckError);  // {0, 2} is not an edge
}

TEST(TreeRouter, OutOfRangeDemandThrows) {
  // Regression for the seed's edge_key: VertexId was packed into 32 bits
  // with no guard and demands were not validated before path building.
  // Keys are now 64-bit (u * n + v) and every demand endpoint is checked.
  Rng rng(31);
  const Graph g = gen::random_regular(32, 4, rng);
  RoundLedger ledger;
  Network net(g, ledger, 3);
  TreeRouter router(net, 2);
  router.preprocess();
  EXPECT_THROW((void)router.route({Demand{0, 77, 1}}), CheckError);
  EXPECT_THROW((void)router.route({Demand{77, 0, 1}}), CheckError);
}

TEST(SimulatedHierarchicalRouter, DeliversEveryDemandExactlyOnce) {
  // Expander, dumbbell, grid: every unit of every demand (including
  // multi-count and src == dst demands) is delivered exactly once.
  Rng grng(3);
  const struct {
    const char* name;
    Graph g;
  } cases[] = {
      {"expander", gen::random_regular(96, 6, grng)},
      {"dumbbell", gen::dumbbell_expanders(48, 48, 6, 2, grng)},
      {"grid", gen::grid(8, 12, false)},
  };
  for (const auto& c : cases) {
    RoundLedger ledger;
    Network net(c.g, ledger, 9);
    SimulatedHierarchicalParams prm;
    prm.depth = 2;
    SimulatedHierarchicalRouter router(net, prm);
    EXPECT_GT(router.preprocess(), 0u) << c.name;
    EXPECT_GE(router.levels(), 1) << c.name;

    Rng drng(41);
    std::vector<Demand> demands;
    for (int i = 0; i < 60; ++i) {
      demands.push_back(
          Demand{static_cast<VertexId>(drng.next_below(c.g.num_vertices())),
                 static_cast<VertexId>(drng.next_below(c.g.num_vertices())),
                 static_cast<std::uint32_t>(1 + drng.next_below(3))});
    }
    demands.push_back(Demand{5, 5, 4});  // local units count as delivered
    const auto rounds = router.route(demands);
    EXPECT_GE(rounds, 1u) << c.name;
    ASSERT_EQ(router.last_delivered().size(), demands.size()) << c.name;
    for (std::size_t i = 0; i < demands.size(); ++i) {
      EXPECT_EQ(router.last_delivered()[i], demands[i].count)
          << c.name << " demand " << i;
    }
  }
}

TEST(SimulatedHierarchicalRouter, MeasuredCostsStayWithinChargedModel) {
  // The charged HierarchicalRouter is the worst-case oracle: for every
  // depth, the measured preprocessing and per-batch query rounds of the
  // simulated structure must not exceed what the model charges.
  Rng rng(17);
  const Graph g = gen::random_regular(128, 6, rng);
  for (int k = 1; k <= 4; ++k) {
    RoundLedger sledger;
    Network net(g, sledger, 13);
    SimulatedHierarchicalParams sp;
    sp.depth = k;
    SimulatedHierarchicalRouter sim(net, sp);
    const auto sim_pre = sim.preprocess();

    RoundLedger mledger;
    HierarchicalParams hp;
    hp.depth = k;
    HierarchicalRouter model(g, mledger, hp);
    model.preprocess();
    EXPECT_LE(sim_pre, model.preprocessing_cost()) << "k=" << k;

    Rng prng(29);
    const auto perm = prng.permutation(g.num_vertices());
    std::vector<Demand> demands;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      demands.push_back(Demand{v, perm[v], 1});
    }
    const auto sim_query = sim.route(demands);
    EXPECT_LE(sim_query, sim.queries() * model.query_cost()) << "k=" << k;
  }
}

TEST(SimulatedHierarchicalRouter, RouteBeforePreprocessThrows) {
  const Graph g = gen::cycle(8);
  RoundLedger ledger;
  Network net(g, ledger);
  SimulatedHierarchicalRouter router(net, SimulatedHierarchicalParams{});
  EXPECT_THROW((void)router.route({Demand{0, 1, 1}}), CheckError);
}

TEST(Golden, E5SimulatedBackendPinsAcrossSchedulerThreads) {
  // The E5 golden pins: enumerate_congest on the simulated hierarchical
  // backend must produce the same triangles as the other backends and a
  // pinned round count at every scheduler thread setting (0 = sequential
  // sum accounting; >= 1 = concurrent max-per-epoch, identical at any
  // thread count).
  std::uint64_t pinned_rounds[2] = {0, 0};
  for (const int threads : {0, 1, 2, 8}) {
    Rng rng(31);
    const Graph g = gen::gnp(60, 0.2, rng);
    congest::RoundLedger ledger;
    Rng arng(17);
    triangle::EnumParams prm;
    prm.backend = triangle::RouterBackend::kHierarchicalSim;
    prm.scheduler_threads = threads;
    const auto r = triangle::enumerate_congest(g, prm, arng, ledger);
    EXPECT_EQ(r.triangles.size(), 240u) << "threads=" << threads;
    auto& pin = pinned_rounds[threads == 0 ? 0 : 1];
    if (pin == 0) {
      pin = r.rounds;
    } else {
      EXPECT_EQ(r.rounds, pin) << "threads=" << threads;
    }
  }
  // Fixed-seed round pins (regenerate by printing on intentional change).
  // This dense G(n, p) is an expander: each level keeps one cluster, so
  // the per-epoch max equals the sequential sum here.
  EXPECT_EQ(pinned_rounds[0], 4613u);
  EXPECT_EQ(pinned_rounds[1], 4613u);
}

TEST(HierarchicalRouter, ChargesPerQueryBatch) {
  Rng rng(6);
  const Graph g = gen::random_regular(64, 4, rng);
  RoundLedger ledger;
  HierarchicalParams prm;
  prm.depth = 2;
  HierarchicalRouter router(g, ledger, prm);
  router.preprocess();
  const std::uint64_t after_pre = ledger.rounds();

  // 12 messages out of a degree-4 vertex -> 3 query batches.
  router.route({Demand{0, 8, 12}});
  EXPECT_EQ(router.queries(), 3u);
  EXPECT_EQ(ledger.rounds() - after_pre, 3 * router.query_cost());
}

}  // namespace
}  // namespace xd::routing

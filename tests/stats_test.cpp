#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"
#include "util/table.hpp"

namespace xd {
namespace {

TEST(Summary, BasicMoments) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(Summary, Quantiles) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(s.quantile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(s.quantile(0.25), 25.75, 1e-9);
}

TEST(Summary, EmptyThrows) {
  Summary s;
  EXPECT_THROW((void)s.mean(), CheckError);
  EXPECT_THROW((void)s.quantile(0.5), CheckError);
}

TEST(Summary, QuantileAfterAddResorts) {
  Summary s;
  s.add(5.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  s.add(0.5);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.5);
}

TEST(LogLogFit, RecoversExactPowerLaw) {
  LogLogFit fit;
  for (double x : {10.0, 20.0, 40.0, 80.0, 160.0}) {
    fit.add(x, 3.0 * std::pow(x, 1.0 / 3.0));
  }
  EXPECT_NEAR(fit.slope(), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(std::exp(fit.intercept()), 3.0, 1e-9);
}

TEST(LogLogFit, RejectsNonPositive) {
  LogLogFit fit;
  EXPECT_THROW(fit.add(0.0, 1.0), CheckError);
  EXPECT_THROW(fit.add(1.0, -1.0), CheckError);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bucket 0
  h.add(9.9);   // bucket 4
  h.add(-3.0);  // clamps to 0
  h.add(42.0);  // clamps to 4
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(4), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 2.0);
  EXPECT_FALSE(h.render().empty());
}

TEST(Table, RendersAlignedRows) {
  Table t("demo", {"a", "long-header", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row({Table::cell(3.14159, 2), Table::cell(std::uint64_t{7}), "x"});
  const std::string r = t.render();
  EXPECT_NE(r.find("demo"), std::string::npos);
  EXPECT_NE(r.find("long-header"), std::string::npos);
  EXPECT_NE(r.find("3.14"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, PadsShortRows) {
  Table t("t", {"a", "b"});
  t.add_row({"only"});
  EXPECT_NE(t.render().find("only"), std::string::npos);
}

}  // namespace
}  // namespace xd

// Property-style sweeps (parameterized over family × size × seed grids):
// cross-module invariants that must hold on *every* graph, not just the
// hand-picked cases of the unit tests.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/xd.hpp"
#include "util/check.hpp"

namespace xd {
namespace {

/// Graph family factory keyed by name (parameterized tests print these).
Graph make_family(const std::string& family, std::size_t n, Rng& rng) {
  if (family == "gnp_sparse") return gen::gnp(n, 6.0 / static_cast<double>(n), rng);
  if (family == "gnp_dense") return gen::gnp(n, 0.3, rng);
  if (family == "regular") return gen::random_regular(n - n % 2, 4, rng);
  if (family == "cycle") return gen::cycle(n);
  if (family == "grid") {
    const auto side = static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
    return gen::grid(side, side, true);
  }
  if (family == "pref") return gen::preferential_attachment(n, 2, rng);
  XD_CHECK_MSG(false, "unknown family " << family);
  return {};
}

using GridParam = std::tuple<std::string, std::size_t, int>;

class GraphInvariants : public ::testing::TestWithParam<GridParam> {};

TEST_P(GraphInvariants, StructuralIdentities) {
  const auto& [family, n, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const Graph g = make_family(family, n, rng);

  // Volume identity: Σ deg == 2 * nonloop + loops.
  std::uint64_t degree_sum = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) degree_sum += g.degree(v);
  EXPECT_EQ(degree_sum, g.volume());
  EXPECT_EQ(g.volume(), 2 * g.num_nonloop_edges() + g.num_loops());

  // Every edge id appears in exactly two incidence lists (one for loops).
  std::vector<int> appearances(g.num_edges(), 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (EdgeId e : g.incident_edges(v)) ++appearances[e];
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(appearances[e], g.is_loop(e) ? 1 : 2);
  }

  // Cut + conductance consistency for a random subset.
  std::vector<VertexId> ids;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (rng.next_bool(0.4)) ids.push_back(v);
  }
  const VertexSet s(std::move(ids));
  const auto vol_s = volume(g, s);
  const auto vol_c = volume(g, s.complement(g.num_vertices()));
  EXPECT_EQ(vol_s + vol_c, g.volume());
  EXPECT_EQ(cut_size(g, s), cut_size(g, s.complement(g.num_vertices())));
}

TEST_P(GraphInvariants, SubgraphDegreePreservation) {
  const auto& [family, n, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) + 100);
  const Graph g = make_family(family, n, rng);

  std::vector<VertexId> ids;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (rng.next_bool(0.5)) ids.push_back(v);
  }
  if (ids.empty()) return;
  const VertexSet s(std::move(ids));
  const SubgraphMap sub = induced_with_loops(g, s);
  for (std::size_t lv = 0; lv < sub.graph.num_vertices(); ++lv) {
    EXPECT_EQ(sub.graph.degree(static_cast<VertexId>(lv)),
              g.degree(sub.to_parent[lv]));
  }
  // Φ(G{S}) <= Φ(G[S]) spot check via any fixed cut of the subgraph.
  if (sub.graph.num_vertices() >= 4) {
    std::vector<VertexId> half;
    for (VertexId v = 0; v < sub.graph.num_vertices() / 2; ++v) {
      half.push_back(v);
    }
    const VertexSet cut(std::move(half));
    const SubgraphMap plain = induced_subgraph(g, s);
    const double phi_loops = conductance(sub.graph, cut);
    const double phi_plain = conductance(plain.graph, cut);
    if (std::isfinite(phi_plain)) {
      EXPECT_LE(phi_loops, phi_plain + 1e-12);
    }
  }
}

TEST_P(GraphInvariants, RemoveEdgesLeavesDegreesFixed) {
  const auto& [family, n, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) + 200);
  const Graph g = make_family(family, n, rng);
  std::vector<char> removed(g.num_edges(), 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!g.is_loop(e)) removed[e] = rng.next_bool(0.3);
  }
  const Graph h = remove_edges_with_loops(g, removed);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(h.degree(v), g.degree(v));
  }
  EXPECT_EQ(h.volume(), g.volume());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GraphInvariants,
    ::testing::Combine(::testing::Values("gnp_sparse", "gnp_dense", "regular",
                                         "cycle", "grid", "pref"),
                       ::testing::Values(36u, 100u),
                       ::testing::Values(1, 2)),
    [](const ::testing::TestParamInfo<GridParam>& info) {
      return std::get<0>(info.param) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

class DecompositionSweep : public ::testing::TestWithParam<GridParam> {};

TEST_P(DecompositionSweep, AlwaysValidPartitionWithinBudget) {
  const auto& [family, n, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) + 300);
  const Graph g = make_family(family, n, rng);
  if (g.num_vertices() < 2) return;

  expander::DecompositionParams prm;
  prm.epsilon = 0.3;
  prm.k = 2;
  prm.phi0_override = 0.05;
  congest::RoundLedger ledger;
  const auto res = expander::expander_decomposition(g, prm, rng, ledger);
  const auto report =
      expander::verify_decomposition(g, res, prm.epsilon,
                                     res.schedule.phi_final());
  EXPECT_TRUE(report.is_partition) << family;
  EXPECT_TRUE(report.cut_within_epsilon)
      << family << " cut " << report.cut_fraction;
  EXPECT_EQ(report.internal_removed_edges, 0u) << family;

  // Degrees preserved under the removal overlay.
  const LiveSubgraph live =
      live_subgraph(g, res.removed_edge, VertexSet::all(g.num_vertices()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(live.graph.degree(v), g.degree(v));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DecompositionSweep,
    ::testing::Combine(::testing::Values("gnp_sparse", "regular", "cycle",
                                         "pref"),
                       ::testing::Values(64u), ::testing::Values(1, 2, 3)),
    [](const ::testing::TestParamInfo<GridParam>& info) {
      return std::get<0>(info.param) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

class TriangleSweep : public ::testing::TestWithParam<GridParam> {};

TEST_P(TriangleSweep, AllThreeAlgorithmsExact) {
  const auto& [family, n, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) + 400);
  const Graph g = make_family(family, n, rng);

  auto expect = triangles_exact(g);
  std::sort(expect.begin(), expect.end());

  congest::RoundLedger l1, l2, l3;
  triangle::EnumParams prm;
  Rng r1(seed + 7);
  const auto thm2 = triangle::enumerate_congest(g, prm, r1, l1);
  const auto dlp = triangle::enumerate_clique_dlp(g, l2);
  const auto local = triangle::enumerate_local_baseline(g, l3);
  EXPECT_EQ(thm2.triangles, expect) << family;
  EXPECT_EQ(dlp.triangles, expect) << family;
  EXPECT_EQ(local.triangles, expect) << family;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TriangleSweep,
    ::testing::Combine(::testing::Values("gnp_sparse", "gnp_dense", "regular",
                                         "grid", "pref"),
                       ::testing::Values(40u), ::testing::Values(1, 2)),
    [](const ::testing::TestParamInfo<GridParam>& info) {
      return std::get<0>(info.param) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

class LddSweep : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(LddSweep, Theorem4HoldsOnCycles) {
  const auto& [beta, seed] = GetParam();
  const Graph g = gen::cycle(8000);
  congest::RoundLedger ledger;
  congest::Network net(g, ledger, static_cast<std::uint64_t>(seed));
  Rng rng(seed);
  ldd::LddParams prm;
  prm.beta = beta;
  prm.K = 1.0;
  const auto res = ldd::low_diameter_decomposition(net, prm, rng);
  const double logn = std::log(8000.0);
  EXPECT_LE(ldd::max_component_diameter(g, res),
            150.0 * logn * logn / (beta * beta));
  EXPECT_LE(res.num_cut_edges,
            static_cast<std::uint64_t>(beta * g.num_edges()));
  // Partition validity of component labels.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LT(res.component[v], res.num_components);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, LddSweep,
                         ::testing::Combine(::testing::Values(0.5, 0.7, 0.9),
                                            ::testing::Values(1, 2)));

TEST(Reproducibility, SameSeedSameRun) {
  // The whole stack is deterministic in (graph, seed): rounds, components,
  // and triangle lists must replay exactly.
  Rng g1(42), g2(42);
  const Graph a = gen::gnp(80, 0.2, g1);
  const Graph b = gen::gnp(80, 0.2, g2);
  ASSERT_EQ(a.num_edges(), b.num_edges());

  expander::DecompositionParams prm;
  prm.epsilon = 0.3;
  prm.k = 2;
  prm.phi0_override = 0.05;
  Rng r1(7), r2(7);
  congest::RoundLedger l1, l2;
  const auto d1 = expander::expander_decomposition(a, prm, r1, l1);
  const auto d2 = expander::expander_decomposition(b, prm, r2, l2);
  EXPECT_EQ(d1.component, d2.component);
  EXPECT_EQ(l1.rounds(), l2.rounds());
  EXPECT_EQ(l1.messages(), l2.messages());

  Rng t1(11), t2(11);
  congest::RoundLedger tl1, tl2;
  triangle::EnumParams tprm;
  const auto e1 = triangle::enumerate_congest(a, tprm, t1, tl1);
  const auto e2 = triangle::enumerate_congest(b, tprm, t2, tl2);
  EXPECT_EQ(e1.triangles, e2.triangles);
  EXPECT_EQ(e1.rounds, e2.rounds);
}

}  // namespace
}  // namespace xd

#include "primitives/forest.hpp"

#include <gtest/gtest.h>

#include <map>

#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "primitives/aggregate.hpp"
#include "primitives/sampling.hpp"

namespace xd::prim {
namespace {

using congest::Network;
using congest::RoundLedger;

std::vector<char> all_active(std::size_t n) { return std::vector<char>(n, 1); }

TEST(ElectLeaders, MinIdWinsPerComponent) {
  GraphBuilder b(6);
  b.add_edge(2, 3).add_edge(3, 4).add_edge(0, 5);
  const Graph g = b.build();
  RoundLedger ledger;
  Network net(g, ledger);
  const auto leaders = elect_leaders(net, all_active(6), "elect");
  EXPECT_EQ(leaders[2], 2u);
  EXPECT_EQ(leaders[3], 2u);
  EXPECT_EQ(leaders[4], 2u);
  EXPECT_EQ(leaders[0], 0u);
  EXPECT_EQ(leaders[5], 0u);
  EXPECT_EQ(leaders[1], 1u);  // isolated
}

TEST(ElectLeaders, RespectsActiveMask) {
  const Graph g = gen::path(4);
  RoundLedger ledger;
  Network net(g, ledger);
  std::vector<char> active{1, 0, 1, 1};  // vertex 1 cut out
  const auto leaders = elect_leaders(net, active, "elect");
  EXPECT_EQ(leaders[0], 0u);
  EXPECT_EQ(leaders[1], kNoVertex);
  EXPECT_EQ(leaders[2], 2u);  // 2-3 separated from 0
  EXPECT_EQ(leaders[3], 2u);
}

TEST(ElectLeaders, RoundsScaleWithDiameter) {
  const Graph g = gen::path(32);
  RoundLedger ledger;
  Network net(g, ledger);
  (void)elect_leaders(net, all_active(32), "elect");
  // Information from vertex 0 must reach vertex 31: >= 31 exchanges.
  EXPECT_GE(ledger.rounds(), 31u);
  EXPECT_LE(ledger.rounds(), 40u);
}

TEST(BuildForest, SpanningTreePerComponent) {
  GraphBuilder b(7);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 3).add_edge(4, 5);
  const Graph g = b.build();
  RoundLedger ledger;
  Network net(g, ledger);
  const Forest f = build_forest(net, all_active(7), "forest");

  EXPECT_EQ(f.root[0], 0u);
  EXPECT_EQ(f.root[3], 0u);
  EXPECT_EQ(f.root[4], 4u);
  EXPECT_EQ(f.root[5], 4u);
  EXPECT_EQ(f.root[6], 6u);
  EXPECT_EQ(f.roots(), (std::vector<VertexId>{0, 4, 6}));

  // Depths are BFS distances from the roots.
  EXPECT_EQ(f.depth[3], 3u);
  EXPECT_EQ(f.height, 3u);

  // Parent/children are consistent.
  for (VertexId v = 0; v < 7; ++v) {
    if (!f.is_active(v) || f.parent[v] == v) continue;
    const auto& kids = f.children[f.parent[v]];
    EXPECT_NE(std::find(kids.begin(), kids.end(), v), kids.end());
  }
}

TEST(BuildForest, DepthMatchesBfsDistanceOnTorus) {
  const Graph g = gen::grid(5, 5, /*wrap=*/true);
  RoundLedger ledger;
  Network net(g, ledger);
  const Forest f = build_forest(net, all_active(g.num_vertices()), "forest");
  const auto dist = bfs_distances(g, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(f.depth[v], dist[v]) << "vertex " << v;
    EXPECT_EQ(f.root[v], 0u);
  }
}

TEST(BuildForestFromRoots, UnreachedVerticesInactive) {
  GraphBuilder b(4);
  b.add_edge(0, 1).add_edge(2, 3);
  const Graph g = b.build();
  RoundLedger ledger;
  Network net(g, ledger);
  const Forest f =
      build_forest_from_roots(net, all_active(4), {0}, "forest");
  EXPECT_TRUE(f.is_active(1));
  EXPECT_FALSE(f.is_active(2));
  EXPECT_FALSE(f.is_active(3));
}

TEST(Convergecast, SubtreeSumsExact) {
  const Graph g = gen::binary_tree(3);
  RoundLedger ledger;
  Network net(g, ledger);
  const Forest f = build_forest(net, all_active(g.num_vertices()), "forest");

  std::vector<std::uint64_t> ones(g.num_vertices(), 1);
  const auto sums = convergecast_sum(net, f, ones, "sum");
  EXPECT_EQ(sums[0], g.num_vertices());  // root counts everyone

  // Every subtree sum equals 1 + children's sums.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    std::uint64_t expect = 1;
    for (VertexId c : f.children[v]) expect += sums[c];
    EXPECT_EQ(sums[v], expect);
  }
}

TEST(Convergecast, MinMax) {
  const Graph g = gen::path(5);
  RoundLedger ledger;
  Network net(g, ledger);
  const Forest f = build_forest(net, all_active(5), "forest");
  std::vector<std::uint64_t> vals{7, 3, 9, 1, 5};
  EXPECT_EQ(convergecast_min(net, f, vals, "min")[0], 1u);
  EXPECT_EQ(convergecast_max(net, f, vals, "max")[0], 9u);
}

TEST(Convergecast, CostsHeightExchanges) {
  const Graph g = gen::path(17);
  RoundLedger ledger;
  Network net(g, ledger);
  const Forest f = build_forest(net, all_active(17), "forest");
  ledger.reset();
  std::vector<std::uint64_t> ones(17, 1);
  (void)convergecast_sum(net, f, ones, "sum");
  EXPECT_EQ(ledger.rounds(), f.height);
}

TEST(Broadcast, DeliversRootValueEverywhere) {
  const Graph g = gen::grid(4, 4);
  RoundLedger ledger;
  Network net(g, ledger);
  const Forest f = build_forest(net, all_active(16), "forest");
  std::vector<std::uint64_t> root_val(16, 0);
  root_val[0] = 424242;
  const auto got = broadcast_from_roots(net, f, root_val, "bcast");
  for (VertexId v = 0; v < 16; ++v) EXPECT_EQ(got[v], 424242u);
}

TEST(Broadcast, PerComponentValues) {
  GraphBuilder b(5);
  b.add_edge(0, 1).add_edge(2, 3).add_edge(3, 4);
  const Graph g = b.build();
  RoundLedger ledger;
  Network net(g, ledger);
  const Forest f = build_forest(net, all_active(5), "forest");
  std::vector<std::uint64_t> root_val(5, 0);
  root_val[0] = 10;
  root_val[2] = 20;
  const auto got = broadcast_from_roots(net, f, root_val, "bcast");
  EXPECT_EQ(got[1], 10u);
  EXPECT_EQ(got[4], 20u);
}

TEST(SampleByWeight, ExactCountAndSupport) {
  const Graph g = gen::grid(4, 4, /*wrap=*/true);
  RoundLedger ledger;
  Network net(g, ledger);
  const Forest f = build_forest(net, all_active(16), "forest");

  std::vector<std::uint64_t> weight(16);
  for (VertexId v = 0; v < 16; ++v) weight[v] = g.degree(v);

  std::vector<std::vector<std::pair<int, std::uint64_t>>> tokens(16);
  tokens[0] = {{1, 200}, {2, 100}};
  const auto samples = sample_by_weight(net, f, weight, tokens, "sample");
  EXPECT_EQ(samples.size(), 300u);
  std::map<int, int> by_scale;
  for (const auto& s : samples) {
    EXPECT_LT(s.vertex, 16u);
    ++by_scale[s.scale];
  }
  EXPECT_EQ(by_scale[1], 200);
  EXPECT_EQ(by_scale[2], 100);
}

TEST(SampleByWeight, MatchesDegreeDistribution) {
  // On a star, the hub has weight (n-1) and each leaf 1, so the hub should
  // receive about half the samples.
  const Graph g = gen::star(11);  // hub deg 10, total vol 20
  RoundLedger ledger;
  Network net(g, ledger);
  const Forest f = build_forest(net, all_active(11), "forest");
  std::vector<std::uint64_t> weight(11);
  for (VertexId v = 0; v < 11; ++v) weight[v] = g.degree(v);
  std::vector<std::vector<std::pair<int, std::uint64_t>>> tokens(11);
  const std::uint64_t total = 4000;
  tokens[0] = {{1, total}};
  const auto samples = sample_by_weight(net, f, weight, tokens, "sample");
  std::size_t hub = 0;
  for (const auto& s : samples) hub += (s.vertex == 0);
  EXPECT_NEAR(static_cast<double>(hub), total / 2.0, 120.0);
}

TEST(SampleByWeight, ZeroWeightVerticesNeverSampled) {
  const Graph g = gen::path(6);
  RoundLedger ledger;
  Network net(g, ledger);
  const Forest f = build_forest(net, all_active(6), "forest");
  std::vector<std::uint64_t> weight(6, 1);
  weight[2] = 0;
  weight[4] = 0;
  std::vector<std::vector<std::pair<int, std::uint64_t>>> tokens(6);
  tokens[0] = {{1, 500}};
  for (const auto& s : sample_by_weight(net, f, weight, tokens, "sample")) {
    EXPECT_NE(s.vertex, 2u);
    EXPECT_NE(s.vertex, 4u);
  }
}

}  // namespace
}  // namespace xd::prim
